// Quickstart: create a relation, load data, and compare an exact COUNT
// with time-constrained estimates at several quotas.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tcq"
)

func main() {
	// A simulated 1989-class machine: disk blocks cost tens of
	// milliseconds, so exact answers over 2,000 blocks take minutes of
	// virtual time — the regime the paper targets.
	db := tcq.Open(tcq.WithSimulatedClock(42), tcq.WithLoadNoise(0.12))

	orders, err := db.CreateRelation("orders", []tcq.Column{
		{Name: "id", Type: tcq.Int},
		{Name: "amount", Type: tcq.Int},
		{Name: "region", Type: tcq.String, Size: 8},
	}, 200) // 200-byte tuples: 5 per 1 KB disk block
	if err != nil {
		log.Fatal(err)
	}
	regions := []string{"north", "south", "east", "west"}
	rng := rand.New(rand.NewSource(7))
	const n = 10000
	for i := 0; i < n; i++ {
		if err := orders.Insert(i, rng.Intn(1000), regions[rng.Intn(4)]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d tuples into %d disk blocks\n\n", orders.NumTuples(), orders.NumBlocks())

	// The query: how many cheap northern orders?
	q := tcq.Rel("orders").Where(
		tcq.Col("amount").Lt(100).And(tcq.Col("region").Eq("north")))
	fmt.Println("query: count(", q, ")")

	exact, err := db.Count(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact answer (unconstrained): %d\n\n", exact)

	for _, quota := range []time.Duration{2 * time.Second, 10 * time.Second, 60 * time.Second} {
		est, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota: quota,
			DBeta: 24, // risk knob: larger = less likely to overspend
			Seed:  int64(quota),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("quota %6s: estimate %7.1f ± %6.1f   (%d stages, %3d blocks, util %3.0f%%, err %+5.1f%%)\n",
			quota, est.Value, est.Interval, est.Stages, est.Blocks,
			est.Utilization*100, 100*(est.Value-float64(exact))/float64(exact))
	}

	fmt.Println("\nThe estimate tightens as the quota grows — the engine spends")
	fmt.Println("exactly the time you give it, never (much) more.")
}
