// PLC: a programmable-logic-controller scan loop with hard per-cycle
// deadlines — the application that motivated the paper ([OzHO 88]: "we
// are presently using the approach of this paper to build a database
// system for programmable logic controllers").
//
// Every 500 ms scan cycle the controller must decide whether to trip an
// alarm based on "how many sensor readings in the event log exceed the
// threshold". The log is far too big to scan in one cycle, so the
// controller asks for a COUNT estimate under a HARD 150 ms quota and
// compares the confidence interval against the trip level.
//
//	go run ./examples/plc
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tcq"
)

const (
	cycleTime  = 500 * time.Millisecond
	queryQuota = 150 * time.Millisecond
	tripLevel  = 1500 // alarm if more than this many hot readings
)

func main() {
	// A memory-resident machine: the paper's real-time motivation assumes
	// millisecond-scale constraints, infeasible on 1989 spinning disks.
	db := tcq.Open(tcq.WithSimulatedClock(99), tcq.WithFastMachine(), tcq.WithLoadNoise(0.1))

	readings, err := db.CreateRelation("readings", []tcq.Column{
		{Name: "sensor", Type: tcq.Int},
		{Name: "value", Type: tcq.Int},
	}, 200)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	hot := 0
	for i := 0; i < n; i++ {
		v := rng.Intn(1000)
		if v >= 900 {
			hot++
		}
		if err := readings.Insert(i%64, v); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("event log: %d readings (%d blocks), %d actually hot, trip level %d\n\n",
		n, readings.NumBlocks(), hot, tripLevel)

	q := tcq.Rel("readings").Where(tcq.Col("value").Ge(900))

	fmt.Printf("%5s %12s %14s %10s %8s %s\n", "cycle", "estimate", "interval", "spent", "blocks", "decision")
	missed := 0
	for cycle := 1; cycle <= 10; cycle++ {
		start := db.Now()
		est, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota:        queryQuota,
			HardDeadline: true, // a late answer is a wrong answer
			DBeta:        24,
			Seed:         int64(cycle),
		})
		if err != nil {
			log.Fatal(err)
		}
		spent := db.Now() - start
		if spent > cycleTime {
			missed++
		}
		decision := "ok"
		switch {
		case est.Lo() > tripLevel:
			decision = "TRIP (confidently above level)"
		case est.Hi() > tripLevel:
			decision = "watch (interval straddles level)"
		}
		fmt.Printf("%5d %12.1f [%6.0f,%6.0f] %10v %8d %s\n",
			cycle, est.Value, est.Lo(), est.Hi(), spent.Round(time.Millisecond), est.Blocks, decision)

		// The rest of the cycle is spent on ladder logic and I/O; the
		// query engine charged its work to the session clock already.
	}
	fmt.Printf("\ncycles over the %v budget: %d of 10 (hard deadline keeps the scan loop live)\n",
		cycleTime, missed)
}
