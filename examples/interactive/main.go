// Interactive: the paper's "impatient user" scenario — an analyst wants
// a join count *now*, watching the estimate refine stage by stage, and
// the system stops on its own once the answer is precise enough (the
// error-constrained stopping criterion of §3.2).
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"math/rand"

	"time"

	"tcq"
	"tcq/internal/workload"
)

func main() {
	db := tcq.Open(tcq.WithSimulatedClock(11), tcq.WithLoadNoise(0.12))

	// The paper's join workload: two 10,000-tuple relations whose
	// equijoin has exactly 70,000 result tuples.
	rng := rand.New(rand.NewSource(5))
	if _, _, err := workload.JoinPair(db.Store(), "orders", "lineitems", workload.PaperTuples, 70000, rng); err != nil {
		log.Fatal(err)
	}
	q := tcq.Rel("orders").Join(tcq.Rel("lineitems"), "a", "a")
	fmt.Println("query: count(", q, ")   [exact answer: 70000]")
	fmt.Println()
	fmt.Printf("%5s %12s %12s %9s %8s\n", "stage", "estimate", "± stderr", "blocks", "spent")

	est, err := db.CountEstimate(q, tcq.EstimateOptions{
		// Generous ceiling; the error target is what stops us.
		Quota:          5 * time.Minute,
		TargetRelError: 0.05, // stop at ±5% (95% confidence)
		DBeta:          24,
		// The paper's join experiment assumes 0.1 at the first stage:
		// with the maximum assumption (1) the first sample is too small
		// to be informative.
		InitialJoinSelectivity: 0.1,
		Seed:                   2,
		OnProgress: func(p tcq.Progress) {
			fmt.Printf("%5d %12.1f %12.1f %9d %8.2fs\n",
				p.Stage, p.Estimate, p.StdErr, p.Blocks, p.Spent.Seconds())
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("final: %.0f ± %.0f at %.0f%% confidence\n", est.Value, est.Interval, est.Confidence*100)
	fmt.Printf("stopped after %.1fs of a %s ceiling: %s\n",
		est.Elapsed.Seconds(), "5m", est.StopReason)
	fmt.Printf("sampled %d of 4000 blocks (%.1f%%) to get there\n",
		est.Blocks, float64(est.Blocks)/40)
}
