// Concurrent: the three concurrency faces of the repo in one demo.
//
//  1. One shared tcq.DB serving many goroutines — every query runs in
//     its own session, so concurrent results equal serial ones.
//
//  2. Intra-query parallelism — EstimateOptions.Parallelism fans the
//     inclusion–exclusion terms across workers with byte-identical
//     results (lane record/replay re-issues the simulated-clock
//     charges in term order).
//
//  3. A live admission controller — sched.Controller admits
//     transactions only when their worst case fits, and runs each on
//     its own goroutine against a private session.
//
//     go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"tcq"
	"tcq/internal/ra"
	"tcq/internal/sched"
	"tcq/internal/workload"
)

func main() {
	db := tcq.Open(tcq.WithSimulatedClock(42), tcq.WithLoadNoise(0.1))
	rng := rand.New(rand.NewSource(7))
	if _, _, err := workload.IntersectPair(db.Store(), "r1", "r2", 20000, 4000, rng); err != nil {
		log.Fatal(err)
	}

	// union(r1, r2) decomposes into signed terms (r1 + r2 − r1∩r2):
	// exactly the shape the term worker pool parallelizes.
	q, err := tcq.Parse("union(r1, r2)")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== parallel terms are unobservable in results ===")
	for _, workers := range []int{-1, 2, 8} {
		est, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota: 10 * time.Second, Seed: 1, Parallelism: workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workers %2d: estimate %.1f ± %.1f, %d stages, spent %.2fs\n",
			workers, est.Value, est.Interval, est.Stages, est.Elapsed.Seconds())
	}

	fmt.Println()
	fmt.Println("=== 8 goroutines share one DB ===")
	var wg sync.WaitGroup
	results := make([]float64, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			est, err := db.CountEstimate(q, tcq.EstimateOptions{
				Quota: 10 * time.Second, Seed: int64(g + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			results[g] = est.Value
		}(g)
	}
	wg.Wait()
	for g, v := range results {
		fmt.Printf("goroutine %d (seed %d): estimate %.1f\n", g, g+1, v)
	}
	fmt.Println("(re-run: same seeds give the same estimates, any interleaving)")

	fmt.Println()
	fmt.Println("=== live admission controller ===")
	ctl := sched.NewController(db.Store(), sched.ControllerOptions{
		Options:       sched.Options{Policy: sched.QuotaQueries, Seed: 9},
		MaxConcurrent: 4,
	})
	step := sched.QueryStep{
		Expr: &ra.Select{Input: &ra.Base{Name: "r1"},
			Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(5000)}}},
		Quota: 2 * time.Second,
	}
	txns := []sched.Txn{
		{ID: 1, Deadline: 5 * time.Second, Queries: []sched.QueryStep{step}, AppWork: time.Second},
		{ID: 2, Deadline: 9 * time.Second, Queries: []sched.QueryStep{step, step}, AppWork: time.Second},
		{ID: 3, Deadline: time.Second, Queries: []sched.QueryStep{step}}, // infeasible: wcet > budget
	}
	for _, tx := range txns {
		fmt.Printf("txn %d (budget %v): admitted=%v\n", tx.ID, tx.Deadline, ctl.Submit(tx))
	}
	results2, err := ctl.Wait()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results2 {
		if !r.Admitted {
			fmt.Printf("txn %d: rejected by admission control\n", r.ID)
			continue
		}
		fmt.Printf("txn %d: ran %.2fs on its own session, met=%v\n",
			r.ID, (r.Finished - r.Started).Seconds(), r.Met)
	}
}
