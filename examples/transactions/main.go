// Transactions: the paper's multiuser real-time database motivation —
// "by precisely fixing the execution times of database queries in a
// transaction, accurate estimates for transaction execution times
// become possible [, which] plays an important role in minimizing the
// number of transactions that miss their deadlines [AbMo 88]".
//
// A batch of transactions (each: one or two aggregate queries plus
// fixed application work) runs under an earliest-deadline-first
// scheduler. With exact queries the durations are unpredictable and
// deadlines blow; with time-quota'd estimates every transaction's
// worst case is known, admission control works, and the schedule holds.
//
//	go run ./examples/transactions
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"tcq/internal/core"
	"tcq/internal/ra"
	"tcq/internal/sched"
	"tcq/internal/storage"
	"tcq/internal/timectrl"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

func main() {
	fmt.Println("=== exact queries (durations unknown in advance) ===")
	exactMiss := run(sched.ExactQueries)
	fmt.Println()
	fmt.Println("=== time-quota'd queries + admission control ===")
	quotaMiss := run(sched.QuotaQueries)
	fmt.Println()
	fmt.Printf("deadline misses: exact %d vs time-constrained %d\n", exactMiss, quotaMiss)
	fmt.Println("fixing query times makes transaction times schedulable — the")
	fmt.Println("paper's multiuser real-time database argument.")
}

func run(policy sched.Policy) int {
	clk := vclock.NewSim(21, 0.03)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	rng := rand.New(rand.NewSource(9))
	if _, err := workload.SelectRelation(st, "inventory", workload.PaperTuples, 2500, rng); err != nil {
		log.Fatal(err)
	}
	if _, _, err := workload.JoinPair(st, "orders", "items", workload.PaperTuples, 50000, rng); err != nil {
		log.Fatal(err)
	}

	selStep := sched.QueryStep{
		Expr: &ra.Select{Input: &ra.Base{Name: "inventory"},
			Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(2500)}}},
		Quota:   4 * time.Second,
		Options: core.Options{Strategy: &timectrl.OneAtATime{DBeta: 24}},
	}
	joinStep := sched.QueryStep{
		Expr: &ra.Join{Left: &ra.Base{Name: "orders"}, Right: &ra.Base{Name: "items"},
			On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}},
		Quota: 4 * time.Second,
		Options: core.Options{
			Strategy: &timectrl.OneAtATime{DBeta: 24},
			Initial:  timectrl.Initials{Select: 1, Join: 0.1, Project: 1},
		},
	}

	txns := []sched.Txn{
		{ID: 1, Deadline: 10 * time.Second, Queries: []sched.QueryStep{selStep}, AppWork: 2 * time.Second},
		{ID: 2, Deadline: 22 * time.Second, Queries: []sched.QueryStep{joinStep}, AppWork: time.Second},
		{ID: 3, Deadline: 34 * time.Second, Queries: []sched.QueryStep{selStep}, AppWork: 3 * time.Second},
		{ID: 4, Deadline: 46 * time.Second, Queries: []sched.QueryStep{selStep, joinStep}, AppWork: time.Second},
	}

	s := sched.New(st, sched.Options{Policy: policy, Seed: 21})
	results, err := s.Run(txns)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range results {
		status := "met"
		switch {
		case !r.Admitted:
			status = "REJECTED (admission control)"
		case !r.Met:
			status = "MISSED"
		}
		answer := "-"
		if len(r.Queries) > 0 {
			answer = fmt.Sprintf("%.0f", r.Queries[0].Estimate)
		}
		fmt.Printf("txn %d: answer %8s  finished %6.1fs  %s\n",
			r.ID, answer, r.Finished.Seconds(), status)
	}
	return sched.MissCount(results)
}
