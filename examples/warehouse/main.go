// Warehouse: the "v2 feature tour" — file-backed relations, ANALYZE
// statistics, and SUM/AVG estimation with progressive refinement.
//
// A nightly job saved a large fact table to disk; an interactive
// session attaches it without loading it, builds equi-depth statistics,
// and answers revenue questions under second-scale quotas.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"tcq"
)

func main() {
	dir, err := os.MkdirTemp("", "tcq-warehouse")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sales.tcq")

	// --- the nightly job: build and save the fact table -------------
	builder := tcq.Open(tcq.WithSimulatedClock(1))
	sales, err := builder.CreateRelation("sales", []tcq.Column{
		{Name: "id", Type: tcq.Int},
		{Name: "region", Type: tcq.Int},  // 0..7
		{Name: "revenue", Type: tcq.Int}, // cents
	}, 200)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for i := 0; i < n; i++ {
		if err := sales.Insert(i, rng.Intn(8), 100+rng.Intn(9900)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sales.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nightly job wrote %s (%d tuples, %d blocks)\n\n", path, sales.NumTuples(), sales.NumBlocks())

	// --- the interactive session: attach, analyze, estimate ---------
	db := tcq.Open(tcq.WithSimulatedClock(99), tcq.WithLoadNoise(0.1))
	attached, err := db.OpenRelationFile("sales", path)
	if err != nil {
		log.Fatal(err)
	}
	defer attached.Close()
	fmt.Printf("attached file-backed: %d blocks available on demand\n", attached.NumBlocks())

	if err := db.BuildStatistics(32); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ANALYZE done: equi-depth histograms over numeric columns")
	fmt.Println()

	north := tcq.Rel("sales").Where(tcq.Col("region").Eq(2).And(tcq.Col("revenue").Ge(5000)))

	exactCount, _ := db.Count(north)
	exactSum, _ := db.Sum(north, "revenue")
	exactAvg, _ := db.Avg(north, "revenue")
	fmt.Printf("ground truth: count=%d sum=%.0f avg=%.1f\n\n", exactCount, exactSum, exactAvg)

	opts := tcq.EstimateOptions{
		Quota:         15 * time.Second,
		DBeta:         24,
		UseStatistics: true,
		Seed:          3,
	}
	cnt, err := db.CountEstimate(north, opts)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := db.SumEstimate(north, "revenue", opts)
	if err != nil {
		log.Fatal(err)
	}
	avg, err := db.AvgEstimate(north, "revenue", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("COUNT ≈ %8.0f ± %6.0f   (%d stages, %d blocks, %.1fs)\n",
		cnt.Value, cnt.Interval, cnt.Stages, cnt.Blocks, cnt.Elapsed.Seconds())
	fmt.Printf("SUM   ≈ %8.0f ± %6.0f\n", sum.Value, sum.Interval)
	fmt.Printf("AVG   ≈ %8.1f ± %6.1f\n", avg.Value, avg.Interval)
	fmt.Println("\nall three answered inside their quotas against the on-disk table.")
}
