// Benchmarks mapping one-to-one onto the paper's evaluation tables
// (Figures 5.1–5.3) and this repo's ablations, plus micro-benchmarks of
// the substrates. Each table benchmark runs independent experiment
// trials (one per iteration) and reports the paper's table columns as
// custom metrics; the full 200-trial tables are regenerated with
//
//	go run ./cmd/tcqbench          # all tables, paper protocol
//	go test -bench=Fig -benchtime=200x   # equivalent via the bench driver
package tcq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tcq/internal/bench"
	"tcq/internal/estimator"
	"tcq/internal/ra"
	"tcq/internal/sampling"
	"tcq/internal/sortx"
	"tcq/internal/storage"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

// benchExperiment runs one trial per iteration of the experiment's
// variant with the given label and reports the paper's table columns.
func benchExperiment(b *testing.B, e bench.Experiment, label string) {
	b.Helper()
	var chosen *bench.Variant
	for i := range e.Variants {
		if e.Variants[i].Label == label {
			chosen = &e.Variants[i]
			break
		}
	}
	if chosen == nil {
		b.Fatalf("no variant %q in %s", label, e.ID)
	}
	e.Variants = []bench.Variant{*chosen}
	rows, err := e.Run(bench.RunOptions{Trials: b.N, BaseSeed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rows[0]
	b.ReportMetric(r.Stages, "stages")
	b.ReportMetric(r.RiskPct, "risk%")
	b.ReportMetric(r.Ovsp, "ovsp-s")
	b.ReportMetric(r.Utilization, "util%")
	b.ReportMetric(r.Blocks, "blocks")
	b.ReportMetric(r.RelErrPct, "relerr%")
}

// BenchmarkFig51Selection1000 is Fig. 5.1's 1,000-output-tuple table at
// the paper's middle risk setting (dβ=12); run tcqbench for the full
// dβ sweep.
func BenchmarkFig51Selection1000(b *testing.B) {
	benchExperiment(b, bench.Fig51Selection(1000), "dβ=12")
}

// BenchmarkFig51Selection5000 is Fig. 5.1's 5,000-output-tuple table.
func BenchmarkFig51Selection5000(b *testing.B) {
	benchExperiment(b, bench.Fig51Selection(5000), "dβ=12")
}

// BenchmarkFig52Intersection is Fig. 5.2 (intersection, 10,000 output
// tuples, 10 s quota).
func BenchmarkFig52Intersection(b *testing.B) {
	benchExperiment(b, bench.Fig52Intersection(), "dβ=12")
}

// BenchmarkFig53Join is Fig. 5.3 (join, 70,000 output tuples, 2.5 s
// quota, initial join selectivity 0.1).
func BenchmarkFig53Join(b *testing.B) {
	benchExperiment(b, bench.Fig53Join(), "dβ=12")
}

// BenchmarkAblationStrategies compares the §3.3 strategies (heuristic
// row shown; tcqbench prints all five).
func BenchmarkAblationStrategies(b *testing.B) {
	benchExperiment(b, bench.AblationStrategies(), "heuristic γ=0.5")
}

// BenchmarkAblationFulfillment compares full vs partial fulfillment
// (partial row shown).
func BenchmarkAblationFulfillment(b *testing.B) {
	benchExperiment(b, bench.AblationFulfillment(), "partial fulfillment")
}

// BenchmarkAblationAdaptiveCost compares adaptive vs fixed-form cost
// formulas (adaptive row shown).
func BenchmarkAblationAdaptiveCost(b *testing.B) {
	benchExperiment(b, bench.AblationAdaptiveCost(), "adaptive")
}

// BenchmarkEstimatorQuality is the est.quality sweep at a 10% sample.
func BenchmarkEstimatorQuality(b *testing.B) {
	rows, err := bench.EstimatorQuality(bench.RunOptions{Trials: b.N, BaseSeed: 1}, []float64{0.1})
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanRelErr, r.Op+"-relerr%")
	}
}

// TestRegenerateAllTables prints every experiment table at a reduced
// trial count as a smoke check of the harness end to end; the paper
// protocol (200 trials) runs via cmd/tcqbench.
func TestRegenerateAllTables(t *testing.T) {
	if testing.Short() {
		t.Skip("table regeneration skipped in -short mode")
	}
	for _, e := range bench.AllExperiments() {
		rows, err := e.Run(bench.RunOptions{Trials: 25, BaseSeed: 1})
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		t.Logf("\n%s", bench.Render(e.Title, rows))
		for _, r := range rows {
			if r.Utilization < 0 || r.Utilization > 100 {
				t.Errorf("%s/%s: utilization %.1f out of range", e.ID, r.Label, r.Utilization)
			}
		}
	}
}

// --- substrate micro-benchmarks ---------------------------------------

func benchTuples(n int, rng *rand.Rand) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{rng.Int63n(1 << 20), rng.Int63n(1000)}
	}
	return out
}

// BenchmarkExternalSort measures the run-generation + k-way-merge sort
// on 10k two-column tuples.
func BenchmarkExternalSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ts := benchTuples(10000, rng)
	cmp := func(x, y tuple.Tuple) int { return tuple.CompareValues(x[0], y[0]) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sortx.Sort(ts, cmp, 512)
	}
}

// BenchmarkBlockSampler measures drawing 200 of 2,000 blocks without
// replacement (one experiment stage's sampling work).
func BenchmarkBlockSampler(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		s := sampling.NewBlockSampler(2000, rng)
		s.Draw(200)
	}
}

// BenchmarkGoodman measures the distinct-count estimator on a 50-class
// occupancy profile.
func BenchmarkGoodman(b *testing.B) {
	freq := map[int]int{1: 20, 2: 15, 3: 10, 4: 5}
	for i := 0; i < b.N; i++ {
		estimator.Goodman(100000, 60000, freq)
	}
}

// BenchmarkInclusionExclusion measures the COUNT(E) decomposition of a
// nested union/difference expression.
func BenchmarkInclusionExclusion(b *testing.B) {
	m := ra.NewMapRelations()
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "v", Type: tuple.Int},
	)
	for _, n := range []string{"a", "b", "c"} {
		m.Add(n, sch, nil)
	}
	e := &ra.Union{
		Left: &ra.Difference{Left: &ra.Base{Name: "a"}, Right: &ra.Base{Name: "b"}},
		Right: &ra.Intersect{Inputs: []ra.Expr{
			&ra.Base{Name: "b"},
			&ra.Union{Left: &ra.Base{Name: "a"}, Right: &ra.Base{Name: "c"}},
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ra.Terms(e, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSelectTrial measures one full time-constrained
// selection query (10,000 tuples, 10 s virtual quota) end to end.
func BenchmarkEngineSelectTrial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := bench.Fig51Selection(1000)
		e.Variants = e.Variants[1:2] // dβ=12
		if _, err := e.Run(bench.RunOptions{Trials: 1, BaseSeed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageScan measures a charged scan of a 2,000-block
// relation on the simulated store.
func BenchmarkStorageScan(b *testing.B) {
	clk := vclock.NewSim(1, 0)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	rng := rand.New(rand.NewSource(1))
	rel, err := workload.SelectRelation(st, "r", workload.PaperTuples, 1000, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := rel.Scan(vclock.Unarmed(), func(tuple.Tuple) error {
			n++
			return nil
		})
		if err != nil || n != workload.PaperTuples {
			b.Fatalf("scan: n=%d err=%v", n, err)
		}
	}
}

// ExampleRender shows the harness table format (doc example).
func ExampleRender() {
	rows := []bench.Row{{
		Label: "dβ=12", Trials: 200, Stages: 2.1, RiskPct: 42.5,
		Ovsp: 0.57, Utilization: 79.7, Blocks: 96.8, RelErrPct: 12.5,
	}}
	fmt.Print(bench.Render("Fig 5.1 — selection (demo row)", rows))
	// Output:
	// Fig 5.1 — selection (demo row)
	// variant                 trials  stages   risk% ovsp(s)   util%  blocks  relerr%
	// dβ=12                      200    2.10    42.5    0.57    79.7    96.8     12.5
}
