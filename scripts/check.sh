#!/usr/bin/env bash
# Repo-wide CI gate: formatting, vet, build, race tests, and the
# simulated-determinism golden. Run from anywhere; optional flags:
#
#   scripts/check.sh          # the standard gate
#   scripts/check.sh -perf    # additionally diff host perf against the
#                             # committed BENCH_exec.json baseline
#                             # (meaningful on the baseline machine only)
set -euo pipefail
cd "$(dirname "$0")/.."

run_perf=0
for arg in "$@"; do
  case "$arg" in
    -perf) run_perf=1 ;;
    *) echo "usage: scripts/check.sh [-perf]" >&2; exit 2 ;;
  esac
done

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

# The concurrency-heavy surfaces (concurrent engine use, the sched
# Controller, the metrics registry, the live telemetry registry and its
# HTTP server, and the exec engine's lane record/replay and sub-term
# fan-out paths) get a second, cache-bypassing race pass so a cached
# "ok" from the run above can never mask an interleaving-dependent
# failure in exactly the code where interleavings matter.
echo "== go test -race -count=1 (concurrency surfaces)"
go test -race -count=1 \
  -run 'Concurrent|Parallel|Controller|Registry|Telemetry|Metrics|Serve|Lane|SubTerm|HardDeadline|Calib|Flight|Coverage|Ring|Wilson|Catalog|Stream|Drain|Reject|Tenant|SSE|Span|SLO|Retry|AdmitWait|Admission|NonStreaming' \
  . ./internal/sched ./internal/trace ./internal/telemetry ./internal/calib \
  ./internal/stats ./internal/exec ./internal/core ./internal/bench \
  ./internal/catalog ./internal/server ./internal/client

# The experiment tables are a deterministic function of the seed: any
# change to the executor that perturbs the sequence of simulated-clock
# charges shows up as a diff here. Host-side performance work must keep
# this byte-identical (the "(N trials/row, X.Xs wall)" line is wall
# time and is filtered out).
echo "== determinism golden (fig5.2, 8 trials)"
got=$(go run ./cmd/tcqbench -exp fig5.2 -trials 8 | grep -v 'trials/row')
if ! diff <(cat testdata/golden_fig52_t8.txt) <(echo "$got"); then
  echo "simulated results diverged from testdata/golden_fig52_t8.txt" >&2
  exit 1
fi

# The stage trace is deterministic too: the same seed must produce a
# byte-identical JSON-lines trace (field order is fixed by the struct
# definitions, durations are integer nanoseconds, and tcqbench replays
# collectors in experiment → variant → trial order).
echo "== trace determinism golden (fig5.2, 8 trials)"
trace_tmp=$(mktemp)
trap 'rm -f "$trace_tmp"' EXIT
go run ./cmd/tcqbench -exp fig5.2 -trials 8 -trace "$trace_tmp" > /dev/null
if ! diff testdata/golden_trace_fig52_t8.jsonl "$trace_tmp"; then
  echo "stage trace diverged from testdata/golden_trace_fig52_t8.jsonl" >&2
  exit 1
fi

# The pure-join figure exercises the single-term path (batched merge,
# bucket joins, per-side sorts) that fig5.2's intersection does not
# cover schema-wise; keep its table and trace golden too.
echo "== determinism goldens (fig5.3, 8 trials)"
got=$(go run ./cmd/tcqbench -exp fig5.3 -trials 8 | grep -v 'trials/row')
if ! diff <(cat testdata/golden_fig53_t8.txt) <(echo "$got"); then
  echo "simulated results diverged from testdata/golden_fig53_t8.txt" >&2
  exit 1
fi
go run ./cmd/tcqbench -exp fig5.3 -trials 8 -trace "$trace_tmp" > /dev/null
if ! diff testdata/golden_trace_fig53_t8.jsonl "$trace_tmp"; then
  echo "stage trace diverged from testdata/golden_trace_fig53_t8.jsonl" >&2
  exit 1
fi

# Parallel evaluation must be invisible in the output: lane
# record/replay (terms) and gated charge-free fan-out (sub-term)
# guarantee byte-identical tables AND traces for any worker count.
# Re-run all four goldens with 4 workers; fig5.2 and fig5.3 are
# single-term queries, so this exercises the sub-term tier, which
# before this gate ran fully serially.
echo "== parallel determinism goldens (fig5.2 + fig5.3, -parallel 4)"
got=$(go run ./cmd/tcqbench -exp fig5.2 -trials 8 -parallel 4 | grep -v 'trials/row')
if ! diff <(cat testdata/golden_fig52_t8.txt) <(echo "$got"); then
  echo "-parallel 4 table diverged from testdata/golden_fig52_t8.txt" >&2
  exit 1
fi
go run ./cmd/tcqbench -exp fig5.2 -trials 8 -parallel 4 -trace "$trace_tmp" > /dev/null
if ! diff testdata/golden_trace_fig52_t8.jsonl "$trace_tmp"; then
  echo "-parallel 4 stage trace diverged from testdata/golden_trace_fig52_t8.jsonl" >&2
  exit 1
fi
got=$(go run ./cmd/tcqbench -exp fig5.3 -trials 8 -parallel 4 | grep -v 'trials/row')
if ! diff <(cat testdata/golden_fig53_t8.txt) <(echo "$got"); then
  echo "-parallel 4 table diverged from testdata/golden_fig53_t8.txt" >&2
  exit 1
fi
go run ./cmd/tcqbench -exp fig5.3 -trials 8 -parallel 4 -trace "$trace_tmp" > /dev/null
if ! diff testdata/golden_trace_fig53_t8.jsonl "$trace_tmp"; then
  echo "-parallel 4 stage trace diverged from testdata/golden_trace_fig53_t8.jsonl" >&2
  exit 1
fi

# Calibration auditing rides the tracer chain and inherits its
# read-only contract: with -calib enabled, the table AND the stage
# trace must stay byte-identical to the plain goldens (serially and
# with -parallel 4), and the calibration report itself is deterministic
# — same seed, same report, any worker count.
echo "== calibration goldens (fig5.2, 8 trials, serial + -parallel 4)"
calib_tmp=$(mktemp)
trap 'rm -f "$trace_tmp" "$calib_tmp"' EXIT
got=$(go run ./cmd/tcqbench -exp fig5.2 -trials 8 -calib "$calib_tmp" -trace "$trace_tmp" | grep -v -e 'trials/row' -e '^wrote ')
if ! diff <(cat testdata/golden_fig52_t8.txt) <(echo "$got"); then
  echo "table diverged from testdata/golden_fig52_t8.txt with -calib enabled" >&2
  exit 1
fi
if ! diff testdata/golden_trace_fig52_t8.jsonl "$trace_tmp"; then
  echo "stage trace diverged from testdata/golden_trace_fig52_t8.jsonl with -calib enabled" >&2
  exit 1
fi
if ! diff testdata/golden_calib_fig52_t8.txt "$calib_tmp"; then
  echo "calibration report diverged from testdata/golden_calib_fig52_t8.txt" >&2
  exit 1
fi
got=$(go run ./cmd/tcqbench -exp fig5.2 -trials 8 -parallel 4 -calib "$calib_tmp" -trace "$trace_tmp" | grep -v -e 'trials/row' -e '^wrote ')
if ! diff <(cat testdata/golden_fig52_t8.txt) <(echo "$got"); then
  echo "-parallel 4 table diverged from testdata/golden_fig52_t8.txt with -calib enabled" >&2
  exit 1
fi
if ! diff testdata/golden_trace_fig52_t8.jsonl "$trace_tmp"; then
  echo "-parallel 4 stage trace diverged from testdata/golden_trace_fig52_t8.jsonl with -calib enabled" >&2
  exit 1
fi
if ! diff testdata/golden_calib_fig52_t8.txt "$calib_tmp"; then
  echo "-parallel 4 calibration report diverged from testdata/golden_calib_fig52_t8.txt" >&2
  exit 1
fi

# The multi-figure calibration report is the acceptance surface for the
# paper's statistical promise: realized CI coverage must sit within the
# Wilson interval of the nominal level on every figure workload (the
# golden's per-shape verdicts are all "ok").
echo "== calibration report golden (fig5.1 + fig5.2 + fig5.3, 8 trials)"
go run ./cmd/tcqbench -exp fig5.1-1000,fig5.1-5000,fig5.2,fig5.3 -trials 8 -calib "$calib_tmp" > /dev/null
if ! diff testdata/golden_calib_t8.txt "$calib_tmp"; then
  echo "calibration report diverged from testdata/golden_calib_t8.txt" >&2
  exit 1
fi

# The sample-catalog reuse report is deterministic the same way: every
# trial builds its own seeded catalog, runs the shape cold (miss) and
# warm (hit), and the reduced table must be byte-identical at any trial
# parallelism. Note the golden sections above all run with the catalog
# disabled — their continued byte-identity is the standing proof that
# shipping the catalog feature did not perturb the default engine path.
echo "== catalog reuse golden (fig5.1 + fig5.2 + fig5.3, 8 trials, serial + -parallel 4)"
cat_tmp=$(mktemp)
trap 'rm -f "$trace_tmp" "$calib_tmp" "$cat_tmp"' EXIT
go run ./cmd/tcqbench -exp fig5.1-1000,fig5.1-5000,fig5.2,fig5.3 -trials 8 -catalog "$cat_tmp" > /dev/null
if ! diff testdata/golden_catalog_t8.txt "$cat_tmp"; then
  echo "catalog reuse report diverged from testdata/golden_catalog_t8.txt" >&2
  exit 1
fi
go run ./cmd/tcqbench -exp fig5.1-1000,fig5.1-5000,fig5.2,fig5.3 -trials 8 -parallel 4 -catalog "$cat_tmp" > /dev/null
if ! diff testdata/golden_catalog_t8.txt "$cat_tmp"; then
  echo "-parallel 4 catalog reuse report diverged from testdata/golden_catalog_t8.txt" >&2
  exit 1
fi

# The network service composes the same deterministic pieces: a tcqd
# on a simulated machine answers equal requests with equal seeds
# byte-identically, so a scripted tcqsh \connect session against a
# fresh loopback server is a golden. The transcript carries no
# addresses or wall-clock times (the ephemeral port appears only in
# the \connect input line, which non-interactive tcqsh does not echo);
# the SIGTERM at the end doubles as a graceful-drain smoke.
echo "== tcqd loopback smoke (deterministic serve golden)"
serve_dir=$(mktemp -d)
serve_log="$serve_dir/tcqd.log"
trap 'rm -f "$trace_tmp" "$calib_tmp" "$cat_tmp"; rm -rf "$serve_dir"' EXIT
go build -o "$serve_dir/tcqd" ./cmd/tcqd
"$serve_dir/tcqd" -addr 127.0.0.1:0 -gen "select orders 20000 2000" > "$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 100); do
  grep -q 'listening on' "$serve_log" && break
  sleep 0.1
done
serve_addr=$(sed -n 's/^tcqd: listening on //p' "$serve_log")
if [ -z "$serve_addr" ]; then
  echo "tcqd never came up:" >&2; cat "$serve_log" >&2; exit 1
fi
smoke=$(printf '\\connect %s alice\nrels\ncount select(orders, a < 2000)\nestimate 2s select(orders, a < 2000)\nestsql 2s SELECT AVG(a) FROM orders WHERE a < 5000\n\\disconnect\nquit\n' "$serve_addr" | go run ./cmd/tcqsh)
kill -TERM "$serve_pid"
wait "$serve_pid"
if ! diff testdata/golden_serve_smoke.txt <(echo "$smoke"); then
  echo "serve transcript diverged from testdata/golden_serve_smoke.txt" >&2
  exit 1
fi
if ! grep -q 'tcqd: bye' "$serve_log"; then
  echo "tcqd did not drain cleanly on SIGTERM:" >&2; cat "$serve_log" >&2
  exit 1
fi

# The latency anatomy is golden-able the same way: a fresh tcqd (so
# the request counter starts at req-1) serves one traced estimate, and
# everything in the transcript except the span nanosecond values —
# request id, span names, span count, order, per-stage estimates — is
# a deterministic function of the seed. The sed pass normalizes the
# one nondeterministic ingredient (real wall-clock span durations) so
# the golden pins the anatomy's shape.
echo "== span anatomy smoke (deterministic span golden, ns normalized)"
span_log="$serve_dir/tcqd_spans.log"
"$serve_dir/tcqd" -addr 127.0.0.1:0 -gen "select orders 20000 2000" > "$span_log" 2>&1 &
span_pid=$!
for _ in $(seq 100); do
  grep -q 'listening on' "$span_log" && break
  sleep 0.1
done
span_addr=$(sed -n 's/^tcqd: listening on //p' "$span_log")
if [ -z "$span_addr" ]; then
  echo "span-smoke tcqd never came up:" >&2; cat "$span_log" >&2; exit 1
fi
spans=$(printf '\\connect %s alice\n\\trace on\nestimate 2s select(orders, a < 2000)\n\\disconnect\nquit\n' "$span_addr" \
  | go run ./cmd/tcqsh | sed -E 's/[0-9]+ns/_ns/g')
kill -TERM "$span_pid"
wait "$span_pid"
if ! diff testdata/golden_spans_smoke.txt <(echo "$spans"); then
  echo "span anatomy diverged from testdata/golden_spans_smoke.txt" >&2
  exit 1
fi

# The CI perf diff is a catastrophic-regression tripwire, not a precise
# meter: at 8 trials on a shared box, run-to-run ns/trial noise can
# exceed 30% (the tentpole's batch-path wins were 3.7–5.9x, far above
# any tolerance here). For careful same-machine comparisons run
# tcqbench -perf with more trials and the default -perftol 10.
if [ "$run_perf" = 1 ]; then
  echo "== host perf vs BENCH_exec.json (tolerance 50%)"
  go run ./cmd/tcqbench -perf -exp fig5.1-1000,fig5.1-5000,fig5.2,fig5.3,perf-join-scale -trials 8 \
    -perfout '' -perfbase BENCH_exec.json -perftol 50
fi

echo "OK"
