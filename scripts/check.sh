#!/usr/bin/env bash
# Repo-wide CI gate: formatting, vet, build, race tests, and the
# simulated-determinism golden. Run from anywhere; optional flags:
#
#   scripts/check.sh          # the standard gate
#   scripts/check.sh -perf    # additionally diff host perf against the
#                             # committed BENCH_exec.json baseline
#                             # (meaningful on the baseline machine only)
set -euo pipefail
cd "$(dirname "$0")/.."

run_perf=0
for arg in "$@"; do
  case "$arg" in
    -perf) run_perf=1 ;;
    *) echo "usage: scripts/check.sh [-perf]" >&2; exit 2 ;;
  esac
done

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

# The concurrency-heavy surfaces (concurrent engine use, the sched
# Controller, the metrics registry, the live telemetry registry and its
# HTTP server) get a second, cache-bypassing race pass so a cached
# "ok" from the run above can never mask an interleaving-dependent
# failure in exactly the code where interleavings matter.
echo "== go test -race -count=1 (concurrency surfaces)"
go test -race -count=1 \
  -run 'Concurrent|Parallel|Controller|Registry|Telemetry|Metrics|Serve' \
  . ./internal/sched ./internal/trace ./internal/telemetry

# The experiment tables are a deterministic function of the seed: any
# change to the executor that perturbs the sequence of simulated-clock
# charges shows up as a diff here. Host-side performance work must keep
# this byte-identical (the "(N trials/row, X.Xs wall)" line is wall
# time and is filtered out).
echo "== determinism golden (fig5.2, 8 trials)"
got=$(go run ./cmd/tcqbench -exp fig5.2 -trials 8 | grep -v 'trials/row')
if ! diff <(cat testdata/golden_fig52_t8.txt) <(echo "$got"); then
  echo "simulated results diverged from testdata/golden_fig52_t8.txt" >&2
  exit 1
fi

# The stage trace is deterministic too: the same seed must produce a
# byte-identical JSON-lines trace (field order is fixed by the struct
# definitions, durations are integer nanoseconds, and tcqbench replays
# collectors in experiment → variant → trial order).
echo "== trace determinism golden (fig5.2, 8 trials)"
trace_tmp=$(mktemp)
trap 'rm -f "$trace_tmp"' EXIT
go run ./cmd/tcqbench -exp fig5.2 -trials 8 -trace "$trace_tmp" > /dev/null
if ! diff testdata/golden_trace_fig52_t8.jsonl "$trace_tmp"; then
  echo "stage trace diverged from testdata/golden_trace_fig52_t8.jsonl" >&2
  exit 1
fi

# Parallel term evaluation must be invisible in the output: the lane
# record/replay machinery guarantees byte-identical tables AND traces
# for any worker count. Re-run both goldens with 4 workers.
echo "== parallel determinism goldens (fig5.2, -parallel 4)"
got=$(go run ./cmd/tcqbench -exp fig5.2 -trials 8 -parallel 4 | grep -v 'trials/row')
if ! diff <(cat testdata/golden_fig52_t8.txt) <(echo "$got"); then
  echo "-parallel 4 table diverged from testdata/golden_fig52_t8.txt" >&2
  exit 1
fi
go run ./cmd/tcqbench -exp fig5.2 -trials 8 -parallel 4 -trace "$trace_tmp" > /dev/null
if ! diff testdata/golden_trace_fig52_t8.jsonl "$trace_tmp"; then
  echo "-parallel 4 stage trace diverged from testdata/golden_trace_fig52_t8.jsonl" >&2
  exit 1
fi

if [ "$run_perf" = 1 ]; then
  echo "== host perf vs BENCH_exec.json (tolerance 10%)"
  go run ./cmd/tcqbench -perf -exp fig5.1-1000,fig5.1-5000,fig5.2,fig5.3 -trials 8 \
    -perfout '' -perfbase BENCH_exec.json
fi

echo "OK"
