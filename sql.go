package tcq

import (
	"fmt"

	"tcq/internal/sqlparse"
)

// SQLResult is the outcome of a SQL aggregate query.
type SQLResult struct {
	// Kind names the aggregate ("count", "sum", "avg", "count distinct").
	Kind string
	// Value is the scalar answer (exact, or the estimate's point value).
	Value float64
	// Estimate carries the full estimate (nil for exact execution and
	// for pure GROUP BY results without a scalar).
	Estimate *Estimate
	// Groups holds per-group counts for GROUP BY queries (exact counts
	// have zero Interval).
	Groups []GroupCount
}

// parseSQL parses an aggregate SQL statement against this database.
func parseSQL(sql string) (*sqlparse.Statement, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return stmt, nil
}

// ExecSQL runs an aggregate SQL statement exactly (full evaluation, no
// time constraint). Supported form:
//
//	SELECT COUNT(*) | COUNT(DISTINCT col) | SUM(col) | AVG(col)
//	FROM rel [JOIN rel2 ON a = b]... [WHERE pred] [GROUP BY col]
func (db *DB) ExecSQL(sql string) (*SQLResult, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	q := Query{expr: stmt.Expr}
	res := &SQLResult{Kind: stmt.Agg.String()}
	if stmt.GroupBy != "" {
		groups, err := db.GroupCount(q, stmt.GroupBy)
		if err != nil {
			return nil, err
		}
		for k, v := range groups {
			res.Groups = append(res.Groups, GroupCount{Key: k, Value: float64(v)})
			res.Value += float64(v)
		}
		sortGroups(res.Groups)
		return res, nil
	}
	switch stmt.Agg {
	case sqlparse.Sum:
		v, err := db.Sum(q, stmt.Col)
		if err != nil {
			return nil, err
		}
		res.Value = v
	case sqlparse.Avg:
		v, err := db.Avg(q, stmt.Col)
		if err != nil {
			return nil, err
		}
		res.Value = v
	default: // Count and CountDistinct (the projection is in the expr)
		n, err := db.Count(q)
		if err != nil {
			return nil, err
		}
		res.Value = float64(n)
	}
	return res, nil
}

// EstimateSQL runs an aggregate SQL statement under the time-constrained
// engine (same statement form as ExecSQL).
func (db *DB) EstimateSQL(sql string, opts EstimateOptions) (*SQLResult, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	q := Query{expr: stmt.Expr}
	res := &SQLResult{Kind: stmt.Agg.String()}
	if stmt.GroupBy != "" {
		groups, overall, err := db.GroupCountEstimate(q, stmt.GroupBy, opts)
		if err != nil {
			return nil, err
		}
		res.Groups = groups
		res.Value = overall.Value
		res.Estimate = overall
		return res, nil
	}
	var est *Estimate
	switch stmt.Agg {
	case sqlparse.Sum:
		est, err = db.SumEstimate(q, stmt.Col, opts)
	case sqlparse.Avg:
		est, err = db.AvgEstimate(q, stmt.Col, opts)
	default:
		est, err = db.CountEstimate(q, opts)
	}
	if err != nil {
		return nil, err
	}
	res.Value = est.Value
	res.Estimate = est
	return res, nil
}

// String renders the result compactly.
func (r *SQLResult) String() string {
	if len(r.Groups) > 0 {
		s := fmt.Sprintf("%s by group (%d groups, total %.1f)", r.Kind, len(r.Groups), r.Value)
		return s
	}
	if r.Estimate != nil {
		return fmt.Sprintf("%s ≈ %.1f ± %.1f", r.Kind, r.Value, r.Estimate.Interval)
	}
	return fmt.Sprintf("%s = %.1f", r.Kind, r.Value)
}

// sortGroups orders groups by key for deterministic output.
func sortGroups(gs []GroupCount) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && lessKey(gs[j].Key, gs[j-1].Key); j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

func lessKey(a, b interface{}) bool {
	switch av := a.(type) {
	case int64:
		if bv, ok := b.(int64); ok {
			return av < bv
		}
		return true
	case float64:
		if bv, ok := b.(float64); ok {
			return av < bv
		}
		if _, ok := b.(string); ok {
			return true
		}
		return false
	case string:
		if bv, ok := b.(string); ok {
			return av < bv
		}
		return false
	}
	return false
}
