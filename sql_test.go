package tcq

import (
	"math"
	"strings"
	"testing"
	"time"
)

func sqlDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithSimulatedClock(9))
	sales, err := db.CreateRelation("sales", []Column{
		{Name: "id", Type: Int},
		{Name: "region", Type: Int},
		{Name: "revenue", Type: Int},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	// 1200 rows: region = i%4, revenue = i%100.
	for i := 0; i < 1200; i++ {
		if err := sales.Insert(i, i%4, i%100); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestExecSQLCount(t *testing.T) {
	db := sqlDB(t)
	res, err := db.ExecSQL("SELECT COUNT(*) FROM sales WHERE revenue < 50")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 600 || res.Kind != "count" {
		t.Errorf("result = %+v", res)
	}
	if !strings.Contains(res.String(), "count = 600") {
		t.Errorf("String = %q", res.String())
	}
}

func TestExecSQLSumAvg(t *testing.T) {
	db := sqlDB(t)
	sum, err := db.ExecSQL("SELECT SUM(revenue) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	// Σ i%100 over 1200 rows = 12 × Σ0..99 = 12 × 4950.
	if sum.Value != 12*4950 {
		t.Errorf("sum = %g", sum.Value)
	}
	avg, err := db.ExecSQL("SELECT AVG(revenue) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg.Value-49.5) > 1e-9 {
		t.Errorf("avg = %g", avg.Value)
	}
}

func TestExecSQLCountDistinct(t *testing.T) {
	db := sqlDB(t)
	res, err := db.ExecSQL("SELECT COUNT(DISTINCT region) FROM sales")
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 || res.Kind != "count distinct" {
		t.Errorf("result = %+v", res)
	}
}

func TestExecSQLGroupBy(t *testing.T) {
	db := sqlDB(t)
	res, err := db.ExecSQL("SELECT COUNT(*) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("groups = %+v", res.Groups)
	}
	prev := int64(-1)
	for _, g := range res.Groups {
		k := g.Key.(int64)
		if k <= prev {
			t.Error("groups not sorted")
		}
		prev = k
		if g.Value != 300 {
			t.Errorf("group %v = %g, want 300", g.Key, g.Value)
		}
	}
	if res.Value != 1200 {
		t.Errorf("total = %g", res.Value)
	}
	if !strings.Contains(res.String(), "4 groups") {
		t.Errorf("String = %q", res.String())
	}
}

func TestExecSQLJoin(t *testing.T) {
	db := sqlDB(t)
	regions, err := db.CreateRelation("regions", []Column{
		{Name: "rid", Type: Int},
		{Name: "active", Type: Int},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := regions.Insert(i, i%2); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.ExecSQL("SELECT COUNT(*) FROM sales JOIN regions ON region = rid WHERE active = 1")
	if err != nil {
		t.Fatal(err)
	}
	// Regions 1 and 3 are active: 600 sales rows.
	if res.Value != 600 {
		t.Errorf("join count = %g", res.Value)
	}
}

func TestEstimateSQL(t *testing.T) {
	db := sqlDB(t)
	opts := EstimateOptions{Quota: 8 * time.Second, Seed: 3}
	res, err := db.EstimateSQL("SELECT COUNT(*) FROM sales WHERE revenue < 50", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate == nil || res.Estimate.Stages < 1 {
		t.Fatalf("estimate missing: %+v", res)
	}
	if res.Value <= 0 || math.Abs(res.Value-600)/600 > 1 {
		t.Errorf("estimate = %g (exact 600)", res.Value)
	}
	if !strings.Contains(res.String(), "±") {
		t.Errorf("String = %q", res.String())
	}
	// SUM / AVG / GROUP BY paths.
	if _, err := db.EstimateSQL("SELECT SUM(revenue) FROM sales", opts); err != nil {
		t.Fatal(err)
	}
	if _, err := db.EstimateSQL("SELECT AVG(revenue) FROM sales", opts); err != nil {
		t.Fatal(err)
	}
	g, err := db.EstimateSQL("SELECT COUNT(*) FROM sales GROUP BY region", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Groups) != 4 {
		t.Errorf("estimated groups = %d", len(g.Groups))
	}
}

func TestSQLErrors(t *testing.T) {
	db := sqlDB(t)
	bad := []string{
		"SELECT MAX(x) FROM sales",
		"SELECT COUNT(*) FROM missing",
		"SELECT SUM(zz) FROM sales",
		"SELECT COUNT(*) FROM sales WHERE zz < 1",
	}
	for _, s := range bad {
		if _, err := db.ExecSQL(s); err == nil {
			t.Errorf("ExecSQL(%q) should fail", s)
		}
		if _, err := db.EstimateSQL(s, EstimateOptions{Quota: time.Second}); err == nil {
			t.Errorf("EstimateSQL(%q) should fail", s)
		}
	}
	if _, err := db.EstimateSQL("SELECT COUNT(*) FROM sales", EstimateOptions{}); err == nil {
		t.Error("missing quota should fail")
	}
}
