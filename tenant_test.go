// Tenant-scoped sessions: labels flow into telemetry, per-tenant
// counters advance, and scoping never perturbs results.
package tcq_test

import (
	"strings"
	"testing"
	"time"

	"tcq"
)

func TestTenantScopedQueries(t *testing.T) {
	db, q := telemetryDB(t, tcq.WithSimulatedClock(21), tcq.WithTelemetry(16))
	alice := db.Tenant("alice")
	bob := db.Tenant("bob")
	opts := tcq.EstimateOptions{Quota: 5 * time.Second, Seed: 3}

	aEst, err := alice.CountEstimate(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.CountEstimate(q, opts); err != nil {
		t.Fatal(err)
	}
	withReq := opts
	withReq.Label = "req-7"
	if _, err := alice.CountEstimate(q, withReq); err != nil {
		t.Fatal(err)
	}

	// Scoping is observational: an unscoped identically-seeded run on a
	// twin DB returns the same estimate.
	twin, tq := telemetryDB(t, tcq.WithSimulatedClock(21), tcq.WithTelemetry(16))
	plain, err := twin.CountEstimate(tq, opts)
	if err != nil {
		t.Fatal(err)
	}
	if *plain != *aEst {
		t.Errorf("tenant scoping perturbed the estimate:\nplain  %+v\ntenant %+v", plain, aEst)
	}

	// Labels reach the history ring, composed as name or name/suffix.
	labels := map[string]bool{}
	for _, h := range db.History() {
		labels[h.Label] = true
	}
	for _, want := range []string{"alice", "bob", "alice/req-7"} {
		if !labels[want] {
			t.Errorf("history missing label %q: %v", want, labels)
		}
	}

	// Tenant views filter to their own traffic.
	if hist := alice.History(); len(hist) != 2 {
		t.Errorf("alice.History: want 2, got %+v", hist)
	}
	if hist := bob.History(); len(hist) != 1 || hist[0].Label != "bob" {
		t.Errorf("bob.History wrong: %+v", hist)
	}

	// Per-tenant counters appear as labeled series.
	snap := db.Metrics()
	if got := snap.Counters[`tenant_queries|tenant=alice`]; got != 2 {
		t.Errorf("alice tenant_queries = %d, want 2", got)
	}
	if got := snap.Counters[`tenant_queries|tenant=bob`]; got != 1 {
		t.Errorf("bob tenant_queries = %d, want 1", got)
	}

	// SQL paths count too.
	if _, err := bob.ExecSQL("SELECT COUNT(*) FROM orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.EstimateSQL("SELECT COUNT(*) FROM orders WHERE amount < 500",
		tcq.EstimateOptions{Quota: 5 * time.Second, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().Counters[`tenant_queries|tenant=bob`]; got != 3 {
		t.Errorf("bob tenant_queries after SQL = %d, want 3", got)
	}

	// An empty-name tenant is an unscoped view.
	if _, err := db.Tenant("").CountEstimate(q, opts); err != nil {
		t.Fatal(err)
	}
	for k := range db.Metrics().Counters {
		if strings.HasPrefix(k, "tenant_queries|tenant=|") || k == "tenant_queries|tenant=" {
			t.Errorf("empty tenant leaked a labeled counter: %q", k)
		}
	}
}
