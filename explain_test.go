package tcq

import (
	"strings"
	"testing"
	"time"

	"tcq/internal/ra"
)

// setDB builds two overlapping single-column relations for the set
// operator tests.
func setDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithSimulatedClock(3))
	for _, spec := range []struct {
		name  string
		lo, n int
	}{{"evens", 0, 300}, {"odds", 100, 300}} {
		rel, err := db.CreateRelation(spec.name, []Column{{Name: "a", Type: Int}}, 200)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < spec.n; i++ {
			if err := rel.Insert(spec.lo + i); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestExplainUnion(t *testing.T) {
	db := setDB(t)
	q := Rel("evens").Union(Rel("odds"))
	out, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"inclusion–exclusion over 3 terms", "scan evens", "scan odds", "sort-merge intersect"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain(union) missing %q in:\n%s", want, out)
		}
	}
}

func TestExplainDifference(t *testing.T) {
	db := setDB(t)
	q := Rel("evens").Minus(Rel("odds"))
	out, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"term 1 (+1)", "term 2 (-1)", "scan evens", "sort-merge intersect"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain(difference) missing %q in:\n%s", want, out)
		}
	}
}

// TestExplainExprSetOps exercises the explicit Union/Difference cases of
// the plan renderer directly — Terms normally decomposes them away, but
// the renderer must still recurse into children rather than flattening
// the node to its String form.
func TestExplainExprSetOps(t *testing.T) {
	db := setDB(t)
	var b strings.Builder
	u := &ra.Union{Left: &ra.Base{Name: "evens"}, Right: &ra.Base{Name: "odds"}}
	explainExpr(&b, u, 0, db)
	d := &ra.Difference{Left: &ra.Base{Name: "evens"}, Right: &ra.Base{Name: "odds"}}
	explainExpr(&b, d, 0, db)
	out := b.String()
	for _, want := range []string{"union (inclusion–exclusion)", "difference (inclusion–exclusion)", "  scan evens (300 tuples"} {
		if !strings.Contains(out, want) {
			t.Errorf("explainExpr missing %q in:\n%s", want, out)
		}
	}
}

func TestExplainMissingRelation(t *testing.T) {
	db := setDB(t)
	if _, err := db.Explain(Rel("nosuch")); err == nil {
		t.Fatal("Explain of a missing relation should fail")
	}
}

func TestExplainQueryError(t *testing.T) {
	db := setDB(t)
	bad, _ := Parse("count(")
	if _, err := db.Explain(bad); err == nil {
		t.Fatal("Explain of an invalid query should fail")
	}
}

func TestExplainAnalyze(t *testing.T) {
	db := demoDB(t, 2000, 0)
	q := Rel("orders").Where(Col("amount").Lt(500))
	out, err := db.ExplainAnalyze(q, EstimateOptions{Quota: 10 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"count(select", "strategy=one-at-a-time", "operators (final-stage estimates):",
		"select", "sel=", "relations sampled:", "orders", "stages:", "stage", "result:",
		"calibration:", "cost ratio mean", "worst overshoot",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze missing %q in:\n%s", want, out)
		}
	}
}

// With GroundTruth set, ExplainAnalyze appends a truth-audit line to
// the calibration footer scoring the final CI against the exact answer.
func TestExplainAnalyzeGroundTruthFooter(t *testing.T) {
	db := demoDB(t, 2000, 0)
	q := Rel("orders").Where(Col("amount").Lt(500))
	truth := 999999.0 // far outside any plausible interval → miss
	out, err := db.ExplainAnalyze(q, EstimateOptions{Quota: 10 * time.Second, Seed: 1, GroundTruth: &truth})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ground truth 999999: CI miss") {
		t.Errorf("footer missing truth-audit miss line:\n%s", out)
	}
	// The estimate itself must be unaffected by declaring a truth
	// (read-only contract): rendering without truth differs only by the
	// audit line.
	plain, err := demoDB(t, 2000, 0).ExplainAnalyze(q, EstimateOptions{Quota: 10 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, plain) {
		t.Errorf("GroundTruth changed the report body:\n--- plain\n%s\n--- with truth\n%s", plain, out)
	}
}

// TestExplainAnalyzeParallelIdentical: the rendered plan-with-stages
// report is built entirely from the collected trace, and the lane
// record/replay machinery makes traces independent of the worker
// count — so ExplainAnalyze output must be byte-identical between a
// serial and a parallel run of the same seeded session.
func TestExplainAnalyzeParallelIdentical(t *testing.T) {
	render := func(workers int) string {
		db := demoDB(t, 2000, 0)
		q := Rel("orders").Where(Col("amount").Lt(500))
		out, err := db.ExplainAnalyze(q, EstimateOptions{
			Quota: 10 * time.Second, Seed: 1, Parallelism: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := render(0)
	for _, workers := range []int{2, 4} {
		if got := render(workers); got != serial {
			t.Errorf("ExplainAnalyze diverges at Parallelism=%d:\n--- serial\n%s\n--- parallel\n%s",
				workers, serial, got)
		}
	}
}

func TestExplainAnalyzeError(t *testing.T) {
	db := setDB(t)
	bad, _ := Parse("count(")
	if _, err := db.ExplainAnalyze(bad, EstimateOptions{Quota: time.Second}); err == nil {
		t.Fatal("ExplainAnalyze of an invalid query should fail")
	}
}

func TestEstimateCollectTrace(t *testing.T) {
	db := demoDB(t, 2000, 0)
	q := Rel("orders").Where(Col("amount").Lt(500))
	est, err := db.CountEstimate(q, EstimateOptions{Quota: 10 * time.Second, Seed: 1, CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := est.Trace
	if tr == nil {
		t.Fatal("CollectTrace set but Estimate.Trace is nil")
	}
	if len(tr.Stages) != est.Stages {
		t.Fatalf("trace has %d stage records, estimate reports %d stages", len(tr.Stages), est.Stages)
	}
	if tr.End.Estimate != est.Value || tr.End.Stages != est.Stages {
		t.Fatalf("trace end record inconsistent: %+v vs value %v", tr.End, est.Value)
	}
	s1 := tr.Stages[0]
	if s1.Fraction <= 0 || s1.Blocks <= 0 || len(s1.Operators) == 0 || len(s1.Relations) == 0 {
		t.Fatalf("first stage record incomplete: %+v", s1)
	}
	if s1.Charges.BlocksRead <= 0 {
		t.Fatalf("stage charges not populated: %+v", s1.Charges)
	}

	// Metrics registry should have aggregated the run.
	snap := db.Metrics()
	if snap.Counters["queries"] < 1 || snap.Counters["stages"] < 1 {
		t.Fatalf("metrics not recorded: %+v", snap.Counters)
	}
	db.ResetMetrics()
	if n := db.Metrics().Counters["queries"]; n != 0 {
		t.Fatalf("ResetMetrics left queries=%d", n)
	}
}
