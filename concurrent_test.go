package tcq

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

// stressDB builds one instance of the stress fixture: a 2000-tuple
// orders relation in which exactly 500 tuples have amount < 500.
// Every call produces a byte-identical database (same data, same
// simulated-clock seed), so two instances replay each other's queries.
func stressDB(t *testing.T) *DB {
	t.Helper()
	db := Open(WithSimulatedClock(11), WithLoadNoise(0.1))
	rel, err := db.CreateRelation("orders", []Column{
		{Name: "id", Type: Int},
		{Name: "amount", Type: Int},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := rel.Insert(i, (i*7919+3)%n); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestConcurrentMixedWorkloadMatchesSerialReplay is the DB-level
// concurrency contract: 16 goroutines share one DB and issue a mix of
// exact counts, quota-bounded estimates, and EXPLAIN ANALYZE runs.
// Under -race this exercises the locking discipline; functionally,
// every concurrent result must equal a serial replay of the same
// seeded query on an identical database, and the metrics registry's
// order-independent aggregates (counters, histograms) must sum to
// exactly the serial totals.
func TestConcurrentMixedWorkloadMatchesSerialReplay(t *testing.T) {
	const goroutines = 16
	const iters = 3

	q, err := Parse(`select(orders, amount < 500)`)
	if err != nil {
		t.Fatal(err)
	}
	// Per-slot options: unique sampler seeds, and a mix of serial,
	// auto, and 2-worker parallel evaluation (the choice must not be
	// observable in results).
	estOpts := func(g, i int) EstimateOptions {
		return EstimateOptions{
			Quota:       5 * time.Second,
			Seed:        int64(1000*g + i + 1),
			Parallelism: g%3 - 1,
		}
	}
	explainOpts := func(g int) EstimateOptions {
		return EstimateOptions{Quota: 5 * time.Second, Seed: int64(50_000 + g)}
	}

	// Serial replay on an identical database records the expected
	// outcome of every (goroutine, iteration) slot. Order does not
	// matter: each query's session is seeded only by (db seed, query
	// seed).
	serial := stressDB(t)
	wantEst := make(map[[2]int]Estimate)
	wantPlan := make(map[int]string)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < iters; i++ {
			est, err := serial.CountEstimate(q, estOpts(g, i))
			if err != nil {
				t.Fatal(err)
			}
			wantEst[[2]int{g, i}] = *est
		}
		plan, err := serial.ExplainAnalyze(q, explainOpts(g))
		if err != nil {
			t.Fatal(err)
		}
		wantPlan[g] = plan
	}

	db := stressDB(t)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		errs = append(errs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n, err := db.Count(q)
				if err != nil || n != 500 {
					fail("g%d i%d: exact count = %d, %v (want 500)", g, i, n, err)
					continue
				}
				est, err := db.CountEstimate(q, estOpts(g, i))
				if err != nil {
					fail("g%d i%d: estimate: %v", g, i, err)
					continue
				}
				if want := wantEst[[2]int{g, i}]; *est != want {
					fail("g%d i%d: concurrent estimate diverges from serial replay:\n got %+v\nwant %+v",
						g, i, *est, want)
				}
			}
			plan, err := db.ExplainAnalyze(q, explainOpts(g))
			if err != nil {
				fail("g%d: explain analyze: %v", g, err)
			} else if plan != wantPlan[g] {
				fail("g%d: concurrent EXPLAIN ANALYZE diverges from serial replay:\n got %s\nwant %s",
					g, plan, wantPlan[g])
			}
		}(g)
	}
	wg.Wait()
	for _, e := range errs {
		t.Error(e)
	}

	// The registries must agree on every order-independent aggregate.
	// (Gauges are last-write-wins and legitimately depend on completion
	// order, so they are excluded.)
	got, want := db.Metrics(), serial.Metrics()
	if !reflect.DeepEqual(got.Counters, want.Counters) {
		t.Errorf("metrics counters diverge:\n got %+v\nwant %+v", got.Counters, want.Counters)
	}
	if len(got.Histograms) != len(want.Histograms) {
		t.Errorf("metrics histograms diverge:\n got %+v\nwant %+v", got.Histograms, want.Histograms)
	}
	for name, w := range want.Histograms {
		g, ok := got.Histograms[name]
		// Sum (and hence Mean) accumulates floats in completion order,
		// so concurrent and serial totals may differ in the last ulp;
		// everything else must match exactly.
		const rel = 1e-12
		if !ok || g.Count != w.Count || g.Min != w.Min || g.Max != w.Max ||
			!reflect.DeepEqual(g.Buckets, w.Buckets) ||
			math.Abs(g.Sum-w.Sum) > rel*math.Abs(w.Sum) ||
			math.Abs(g.Mean-w.Mean) > rel*math.Abs(w.Mean) {
			t.Errorf("histogram %q diverges:\n got %+v\nwant %+v", name, g, w)
		}
	}
	// Physical work merged from the per-query sessions must sum to the
	// serial totals too.
	if gc, wc := db.Store().Counters(), serial.Store().Counters(); gc != wc {
		t.Errorf("store counters diverge:\n got %+v\nwant %+v", gc, wc)
	}
}
