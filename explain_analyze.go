package tcq

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tcq/internal/calib"
	"tcq/internal/trace"
)

// ExplainAnalyze runs the time-constrained estimate and renders the
// static plan annotated with per-stage actuals: each operator's
// estimated selectivity and tuple flow from the final stage, followed
// by the stage table (chosen fraction f_i, predicted vs actual QCOST,
// overshoot, running estimate) and the run summary. The query is
// actually executed under opts — the quota is spent.
func (db *DB) ExplainAnalyze(q Query, opts EstimateOptions) (string, error) {
	opts.CollectTrace = true
	est, err := db.CountEstimate(q, opts)
	if err != nil {
		return "", err
	}
	out := RenderAnalyze(est)
	if opts.GroundTruth != nil {
		out += renderTruthAudit(est, *opts.GroundTruth)
	}
	return out, nil
}

// renderTruthAudit is the ground-truth line of the calibration footer:
// how the reported interval scored against the known exact answer
// (hit, miss, or degenerate when a zero-width interval sits off truth).
func renderTruthAudit(est *Estimate, truth float64) string {
	switch {
	case est.Interval <= 0 && est.Value != truth:
		return fmt.Sprintf("ground truth %.0f: degenerate zero-width CI (est %.1f)\n", truth, est.Value)
	case math.Abs(est.Value-truth) <= est.Interval:
		return fmt.Sprintf("ground truth %.0f: CI hit (est %.1f ± %.1f)\n", truth, est.Value, est.Interval)
	default:
		return fmt.Sprintf("ground truth %.0f: CI miss (est %.1f ± %.1f)\n", truth, est.Value, est.Interval)
	}
}

// RenderAnalyze renders an already-collected trace (Estimate.Trace must
// be present) in the ExplainAnalyze format.
func RenderAnalyze(est *Estimate) string {
	var b strings.Builder
	t := est.Trace
	if t == nil {
		b.WriteString("(no trace collected — set EstimateOptions.CollectTrace)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "count(%s)  quota=%v strategy=%s mode=%s plan=%s sampling=%s seed=%d\n",
		t.Info.Query, t.Info.Quota, t.Info.Strategy, t.Info.Mode, t.Info.Plan,
		t.Info.Sampling, t.Info.Seed)
	if len(t.Stages) > 0 {
		last := t.Stages[len(t.Stages)-1]
		b.WriteString("operators (final-stage estimates):\n")
		renderOpTree(&b, last.Operators)
		if len(last.Relations) > 0 {
			b.WriteString("relations sampled:\n")
			for _, r := range last.Relations {
				fmt.Fprintf(&b, "  %-12s %d blocks drawn (%.1f%% of relation)\n",
					r.Relation, r.CumBlocks, 100*r.CumFraction)
			}
		}
	}
	b.WriteString("stages:\n")
	b.WriteString(trace.RenderStages(t.Stages))
	fmt.Fprintf(&b, "result: %.1f ± %.1f  stages=%d blocks=%d elapsed=%v utilization=%.0f%% stop=%s\n",
		est.Value, est.Interval, est.Stages, est.Blocks, est.Elapsed,
		100*est.Utilization, est.StopReason)
	if est.Overspent {
		fmt.Fprintf(&b, "overspent by %v\n", est.Overrun)
	}
	// Calibration footer: how well QCOST predicted this run. Derived
	// purely from the stage records, so it is byte-identical for serial
	// and parallel evaluation of the same seed.
	n, sum := 0, 0.0
	worst, worstStage, worstOp := 0.0, 0, ""
	for i := range t.Stages {
		s := &t.Stages[i]
		if s.Predicted <= 0 {
			continue
		}
		n++
		sum += float64(s.Actual) / float64(s.Predicted)
		if n == 1 || s.Overshoot > worst {
			worst, worstStage, worstOp = s.Overshoot, s.Stage, calib.DominantOp(s)
		}
	}
	if n > 0 {
		fmt.Fprintf(&b, "calibration: %d predicted stage(s), cost ratio mean %.3f, worst overshoot %+.1f%% @ stage %d",
			n, sum/float64(n), 100*worst, worstStage)
		if worstOp != "" {
			fmt.Fprintf(&b, " (%s)", worstOp)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// renderOpTree reconstructs the operator forest from the flat OpStat
// list (roots are nodes no other node lists as a child) and prints it
// indented, one line per operator with its selectivity and tuple flow.
func renderOpTree(b *strings.Builder, ops []trace.OpStat) {
	byID := make(map[int]trace.OpStat, len(ops))
	child := make(map[int]bool)
	for _, o := range ops {
		byID[o.Node] = o
		for _, c := range o.Children {
			child[c] = true
		}
	}
	var roots []int
	for _, o := range ops {
		if !child[o.Node] {
			roots = append(roots, o.Node)
		}
	}
	sort.Ints(roots)
	var walk func(id, depth int)
	walk = func(id, depth int) {
		o, ok := byID[id]
		if !ok {
			return
		}
		pad := strings.Repeat("  ", depth+1)
		line := fmt.Sprintf("%s%s", pad, o.Op)
		if o.Expr != "" {
			line += " " + o.Expr
		}
		line += fmt.Sprintf("  (sel=%.6f", o.Sel)
		if o.SelPlus > 0 {
			line += fmt.Sprintf(" sel⁺=%.6f", o.SelPlus)
		}
		line += fmt.Sprintf(", out=%d tuples)", o.CumOut)
		b.WriteString(line + "\n")
		kids := append([]int(nil), o.Children...)
		sort.Ints(kids)
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}
