package tcq

import "tcq/internal/telemetry"

// Tenant is a tenant-scoped view of a DB: the same shared store and
// engine, with every query stamped with the tenant's name so telemetry
// (progress registry, history ring, flight recorder) and the metrics
// registry attribute work per tenant. Scoping is observational — it
// never changes an estimate — and free when the DB runs without
// telemetry. Admission control per tenant is layered on top by the
// tcqd server (one sched.Controller per tenant); the Tenant itself
// does not gate.
//
// Labels compose as "name" for a bare tenant query and "name/suffix"
// when the caller supplies its own Label (e.g. a request id), so
// /queries?label=name and /history?label=name select exactly this
// tenant's traffic.
type Tenant struct {
	db   *DB
	name string
}

// Tenant returns the tenant-scoped view named name. Views are cheap
// (two words) and need not be cached; an empty name yields an
// unscoped view equivalent to the DB itself.
func (db *DB) Tenant(name string) *Tenant { return &Tenant{db: db, name: name} }

// Name reports the tenant's name.
func (t *Tenant) Name() string { return t.name }

// DB returns the underlying database.
func (t *Tenant) DB() *DB { return t.db }

// scope stamps the tenant label onto opts and counts the query against
// the tenant's labeled metrics series.
func (t *Tenant) scope(opts EstimateOptions) EstimateOptions {
	if t.name != "" {
		if opts.Label == "" {
			opts.Label = t.name
		} else {
			opts.Label = t.name + "/" + opts.Label
		}
	}
	t.count()
	return opts
}

// count bumps the per-tenant query counter (rendered on /metrics as
// tcq_tenant_queries_total{tenant="name"}).
func (t *Tenant) count() {
	if t.name == "" {
		return
	}
	t.db.metrics.Add(telemetry.Labeled("tenant_queries", "tenant", t.name), 1)
}

// CountEstimate is DB.CountEstimate under the tenant label.
func (t *Tenant) CountEstimate(q Query, opts EstimateOptions) (*Estimate, error) {
	return t.db.CountEstimate(q, t.scope(opts))
}

// SumEstimate is DB.SumEstimate under the tenant label.
func (t *Tenant) SumEstimate(q Query, col string, opts EstimateOptions) (*Estimate, error) {
	return t.db.SumEstimate(q, col, t.scope(opts))
}

// AvgEstimate is DB.AvgEstimate under the tenant label.
func (t *Tenant) AvgEstimate(q Query, col string, opts EstimateOptions) (*Estimate, error) {
	return t.db.AvgEstimate(q, col, t.scope(opts))
}

// GroupCountEstimate is DB.GroupCountEstimate under the tenant label.
func (t *Tenant) GroupCountEstimate(q Query, col string, opts EstimateOptions) ([]GroupCount, *Estimate, error) {
	return t.db.GroupCountEstimate(q, col, t.scope(opts))
}

// EstimateSQL is DB.EstimateSQL under the tenant label.
func (t *Tenant) EstimateSQL(sql string, opts EstimateOptions) (*SQLResult, error) {
	return t.db.EstimateSQL(sql, t.scope(opts))
}

// ExecSQL is DB.ExecSQL counted against the tenant (exact execution
// carries no telemetry label; the per-tenant query counter still
// advances).
func (t *Tenant) ExecSQL(sql string) (*SQLResult, error) {
	t.count()
	return t.db.ExecSQL(sql)
}

// InFlight lists the tenant's queries currently evaluating.
func (t *Tenant) InFlight() []QueryProgress {
	return filterLabel(t.db.InFlight(), t.name, func(p QueryProgress) string { return p.Label })
}

// History lists the tenant's recently completed queries.
func (t *Tenant) History() []QuerySummary {
	return filterLabel(t.db.History(), t.name, func(s QuerySummary) string { return s.Label })
}

// filterLabel keeps records whose label is the tenant name or a
// "name/..." composite.
func filterLabel[T any](in []T, name string, label func(T) string) []T {
	if name == "" {
		return in
	}
	out := in[:0]
	for _, v := range in {
		l := label(v)
		if l == name || (len(l) > len(name) && l[:len(name)] == name && l[len(name)] == '/') {
			out = append(out, v)
		}
	}
	return out
}
