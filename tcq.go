// Package tcq is a time-constrained aggregate query processor: a Go
// reproduction of "Processing Aggregate Relational Queries with Hard
// Time Constraints" (Hou, Ozsoyoglu, Taneja; SIGMOD 1989).
//
// Given COUNT(E) for an arbitrary relational algebra expression E and a
// time quota T, tcq returns a statistical estimate of the count within
// T by iteratively cluster-sampling disk blocks from the operand
// relations, evaluating the estimator stage by stage, and sizing each
// stage with adaptive time-cost formulas and a risk-controlled
// time-control strategy.
//
// Quick start:
//
//	db := tcq.Open(tcq.WithSimulatedClock(42))
//	rel, _ := db.CreateRelation("orders", []tcq.Column{
//		{Name: "id", Type: tcq.Int},
//		{Name: "amount", Type: tcq.Int},
//	}, 200)
//	// ... rel.Insert(...) ...
//	q := tcq.Rel("orders").Where(tcq.Col("amount").Lt(100))
//	est, _ := db.CountEstimate(q, tcq.EstimateOptions{Quota: 100 * time.Millisecond})
//	fmt.Printf("count ≈ %.0f ± %.0f (spent %v)\n", est.Value, est.Interval, est.Elapsed)
//
// The package runs against either a simulated machine (a virtual clock
// with a 1989-calibrated cost profile — deterministic and fast, used by
// the experiment harness) or the real clock (in-memory evaluation with
// millisecond quotas, as in the examples).
package tcq

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"tcq/internal/calib"
	"tcq/internal/catalog"
	"tcq/internal/core"
	"tcq/internal/exec"
	"tcq/internal/histogram"
	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/telemetry"
	"tcq/internal/trace"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// ColType enumerates the supported column types.
type ColType int

const (
	// Int is a 64-bit signed integer column.
	Int ColType = iota
	// Float is a 64-bit floating point column.
	Float
	// String is a fixed-width string column (set Column.Size).
	String
)

// Column declares one attribute of a relation.
type Column struct {
	Name string
	Type ColType
	Size int // byte width for String columns
}

// config collects Open options.
type config struct {
	clock       vclock.Clock
	simClock    *vclock.Sim
	simSeed     int64
	jitter      float64
	profile     storage.CostProfile
	blockSize   int
	loadSigma   float64
	telemetry   bool
	historySize int
	queryLog    *slog.Logger
	calibration bool
	flightSize  int
	catalog     bool
	catalogRes  []float64
}

// Option configures Open.
type Option func(*config)

// WithSimulatedClock runs the database against a deterministic virtual
// clock seeded with seed: all I/O and CPU work is charged per the cost
// profile instead of taking real time. This is the default (seed 1).
func WithSimulatedClock(seed int64) Option {
	return func(c *config) {
		sim := vclock.NewSim(seed, 0.03)
		c.simClock = sim
		c.simSeed = seed
		c.jitter = 0.03
		c.clock = sim
	}
}

// WithRealClock runs the database against the wall clock: queries do
// their work in memory and quotas are real durations.
func WithRealClock() Option {
	return func(c *config) {
		c.simClock = nil
		c.clock = vclock.NewReal()
	}
}

// WithCostProfile overrides the simulated machine's cost profile
// (ignored under a real clock).
func WithCostProfile(p storage.CostProfile) Option {
	return func(c *config) { c.profile = p }
}

// WithFastMachine switches the simulated machine to a memory-resident,
// modern-era cost profile (microsecond block access), suiting
// millisecond quotas — the paper's real-time database setting.
func WithFastMachine() Option {
	return func(c *config) { c.profile = storage.FastProfile() }
}

// WithBlockSize overrides the disk block size (default 1 KB).
func WithBlockSize(bytes int) Option {
	return func(c *config) { c.blockSize = bytes }
}

// WithLoadNoise enables per-stage system-load variability on the
// simulated clock (lognormal sigma; the experiment harness uses 0.12).
func WithLoadNoise(sigma float64) Option {
	return func(c *config) { c.loadSigma = sigma }
}

// WithTelemetry enables the live telemetry layer: every estimate run
// registers an in-flight progress record updated at stage boundaries
// (DB.InFlight), and completed runs are retained in a ring of
// historySize summaries (DB.History, 128 when <= 0) with per-shape
// aggregates (DB.QueryStats). Expose it over HTTP with
// DB.ServeTelemetry. Telemetry observes queries through the tracing
// layer's read-only contract, so estimates are bit-identical with it on
// or off; when off, the engine pays a single nil check per query.
func WithTelemetry(historySize int) Option {
	return func(c *config) {
		c.telemetry = true
		c.historySize = historySize
	}
}

// WithCalibration enables the calibration observatory: every estimate
// run is audited for cost-model drift (per-shape and per-operator
// actual/predicted QCOST ratios), runs with a declared ground truth
// (EstimateOptions.GroundTruth) feed empirical CI-coverage statistics,
// and anomalous runs — hard-deadline aborts, overspends past 5% of the
// quota, ground-truth CI misses — have their full traces captured in a
// flight-recorder ring of flightSize records (64 when <= 0). Inspect
// with DB.Calibration and DB.FlightRecords, or over HTTP at
// /calibration and /debug/flightrecorder. The auditor observes queries
// through the tracing layer's read-only contract, so estimates are
// bit-identical with calibration on or off.
func WithCalibration(flightSize int) Option {
	return func(c *config) {
		c.calibration = true
		c.flightSize = flightSize
	}
}

// WithCatalog enables the sample catalog — the warm path for repeated
// query shapes. The catalog holds a materialized seeded block
// permutation per relation (multi-resolution by nested prefixes, see
// DB.BuildCatalog; stratified variants via DB.BuildCatalogStratified)
// plus a shape-reuse cache keyed on canonical query fingerprints. The
// first run of a shape misses — and is byte-identical to a run without
// the catalog — while recording the coverage it stopped at; the next
// run of the same shape reuses the materialized sample and jumps
// straight to that coverage, skipping the cold run's early discovery
// stages. resolutions overrides the resolution ladder (ascending
// sample fractions; the default is catalog.DefaultResolutions).
func WithCatalog(resolutions ...float64) Option {
	return func(c *config) {
		c.catalog = true
		c.catalogRes = resolutions
	}
}

// WithQueryLog attaches a structured event log (query start/stage/
// finish, quota overruns at Warn) emitted through the given slog
// logger. Implies WithTelemetry.
func WithQueryLog(l *slog.Logger) Option {
	return func(c *config) {
		c.telemetry = true
		c.queryLog = l
	}
}

// DB is a tcq database instance: a catalog of relations plus the
// time-constrained query engine.
//
// A DB is safe for concurrent use. The catalog and relation data are
// guarded by RW locks in the storage layer; every estimate call runs on
// its own session — a private view of the store with a per-query clock
// (derived deterministically from the query seed under a simulated
// clock) and confined work counters, folded into the DB totals when the
// query finishes. A query's result therefore depends only on the data
// and its own options, never on what runs next to it: a concurrent call
// returns exactly what the same call returns serially.
type DB struct {
	store   *storage.Store
	clock   vclock.Clock
	engine  *core.Engine
	metrics *trace.Registry
	// progress is the live telemetry registry, nil unless WithTelemetry
	// (or WithQueryLog) was given — the disabled path is one nil check.
	progress *telemetry.Registry
	// calib is the calibration auditor, nil unless WithCalibration was
	// given — the disabled path is one nil check per query.
	calib *calib.Auditor
	// samples is the sample catalog, nil unless WithCatalog was given —
	// with it nil every estimate takes the cold path unchanged.
	samples *catalog.Catalog
	cfg     config

	mu    sync.Mutex // guards stats
	stats *histogram.Catalog
}

// Open creates a database. With no options it uses a simulated clock
// (seed 1) and the SUN-3/60-calibrated cost profile.
func Open(opts ...Option) *DB {
	cfg := config{profile: storage.SunProfile(), blockSize: storage.DefaultBlockSize}
	WithSimulatedClock(1)(&cfg)
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.simClock != nil && cfg.loadSigma > 0 {
		cfg.simClock.SetLoadSigma(cfg.loadSigma)
	}
	store := storage.NewStore(cfg.clock, cfg.profile, cfg.blockSize)
	db := &DB{
		store:   store,
		clock:   cfg.clock,
		engine:  core.NewEngine(store),
		metrics: trace.NewRegistry(),
		cfg:     cfg,
	}
	if cfg.telemetry {
		db.progress = telemetry.NewRegistry(cfg.historySize)
		db.progress.SetLogger(telemetry.NewLogger(cfg.queryLog))
	}
	if cfg.calibration {
		db.calib = calib.NewAuditor(calib.Config{FlightSize: cfg.flightSize, Metrics: db.metrics})
	}
	if cfg.catalog {
		db.samples = catalog.New(cfg.simSeed, cfg.catalogRes...)
	}
	return db
}

// session derives a per-query store view. Under a simulated clock the
// session gets its own Sim seeded from the DB seed and the query seed,
// so identically-seeded queries are bit-reproducible no matter how many
// run concurrently; under a real clock the shared wall clock is used
// (charges are no-ops). finish folds the session's work counters into
// the DB totals and advances the DB's display clock by the query's
// elapsed virtual time (a jitter-free, commutative addition — the final
// reading is independent of completion order).
func (db *DB) session(querySeed int64) (sess *storage.Store, finish func(elapsed time.Duration)) {
	var clk vclock.Clock
	var sim *vclock.Sim
	if db.cfg.simClock != nil {
		sim = vclock.NewSim(db.cfg.simSeed*1_000_003+querySeed, db.cfg.jitter)
		if db.cfg.loadSigma > 0 {
			sim.SetLoadSigma(db.cfg.loadSigma)
		}
		clk = sim
	}
	sess = db.store.Session(clk)
	return sess, func(elapsed time.Duration) {
		sess.MergeCounters()
		if sim != nil {
			db.cfg.simClock.Advance(elapsed)
		}
	}
}

// Store exposes the underlying storage engine (for advanced use and the
// workload generators).
func (db *DB) Store() *storage.Store { return db.store }

// CreateRelation registers a new relation. padToBytes, when positive,
// pads each tuple to the given size (e.g. 200 for the paper's 5-tuples-
// per-block geometry); pass 0 for no padding.
func (db *DB) CreateRelation(name string, cols []Column, padToBytes int) (*Relation, error) {
	tcols := make([]tuple.Column, len(cols))
	for i, c := range cols {
		var tt tuple.ColType
		switch c.Type {
		case Int:
			tt = tuple.Int
		case Float:
			tt = tuple.Float
		case String:
			tt = tuple.String
		default:
			return nil, fmt.Errorf("tcq: column %q has unknown type", c.Name)
		}
		tcols[i] = tuple.Column{Name: c.Name, Type: tt, Size: c.Size}
	}
	schema, err := tuple.NewSchema(tcols...)
	if err != nil {
		return nil, err
	}
	padded := false
	if padToBytes > schema.TupleSize() {
		schema, err = schema.WithPadding(padToBytes)
		if err != nil {
			return nil, err
		}
		padded = true
	}
	rel, err := db.store.CreateRelation(name, schema)
	if err != nil {
		return nil, err
	}
	return &Relation{rel: rel, arity: len(cols), padded: padded}, nil
}

// Relation returns a handle to an existing relation.
func (db *DB) Relation(name string) (*Relation, error) {
	rel, err := db.store.Relation(name)
	if err != nil {
		return nil, err
	}
	return &Relation{rel: rel, arity: rel.Schema().NumCols()}, nil
}

// Relations lists the catalog's relation names.
func (db *DB) Relations() []string { return db.store.RelationNames() }

// DropRelation removes a relation from the catalog.
func (db *DB) DropRelation(name string) error { return db.store.DropRelation(name) }

// Relation is a handle to a stored relation.
type Relation struct {
	rel    *storage.Relation
	arity  int // user-visible columns (excludes padding)
	padded bool
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.rel.Name() }

// NumTuples returns the tuple count.
func (r *Relation) NumTuples() int64 { return r.rel.NumTuples() }

// NumBlocks returns the disk block count.
func (r *Relation) NumBlocks() int { return r.rel.NumBlocks() }

// Columns returns the relation's user-visible columns (the internal
// padding column, if any, is omitted).
func (r *Relation) Columns() []Column {
	sch := r.rel.Schema()
	out := make([]Column, 0, r.arity)
	for i := 0; i < r.arity; i++ {
		c := sch.Col(i)
		col := Column{Name: c.Name, Size: c.Size}
		switch c.Type {
		case tuple.Int:
			col.Type = Int
		case tuple.Float:
			col.Type = Float
		case tuple.String:
			col.Type = String
		}
		out = append(out, col)
	}
	return out
}

// Insert appends one tuple. Values must match the declared columns
// (int/int64 for Int, float64 for Float, string for String); the
// padding column, if any, is filled automatically.
func (r *Relation) Insert(values ...interface{}) error {
	if len(values) != r.arity {
		return fmt.Errorf("tcq: %s wants %d values, got %d", r.Name(), r.arity, len(values))
	}
	t := make(tuple.Tuple, 0, r.arity+1)
	for _, v := range values {
		switch x := v.(type) {
		case int:
			t = append(t, int64(x))
		case int64:
			t = append(t, x)
		case float64:
			t = append(t, x)
		case string:
			t = append(t, x)
		default:
			return fmt.Errorf("tcq: unsupported value type %T", v)
		}
	}
	if r.padded {
		t = append(t, "")
	}
	return r.rel.Append(t)
}

// Save writes the relation in the tcq binary format.
func (r *Relation) Save(w io.Writer) error { return r.rel.Save(w) }

// SaveFile writes the relation to a host file.
func (r *Relation) SaveFile(path string) error { return r.rel.SaveFile(path) }

// Close releases a file-backed relation's file handle (no-op for
// in-memory relations).
func (r *Relation) Close() error { return r.rel.Close() }

// LoadRelation reads a relation in the tcq binary format into the
// catalog under the given name.
func (db *DB) LoadRelation(name string, rd io.Reader) (*Relation, error) {
	rel, err := db.store.LoadRelation(name, rd)
	if err != nil {
		return nil, err
	}
	return &Relation{rel: rel, arity: rel.Schema().NumCols()}, nil
}

// LoadRelationFile reads a relation from a host file into memory.
func (db *DB) LoadRelationFile(name, path string) (*Relation, error) {
	rel, err := db.store.LoadRelationFile(name, path)
	if err != nil {
		return nil, err
	}
	return &Relation{rel: rel, arity: rel.Schema().NumCols()}, nil
}

// OpenRelationFile registers a relation backed by the named tcq file,
// reading blocks on demand instead of loading them — the way to attach
// a large relation without holding it in memory. The returned relation
// is read-only; call Close when done.
func (db *DB) OpenRelationFile(name, path string) (*Relation, error) {
	rel, err := db.store.OpenRelationFile(name, path)
	if err != nil {
		return nil, err
	}
	return &Relation{rel: rel, arity: rel.Schema().NumCols()}, nil
}

// Count evaluates COUNT(q) exactly (full scan, no time constraint).
func (db *DB) Count(q Query) (int64, error) {
	if q.err != nil {
		return 0, q.err
	}
	return db.engine.ExactCount(q.expr)
}

// BuildStatistics builds equi-depth histograms (bucketCount buckets, 32
// when <= 0) over every numeric column of every relation — the ANALYZE
// step of the §3.1 prestored-statistics approach. Estimates can then
// opt in via EstimateOptions.UseStatistics. Re-run after bulk loads;
// stale statistics mis-size stages exactly as the paper warns.
func (db *DB) BuildStatistics(bucketCount int) error {
	if bucketCount <= 0 {
		bucketCount = 32
	}
	cat, err := core.BuildHistograms(db.store, bucketCount)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.stats = cat
	db.mu.Unlock()
	return nil
}

// GroupCount evaluates per-group COUNTs of q's output over the named
// column, exactly (full scan, no time constraint). Keys are int64,
// float64 or string values of the column.
func (db *DB) GroupCount(q Query, col string) (map[interface{}]int64, error) {
	if q.err != nil {
		return nil, q.err
	}
	m, err := ra.GroupCountExact(q.expr, col, db.catalog())
	if err != nil {
		return nil, err
	}
	out := make(map[interface{}]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out, nil
}

// Sum evaluates SUM(q.col) exactly (full scan, no time constraint).
func (db *DB) Sum(q Query, col string) (float64, error) {
	if q.err != nil {
		return 0, q.err
	}
	return db.engine.ExactSum(q.expr, col)
}

// Avg evaluates AVG(q.col) exactly (0 for an empty result).
func (db *DB) Avg(q Query, col string) (float64, error) {
	if q.err != nil {
		return 0, q.err
	}
	return db.engine.ExactAvg(q.expr, col)
}

// Now returns the session clock's current reading (virtual time under a
// simulated clock).
func (db *DB) Now() time.Duration { return db.clock.Now() }

// IOStats reports the physical work done so far in this session.
type IOStats struct {
	BlocksRead    int64
	PagesWritten  int64
	TuplesRead    int64
	TuplesWritten int64
	TempBytes     int64
}

// IOStats returns the session's cumulative physical work counters.
func (db *DB) IOStats() IOStats {
	c := db.store.Counters()
	return IOStats{
		BlocksRead:    c.BlocksRead,
		PagesWritten:  c.PagesWritten,
		TuplesRead:    c.TuplesRead,
		TuplesWritten: c.TuplesWritten,
		TempBytes:     c.TempBytes,
	}
}

// StageTrace is one stage's structured trace record (the chosen sample
// fraction, predicted vs actual cost, per-operator selectivities and
// tuple flow, and the post-stage estimate).
type StageTrace = trace.StageRecord

// QueryTrace is a full structured trace of one estimate run.
type QueryTrace = trace.QueryTrace

// MetricsSnapshot is a point-in-time copy of the session's aggregate
// metrics.
type MetricsSnapshot = trace.Snapshot

// Metrics returns a snapshot of the session-wide metrics registry:
// counters (queries, stages, quota_overruns, blocks_read, comparisons,
// deadline_polls, temp_bytes, ...) and histograms (stages_per_query,
// utilization, coverage_fraction, ...) aggregated across every estimate
// run on this DB.
func (db *DB) Metrics() MetricsSnapshot { return db.metrics.Snapshot() }

// ResetMetrics zeroes the session-wide metrics registry.
func (db *DB) ResetMetrics() { db.metrics.Reset() }

// QueryProgress is a live snapshot of one in-flight (or just-finished)
// estimate: stage count, fraction of quota spent, per-relation coverage
// and the running estimate ± CI half-width.
type QueryProgress = telemetry.QueryProgress

// RelationProgress is one relation's cumulative sampled share inside a
// QueryProgress.
type RelationProgress = telemetry.RelationProgress

// QuerySummary is one completed estimate's retained outcome in the
// query history ring.
type QuerySummary = telemetry.QuerySummary

// QueryShapeStat aggregates every completed run of one query shape
// (calls, stages, mean overshoot, mean CI width at stop) — the
// pg_stat_statements-style view.
type QueryShapeStat = telemetry.ShapeStat

// InFlight snapshots the estimates currently evaluating on this DB,
// sorted by query id. Snapshotting is read-only with respect to the
// running queries: no session clock charges, no RNG draws. Empty unless
// the DB was opened WithTelemetry.
func (db *DB) InFlight() []QueryProgress { return db.progress.InFlight() }

// History lists recently completed estimates, most recent first,
// bounded by WithTelemetry's historySize. Empty unless the DB was
// opened WithTelemetry.
func (db *DB) History() []QuerySummary { return db.progress.History() }

// QueryStats lists per-query-shape aggregates across every completed
// estimate (sorted by call count). Empty unless the DB was opened
// WithTelemetry.
func (db *DB) QueryStats() []QueryShapeStat { return db.progress.QueryStats() }

// CalibrationReport is the calibration auditor's deterministic
// snapshot: per-shape empirical CI coverage with Wilson intervals,
// per-shape and per-operator cost-model drift, and flight-recorder
// statistics.
type CalibrationReport = calib.Report

// GroundTruth declares a query's known exact answer for the
// calibration audit (see EstimateOptions.GroundTruth).
type GroundTruth = calib.Truth

// FlightRecord is one captured anomalous query: its full trace plus
// the capture reasons.
type FlightRecord = calib.FlightRecord

// Calibration snapshots the calibration auditor's report. Empty unless
// the DB was opened WithCalibration.
func (db *DB) Calibration() CalibrationReport { return db.calib.Report() }

// FlightRecords lists the captured anomalous-query traces in
// chronological order. Empty unless the DB was opened WithCalibration.
func (db *DB) FlightRecords() []FlightRecord { return db.calib.FlightRecords() }

// CalibrationEnabled reports whether the DB was opened
// WithCalibration, i.e. whether CaptureFlight can retain anything.
func (db *DB) CalibrationEnabled() bool { return db.calib != nil }

// CaptureFlight stores an externally triggered flight record — a trace
// a serving layer deemed anomalous (e.g. a request that missed its
// wire-to-wire SLO) — in the calibration flight ring. reasons name the
// capture triggers (see calib.Reason*); note carries free-form
// attribution shown on /debug/flightrecorder. No-op unless the DB was
// opened WithCalibration.
func (db *DB) CaptureFlight(label, note string, reasons []string, t QueryTrace) {
	db.calib.Capture(label, note, reasons, t)
}

// TelemetryHandler returns the telemetry HTTP handler for this DB:
// /metrics (Prometheus text exposition), /queries (in-flight progress,
// JSON), /history (completed queries + shape stats, JSON),
// /calibration and /debug/flightrecorder (calibration audit, JSON) and
// /debug/pprof. Mount it on any server, or use ServeTelemetry.
func (db *DB) TelemetryHandler() http.Handler { return telemetry.Handler(db) }

// TelemetryServer is a running telemetry (or tcqd) HTTP server:
// Addr/Close/Shutdown plus Err/Wait for observing the drain outcome.
type TelemetryServer = telemetry.RunningServer

// ServeTelemetry starts the telemetry server on addr (e.g. ":8080")
// and returns the running server plus its bound address. Cancelling
// ctx shuts the server down gracefully (in-flight scrapes drain, and a
// drain that exceeds the grace period surfaces via srv.Err);
// alternatively manage the lifecycle manually with srv.Close or
// srv.Shutdown — the internal shutdown watcher exits either way. The
// DB works identically with or without a server attached.
func (db *DB) ServeTelemetry(ctx context.Context, addr string) (*TelemetryServer, string, error) {
	return telemetry.Serve(ctx, db, addr)
}

// catalog adapts the store for query validation.
func (db *DB) catalog() exec.StoreCatalog { return exec.StoreCatalog{Store: db.store} }

// CatalogStats is a point-in-time snapshot of the sample catalog's
// counters (lookups, hits, misses, stale entries, reused volume) and
// contents.
type CatalogStats = catalog.Stats

// CatalogRelation describes one relation's materialized sample set.
type CatalogRelation = catalog.RelationSamples

// CatalogShape is one query shape's reuse-cache entry.
type CatalogShape = catalog.ShapeHint

// errNoCatalog is returned by catalog operations on a DB opened without
// WithCatalog.
var errNoCatalog = errors.New("tcq: catalog disabled (open the DB WithCatalog)")

// BuildCatalog materializes uniform sample sets for the named relations
// (every relation when none are named). When the DB runs WithTelemetry,
// the per-shape history additionally seeds the reuse cache: each shape
// the history ring has seen gets a hint at its historical mean coverage
// — `ShapeStat` (calls, blocks, CI width at stop) decides what gets
// pre-built. Builds read relation geometry without charging the
// session clock: catalog construction is offline maintenance.
func (db *DB) BuildCatalog(names ...string) error {
	if db.samples == nil {
		return errNoCatalog
	}
	if err := db.samples.BuildFromStore(db.store, names...); err != nil {
		return err
	}
	if db.progress == nil {
		return nil
	}
	for _, s := range db.progress.QueryStats() {
		if s.Calls == 0 || s.TotalBlocks == 0 {
			continue
		}
		q, err := Parse(s.Query)
		if err != nil {
			continue // non-RA shape text; nothing to pre-build
		}
		rels := ra.BaseRelations(q.expr)
		total := 0
		ok := true
		for _, name := range rels {
			rel, err := db.store.Relation(name)
			if err != nil {
				ok = false
				break
			}
			total += rel.NumBlocks()
		}
		if !ok || total == 0 {
			continue
		}
		frac := float64(s.TotalBlocks) / float64(s.Calls) / float64(total)
		if frac > 1 {
			frac = 1
		}
		db.samples.SeedShape(catalog.Fingerprint(q.expr), rels, frac, s.MeanCIWidth, s.Calls)
	}
	return nil
}

// BuildCatalogStratified materializes a stratified sample set for one
// relation keyed on a high-selectivity predicate column: blocks are
// bucketed by the column's value quantile and interleaved round-robin,
// so every resolution prefix carries proportional representation of
// each value stratum (proportional-allocation stratified sampling —
// unbiased, with variance at or below uniform block sampling).
func (db *DB) BuildCatalogStratified(relation, column string) error {
	if db.samples == nil {
		return errNoCatalog
	}
	return db.samples.BuildStratifiedFromStore(db.store, relation, column)
}

// InvalidateCatalog drops the named relations' sample sets and every
// shape hint reading them (the whole catalog when none are named).
// In-flight queries that already resolved a hit keep their immutable
// pre-invalidation permutations — invalidation never torn-reads a
// running query.
func (db *DB) InvalidateCatalog(names ...string) error {
	if db.samples == nil {
		return errNoCatalog
	}
	db.samples.Invalidate(names...)
	return nil
}

// CatalogStats snapshots the sample catalog's counters. Zero-valued
// unless the DB was opened WithCatalog.
func (db *DB) CatalogStats() CatalogStats {
	if db.samples == nil {
		return CatalogStats{}
	}
	return db.samples.Stats()
}

// CatalogRelations lists the materialized per-relation sample sets
// (permutations omitted), sorted by relation name.
func (db *DB) CatalogRelations() []CatalogRelation {
	if db.samples == nil {
		return nil
	}
	return db.samples.RelationEntries()
}

// CatalogShapes lists the shape-reuse cache, sorted by fingerprint.
func (db *DB) CatalogShapes() []CatalogShape {
	if db.samples == nil {
		return nil
	}
	return db.samples.ShapeEntries()
}

// SaveCatalog persists the sample catalog (sample sets, shape hints,
// resolution ladder) as deterministic JSON — the catalog lives
// alongside the relations it samples.
func (db *DB) SaveCatalog(w io.Writer) error {
	if db.samples == nil {
		return errNoCatalog
	}
	return db.samples.Save(w)
}

// LoadCatalog replaces the sample catalog with a previously saved one.
// Entries whose relations have since changed shape are detected as
// stale at lookup time and miss safely.
func (db *DB) LoadCatalog(r io.Reader) error {
	if db.samples == nil {
		return errNoCatalog
	}
	c, err := catalog.Load(r)
	if err != nil {
		return err
	}
	db.samples.ReplaceFrom(c)
	return nil
}

// errNoQuota is returned by CountEstimate without a quota or stop rule.
var errNoQuota = errors.New("tcq: CountEstimate needs a positive Quota")
