// Live-telemetry integration: a query held mid-flight (blocked in its
// OnProgress callback after stage 1) must be visible, stage by stage,
// through DB.InFlight and the HTTP /queries endpoint, while /metrics
// serves a valid Prometheus exposition — and the query's result must be
// identical to an untelemetered run (the read-only contract).
package tcq_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tcq"
)

// telemetryDB builds a deterministic selection workload on a DB opened
// with the given options.
func telemetryDB(t *testing.T, opts ...tcq.Option) (*tcq.DB, tcq.Query) {
	t.Helper()
	db := tcq.Open(opts...)
	rel, err := db.CreateRelation("orders", []tcq.Column{
		{Name: "id", Type: tcq.Int},
		{Name: "amount", Type: tcq.Int},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := rel.Insert(i, (i*7919+3)%5000); err != nil {
			t.Fatal(err)
		}
	}
	return db, tcq.Rel("orders").Where(tcq.Col("amount").Lt(500))
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestTelemetryServesLiveQueryProgress(t *testing.T) {
	db, q := telemetryDB(t, tcq.WithSimulatedClock(42), tcq.WithTelemetry(16))
	srv := httptest.NewServer(db.TelemetryHandler())
	defer srv.Close()

	stageReached := make(chan struct{})
	release := make(chan struct{})
	done := make(chan *tcq.Estimate, 1)
	go func() {
		var once bool
		est, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota: 10 * time.Second,
			Seed:  7,
			OnProgress: func(p tcq.Progress) {
				if !once {
					once = true
					close(stageReached)
					<-release // hold the query in flight mid-evaluation
				}
			},
		})
		if err != nil {
			t.Error(err)
		}
		done <- est
	}()

	<-stageReached
	// The query is paused after stage 1: both the API and the HTTP
	// endpoint must show a live, stage-by-stage progress record.
	inflight := db.InFlight()
	if len(inflight) != 1 {
		t.Fatalf("InFlight: want 1 query, got %d", len(inflight))
	}
	p := inflight[0]
	if p.Done || p.Stages < 1 || p.Query == "" {
		t.Errorf("live progress record wrong: %+v", p)
	}
	if len(p.Relations) == 0 || p.Relations[0].Coverage <= 0 {
		t.Errorf("live record missing relation coverage: %+v", p.Relations)
	}
	if p.SpentFrac <= 0 || p.SpentFrac > 1 {
		t.Errorf("SpentFrac = %v, want in (0,1]", p.SpentFrac)
	}
	if p.Interval <= 0 {
		t.Errorf("live record missing CI half-width: %+v", p)
	}

	var viaHTTP struct {
		Queries []tcq.QueryProgress `json:"queries"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/queries")), &viaHTTP); err != nil {
		t.Fatalf("/queries JSON: %v", err)
	}
	if len(viaHTTP.Queries) != 1 || viaHTTP.Queries[0].Stages < 1 || viaHTTP.Queries[0].Done {
		t.Errorf("/queries should show the running query: %+v", viaHTTP.Queries)
	}

	metrics := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"# TYPE tcq_queries_in_flight gauge",
		"tcq_queries_in_flight 1",
		"tcq_telemetry_queries_in_flight 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics while running missing %q:\n%s", want, metrics)
		}
	}

	close(release)
	est := <-done

	if got := db.InFlight(); len(got) != 0 {
		t.Errorf("query finished but still in flight: %+v", got)
	}
	hist := db.History()
	if len(hist) != 1 || hist[0].Estimate != est.Value || hist[0].StopReason != est.StopReason {
		t.Errorf("history disagrees with estimate: %+v vs %+v", hist, est)
	}
	stats := db.QueryStats()
	if len(stats) != 1 || stats[0].Calls != 1 || stats[0].MeanCIWidth != est.Interval {
		t.Errorf("shape stats wrong: %+v", stats)
	}
	metrics = httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"tcq_queries_total 1",
		"tcq_queries_in_flight 0",
		"tcq_telemetry_queries_in_flight 0",
		"# TYPE tcq_stages_per_query histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics after finish missing %q:\n%s", want, metrics)
		}
	}
	if !strings.Contains(httpGet(t, srv.URL+"/history"), "orders") {
		t.Error("/history missing the completed query")
	}
}

// TestTelemetryReadOnly: enabling telemetry must not change any result
// field of an identically-seeded estimate (the read-only contract the
// determinism goldens enforce for the tracing layer).
func TestTelemetryReadOnly(t *testing.T) {
	run := func(opts ...tcq.Option) *tcq.Estimate {
		db, q := telemetryDB(t, opts...)
		est, err := db.CountEstimate(q, tcq.EstimateOptions{Quota: 10 * time.Second, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	plain := run(tcq.WithSimulatedClock(11))
	telem := run(tcq.WithSimulatedClock(11), tcq.WithTelemetry(8))
	if *plain != *telem {
		t.Errorf("telemetry perturbed the estimate:\nplain: %+v\ntelem: %+v", plain, telem)
	}
}

func TestTelemetryDisabledIsEmpty(t *testing.T) {
	db, q := telemetryDB(t, tcq.WithSimulatedClock(5))
	if _, err := db.CountEstimate(q, tcq.EstimateOptions{Quota: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if len(db.InFlight()) != 0 || len(db.History()) != 0 || len(db.QueryStats()) != 0 {
		t.Error("telemetry views should be empty when disabled")
	}
}

func TestWithQueryLogEmitsLifecycleEvents(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	db, q := telemetryDB(t, tcq.WithSimulatedClock(5), tcq.WithQueryLog(logger))
	if _, err := db.CountEstimate(q, tcq.EstimateOptions{Quota: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"query started", "stage done", "quota=5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("query log missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "query finished") && !strings.Contains(out, "query overspent") {
		t.Errorf("query log missing completion event:\n%s", out)
	}
	// WithQueryLog implies telemetry.
	if len(db.History()) != 1 {
		t.Errorf("WithQueryLog should enable telemetry; history: %+v", db.History())
	}
}

func TestServeTelemetry(t *testing.T) {
	db, q := telemetryDB(t, tcq.WithSimulatedClock(9), tcq.WithTelemetry(4))
	srv, addr, err := db.ServeTelemetry(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := db.CountEstimate(q, tcq.EstimateOptions{Quota: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	body := httpGet(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "tcq_queries_total 1") {
		t.Errorf("/metrics via ServeTelemetry:\n%s", body)
	}
}

// End-to-end calibration observatory: a DB opened WithCalibration
// audits every estimate, scores declared ground truth, serves the
// report on /calibration and captured anomalies on
// /debug/flightrecorder, and surfaces coverage in QueryStats — while
// the estimate itself stays byte-identical to an unaudited run.
func TestCalibrationIntegration(t *testing.T) {
	run := func(opts ...tcq.Option) *tcq.Estimate {
		db, q := telemetryDB(t, opts...)
		truth := 500.0
		est, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota: 5 * time.Second, Seed: 3, GroundTruth: &truth,
		})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	plain := run(tcq.WithSimulatedClock(11))
	calibrated := run(tcq.WithSimulatedClock(11), tcq.WithTelemetry(8), tcq.WithCalibration(16))
	if plain.Value != calibrated.Value || plain.Interval != calibrated.Interval ||
		plain.Stages != calibrated.Stages || plain.Blocks != calibrated.Blocks {
		t.Fatalf("calibration perturbed the estimate:\nplain      %+v\ncalibrated %+v", plain, calibrated)
	}

	db, q := telemetryDB(t, tcq.WithSimulatedClock(11), tcq.WithTelemetry(8), tcq.WithCalibration(16))
	truth := 500.0
	wrong := 999999.0
	for _, r := range []struct {
		seed int64
		gt   *float64
	}{{3, &truth}, {4, &wrong}, {5, nil}} {
		if _, err := db.CountEstimate(q, tcq.EstimateOptions{Quota: 5 * time.Second, Seed: r.seed, GroundTruth: r.gt}); err != nil {
			t.Fatal(err)
		}
	}

	rep := db.Calibration()
	if rep.Queries != 3 || rep.TruthN+rep.TruthDegenerate != 2 {
		t.Fatalf("report totals wrong: %+v", rep)
	}
	if rep.TruthHits != 1 {
		t.Fatalf("want 1 hit (truth=500), got %+v", rep)
	}
	recs := db.FlightRecords()
	if len(recs) != 1 || recs[0].Truth == nil || recs[0].Truth.Value != wrong {
		t.Fatalf("the truth=999999 run should be flight-captured: %+v", recs)
	}

	// Coverage columns reach QueryStats.
	stats := db.QueryStats()
	if len(stats) != 1 || stats[0].TruthN != 2 || stats[0].TruthHits != 1 {
		t.Fatalf("QueryStats coverage wrong: %+v", stats)
	}

	// HTTP surfaces.
	srv := httptest.NewServer(db.TelemetryHandler())
	defer srv.Close()
	var gotRep tcq.CalibrationReport
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/calibration")), &gotRep); err != nil {
		t.Fatalf("/calibration JSON: %v", err)
	}
	if gotRep.Queries != 3 || gotRep.TruthHits != rep.TruthHits {
		t.Fatalf("/calibration mismatch: %+v vs %+v", gotRep, rep)
	}
	var gotFr struct {
		Records []tcq.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/flightrecorder")), &gotFr); err != nil {
		t.Fatalf("/debug/flightrecorder JSON: %v", err)
	}
	if len(gotFr.Records) != 1 || gotFr.Records[0].Trace.Info.Query == "" {
		t.Fatalf("/debug/flightrecorder records wrong: %+v", gotFr.Records)
	}
	if !strings.Contains(httpGet(t, srv.URL+"/metrics"), "tcq_calibration_queries_total 3") {
		t.Error("/metrics missing tcq_calibration_queries_total")
	}
}
