module tcq

go 1.24
