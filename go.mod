module tcq

go 1.22
