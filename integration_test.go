package tcq_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tcq"
	"tcq/internal/workload"
)

// TestPaperScaleEndToEnd runs one full paper-scale trial (10,000-tuple
// relation, 10-second quota) through the public API and checks the
// headline behaviours: the quota is respected (within one stage's
// overrun), the estimate lands near the truth, and a larger quota
// tightens the interval.
func TestPaperScaleEndToEnd(t *testing.T) {
	db := tcq.Open(tcq.WithSimulatedClock(2024), tcq.WithLoadNoise(0.12))
	if _, err := workload.SelectRelation(db.Store(), "r", workload.PaperTuples, 1000, newRand(5)); err != nil {
		t.Fatal(err)
	}
	q := tcq.Rel("r").Where(tcq.Col("a").Lt(1000))

	small, err := db.CountEstimate(q, tcq.EstimateOptions{Quota: 5 * time.Second, DBeta: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := db.CountEstimate(q, tcq.EstimateOptions{Quota: 40 * time.Second, DBeta: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for name, est := range map[string]*tcq.Estimate{"small": small, "large": large} {
		if est.Stages < 1 || est.Blocks < 1 {
			t.Fatalf("%s: ran nothing: %+v", name, est)
		}
		if rel := math.Abs(est.Value-1000) / 1000; rel > 0.6 {
			t.Errorf("%s: estimate %.0f too far from 1000", name, est.Value)
		}
	}
	if !(large.Interval < small.Interval) {
		t.Errorf("larger quota should tighten the CI: %f vs %f", large.Interval, small.Interval)
	}
	if !(large.Blocks > small.Blocks) {
		t.Errorf("larger quota should sample more blocks: %d vs %d", large.Blocks, small.Blocks)
	}
}

// TestHardDeadlinePaperScale: the hard mode never takes meaningfully
// more than the quota, across several seeds, at paper scale.
func TestHardDeadlinePaperScale(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		db := tcq.Open(tcq.WithSimulatedClock(seed), tcq.WithLoadNoise(0.12))
		if _, err := workload.SelectRelation(db.Store(), "r", workload.PaperTuples, 1000, newRand(seed)); err != nil {
			t.Fatal(err)
		}
		q := tcq.Rel("r").Where(tcq.Col("a").Lt(1000))
		quota := 4 * time.Second
		start := db.Now()
		if _, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota: quota, HardDeadline: true, DBeta: 0.001, Seed: seed,
		}); err != nil {
			t.Fatal(err)
		}
		elapsed := db.Now() - start
		if elapsed > quota+200*time.Millisecond {
			t.Errorf("seed %d: hard deadline blew the quota: %v", seed, elapsed)
		}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
