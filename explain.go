package tcq

import (
	"fmt"
	"strings"

	"tcq/internal/ra"
)

// Explain renders the query's evaluation plan: the signed
// Select-Join-Intersect-Project terms of the inclusion–exclusion
// decomposition (what the engine actually samples and evaluates), each
// with its operator tree and the base relations' sizes.
func (db *DB) Explain(q Query) (string, error) {
	if q.err != nil {
		return "", q.err
	}
	terms, err := ra.Terms(q.expr, db.catalog())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "count(%s)\n", q.expr)
	if len(terms) > 1 {
		fmt.Fprintf(&b, "= inclusion–exclusion over %d terms:\n", len(terms))
	}
	for i, t := range terms {
		sign := "+"
		if t.Sign < 0 {
			sign = "-"
		}
		fmt.Fprintf(&b, "term %d (%s%d):\n", i+1, sign, abs(t.Sign))
		explainExpr(&b, t.Expr(), 1, db)
	}
	return b.String(), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func explainExpr(b *strings.Builder, e ra.Expr, depth int, db *DB) {
	pad := strings.Repeat("  ", depth)
	switch v := e.(type) {
	case *ra.Base:
		line := fmt.Sprintf("%sscan %s", pad, v.Name)
		if rel, err := db.store.Relation(v.Name); err == nil {
			line += fmt.Sprintf(" (%d tuples, %d blocks)", rel.NumTuples(), rel.NumBlocks())
		}
		b.WriteString(line + "\n")
	case *ra.Select:
		fmt.Fprintf(b, "%sselect %s\n", pad, v.Pred)
		explainExpr(b, v.Input, depth+1, db)
	case *ra.Project:
		fmt.Fprintf(b, "%sproject [%s] (distinct, Goodman estimator)\n", pad, strings.Join(v.Cols, ", "))
		explainExpr(b, v.Input, depth+1, db)
	case *ra.Join:
		conds := make([]string, len(v.On))
		for i, c := range v.On {
			conds[i] = c.LeftCol + " = " + c.RightCol
		}
		fmt.Fprintf(b, "%ssort-merge join on %s\n", pad, strings.Join(conds, " and "))
		explainExpr(b, v.Left, depth+1, db)
		explainExpr(b, v.Right, depth+1, db)
	case *ra.Intersect:
		fmt.Fprintf(b, "%ssort-merge intersect (%d inputs)\n", pad, len(v.Inputs))
		for _, in := range v.Inputs {
			explainExpr(b, in, depth+1, db)
		}
	case *ra.Union:
		fmt.Fprintf(b, "%sunion (inclusion–exclusion)\n", pad)
		explainExpr(b, v.Left, depth+1, db)
		explainExpr(b, v.Right, depth+1, db)
	case *ra.Difference:
		fmt.Fprintf(b, "%sdifference (inclusion–exclusion)\n", pad)
		explainExpr(b, v.Left, depth+1, db)
		explainExpr(b, v.Right, depth+1, db)
	default:
		fmt.Fprintf(b, "%s%s\n", pad, e)
	}
}
