package tcq_test

import (
	"fmt"
	"time"

	"tcq"
)

// Example demonstrates the core workflow: load data, run an exact count
// and a time-constrained estimate on a simulated machine.
func Example() {
	db := tcq.Open(tcq.WithSimulatedClock(42))
	rel, _ := db.CreateRelation("orders", []tcq.Column{
		{Name: "id", Type: tcq.Int},
		{Name: "amount", Type: tcq.Int},
	}, 200)
	for i := 0; i < 5000; i++ {
		rel.Insert(i, i%1000)
	}
	q := tcq.Rel("orders").Where(tcq.Col("amount").Lt(100))
	exact, _ := db.Count(q)
	fmt.Println("exact:", exact)
	// Output: exact: 500
}

// ExampleParse shows the textual RA query language.
func ExampleParse() {
	q, err := tcq.Parse(`select(orders, amount < 100 and region = "north")`)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	// Output: select(orders, (amount < 100 and region = "north"))
}

// ExampleDB_CountEstimate runs a time-constrained COUNT with a hard
// deadline and prints how the engine reports its work.
func ExampleDB_CountEstimate() {
	db := tcq.Open(tcq.WithSimulatedClock(7))
	rel, _ := db.CreateRelation("events", []tcq.Column{
		{Name: "id", Type: tcq.Int},
		{Name: "level", Type: tcq.Int},
	}, 200)
	for i := 0; i < 10000; i++ {
		rel.Insert(i, i%100)
	}
	est, _ := db.CountEstimate(
		tcq.Rel("events").Where(tcq.Col("level").Ge(90)),
		tcq.EstimateOptions{Quota: 20 * time.Second, DBeta: 24, Seed: 1},
	)
	fmt.Printf("within quota: %v; stages >= 1: %v; blocks sampled > 0: %v\n",
		est.Elapsed <= 21*time.Second, est.Stages >= 1, est.Blocks > 0)
	// Output: within quota: true; stages >= 1: true; blocks sampled > 0: true
}

// ExampleQuery_Union shows inclusion–exclusion handling set operations.
func ExampleQuery_Union() {
	db := tcq.Open()
	a, _ := db.CreateRelation("a", []tcq.Column{{Name: "v", Type: tcq.Int}}, 0)
	b, _ := db.CreateRelation("b", []tcq.Column{{Name: "v", Type: tcq.Int}}, 0)
	for i := 0; i < 10; i++ {
		a.Insert(i)     // 0..9
		b.Insert(i + 5) // 5..14
	}
	n, _ := db.Count(tcq.Rel("a").Union(tcq.Rel("b")))
	fmt.Println("count(a ∪ b) =", n)
	// Output: count(a ∪ b) = 15
}
