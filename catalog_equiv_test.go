package tcq_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tcq"
	"tcq/internal/trace"
	"tcq/internal/workload"
)

// TestCatalogWarmColdCoverageProperty is the warm≡cold statistical
// equivalence property: across randomly drawn selection shapes, a
// catalog-hit (warm) run's confidence interval must contain the ground
// truth at a rate consistent with the nominal level, and the
// calibration auditor — which tracks warm shapes separately under a
// "[catalog hit]" key — must not flag any warm shape as optimistic
// ("low"). Shapes are drawn by testing/quick from a fixed source, so
// the run is deterministic.
func TestCatalogWarmColdCoverageProperty(t *testing.T) {
	db := tcq.Open(tcq.WithSimulatedClock(7), tcq.WithLoadNoise(0.12),
		tcq.WithCatalog(), tcq.WithCalibration(64))
	if _, err := workload.SelectRelation(db.Store(), "r", workload.PaperTuples, 5000, newRand(7)); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildCatalog(); err != nil {
		t.Fatal(err)
	}

	trials := 0
	warmCovered, coldCovered := 0, 0
	var warmRelErr, coldRelErr float64
	seed := int64(1)
	property := func(raw uint16) bool {
		// Thresholds span the relation's key range but stay away from
		// the empty-result edge, where no estimator produces a CI.
		thresh := int64(500 + int(raw)%(workload.PaperTuples-500))
		q := tcq.Rel("r").Where(tcq.Col("a").Lt(thresh))
		truth, err := db.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		gt := float64(truth)
		run := func() *tcq.Estimate {
			seed++
			est, err := db.CountEstimate(q, tcq.EstimateOptions{
				Quota: 10 * time.Second, DBeta: 12, Seed: seed, GroundTruth: &gt,
			})
			if err != nil {
				t.Fatal(err)
			}
			return est
		}
		before := db.CatalogStats()
		cold := run() // first run of this shape: miss, plants the hint
		warm := run() // rerun: hit, replays the catalog sample
		after := db.CatalogStats()
		if after.Hits != before.Hits+1 || after.Misses != before.Misses+1 {
			t.Fatalf("threshold %d: expected one miss then one hit, got %+v -> %+v", thresh, before, after)
		}

		// Near-total selectivity can hand the estimator a zero-variance
		// sample (every tuple matches) and no banked stage: the cold run
		// itself has no usable CI, so there is nothing for the warm run
		// to be equivalent to. Not a counted trial.
		if cold.Stages < 1 || cold.Interval <= 0 {
			return true
		}
		// Modulo the sample source, the warm run went through the same
		// estimator: it must produce a usable interval and stop state.
		if warm.Stages < 1 || warm.Blocks < 1 || warm.Interval <= 0 {
			return false
		}
		trials++
		if math.Abs(cold.Value-gt) <= cold.Interval {
			coldCovered++
		}
		if math.Abs(warm.Value-gt) <= warm.Interval {
			warmCovered++
		}
		coldRelErr += math.Abs(cold.Value-gt) / gt
		warmRelErr += math.Abs(warm.Value-gt) / gt
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}

	// Nominal coverage is 95%; with 20 deterministic trials, demand the
	// warm rate stays in the same regime rather than collapsing.
	if rate := float64(warmCovered) / float64(trials); rate < 0.8 {
		t.Errorf("warm CI coverage %d/%d = %.2f, want >= 0.8 (cold: %d/%d)",
			warmCovered, trials, rate, coldCovered, trials)
	}
	// Warm estimates must stay in the cold runs' accuracy regime: the
	// catalog replays an unbiased sample, it does not trade accuracy.
	if warmRelErr > 2*coldRelErr+0.05*float64(trials) {
		t.Errorf("warm mean rel err %.3f vs cold %.3f: warm path lost accuracy",
			warmRelErr/float64(trials), coldRelErr/float64(trials))
	}

	// The calibration auditor keys warm runs separately. Each warm
	// shape here carries a single truth observation, and one 5%-chance
	// CI miss flags its shape "low" — that is the auditor's nominal
	// false-positive rate, not a warm-path failure. A systematically
	// miscalibrated warm path would flag most shapes, so demand the
	// flagged fraction stays at the noise level.
	rep := db.Calibration()
	warmShapes, lowWarm := 0, 0
	for _, s := range rep.Shapes {
		if !strings.Contains(s.Query, "[catalog hit]") {
			continue
		}
		warmShapes++
		if s.Verdict == "low" {
			lowWarm++
		}
	}
	if warmShapes == 0 {
		t.Error("calibration report contains no [catalog hit] shapes")
	}
	if allowed := (warmShapes + 9) / 10; lowWarm > allowed {
		t.Errorf("%d of %d warm shapes audit low (allowed %d): warm CIs are systematically optimistic",
			lowWarm, warmShapes, allowed)
	}
}

// TestCatalogMissByteIdenticalToDisabled is the byte-identity
// regression: a catalog-enabled run that misses (no hint yet — the
// catalog is empty or even fully built but cold for this shape) must be
// bit-identical to the same run on a catalog-disabled engine — same
// estimate, same structured trace bytes. The catalog lookup happens
// before any RNG or clock activity and records nothing on the simulated
// machine, so enabling the feature cannot perturb existing results.
func TestCatalogMissByteIdenticalToDisabled(t *testing.T) {
	type outcome struct {
		est   *tcq.Estimate
		trace []byte
	}
	runOne := func(enabled, built bool) outcome {
		opts := []tcq.Option{tcq.WithSimulatedClock(3), tcq.WithLoadNoise(0.12)}
		if enabled {
			opts = append(opts, tcq.WithCatalog())
		}
		db := tcq.Open(opts...)
		if _, err := workload.SelectRelation(db.Store(), "r", workload.PaperTuples, 1000, newRand(3)); err != nil {
			t.Fatal(err)
		}
		if built {
			if err := db.BuildCatalog(); err != nil {
				t.Fatal(err)
			}
		}
		col := trace.NewCollector()
		est, err := db.CountEstimate(tcq.Rel("r").Where(tcq.Col("a").Lt(1000)), tcq.EstimateOptions{
			Quota: 10 * time.Second, DBeta: 12, Seed: 5, Tracer: col,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		jl := trace.NewJSONLines(&buf)
		col.Trace().Replay(jl)
		if err := jl.Err(); err != nil {
			t.Fatal(err)
		}
		return outcome{est: est, trace: buf.Bytes()}
	}

	disabled := runOne(false, false)
	enabledEmpty := runOne(true, false) // enabled, no sample sets: miss
	enabledBuilt := runOne(true, true)  // enabled, built, no hint: still a miss

	for name, got := range map[string]outcome{"empty catalog": enabledEmpty, "built catalog": enabledBuilt} {
		if !reflect.DeepEqual(disabled.est, got.est) {
			t.Errorf("%s: miss-path estimate differs from catalog-disabled run:\n disabled: %+v\n  enabled: %+v",
				name, disabled.est, got.est)
		}
		if !bytes.Equal(disabled.trace, got.trace) {
			t.Errorf("%s: miss-path trace bytes differ from catalog-disabled run:\n disabled: %s\n  enabled: %s",
				name, disabled.trace, got.trace)
		}
	}
}

// TestCatalogWarmDeterministicAndPortable checks the warm path's
// determinism contract: two identically seeded databases produce
// bit-identical cold AND warm estimates, and a catalog saved from one
// database hits immediately when loaded into a fresh one over the same
// data (the pre-built sample sets and learned hints survive the trip).
func TestCatalogWarmDeterministicAndPortable(t *testing.T) {
	build := func() *tcq.DB {
		db := tcq.Open(tcq.WithSimulatedClock(11), tcq.WithLoadNoise(0.12), tcq.WithCatalog())
		if _, err := workload.SelectRelation(db.Store(), "r", workload.PaperTuples, 1000, newRand(11)); err != nil {
			t.Fatal(err)
		}
		if err := db.BuildCatalog(); err != nil {
			t.Fatal(err)
		}
		return db
	}
	q := tcq.Rel("r").Where(tcq.Col("a").Lt(1000))
	eopts := tcq.EstimateOptions{Quota: 10 * time.Second, DBeta: 12, Seed: 9}

	runPair := func(db *tcq.DB) (cold, warm *tcq.Estimate) {
		var err error
		if cold, err = db.CountEstimate(q, eopts); err != nil {
			t.Fatal(err)
		}
		if warm, err = db.CountEstimate(q, eopts); err != nil {
			t.Fatal(err)
		}
		return cold, warm
	}
	db1, db2 := build(), build()
	cold1, warm1 := runPair(db1)
	cold2, warm2 := runPair(db2)
	if !reflect.DeepEqual(cold1, cold2) {
		t.Errorf("cold estimates differ across identically seeded databases:\n%+v\n%+v", cold1, cold2)
	}
	if !reflect.DeepEqual(warm1, warm2) {
		t.Errorf("warm estimates differ across identically seeded databases:\n%+v\n%+v", warm1, warm2)
	}
	if st := db1.CatalogStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("expected one miss then one hit, got %+v", st)
	}

	// Persistence: a fresh database loading db1's catalog hits on its
	// very first query — no cold discovery run needed.
	var saved bytes.Buffer
	if err := db1.SaveCatalog(&saved); err != nil {
		t.Fatal(err)
	}
	db3 := build()
	if err := db3.LoadCatalog(bytes.NewReader(saved.Bytes())); err != nil {
		t.Fatal(err)
	}
	first, err := db3.CountEstimate(q, eopts)
	if err != nil {
		t.Fatal(err)
	}
	if st := db3.CatalogStats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("loaded catalog should hit on first query, got %+v", st)
	}
	if first.Stages < 1 || first.Interval <= 0 {
		t.Fatalf("warm first query produced no usable estimate: %+v", first)
	}
}

// TestConcurrentCatalogReuse races live estimates against catalog
// builds and invalidations on one shared database: lookups must never
// observe torn state (a hit always carries a complete, consistent
// permutation set) and the engine must keep producing valid estimates
// throughout. Run under -race this is the no-torn-reads regression for
// the catalog's concurrency contract.
func TestConcurrentCatalogReuse(t *testing.T) {
	db := tcq.Open(tcq.WithSimulatedClock(5), tcq.WithLoadNoise(0.12), tcq.WithCatalog())
	for _, name := range []string{"r", "s"} {
		if _, err := workload.SelectRelation(db.Store(), name, workload.PaperTuples, 1000, newRand(5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.BuildCatalog(); err != nil {
		t.Fatal(err)
	}

	const queriers = 4
	const perQuerier = 6
	errs := make(chan error, queriers+1)
	done := make(chan struct{})

	// Maintenance loop: rebuild and invalidate while queries run.
	go func() {
		defer func() { errs <- nil }()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := db.InvalidateCatalog("r"); err != nil {
				errs <- fmt.Errorf("invalidate: %w", err)
				return
			}
			if err := db.BuildCatalog("r"); err != nil {
				errs <- fmt.Errorf("rebuild: %w", err)
				return
			}
			db.CatalogStats()
			db.CatalogRelations()
			db.CatalogShapes()
		}
	}()

	results := make(chan *tcq.Estimate, queriers*perQuerier)
	for g := 0; g < queriers; g++ {
		go func(g int) {
			rel := "r"
			if g%2 == 1 {
				rel = "s"
			}
			q := tcq.Rel(rel).Where(tcq.Col("a").Lt(1000))
			for i := 0; i < perQuerier; i++ {
				est, err := db.CountEstimate(q, tcq.EstimateOptions{
					Quota: 5 * time.Second, DBeta: 12, Seed: int64(g*100 + i),
				})
				if err != nil {
					errs <- fmt.Errorf("querier %d: %w", g, err)
					return
				}
				results <- est
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < queriers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	close(results)
	for est := range results {
		if est.Stages < 1 || est.Blocks < 1 {
			t.Fatalf("estimate ran nothing under concurrent maintenance: %+v", est)
		}
	}
}
