package main

import (
	"bytes"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// runLines drives a session through a script and returns the output.
func runLines(t *testing.T, lines ...string) string {
	t.Helper()
	var buf bytes.Buffer
	s := newSession(&buf)
	for _, line := range lines {
		if err := s.dispatch(line); err != nil {
			t.Fatalf("dispatch(%q): %v", line, err)
		}
	}
	s.out.Flush()
	return buf.String()
}

func TestShellGenCountEstimate(t *testing.T) {
	out := runLines(t,
		"gen select r 1000 100",
		"rels",
		"count select(r, a < 100)",
		"estimate 3s select(r, a < 100)",
	)
	for _, want := range []string{
		"generated r (1000 tuples)",
		"200 blocks",
		"exact: 100",
		"estimate:",
		"stages",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellGenPairsAndSet(t *testing.T) {
	out := runLines(t,
		"set dbeta 24",
		"set strategy heuristic",
		"set seed 5",
		"gen join j1 j2 1000 7000",
		"gen intersect i1 i2 500 200",
		"gen project p 500 50",
		"count join(j1, j2, a = a)",
		"count intersect(i1, i2)",
		"count project(p, [a])",
	)
	for _, want := range []string{
		"set dbeta = 24",
		"set strategy = heuristic",
		"exact: 7000",
		"exact: 200",
		"exact: 50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/r.tcq"
	out := runLines(t,
		"gen select r 200 20",
		"save r "+path,
		"load r2 "+path,
		"count select(r2, a < 20)",
	)
	if !strings.Contains(out, "loaded r2: 200 tuples") {
		t.Errorf("load output:\n%s", out)
	}
	if !strings.Contains(out, "exact: 20") {
		t.Errorf("count after load:\n%s", out)
	}
}

func TestShellHelpAndRels(t *testing.T) {
	out := runLines(t, "help", "rels")
	if !strings.Contains(out, "commands:") || !strings.Contains(out, "(no relations)") {
		t.Errorf("help/rels output:\n%s", out)
	}
}

func TestShellErrors(t *testing.T) {
	var buf bytes.Buffer
	s := newSession(&buf)
	bad := []string{
		"frobnicate",
		"count select(r,",        // parse error
		"count select(r, a < 1)", // unknown relation
		"estimate nope select(r, true)",
		"estimate 1s",
		"load onlyname",
		"save onlyname",
		"save missing /tmp/x.tcq",
		"set dbeta abc",
		"set seed abc",
		"set strategy nope",
		"set unknown 1",
		"gen",
		"gen select r 10",     // wrong arity
		"gen select r abc 10", // bad number
		"gen join a b 10",     // wrong arity
		"gen join a b abc 10", // bad number
		"gen whatever x 1 1",
	}
	for _, line := range bad {
		if err := s.dispatch(line); err == nil {
			t.Errorf("dispatch(%q) should fail", line)
		}
	}
}

func TestSplitWord(t *testing.T) {
	cases := []struct{ in, first, rest string }{
		{"a b c", "a", "b c"},
		{"  lead  trail  ", "lead", "trail"},
		{"single", "single", ""},
		{"", "", ""},
		{"tabs\there", "tabs", "here"},
	}
	for _, c := range cases {
		f, r := splitWord(c.in)
		if f != c.first || r != c.rest {
			t.Errorf("splitWord(%q) = %q, %q", c.in, f, r)
		}
	}
}

func TestShellSumAvgAnalyze(t *testing.T) {
	out := runLines(t,
		"gen select r 1000 100",
		"sum a select(r, a < 10)",
		"avg a select(r, a < 10)",
		"analyze 16",
		"set stats on",
		"estimate 3s select(r, a < 100)",
		"estsum 3s a select(r, a < 100)",
		"estavg 3s a select(r, a < 100)",
		"set stats off",
	)
	for _, want := range []string{
		"exact sum(a): 45", // 0+..+9
		"exact avg(a): 4.5",
		"built equi-depth statistics (16 buckets per column)",
		"set stats = on",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "estimate:") != 3 {
		t.Errorf("expected 3 estimates:\n%s", out)
	}
}

func TestShellSumAvgErrors(t *testing.T) {
	var buf bytes.Buffer
	s := newSession(&buf)
	s.dispatch("gen select r 100 10")
	bad := []string{
		"sum",
		"sum a",
		"sum zz select(r, true)",
		"avg a select(r,",
		"estsum 1s a",
		"estsum nope a select(r, true)",
		"estavg 1s zz select(r, true)",
		"analyze abc",
		"set stats on", // before analyze
		"set stats maybe",
	}
	for _, line := range bad {
		if err := s.dispatch(line); err == nil {
			t.Errorf("dispatch(%q) should fail", line)
		}
	}
}

func TestShellOpenFileBacked(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/r.tcq"
	out := runLines(t,
		"gen select r 200 20",
		"save r "+path,
		"open r2 "+path,
		"count select(r2, a < 20)",
	)
	if !strings.Contains(out, "opened r2: 200 tuples") {
		t.Errorf("open output:\n%s", out)
	}
	if !strings.Contains(out, "exact: 20") {
		t.Errorf("count after open:\n%s", out)
	}
}

func TestShellExplain(t *testing.T) {
	out := runLines(t,
		"gen select r 100 10",
		"explain union(select(r, a < 10), r)",
	)
	if !strings.Contains(out, "inclusion–exclusion") || !strings.Contains(out, "scan r") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestShellSQL(t *testing.T) {
	out := runLines(t,
		"gen select r 1000 100",
		"sql SELECT COUNT(*) FROM r WHERE a < 100",
		"sql SELECT COUNT(*) FROM r GROUP BY a",
		"estsql 3s SELECT COUNT(*) FROM r WHERE a < 100",
	)
	if !strings.Contains(out, "count = 100") {
		t.Errorf("sql count output:\n%s", out)
	}
	if !strings.Contains(out, "groups") {
		t.Errorf("sql group output:\n%s", out)
	}
	if !strings.Contains(out, "±") {
		t.Errorf("estsql output:\n%s", out)
	}
}

func TestShellTraceAndMetrics(t *testing.T) {
	out := runLines(t,
		"gen select r 1000 100",
		`\trace on`,
		"estimate 3s select(r, a < 100)",
		`\trace off`,
		`\metrics`,
	)
	for _, want := range []string{
		"trace on",
		"stage 1:", // the per-stage trace line
		"sel=",
		"trace off",
		"counter", // metrics snapshot
		"queries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellTimingToggle(t *testing.T) {
	on := runLines(t,
		"gen select r 1000 100",
		"estsql 3s SELECT COUNT(*) FROM r WHERE a < 100",
	)
	if !strings.Contains(on, "stages") || !strings.Contains(on, "spent") {
		t.Errorf("estsql with timing on should report stages and elapsed:\n%s", on)
	}
	off := runLines(t,
		"gen select r 1000 100",
		`\timing off`,
		"estsql 3s SELECT COUNT(*) FROM r WHERE a < 100",
		"estimate 3s select(r, a < 100)",
	)
	if strings.Contains(off, "stages") || strings.Contains(off, "spent") {
		t.Errorf("\\timing off should suppress stages/elapsed:\n%s", off)
	}
	if !strings.Contains(off, "±") {
		t.Errorf("\\timing off should still print the estimate:\n%s", off)
	}
}

func TestShellTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	s := newSession(&buf)
	for _, line := range []string{`\trace`, `\trace maybe`, `\timing`, `\timing maybe`} {
		if err := s.dispatch(line); err == nil {
			t.Errorf("dispatch(%q) should fail", line)
		}
	}
}

func TestShellSQLErrors(t *testing.T) {
	var buf bytes.Buffer
	s := newSession(&buf)
	for _, line := range []string{
		"sql SELECT NOPE FROM x",
		"estsql nope SELECT COUNT(*) FROM x",
		"estsql 1s SELECT COUNT(*) FROM missing",
	} {
		if err := s.dispatch(line); err == nil {
			t.Errorf("dispatch(%q) should fail", line)
		}
	}
}

func TestShellWatchAndHistory(t *testing.T) {
	out := runLines(t,
		`\watch`,   // nothing running yet
		`\history`, // nothing completed yet
		"gen select r 1000 100",
		`\watch 3s select(r, a < 100)`,
		"estimate 3s select(r, a < 100)",
		`\history`,
	)
	for _, want := range []string{
		"(no queries in flight)",
		"(no completed queries)",
		"stage 1: est", // live per-stage line from the in-flight registry
		", r ",         // relation coverage in the live line
		"estimate:",    // final line still printed
		"recent queries (most recent first):",
		"query shapes:",
		"select(r, a < 100)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Both runs share one shape: \history must aggregate calls = 2.
	if !regexp.MustCompile(`(?m)^\s+2\s`).MatchString(out[strings.Index(out, "query shapes:"):]) {
		t.Errorf("shape stats should show 2 calls:\n%s", out)
	}
}

func TestShellWatchErrors(t *testing.T) {
	var buf bytes.Buffer
	s := newSession(&buf)
	for _, line := range []string{`\watch nope select(r, true)`, `\watch 1s`, `\watch 1s select(r,`} {
		if err := s.dispatch(line); err == nil {
			t.Errorf("dispatch(%q) should fail", line)
		}
	}
}

// TestShellMetricsDeterministic: \metrics output is a regression
// surface — two identically-driven sessions must render byte-identical,
// lexically sorted snapshots (diff-stable for scripted use).
func TestShellMetricsDeterministic(t *testing.T) {
	script := []string{
		"gen select r 1000 100",
		"estimate 3s select(r, a < 100)",
		"estimate 2s select(r, a < 50)",
		"count select(r, a < 100)",
		`\metrics`,
	}
	first := runLines(t, script...)
	second := runLines(t, script...)
	if first != second {
		t.Errorf("\\metrics not deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}
	i := strings.Index(first, "counter")
	if i < 0 {
		t.Fatalf("no metrics in output:\n%s", first)
	}
	var keys []string
	var kinds []string
	for _, line := range strings.Split(strings.TrimSpace(first[i:]), "\n") {
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		kinds = append(kinds, f[0])
		keys = append(keys, f[0]+"\x00"+f[1])
	}
	if !sort.StringsAreSorted(keys) {
		t.Errorf("metrics lines not sorted within kinds:\n%s", first[i:])
	}
	if len(kinds) == 0 || !sort.SliceIsSorted(kinds, func(a, b int) bool {
		order := map[string]int{"counter": 0, "gauge": 1, "histogram": 2}
		return order[kinds[a]] < order[kinds[b]]
	}) {
		t.Errorf("metrics kinds out of order:\n%s", first[i:])
	}
}

// \calib renders the session's calibration report; \flightrec the
// flight-recorded anomalies. A quiet session has audited queries (the
// shell opens its DB with calibration on) but captured nothing.
func TestShellCalibAndFlightRec(t *testing.T) {
	out := runLines(t,
		`\flightrec`, // nothing captured yet
		"gen select r 1000 100",
		"estimate 3s select(r, a < 100)",
		`\calib`,
		`\history`,
	)
	for _, want := range []string{
		"(no flight records — no anomalous queries captured)",
		"calibration: 1 queries audited, 0 with ground truth",
		"shape: select(r, a < 100)",
		"drift:",
		"flight recorder:",
		"coverage", // new \history shape column
		"drift%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Drive an anomaly: a tiny quota in overrun mode overspends far past
	// the 5% capture threshold, so the flight recorder must hold it.
	out = runLines(t,
		"gen select big 20000 1000",
		"estimate 1ms select(big, a < 1000)",
		`\flightrec`,
	)
	if !strings.Contains(out, "[overspend]") && !strings.Contains(out, "[deadline-abort") {
		t.Errorf("overspent run not flight-recorded:\n%s", out)
	}
}
