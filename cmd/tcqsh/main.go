// Command tcqsh is an interactive shell for the tcq time-constrained
// query processor. It speaks the textual RA syntax and runs both exact
// and time-constrained COUNT queries against a simulated machine.
//
//	$ tcqsh
//	tcq> gen select r 10000 1000
//	tcq> count select(r, a < 1000)
//	exact: 1000
//	tcq> estimate 10s select(r, a < 1000)
//	estimate: 1012.5 ± 161.2 (95%), 3 stages, 97 blocks, spent 9.61s, util 96%
//	tcq> quit
//
// Commands:
//
//	gen select|intersect|join|project NAME [NAME2] N OUT   generate data
//	load NAME FILE                                         load a .tcq file (in memory)
//	open NAME FILE                                         attach a .tcq file (on demand)
//	save NAME FILE                                         save a relation
//	rels                                                   list relations
//	explain EXPR                                           show the evaluation plan
//	count EXPR                                             exact COUNT
//	sum COL EXPR / avg COL EXPR                            exact SUM / AVG
//	estimate DUR EXPR                                      time-constrained COUNT
//	estsum DUR COL EXPR / estavg DUR COL EXPR              time-constrained SUM / AVG
//	sql SELECT ...                                         exact SQL aggregate
//	estsql DUR SELECT ...                                  time-constrained SQL aggregate
//	analyze [BUCKETS]                                      build equi-depth statistics
//	set dbeta|strategy|seed|stats VALUE                    session settings
//	\trace on|off                                          per-stage trace lines for estimates
//	\timing on|off                                         stages/elapsed in result lines (on by default)
//	\parallel N                                            term-evaluation workers (0 = auto; results are identical)
//	\metrics                                               session-wide metrics snapshot
//	\watch [DUR EXPR]                                      in-flight queries; with args, estimate with live progress
//	\history                                               completed queries + per-shape stats
//	\calib                                                 calibration report (coverage, drift, flight recorder)
//	\catalog [build [NAME COL] | invalidate [NAME...]]     sample-catalog status / build / invalidate
//	\flightrec                                             flight-recorded anomalous queries
//	\connect ADDR [TENANT]                                 route queries to a tcqd server
//	\disconnect                                            back to the local session
//	help, quit
//
// While connected, count/sum-style exact queries, estimates and SQL
// run on the server under the chosen tenant (estimates stream
// per-stage progress lines when \trace is on); data-generation and
// session commands stay local.
//
// With -serve ADDR the session also exports live telemetry over HTTP
// (/metrics, /queries, /history, /calibration, /debug/flightrecorder);
// Ctrl-C drains the listener before exiting.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tcq"
	"tcq/internal/calib"
	"tcq/internal/client"
	"tcq/internal/wire"
	"tcq/internal/workload"
)

type session struct {
	db       *tcq.DB
	dBeta    float64
	strategy tcq.StrategyKind
	seed     int64
	useStats bool
	analyzed bool
	// timing appends stages/elapsed to estimate result lines (default
	// on; `\timing off` keeps scripted output golden-stable).
	timing bool
	// traceOn streams a per-stage trace line for every estimate.
	traceOn bool
	// parallelism is the term-evaluation worker count passed to
	// estimates (0 = auto, negative = serial; the choice never changes
	// results, only wall time).
	parallelism int
	// remote, when set by \connect, routes query commands (count, sql,
	// estimate, estsum, estavg, estsql, rels) to a tcqd server; data
	// and session commands stay local.
	remote *client.Client
	out    *bufio.Writer
}

// newSession builds a shell session writing to out.
func newSession(out io.Writer) *session {
	return &session{
		db:     tcq.Open(tcq.WithSimulatedClock(1), tcq.WithLoadNoise(0.12), tcq.WithTelemetry(64), tcq.WithCalibration(64), tcq.WithCatalog()),
		dBeta:  12,
		seed:   1,
		timing: true,
		out:    bufio.NewWriter(out),
	}
}

func main() {
	serve := flag.String("serve", "", "serve live telemetry (/metrics, /queries, /history, /calibration, pprof) on this address, e.g. :9100")
	flag.Parse()
	s := newSession(os.Stdout)
	if *serve != "" {
		// Ctrl-C (or SIGTERM) gracefully drains the telemetry listener
		// and flushes pending shell output before exiting.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		srv, addr, err := s.db.ServeTelemetry(ctx, *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcqsh:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(s.out, "telemetry: http://%s/ (metrics, queries, history, calibration, pprof)\n", addr)
		go func() {
			<-ctx.Done()
			sh, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			srv.Shutdown(sh)
			cancel()
			s.out.Flush()
			os.Exit(0)
		}()
	}
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminalish()
	for {
		if interactive {
			fmt.Fprint(s.out, "tcq> ")
		}
		s.out.Flush()
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := s.dispatch(line); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	}
	s.out.Flush()
}

func isTerminalish() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func (s *session) dispatch(line string) error {
	cmd, rest := splitWord(line)
	switch cmd {
	case "help":
		fmt.Fprintln(s.out, `commands: gen, load, open, save, rels, explain, count, sum, avg, estimate, estsum, estavg, sql, estsql, analyze, set, \trace, \metrics, \timing, \parallel, \watch, \history, \calib, \catalog, \flightrec, \connect, \disconnect, help, quit`)
		return nil
	case `\connect`:
		addr, tenant := splitWord(rest)
		if addr == "" {
			return fmt.Errorf(`usage: \connect ADDR [TENANT]`)
		}
		tenant = strings.TrimSpace(tenant)
		if tenant == "" {
			tenant = "default"
		}
		c := client.New(addr, tenant)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		h, err := c.Health(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("connect %s: %v", c.BaseURL, err)
		}
		s.remote = c
		fmt.Fprintf(s.out, "connected (tenant %s, status %s)\n", tenant, h.Status)
		return nil
	case `\disconnect`:
		if s.remote == nil {
			return fmt.Errorf("not connected")
		}
		s.remote = nil
		fmt.Fprintln(s.out, "disconnected")
		return nil
	case `\calib`:
		fmt.Fprint(s.out, calib.RenderReport(s.db.Calibration()))
		return nil
	case `\catalog`:
		return s.catalogCmd(rest)
	case `\flightrec`:
		return s.printFlightRecords()
	case `\parallel`:
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil {
			return fmt.Errorf(`usage: \parallel N (0 = auto, negative = serial)`)
		}
		s.parallelism = n
		fmt.Fprintf(s.out, "parallel %d\n", n)
		return nil
	case `\trace`:
		switch strings.TrimSpace(rest) {
		case "on":
			s.traceOn = true
		case "off":
			s.traceOn = false
		default:
			return fmt.Errorf(`usage: \trace on|off`)
		}
		fmt.Fprintf(s.out, "trace %s\n", strings.TrimSpace(rest))
		return nil
	case `\timing`:
		switch strings.TrimSpace(rest) {
		case "on":
			s.timing = true
		case "off":
			s.timing = false
		default:
			return fmt.Errorf(`usage: \timing on|off`)
		}
		fmt.Fprintf(s.out, "timing %s\n", strings.TrimSpace(rest))
		return nil
	case `\metrics`:
		fmt.Fprint(s.out, s.db.Metrics().String())
		return nil
	case `\watch`:
		if strings.TrimSpace(rest) == "" {
			return s.watchInFlight()
		}
		return s.watchEstimate(rest)
	case `\history`:
		return s.printHistory()
	case "rels":
		if s.remote != nil {
			rels, err := s.remote.Relations(context.Background())
			if err != nil {
				return err
			}
			if len(rels) == 0 {
				fmt.Fprintln(s.out, "(no relations)")
				return nil
			}
			for _, r := range rels {
				fmt.Fprintf(s.out, "%-12s %7d tuples %6d blocks\n", r.Name, r.Tuples, r.Blocks)
			}
			return nil
		}
		names := s.db.Relations()
		if len(names) == 0 {
			fmt.Fprintln(s.out, "(no relations)")
			return nil
		}
		for _, n := range names {
			rel, err := s.db.Relation(n)
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "%-12s %7d tuples %6d blocks\n", n, rel.NumTuples(), rel.NumBlocks())
		}
		return nil
	case "gen":
		return s.gen(rest)
	case "load", "open":
		name, file := splitWord(rest)
		if name == "" || file == "" {
			return fmt.Errorf("usage: %s NAME FILE", cmd)
		}
		var rel *tcq.Relation
		var err error
		if cmd == "open" {
			rel, err = s.db.OpenRelationFile(name, strings.TrimSpace(file))
		} else {
			rel, err = s.db.LoadRelationFile(name, strings.TrimSpace(file))
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%sed %s: %d tuples, %d blocks\n", cmd, name, rel.NumTuples(), rel.NumBlocks())
		return nil
	case "save":
		name, file := splitWord(rest)
		if name == "" || file == "" {
			return fmt.Errorf("usage: save NAME FILE")
		}
		rel, err := s.db.Relation(name)
		if err != nil {
			return err
		}
		return rel.SaveFile(strings.TrimSpace(file))
	case "sql":
		if s.remote != nil {
			ev, err := s.remoteQuery(wire.QueryRequest{SQL: rest, Exact: true})
			if err != nil {
				return err
			}
			s.printWireSQL(ev)
			s.printWireSpans(ev)
			return nil
		}
		res, err := s.db.ExecSQL(rest)
		if err != nil {
			return err
		}
		s.printSQL(res)
		return nil
	case "estsql":
		durStr, stmt := splitWord(rest)
		quota, err := time.ParseDuration(durStr)
		if err != nil {
			return fmt.Errorf("usage: estsql DURATION SELECT ... (%v)", err)
		}
		if s.remote != nil {
			ev, err := s.remoteQuery(wire.QueryRequest{SQL: stmt, Quota: quota})
			if err != nil {
				return err
			}
			s.printWireSQL(ev)
			s.printWireSpans(ev)
			s.seed++
			return nil
		}
		res, err := s.db.EstimateSQL(stmt, s.estimateOptions(quota))
		if err != nil {
			return err
		}
		s.printSQL(res)
		s.seed++
		return nil
	case "explain":
		q, err := tcq.Parse(rest)
		if err != nil {
			return err
		}
		plan, err := s.db.Explain(q)
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, plan)
		return nil
	case "count":
		if s.remote != nil {
			ev, err := s.remoteQuery(wire.QueryRequest{RA: rest, Exact: true})
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "exact: %d\n", int64(ev.Value))
			s.printWireSpans(ev)
			return nil
		}
		q, err := tcq.Parse(rest)
		if err != nil {
			return err
		}
		n, err := s.db.Count(q)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "exact: %d\n", n)
		return nil
	case "sum", "avg":
		col, exprStr := splitWord(rest)
		if col == "" || exprStr == "" {
			return fmt.Errorf("usage: %s COL EXPR", cmd)
		}
		q, err := tcq.Parse(exprStr)
		if err != nil {
			return err
		}
		var v float64
		if cmd == "sum" {
			v, err = s.db.Sum(q, col)
		} else {
			v, err = s.db.Avg(q, col)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "exact %s(%s): %g\n", cmd, col, v)
		return nil
	case "analyze":
		buckets := 32
		if w, _ := splitWord(rest); w != "" {
			b, err := strconv.Atoi(w)
			if err != nil {
				return err
			}
			buckets = b
		}
		if err := s.db.BuildStatistics(buckets); err != nil {
			return err
		}
		s.analyzed = true
		fmt.Fprintf(s.out, "built equi-depth statistics (%d buckets per column)\n", buckets)
		return nil
	case "estsum", "estavg":
		durStr, rest2 := splitWord(rest)
		col, exprStr := splitWord(rest2)
		quota, err := time.ParseDuration(durStr)
		if err != nil || col == "" || exprStr == "" {
			return fmt.Errorf("usage: %s DURATION COL EXPR", cmd)
		}
		q, err := tcq.Parse(exprStr)
		if err != nil {
			return err
		}
		opts := s.estimateOptions(quota)
		var est *tcq.Estimate
		if cmd == "estsum" {
			est, err = s.db.SumEstimate(q, col, opts)
		} else {
			est, err = s.db.AvgEstimate(q, col, opts)
		}
		if err != nil {
			return err
		}
		s.printEstimate(est)
		s.seed++
		return nil
	case "estimate":
		durStr, exprStr := splitWord(rest)
		quota, err := time.ParseDuration(durStr)
		if err != nil {
			return fmt.Errorf("usage: estimate DURATION EXPR (%v)", err)
		}
		if s.remote != nil {
			ev, err := s.remoteQuery(wire.QueryRequest{RA: exprStr, Quota: quota})
			if err != nil {
				return err
			}
			s.printWireEstimate(ev)
			s.printWireSpans(ev)
			s.seed++
			return nil
		}
		q, err := tcq.Parse(exprStr)
		if err != nil {
			return err
		}
		est, err := s.db.CountEstimate(q, s.estimateOptions(quota))
		if err != nil {
			return err
		}
		s.printEstimate(est)
		s.seed++ // fresh sample next time
		return nil
	case "set":
		key, val := splitWord(rest)
		switch key {
		case "dbeta":
			v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return err
			}
			s.dBeta = v
		case "seed":
			v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
			if err != nil {
				return err
			}
			s.seed = v
		case "strategy":
			switch strings.TrimSpace(val) {
			case "one-at-a-time":
				s.strategy = tcq.OneAtATime
			case "single-interval":
				s.strategy = tcq.SingleInterval
			case "heuristic":
				s.strategy = tcq.Heuristic
			default:
				return fmt.Errorf("strategies: one-at-a-time, single-interval, heuristic")
			}
		case "stats":
			switch strings.TrimSpace(val) {
			case "on":
				if !s.analyzed {
					return fmt.Errorf("run 'analyze' first")
				}
				s.useStats = true
			case "off":
				s.useStats = false
			default:
				return fmt.Errorf("usage: set stats on|off")
			}
		default:
			return fmt.Errorf("settable: dbeta, seed, strategy, stats")
		}
		fmt.Fprintf(s.out, "set %s = %s\n", key, strings.TrimSpace(val))
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

// watchInFlight renders the queries currently evaluating. When
// \connect'ed it asks the server's /queries endpoint for the tenant's
// in-flight queries (the same registry the telemetry server scrapes);
// locally it reads the session DB's registry, which in the serial
// shell is normally empty unless other goroutines share the DB.
func (s *session) watchInFlight() error {
	inflight := s.db.InFlight()
	if s.remote != nil {
		// Tenant scopes label queries "tenant/req-N"; the prefix filter
		// selects this connection's tenant.
		qs, err := s.remote.Queries(context.Background(), s.remote.Tenant+"/")
		if err != nil {
			return err
		}
		inflight = qs
	}
	if len(inflight) == 0 {
		fmt.Fprintln(s.out, "(no queries in flight)")
		return nil
	}
	for _, p := range inflight {
		fmt.Fprintf(s.out, "q%-3d stage %-2d est %.1f ± %.1f, spent %.0f%%, %d blocks  %s",
			p.ID, p.Stages, p.Estimate, p.Interval, p.SpentFrac*100, p.Blocks, p.Query)
		if s.remote != nil && p.Label != "" {
			fmt.Fprintf(s.out, "  [%s]", p.Label)
		}
		fmt.Fprintln(s.out)
	}
	return nil
}

// watchEstimate runs `\watch DUR EXPR`: a time-constrained COUNT that
// renders one live progress line per completed stage, read back from
// the session's in-flight registry (the same records /queries serves).
func (s *session) watchEstimate(rest string) error {
	durStr, exprStr := splitWord(rest)
	quota, err := time.ParseDuration(durStr)
	if err != nil || exprStr == "" {
		return fmt.Errorf(`usage: \watch DURATION EXPR`)
	}
	q, err := tcq.Parse(exprStr)
	if err != nil {
		return err
	}
	opts := s.estimateOptions(quota)
	opts.OnProgress = func(tcq.Progress) {
		for _, p := range s.db.InFlight() {
			var rels strings.Builder
			for _, r := range p.Relations {
				fmt.Fprintf(&rels, ", %s %.1f%%", r.Relation, r.Coverage*100)
			}
			fmt.Fprintf(s.out, "stage %d: est %.1f ± %.1f, spent %.0f%%, %d blocks%s\n",
				p.Stages, p.Estimate, p.Interval, p.SpentFrac*100, p.Blocks, rels.String())
		}
	}
	est, err := s.db.CountEstimate(q, opts)
	if err != nil {
		return err
	}
	s.printEstimate(est)
	s.seed++
	return nil
}

// printHistory renders the completed-query ring and the per-shape
// aggregates (the shell's pg_stat_statements).
func (s *session) printHistory() error {
	hist := s.db.History()
	if len(hist) == 0 {
		fmt.Fprintln(s.out, "(no completed queries)")
		return nil
	}
	fmt.Fprintln(s.out, "recent queries (most recent first):")
	fmt.Fprintf(s.out, "%4s %6s %6s %12s %10s %8s %5s  %-18s %s\n",
		"id", "stages", "blocks", "estimate", "±ci", "spent(s)", "util%", "reason", "query")
	for _, h := range hist {
		fmt.Fprintf(s.out, "%4d %6d %6d %12.1f %10.1f %8.2f %5.0f  %-18s %s\n",
			h.ID, h.Stages, h.Blocks, h.Estimate, h.Interval,
			h.Elapsed.Seconds(), h.Utilization*100, h.StopReason, h.Query)
	}
	fmt.Fprintln(s.out, "query shapes:")
	fmt.Fprintf(s.out, "%6s %7s %7s %9s %5s %8s %9s  %s\n",
		"calls", "stages", "blocks", "mean-ci", "ovsp", "drift%", "coverage", "query")
	for _, st := range s.db.QueryStats() {
		coverage := "-"
		if st.TruthN > 0 {
			coverage = fmt.Sprintf("%d/%d", st.TruthHits, st.TruthN)
		}
		fmt.Fprintf(s.out, "%6d %7.1f %7.1f %9.1f %5d %+8.1f %9s  %s\n",
			st.Calls, st.MeanStages, float64(st.TotalBlocks)/float64(st.Calls),
			st.MeanCIWidth, st.Overspends, 100*st.WorstOvershoot, coverage, st.Query)
	}
	return nil
}

// catalogCmd handles `\catalog` and its subcommands: bare `\catalog`
// prints the reuse stats plus the materialized sample sets and learned
// shape hints; `build` materializes sample sets for every relation
// (seeding hints from the telemetry shape stats), `build NAME COL`
// additionally builds a stratified variant keyed on COL, and
// `invalidate [NAME...]` drops sample sets (all of them with no names).
func (s *session) catalogCmd(rest string) error {
	sub, args := splitWord(rest)
	switch sub {
	case "":
		st := s.db.CatalogStats()
		fmt.Fprintf(s.out, "catalog: %d relation sample sets, %d shape hints\n", st.Relations, st.Shapes)
		fmt.Fprintf(s.out, "lookups %d: %d hits, %d misses, %d stale; reused %d blocks (%d bytes)\n",
			st.Lookups, st.Hits, st.Misses, st.Stale, st.BlocksReused, st.BytesReused)
		if rels := s.db.CatalogRelations(); len(rels) > 0 {
			fmt.Fprintln(s.out, "sample sets:")
			for _, r := range rels {
				strat := ""
				if r.StratifyCol != "" {
					strat = fmt.Sprintf(" stratified(%s, %d strata)", r.StratifyCol, r.Strata)
				}
				fmt.Fprintf(s.out, "  %-12s %6d blocks %9d tuples%s\n", r.Relation, r.NumBlocks, r.NumTuples, strat)
			}
		}
		if shapes := s.db.CatalogShapes(); len(shapes) > 0 {
			fmt.Fprintln(s.out, "shape hints:")
			fmt.Fprintf(s.out, "  %5s %9s %9s  %s\n", "calls", "coverage", "mean-ci", "shape")
			for _, sh := range shapes {
				fmt.Fprintf(s.out, "  %5d %8.1f%% %9.1f  %s\n",
					sh.Calls, 100*sh.HintFrac(), sh.MeanCIWidth(), sh.Fingerprint)
			}
		}
		return nil
	case "build":
		if args != "" {
			name, col := splitWord(args)
			if name == "" || col == "" {
				return fmt.Errorf(`usage: \catalog build [NAME COL]`)
			}
			if err := s.db.BuildCatalogStratified(name, strings.TrimSpace(col)); err != nil {
				return err
			}
			fmt.Fprintf(s.out, "built stratified sample set for %s on %s\n", name, strings.TrimSpace(col))
			return nil
		}
		if err := s.db.BuildCatalog(); err != nil {
			return err
		}
		st := s.db.CatalogStats()
		fmt.Fprintf(s.out, "built %d relation sample sets (%d shape hints)\n", st.Relations, st.Shapes)
		return nil
	case "invalidate":
		var names []string
		if strings.TrimSpace(args) != "" {
			names = strings.Fields(args)
		}
		if err := s.db.InvalidateCatalog(names...); err != nil {
			return err
		}
		if len(names) == 0 {
			fmt.Fprintln(s.out, "invalidated all sample sets and shape hints")
		} else {
			fmt.Fprintf(s.out, "invalidated %s (and dependent shape hints)\n", strings.Join(names, ", "))
		}
		return nil
	default:
		return fmt.Errorf(`usage: \catalog [build [NAME COL] | invalidate [NAME...]]`)
	}
}

// printFlightRecords renders the flight recorder's retained anomalous
// queries (oldest first): why each was captured and its final state.
func (s *session) printFlightRecords() error {
	recs := s.db.FlightRecords()
	if len(recs) == 0 {
		fmt.Fprintln(s.out, "(no flight records — no anomalous queries captured)")
		return nil
	}
	for _, r := range recs {
		truth := ""
		if r.Truth != nil {
			truth = fmt.Sprintf(" truth=%.0f", r.Truth.Value)
		}
		over := ""
		if r.Trace.End.Overspend > 0 {
			over = fmt.Sprintf(" overspend=%v", r.Trace.End.Overspend.Round(time.Millisecond))
		}
		note := ""
		if r.Note != "" {
			note = " " + r.Note
		}
		fmt.Fprintf(s.out, "#%d [%s]%s %s  stages=%d est=%.1f±%.1f%s%s stop=%s\n",
			r.Seq, strings.Join(r.Reasons, ","), note, r.Trace.Info.Query,
			r.Trace.End.Stages, r.Trace.End.Estimate, r.Trace.End.Interval,
			truth, over, r.Trace.End.StopReason)
	}
	return nil
}

// printSQL renders a SQL result, including group rows. Estimated
// results carry stages/elapsed detail unless `\timing off`.
func (s *session) printSQL(res *tcq.SQLResult) {
	line := res.String()
	if est := res.Estimate; est != nil && s.timing {
		line += fmt.Sprintf(" (%d stages, %d blocks, spent %.2fs)",
			est.Stages, est.Blocks, est.Elapsed.Seconds())
	}
	fmt.Fprintln(s.out, line)
	for _, g := range res.Groups {
		if g.Interval > 0 {
			fmt.Fprintf(s.out, "  %-12v %10.1f ± %.1f\n", g.Key, g.Value, g.Interval)
		} else {
			fmt.Fprintf(s.out, "  %-12v %10.0f\n", g.Key, g.Value)
		}
	}
}

// remoteQuery runs one request on the connected tcqd, carrying the
// session's estimate settings. With \trace on, estimates stream and
// each per-stage progress event renders as a trace line.
func (s *session) remoteQuery(req wire.QueryRequest) (*wire.Event, error) {
	req.DBeta = s.dBeta
	req.Strategy = strategyName(s.strategy)
	req.Seed = s.seed
	req.Parallel = s.parallelism
	if s.traceOn && !req.Exact {
		req.Stream = true
	}
	return s.remote.Query(context.Background(), req, func(ev wire.Event) {
		fmt.Fprintf(s.out, "stage %d: est %.1f ± %.1f, spent %.0f%%, %d blocks\n",
			ev.Stage, ev.Estimate, ev.Interval, ev.SpentFrac*100, ev.Blocks)
		s.out.Flush()
	})
}

// strategyName maps the session strategy to its wire slug.
func strategyName(k tcq.StrategyKind) string {
	switch k {
	case tcq.SingleInterval:
		return "single-interval"
	case tcq.Heuristic:
		return "heuristic"
	default:
		return "one-at-a-time"
	}
}

// printWireSpans renders the server's latency anatomy for the last
// remote request: the request id and every wire-to-wire span, in
// timeline order. Only under \trace on — the nanosecond values are
// real wall time, the one nondeterministic part of a response (the
// span golden in check.sh normalizes them).
func (s *session) printWireSpans(ev *wire.Event) {
	if !s.traceOn || ev == nil || len(ev.Spans) == 0 {
		return
	}
	fmt.Fprintf(s.out, "request %s: %d spans, wall %dns\n", ev.RequestID, len(ev.Spans), ev.Wall.Nanoseconds())
	for _, sp := range ev.Spans {
		name := sp.Name
		if sp.Stage > 0 {
			name = fmt.Sprintf("%s[%d]", name, sp.Stage)
		}
		fmt.Fprintf(s.out, "  %-16s %dns", name, sp.Dur.Nanoseconds())
		if sp.Retries > 0 {
			fmt.Fprintf(s.out, " (%d retries)", sp.Retries)
		}
		fmt.Fprintln(s.out)
	}
}

// printWireEstimate renders a remote estimate result in the shell's
// one-line format (mirroring printEstimate).
func (s *session) printWireEstimate(ev *wire.Event) {
	fmt.Fprintf(s.out, "estimate: %.1f ± %.1f (%.0f%%)",
		ev.Value, ev.Interval, ev.Confidence*100)
	if s.timing {
		fmt.Fprintf(s.out, ", %d stages, %d blocks, spent %.2fs, util %.0f%%",
			ev.Stages, ev.Blocks, ev.Elapsed.Seconds(), ev.Utilization*100)
		if ev.Overspent {
			fmt.Fprintf(s.out, ", OVERSPENT %.2fs", ev.Overrun.Seconds())
		}
	}
	fmt.Fprintf(s.out, "\n  [%s]\n", ev.StopReason)
}

// printWireSQL renders a remote SQL result (mirroring printSQL).
func (s *session) printWireSQL(ev *wire.Event) {
	var line string
	switch {
	case len(ev.Groups) > 0:
		line = fmt.Sprintf("%s by group (%d groups, total %.1f)", ev.Kind, len(ev.Groups), ev.Value)
	case ev.Exact:
		line = fmt.Sprintf("%s = %.1f", ev.Kind, ev.Value)
	default:
		line = fmt.Sprintf("%s ≈ %.1f ± %.1f", ev.Kind, ev.Value, ev.Interval)
	}
	if !ev.Exact && s.timing {
		line += fmt.Sprintf(" (%d stages, %d blocks, spent %.2fs)",
			ev.Stages, ev.Blocks, ev.Elapsed.Seconds())
	}
	fmt.Fprintln(s.out, line)
	for _, g := range ev.Groups {
		if g.Interval > 0 {
			fmt.Fprintf(s.out, "  %-12v %10.1f ± %.1f\n", g.Key, g.Value, g.Interval)
		} else {
			fmt.Fprintf(s.out, "  %-12v %10.0f\n", g.Key, g.Value)
		}
	}
}

// estimateOptions assembles the session's estimate settings.
func (s *session) estimateOptions(quota time.Duration) tcq.EstimateOptions {
	opts := tcq.EstimateOptions{
		Quota:         quota,
		DBeta:         s.dBeta,
		Strategy:      s.strategy,
		Seed:          s.seed,
		UseStatistics: s.useStats,
		Parallelism:   s.parallelism,
	}
	if s.traceOn {
		opts.Trace = s.out
	}
	return opts
}

// printEstimate renders an estimate in the shell's one-line format.
func (s *session) printEstimate(est *tcq.Estimate) {
	fmt.Fprintf(s.out, "estimate: %.1f ± %.1f (%.0f%%)",
		est.Value, est.Interval, est.Confidence*100)
	if s.timing {
		fmt.Fprintf(s.out, ", %d stages, %d blocks, spent %.2fs, util %.0f%%",
			est.Stages, est.Blocks, est.Elapsed.Seconds(), est.Utilization*100)
		if est.Overspent {
			fmt.Fprintf(s.out, ", OVERSPENT %.2fs", est.Overrun.Seconds())
		}
	}
	fmt.Fprintf(s.out, "\n  [%s]\n", est.StopReason)
}

// gen handles: gen select NAME N OUT | gen project NAME N OUT |
// gen intersect NAME1 NAME2 N OUT | gen join NAME1 NAME2 N OUT
func (s *session) gen(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		return fmt.Errorf("usage: gen select|project NAME N OUT | gen intersect|join NAME1 NAME2 N OUT")
	}
	kind := fields[0]
	rng := rand.New(rand.NewSource(s.seed))
	atoi := func(str string) (int, error) { return strconv.Atoi(str) }
	switch kind {
	case "select", "project":
		if len(fields) != 4 {
			return fmt.Errorf("usage: gen %s NAME N OUT", kind)
		}
		n, err := atoi(fields[2])
		if err != nil {
			return err
		}
		out, err := atoi(fields[3])
		if err != nil {
			return err
		}
		if kind == "select" {
			_, err = workload.SelectRelation(s.db.Store(), fields[1], n, out, rng)
		} else {
			_, err = workload.ProjectRelation(s.db.Store(), fields[1], n, out, rng)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "generated %s (%d tuples)\n", fields[1], n)
		return nil
	case "intersect", "join":
		if len(fields) != 5 {
			return fmt.Errorf("usage: gen %s NAME1 NAME2 N OUT", kind)
		}
		n, err := atoi(fields[3])
		if err != nil {
			return err
		}
		out, err := atoi(fields[4])
		if err != nil {
			return err
		}
		if kind == "intersect" {
			_, _, err = workload.IntersectPair(s.db.Store(), fields[1], fields[2], n, out, rng)
		} else {
			_, _, err = workload.JoinPair(s.db.Store(), fields[1], fields[2], n, out, rng)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "generated %s, %s (%d tuples each)\n", fields[1], fields[2], n)
		return nil
	default:
		return fmt.Errorf("gen kinds: select, project, intersect, join")
	}
}

func splitWord(s string) (first, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}
