// Command tcqgen generates the paper's synthetic relations and writes
// them as tcq binary relation files, for use with tcqsh or the library.
//
// Usage:
//
//	tcqgen -kind select -n 10000 -out 1000 -o r.tcq
//	tcqgen -kind intersect -n 10000 -out 10000 -o r1.tcq -o2 r2.tcq
//	tcqgen -kind join -n 10000 -out 70000 -o r1.tcq -o2 r2.tcq
//	tcqgen -kind project -n 10000 -out 500 -o r.tcq
//	tcqgen -kind uniform -n 10000 -max 1000 -o r.tcq
//	tcqgen -kind zipf -n 10000 -max 1000 -s 1.3 -o r.tcq
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"tcq/internal/storage"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tcqgen:", err)
		os.Exit(1)
	}
}

// run parses args and generates the requested relations, writing
// progress to out.
func run(args []string, out io.Writer) error {
	flag := flag.NewFlagSet("tcqgen", flag.ContinueOnError)
	flag.SetOutput(out)
	var (
		kind = flag.String("kind", "select", "workload: select|intersect|join|project|uniform|zipf")
		n    = flag.Int("n", workload.PaperTuples, "tuples per relation")
		outN = flag.Int("out", 1000, "target output cardinality (select/intersect/join/project)")
		maxA = flag.Int64("max", 1000, "attribute domain size (uniform/zipf)")
		s    = flag.Float64("s", 1.3, "zipf exponent (> 1)")
		seed = flag.Int64("seed", 1, "random seed")
		o1   = flag.String("o", "r1.tcq", "output file for the (first) relation")
		o2   = flag.String("o2", "r2.tcq", "output file for the second relation (intersect/join)")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}

	st := storage.NewStore(vclock.NewSim(*seed, 0), storage.SunProfile(), storage.DefaultBlockSize)
	rng := rand.New(rand.NewSource(*seed))

	save := func(rel *storage.Relation, path string) error {
		if err := rel.SaveFile(path); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s: %d tuples, %d blocks\n", path, rel.NumTuples(), rel.NumBlocks())
		return nil
	}

	switch *kind {
	case "select":
		rel, err := workload.SelectRelation(st, "r", *n, *outN, rng)
		if err != nil {
			return err
		}
		if err := save(rel, *o1); err != nil {
			return err
		}
		fmt.Fprintf(out, "exact: count(select(r, a < %d)) = %d\n", *outN, *outN)
	case "intersect":
		r1, r2, err := workload.IntersectPair(st, "r1", "r2", *n, *outN, rng)
		if err != nil {
			return err
		}
		if err := save(r1, *o1); err != nil {
			return err
		}
		if err := save(r2, *o2); err != nil {
			return err
		}
		fmt.Fprintf(out, "exact: count(intersect(r1, r2)) = %d\n", *outN)
	case "join":
		r1, r2, err := workload.JoinPair(st, "r1", "r2", *n, *outN, rng)
		if err != nil {
			return err
		}
		if err := save(r1, *o1); err != nil {
			return err
		}
		if err := save(r2, *o2); err != nil {
			return err
		}
		fmt.Fprintf(out, "exact: count(join(r1, r2, a = a)) = %d\n", *outN)
	case "project":
		rel, err := workload.ProjectRelation(st, "r", *n, *outN, rng)
		if err != nil {
			return err
		}
		if err := save(rel, *o1); err != nil {
			return err
		}
		fmt.Fprintf(out, "exact: count(project(r, [a])) = %d\n", *outN)
	case "uniform":
		rel, err := workload.UniformRelation(st, "r", *n, *maxA, rng)
		if err != nil {
			return err
		}
		if err := save(rel, *o1); err != nil {
			return err
		}
	case "zipf":
		rel, err := workload.ZipfRelation(st, "r", *n, uint64(*maxA), *s, rng)
		if err != nil {
			return err
		}
		if err := save(rel, *o1); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	return nil
}
