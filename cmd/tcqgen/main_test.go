package main

import (
	"bytes"
	"strings"
	"testing"

	"tcq/internal/storage"
	"tcq/internal/vclock"
)

func genTo(t *testing.T, args ...string) (string, string) {
	t.Helper()
	dir := t.TempDir()
	o1, o2 := dir+"/r1.tcq", dir+"/r2.tcq"
	var buf bytes.Buffer
	full := append(args, "-o", o1, "-o2", o2)
	if err := run(full, &buf); err != nil {
		t.Fatalf("run(%v): %v\n%s", full, err, buf.String())
	}
	return o1, buf.String()
}

func loadCount(t *testing.T, path string) int64 {
	t.Helper()
	st := storage.NewStore(vclock.NewSim(1, 0), storage.SunProfile(), storage.DefaultBlockSize)
	rel, err := st.LoadRelationFile("r", path)
	if err != nil {
		t.Fatal(err)
	}
	return rel.NumTuples()
}

func TestGenSelect(t *testing.T) {
	path, out := genTo(t, "-kind", "select", "-n", "500", "-out", "50")
	if !strings.Contains(out, "count(select(r, a < 50)) = 50") {
		t.Errorf("output:\n%s", out)
	}
	if n := loadCount(t, path); n != 500 {
		t.Errorf("loaded %d tuples", n)
	}
}

func TestGenJoinPairFiles(t *testing.T) {
	dir := t.TempDir()
	o1, o2 := dir+"/a.tcq", dir+"/b.tcq"
	var buf bytes.Buffer
	err := run([]string{"-kind", "join", "-n", "500", "-out", "3500", "-o", o1, "-o2", o2}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if loadCount(t, o1) != 500 || loadCount(t, o2) != 500 {
		t.Error("pair files wrong")
	}
}

func TestGenAllKinds(t *testing.T) {
	for _, kind := range []string{"intersect", "project", "uniform", "zipf"} {
		args := []string{"-kind", kind, "-n", "200", "-out", "100"}
		if _, out := genTo(t, args...); !strings.Contains(out, "wrote") {
			t.Errorf("%s output:\n%s", kind, out)
		}
	}
}

func TestGenErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-kind", "nope"},
		{"-kind", "select", "-n", "10", "-out", "100"}, // out > n
		{"-kind", "zipf", "-s", "0.5"},                 // bad exponent
		{"-kind", "join", "-n", "15", "-out", "10"},    // n not mult of 10
		{"-badflag"},
		{"-kind", "select", "-o", "/nonexistent-dir/x.tcq"}, // unwritable
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
