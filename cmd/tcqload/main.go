// Command tcqload drives concurrent load at a tcqd server and reports
// latency histograms through the engine's metrics registry. By
// default it spins up an in-process loopback tcqd over generated data
// (so the whole harness is self-contained); -addr points it at an
// external server instead.
//
//	$ tcqload -clients 10000 -quota 200ms -drain 500ms
//	tcqload: serving loopback tcqd on 127.0.0.1:41833 (r: 100000 tuples)
//	tcqload: 10000 clients x 1 requests, 8 tenants, quota 200ms, streaming
//	tcqload: draining server 500ms after start
//	tcqload: completed 9631, rejected 369 (at-capacity 121, closed 248), dropped 0, errors 0, misses 0
//	tcqload: latency p50 1.8ms p95 6.2ms p99 11ms max 40ms
//	tcqload: span breakdown (9631 requests with spans)
//	tcqload:   span        count     p50     p95
//	tcqload:   admission_wait 9631    10µs    80µs
//	...
//
// Every client goroutine runs its requests through internal/client;
// wall-clock latencies are committed to a trace.Registry histogram
// (the in-process server's own registry, so they render on /metrics),
// and each response's terminal spans event feeds per-span histograms
// (load_span_seconds{span=...}) plus the end-of-run breakdown table.
// A request whose stream started but ended without a result event
// counts as "dropped" — the drain-correctness failure mode — and a
// non-zero dropped or error count makes the process exit 1; -max-miss
// additionally gates on errors + deadline misses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcq"
	"tcq/internal/client"
	"tcq/internal/server"
	"tcq/internal/telemetry"
	"tcq/internal/trace"
	"tcq/internal/wire"
	"tcq/internal/workload"
)

const latencyMetric = "load_latency_seconds"

// spanMetric is the per-span latency family: one labeled histogram
// series per span name ("load_span_seconds|span=eval", ...).
const spanMetric = "load_span_seconds"

func main() {
	addr := flag.String("addr", "", "target tcqd address; empty starts an in-process loopback server")
	clients := flag.Int("clients", 100, "concurrent client goroutines")
	requests := flag.Int("requests", 1, "requests per client")
	tenants := flag.Int("tenants", 8, "number of distinct tenants to spread clients across")
	quota := flag.Duration("quota", 200*time.Millisecond, "per-query time quota")
	ra := flag.String("ra", "select(r, a < 10000)", "RA query each client runs")
	stream := flag.Bool("stream", true, "request progressive per-stage streams")
	conns := flag.Int("conns", 4096, "client-side connection cap (http.Transport MaxConnsPerHost)")
	drain := flag.Duration("drain", 0, "drain the in-process server this long after load starts (0 = no drain; loopback mode only)")
	window := flag.Duration("window", 60*time.Second, "loopback server per-tenant admission window")
	genN := flag.Int("gen-n", 100000, "loopback relation size (tuples)")
	genK := flag.Int("gen-k", 10000, "loopback relation qualifying tuples")
	seed := flag.Int64("seed", 1, "base seed (server clock, data generation, per-request sampling)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall run deadline")
	maxMiss := flag.Int("max-miss", -1, "fail (exit 1) when errors + deadline misses exceed this count (negative = no gate)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Latency histograms land in the server's own registry when
	// loopback (so /metrics shows them); a local one otherwise.
	reg := trace.NewRegistry()
	var srv *server.Server
	var rs *tcq.TelemetryServer
	target := *addr
	if target == "" {
		db := tcq.Open(tcq.WithSimulatedClock(*seed), tcq.WithLoadNoise(0.12), tcq.WithTelemetry(64))
		rng := rand.New(rand.NewSource(*seed))
		if _, err := workload.SelectRelation(db.Store(), "r", *genN, *genK, rng); err != nil {
			fatal(err)
		}
		srv = server.New(server.Config{DB: db, TenantWindow: *window})
		var err error
		rs, target, err = srv.Start(context.Background(), "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		defer rs.Close()
		reg = srv.Registry()
		fmt.Printf("tcqload: serving loopback tcqd on %s (r: %d tuples)\n", target, *genN)
	} else if *drain > 0 {
		fatal(errors.New("-drain needs the in-process loopback server (omit -addr)"))
	}

	mode := "streaming"
	if !*stream {
		mode = "non-streaming"
	}
	fmt.Printf("tcqload: %d clients x %d requests, %d tenants, quota %v, %s\n",
		*clients, *requests, *tenants, *quota, mode)

	// One shared transport: loopback costs 2 fds per connection in one
	// process, so 10k concurrent clients must multiplex over a capped
	// connection pool to stay inside the fd limit.
	httpClient := &http.Client{Transport: &http.Transport{
		MaxConnsPerHost:     *conns,
		MaxIdleConns:        *conns,
		MaxIdleConnsPerHost: *conns,
	}}

	var (
		mu           sync.Mutex
		latencies    []time.Duration
		spanDur      = map[string][]time.Duration{}
		completed    int
		misses       int
		dropped      int
		failures     int
		refused      int
		rejects      = map[string]int{}
		drainStarted atomic.Bool
	)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := client.New(target, fmt.Sprintf("t%d", i%*tenants))
			cl.HTTP = httpClient
			<-start
			for r := 0; r < *requests; r++ {
				req := wire.QueryRequest{
					RA:     *ra,
					Quota:  *quota,
					Seed:   *seed + int64(i**requests+r),
					Stream: *stream,
				}
				progressed := false
				t0 := time.Now()
				ev, err := cl.Query(ctx, req, func(wire.Event) { progressed = true })
				lat := time.Since(t0)
				mu.Lock()
				switch {
				case err == nil:
					completed++
					latencies = append(latencies, lat)
					// A miss is the server's own SLO rule: engine overspend
					// or wire-to-wire wall past the quota.
					if ev.Overspent || ev.Wall > *quota {
						misses++
					}
					// Fold the terminal spans event into per-span samples
					// (eval stages sum into one eval sample per request).
					perSpan := map[string]time.Duration{}
					for _, sp := range ev.Spans {
						perSpan[sp.Name] += sp.Dur
					}
					for name, d := range perSpan {
						spanDur[name] = append(spanDur[name], d)
					}
				case progressed:
					// The server accepted the stream but it ended without
					// a result: an in-flight stream was dropped.
					dropped++
				default:
					var se *client.ServerError
					switch {
					case errors.As(err, &se):
						rejects[se.Reason]++
					case drainStarted.Load():
						// Connection-level failure after the drain began:
						// the listener is gone, equivalent to a "closed"
						// rejection, not a dropped stream.
						refused++
					default:
						failures++
					}
				}
				mu.Unlock()
				if err == nil {
					reg.Observe(latencyMetric, lat.Seconds())
					for _, sp := range ev.Spans {
						reg.Observe(telemetry.Labeled(spanMetric, "span", sp.Name), sp.Dur.Seconds())
					}
				}
			}
		}(i)
	}
	close(start)

	if *drain > 0 {
		// Exercise graceful shutdown under load: stop admission, wait
		// for in-flight reservations, then drain HTTP connections.
		// Every already-started stream must still deliver its result.
		fmt.Printf("tcqload: draining server %v after start\n", *drain)
		time.Sleep(*drain)
		drainStarted.Store(true)
		srv.Drain()
		sh, shCancel := context.WithTimeout(context.Background(), time.Minute)
		if err := rs.Shutdown(sh); err != nil {
			shCancel()
			fatal(fmt.Errorf("drain shutdown: %w", err))
		}
		shCancel()
	}
	wg.Wait()

	rejected := 0
	for _, n := range rejects {
		rejected += n
	}
	reasons := make([]string, 0, len(rejects))
	for r := range rejects {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	detail := ""
	for i, r := range reasons {
		if i > 0 {
			detail += ", "
		}
		detail += fmt.Sprintf("%s %d", r, rejects[r])
	}
	if detail != "" {
		detail = " (" + detail + ")"
	}
	fmt.Printf("tcqload: completed %d, rejected %d%s, refused-after-drain %d, dropped %d, errors %d, misses %d\n",
		completed, rejected, detail, refused, dropped, failures, misses)

	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pick := func(q float64) time.Duration {
			i := int(q * float64(len(latencies)-1))
			return latencies[i]
		}
		fmt.Printf("tcqload: latency p50 %v p95 %v p99 %v max %v\n",
			pick(0.50).Round(100*time.Microsecond), pick(0.95).Round(100*time.Microsecond),
			pick(0.99).Round(100*time.Microsecond), latencies[len(latencies)-1].Round(100*time.Microsecond))
	}
	if h, ok := reg.Snapshot().Histograms[latencyMetric]; ok {
		fmt.Printf("tcqload: histogram %s: count=%d mean=%.4fs min=%.4fs max=%.4fs\n",
			latencyMetric, h.Count, h.Mean, h.Min, h.Max)
		keys := make([]string, 0, len(h.Buckets))
		for k := range h.Buckets {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return bucketBound(keys[i]) < bucketBound(keys[j]) })
		for _, k := range keys {
			fmt.Printf("tcqload:   %-12s %d\n", k, h.Buckets[k])
		}
	}
	// Span breakdown: where each request's wall time went, aggregated
	// across completed requests. Rows sort by span name so the table is
	// deterministic for any fixed workload shape.
	if len(spanDur) > 0 {
		names := make([]string, 0, len(spanDur))
		for name := range spanDur {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("tcqload: span breakdown (%d requests with spans)\n", completed)
		fmt.Printf("tcqload:   %-16s %8s %12s %12s\n", "span", "count", "p50", "p95")
		for _, name := range names {
			ds := spanDur[name]
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			pick := func(q float64) time.Duration { return ds[int(q*float64(len(ds)-1))] }
			fmt.Printf("tcqload:   %-16s %8d %12v %12v\n",
				name, len(ds), pick(0.50).Round(10*time.Microsecond), pick(0.95).Round(10*time.Microsecond))
		}
	}
	if dropped > 0 || failures > 0 {
		fmt.Fprintf(os.Stderr, "tcqload: FAIL: %d dropped in-flight streams, %d transport errors\n", dropped, failures)
		os.Exit(1)
	}
	if *maxMiss >= 0 && failures+misses > *maxMiss {
		fmt.Fprintf(os.Stderr, "tcqload: FAIL: %d errors + %d deadline misses exceed -max-miss %d\n", failures, misses, *maxMiss)
		os.Exit(1)
	}
}

// bucketBound orders "le_<bound>" histogram bucket keys numerically.
func bucketBound(k string) float64 {
	var v float64
	if _, err := fmt.Sscanf(k, "le_%g", &v); err != nil {
		return 1e300 // +Inf-style buckets sort last
	}
	return v
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tcqload: %v\n", err)
	os.Exit(1)
}
