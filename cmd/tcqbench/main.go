// Command tcqbench regenerates the paper's evaluation tables
// (Figures 5.1–5.3 of "Processing Aggregate Relational Queries with
// Hard Time Constraints", SIGMOD 1989) and this repo's ablations on the
// simulated machine.
//
// Usage:
//
//	tcqbench                         # run every experiment, 200 trials each
//	tcqbench -exp fig5.3 -trials 50  # one table, fewer trials
//	tcqbench -list                   # list experiment ids
//	tcqbench -compare                # include the paper's reported numbers
//	tcqbench -quality                # estimator-quality sweep instead
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tcq/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tcqbench:", err)
		os.Exit(1)
	}
}

// run parses args and executes the requested experiments, writing
// tables to out.
func run(args []string, out io.Writer) error {
	flag := flag.NewFlagSet("tcqbench", flag.ContinueOnError)
	flag.SetOutput(out)
	var (
		expID   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		trials  = flag.Int("trials", 200, "independent trials per table row (the paper uses 200)")
		seed    = flag.Int64("seed", 1, "base random seed")
		jitter  = flag.Float64("jitter", 0.03, "per-charge clock jitter (stddev)")
		load    = flag.Float64("load", 0.12, "per-stage system-load lognormal sigma")
		compare = flag.Bool("compare", false, "print the paper's reported numbers after each table")
		quality = flag.Bool("quality", false, "run the estimator-quality sweep instead of the tables")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		md      = flag.Bool("md", false, "render tables as markdown (for EXPERIMENTS.md)")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.AllExperiments() {
			fmt.Fprintf(out, "%-22s %s\n", e.ID, e.Title)
		}
		return nil
	}

	opts := bench.RunOptions{Trials: *trials, BaseSeed: *seed, Jitter: *jitter, LoadSigma: *load}

	if *quality {
		rows, err := bench.EstimatorQuality(opts, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.RenderQuality(rows))
		return nil
	}

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.AllExperiments()
	} else {
		e, ok := bench.ByID(*expID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *expID)
		}
		exps = []bench.Experiment{e}
	}

	for i, e := range exps {
		start := time.Now()
		rows, err := e.Run(opts)
		if err != nil {
			return err
		}
		if *md {
			fmt.Fprint(out, bench.RenderMarkdown(e.Title, rows))
		} else {
			fmt.Fprint(out, bench.Render(e.Title, rows))
		}
		if *compare {
			fmt.Fprintf(out, "paper: %s\n", e.PaperNote)
		}
		fmt.Fprintf(out, "(%d trials/row, %.1fs wall)\n", *trials, time.Since(start).Seconds())
		if i < len(exps)-1 {
			fmt.Fprintln(out)
		}
	}
	return nil
}
