// Command tcqbench regenerates the paper's evaluation tables
// (Figures 5.1–5.3 of "Processing Aggregate Relational Queries with
// Hard Time Constraints", SIGMOD 1989) and this repo's ablations on the
// simulated machine.
//
// Usage:
//
//	tcqbench                         # run every experiment, 200 trials each
//	tcqbench -exp fig5.3 -trials 50  # one table, fewer trials
//	tcqbench -list                   # list experiment ids
//	tcqbench -compare                # include the paper's reported numbers
//	tcqbench -quality                # estimator-quality sweep instead
//	tcqbench -catalog -              # sample-catalog cold/warm reuse report
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"tcq/internal/bench"
	"tcq/internal/calib"
	"tcq/internal/telemetry"
	"tcq/internal/trace"
)

func main() {
	// Ctrl-C (or SIGTERM) cancels the context, which gracefully drains
	// the -serve telemetry listener instead of leaking it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tcqbench:", err)
		os.Exit(1)
	}
}

// run parses args and executes the requested experiments, writing
// tables to out.
func run(ctx context.Context, args []string, out io.Writer) error {
	flag := flag.NewFlagSet("tcqbench", flag.ContinueOnError)
	flag.SetOutput(out)
	var (
		expID      = flag.String("exp", "all", "experiment id(s), comma-separated (see -list), or 'all'")
		trials     = flag.Int("trials", 200, "independent trials per table row (the paper uses 200)")
		seed       = flag.Int64("seed", 1, "base random seed")
		jitter     = flag.Float64("jitter", 0.03, "per-charge clock jitter (stddev)")
		load       = flag.Float64("load", 0.12, "per-stage system-load lognormal sigma")
		compare    = flag.Bool("compare", false, "print the paper's reported numbers after each table")
		quality    = flag.Bool("quality", false, "run the estimator-quality sweep instead of the tables")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		md         = flag.Bool("md", false, "render tables as markdown (for EXPERIMENTS.md)")
		perf       = flag.Bool("perf", false, "profile host-side cost per experiment row instead of printing tables")
		perfOut    = flag.String("perfout", "BENCH_exec.json", "with -perf: write the JSON report here ('' to skip)")
		perfBase   = flag.String("perfbase", "", "with -perf: compare against this baseline report and fail on regressions")
		perfTol    = flag.Float64("perftol", 10, "with -perf -perfbase: ns-per-trial regression tolerance (percent)")
		catalogOut = flag.String("catalog", "", "run the sample-catalog cold/warm reuse protocol instead of the tables and write the hit/miss report to this file ('-' for stdout)")
		traceOut   = flag.String("trace", "", "write a JSON-lines stage trace of every trial to this file ('-' for stdout)")
		calibOut   = flag.String("calib", "", "audit every trial's CI against the full-scan truth and write a calibration report to this file ('-' for stdout)")
		parallel   = flag.Int("parallel", 1, "per-query term-evaluation workers (byte-identical output for any value)")
		serve      = flag.String("serve", "", "serve live telemetry (/metrics, /queries, /history, pprof) on this address, e.g. :9100")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.AllExperiments() {
			fmt.Fprintf(out, "%-22s %s\n", e.ID, e.Title)
		}
		for _, e := range bench.PerfOnlyExperiments() {
			fmt.Fprintf(out, "%-22s %s (perf-only, excluded from 'all')\n", e.ID, e.Title)
		}
		return nil
	}

	opts := bench.RunOptions{Trials: *trials, BaseSeed: *seed, Jitter: *jitter, LoadSigma: *load, EngineParallel: *parallel}

	if *quality {
		rows, err := bench.EstimatorQuality(opts, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.RenderQuality(rows))
		return nil
	}

	var exps []bench.Experiment
	if *expID == "all" {
		exps = bench.AllExperiments()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			exps = append(exps, e)
		}
	}

	if *perf {
		return runPerf(exps, opts, out, *perfOut, *perfBase, *perfTol)
	}

	if *catalogOut != "" {
		return runCatalog(exps, opts, out, *catalogOut)
	}

	// With -trace or -calib, every trial records into its own collector;
	// after the (concurrent) runs the collectors are replayed in
	// deterministic order — experiment, then variant, then trial — so
	// the output is byte-identical for a given seed. -calib additionally
	// records each trial's full-scan ground truth so the replay can
	// audit every CI against it.
	var collectors map[string]*trace.Collector
	var truths map[string]int64
	var mu sync.Mutex
	if *traceOut != "" || *calibOut != "" {
		collectors = make(map[string]*trace.Collector)
		opts.TraceSink = func(exp, label string, trial int) trace.Tracer {
			c := trace.NewCollector()
			mu.Lock()
			collectors[traceKey(exp, label, trial)] = c
			mu.Unlock()
			return c
		}
	}
	if *calibOut != "" {
		truths = make(map[string]int64)
		opts.TruthSink = func(exp, label string, trial int, truth int64) {
			mu.Lock()
			truths[traceKey(exp, label, trial)] = truth
			mu.Unlock()
		}
	}

	// With -serve, a telemetry server exports live harness state while
	// the experiments run: aggregate engine counters on /metrics and a
	// per-trial progress record (labelled exp/variant#trial) on /queries.
	// Trial tracers are composed so -trace and -serve stack.
	if *serve != "" {
		metrics := trace.NewRegistry()
		opts.Metrics = metrics
		progress := telemetry.NewRegistry(256)
		inner := opts.TraceSink
		opts.TraceSink = func(exp, label string, trial int) trace.Tracer {
			h := progress.Track(fmt.Sprintf("%s/%s#%d", exp, label, trial))
			if inner == nil {
				return h
			}
			return trialTracer{Tracer: trace.Combine(inner(exp, label, trial), h), h: h}
		}
		srv, addr, err := telemetry.Serve(ctx, telemetry.Sources{Progress: progress, Reg: metrics}, *serve)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "telemetry: http://%s/ (metrics, queries, history, pprof)\n", addr)
	}

	for i, e := range exps {
		start := time.Now()
		rows, err := e.Run(opts)
		if err != nil {
			return err
		}
		if *md {
			fmt.Fprint(out, bench.RenderMarkdown(e.Title, rows))
		} else {
			fmt.Fprint(out, bench.Render(e.Title, rows))
		}
		if *compare {
			fmt.Fprintf(out, "paper: %s\n", e.PaperNote)
		}
		fmt.Fprintf(out, "(%d trials/row, %.1fs wall)\n", *trials, time.Since(start).Seconds())
		if i < len(exps)-1 {
			fmt.Fprintln(out)
		}
	}
	if *traceOut != "" {
		if err := writeTraces(*traceOut, exps, *trials, collectors, out); err != nil {
			return err
		}
	}
	if *calibOut != "" {
		if err := writeCalibration(*calibOut, exps, *trials, collectors, truths, out); err != nil {
			return err
		}
	}
	return nil
}

// writeCalibration replays the per-trial collectors into a calibration
// auditor in experiment → variant → trial order (labelled
// exp/variant#trial, with each trial's full-scan count as ground truth)
// and writes the rendered report. The replay order is fixed, so the
// report — flight-recorder contents included — is byte-identical for a
// given seed no matter how the trials were scheduled.
func writeCalibration(path string, exps []bench.Experiment, trials int, collectors map[string]*trace.Collector, truths map[string]int64, out io.Writer) error {
	a := calib.NewAuditor(calib.Config{FlightSize: 64})
	audited := 0
	for _, e := range exps {
		for _, v := range e.Variants {
			for trial := 0; trial < trials; trial++ {
				key := traceKey(e.ID, v.Label, trial)
				c := collectors[key]
				if c == nil {
					continue
				}
				var gt *calib.Truth
				if t, ok := truths[key]; ok {
					gt = &calib.Truth{Value: float64(t), Level: 0.95}
				}
				p := a.Track(fmt.Sprintf("%s/%s#%d", e.ID, v.Label, trial), gt)
				c.Trace().Replay(p)
				audited++
			}
		}
	}
	rendered := calib.RenderReport(a.Report())
	if path == "-" {
		fmt.Fprint(out, rendered)
		return nil
	}
	if err := os.WriteFile(path, []byte(rendered), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote calibration report (%d trials audited) to %s\n", audited, path)
	return nil
}

// trialTracer pairs a trial's combined tracer chain with its telemetry
// handle so the bench harness can Discard the handle when a trial
// errors before EndQuery — otherwise the failed trial would sit in the
// in-flight set and show as permanently running on /queries.
type trialTracer struct {
	trace.Tracer
	h *telemetry.Handle
}

func (t trialTracer) Discard() { t.h.Discard() }

func traceKey(exp, label string, trial int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", exp, label, trial)
}

// writeTraces replays the per-trial collectors into one JSON-lines file
// in experiment → variant → trial order.
func writeTraces(path string, exps []bench.Experiment, trials int, collectors map[string]*trace.Collector, out io.Writer) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	jl := trace.NewJSONLines(w)
	records := 0
	for _, e := range exps {
		jl.Exp = e.ID
		for _, v := range e.Variants {
			jl.Label = v.Label
			for trial := 0; trial < trials; trial++ {
				c := collectors[traceKey(e.ID, v.Label, trial)]
				if c == nil {
					continue
				}
				jl.Trial = trial
				c.Trace().Replay(jl)
				records++
			}
		}
	}
	if err := jl.Err(); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(out, "wrote %d query traces to %s\n", records, path)
	}
	return nil
}

// runCatalog executes each experiment's cold-run/warm-rerun catalog
// protocol and writes the hit/miss reuse report. Every trial builds its
// own catalog and the rows are reduced in trial order, so the report is
// byte-identical for a given seed at any -parallel worker count.
func runCatalog(exps []bench.Experiment, opts bench.RunOptions, out io.Writer, path string) error {
	var b strings.Builder
	for i, e := range exps {
		rows, err := e.RunCatalog(opts)
		if err != nil {
			return err
		}
		b.WriteString(bench.RenderCatalog(e.Title, rows))
		if i < len(exps)-1 {
			b.WriteString("\n")
		}
	}
	if path == "-" {
		fmt.Fprint(out, b.String())
		return nil
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote catalog reuse report to %s\n", path)
	return nil
}

// runPerf profiles the host-side cost of the selected experiments,
// optionally writing BENCH_exec.json and diffing it against a committed
// baseline. Regressions beyond the tolerance are an error so the perf
// gate can run in CI (same machine as the baseline only — the absolute
// numbers do not transfer between hosts).
func runPerf(exps []bench.Experiment, opts bench.RunOptions, out io.Writer, outPath, basePath string, tolPct float64) error {
	rep, err := bench.PerfProfile(exps, opts)
	if err != nil {
		return err
	}
	// The sample-catalog warm path gets its own rows: cold (miss) vs
	// warm (hit) evaluation wall time to the same target precision —
	// the committed number for the stage-skip speedup.
	catRows, err := bench.PerfCatalogRows(exps, opts)
	if err != nil {
		return err
	}
	rep.Rows = append(rep.Rows, catRows...)
	fmt.Fprint(out, bench.RenderPerf(rep))
	if outPath != "" {
		if err := bench.WritePerf(outPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", outPath)
	}
	if basePath == "" {
		return nil
	}
	base, err := bench.ReadPerf(basePath)
	if err != nil {
		return err
	}
	regs := bench.ComparePerf(base, rep, tolPct)
	if len(regs) == 0 {
		fmt.Fprintf(out, "no ns-per-trial regressions beyond %.0f%% vs %s\n", tolPct, basePath)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(out, "REGRESSION:", r)
	}
	return fmt.Errorf("%d perf regression(s) vs %s", len(regs), basePath)
}
