package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig5.1-1000", "fig5.2", "fig5.3", "ablation-selectivity"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list missing %s:\n%s", id, buf.String())
		}
	}
}

func TestBenchSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig5.1-1000", "-trials", "5", "-compare"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 5.1", "dβ=0", "dβ=72", "paper:", "trials/row"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quality", "-trials", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Estimator quality") {
		t.Errorf("quality output:\n%s", buf.String())
	}
}

func TestBenchErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nonsense", "-trials", "1"}, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestBenchMarkdownFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig5.3", "-trials", "3", "-md"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| variant |") {
		t.Errorf("markdown output:\n%s", buf.String())
	}
}
