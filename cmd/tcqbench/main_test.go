package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestBenchList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig5.1-1000", "fig5.2", "fig5.3", "ablation-selectivity"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list missing %s:\n%s", id, buf.String())
		}
	}
}

func TestBenchSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig5.1-1000", "-trials", "5", "-compare"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 5.1", "dβ=0", "dβ=72", "paper:", "trials/row"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quality", "-trials", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Estimator quality") {
		t.Errorf("quality output:\n%s", buf.String())
	}
}

func TestBenchErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "nonsense", "-trials", "1"}, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run([]string{"-notaflag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestBenchMarkdownFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "fig5.3", "-trials", "3", "-md"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| variant |") {
		t.Errorf("markdown output:\n%s", buf.String())
	}
}

// gateWriter captures run's output and pauses the run at the first
// write after the telemetry address line (i.e. after the first
// experiment finished, while the server is still up), so the test can
// scrape live endpoints deterministically.
type gateWriter struct {
	buf     bytes.Buffer
	addr    chan string // bound address, sent once
	reached chan struct{}
	resume  chan struct{}
	gated   bool
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.buf.Write(p)
	if !g.gated {
		s := g.buf.String()
		if i := strings.Index(s, "telemetry: http://"); i >= 0 {
			rest := s[i+len("telemetry: http://"):]
			if j := strings.Index(rest, "/"); j >= 0 {
				g.gated = true
				g.addr <- rest[:j]
			}
		}
	} else if g.resume != nil {
		close(g.reached)
		<-g.resume
		g.resume = nil
	}
	return len(p), nil
}

func TestBenchServeTelemetry(t *testing.T) {
	g := &gateWriter{
		addr:    make(chan string, 1),
		reached: make(chan struct{}),
		resume:  make(chan struct{}),
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-exp", "fig5.3", "-trials", "3", "-serve", "127.0.0.1:0"}, g)
	}()
	addr := <-g.addr
	<-g.reached // first experiment done; server still serving

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// fig5.3 has 5 variants x 3 trials = 15 engine queries.
	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE tcq_queries_total counter",
		"tcq_queries_total 15",
		"tcq_telemetry_queries_in_flight 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	hist := get("/history")
	if !strings.Contains(hist, `"fig5.3/dβ=0#0"`) {
		t.Errorf("/history missing trial label:\n%s", hist)
	}
	if !strings.Contains(get("/queries"), `"queries"`) {
		t.Error("/queries not serving JSON")
	}

	close(g.resume)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.buf.String(), "Fig 5.3") {
		t.Errorf("run output missing table:\n%s", g.buf.String())
	}
}
