package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

func TestBenchList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig5.1-1000", "fig5.2", "fig5.3", "ablation-selectivity"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("list missing %s:\n%s", id, buf.String())
		}
	}
}

func TestBenchSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "fig5.1-1000", "-trials", "5", "-compare"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 5.1", "dβ=0", "dβ=72", "paper:", "trials/row"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-quality", "-trials", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Estimator quality") {
		t.Errorf("quality output:\n%s", buf.String())
	}
}

func TestBenchErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "nonsense", "-trials", "1"}, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
	if err := run(context.Background(), []string{"-notaflag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestBenchMarkdownFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "fig5.3", "-trials", "3", "-md"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| variant |") {
		t.Errorf("markdown output:\n%s", buf.String())
	}
}

// gateWriter captures run's output and pauses the run at the first
// write after the telemetry address line (i.e. after the first
// experiment finished, while the server is still up), so the test can
// scrape live endpoints deterministically.
type gateWriter struct {
	buf     bytes.Buffer
	addr    chan string // bound address, sent once
	reached chan struct{}
	resume  chan struct{}
	gated   bool
}

func (g *gateWriter) Write(p []byte) (int, error) {
	g.buf.Write(p)
	if !g.gated {
		s := g.buf.String()
		if i := strings.Index(s, "telemetry: http://"); i >= 0 {
			rest := s[i+len("telemetry: http://"):]
			if j := strings.Index(rest, "/"); j >= 0 {
				g.gated = true
				g.addr <- rest[:j]
			}
		}
	} else if g.resume != nil {
		close(g.reached)
		<-g.resume
		g.resume = nil
	}
	return len(p), nil
}

func TestBenchServeTelemetry(t *testing.T) {
	g := &gateWriter{
		addr:    make(chan string, 1),
		reached: make(chan struct{}),
		resume:  make(chan struct{}),
	}
	done := make(chan error, 1)
	go func() {
		done <- run(context.Background(), []string{"-exp", "fig5.3", "-trials", "3", "-serve", "127.0.0.1:0"}, g)
	}()
	addr := <-g.addr
	<-g.reached // first experiment done; server still serving

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// fig5.3 has 5 variants x 3 trials = 15 engine queries.
	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE tcq_queries_total counter",
		"tcq_queries_total 15",
		"tcq_telemetry_queries_in_flight 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	hist := get("/history")
	if !strings.Contains(hist, `"fig5.3/dβ=0#0"`) {
		t.Errorf("/history missing trial label:\n%s", hist)
	}
	if !strings.Contains(get("/queries"), `"queries"`) {
		t.Error("/queries not serving JSON")
	}

	close(g.resume)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.buf.String(), "Fig 5.3") {
		t.Errorf("run output missing table:\n%s", g.buf.String())
	}
}

// -calib audits every trial's CI against the full-scan truth recorded
// at setup and renders a deterministic calibration report: two runs of
// the same seed are byte-identical, the tables are unchanged by
// auditing, and -parallel does not perturb the report.
func TestBenchCalibration(t *testing.T) {
	calibRun := func(extra ...string) (tables, report string) {
		var buf bytes.Buffer
		args := append([]string{"-exp", "fig5.2", "-trials", "3", "-calib", "-"}, extra...)
		if err := run(context.Background(), args, &buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		i := strings.Index(out, "calibration:")
		if i < 0 {
			t.Fatalf("no calibration report in output:\n%s", out)
		}
		return out[:i], out[i:]
	}
	tables, report := calibRun()
	for _, want := range []string{
		"queries audited", "with ground truth",
		"overall coverage:", "wilson95 [",
		"shape: intersect(r1, r2)",
		"drift:", "ratio buckets:",
		"flight recorder:",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if !strings.Contains(tables, "Fig 5.2") {
		t.Errorf("tables missing from output:\n%s", tables)
	}

	// Plain run (no -calib) must produce the identical tables.
	var plain bytes.Buffer
	if err := run(context.Background(), []string{"-exp", "fig5.2", "-trials", "3"}, &plain); err != nil {
		t.Fatal(err)
	}
	stripWall := func(s string) string {
		return regexp.MustCompile(`(?m)^\(3 trials/row.*\n`).ReplaceAllString(s, "")
	}
	if stripWall(tables) != stripWall(plain.String()) {
		t.Errorf("-calib changed the tables:\n--- with calib\n%s\n--- plain\n%s", tables, plain.String())
	}

	// Determinism: rerun, and rerun parallel — identical reports.
	if _, again := calibRun(); again != report {
		t.Errorf("calibration report not deterministic:\n--- first\n%s\n--- second\n%s", report, again)
	}
	if _, par := calibRun("-parallel", "4"); par != report {
		t.Errorf("-parallel 4 perturbed the calibration report:\n--- serial\n%s\n--- parallel\n%s", report, par)
	}
}
