// Command tcqd serves time-constrained aggregate queries over
// HTTP/JSON. Clients POST /v1/query with a quota/deadline/target-CI
// and receive either the final estimate or a progressive NDJSON/SSE
// stream of per-stage estimate±CI events; every request passes a
// per-tenant admission gate that rejects (with Retry-After) once the
// tenant's committed worst-case work would overflow its window.
//
//	$ tcqd -addr 127.0.0.1:7483 -gen "select orders 100000 10000"
//	tcqd: generated orders (100000 tuples)
//	tcqd: listening on 127.0.0.1:7483
//
//	$ curl -s 127.0.0.1:7483/v1/query -d '{"ra":"select(orders, a < 10000)","quota_ns":2000000000}'
//	{"event":"result","request_id":"req-1","kind":"count","value":9932.6,...}
//	{"event":"spans","request_id":"req-1","wall_ns":412000,"spans":[{"name":"decode",...}]}
//
// Every response carries a request id (X-Tcq-Request-Id and the
// request_id field) and ends with a terminal "spans" event decomposing
// the request's wire-to-wire wall time (decode, admission_wait, plan,
// per-stage eval, finalize, stream_write, flush); /slo reports
// per-tenant deadline hit/miss counts and error-budget burn.
//
// The server runs on a simulated machine (deterministic virtual
// clock): equal requests with equal seeds return byte-identical
// responses (the nondeterministic span durations ride a separate
// terminal event), which scripts/check.sh exploits for its smoke
// golden.
// SIGINT/SIGTERM drains gracefully: admission closes (new queries get
// 503), in-flight streams run to completion, then the listener stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tcq"
	"tcq/internal/server"
	"tcq/internal/workload"
)

// genSpecs collects repeated -gen flags.
type genSpecs []string

func (g *genSpecs) String() string     { return strings.Join(*g, "; ") }
func (g *genSpecs) Set(v string) error { *g = append(*g, v); return nil }

func main() {
	addr := flag.String("addr", "127.0.0.1:7483", "listen address (host:port; port 0 picks a free port)")
	seed := flag.Int64("seed", 1, "simulated-machine seed (drives the virtual clock and data generation)")
	noise := flag.Float64("noise", 0.12, "simulated load-noise amplitude on block access times")
	window := flag.Duration("window", 60*time.Second, "per-tenant admission window (worst-case in-flight work per tenant)")
	slack := flag.Float64("slack", 0.05, "overrun allowance folded into each request's worst-case charge")
	maxQuota := flag.Duration("maxquota", 30*time.Second, "maximum per-query quota; larger requests are rejected as infeasible")
	defQuota := flag.Duration("default-quota", 2*time.Second, "quota applied to requests that set none")
	admitWait := flag.Duration("admit-wait", 0, "how long an at-capacity request may block in the admission gate before the 429 (0 = reject immediately)")
	sloTarget := flag.Float64("slo", 0.99, "per-tenant deadline-hit objective driving the /slo error-budget burn gauge")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace period for draining in-flight streams")
	var gens genSpecs
	flag.Var(&gens, "gen", `generate a relation at startup: "select|project NAME N K", "uniform NAME N MAX", "zipf NAME N VALUES S", "intersect|join NAME1 NAME2 N K" (repeatable)`)
	flag.Parse()

	db := tcq.Open(tcq.WithSimulatedClock(*seed), tcq.WithLoadNoise(*noise),
		tcq.WithTelemetry(64), tcq.WithCalibration(64), tcq.WithCatalog())
	rng := rand.New(rand.NewSource(*seed))
	for _, spec := range gens {
		desc, err := generate(db, spec, rng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcqd: -gen %q: %v\n", spec, err)
			os.Exit(1)
		}
		fmt.Printf("tcqd: generated %s\n", desc)
	}

	srv := server.New(server.Config{
		DB:           db,
		DefaultQuota: *defQuota,
		MaxQuota:     *maxQuota,
		TenantWindow: *window,
		Slack:        *slack,
		AdmitWait:    *admitWait,
		SLOTarget:    *sloTarget,
	})
	// Background context: shutdown is driven explicitly below so the
	// admission gates drain before the listener does.
	rs, bound, err := srv.Start(context.Background(), *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcqd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("tcqd: listening on %s\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Println("tcqd: draining")
		// Two-phase drain: close admission and wait for every in-flight
		// query to release its reservation, then drain the HTTP
		// connections themselves.
		srv.Drain()
		sh, cancel := context.WithTimeout(context.Background(), *grace)
		err := rs.Shutdown(sh)
		cancel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcqd: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("tcqd: bye")
	case <-rs.Done():
		if err := rs.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "tcqd: %v\n", err)
			os.Exit(1)
		}
	}
}

// generate builds one relation (or pair) from a -gen spec and returns
// a human-readable description of what was created.
func generate(db *tcq.DB, spec string, rng *rand.Rand) (string, error) {
	f := strings.Fields(spec)
	if len(f) < 4 {
		return "", fmt.Errorf("want \"KIND NAME ARGS...\"")
	}
	atoi := func(s string) (int, error) { return strconv.Atoi(s) }
	switch f[0] {
	case "select", "project":
		if len(f) != 4 {
			return "", fmt.Errorf("usage: %s NAME N K", f[0])
		}
		n, err := atoi(f[2])
		if err != nil {
			return "", err
		}
		k, err := atoi(f[3])
		if err != nil {
			return "", err
		}
		if f[0] == "select" {
			_, err = workload.SelectRelation(db.Store(), f[1], n, k, rng)
		} else {
			_, err = workload.ProjectRelation(db.Store(), f[1], n, k, rng)
		}
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s (%d tuples)", f[1], n), nil
	case "uniform":
		if len(f) != 4 {
			return "", fmt.Errorf("usage: uniform NAME N MAX")
		}
		n, err := atoi(f[2])
		if err != nil {
			return "", err
		}
		max, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return "", err
		}
		if _, err := workload.UniformRelation(db.Store(), f[1], n, max, rng); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s (%d tuples)", f[1], n), nil
	case "zipf":
		if len(f) != 5 {
			return "", fmt.Errorf("usage: zipf NAME N VALUES S")
		}
		n, err := atoi(f[2])
		if err != nil {
			return "", err
		}
		values, err := strconv.ParseUint(f[3], 10, 64)
		if err != nil {
			return "", err
		}
		s, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return "", err
		}
		if _, err := workload.ZipfRelation(db.Store(), f[1], n, values, s, rng); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s (%d tuples)", f[1], n), nil
	case "intersect", "join":
		if len(f) != 5 {
			return "", fmt.Errorf("usage: %s NAME1 NAME2 N K", f[0])
		}
		n, err := atoi(f[3])
		if err != nil {
			return "", err
		}
		k, err := atoi(f[4])
		if err != nil {
			return "", err
		}
		if f[0] == "intersect" {
			_, _, err = workload.IntersectPair(db.Store(), f[1], f[2], n, k, rng)
		} else {
			_, _, err = workload.JoinPair(db.Store(), f[1], f[2], n, k, rng)
		}
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s, %s (%d tuples each)", f[1], f[2], n), nil
	default:
		return "", fmt.Errorf("kinds: select, project, uniform, zipf, intersect, join")
	}
}
