package tcq

import (
	"tcq/internal/ra"
	"tcq/internal/raparse"
)

// Query is a relational algebra expression under construction. Queries
// are immutable values: each builder method returns a new Query.
// Construction errors are deferred to execution (Count/CountEstimate),
// so builder chains stay fluent.
type Query struct {
	expr ra.Expr
	err  error
}

// Rel starts a query from a stored relation.
func Rel(name string) Query { return Query{expr: &ra.Base{Name: name}} }

// Parse parses the textual RA syntax, e.g.
//
//	select(r, a < 10 and b = "x")
//	join(r, s, id = rid)
//	union(project(r, [a]), project(s, [a]))
func Parse(src string) (Query, error) {
	e, err := raparse.Parse(src)
	if err != nil {
		return Query{err: err}, err
	}
	return Query{expr: e}, nil
}

// String renders the query in the parseable RA syntax.
func (q Query) String() string {
	if q.err != nil {
		return "<invalid query: " + q.err.Error() + ">"
	}
	return q.expr.String()
}

// Err returns any construction error accumulated so far.
func (q Query) Err() error { return q.err }

// Where filters the query by a predicate.
func (q Query) Where(p Pred) Query {
	if q.err != nil {
		return q
	}
	if p.err != nil {
		return Query{err: p.err}
	}
	return Query{expr: &ra.Select{Input: q.expr, Pred: p.pred}}
}

// Project keeps only the named columns, with set (distinct) semantics.
func (q Query) Project(cols ...string) Query {
	if q.err != nil {
		return q
	}
	return Query{expr: &ra.Project{Input: q.expr, Cols: cols}}
}

// Join equijoins the query with another on one column pair.
func (q Query) Join(other Query, leftCol, rightCol string) Query {
	return q.JoinOn(other, JoinCond{leftCol, rightCol})
}

// JoinCond equates a left column with a right column.
type JoinCond struct {
	LeftCol  string
	RightCol string
}

// JoinOn equijoins on multiple column pairs.
func (q Query) JoinOn(other Query, conds ...JoinCond) Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return other
	}
	on := make([]ra.JoinCond, len(conds))
	for i, c := range conds {
		on[i] = ra.JoinCond{LeftCol: c.LeftCol, RightCol: c.RightCol}
	}
	return Query{expr: &ra.Join{Left: q.expr, Right: other.expr, On: on}}
}

// Union is the set union with another (union-compatible) query.
func (q Query) Union(other Query) Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return other
	}
	return Query{expr: &ra.Union{Left: q.expr, Right: other.expr}}
}

// Minus is the set difference (q − other).
func (q Query) Minus(other Query) Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return other
	}
	return Query{expr: &ra.Difference{Left: q.expr, Right: other.expr}}
}

// Intersect is the set intersection with another query.
func (q Query) Intersect(other Query) Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return other
	}
	return Query{expr: &ra.Intersect{Inputs: []ra.Expr{q.expr, other.expr}}}
}

// Pred is a selection predicate under construction.
type Pred struct {
	pred ra.Pred
	err  error
}

// TruePred is the always-true predicate.
func TruePred() Pred { return Pred{pred: ra.True{}} }

// And conjoins two predicates.
func (p Pred) And(o Pred) Pred {
	if p.err != nil {
		return p
	}
	if o.err != nil {
		return o
	}
	return Pred{pred: &ra.And{L: p.pred, R: o.pred}}
}

// Or disjoins two predicates.
func (p Pred) Or(o Pred) Pred {
	if p.err != nil {
		return p
	}
	if o.err != nil {
		return o
	}
	return Pred{pred: &ra.Or{L: p.pred, R: o.pred}}
}

// Not negates a predicate.
func Not(p Pred) Pred {
	if p.err != nil {
		return p
	}
	return Pred{pred: &ra.Not{P: p.pred}}
}

// Operand is a column reference or constant in a comparison.
type Operand struct {
	op  ra.Operand
	err error
}

// Col references a column by name.
func Col(name string) Operand { return Operand{op: ra.Col{Name: name}} }

// Val wraps a constant (int, int64, float64 or string).
func Val(v interface{}) Operand {
	switch x := v.(type) {
	case int:
		return Operand{op: ra.Const{Value: int64(x)}}
	case int64, float64, string:
		return Operand{op: ra.Const{Value: x}}
	default:
		return Operand{err: errBadConst(v)}
	}
}

type badConstError struct{ v interface{} }

func (e badConstError) Error() string { return "tcq: unsupported constant type" }

func errBadConst(v interface{}) error { return badConstError{v} }

func (o Operand) cmp(op ra.CmpOp, rhs interface{}) Pred {
	if o.err != nil {
		return Pred{err: o.err}
	}
	var right Operand
	if r, ok := rhs.(Operand); ok {
		right = r
	} else {
		right = Val(rhs)
	}
	if right.err != nil {
		return Pred{err: right.err}
	}
	return Pred{pred: &ra.Cmp{Left: o.op, Op: op, Right: right.op}}
}

// Lt builds "o < rhs" (rhs: constant or Col(...)).
func (o Operand) Lt(rhs interface{}) Pred { return o.cmp(ra.Lt, rhs) }

// Le builds "o <= rhs".
func (o Operand) Le(rhs interface{}) Pred { return o.cmp(ra.Le, rhs) }

// Eq builds "o = rhs".
func (o Operand) Eq(rhs interface{}) Pred { return o.cmp(ra.Eq, rhs) }

// Ne builds "o != rhs".
func (o Operand) Ne(rhs interface{}) Pred { return o.cmp(ra.Ne, rhs) }

// Ge builds "o >= rhs".
func (o Operand) Ge(rhs interface{}) Pred { return o.cmp(ra.Ge, rhs) }

// Gt builds "o > rhs".
func (o Operand) Gt(rhs interface{}) Pred { return o.cmp(ra.Gt, rhs) }
