// Trace-overhead guard: a full CountEstimate run with tracing off must
// cost the same as before the observability layer existed (the Nop
// tracer's Enabled() gate skips all record construction), and the
// collecting path should stay within a small constant factor. The
// executor-level guard (join/8 ns/op and allocs/op) lives in
// internal/exec's perf benchmarks and the tcqbench -perf gate against
// BENCH_exec.json.
//
//	go test -bench=TraceOverhead -benchtime=200x
package tcq_test

import (
	"testing"
	"time"

	"tcq"
	"tcq/internal/calib"
	"tcq/internal/telemetry"
	"tcq/internal/trace"
)

// traceBenchDB builds the selection workload DB once per benchmark.
func traceBenchDB(b *testing.B, extra ...tcq.Option) (*tcq.DB, tcq.Query) {
	b.Helper()
	db := tcq.Open(append([]tcq.Option{tcq.WithSimulatedClock(7)}, extra...)...)
	rel, err := db.CreateRelation("orders", []tcq.Column{
		{Name: "id", Type: tcq.Int},
		{Name: "amount", Type: tcq.Int},
	}, 200)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := rel.Insert(i, (i*7919+3)%10000); err != nil {
			b.Fatal(err)
		}
	}
	return db, tcq.Rel("orders").Where(tcq.Col("amount").Lt(1000))
}

func benchCountEstimate(b *testing.B, collect bool, extra ...tcq.Option) {
	db, q := traceBenchDB(b, extra...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota:        10 * time.Second,
			Seed:         int64(i + 1),
			CollectTrace: collect,
		})
		if err != nil {
			b.Fatal(err)
		}
		if collect && est.Trace == nil {
			b.Fatal("trace not collected")
		}
	}
}

// BenchmarkCountEstimateTraceOverhead/off is the production path: the
// no-op tracer must add nothing but a handful of int64 increments.
// The telemetry variant measures the live progress registry riding the
// tracer chain (a handful of struct copies per stage boundary).
func BenchmarkCountEstimateTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchCountEstimate(b, false) })
	b.Run("collect", func(b *testing.B) { benchCountEstimate(b, true) })
	b.Run("telemetry", func(b *testing.B) { benchCountEstimate(b, false, tcq.WithTelemetry(64)) })
	b.Run("calibration", func(b *testing.B) { benchCountEstimate(b, false, tcq.WithCalibration(64)) })
}

// TestNopTracerZeroAllocs pins the production tracing cost: with
// tracing off the engine talks to trace.Nop, and every callback on it —
// including the Enabled() gate the hot loop consults per stage — must
// complete without allocating. Together with internal/exec's
// steady-state key-pool test this keeps the untraced hot path
// allocation-flat per stage.
func TestNopTracerZeroAllocs(t *testing.T) {
	nop := trace.Combine() // canonical way to obtain the Nop tracer
	if nop != trace.Nop {
		t.Fatal("Combine() must return the shared Nop tracer")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if nop.Enabled() {
			t.Fatal("Nop tracer must report disabled")
		}
		nop.BeginQuery(trace.QueryInfo{})
		nop.StageDone(trace.StageRecord{})
		nop.EndQuery(trace.QueryEnd{})
	})
	if allocs != 0 {
		t.Errorf("nop tracer path allocates: %v allocs/op", allocs)
	}
}

// TestDisabledProgressHookZeroAllocs pins the disabled-telemetry cost:
// a nil registry hands out a nil handle, and every tracer callback on
// it must complete without allocating (the engine's hot loop pays one
// nil check and nothing else when no telemetry is attached).
func TestDisabledProgressHookZeroAllocs(t *testing.T) {
	var reg *telemetry.Registry
	h := reg.Track("ignored")
	if h.Enabled() {
		t.Fatal("nil handle must report disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h = reg.Track("ignored")
		h.BeginQuery(trace.QueryInfo{})
		h.StageDone(trace.StageRecord{})
		h.EndQuery(trace.QueryEnd{})
		h.Discard()
	})
	if allocs != 0 {
		t.Errorf("disabled progress hook allocates: %v allocs/op", allocs)
	}
	if got := reg.InFlight(); got != nil {
		t.Errorf("nil registry InFlight = %v, want nil", got)
	}
}

// TestDisabledCalibProbeZeroAllocs pins the disabled-calibration cost:
// a nil auditor hands out a nil probe, and every tracer callback on it
// must complete without allocating — a DB opened without
// WithCalibration pays one nil check per query and nothing else.
func TestDisabledCalibProbeZeroAllocs(t *testing.T) {
	var a *calib.Auditor
	p := a.Track("ignored", nil)
	if p.Enabled() {
		t.Fatal("nil probe must report disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p = a.Track("ignored", nil)
		p.BeginQuery(trace.QueryInfo{})
		p.StageDone(trace.StageRecord{})
		p.EndQuery(trace.QueryEnd{})
		p.Discard()
	})
	if allocs != 0 {
		t.Errorf("disabled calibration probe allocates: %v allocs/op", allocs)
	}
	if got := a.FlightRecords(); got != nil {
		t.Errorf("nil auditor FlightRecords = %v, want nil", got)
	}
	if rep := a.Report(); rep.Queries != 0 {
		t.Errorf("nil auditor Report = %+v, want zero", rep)
	}
}
