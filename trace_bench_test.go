// Trace-overhead guard: a full CountEstimate run with tracing off must
// cost the same as before the observability layer existed (the Nop
// tracer's Enabled() gate skips all record construction), and the
// collecting path should stay within a small constant factor. The
// executor-level guard (join/8 ns/op and allocs/op) lives in
// internal/exec's perf benchmarks and the tcqbench -perf gate against
// BENCH_exec.json.
//
//	go test -bench=TraceOverhead -benchtime=200x
package tcq_test

import (
	"testing"
	"time"

	"tcq"
	"tcq/internal/calib"
	"tcq/internal/telemetry"
	"tcq/internal/trace"
)

// traceBenchDB builds the selection workload DB once per benchmark.
func traceBenchDB(b *testing.B, extra ...tcq.Option) (*tcq.DB, tcq.Query) {
	b.Helper()
	db := tcq.Open(append([]tcq.Option{tcq.WithSimulatedClock(7)}, extra...)...)
	rel, err := db.CreateRelation("orders", []tcq.Column{
		{Name: "id", Type: tcq.Int},
		{Name: "amount", Type: tcq.Int},
	}, 200)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := rel.Insert(i, (i*7919+3)%10000); err != nil {
			b.Fatal(err)
		}
	}
	return db, tcq.Rel("orders").Where(tcq.Col("amount").Lt(1000))
}

func benchCountEstimate(b *testing.B, collect bool, extra ...tcq.Option) {
	db, q := traceBenchDB(b, extra...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota:        10 * time.Second,
			Seed:         int64(i + 1),
			CollectTrace: collect,
		})
		if err != nil {
			b.Fatal(err)
		}
		if collect && est.Trace == nil {
			b.Fatal("trace not collected")
		}
	}
}

// BenchmarkCountEstimateTraceOverhead/off is the production path: the
// no-op tracer must add nothing but a handful of int64 increments.
// The telemetry variant measures the live progress registry riding the
// tracer chain (a handful of struct copies per stage boundary).
func BenchmarkCountEstimateTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchCountEstimate(b, false) })
	b.Run("collect", func(b *testing.B) { benchCountEstimate(b, true) })
	b.Run("telemetry", func(b *testing.B) { benchCountEstimate(b, false, tcq.WithTelemetry(64)) })
	b.Run("calibration", func(b *testing.B) { benchCountEstimate(b, false, tcq.WithCalibration(64)) })
	b.Run("spans", func(b *testing.B) { benchCountEstimateSpans(b) })
}

// benchCountEstimateSpans measures the span-timeline tracer riding the
// chain — the per-request cost tcqd pays for its latency anatomy (one
// Mark per stage boundary: a lock, a clock read, one slice append).
func benchCountEstimateSpans(b *testing.B) {
	db, q := traceBenchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl := telemetry.NewSpanTimeline()
		_, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota:  10 * time.Second,
			Seed:   int64(i + 1),
			Tracer: tl.Tracer(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tl.Spans()) == 0 {
			b.Fatal("span timeline collected nothing")
		}
	}
}

// TestNopTracerZeroAllocs pins the production tracing cost: with
// tracing off the engine talks to trace.Nop, and every callback on it —
// including the Enabled() gate the hot loop consults per stage — must
// complete without allocating. Together with internal/exec's
// steady-state key-pool test this keeps the untraced hot path
// allocation-flat per stage.
func TestNopTracerZeroAllocs(t *testing.T) {
	nop := trace.Combine() // canonical way to obtain the Nop tracer
	if nop != trace.Nop {
		t.Fatal("Combine() must return the shared Nop tracer")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if nop.Enabled() {
			t.Fatal("Nop tracer must report disabled")
		}
		nop.BeginQuery(trace.QueryInfo{})
		nop.StageDone(trace.StageRecord{})
		nop.EndQuery(trace.QueryEnd{})
	})
	if allocs != 0 {
		t.Errorf("nop tracer path allocates: %v allocs/op", allocs)
	}
}

// TestDisabledProgressHookZeroAllocs pins the disabled-telemetry cost:
// a nil registry hands out a nil handle, and every tracer callback on
// it must complete without allocating (the engine's hot loop pays one
// nil check and nothing else when no telemetry is attached).
func TestDisabledProgressHookZeroAllocs(t *testing.T) {
	var reg *telemetry.Registry
	h := reg.Track("ignored")
	if h.Enabled() {
		t.Fatal("nil handle must report disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h = reg.Track("ignored")
		h.BeginQuery(trace.QueryInfo{})
		h.StageDone(trace.StageRecord{})
		h.EndQuery(trace.QueryEnd{})
		h.Discard()
	})
	if allocs != 0 {
		t.Errorf("disabled progress hook allocates: %v allocs/op", allocs)
	}
	if got := reg.InFlight(); got != nil {
		t.Errorf("nil registry InFlight = %v, want nil", got)
	}
}

// TestDisabledCalibProbeZeroAllocs pins the disabled-calibration cost:
// a nil auditor hands out a nil probe, and every tracer callback on it
// must complete without allocating — a DB opened without
// WithCalibration pays one nil check per query and nothing else.
func TestDisabledCalibProbeZeroAllocs(t *testing.T) {
	var a *calib.Auditor
	p := a.Track("ignored", nil)
	if p.Enabled() {
		t.Fatal("nil probe must report disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p = a.Track("ignored", nil)
		p.BeginQuery(trace.QueryInfo{})
		p.StageDone(trace.StageRecord{})
		p.EndQuery(trace.QueryEnd{})
		p.Discard()
	})
	if allocs != 0 {
		t.Errorf("disabled calibration probe allocates: %v allocs/op", allocs)
	}
	if got := a.FlightRecords(); got != nil {
		t.Errorf("nil auditor FlightRecords = %v, want nil", got)
	}
	if rep := a.Report(); rep.Queries != 0 {
		t.Errorf("nil auditor Report = %+v, want zero", rep)
	}
}

// TestDisabledSpanTracerZeroAllocs pins the disabled-span cost: a nil
// timeline hands out a typed-nil tracer, and every callback on it —
// plus Mark on the nil timeline itself — must complete without
// allocating. A server built without span collection pays one nil
// check per boundary and nothing else.
func TestDisabledSpanTracerZeroAllocs(t *testing.T) {
	var tl *telemetry.SpanTimeline
	tr := tl.Tracer()
	if tr.Enabled() {
		t.Fatal("nil timeline's tracer must report disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr = tl.Tracer()
		tr.BeginQuery(trace.QueryInfo{})
		tr.StageDone(trace.StageRecord{})
		tr.EndQuery(trace.QueryEnd{})
		tl.Mark("eval", 1)
		tl.MarkRetries("admission_wait", 0, 2)
	})
	if allocs != 0 {
		t.Errorf("disabled span tracer allocates: %v allocs/op", allocs)
	}
	if got := tl.Spans(); got != nil {
		t.Errorf("nil timeline Spans = %v, want nil", got)
	}
	if got := tl.Wall(); got != 0 {
		t.Errorf("nil timeline Wall = %v, want 0", got)
	}
}
