// Trace-overhead guard: a full CountEstimate run with tracing off must
// cost the same as before the observability layer existed (the Nop
// tracer's Enabled() gate skips all record construction), and the
// collecting path should stay within a small constant factor. The
// executor-level guard (join/8 ns/op and allocs/op) lives in
// internal/exec's perf benchmarks and the tcqbench -perf gate against
// BENCH_exec.json.
//
//	go test -bench=TraceOverhead -benchtime=200x
package tcq_test

import (
	"testing"
	"time"

	"tcq"
)

// traceBenchDB builds the selection workload DB once per benchmark.
func traceBenchDB(b *testing.B) (*tcq.DB, tcq.Query) {
	b.Helper()
	db := tcq.Open(tcq.WithSimulatedClock(7))
	rel, err := db.CreateRelation("orders", []tcq.Column{
		{Name: "id", Type: tcq.Int},
		{Name: "amount", Type: tcq.Int},
	}, 200)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := rel.Insert(i, (i*7919+3)%10000); err != nil {
			b.Fatal(err)
		}
	}
	return db, tcq.Rel("orders").Where(tcq.Col("amount").Lt(1000))
}

func benchCountEstimate(b *testing.B, collect bool) {
	db, q := traceBenchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := db.CountEstimate(q, tcq.EstimateOptions{
			Quota:        10 * time.Second,
			Seed:         int64(i + 1),
			CollectTrace: collect,
		})
		if err != nil {
			b.Fatal(err)
		}
		if collect && est.Trace == nil {
			b.Fatal("trace not collected")
		}
	}
}

// BenchmarkCountEstimateTraceOverhead/off is the production path: the
// no-op tracer must add nothing but a handful of int64 increments.
func BenchmarkCountEstimateTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchCountEstimate(b, false) })
	b.Run("collect", func(b *testing.B) { benchCountEstimate(b, true) })
}
