package tcq

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// demoDB builds a database with an "orders" relation of n tuples where
// exactly k have amount < k (amount is a permutation of 0..n-1, id
// unique).
func demoDB(t *testing.T, n, k int) *DB {
	t.Helper()
	db := Open(WithSimulatedClock(7))
	rel, err := db.CreateRelation("orders", []Column{
		{Name: "id", Type: Int},
		{Name: "amount", Type: Int},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic permutation via multiplication by a unit mod n
	// would be overkill; shifted identity suffices for exact counts.
	for i := 0; i < n; i++ {
		if err := rel.Insert(i, (i*7919+3)%n); err != nil {
			t.Fatal(err)
		}
	}
	_ = k
	return db
}

func TestOpenDefaults(t *testing.T) {
	db := Open()
	if db.Now() != 0 {
		t.Error("simulated clock should start at 0")
	}
	if len(db.Relations()) != 0 {
		t.Error("fresh catalog should be empty")
	}
}

func TestCreateRelationAndInsert(t *testing.T) {
	db := Open()
	rel, err := db.CreateRelation("t", []Column{
		{Name: "a", Type: Int},
		{Name: "b", Type: Float},
		{Name: "c", Type: String, Size: 8},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(1, 2.5, "x"); err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(int64(2), 3.5, "y"); err != nil {
		t.Fatal(err)
	}
	if rel.NumTuples() != 2 {
		t.Errorf("tuples = %d", rel.NumTuples())
	}
	// Arity and type errors.
	if err := rel.Insert(1, 2.5); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := rel.Insert(1, 2.5, []byte("x")); err == nil {
		t.Error("unsupported type should fail")
	}
	// Bad column type.
	if _, err := db.CreateRelation("bad", []Column{{Name: "x", Type: ColType(9)}}, 0); err == nil {
		t.Error("unknown column type should fail")
	}
	// Duplicate name.
	if _, err := db.CreateRelation("t", []Column{{Name: "a", Type: Int}}, 0); err == nil {
		t.Error("duplicate relation should fail")
	}
}

func TestPaddingGeometry(t *testing.T) {
	db := Open()
	rel, err := db.CreateRelation("p", []Column{{Name: "a", Type: Int}}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := rel.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	// 200-byte tuples, 1 KB blocks: 5 per block -> 2 blocks.
	if rel.NumBlocks() != 2 {
		t.Errorf("blocks = %d, want 2", rel.NumBlocks())
	}
}

func TestExactCountViaBuilder(t *testing.T) {
	db := demoDB(t, 1000, 100)
	q := Rel("orders").Where(Col("amount").Lt(100))
	got, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("count = %d, want 100", got)
	}
}

func TestBuilderOperators(t *testing.T) {
	db := demoDB(t, 500, 0)
	cases := []struct {
		q    Query
		want int64
	}{
		{Rel("orders").Where(Col("amount").Lt(50)), 50},
		{Rel("orders").Where(Col("amount").Ge(450)), 50},
		{Rel("orders").Where(Col("amount").Eq(7)), 1},
		{Rel("orders").Where(Col("amount").Ne(7)), 499},
		{Rel("orders").Where(Col("amount").Le(0)), 1},
		{Rel("orders").Where(Col("amount").Gt(498)), 1},
		{Rel("orders").Where(Col("id").Eq(Col("id"))), 500},
		{Rel("orders").Where(Col("amount").Lt(50).And(Col("amount").Ge(25))), 25},
		{Rel("orders").Where(Col("amount").Lt(10).Or(Col("amount").Ge(490))), 20},
		{Rel("orders").Where(Not(Col("amount").Lt(10))), 490},
		{Rel("orders").Where(TruePred()), 500},
		{Rel("orders").Project("amount"), 500},
		{Rel("orders").Union(Rel("orders")), 500},
		{Rel("orders").Minus(Rel("orders")), 0},
		{Rel("orders").Intersect(Rel("orders")), 500},
	}
	for i, c := range cases {
		got, err := db.Count(c.q)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, c.q, err)
		}
		if got != c.want {
			t.Errorf("case %d (%s): got %d, want %d", i, c.q, got, c.want)
		}
	}
}

func TestBuilderJoin(t *testing.T) {
	db := demoDB(t, 200, 0)
	rel, err := db.CreateRelation("customers", []Column{
		{Name: "cid", Type: Int},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := rel.Insert(i); err != nil {
			t.Fatal(err)
		}
	}
	q := Rel("orders").Join(Rel("customers"), "id", "cid")
	got, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Errorf("join count = %d, want 50", got)
	}
}

func TestQueryErrorsPropagate(t *testing.T) {
	db := demoDB(t, 100, 0)
	bad := Rel("orders").Where(Pred{err: errNoQuota})
	if _, err := db.Count(bad); err == nil {
		t.Error("predicate error should propagate")
	}
	if bad.Err() == nil {
		t.Error("Err should expose the error")
	}
	if !strings.Contains(bad.String(), "invalid") {
		t.Errorf("String of invalid query: %q", bad.String())
	}
	badVal := Rel("orders").Where(Col("amount").Lt([]int{1}))
	if _, err := db.Count(badVal); err == nil {
		t.Error("bad constant should propagate")
	}
	// Error absorbs further building.
	chained := badVal.Project("amount").Union(Rel("orders")).Minus(Rel("orders")).Intersect(Rel("orders"))
	if chained.Err() == nil {
		t.Error("chained building should keep the error")
	}
	if q := Rel("orders").Union(badVal); q.Err() == nil {
		t.Error("right-side error should propagate")
	}
}

func TestValidate(t *testing.T) {
	db := demoDB(t, 100, 0)
	if err := db.Validate(Rel("orders").Where(Col("amount").Lt(1))); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := db.Validate(Rel("missing")); err == nil {
		t.Error("unknown relation should fail validation")
	}
	if err := db.Validate(Rel("orders").Where(Col("zz").Lt(1))); err == nil {
		t.Error("unknown column should fail validation")
	}
}

func TestParseIntegration(t *testing.T) {
	db := demoDB(t, 300, 0)
	q, err := Parse("select(orders, amount < 30)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("parsed count = %d, want 30", got)
	}
	if _, err := Parse("select(orders,"); err == nil {
		t.Error("bad syntax should fail")
	}
	if q.String() != "select(orders, amount < 30)" {
		t.Errorf("String = %q", q.String())
	}
}

func TestCountEstimateBasic(t *testing.T) {
	db := demoDB(t, 2000, 0)
	q := Rel("orders").Where(Col("amount").Lt(200)) // exact: 200
	est, err := db.CountEstimate(q, EstimateOptions{Quota: 5 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.Stages < 1 || est.Blocks < 1 {
		t.Fatalf("estimate ran nothing: %+v", est)
	}
	if est.Value <= 0 {
		t.Errorf("estimate = %g", est.Value)
	}
	if rel := math.Abs(est.Value-200) / 200; rel > 1.0 {
		t.Errorf("estimate %g too far from 200", est.Value)
	}
	if est.Lo() > est.Value || est.Hi() < est.Value {
		t.Error("CI must bracket the estimate")
	}
	if est.Utilization < 0 || est.Utilization > 1 {
		t.Errorf("utilization = %g", est.Utilization)
	}
	if est.StopReason == "" {
		t.Error("missing stop reason")
	}
	if est.Confidence != 0.95 {
		t.Errorf("default confidence = %g", est.Confidence)
	}
}

func TestCountEstimateRequiresQuota(t *testing.T) {
	db := demoDB(t, 100, 0)
	if _, err := db.CountEstimate(Rel("orders"), EstimateOptions{}); err == nil {
		t.Error("missing quota should fail")
	}
	bad := Rel("orders").Where(Col("zz").Lt(1))
	if _, err := db.CountEstimate(bad, EstimateOptions{Quota: time.Second}); err == nil {
		t.Error("invalid query should fail")
	}
}

func TestCountEstimateStrategies(t *testing.T) {
	for _, k := range []StrategyKind{OneAtATime, SingleInterval, Heuristic} {
		db := demoDB(t, 1000, 0)
		est, err := db.CountEstimate(Rel("orders").Where(Col("amount").Lt(100)),
			EstimateOptions{Quota: 3 * time.Second, Strategy: k, Seed: 4})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if est.Stages < 1 {
			t.Errorf("%v: no stages", k)
		}
		if k.String() == "" {
			t.Errorf("empty name for %d", int(k))
		}
	}
}

func TestCountEstimateProgressCallback(t *testing.T) {
	db := demoDB(t, 1000, 0)
	var stages []Progress
	_, err := db.CountEstimate(Rel("orders").Where(Col("amount").Lt(100)),
		EstimateOptions{
			Quota:      4 * time.Second,
			OnProgress: func(p Progress) { stages = append(stages, p) },
			Seed:       5,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) < 1 {
		t.Fatal("no progress callbacks")
	}
	for i, p := range stages {
		if p.Stage != i+1 || p.Blocks < 1 || p.Spent <= 0 {
			t.Errorf("progress %d looks wrong: %+v", i, p)
		}
	}
}

func TestCountEstimateErrorTarget(t *testing.T) {
	db := demoDB(t, 2000, 0)
	est, err := db.CountEstimate(Rel("orders").Where(Col("amount").Lt(1000)),
		EstimateOptions{Quota: time.Hour, TargetRelError: 0.25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if est.Value == 0 {
		t.Fatal("no estimate")
	}
	if est.Interval/est.Value > 0.25+1e-9 {
		t.Errorf("stopped with rel error %.3f > 0.25", est.Interval/est.Value)
	}
}

func TestCountEstimateHardDeadline(t *testing.T) {
	db := demoDB(t, 2000, 0)
	quota := 2 * time.Second
	before := db.Now()
	est, err := db.CountEstimate(Rel("orders").Where(Col("amount").Lt(100)),
		EstimateOptions{Quota: quota, HardDeadline: true, DBeta: 0.0001, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := db.Now() - before
	if elapsed > quota+200*time.Millisecond {
		t.Errorf("hard deadline exceeded: %v > %v", elapsed, quota)
	}
	_ = est
}

func TestCountEstimatePartialPlan(t *testing.T) {
	db := demoDB(t, 1000, 0)
	// A second relation sharing half of orders' tuples, so the
	// intersection is a genuine two-relation merge.
	rel, err := db.CreateRelation("archive", []Column{
		{Name: "id", Type: Int},
		{Name: "amount", Type: Int},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := (i*7919 + 3) % 1000
		if i%2 == 1 {
			v = 1000 + i // non-matching tail
		}
		if err := rel.Insert(i, v); err != nil {
			t.Fatal(err)
		}
	}
	est, err := db.CountEstimate(Rel("orders").Intersect(Rel("archive")),
		EstimateOptions{Quota: 6 * time.Second, Plan: PartialFulfillment, DBeta: 24, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if est.Stages < 1 {
		t.Error("partial plan ran no stages")
	}
}

func TestSaveLoadRoundTripPublicAPI(t *testing.T) {
	db := demoDB(t, 120, 0)
	rel, err := db.Relation("orders")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rel.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := Open(WithSimulatedClock(9))
	rel2, err := db2.LoadRelation("orders", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.NumTuples() != 120 {
		t.Errorf("loaded %d tuples", rel2.NumTuples())
	}
	c1, _ := db.Count(Rel("orders").Where(Col("amount").Lt(60)))
	c2, _ := db2.Count(Rel("orders").Where(Col("amount").Lt(60)))
	if c1 != c2 {
		t.Errorf("counts differ after round trip: %d vs %d", c1, c2)
	}
}

func TestDropRelation(t *testing.T) {
	db := demoDB(t, 10, 0)
	if err := db.DropRelation("orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Relation("orders"); err == nil {
		t.Error("dropped relation should be gone")
	}
}

func TestRealClockSmoke(t *testing.T) {
	db := Open(WithRealClock())
	rel, err := db.CreateRelation("r", []Column{{Name: "a", Type: Int}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := rel.Insert(i % 100); err != nil {
			t.Fatal(err)
		}
	}
	est, err := db.CountEstimate(Rel("r").Where(Col("a").Lt(10)),
		EstimateOptions{Quota: 50 * time.Millisecond, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if est.Stages < 1 {
		t.Errorf("real-clock run completed no stages: %+v", est)
	}
	// Exact answer is 500; a real-clock estimate should be in the right
	// ballpark (wide tolerance: timing-dependent sample sizes).
	if est.Value < 50 || est.Value > 5000 {
		t.Errorf("real-clock estimate %g wildly off (exact 500)", est.Value)
	}
}

func TestWithLoadNoiseAndCostProfile(t *testing.T) {
	db := Open(WithSimulatedClock(3), WithLoadNoise(0.1), WithBlockSize(2048))
	rel, err := db.CreateRelation("r", []Column{{Name: "a", Type: Int}}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rel.Insert(i)
	}
	// 2 KB blocks, 200-byte tuples: 10 per block.
	if rel.NumBlocks() != 10 {
		t.Errorf("blocks = %d, want 10", rel.NumBlocks())
	}
	if _, err := db.CountEstimate(Rel("r"), EstimateOptions{Quota: time.Second, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestSumAvgPublicAPI(t *testing.T) {
	db := demoDB(t, 1000, 0)
	q := Rel("orders").Where(Col("amount").Lt(100))
	wantSum, err := db.Sum(q, "amount")
	if err != nil {
		t.Fatal(err)
	}
	// amounts 0..99 each exactly once: 4950.
	if wantSum != 4950 {
		t.Fatalf("exact sum = %g, want 4950", wantSum)
	}
	wantAvg, err := db.Avg(q, "amount")
	if err != nil {
		t.Fatal(err)
	}
	if wantAvg != 49.5 {
		t.Fatalf("exact avg = %g, want 49.5", wantAvg)
	}
	sumEst, err := db.SumEstimate(q, "amount", EstimateOptions{Quota: 5 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sumEst.Value <= 0 || math.Abs(sumEst.Value-wantSum)/wantSum > 1.2 {
		t.Errorf("sum estimate = %g (exact %g)", sumEst.Value, wantSum)
	}
	avgEst, err := db.AvgEstimate(q, "amount", EstimateOptions{Quota: 5 * time.Second, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if avgEst.Value <= 0 || math.Abs(avgEst.Value-wantAvg)/wantAvg > 1.0 {
		t.Errorf("avg estimate = %g (exact %g)", avgEst.Value, wantAvg)
	}
	// Errors propagate.
	if _, err := db.SumEstimate(q, "zz", EstimateOptions{Quota: time.Second}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := db.Sum(Rel("missing"), "amount"); err == nil {
		t.Error("unknown relation should fail")
	}
	bad := Rel("orders").Where(Pred{err: errNoQuota})
	if _, err := db.Sum(bad, "amount"); err == nil {
		t.Error("query error should propagate to Sum")
	}
	if _, err := db.Avg(bad, "amount"); err == nil {
		t.Error("query error should propagate to Avg")
	}
}

func TestUseStatisticsPublicAPI(t *testing.T) {
	db := demoDB(t, 2000, 0)
	q := Rel("orders").Where(Col("amount").Lt(200))
	// Without BuildStatistics, UseStatistics silently falls back to
	// run-time estimation.
	if _, err := db.CountEstimate(q, EstimateOptions{
		Quota: 3 * time.Second, UseStatistics: true, Seed: 2,
	}); err != nil {
		t.Fatalf("UseStatistics without stats should fall back, got %v", err)
	}
	if err := db.BuildStatistics(0); err != nil {
		t.Fatal(err)
	}
	est, err := db.CountEstimate(q, EstimateOptions{
		Quota: 3 * time.Second, UseStatistics: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Stages < 1 || est.Value <= 0 {
		t.Errorf("statistics-assisted estimate: %+v", est)
	}
}

func TestStableStagesStop(t *testing.T) {
	db := demoDB(t, 2000, 0)
	est, err := db.CountEstimate(Rel("orders").Where(Col("amount").Lt(1000)),
		EstimateOptions{
			// A binding quota with a small per-stage share forces many
			// small stages; the estimate stabilises long before census.
			Quota:        120 * time.Second,
			Strategy:     Heuristic,
			Gamma:        0.02,
			StableStages: 3,
			StableTol:    0.1,
			Seed:         12,
		})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(est.StopReason, "stable") {
		t.Errorf("stop reason = %q, want stability stop", est.StopReason)
	}
	if est.Stages < 3 {
		t.Errorf("stability stop needs at least 3 stages, got %d", est.Stages)
	}
}

func TestSimpleRandomSamplingPublicAPI(t *testing.T) {
	db := demoDB(t, 1000, 0)
	est, err := db.CountEstimate(Rel("orders").Where(Col("amount").Lt(100)),
		EstimateOptions{Quota: 3 * time.Second, SimpleRandomSampling: true, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if est.Stages < 1 || est.Value <= 0 {
		t.Errorf("SRS estimate: %+v", est)
	}
}

func TestOpenRelationFilePublicAPI(t *testing.T) {
	db := demoDB(t, 200, 0)
	rel, err := db.Relation("orders")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/orders.tcq"
	if err := rel.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2 := Open(WithSimulatedClock(3))
	fb, err := db2.OpenRelationFile("orders", path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if fb.NumTuples() != 200 {
		t.Errorf("tuples = %d", fb.NumTuples())
	}
	// Exact and estimated counts work against the file-backed relation.
	q := Rel("orders").Where(Col("amount").Lt(60))
	c1, _ := db.Count(q)
	c2, err := db2.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("file-backed count %d != in-memory %d", c2, c1)
	}
	est, err := db2.CountEstimate(q, EstimateOptions{Quota: 3 * time.Second, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est.Stages < 1 {
		t.Error("file-backed estimate ran no stages")
	}
}

func TestGroupCountPublicAPI(t *testing.T) {
	db := Open(WithSimulatedClock(5))
	rel, err := db.CreateRelation("ev", []Column{
		{Name: "id", Type: Int},
		{Name: "kind", Type: String, Size: 8},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{"warn", "error", "info", "info", "info"}
	for i := 0; i < 2000; i++ {
		if err := rel.Insert(i, kinds[i%len(kinds)]); err != nil {
			t.Fatal(err)
		}
	}
	q := Rel("ev")
	exact, err := db.GroupCount(q, "kind")
	if err != nil {
		t.Fatal(err)
	}
	if exact["info"] != 1200 || exact["warn"] != 400 || exact["error"] != 400 {
		t.Fatalf("exact groups: %v", exact)
	}
	// 12 s comfortably covers a census of the 400-block relation; a 10 s
	// quota sits on the planner's knife edge (the stage is planned at
	// ~99.9% of the quota and the jitter draw decides the overrun).
	groups, overall, err := db.GroupCountEstimate(q, "kind", EstimateOptions{
		Quota: 12 * time.Second, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if overall.Value <= 0 {
		t.Fatal("no overall estimate")
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d: %+v", len(groups), groups)
	}
	var total float64
	for _, g := range groups {
		if g.Value <= 0 {
			t.Errorf("group %v estimate %g", g.Key, g.Value)
		}
		total += g.Value
	}
	// Group estimates partition the overall estimate.
	if math.Abs(total-overall.Value) > 1e-6 {
		t.Errorf("group sum %g != overall %g", total, overall.Value)
	}
	// Error paths.
	if _, _, err := db.GroupCountEstimate(q, "zz", EstimateOptions{Quota: time.Second}); err == nil {
		t.Error("unknown group column should fail")
	}
	if _, _, err := db.GroupCountEstimate(q, "kind", EstimateOptions{}); err == nil {
		t.Error("missing quota should fail")
	}
	if _, err := db.GroupCount(Rel("missing"), "kind"); err == nil {
		t.Error("unknown relation should fail")
	}
}

func TestExplain(t *testing.T) {
	db := demoDB(t, 100, 0)
	db.CreateRelation("archive2", []Column{
		{Name: "id", Type: Int},
		{Name: "amount", Type: Int},
	}, 200)
	q := Rel("orders").Where(Col("amount").Lt(10)).Union(Rel("archive2"))
	out, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"inclusion–exclusion over 3 terms",
		"term 1 (+1)",
		"(-1)",
		"scan orders (100 tuples, 20 blocks)",
		"select amount < 10",
		"sort-merge intersect",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Join + project rendering (clashing columns are disambiguated as
	// l.amount / r.amount in the joined schema).
	out2, err := db.Explain(Rel("orders").Join(Rel("archive2"), "id", "id").Project("l.amount"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sort-merge join on id = id", "project [l.amount]"} {
		if !strings.Contains(out2, want) {
			t.Errorf("explain missing %q:\n%s", want, out2)
		}
	}
	// Errors.
	if _, err := db.Explain(Rel("missing")); err == nil {
		t.Error("unknown relation should fail")
	}
	bad := Rel("orders").Where(Pred{err: errNoQuota})
	if _, err := db.Explain(bad); err == nil {
		t.Error("query error should propagate")
	}
}

func TestIntrospection(t *testing.T) {
	db := demoDB(t, 50, 0)
	rel, err := db.Relation("orders")
	if err != nil {
		t.Fatal(err)
	}
	// The handle from db.Relation reflects the stored schema including
	// padding; CreateRelation's handle hides it. Check the creation-time
	// view via a fresh relation.
	fresh, err := db.CreateRelation("t2", []Column{
		{Name: "x", Type: Int},
		{Name: "s", Type: String, Size: 4},
	}, 100)
	if err != nil {
		t.Fatal(err)
	}
	cols := fresh.Columns()
	if len(cols) != 2 || cols[0].Name != "x" || cols[0].Type != Int ||
		cols[1].Type != String || cols[1].Size != 4 {
		t.Errorf("columns = %+v", cols)
	}
	_ = rel

	// IO counters accumulate through estimates.
	before := db.IOStats()
	if _, err := db.CountEstimate(Rel("orders"), EstimateOptions{Quota: time.Second, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := db.IOStats()
	if after.BlocksRead <= before.BlocksRead {
		t.Error("estimate should read blocks")
	}
}
