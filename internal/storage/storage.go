// Package storage implements the block-based storage engine of the tcq
// mini-DBMS, mirroring the prototype (ERAM) substrate of the paper:
// relations live in fixed-size disk blocks (1 KB by default, 5 tuples of
// 200 bytes each in the paper's experiments), and the cluster sampling
// plan draws whole blocks as sample units.
//
// Every physical operation (block read, output page write) charges its
// cost to the session clock through a CostProfile, so the same code path
// serves both the simulated SUN-3/60-era experiments and in-memory
// real-time use (where the clock is real and charges are no-ops).
//
// Concurrency model: the catalog (relation names → relations) and each
// relation's data are guarded by RW locks, so any number of sessions may
// read while loads/appends are serialised. Charging state — the clock
// and the physical-work counters — is NOT shared between concurrent
// queries: each query runs against a Session view of the store, whose
// clock and counters are confined to that query, and whose counters are
// folded into the parent's totals when the session ends.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// DefaultBlockSize is the paper's disk block size (1 KB).
const DefaultBlockSize = 1024

// ErrDeadline is returned (wrapped) when a hard time constraint
// interrupts an operation mid-stage. It models the paper's timer
// interrupt service routine setting Stopping-Criterion.
var ErrDeadline = errors.New("storage: time quota expired")

// CostProfile holds the true per-unit costs charged to the clock by the
// storage engine and the sample executors. These play the role of the
// physical machine in the simulation; the cost model in internal/cost
// learns its own (initially wrong) coefficients against them.
type CostProfile struct {
	BlockRead    time.Duration // read one disk block into memory
	PageWrite    time.Duration // write one output/temp page to disk
	TupleWrite   time.Duration // copy one tuple into a temp file
	TupleCheck   time.Duration // evaluate a selection predicate on one tuple
	TupleCompare time.Duration // one comparison during sort/merge
	OpInit       time.Duration // fixed per-operator initialisation
}

// SunProfile returns a cost profile calibrated so that the paper's
// workloads (10,000-tuple relations, 10-second quotas) evaluate sample
// sizes in the same ballpark as the SUN 3/60 numbers of Section 5
// (tens of blocks per 10-second selection quota).
func SunProfile() CostProfile {
	return CostProfile{
		BlockRead:    28 * time.Millisecond,
		PageWrite:    22 * time.Millisecond,
		TupleWrite:   3 * time.Millisecond,
		TupleCheck:   9 * time.Millisecond,
		TupleCompare: 450 * time.Microsecond,
		// Per-stage operator setup is substantial on the modelled
		// machine (process wakeup, temp-file creation, buffer setup):
		// it is what makes many small stages unattractive (§3.3's
		// stage-count/overhead tradeoff) and keeps the average stage
		// count near the paper's 1.5–4 range.
		OpInit: 150 * time.Millisecond,
	}
}

// FastProfile returns a cost profile for a memory-resident, modern-era
// machine: microsecond-scale block access and per-tuple costs, suiting
// the millisecond/second quotas of the paper's real-time database
// motivation. The main-memory prototype variant the paper says was
// "being developed now".
func FastProfile() CostProfile {
	return CostProfile{
		BlockRead:    200 * time.Microsecond,
		PageWrite:    150 * time.Microsecond,
		TupleWrite:   2 * time.Microsecond,
		TupleCheck:   1500 * time.Nanosecond,
		TupleCompare: 300 * time.Nanosecond,
		OpInit:       2 * time.Millisecond,
	}
}

// Counters tracks physical work done through one Store view. Increments
// are unsynchronised: a Store (root or session) must be charged from one
// goroutine at a time. Cross-session aggregation happens through
// MergeCounters, which locks the root's totals.
type Counters struct {
	BlocksRead    int64
	PagesWritten  int64
	TuplesRead    int64
	TuplesWritten int64
	// TempBytes is the bytes written to temp/output files (tuple size
	// times tuples written, the paper's on-disk intermediate results).
	TempBytes int64
}

// add folds o into c.
func (c *Counters) add(o Counters) {
	c.BlocksRead += o.BlocksRead
	c.PagesWritten += o.PagesWritten
	c.TuplesRead += o.TuplesRead
	c.TuplesWritten += o.TuplesWritten
	c.TempBytes += o.TempBytes
}

// catalog is the relation namespace shared by a root store and all of
// its sessions, guarded by an RW lock: lookups (the query read path)
// take the read lock; create/drop/load take the write lock.
type catalog struct {
	mu        sync.RWMutex
	relations map[string]*Relation
}

// Store is a simulated disk: a catalog of relations plus cost charging.
// The catalog may be shared by many sessions; the clock and counters of
// one Store value are confined to a single query at a time (see
// Session).
type Store struct {
	clock     vclock.Clock
	costs     CostProfile
	blockSize int
	cat       *catalog
	root      *Store // counters-aggregation target; self for a root store

	cmu      sync.Mutex // guards counters against concurrent merges/reads
	counters Counters
}

// NewStore creates a store charging work to clock using the given cost
// profile and block size (DefaultBlockSize if blockSize <= 0).
func NewStore(clock vclock.Clock, costs CostProfile, blockSize int) *Store {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	s := &Store{
		clock:     clock,
		costs:     costs,
		blockSize: blockSize,
		cat:       &catalog{relations: make(map[string]*Relation)},
	}
	s.root = s
	return s
}

// Session derives a store view for one query: it shares the catalog and
// cost profile with the receiver but has its own clock and zeroed
// physical-work counters, so concurrent queries never observe each
// other's charges. A nil clock shares the receiver's clock (the right
// choice for a real clock, whose Charge is a no-op). Call MergeCounters
// when the session's query is done to fold its counters into the root
// totals.
func (s *Store) Session(clock vclock.Clock) *Store {
	if clock == nil {
		clock = s.clock
	}
	return &Store{
		clock:     clock,
		costs:     s.costs,
		blockSize: s.blockSize,
		cat:       s.cat,
		root:      s.root,
	}
}

// MergeCounters folds a session's counters into the root store's totals
// (and zeroes the session's). It is a no-op on a root store.
func (s *Store) MergeCounters() {
	if s.root == s {
		return
	}
	s.cmu.Lock()
	delta := s.counters
	s.counters = Counters{}
	s.cmu.Unlock()
	s.root.cmu.Lock()
	s.root.counters.add(delta)
	s.root.cmu.Unlock()
}

// Clock returns the store's clock.
func (s *Store) Clock() vclock.Clock { return s.clock }

// Costs returns the store's cost profile.
func (s *Store) Costs() CostProfile { return s.costs }

// BlockSize returns the disk block size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// Counters returns a snapshot of the physical work counters of this
// store view (a session sees only its own work; the root sees its own
// direct work plus every merged session).
func (s *Store) Counters() Counters {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.counters
}

// ResetCounters zeroes the physical work counters.
func (s *Store) ResetCounters() {
	s.cmu.Lock()
	s.counters = Counters{}
	s.cmu.Unlock()
}

// AddCounters folds an externally accumulated counter delta into this
// store view's totals (the executor lanes use it when replaying a term's
// recorded work at the end of a parallel stage).
func (s *Store) AddCounters(c Counters) {
	s.cmu.Lock()
	s.counters.add(c)
	s.cmu.Unlock()
}

// ChargeCPU charges an arbitrary CPU cost to the clock (used by the
// executors for predicate checks, comparisons and so on).
func (s *Store) ChargeCPU(d time.Duration) { s.clock.Charge(d) }

// CreateRelation registers an empty relation. It fails if the name is
// taken or the schema does not fit a single tuple per block.
func (s *Store) CreateRelation(name string, schema *tuple.Schema) (*Relation, error) {
	if name == "" {
		return nil, errors.New("storage: empty relation name")
	}
	bf := s.blockSize / schema.TupleSize()
	if bf < 1 {
		return nil, fmt.Errorf("storage: tuple size %d exceeds block size %d", schema.TupleSize(), s.blockSize)
	}
	r := &Relation{name: name, schema: schema, store: s.root, blockingFactor: bf}
	s.cat.mu.Lock()
	defer s.cat.mu.Unlock()
	if _, dup := s.cat.relations[name]; dup {
		return nil, fmt.Errorf("storage: relation %q already exists", name)
	}
	s.cat.relations[name] = r
	return r, nil
}

// Relation returns the named relation, or an error if absent.
func (s *Store) Relation(name string) (*Relation, error) {
	s.cat.mu.RLock()
	r, ok := s.cat.relations[name]
	s.cat.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: unknown relation %q", name)
	}
	return r, nil
}

// RelationNames returns the names of all relations (unsorted).
func (s *Store) RelationNames() []string {
	s.cat.mu.RLock()
	defer s.cat.mu.RUnlock()
	out := make([]string, 0, len(s.cat.relations))
	for n := range s.cat.relations {
		out = append(out, n)
	}
	return out
}

// DropRelation removes a relation from the catalog.
func (s *Store) DropRelation(name string) error {
	s.cat.mu.Lock()
	defer s.cat.mu.Unlock()
	if _, ok := s.cat.relations[name]; !ok {
		return fmt.Errorf("storage: unknown relation %q", name)
	}
	delete(s.cat.relations, name)
	return nil
}

// pager supplies a relation's blocks. The default is the in-memory heap
// (blocks [][]tuple.Tuple); file-backed relations read blocks on demand
// (see OpenRelationFile in persist.go).
type pager interface {
	// readBlock returns the tuples of block i (no cost accounting —
	// the Relation layer charges).
	readBlock(i int) ([]tuple.Tuple, error)
	// numBlocks returns the block count.
	numBlocks() int
}

// Relation is a heap file: an ordered list of blocks, each holding up to
// blockingFactor tuples. Blocks are the cluster-sampling units. A
// relation is shared by every session of its store; its data is guarded
// by an RW lock (appends/loads exclude readers), while read charges are
// routed to the session doing the reading (ReadBlockIn).
type Relation struct {
	name           string
	schema         *tuple.Schema
	store          *Store // the creating (root) store; default charge target
	blockingFactor int

	mu        sync.RWMutex
	blocks    [][]tuple.Tuple
	numTuples int64
	backing   pager // nil for in-memory relations

	// batch, when non-nil, is the relation's columnar storage: block i
	// holds rows [i*bf, min((i+1)*bf, n)) of one big Batch. A relation
	// is either row-backed (blocks), file-backed (backing) or
	// batch-backed; AppendBatch on a fresh relation selects batch mode.
	batch *tuple.Batch
}

// Columnar reports whether the relation stores its data as a columnar
// batch, enabling the zero-copy ReadBlockBatchIn read path.
func (r *Relation) Columnar() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.batch != nil
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *tuple.Schema { return r.schema }

// BlockingFactor returns the number of tuples per full block.
func (r *Relation) BlockingFactor() int { return r.blockingFactor }

// NumBlocks returns the number of disk blocks.
func (r *Relation) NumBlocks() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.numBlocksLocked()
}

func (r *Relation) numBlocksLocked() int {
	if r.backing != nil {
		return r.backing.numBlocks()
	}
	if r.batch != nil {
		return (r.batch.Len() + r.blockingFactor - 1) / r.blockingFactor
	}
	return len(r.blocks)
}

// blockBatchLocked returns block i of a batch-backed relation as a
// zero-copy view.
func (r *Relation) blockBatchLocked(i int) *tuple.Batch {
	lo := i * r.blockingFactor
	hi := lo + r.blockingFactor
	if n := r.batch.Len(); hi > n {
		hi = n
	}
	return r.batch.Slice(lo, hi)
}

// NumTuples returns the total number of tuples.
func (r *Relation) NumTuples() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.numTuples
}

// Append adds a tuple to the relation, filling the last block first.
// Appending does not charge the clock: loading is setup, not query time.
// File-backed relations are read-only.
func (r *Relation) Append(t tuple.Tuple) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.backing != nil {
		return fmt.Errorf("storage: relation %s is file-backed (read-only)", r.name)
	}
	if err := t.Validate(r.schema); err != nil {
		return fmt.Errorf("storage: append to %s: %w", r.name, err)
	}
	if r.batch != nil {
		if err := r.batch.AppendRow(t); err != nil {
			return fmt.Errorf("storage: append to %s: %w", r.name, err)
		}
		r.numTuples++
		return nil
	}
	if n := len(r.blocks); n == 0 || len(r.blocks[n-1]) >= r.blockingFactor {
		r.blocks = append(r.blocks, make([]tuple.Tuple, 0, r.blockingFactor))
	}
	last := len(r.blocks) - 1
	r.blocks[last] = append(r.blocks[last], t)
	r.numTuples++
	return nil
}

// AppendBatch bulk-loads a columnar batch. On a fresh relation it
// selects columnar storage (one typed-column copy, no per-row work and
// no boxed values — the fast path the workload generators use); on a
// relation that already holds row blocks it degrades to row-wise
// appends. The resulting block layout is identical either way: rows
// fill blocks sequentially in batch order. Like Append, loading does
// not charge the clock.
func (r *Relation) AppendBatch(b *tuple.Batch) error {
	if !r.schema.Equal(b.Schema()) {
		return fmt.Errorf("storage: append batch to %s: schema mismatch", r.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.backing != nil {
		return fmt.Errorf("storage: relation %s is file-backed (read-only)", r.name)
	}
	if len(r.blocks) > 0 {
		for i := 0; i < b.Len(); i++ {
			t := b.Row(i)
			if n := len(r.blocks); n == 0 || len(r.blocks[n-1]) >= r.blockingFactor {
				r.blocks = append(r.blocks, make([]tuple.Tuple, 0, r.blockingFactor))
			}
			last := len(r.blocks) - 1
			r.blocks[last] = append(r.blocks[last], t)
		}
		r.numTuples += int64(b.Len())
		return nil
	}
	if r.batch == nil {
		r.batch = tuple.NewBatch(r.schema)
	}
	if err := r.batch.AppendBatch(b); err != nil {
		return fmt.Errorf("storage: append batch to %s: %w", r.name, err)
	}
	r.numTuples += int64(b.Len())
	return nil
}

// AppendAll adds every tuple, stopping at the first invalid one.
func (r *Relation) AppendAll(ts []tuple.Tuple) error {
	for _, t := range ts {
		if err := r.Append(t); err != nil {
			return err
		}
	}
	return nil
}

// ReadBlock returns the tuples of block i, charging one block-read to
// the creating store's clock. It honours the deadline: if dl has expired
// the read fails with ErrDeadline before any cost is charged (the
// paper's interrupt aborts the stage at the next block boundary).
func (r *Relation) ReadBlock(i int, dl vclock.Deadline) ([]tuple.Tuple, error) {
	return r.ReadBlockIn(r.store, i, dl)
}

// ReadBlockIn is ReadBlock with the charge routed to the given store
// view — the way a query session reads shared relations without its
// physical-work accounting bleeding into other sessions.
func (r *Relation) ReadBlockIn(sess *Store, i int, dl vclock.Deadline) ([]tuple.Tuple, error) {
	if dl.Expired() {
		return nil, fmt.Errorf("storage: read %s block %d: %w", r.name, i, ErrDeadline)
	}
	r.mu.RLock()
	if i < 0 || i >= r.numBlocksLocked() {
		n := r.numBlocksLocked()
		r.mu.RUnlock()
		return nil, fmt.Errorf("storage: %s block %d out of range [0,%d)", r.name, i, n)
	}
	var blk []tuple.Tuple
	switch {
	case r.backing != nil:
		var err error
		blk, err = r.backing.readBlock(i)
		if err != nil {
			r.mu.RUnlock()
			return nil, fmt.Errorf("storage: read %s block %d: %w", r.name, i, err)
		}
	case r.batch != nil:
		// Slow path for batch-backed relations (row materialization);
		// the executors use ReadBlockBatchIn instead.
		blk = r.blockBatchLocked(i).Rows()
	default:
		blk = r.blocks[i]
	}
	r.mu.RUnlock()
	sess.clock.Charge(sess.costs.BlockRead)
	sess.counters.BlocksRead++
	sess.counters.TuplesRead += int64(len(blk))
	return blk, nil
}

// ReadBlockBatchIn returns block i of a batch-backed relation as a
// zero-copy columnar view, with exactly the same deadline handling,
// clock charge and counter increments as ReadBlockIn — the two read
// paths are interchangeable as far as the simulation can observe.
func (r *Relation) ReadBlockBatchIn(sess *Store, i int, dl vclock.Deadline) (*tuple.Batch, error) {
	if dl.Expired() {
		return nil, fmt.Errorf("storage: read %s block %d: %w", r.name, i, ErrDeadline)
	}
	r.mu.RLock()
	if r.batch == nil {
		r.mu.RUnlock()
		return nil, fmt.Errorf("storage: relation %s is not batch-backed", r.name)
	}
	if i < 0 || i >= r.numBlocksLocked() {
		n := r.numBlocksLocked()
		r.mu.RUnlock()
		return nil, fmt.Errorf("storage: %s block %d out of range [0,%d)", r.name, i, n)
	}
	blk := r.blockBatchLocked(i)
	r.mu.RUnlock()
	sess.clock.Charge(sess.costs.BlockRead)
	sess.counters.BlocksRead++
	sess.counters.TuplesRead += int64(blk.Len())
	return blk, nil
}

// Scan invokes fn for every tuple, charging block reads as it goes. It
// stops early (returning the callback's error) if fn fails, and honours
// the deadline at block granularity.
func (r *Relation) Scan(dl vclock.Deadline, fn func(tuple.Tuple) error) error {
	for i := 0; i < r.NumBlocks(); i++ {
		ts, err := r.ReadBlock(i, dl)
		if err != nil {
			return err
		}
		for _, t := range ts {
			if err := fn(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// AllTuples returns every tuple without charging the clock; intended for
// tests, exact (non-sampled) evaluation and data export.
func (r *Relation) AllTuples() []tuple.Tuple {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.batch != nil {
		return r.batch.Rows()
	}
	out := make([]tuple.Tuple, 0, r.numTuples)
	for i := 0; i < r.numBlocksLocked(); i++ {
		var blk []tuple.Tuple
		if r.backing != nil {
			b, err := r.backing.readBlock(i)
			if err != nil {
				return out
			}
			blk = b
		} else {
			blk = r.blocks[i]
		}
		out = append(out, blk...)
	}
	return out
}

// TempFile is a cost-charged output/temporary file of tuples, modelling
// the paper's on-disk intermediate relations. Writing charges one
// tuple-write per tuple and one page-write per flushed page. A temp file
// is confined to one goroutine; its charges go to the sink it was
// created with (the session store by default, a per-term lane under
// parallel evaluation).
type TempFile struct {
	costs          CostProfile
	clock          vclock.Clock
	counters       *Counters
	schema         *tuple.Schema
	blockingFactor int
	scratch        bool // charge-only: tuples are not retained
	tuples         []tuple.Tuple
	count          int
	pending        int // tuples buffered since the last page flush
	pages          int64
}

// NewTempFile creates a temp file for tuples of the given schema.
func (s *Store) NewTempFile(schema *tuple.Schema) *TempFile {
	bf := s.blockSize / schema.TupleSize()
	if bf < 1 {
		bf = 1
	}
	return &TempFile{
		costs:          s.costs,
		clock:          s.clock,
		counters:       &s.counters,
		schema:         schema,
		blockingFactor: bf,
	}
}

// NewScratchFile creates a charge-only temp file: Write and Flush charge
// exactly like a regular temp file (one tuple-write per tuple, one
// page-write per filled page) but the tuples themselves are discarded.
// The executors use this for intermediate files whose contents they
// already hold in memory, so the simulated I/O cost is preserved without
// duplicating every intermediate result on the host heap.
func (s *Store) NewScratchFile(schema *tuple.Schema) *TempFile {
	f := s.NewTempFile(schema)
	f.scratch = true
	return f
}

// NewScratchFileOn is NewScratchFile with the charges routed to an
// explicit clock and counter set instead of the store's own — the
// executor lanes use it to confine per-term work during parallel
// evaluation.
func (s *Store) NewScratchFileOn(schema *tuple.Schema, clock vclock.Clock, counters *Counters) *TempFile {
	f := s.NewScratchFile(schema)
	f.clock = clock
	f.counters = counters
	return f
}

// Write appends a tuple, charging tuple-write cost and a page-write each
// time a page fills.
func (f *TempFile) Write(t tuple.Tuple) {
	f.clock.Charge(f.costs.TupleWrite)
	f.counters.TuplesWritten++
	f.counters.TempBytes += int64(f.schema.TupleSize())
	if !f.scratch {
		f.tuples = append(f.tuples, t)
	}
	f.count++
	f.pending++
	if f.pending >= f.blockingFactor {
		f.flushPage()
	}
}

// WriteN appends n tuples to a scratch file in one call: the charge
// sequence — tuple-writes with a page-write at every page boundary —
// and the counter increments are exactly those of n Write calls, but
// runs of tuple-writes collapse into batched clock charges (one lock
// acquisition and, on lane clocks, one run record). Scratch files only:
// a retaining temp file has actual tuples to store, so batching does
// not apply.
func (f *TempFile) WriteN(n int) {
	if n <= 0 {
		return
	}
	if !f.scratch {
		panic("storage: WriteN on a retaining temp file")
	}
	f.counters.TuplesWritten += int64(n)
	f.counters.TempBytes += int64(n) * int64(f.schema.TupleSize())
	f.count += n
	for n > 0 {
		k := f.blockingFactor - f.pending
		if k > n {
			k = n
		}
		vclock.ChargeRun(f.clock, f.costs.TupleWrite, k)
		f.pending += k
		n -= k
		if f.pending >= f.blockingFactor {
			f.flushPage()
		}
	}
}

// Flush forces the final partial page (if any) to disk.
func (f *TempFile) Flush() {
	if f.pending > 0 {
		f.flushPage()
	}
}

func (f *TempFile) flushPage() {
	f.clock.Charge(f.costs.PageWrite)
	f.counters.PagesWritten++
	f.pages++
	f.pending = 0
}

// Tuples returns the file contents (no read charge: the executors hold
// intermediate results in temp files and account for reads explicitly).
// Scratch files retain nothing and return nil.
func (f *TempFile) Tuples() []tuple.Tuple { return f.tuples }

// Len returns the number of tuples written.
func (f *TempFile) Len() int { return f.count }

// Pages returns the number of pages flushed so far.
func (f *TempFile) Pages() int64 { return f.pages }

// Schema returns the temp file's tuple schema.
func (f *TempFile) Schema() *tuple.Schema { return f.schema }
