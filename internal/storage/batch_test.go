package storage

import (
	"errors"
	"testing"
	"time"

	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

func batchTestSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "pad", Type: tuple.String, Size: 120}, // bf = 8
	)
}

func buildPair(t *testing.T, n int) (rowRel, batchRel *Relation, st *Store) {
	t.Helper()
	st = NewStore(vclock.NewSim(1, 0), SunProfile(), DefaultBlockSize)
	s := batchTestSchema()
	var err error
	rowRel, err = st.CreateRelation("rows", s)
	if err != nil {
		t.Fatal(err)
	}
	batchRel, err = st.CreateRelation("batch", s)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, n)
	pads := make([]string, n)
	for i := range ids {
		ids[i] = int64(i * 3)
	}
	for j := 0; j < n; j++ {
		if err := rowRel.Append(tuple.Tuple{int64(j * 3), ""}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := tuple.MakeBatch(s, n, ids, pads)
	if err != nil {
		t.Fatal(err)
	}
	if err := batchRel.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	return rowRel, batchRel, st
}

// TestBatchRelationMirrorsRowRelation pins the dual-mode contract: a
// batch-backed relation exposes exactly the same blocks, tuples and
// read charges as a row-backed relation loaded with the same data.
func TestBatchRelationMirrorsRowRelation(t *testing.T) {
	const n = 21 // bf=8 → 2 full blocks + 1 partial
	rowRel, batchRel, st := buildPair(t, n)
	if !batchRel.Columnar() || rowRel.Columnar() {
		t.Fatal("Columnar flags wrong")
	}
	if rowRel.NumBlocks() != batchRel.NumBlocks() || rowRel.NumTuples() != batchRel.NumTuples() {
		t.Fatalf("shape mismatch: blocks %d/%d tuples %d/%d",
			rowRel.NumBlocks(), batchRel.NumBlocks(), rowRel.NumTuples(), batchRel.NumTuples())
	}
	clk := st.Clock().(*vclock.Sim)
	dl := vclock.Unarmed()
	for i := 0; i < rowRel.NumBlocks(); i++ {
		before := clk.Now()
		c0 := st.Counters()
		rb, err := rowRel.ReadBlockIn(st, i, dl)
		if err != nil {
			t.Fatal(err)
		}
		afterRow := clk.Now() - before
		bb, err := batchRel.ReadBlockBatchIn(st, i, dl)
		if err != nil {
			t.Fatal(err)
		}
		afterBatch := clk.Now() - before - afterRow
		if afterRow != afterBatch {
			t.Errorf("block %d: row read charged %v, batch read charged %v", i, afterRow, afterBatch)
		}
		c1 := st.Counters()
		if c1.BlocksRead-c0.BlocksRead != 2 || c1.TuplesRead-c0.TuplesRead != 2*int64(len(rb)) {
			t.Errorf("block %d: counter deltas diverge: %+v -> %+v", i, c0, c1)
		}
		if len(rb) != bb.Len() {
			t.Fatalf("block %d: %d row tuples vs %d batch rows", i, len(rb), bb.Len())
		}
		mb, err := batchRel.ReadBlockIn(st, i, dl)
		if err != nil {
			t.Fatal(err)
		}
		for j := range rb {
			if tuple.Compare(rb[j], bb.Row(j), nil, nil) != 0 || tuple.Compare(rb[j], mb[j], nil, nil) != 0 {
				t.Fatalf("block %d row %d: %v vs %v vs %v", i, j, rb[j], bb.Row(j), mb[j])
			}
		}
	}
	rowAll, batchAll := rowRel.AllTuples(), batchRel.AllTuples()
	if len(rowAll) != len(batchAll) {
		t.Fatalf("AllTuples length %d vs %d", len(rowAll), len(batchAll))
	}
	for i := range rowAll {
		if tuple.Compare(rowAll[i], batchAll[i], nil, nil) != 0 {
			t.Fatalf("AllTuples[%d]: %v vs %v", i, rowAll[i], batchAll[i])
		}
	}
}

func TestBatchRelationDeadlineAndAppend(t *testing.T) {
	_, batchRel, st := buildPair(t, 5)
	clk := st.Clock().(*vclock.Sim)
	expired := vclock.NewDeadline(clk, -time.Second)
	if _, err := batchRel.ReadBlockBatchIn(st, 0, expired); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired read err = %v, want ErrDeadline", err)
	}
	if _, err := batchRel.ReadBlockBatchIn(st, 99, vclock.Unarmed()); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	// Row appends land in the batch storage and extend the block range.
	if err := batchRel.Append(tuple.Tuple{int64(1000), "x"}); err != nil {
		t.Fatal(err)
	}
	if got := batchRel.NumTuples(); got != 6 {
		t.Fatalf("NumTuples after mixed append = %d", got)
	}
	all := batchRel.AllTuples()
	if all[5][0].(int64) != 1000 {
		t.Fatalf("appended row not visible: %v", all[5])
	}
	// A row-mode relation accepts AppendBatch by degrading to rows.
	rowRel, err := st.CreateRelation("rows2", batchTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := rowRel.Append(tuple.Tuple{int64(-1), ""}); err != nil {
		t.Fatal(err)
	}
	b, err := tuple.MakeBatch(batchTestSchema(), 2, []int64{7, 8}, []string{"", ""})
	if err != nil {
		t.Fatal(err)
	}
	if err := rowRel.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if rowRel.Columnar() {
		t.Fatal("row relation became columnar")
	}
	if got := rowRel.NumTuples(); got != 3 {
		t.Fatalf("NumTuples = %d", got)
	}
	if _, err := batchRel.ReadBlockBatchIn(st, 0, vclock.Unarmed()); err != nil {
		t.Fatal(err)
	}
	if _, err := rowRel.ReadBlockBatchIn(st, 0, vclock.Unarmed()); err == nil {
		t.Fatal("ReadBlockBatchIn on row relation succeeded")
	}
}

// TestWriteNMatchesWriteLoop pins WriteN's charge stream against the
// scalar Write loop: same seed, same durations in the same order, same
// counters, across page boundaries and partial pages.
func TestWriteNMatchesWriteLoop(t *testing.T) {
	s := batchTestSchema()
	for _, n := range []int{1, 7, 8, 9, 40, 100} {
		loopClk := vclock.NewSim(5, 0.04)
		batchClk := vclock.NewSim(5, 0.04)
		loopSt := NewStore(loopClk, SunProfile(), DefaultBlockSize)
		batchSt := NewStore(batchClk, SunProfile(), DefaultBlockSize)
		lf := loopSt.NewScratchFile(s)
		bf := batchSt.NewScratchFile(s)
		lf.Write(tuple.Tuple{int64(0), ""}) // offset the page phase
		bf.Write(tuple.Tuple{int64(0), ""})
		for i := 0; i < n; i++ {
			lf.Write(tuple.Tuple{int64(i), ""})
		}
		bf.WriteN(n)
		lf.Flush()
		bf.Flush()
		if loopClk.Now() != batchClk.Now() {
			t.Errorf("n=%d: loop clock %v != batch clock %v", n, loopClk.Now(), batchClk.Now())
		}
		if lc, bc := loopSt.Counters(), batchSt.Counters(); lc != bc {
			t.Errorf("n=%d: counters diverge: %+v vs %+v", n, lc, bc)
		}
		if lf.Len() != bf.Len() || lf.Pages() != bf.Pages() {
			t.Errorf("n=%d: len/pages diverge: %d/%d vs %d/%d", n, lf.Len(), lf.Pages(), bf.Len(), bf.Pages())
		}
	}
}
