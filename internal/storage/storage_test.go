package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

func paperSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	s, err := tuple.NewSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Pad to the paper's 200-byte tuples: 5 tuples per 1 KB block.
	s, err = s.WithPadding(200)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestStore() (*Store, *vclock.Sim) {
	clk := vclock.NewSim(1, 0)
	return NewStore(clk, SunProfile(), DefaultBlockSize), clk
}

func fill(t *testing.T, r *Relation, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := r.Append(tuple.Tuple{int64(i), int64(i % 10), ""})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreateRelationAndBlockingFactor(t *testing.T) {
	s, _ := newTestStore()
	r, err := s.CreateRelation("r", paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.BlockingFactor() != 5 {
		t.Errorf("blocking factor = %d, want 5 (paper setup)", r.BlockingFactor())
	}
	if _, err := s.CreateRelation("r", paperSchema(t)); err == nil {
		t.Error("duplicate relation name should fail")
	}
	if _, err := s.CreateRelation("", paperSchema(t)); err == nil {
		t.Error("empty relation name should fail")
	}
	big := tuple.MustSchema(tuple.Column{Name: "s", Type: tuple.String, Size: 2000})
	if _, err := s.CreateRelation("big", big); err == nil {
		t.Error("tuple larger than a block should fail")
	}
}

func TestPaperGeometry(t *testing.T) {
	// 10,000 tuples of 200 bytes => 2,000 blocks of 5 tuples.
	s, _ := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	fill(t, r, 10000)
	if r.NumTuples() != 10000 {
		t.Errorf("NumTuples = %d", r.NumTuples())
	}
	if r.NumBlocks() != 2000 {
		t.Errorf("NumBlocks = %d, want 2000", r.NumBlocks())
	}
}

func TestAppendValidation(t *testing.T) {
	s, _ := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	if err := r.Append(tuple.Tuple{int64(1)}); err == nil {
		t.Error("appending wrong arity should fail")
	}
	if err := r.AppendAll([]tuple.Tuple{{int64(1), int64(2), ""}, {int64(1)}}); err == nil {
		t.Error("AppendAll should surface invalid tuples")
	}
	if r.NumTuples() != 1 {
		t.Errorf("partial AppendAll left %d tuples, want 1", r.NumTuples())
	}
}

func TestReadBlockChargesClock(t *testing.T) {
	s, clk := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	fill(t, r, 12)
	before := clk.Now()
	ts, err := r.ReadBlock(0, vclock.Unarmed())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Errorf("block 0 holds %d tuples, want 5", len(ts))
	}
	if got := clk.Now() - before; got != s.Costs().BlockRead {
		t.Errorf("charge = %v, want %v", got, s.Costs().BlockRead)
	}
	// Last, partial block.
	ts, err = r.ReadBlock(2, vclock.Unarmed())
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Errorf("last block holds %d tuples, want 2", len(ts))
	}
	c := s.Counters()
	if c.BlocksRead != 2 || c.TuplesRead != 7 {
		t.Errorf("counters = %+v", c)
	}
	if _, err := r.ReadBlock(99, vclock.Unarmed()); err == nil {
		t.Error("out-of-range block should fail")
	}
	if _, err := r.ReadBlock(-1, vclock.Unarmed()); err == nil {
		t.Error("negative block should fail")
	}
}

func TestReadBlockHonoursDeadline(t *testing.T) {
	s, clk := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	fill(t, r, 10)
	dl := vclock.NewDeadline(clk, 10*time.Millisecond)
	clk.Advance(11 * time.Millisecond)
	_, err := r.ReadBlock(0, dl)
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("expected ErrDeadline, got %v", err)
	}
	if s.Counters().BlocksRead != 0 {
		t.Error("aborted read must not charge a block read")
	}
}

func TestScan(t *testing.T) {
	s, _ := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	fill(t, r, 23)
	var n int
	err := r.Scan(vclock.Unarmed(), func(tp tuple.Tuple) error {
		n++
		return nil
	})
	if err != nil || n != 23 {
		t.Errorf("scan saw %d tuples (err=%v), want 23", n, err)
	}
	if s.Counters().BlocksRead != 5 {
		t.Errorf("scan read %d blocks, want 5", s.Counters().BlocksRead)
	}
	sentinel := errors.New("stop")
	n = 0
	err = r.Scan(vclock.Unarmed(), func(tp tuple.Tuple) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 3 {
		t.Errorf("scan early stop: n=%d err=%v", n, err)
	}
}

func TestAllTuplesDoesNotCharge(t *testing.T) {
	s, clk := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	fill(t, r, 10)
	before := clk.Now()
	if got := len(r.AllTuples()); got != 10 {
		t.Errorf("AllTuples len = %d", got)
	}
	if clk.Now() != before {
		t.Error("AllTuples must not charge the clock")
	}
}

func TestCatalogOps(t *testing.T) {
	s, _ := newTestStore()
	s.CreateRelation("a", paperSchema(t))
	s.CreateRelation("b", paperSchema(t))
	if len(s.RelationNames()) != 2 {
		t.Errorf("names = %v", s.RelationNames())
	}
	if _, err := s.Relation("a"); err != nil {
		t.Error(err)
	}
	if _, err := s.Relation("zz"); err == nil {
		t.Error("missing relation lookup should fail")
	}
	if err := s.DropRelation("a"); err != nil {
		t.Error(err)
	}
	if err := s.DropRelation("a"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestTempFileChargesPerPage(t *testing.T) {
	s, clk := newTestStore()
	f := s.NewTempFile(paperSchema(t))
	before := clk.Now()
	for i := 0; i < 12; i++ {
		f.Write(tuple.Tuple{int64(i), int64(0), ""})
	}
	f.Flush()
	f.Flush() // idempotent: nothing pending
	want := 12*s.Costs().TupleWrite + 3*s.Costs().PageWrite
	if got := clk.Now() - before; got != want {
		t.Errorf("temp file charges = %v, want %v", got, want)
	}
	if f.Pages() != 3 {
		t.Errorf("pages = %d, want 3 (two full + one partial)", f.Pages())
	}
	if f.Len() != 12 || len(f.Tuples()) != 12 {
		t.Errorf("temp file holds %d tuples", f.Len())
	}
	if !f.Schema().Equal(paperSchema(t)) {
		t.Error("temp file schema mismatch")
	}
	c := s.Counters()
	if c.TuplesWritten != 12 || c.PagesWritten != 3 {
		t.Errorf("counters = %+v", c)
	}
}

func TestResetCounters(t *testing.T) {
	s, _ := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	fill(t, r, 5)
	r.ReadBlock(0, vclock.Unarmed())
	s.ResetCounters()
	if s.Counters() != (Counters{}) {
		t.Errorf("counters after reset = %+v", s.Counters())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, _ := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	fill(t, r, 137)
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, _ := newTestStore()
	r2, err := s2.LoadRelation("copy", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumTuples() != 137 || r2.NumBlocks() != r.NumBlocks() {
		t.Errorf("loaded %d tuples in %d blocks", r2.NumTuples(), r2.NumBlocks())
	}
	a, b := r.AllTuples(), r2.AllTuples()
	for i := range a {
		if tuple.Compare(a[i], b[i], nil, nil) != 0 {
			t.Fatalf("tuple %d mismatch: %v vs %v", i, a[i], b[i])
		}
	}
	if !r2.Schema().Equal(r.Schema()) {
		t.Error("loaded schema mismatch")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s, _ := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	fill(t, r, 9)
	path := t.TempDir() + "/rel.tcq"
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2, _ := newTestStore()
	r2, err := s2.LoadRelationFile("r", path)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumTuples() != 9 {
		t.Errorf("loaded %d tuples, want 9", r2.NumTuples())
	}
	if _, err := s2.LoadRelationFile("x", path+".missing"); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	s, _ := newTestStore()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE0000000000000000"),
		"truncated": func() []byte {
			s0, _ := newTestStore()
			r, _ := s0.CreateRelation("r", tuple.MustSchema(tuple.Column{Name: "v", Type: tuple.Int}))
			r.Append(tuple.Tuple{int64(1)})
			r.Append(tuple.Tuple{int64(2)})
			var buf bytes.Buffer
			r.Save(&buf)
			return buf.Bytes()[:buf.Len()-4]
		}(),
	}
	i := 0
	for name, data := range cases {
		if _, err := s.LoadRelation(fmt.Sprintf("c%d", i), bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected load failure", name)
		}
		i++
	}
	// A failed load must not leave a half-registered relation behind.
	for _, n := range s.RelationNames() {
		t.Errorf("stale relation %q after failed load", n)
	}
}

func TestOpenRelationFileOnDemand(t *testing.T) {
	// Write a relation, reopen it file-backed, and verify block reads,
	// scans, counts and a full query-path equivalence with the
	// in-memory copy.
	s, _ := newTestStore()
	r, _ := s.CreateRelation("r", paperSchema(t))
	fill(t, r, 137)
	path := t.TempDir() + "/r.tcq"
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	s2, clk := newTestStore()
	fb, err := s2.OpenRelationFile("r", path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if fb.NumTuples() != 137 {
		t.Errorf("NumTuples = %d", fb.NumTuples())
	}
	if fb.NumBlocks() != r.NumBlocks() {
		t.Errorf("NumBlocks = %d, want %d", fb.NumBlocks(), r.NumBlocks())
	}
	// Block reads charge the clock like in-memory ones.
	before := clk.Now()
	blk, err := fb.ReadBlock(0, vclock.Unarmed())
	if err != nil {
		t.Fatal(err)
	}
	if len(blk) != 5 {
		t.Errorf("block 0 = %d tuples", len(blk))
	}
	if clk.Now()-before != s2.Costs().BlockRead {
		t.Error("file-backed read must charge a block read")
	}
	// Last, partial block.
	last, err := fb.ReadBlock(fb.NumBlocks()-1, vclock.Unarmed())
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != 137%5 {
		t.Errorf("last block = %d tuples, want %d", len(last), 137%5)
	}
	if _, err := fb.ReadBlock(fb.NumBlocks(), vclock.Unarmed()); err == nil {
		t.Error("out-of-range read should fail")
	}
	// Tuples identical to the source.
	a, b := r.AllTuples(), fb.AllTuples()
	if len(a) != len(b) {
		t.Fatalf("AllTuples %d vs %d", len(a), len(b))
	}
	for i := range a {
		if tuple.Compare(a[i], b[i], nil, nil) != 0 {
			t.Fatalf("tuple %d differs", i)
		}
	}
	// Read-only.
	if err := fb.Append(tuple.Tuple{int64(1), int64(2), ""}); err == nil {
		t.Error("file-backed relation should be read-only")
	}
	// Save round-trips from the file-backed copy too.
	var buf bytes.Buffer
	if err := fb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s3, _ := newTestStore()
	r3, err := s3.LoadRelation("again", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r3.NumTuples() != 137 {
		t.Errorf("resaved tuples = %d", r3.NumTuples())
	}
}

func TestOpenRelationFileErrors(t *testing.T) {
	s, _ := newTestStore()
	if _, err := s.OpenRelationFile("x", "/does/not/exist"); err == nil {
		t.Error("missing file should fail")
	}
	bad := t.TempDir() + "/bad.tcq"
	os.WriteFile(bad, []byte("NOPE"), 0o644)
	if _, err := s.OpenRelationFile("x", bad); err == nil {
		t.Error("corrupt file should fail")
	}
	if len(s.RelationNames()) != 0 {
		t.Error("failed open must not register a relation")
	}
	// In-memory relations: Close is a no-op.
	r, _ := s.CreateRelation("m", paperSchema(t))
	if err := r.Close(); err != nil {
		t.Errorf("in-memory Close: %v", err)
	}
}
