package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"tcq/internal/tuple"
)

// File format (little endian):
//
//	magic   [4]byte  "TCQR"
//	version uint32   1
//	blockSz uint32
//	ncols   uint32
//	cols    ncols × { type uint8, size uint32, nameLen uint32, name []byte }
//	ntuples uint64
//	tuples  ntuples × Schema.TupleSize() bytes
const (
	fileMagic   = "TCQR"
	fileVersion = 1
)

// Save writes the relation to w in the tcq binary format. File-backed
// relations are copied block by block (uncharged). Concurrent appends
// are excluded for the duration of the save.
func (r *Relation) Save(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeU32(fileVersion)
	writeU32(uint32(r.store.blockSize))
	writeU32(uint32(r.schema.NumCols()))
	for i := 0; i < r.schema.NumCols(); i++ {
		c := r.schema.Col(i)
		bw.WriteByte(byte(c.Type))
		writeU32(uint32(c.Size))
		writeU32(uint32(len(c.Name)))
		bw.WriteString(c.Name)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(r.numTuples)); err != nil {
		return err
	}
	buf := make([]byte, 0, r.schema.TupleSize())
	for i := 0; i < r.numBlocksLocked(); i++ {
		var blk []tuple.Tuple
		switch {
		case r.backing != nil:
			b, err := r.backing.readBlock(i)
			if err != nil {
				return err
			}
			blk = b
		case r.batch != nil:
			blk = r.blockBatchLocked(i).Rows()
		default:
			blk = r.blocks[i]
		}
		for _, t := range blk {
			buf = t.Encode(r.schema, buf[:0])
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveFile writes the relation to the named host file.
func (r *Relation) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// countingReader tracks bytes consumed, so the header size (and hence
// the tuple-data offset) is known after parsing.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readHeader parses the tcq relation header, returning the schema, the
// tuple count and the byte offset at which tuple data begins.
func readHeader(rd io.Reader, name string) (*tuple.Schema, uint64, int64, error) {
	cr := &countingReader{r: rd}
	br := bufio.NewReader(cr)
	consumed := func() int64 { return cr.n - int64(br.Buffered()) }
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, 0, fmt.Errorf("storage: load %s: %w", name, err)
	}
	if string(magic) != fileMagic {
		return nil, 0, 0, fmt.Errorf("storage: load %s: bad magic %q", name, magic)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	ver, err := readU32()
	if err != nil {
		return nil, 0, 0, err
	}
	if ver != fileVersion {
		return nil, 0, 0, fmt.Errorf("storage: load %s: unsupported version %d", name, ver)
	}
	if _, err := readU32(); err != nil { // stored block size; informational
		return nil, 0, 0, err
	}
	ncols, err := readU32()
	if err != nil {
		return nil, 0, 0, err
	}
	if ncols == 0 || ncols > 1<<16 {
		return nil, 0, 0, fmt.Errorf("storage: load %s: implausible column count %d", name, ncols)
	}
	cols := make([]tuple.Column, ncols)
	for i := range cols {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, 0, 0, err
		}
		size, err := readU32()
		if err != nil {
			return nil, 0, 0, err
		}
		nameLen, err := readU32()
		if err != nil {
			return nil, 0, 0, err
		}
		if nameLen > 1<<16 {
			return nil, 0, 0, fmt.Errorf("storage: load %s: implausible name length %d", name, nameLen)
		}
		nb := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nb); err != nil {
			return nil, 0, 0, err
		}
		cols[i] = tuple.Column{Name: string(nb), Type: tuple.ColType(tb), Size: int(size)}
	}
	schema, err := tuple.NewSchema(cols...)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("storage: load %s: %w", name, err)
	}
	var ntuples uint64
	if err := binary.Read(br, binary.LittleEndian, &ntuples); err != nil {
		return nil, 0, 0, err
	}
	return schema, ntuples, consumed(), nil
}

// LoadRelation reads a relation in the tcq binary format from rd and
// registers it in the store under the given name (fully in memory; see
// OpenRelationFile for on-demand access).
func (s *Store) LoadRelation(name string, rd io.Reader) (*Relation, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, fmt.Errorf("storage: load %s: %w", name, err)
	}
	schema, ntuples, offset, err := readHeader(bytes.NewReader(data), name)
	if err != nil {
		return nil, err
	}
	rel, err := s.CreateRelation(name, schema)
	if err != nil {
		return nil, err
	}
	rest := data[offset:]
	ts := schema.TupleSize()
	for i := uint64(0); i < ntuples; i++ {
		if len(rest) < ts {
			s.DropRelation(name)
			return nil, fmt.Errorf("storage: load %s: tuple %d: unexpected EOF", name, i)
		}
		t, remaining, err := tuple.Decode(schema, rest)
		if err != nil {
			s.DropRelation(name)
			return nil, err
		}
		rest = remaining
		if err := rel.Append(t); err != nil {
			s.DropRelation(name)
			return nil, err
		}
	}
	return rel, nil
}

// filePager reads a relation's blocks on demand from an open file.
type filePager struct {
	f       *os.File
	schema  *tuple.Schema
	offset  int64 // byte offset of tuple data
	ntuples int64
	bf      int // tuples per block
}

func (p *filePager) numBlocks() int {
	return int((p.ntuples + int64(p.bf) - 1) / int64(p.bf))
}

func (p *filePager) readBlock(i int) ([]tuple.Tuple, error) {
	start := int64(i) * int64(p.bf)
	count := int64(p.bf)
	if start+count > p.ntuples {
		count = p.ntuples - start
	}
	if count <= 0 {
		return nil, fmt.Errorf("storage: block %d beyond end", i)
	}
	ts := int64(p.schema.TupleSize())
	buf := make([]byte, count*ts)
	if _, err := p.f.ReadAt(buf, p.offset+start*ts); err != nil {
		return nil, err
	}
	out := make([]tuple.Tuple, 0, count)
	rest := buf
	for j := int64(0); j < count; j++ {
		t, remaining, err := tuple.Decode(p.schema, rest)
		if err != nil {
			return nil, err
		}
		rest = remaining
		out = append(out, t)
	}
	return out, nil
}

// OpenRelationFile registers a relation backed by the named tcq file,
// reading blocks on demand instead of loading every tuple into memory —
// how a production deployment opens a large relation. The file must
// outlive the store session; Close releases it.
func (s *Store) OpenRelationFile(name, path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	schema, ntuples, offset, err := readHeader(f, name)
	if err != nil {
		f.Close()
		return nil, err
	}
	rel, err := s.CreateRelation(name, schema)
	if err != nil {
		f.Close()
		return nil, err
	}
	rel.mu.Lock()
	rel.numTuples = int64(ntuples)
	rel.backing = &filePager{
		f:       f,
		schema:  schema,
		offset:  offset,
		ntuples: int64(ntuples),
		bf:      rel.blockingFactor,
	}
	rel.mu.Unlock()
	return rel, nil
}

// Close releases a file-backed relation's file handle (no-op for
// in-memory relations).
func (r *Relation) Close() error {
	r.mu.RLock()
	p, ok := r.backing.(*filePager)
	r.mu.RUnlock()
	if ok {
		return p.f.Close()
	}
	return nil
}

// LoadRelationFile reads a relation from the named host file.
func (s *Store) LoadRelationFile(name, path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return s.LoadRelation(name, f)
}
