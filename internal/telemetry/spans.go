package telemetry

import (
	"sync"
	"time"

	"tcq/internal/trace"
)

// Span names used by the tcqd request timeline. A request's spans
// partition its wire-to-wire wall time: every Mark attributes the
// elapsed time since the previous mark to the named span, so the spans
// always sum to the timeline's Wall() (up to the tail after the last
// mark, which is the terminal spans event's own construction).
const (
	// SpanDecode covers reading and validating the request body.
	SpanDecode = "decode"
	// SpanAdmissionWait covers time blocked in the sched.Controller
	// admission gate, including bounded at-capacity retries.
	SpanAdmissionWait = "admission_wait"
	// SpanPlan covers parsing and plan construction up to the first
	// sampling stage (BeginQuery on the tracer chain).
	SpanPlan = "plan"
	// SpanEval covers one sampling stage's evaluation (StageDone);
	// the span's Stage field carries the 1-based stage number.
	SpanEval = "eval"
	// SpanFinalize covers estimator finalization after the last stage
	// (EndQuery on the tracer chain).
	SpanFinalize = "finalize"
	// SpanStreamWrite covers marshalling and writing one event to the
	// client connection.
	SpanStreamWrite = "stream_write"
	// SpanFlush covers flushing the HTTP response writer after an
	// event (streaming responses only).
	SpanFlush = "flush"
)

// Span is one attributed slice of a request's wall time.
type Span struct {
	// Name is one of the Span* constants.
	Name string
	// Stage is the 1-based sampling stage for eval spans, 0 otherwise.
	Stage int
	// Start is the offset from the timeline's start.
	Start time.Duration
	// Dur is the attributed duration (elapsed since the prior mark).
	Dur time.Duration
	// Retries counts admission re-reservation attempts (admission_wait
	// spans only).
	Retries int
}

// SpanTimeline accumulates the latency anatomy of one request. It is
// safe for concurrent use (the stream writer and the tracer chain run
// on the same goroutine, but telemetry scrapes may race a snapshot)
// and, like Stream and Probe, a nil *SpanTimeline is a valid no-op so
// the disabled path stays allocation-free.
type SpanTimeline struct {
	mu    sync.Mutex
	start time.Time
	last  time.Time
	spans []Span
}

// NewSpanTimeline starts a timeline; the first Mark attributes time
// from this call.
func NewSpanTimeline() *SpanTimeline {
	now := time.Now()
	return &SpanTimeline{start: now, last: now}
}

// Mark attributes all wall time since the previous mark (or the
// timeline start) to the named span and returns that duration.
func (tl *SpanTimeline) Mark(name string, stage int) time.Duration {
	return tl.MarkRetries(name, stage, 0)
}

// MarkRetries is Mark with an admission retry count attached.
func (tl *SpanTimeline) MarkRetries(name string, stage, retries int) time.Duration {
	if tl == nil {
		return 0
	}
	now := time.Now()
	tl.mu.Lock()
	d := now.Sub(tl.last)
	if d < 0 {
		d = 0
	}
	tl.spans = append(tl.spans, Span{
		Name:    name,
		Stage:   stage,
		Start:   tl.last.Sub(tl.start),
		Dur:     d,
		Retries: retries,
	})
	tl.last = now
	tl.mu.Unlock()
	return d
}

// Spans returns a snapshot of the marked spans in mark order.
func (tl *SpanTimeline) Spans() []Span {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	out := make([]Span, len(tl.spans))
	copy(out, tl.spans)
	tl.mu.Unlock()
	return out
}

// Wall returns the wall time from the timeline start to the last mark
// — the portion of the request the spans fully partition.
func (tl *SpanTimeline) Wall() time.Duration {
	if tl == nil {
		return 0
	}
	tl.mu.Lock()
	d := tl.last.Sub(tl.start)
	tl.mu.Unlock()
	return d
}

// Total returns the summed duration attributed to the named span.
func (tl *SpanTimeline) Total(name string) time.Duration {
	if tl == nil {
		return 0
	}
	var d time.Duration
	tl.mu.Lock()
	for _, sp := range tl.spans {
		if sp.Name == name {
			d += sp.Dur
		}
	}
	tl.mu.Unlock()
	return d
}

// Dominant returns the span name with the largest summed duration and
// that duration. Ties break toward the lexically smaller name so
// attribution is deterministic. Returns ("", 0) when nothing is marked.
func (tl *SpanTimeline) Dominant() (string, time.Duration) {
	if tl == nil {
		return "", 0
	}
	tl.mu.Lock()
	totals := make(map[string]time.Duration, 8)
	for _, sp := range tl.spans {
		totals[sp.Name] += sp.Dur
	}
	tl.mu.Unlock()
	var best string
	var bestD time.Duration
	for name, d := range totals {
		if best == "" || d > bestD || (d == bestD && name < best) {
			best, bestD = name, d
		}
	}
	return best, bestD
}

// Tracer returns a trace.Tracer that marks plan/eval/finalize spans at
// the chain's stage boundaries. The tracer is read-only in the §6.2
// sense: it only reads the wall clock, never the session's virtual
// clock or RNG, so results and goldens are byte-identical with it
// installed. A nil timeline returns a typed-nil tracer whose Enabled
// reports false — the zero-allocation disabled path.
func (tl *SpanTimeline) Tracer() *SpanTracer {
	if tl == nil {
		return nil
	}
	return &SpanTracer{tl: tl}
}

// SpanTracer rides the trace.Tracer chain attributing engine time to
// plan/eval/finalize spans on its SpanTimeline.
type SpanTracer struct {
	tl *SpanTimeline
}

var _ trace.Tracer = (*SpanTracer)(nil)

// Enabled reports whether the tracer marks spans; false for the
// typed-nil disabled path.
func (t *SpanTracer) Enabled() bool { return t != nil && t.tl != nil }

// BeginQuery closes the plan span: everything since the prior mark was
// parsing and plan construction.
func (t *SpanTracer) BeginQuery(info trace.QueryInfo) {
	if t == nil {
		return
	}
	t.tl.Mark(SpanPlan, 0)
}

// StageDone closes the stage's eval span.
func (t *SpanTracer) StageDone(rec trace.StageRecord) {
	if t == nil {
		return
	}
	t.tl.Mark(SpanEval, rec.Stage)
}

// EndQuery closes the finalize span.
func (t *SpanTracer) EndQuery(res trace.QueryEnd) {
	if t == nil {
		return
	}
	t.tl.Mark(SpanFinalize, 0)
}
