// Package telemetry is the live operational view of the
// time-constrained query engine, layered on the internal/trace
// primitives: an in-flight query progress registry updated at stage
// boundaries, a pg_stat_statements-style history ring of completed
// query traces with per-query-shape aggregates, an HTTP server
// exporting Prometheus metrics plus JSON progress/history endpoints
// (and net/http/pprof), and nil-safe structured event logging via
// log/slog.
//
// The registry observes queries through the trace.Tracer interface: a
// Handle returned by Registry.Track is combined into the engine's
// tracer chain, so progress updates inherit the tracing layer's
// read-only contract — no session-clock charges, no RNG draws, and
// byte-identical estimates, tables and trace goldens whether telemetry
// is on or off. When telemetry is disabled the engine never sees a
// handle at all: the hot path pays a single nil check (see the
// progress-hook overhead guard in trace_bench_test.go).
//
// All durations in progress and history records come from the session's
// virtual clock, so under a simulated clock every exported record is
// deterministic; no wall-clock field ever enters a golden.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcq/internal/trace"
)

// RelationProgress is one relation's cumulative share of a running
// query's sample.
type RelationProgress struct {
	Relation string `json:"relation"`
	// Blocks and Tuples are the cumulative sample drawn so far (sample
	// units: disk blocks under cluster sampling, tuples under SRS).
	Blocks int `json:"blocks"`
	Tuples int `json:"tuples"`
	// Coverage is the cumulative sampled fraction d/D of the relation.
	Coverage float64 `json:"coverage"`
}

// QueryProgress is a point-in-time snapshot of one tracked query: the
// live convergence view an online-aggregation UI renders. Every field
// derives from the virtual session clock and the estimator state — no
// wall-clock reading, so snapshots are deterministic under a simulated
// clock.
type QueryProgress struct {
	// ID is the registry-assigned monotonic query id.
	ID int64 `json:"id"`
	// Label is the caller-supplied origin tag ("txn 3 q 0", a bench
	// trial id, or empty for ad-hoc API queries).
	Label string `json:"label,omitempty"`
	// Query is the relational algebra text being estimated.
	Query string `json:"query"`
	// Quota is the time constraint T; Elapsed the virtual time spent so
	// far; SpentFrac the fraction of quota consumed (may exceed 1 when
	// the final stage overran).
	Quota     time.Duration `json:"quota_ns"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	SpentFrac float64       `json:"spent_frac"`
	// Strategy/Mode/Plan/Sampling/Seed mirror trace.QueryInfo.
	Strategy string `json:"strategy"`
	Mode     string `json:"mode"`
	Plan     string `json:"plan"`
	Sampling string `json:"sampling"`
	// Catalog is "hit" when the run reused a materialized sample-
	// catalog permutation (empty for cold/miss runs).
	Catalog string `json:"catalog,omitempty"`
	Seed    int64  `json:"seed"`
	// Stages counts completed stages; Blocks the cumulative sample
	// units drawn; Fraction the latest stage's chosen sample fraction.
	Stages   int     `json:"stages"`
	Blocks   int     `json:"blocks"`
	Fraction float64 `json:"fraction"`
	// Relations is the per-relation cumulative draw with coverage.
	Relations []RelationProgress `json:"relations,omitempty"`
	// Estimate ± Interval is the current running estimate and its CI
	// half-width; StdErr the standard error.
	Estimate float64 `json:"estimate"`
	StdErr   float64 `json:"stderr"`
	Interval float64 `json:"interval"`
	// Done is set when the query finished; StopReason says why (§3.2),
	// and Overspent whether the quota was exceeded.
	Done       bool   `json:"done"`
	StopReason string `json:"stop_reason,omitempty"`
	Overspent  bool   `json:"overspent,omitempty"`
}

// Registry tracks in-flight queries and retains a bounded history of
// completed ones. It is safe for concurrent use; snapshot methods
// (InFlight, History, QueryStats) never block running queries beyond a
// short mutex hold and never touch session clocks.
type Registry struct {
	mu       sync.Mutex
	nextID   int64
	inflight map[int64]*Handle
	history  ring
	shapes   map[string]*shapeAgg
	// log is read on every tracer callback of every tracked query, so
	// it lives outside r.mu: handles load it atomically and never take
	// the registry lock. The only cross-lock order in the package is
	// InFlight's r.mu → h.mu; nothing may acquire them in reverse.
	log atomic.Pointer[Logger]
}

// NewRegistry creates a registry keeping the last historySize completed
// query summaries (128 when <= 0).
func NewRegistry(historySize int) *Registry {
	if historySize <= 0 {
		historySize = 128
	}
	return &Registry{
		inflight: make(map[int64]*Handle),
		history:  newRing(historySize),
		shapes:   make(map[string]*shapeAgg),
	}
}

// SetLogger attaches a structured event logger; nil detaches it.
func (r *Registry) SetLogger(l *Logger) {
	if r == nil {
		return
	}
	r.log.Store(l)
}

// Track registers a new in-flight query and returns its progress
// handle, which implements trace.Tracer: combine it into the engine's
// tracer chain and the registry follows the query stage by stage. A nil
// registry returns a nil handle (also a valid no-op Tracer), so callers
// can thread an optional registry without branching.
func (r *Registry) Track(label string) *Handle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.nextID++
	h := &Handle{reg: r, p: QueryProgress{ID: r.nextID, Label: label}}
	r.inflight[h.p.ID] = h
	r.mu.Unlock()
	return h
}

// InFlight snapshots every tracked query that has begun and not yet
// finished, sorted by query id.
func (r *Registry) InFlight() []QueryProgress {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]QueryProgress, 0, len(r.inflight))
	for _, h := range r.inflight {
		h.mu.Lock()
		if h.begun {
			out = append(out, h.snapshotLocked())
		}
		h.mu.Unlock()
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Handle follows one query's evaluation. It implements trace.Tracer;
// all callbacks are cheap (struct copies under the handle's own lock)
// and read-only with respect to the simulation. A nil handle is a
// usable no-op.
type Handle struct {
	reg   *Registry
	mu    sync.Mutex
	begun bool
	p     QueryProgress
	// overshootSum/overshootN accumulate per-stage overshoot for the
	// query-shape aggregates; maxOvershoot tracks the worst single
	// predicted stage.
	overshootSum float64
	overshootN   int64
	maxOvershoot float64
	// hasTruth/truth carry the caller-declared ground truth (SetTruth):
	// EndQuery scores the final interval against it for the shape's
	// empirical-coverage columns.
	hasTruth bool
	truth    float64
}

// SetTruth declares the query's known exact answer before (or during)
// the run; at EndQuery the final confidence interval is scored against
// it and the hit/miss feeds the shape's empirical-coverage aggregate.
// Nil-safe, like every Handle method.
func (h *Handle) SetTruth(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.hasTruth = true
	h.truth = v
	h.mu.Unlock()
}

// Enabled implements trace.Tracer.
func (h *Handle) Enabled() bool { return h != nil }

// BeginQuery implements trace.Tracer.
func (h *Handle) BeginQuery(q trace.QueryInfo) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.begun = true
	h.p.Query = q.Query
	h.p.Quota = q.Quota
	h.p.Strategy = q.Strategy
	h.p.Mode = q.Mode
	h.p.Plan = q.Plan
	h.p.Sampling = q.Sampling
	h.p.Catalog = q.Catalog
	h.p.Seed = q.Seed
	id, label := h.p.ID, h.p.Label
	log := h.logger()
	h.mu.Unlock()
	log.QueryStarted(id, label, q.Query, q.Quota)
}

// StageDone implements trace.Tracer.
func (h *Handle) StageDone(s trace.StageRecord) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if s.Completed {
		h.p.Stages = s.Stage
	}
	h.p.Blocks += s.Blocks
	h.p.Fraction = s.Fraction
	h.p.Elapsed = h.p.Quota - s.Remaining
	if h.p.Quota > 0 {
		h.p.SpentFrac = float64(h.p.Elapsed) / float64(h.p.Quota)
	}
	if len(s.Relations) > 0 {
		h.p.Relations = h.p.Relations[:0]
		for _, rd := range s.Relations {
			h.p.Relations = append(h.p.Relations, RelationProgress{
				Relation: rd.Relation,
				Blocks:   rd.CumBlocks,
				Tuples:   rd.Tuples,
				Coverage: rd.CumFraction,
			})
		}
	}
	if s.Completed {
		h.p.Estimate = s.Estimate
		h.p.StdErr = s.StdErr
		h.p.Interval = s.Interval
	}
	if s.Predicted > 0 {
		h.overshootSum += s.Overshoot
		h.overshootN++
		if s.Overshoot > h.maxOvershoot {
			h.maxOvershoot = s.Overshoot
		}
	}
	id := h.p.ID
	log := h.logger()
	h.mu.Unlock()
	log.StageDone(id, s.Stage, s.Estimate, s.Interval, s.Remaining)
}

// EndQuery implements trace.Tracer: the handle leaves the in-flight
// set and its summary enters the history ring and shape aggregates.
func (h *Handle) EndQuery(e trace.QueryEnd) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.p.Done = true
	h.p.Stages = e.Stages
	h.p.Blocks = e.Blocks
	h.p.Elapsed = e.Elapsed
	if h.p.Quota > 0 {
		h.p.SpentFrac = float64(e.Elapsed) / float64(h.p.Quota)
	}
	h.p.Estimate = e.Estimate
	h.p.StdErr = e.StdErr
	h.p.Interval = e.Interval
	h.p.StopReason = e.StopReason
	h.p.Overspent = e.Overspent
	sum := QuerySummary{
		ID:          h.p.ID,
		Label:       h.p.Label,
		Query:       h.p.Query,
		Quota:       h.p.Quota,
		Stages:      e.Stages,
		Blocks:      e.Blocks,
		Elapsed:     e.Elapsed,
		Utilization: e.Utilization,
		Estimate:    e.Estimate,
		StdErr:      e.StdErr,
		Interval:    e.Interval,
		Catalog:     h.p.Catalog,
		StopReason:  e.StopReason,
		Overspent:   e.Overspent,
		Overrun:     e.Overspend,
	}
	fin := finishStats{
		overshootSum: h.overshootSum,
		overshootN:   h.overshootN,
		maxOvershoot: h.maxOvershoot,
	}
	// A zero-width interval around a wrong estimate is degenerate — no
	// usable CI was produced — and must not dilute the coverage rate
	// (same rule as internal/calib).
	if h.hasTruth && !(e.Interval <= 0 && e.Estimate != h.truth) {
		fin.truthChecked = true
		fin.truthHit = absf(e.Estimate-h.truth) <= e.Interval
	}
	log := h.logger()
	h.mu.Unlock()
	if h.reg != nil {
		h.reg.finish(h, sum, fin)
	}
	log.QueryFinished(sum.ID, sum.StopReason, sum.Estimate, sum.Interval,
		sum.Stages, sum.Elapsed, sum.Overspent, sum.Overrun)
}

// Discard drops a handle whose query failed before completing (the
// engine returned an error, so EndQuery never fired): the query leaves
// the in-flight set without entering history.
func (h *Handle) Discard() {
	if h == nil || h.reg == nil {
		return
	}
	h.reg.mu.Lock()
	delete(h.reg.inflight, h.p.ID)
	h.reg.mu.Unlock()
}

// snapshotLocked copies the progress record (h.mu held). The relations
// slice is copied so callers can hold snapshots across later stages.
func (h *Handle) snapshotLocked() QueryProgress {
	p := h.p
	p.Relations = append([]RelationProgress(nil), h.p.Relations...)
	return p
}

// Progress returns the handle's current snapshot (useful to render a
// single tracked query without scanning the registry).
func (h *Handle) Progress() QueryProgress {
	if h == nil {
		return QueryProgress{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snapshotLocked()
}

// logger fetches the registry's logger. Callers hold h.mu, so this
// must never touch r.mu (InFlight acquires r.mu → h.mu; taking r.mu
// here would be the reverse order and deadlock). The atomic load also
// keeps concurrent queries from serializing on the registry lock at
// every stage boundary when logging is disabled.
func (h *Handle) logger() *Logger {
	if h.reg == nil {
		return nil
	}
	return h.reg.log.Load()
}

// finishStats carries a handle's per-run accumulators into the shape
// aggregates.
type finishStats struct {
	overshootSum float64
	overshootN   int64
	maxOvershoot float64
	truthChecked bool
	truthHit     bool
}

// finish retires a completed handle into history and shape stats.
func (r *Registry) finish(h *Handle, sum QuerySummary, fin finishStats) {
	r.mu.Lock()
	delete(r.inflight, sum.ID)
	r.history.push(sum)
	agg := r.shapes[sum.Query]
	if agg == nil {
		agg = &shapeAgg{}
		r.shapes[sum.Query] = agg
	}
	agg.calls++
	agg.stages += int64(sum.Stages)
	agg.blocks += int64(sum.Blocks)
	agg.overshootSum += fin.overshootSum
	agg.overshootN += fin.overshootN
	if fin.maxOvershoot > agg.worstOvershoot {
		agg.worstOvershoot = fin.maxOvershoot
	}
	if fin.truthChecked {
		agg.truthN++
		if fin.truthHit {
			agg.truthHits++
		}
	}
	agg.ciWidthSum += sum.Interval
	if sum.Overspent {
		agg.overspends++
	}
	r.mu.Unlock()
}

// absf is math.Abs without pulling in math for one call site.
func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
