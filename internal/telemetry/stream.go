package telemetry

import (
	"strings"

	"tcq/internal/trace"
)

// labelSep separates a metric's base name from its label spec inside
// registry keys built by Labeled. '|' cannot appear in plain metric
// names, so unlabeled keys are never mis-split.
const labelSep = "|"

// Labeled builds a metrics-registry key carrying Prometheus-style
// labels: Labeled("queries", "tenant", "alice") yields
// "queries|tenant=alice", which /metrics renders as
// tcq_queries_total{tenant="alice"} under the tcq_queries family —
// one HELP/TYPE block, one series per label set. kv lists
// key/value pairs; label keys should be fixed strings, values may be
// arbitrary (they are quoted on exposition). Use a stable pair order
// at every call site: the key is an opaque registry string, so
// "a=1,b=2" and "b=2,a=1" would count separately.
func Labeled(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	sep := labelSep
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteString(sep)
		sep = ","
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	return b.String()
}

// Stream adapts the progress-tracking machinery into a push feed: it
// implements trace.Tracer like a Registry handle, but instead of
// parking snapshots in a registry it calls fn with the query's
// cumulative QueryProgress after every completed stage and once more —
// with done=true — when the query ends. tcqd combines a Stream into
// each network query's tracer chain to emit the progressive
// estimate±CI records of its NDJSON/SSE response.
//
// fn runs synchronously on the goroutine evaluating the query (tracer
// callbacks are sequential), so it may write to a response stream
// without locking; it must not block indefinitely or it stalls the
// query. A nil Stream is a valid no-op Tracer.
type Stream struct {
	h  *Handle
	fn func(p QueryProgress, done bool)
}

// NewStream builds a streaming progress tracer. label tags the emitted
// snapshots (e.g. "tenant/request-id"); fn receives every progress
// record.
func NewStream(label string, fn func(p QueryProgress, done bool)) *Stream {
	return &Stream{h: &Handle{p: QueryProgress{Label: label}}, fn: fn}
}

// Enabled implements trace.Tracer.
func (s *Stream) Enabled() bool { return s != nil }

// BeginQuery implements trace.Tracer.
func (s *Stream) BeginQuery(q trace.QueryInfo) {
	if s == nil {
		return
	}
	s.h.BeginQuery(q)
}

// StageDone implements trace.Tracer: completed stages push a snapshot.
// Aborted partial stages update the internal state (blocks, elapsed)
// but emit nothing — the terminal EndQuery push carries them.
func (s *Stream) StageDone(rec trace.StageRecord) {
	if s == nil {
		return
	}
	s.h.StageDone(rec)
	if rec.Completed {
		s.fn(s.h.Progress(), false)
	}
}

// EndQuery implements trace.Tracer: the final snapshot is pushed with
// done=true (its StopReason and Overspent fields are set).
func (s *Stream) EndQuery(e trace.QueryEnd) {
	if s == nil {
		return
	}
	s.h.EndQuery(e)
	s.fn(s.h.Progress(), true)
}
