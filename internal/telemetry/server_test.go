package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"tcq/internal/calib"
	"tcq/internal/trace"
)

// testSource builds a Source with one in-flight query, one completed
// query, and a populated metrics registry.
func testSource() Sources {
	metrics := trace.NewRegistry()
	metrics.Add("queries", 3)
	metrics.Add("blocks_read", 120)
	metrics.SetGauge("queries_in_flight", 1)
	metrics.Observe("stages_per_query", 2)
	metrics.Observe("stages_per_query", 5)
	metrics.Observe("utilization", 0.8)

	reg := NewRegistry(8)
	feedQuery(reg.Track("done"), "select(r, a < 10)", 100, false)
	live := reg.Track("live")
	live.BeginQuery(trace.QueryInfo{Query: "join(r, s, a = a)", Quota: 10 * time.Second})
	live.StageDone(trace.StageRecord{
		Stage: 1, Fraction: 0.1, Blocks: 20, Remaining: 6 * time.Second,
		Relations: []trace.RelationDraw{{Relation: "r", Blocks: 20, Tuples: 100, CumBlocks: 20, CumFraction: 0.1}},
		Estimate:  480, StdErr: 25, Interval: 50, Completed: true, InTime: true,
	})
	return Sources{Progress: reg, Reg: metrics}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (NaN|[-+]?Inf|[-+]?[0-9.eE+-]+)$`)

// checkPromExposition validates body against the Prometheus text
// format: every line is a comment or a sample, histograms carry
// cumulative le buckets closed by +Inf, and each family is typed.
func checkPromExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			typed[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition sample line: %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	checkPromExposition(t, body)
	for _, want := range []string{
		"tcq_queries_total 3",
		"tcq_blocks_read_total 120",
		"tcq_queries_in_flight 1",
		"tcq_telemetry_queries_in_flight 1",
		"# TYPE tcq_stages_per_query histogram",
		`tcq_stages_per_query_bucket{le="2"} 1`,
		`tcq_stages_per_query_bucket{le="+Inf"} 2`,
		"tcq_stages_per_query_sum 7",
		"tcq_stages_per_query_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// Histogram buckets must be cumulative and non-decreasing.
	if strings.Index(body, `le="2"`) > strings.Index(body, `le="8"`) && strings.Contains(body, `le="8"`) {
		t.Errorf("buckets out of order:\n%s", body)
	}
	// Deterministic: a second scrape of unchanged state is identical.
	_, again := get(t, srv, "/metrics")
	if body != again {
		t.Errorf("scrapes of equal state differ:\n%s\n---\n%s", body, again)
	}
}

func TestQueriesEndpointShowsLiveQuery(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	code, body := get(t, srv, "/queries")
	if code != http.StatusOK {
		t.Fatalf("/queries status %d", code)
	}
	var got struct {
		Queries []QueryProgress `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("invalid /queries JSON: %v\n%s", err, body)
	}
	if len(got.Queries) != 1 {
		t.Fatalf("want 1 live query, got %d:\n%s", len(got.Queries), body)
	}
	q := got.Queries[0]
	if q.Query != "join(r, s, a = a)" || q.Done || q.Stages != 1 || q.Estimate != 480 {
		t.Errorf("live record wrong: %+v", q)
	}
	if len(q.Relations) != 1 || q.Relations[0].Coverage != 0.1 {
		t.Errorf("live relations wrong: %+v", q.Relations)
	}
}

func TestHistoryEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	code, body := get(t, srv, "/history")
	if code != http.StatusOK {
		t.Fatalf("/history status %d", code)
	}
	var got struct {
		History []QuerySummary `json:"history"`
		Shapes  []ShapeStat    `json:"shapes"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("invalid /history JSON: %v\n%s", err, body)
	}
	if len(got.History) != 1 || got.History[0].Query != "select(r, a < 10)" {
		t.Errorf("history wrong: %+v", got.History)
	}
	if len(got.Shapes) != 1 || got.Shapes[0].Calls != 1 {
		t.Errorf("shapes wrong: %+v", got.Shapes)
	}
}

func TestIndexAndPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	code, body := get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: %d\n%s", code, body)
	}
	code, _ = get(t, srv, "/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
	code, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: %d", code)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	srv, addr, err := Serve(context.Background(), testSource(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, _, err := Serve(context.Background(), testSource(), addr); err == nil {
		t.Error("second bind on same addr should fail")
	}
}

// Cancelling the Serve context must gracefully stop the server: new
// connections are refused shortly after, and the listener is released
// so the address can be rebound.
func TestServeContextCancelShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, addr, err := Serve(ctx, testSource(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get("http://" + addr + "/metrics"); err != nil {
			break // server stopped accepting
		}
		if time.Now().After(deadline) {
			t.Fatal("server still serving after context cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The port must be released for rebinding.
	srv2, _, err := Serve(context.Background(), testSource(), addr)
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	srv2.Close()
}

// Every tcq_* family on /metrics must carry a # HELP line immediately
// before its # TYPE line, and repeated scrapes of equal state must be
// byte-identical (diff-stable for scrape tooling).
func TestMetricsHelpLines(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()
	_, body := get(t, srv, "/metrics")
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	families := 0
	for i, line := range lines {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		families++
		name := strings.Fields(line)[2]
		if i == 0 || !strings.HasPrefix(lines[i-1], "# HELP "+name+" ") {
			t.Errorf("family %s: TYPE line not preceded by its HELP line", name)
		}
		if help := strings.TrimPrefix(lines[i-1], "# HELP "+name+" "); strings.TrimSpace(help) == "" {
			t.Errorf("family %s: empty HELP text", name)
		}
	}
	if families == 0 {
		t.Fatalf("no TYPE lines found:\n%s", body)
	}
	_, again := get(t, srv, "/metrics")
	if body != again {
		t.Error("scrapes of equal state differ")
	}
}

// calibSource extends testSource with a populated calibration auditor.
func calibSource() Sources {
	s := testSource()
	a := calib.NewAuditor(calib.Config{FlightSize: 4})
	p := a.Track("t1", &calib.Truth{Value: 100})
	p.BeginQuery(trace.QueryInfo{Query: "sel(r)", Quota: 10 * time.Second})
	p.StageDone(trace.StageRecord{Stage: 1, Predicted: time.Second, Actual: 2 * time.Second, Overshoot: 1, Completed: true})
	p.EndQuery(trace.QueryEnd{Stages: 1, Estimate: 500, Interval: 10, StopReason: "done"}) // miss → captured
	s.Calib = a
	return s
}

func TestCalibrationEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(calibSource()))
	defer srv.Close()
	code, body := get(t, srv, "/calibration")
	if code != http.StatusOK {
		t.Fatalf("/calibration status %d", code)
	}
	var rep calib.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("invalid /calibration JSON: %v\n%s", err, body)
	}
	if rep.Queries != 1 || rep.TruthN != 1 || rep.TruthHits != 0 {
		t.Errorf("report wrong: %+v", rep)
	}
	if len(rep.Shapes) != 1 || rep.Shapes[0].Query != "sel(r)" {
		t.Errorf("shapes wrong: %+v", rep.Shapes)
	}
	// Without a calibration source the endpoint serves the zero report.
	plain := httptest.NewServer(Handler(testSource()))
	defer plain.Close()
	code, body = get(t, plain, "/calibration")
	if code != http.StatusOK || !strings.Contains(body, `"queries": 0`) {
		t.Errorf("no-calib /calibration: %d\n%s", code, body)
	}
}

func TestFlightRecorderEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(calibSource()))
	defer srv.Close()
	code, body := get(t, srv, "/debug/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("/debug/flightrecorder status %d", code)
	}
	var got struct {
		Records []calib.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if len(got.Records) != 1 {
		t.Fatalf("want 1 flight record, got %d:\n%s", len(got.Records), body)
	}
	r := got.Records[0]
	if r.Label != "t1" || len(r.Reasons) == 0 || r.Reasons[0] != calib.ReasonCIMiss {
		t.Errorf("record wrong: %+v", r)
	}
	if r.Trace.Info.Query != "sel(r)" || len(r.Trace.Stages) != 1 {
		t.Errorf("captured trace incomplete: %+v", r.Trace)
	}
}
