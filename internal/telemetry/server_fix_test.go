package telemetry

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"tcq/internal/trace"
)

// Regression: Serve's shutdown watcher used to park on ctx.Done()
// forever when the caller tore the server down via Close instead of
// cancelling the context — one leaked goroutine per server. The
// watcher must now observe the server closing and exit.
func TestServeCloseDoesNotLeakWatcher(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // never cancelled before Close — the leaking scenario

	runtime.GC()
	before := runtime.NumGoroutine()
	const rounds = 10
	for i := 0; i < rounds; i++ {
		srv, _, err := Serve(ctx, testSource(), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		select {
		case <-srv.Done():
		case <-time.After(5 * time.Second):
			t.Fatal("watcher did not exit after Close")
		}
		if err := srv.Wait(); err != nil {
			t.Errorf("Wait after clean Close = %v, want nil", err)
		}
	}
	// The watchers must all be gone; allow slack for runtime goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n < before+rounds {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines before=%d after=%d: watcher leak", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// gatedSource blocks Metrics until released, pinning a /metrics
// request in flight; entered reports each handler reaching the gate.
type gatedSource struct {
	Sources
	entered chan struct{}
	gate    chan struct{}
}

func (g gatedSource) Metrics() trace.Snapshot {
	g.entered <- struct{}{}
	<-g.gate
	return g.Sources.Metrics()
}

// Regression: the context-cancellation drain discarded the Shutdown
// error, so a drain that timed out with requests still in flight was
// indistinguishable from a clean stop. The error must surface via
// Err/Wait.
func TestServeContextDrainErrorSurfaced(t *testing.T) {
	old := serveGrace
	serveGrace = 30 * time.Millisecond
	defer func() { serveGrace = old }()

	src := gatedSource{Sources: testSource(), entered: make(chan struct{}, 1), gate: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	srv, addr, err := Serve(ctx, src, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Pin one scrape inside the gated Metrics call...
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			resp.Body.Close()
		}
	}()
	// ...wait until the handler is actually blocked on the gate, then
	// cancel: the grace period expires with the stream still open.
	select {
	case <-src.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}
	cancel()
	waitErr := make(chan error, 1)
	go func() { waitErr <- srv.Wait() }()
	select {
	case err := <-waitErr:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Wait = %v, want context.DeadlineExceeded (drain timed out)", err)
		}
		if !errors.Is(srv.Err(), context.DeadlineExceeded) {
			t.Errorf("Err = %v, want the retained drain error", srv.Err())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung after cancelled context")
	}
	close(src.gate) // release the pinned handler
	srv.Close()
	<-reqDone
}

// errWriter fails every write, simulating a client that vanished
// mid-response.
type errWriter struct {
	httptest.ResponseRecorder
}

func (e *errWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

// Regression: writeJSON ignored encode errors. A value that cannot
// marshal must yield a clean 500 (no half-written 200 body), and a
// failing writer must surface its error instead of being swallowed.
func TestWriteJSONErrors(t *testing.T) {
	// Unmarshalable value → 500, nothing of the document written.
	rec := httptest.NewRecorder()
	if err := writeJSON(rec, struct{ F func() }{}); err == nil {
		t.Error("writeJSON(func field) returned nil error")
	}
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "{") {
		t.Errorf("partial JSON written alongside the error: %q", rec.Body.String())
	}

	// Failing writer → the write error is returned, not dropped.
	ew := &errWriter{ResponseRecorder: *httptest.NewRecorder()}
	if err := writeJSON(ew, map[string]int{"ok": 1}); err == nil {
		t.Error("writeJSON(failing writer) returned nil error")
	}

	// Healthy path still encodes (guard against over-correcting).
	ok := httptest.NewRecorder()
	if err := writeJSON(ok, map[string]int{"ok": 1}); err != nil {
		t.Fatalf("writeJSON healthy path: %v", err)
	}
	if ok.Code != http.StatusOK || !strings.Contains(ok.Body.String(), `"ok": 1`) {
		t.Errorf("healthy response wrong: %d %q", ok.Code, ok.Body.String())
	}
}

// Labeled keys must render as Prometheus label sets sharing one
// family: one HELP/TYPE block, one series per label set, deterministic
// order, and unlabeled families byte-identical to the pre-label
// renderer.
func TestMetricsLabeledSeries(t *testing.T) {
	src := testSource()
	src.Reg.Add(Labeled("tenant_queries", "tenant", "alice"), 5)
	src.Reg.Add(Labeled("tenant_queries", "tenant", "bob"), 2)
	src.Reg.SetGauge(Labeled("tenant_window", "tenant", "alice"), 1.5)
	src.Reg.Observe(Labeled("request_seconds", "tenant", "alice"), 0.5)

	srv := httptest.NewServer(Handler(src))
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	checkPromExposition(t, body)
	for _, want := range []string{
		`tcq_tenant_queries_total{tenant="alice"} 5`,
		`tcq_tenant_queries_total{tenant="bob"} 2`,
		`tcq_tenant_window{tenant="alice"} 1.5`,
		`tcq_request_seconds_sum{tenant="alice"} 0.5`,
		`tcq_request_seconds_count{tenant="alice"} 1`,
		`tcq_request_seconds_bucket{tenant="alice",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if n := strings.Count(body, "# TYPE tcq_tenant_queries_total counter"); n != 1 {
		t.Errorf("family TYPE emitted %d times, want once", n)
	}
	if strings.Index(body, `tenant="alice"} 5`) > strings.Index(body, `tenant="bob"`) {
		t.Error("labeled series not in lexical label order")
	}
	_, again := get(t, srv, "/metrics")
	if body != again {
		t.Error("labeled scrapes of equal state differ")
	}
}

// Labeled is the key builder: no pairs → bare name; pairs join with
// the separator the renderer splits on.
func TestLabeledKeyBuilder(t *testing.T) {
	for _, tc := range []struct {
		kv   []string
		want string
	}{
		{nil, "queries"},
		{[]string{"tenant"}, "queries"}, // dangling key ignored
		{[]string{"tenant", "a"}, "queries|tenant=a"},
		{[]string{"tenant", "a", "shard", "0"}, "queries|tenant=a,shard=0"},
	} {
		if got := Labeled("queries", tc.kv...); got != tc.want {
			t.Errorf("Labeled(queries, %v) = %q, want %q", tc.kv, got, tc.want)
		}
	}
}

// ?label= filters /queries and /history by label prefix, the tenant
// drill-down path.
func TestLabelFilter(t *testing.T) {
	reg := NewRegistry(8)
	feedQuery(reg.Track("alice/1"), "select(r, a < 10)", 100, false)
	feedQuery(reg.Track("bob/1"), "select(r, a < 10)", 90, false)
	live := reg.Track("alice/2")
	live.BeginQuery(trace.QueryInfo{Query: "sel(r)", Quota: time.Second})
	live.StageDone(trace.StageRecord{Stage: 1, Completed: true, Estimate: 7})
	src := Sources{Progress: reg, Reg: trace.NewRegistry()}
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	_, body := get(t, srv, "/queries?label=alice")
	if !strings.Contains(body, "alice/2") || strings.Contains(body, "bob/") {
		t.Errorf("/queries?label=alice wrong:\n%s", body)
	}
	_, body = get(t, srv, "/history?label=bob")
	if !strings.Contains(body, "bob/1") || strings.Contains(body, "alice/") {
		t.Errorf("/history?label=bob wrong:\n%s", body)
	}
	_, body = get(t, srv, "/history?label=nobody")
	if strings.Contains(body, "alice/") || strings.Contains(body, "bob/") {
		t.Errorf("/history?label=nobody should be empty:\n%s", body)
	}
}

// Stream must push one snapshot per completed stage plus a terminal
// done=true snapshot carrying the stop reason.
func TestStreamTracer(t *testing.T) {
	type push struct {
		p    QueryProgress
		done bool
	}
	var got []push
	s := NewStream("alice/7", func(p QueryProgress, done bool) {
		got = append(got, push{p, done})
	})
	s.BeginQuery(trace.QueryInfo{Query: "sel(r)", Quota: 10 * time.Second, Strategy: "secant"})
	s.StageDone(trace.StageRecord{
		Stage: 1, Blocks: 10, Remaining: 8 * time.Second,
		Estimate: 90, StdErr: 9, Interval: 18, Completed: true, InTime: true,
	})
	s.StageDone(trace.StageRecord{
		Stage: 2, Blocks: 20, Remaining: 4 * time.Second,
		Estimate: 100, StdErr: 4, Interval: 8, Completed: true, InTime: true,
	})
	// An aborted partial stage emits nothing by itself...
	s.StageDone(trace.StageRecord{Stage: 3, Blocks: 5, Completed: false})
	s.EndQuery(trace.QueryEnd{
		Stages: 2, Blocks: 35, Elapsed: 7 * time.Second,
		Estimate: 100, StdErr: 4, Interval: 8, StopReason: "ci-met",
	})
	if len(got) != 3 {
		t.Fatalf("want 3 pushes (2 stages + final), got %d", len(got))
	}
	if got[0].done || got[1].done || !got[2].done {
		t.Errorf("done flags wrong: %v %v %v", got[0].done, got[1].done, got[2].done)
	}
	if got[0].p.Estimate != 90 || got[0].p.Stages != 1 || got[0].p.Label != "alice/7" {
		t.Errorf("first push wrong: %+v", got[0].p)
	}
	if got[1].p.Estimate != 100 || got[1].p.Interval != 8 {
		t.Errorf("second push wrong: %+v", got[1].p)
	}
	fin := got[2].p
	if !fin.Done || fin.StopReason != "ci-met" || fin.Blocks != 35 || fin.Query != "sel(r)" {
		t.Errorf("final push wrong: %+v", fin)
	}
	// Nil stream is a no-op tracer.
	var nilStream *Stream
	if nilStream.Enabled() {
		t.Error("nil Stream reports Enabled")
	}
	nilStream.BeginQuery(trace.QueryInfo{})
	nilStream.StageDone(trace.StageRecord{Completed: true})
	nilStream.EndQuery(trace.QueryEnd{})
}
