package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tcq/internal/calib"
	"tcq/internal/trace"
)

// Source is what the telemetry server exports: the aggregate metrics
// registry plus the live progress registry's three views. tcq.DB
// satisfies it, as does the Sources value combining a Registry with a
// trace.Registry (the CLI path).
type Source interface {
	// Metrics snapshots the aggregate metrics registry.
	Metrics() trace.Snapshot
	// InFlight snapshots the queries currently evaluating.
	InFlight() []QueryProgress
	// History lists recently completed queries, most recent first.
	History() []QuerySummary
	// QueryStats lists per-query-shape aggregates.
	QueryStats() []ShapeStat
}

// CalibrationSource is the optional extension a Source may implement
// to light up the /calibration and /debug/flightrecorder endpoints.
// tcq.DB implements it (empty unless opened WithCalibration), as does
// Sources when its Calib field is set.
type CalibrationSource interface {
	// Calibration snapshots the calibration auditor's report.
	Calibration() calib.Report
	// FlightRecords lists the captured anomalous-query traces.
	FlightRecords() []calib.FlightRecord
}

// SLOSource is the optional extension a Source may implement to light
// up the /slo endpoint (the tcqd server implements it).
type SLOSource interface {
	// SLO snapshots per-tenant deadline-hit/miss accounting.
	SLO() SLOReport
}

// Sources pairs a progress Registry with a metrics registry (and an
// optional calibration Auditor) to form a Source (for servers not
// fronted by a tcq.DB, e.g. tcqbench).
type Sources struct {
	Progress *Registry
	Reg      *trace.Registry
	Calib    *calib.Auditor
}

// Metrics implements Source.
func (s Sources) Metrics() trace.Snapshot { return s.Reg.Snapshot() }

// InFlight implements Source.
func (s Sources) InFlight() []QueryProgress { return s.Progress.InFlight() }

// History implements Source.
func (s Sources) History() []QuerySummary { return s.Progress.History() }

// QueryStats implements Source.
func (s Sources) QueryStats() []ShapeStat { return s.Progress.QueryStats() }

// Calibration implements CalibrationSource (empty without an auditor).
func (s Sources) Calibration() calib.Report { return s.Calib.Report() }

// FlightRecords implements CalibrationSource.
func (s Sources) FlightRecords() []calib.FlightRecord { return s.Calib.FlightRecords() }

// Handler builds the telemetry HTTP handler:
//
//	/metrics      Prometheus text exposition (counters, gauges,
//	              histograms from the metrics registry, plus
//	              queries_in_flight; every family carries HELP/TYPE)
//	/queries      JSON: queries currently in flight, stage-by-stage state
//	              (?label=P keeps only labels with prefix P, e.g. a tenant)
//	/history      JSON: completed-query ring + per-shape aggregates
//	              (?label=P filters the ring the same way)
//	/calibration  JSON: CI-coverage + cost-model-drift audit report
//	/debug/flightrecorder  JSON: captured anomalous-query traces
//	/debug/pprof/...  the standard net/http/pprof handlers
//	/             plain-text index of the above
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, src.Metrics(), len(src.InFlight()))
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		qs := src.InFlight()
		if want := r.URL.Query().Get("label"); want != "" {
			kept := qs[:0]
			for _, q := range qs {
				if strings.HasPrefix(q.Label, want) {
					kept = append(kept, q)
				}
			}
			qs = kept
		}
		writeJSON(w, struct {
			Queries []QueryProgress `json:"queries"`
		}{qs})
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		hist := src.History()
		if want := r.URL.Query().Get("label"); want != "" {
			kept := hist[:0]
			for _, h := range hist {
				if strings.HasPrefix(h.Label, want) {
					kept = append(kept, h)
				}
			}
			hist = kept
		}
		writeJSON(w, struct {
			History []QuerySummary `json:"history"`
			Shapes  []ShapeStat    `json:"shapes"`
		}{hist, src.QueryStats()})
	})
	// Calibration endpoints answer with empty reports when the source
	// carries no auditor, so scrapers need not probe for support.
	mux.HandleFunc("/calibration", func(w http.ResponseWriter, r *http.Request) {
		var rep calib.Report
		if cs, ok := src.(CalibrationSource); ok {
			rep = cs.Calibration()
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		var recs []calib.FlightRecord
		if cs, ok := src.(CalibrationSource); ok {
			recs = cs.FlightRecords()
		}
		writeJSON(w, struct {
			Records []calib.FlightRecord `json:"records"`
		}{recs})
	})
	// /slo answers with an empty report when the source carries no SLO
	// accounting, mirroring the calibration endpoints.
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		var rep SLOReport
		if ss, ok := src.(SLOSource); ok {
			rep = ss.SLO()
		}
		if rep.Tenants == nil {
			rep.Tenants = []TenantSLO{}
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "tcq telemetry")
		fmt.Fprintln(w, "  /metrics               Prometheus text exposition")
		fmt.Fprintln(w, "  /queries               in-flight query progress (JSON)")
		fmt.Fprintln(w, "  /history               completed queries + per-shape stats (JSON)")
		fmt.Fprintln(w, "  /calibration           CI-coverage + cost-drift audit report (JSON)")
		fmt.Fprintln(w, "  /slo                   per-tenant deadline hit/miss + error-budget burn (JSON)")
		fmt.Fprintln(w, "  /debug/flightrecorder  captured anomalous-query traces (JSON)")
		fmt.Fprintln(w, "  /debug/pprof/          Go runtime profiles")
	})
	return mux
}

// RunningServer is a live telemetry (or query) server started by
// Serve: the http.Server plus the lifecycle bookkeeping that lets both
// shutdown paths coexist — context cancellation (the Ctrl-C path) and
// caller-managed Close/Shutdown — without leaking the shutdown-watcher
// goroutine, and without losing the drain error.
type RunningServer struct {
	srv  *http.Server
	addr string
	// serveDone closes when srv.Serve has returned (listener closed by
	// either Close, Shutdown, or the context watcher).
	serveDone chan struct{}
	// watchDone closes when the shutdown watcher has exited (closed
	// immediately when no watcher was needed).
	watchDone chan struct{}

	mu       sync.Mutex
	drainErr error
}

// serveGrace bounds the context-cancellation drain (overridable in
// tests).
var serveGrace = 5 * time.Second

// Addr returns the server's bound address (host:port).
func (rs *RunningServer) Addr() string { return rs.addr }

// Close force-closes the server: the listener and all active
// connections are closed immediately. The shutdown watcher, if any,
// observes the closed listener and exits — no goroutine leaks.
func (rs *RunningServer) Close() error { return rs.srv.Close() }

// Shutdown gracefully drains the server: the listener closes, in-flight
// requests finish (bounded by ctx), and the shutdown error — if the
// drain timed out — is returned and also retained for Err.
func (rs *RunningServer) Shutdown(ctx context.Context) error {
	err := rs.srv.Shutdown(ctx)
	rs.setDrainErr(err)
	return err
}

// Done returns a channel closed once the server and its shutdown
// watcher have both exited.
func (rs *RunningServer) Done() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		<-rs.serveDone
		<-rs.watchDone
		close(done)
	}()
	return done
}

// Wait blocks until the server and its shutdown watcher have exited
// and returns the drain error, if any (e.g. a context-cancellation
// drain whose grace period expired with streams still open).
func (rs *RunningServer) Wait() error {
	<-rs.serveDone
	<-rs.watchDone
	return rs.Err()
}

// Err returns the retained drain error (nil while the server runs and
// after a clean drain).
func (rs *RunningServer) Err() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.drainErr
}

func (rs *RunningServer) setDrainErr(err error) {
	if err == nil {
		return
	}
	rs.mu.Lock()
	if rs.drainErr == nil {
		rs.drainErr = err
	}
	rs.mu.Unlock()
}

// Serve starts the telemetry server on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns the running server plus the bound address.
// When ctx is cancelled the server shuts down gracefully — the listener
// closes and in-flight scrapes drain (bounded by a 5s grace period) —
// so Ctrl-C teardown never leaks the listener; a drain that times out
// is surfaced via Err/Wait. The caller may equally manage the
// lifecycle with Close or Shutdown: the shutdown watcher observes the
// server closing and exits either way, so it never outlives the
// server regardless of which path tore it down.
func Serve(ctx context.Context, src Source, addr string) (*RunningServer, string, error) {
	return ServeHandler(ctx, Handler(src), addr)
}

// ServeHandler is Serve over an arbitrary handler — the same
// listener/watcher lifecycle wrapped around a custom mux (the tcqd
// query service reuses it).
func ServeHandler(ctx context.Context, h http.Handler, addr string) (*RunningServer, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	rs := &RunningServer{
		srv:       &http.Server{Handler: h},
		addr:      ln.Addr().String(),
		serveDone: make(chan struct{}),
		watchDone: make(chan struct{}),
	}
	go func() {
		defer close(rs.serveDone)
		rs.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	}()
	// A never-cancelled context has a nil Done channel; skip the watcher
	// goroutine entirely rather than park one forever.
	if ctx != nil && ctx.Done() != nil {
		go func() {
			defer close(rs.watchDone)
			select {
			case <-ctx.Done():
				grace, cancel := context.WithTimeout(context.Background(), serveGrace)
				defer cancel()
				rs.setDrainErr(rs.srv.Shutdown(grace))
			case <-rs.serveDone:
				// The caller tore the server down via Close/Shutdown:
				// nothing to drain, just stop watching.
			}
		}()
	} else {
		close(rs.watchDone)
	}
	return rs, rs.addr, nil
}

// writeJSON writes v as indented JSON (deterministic: struct field
// order is fixed and map-free). The document is encoded into a buffer
// first, so an encoding failure yields a clean 500 instead of a
// half-written 200; the returned error reports an encoding failure or
// a failed write (client gone).
func writeJSON(w http.ResponseWriter, v interface{}) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, "telemetry: encoding response failed", http.StatusInternalServerError)
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	_, err := w.Write(buf.Bytes())
	return err
}

// promHelp maps registry keys to the HELP text emitted on /metrics.
// Keys missing here fall back to a generic description, so every
// family always carries a HELP line.
var promHelp = map[string]string{
	"queries":                            "estimate runs completed on this session",
	"stages":                             "adaptive sampling stages executed across all queries",
	"quota_overruns":                     "queries that exceeded their time quota",
	"blocks_read":                        "disk blocks charged to session clocks",
	"pages_written":                      "temp/output pages written",
	"temp_bytes":                         "bytes written to temp or output files",
	"comparisons":                        "sort/merge tuple comparisons",
	"deadline_polls":                     "hard-deadline expiry checks",
	"queries_in_flight":                  "estimate runs currently executing (engine gauge)",
	"coverage_fraction":                  "final sampled fraction d/D per query",
	"stages_per_query":                   "stages completed per query",
	"blocks_per_query":                   "sample blocks drawn per query",
	"utilization":                        "fraction of quota spent productively per query",
	"calibration_queries":                "queries audited by the calibration subsystem",
	"calibration_truth_checks":           "audited queries with known ground truth",
	"calibration_truth_hits":             "ground-truth checks where the CI covered the truth",
	"calibration_truth_misses":           "ground-truth checks where the CI missed the truth",
	"calibration_truth_degenerate":       "ground-truth checks with no usable CI (zero width, wrong estimate)",
	"calibration_anomaly_degenerate_ci":  "flight captures triggered by a degenerate zero-width CI",
	"calibration_drift_ratio":            "actual/predicted stage cost ratio (cost-model drift)",
	"calibration_flight_captures":        "anomalous queries captured by the flight recorder",
	"calibration_anomaly_ci_miss":        "flight captures triggered by a ground-truth CI miss",
	"calibration_anomaly_deadline_abort": "flight captures triggered by a hard-deadline abort",
	"calibration_anomaly_overspend":      "flight captures triggered by overspend past threshold",
	"calibration_anomaly_slo_miss":       "flight captures triggered by a wire-to-wire SLO miss",
	"slo_hits":                           "time-constrained requests that met their deadline, per tenant",
	"slo_misses":                         "time-constrained requests that missed their deadline, per tenant",
	"slo_infeasible":                     "admission rejections no schedule could satisfy, per tenant",
	"slo_miss_span":                      "deadline misses attributed to their dominant span",
	"slo_budget_burn":                    "error-budget burn rate (miss rate over allowed miss rate), per tenant",
	"telemetry_queries_in_flight":        "queries tracked by the progress registry right now",
	"catalog_lookups":                    "queries resolved against the sample catalog",
	"catalog_hits":                       "catalog lookups that reused a materialized sample",
	"catalog_misses":                     "catalog lookups that fell through to live sampling",
	"catalog_stale":                      "catalog misses caused by a stale (resized) relation entry",
	"catalog_blocks_reused":              "sample blocks served from catalog permutations",
	"catalog_bytes_reused":               "bytes of sample data served from catalog permutations",
}

// helpFor returns the HELP text for a registry key.
func helpFor(key string) string {
	if h, ok := promHelp[key]; ok {
		return h
	}
	return "tcq metric " + key
}

// writeProm renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters become tcq_<name>_total,
// gauges tcq_<name>, and the registry's log2-bucket histograms proper
// Prometheus histograms with cumulative le buckets. Registry keys
// built with Labeled ("name|k=v,...") render as label sets on the base
// family, so per-tenant series share one family. Every family is
// preceded by its # HELP and # TYPE lines exactly once; families are
// emitted in lexical base-name order per kind, series within a family
// in lexical label order (unlabeled first), so output for equal state
// is byte-identical — and identical to the pre-label renderer when no
// key carries labels. inflight is the progress registry's live
// occupancy, exported as tcq_telemetry_queries_in_flight (distinct
// from any engine-maintained queries_in_flight gauge in the snapshot).
func writeProm(w io.Writer, snap trace.Snapshot, inflight int) {
	for _, fam := range promFamilies(snap.Counters) {
		name := promName(fam.base) + "_total"
		fmt.Fprintf(w, "# HELP %s %s\n", name, helpFor(fam.base))
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		for _, s := range fam.series {
			fmt.Fprintf(w, "%s%s %d\n", name, s.labels, snap.Counters[s.key])
		}
	}
	fmt.Fprintf(w, "# HELP tcq_telemetry_queries_in_flight %s\n", helpFor("telemetry_queries_in_flight"))
	fmt.Fprintf(w, "# TYPE tcq_telemetry_queries_in_flight gauge\n")
	fmt.Fprintf(w, "tcq_telemetry_queries_in_flight %d\n", inflight)
	for _, fam := range promFamilies(snap.Gauges) {
		name := promName(fam.base)
		fmt.Fprintf(w, "# HELP %s %s\n", name, helpFor(fam.base))
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		for _, s := range fam.series {
			fmt.Fprintf(w, "%s%s %s\n", name, s.labels, promFloat(snap.Gauges[s.key]))
		}
	}
	for _, fam := range promFamilies(snap.Histograms) {
		name := promName(fam.base)
		fmt.Fprintf(w, "# HELP %s %s\n", name, helpFor(fam.base))
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		for _, s := range fam.series {
			h := snap.Histograms[s.key]
			// Histogram series merge the le label into any key labels:
			// {tenant="a",le="2"}.
			extra := ""
			if s.labels != "" {
				extra = strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}") + ","
			}
			var cum int64
			for _, b := range promBuckets(h.Buckets) {
				cum += b.count
				fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extra, promFloat(b.le), cum)
			}
			fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extra, h.Count)
			fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, promFloat(h.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count)
		}
	}
}

// promSeries is one sample line inside a family: the registry key it
// reads from plus its rendered label set ("" or `{k="v",...}`).
type promSeries struct {
	key    string
	labels string
}

// promFamily groups every series sharing one base metric name.
type promFamily struct {
	base   string
	series []promSeries
}

// promFamilies groups a snapshot map's keys into label families: the
// key's base name (before any Labeled separator) names the family, the
// remainder renders as Prometheus labels. Families sort by base name,
// series within a family by rendered labels (unlabeled first), so the
// exposition is deterministic.
func promFamilies[V any](m map[string]V) []promFamily {
	byBase := make(map[string]*promFamily)
	for key := range m {
		base, spec, _ := strings.Cut(key, labelSep)
		fam := byBase[base]
		if fam == nil {
			fam = &promFamily{base: base}
			byBase[base] = fam
		}
		fam.series = append(fam.series, promSeries{key: key, labels: promLabels(spec)})
	}
	out := make([]promFamily, 0, len(byBase))
	for _, fam := range byBase {
		sort.Slice(fam.series, func(i, j int) bool { return fam.series[i].labels < fam.series[j].labels })
		out = append(out, *fam)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].base < out[j].base })
	return out
}

// promLabels renders a Labeled key's "k=v,k2=v2" spec as a Prometheus
// label set, escaping values via strconv.Quote.
func promLabels(spec string) string {
	if spec == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, pair := range strings.Split(spec, ",") {
		if i > 0 {
			b.WriteByte(',')
		}
		k, v, _ := strings.Cut(pair, "=")
		b.WriteString(promLabelName(k))
		b.WriteByte('=')
		b.WriteString(strconv.Quote(v))
	}
	b.WriteByte('}')
	return b.String()
}

// promName maps a registry key to a legal Prometheus metric name under
// the tcq_ namespace.
func promName(key string) string {
	var b strings.Builder
	b.WriteString("tcq_")
	b.WriteString(promLabelName(key))
	return b.String()
}

// promLabelName sanitizes a name to the [a-zA-Z0-9_] charset.
func promLabelName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the exposition format accepts.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

type promBucket struct {
	le    float64
	count int64
}

// promBuckets converts the registry's sparse "le_<bound>" bucket map to
// ascending-bound order for cumulative rendering.
func promBuckets(m map[string]int64) []promBucket {
	out := make([]promBucket, 0, len(m))
	for k, n := range m {
		bound, err := strconv.ParseFloat(strings.TrimPrefix(k, "le_"), 64)
		if err != nil {
			continue
		}
		out = append(out, promBucket{le: bound, count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out
}

// sortedKeys returns m's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
