package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"tcq/internal/trace"
)

// Source is what the telemetry server exports: the aggregate metrics
// registry plus the live progress registry's three views. tcq.DB
// satisfies it, as does the Sources value combining a Registry with a
// trace.Registry (the CLI path).
type Source interface {
	// Metrics snapshots the aggregate metrics registry.
	Metrics() trace.Snapshot
	// InFlight snapshots the queries currently evaluating.
	InFlight() []QueryProgress
	// History lists recently completed queries, most recent first.
	History() []QuerySummary
	// QueryStats lists per-query-shape aggregates.
	QueryStats() []ShapeStat
}

// Sources pairs a progress Registry with a metrics registry to form a
// Source (for servers not fronted by a tcq.DB, e.g. tcqbench).
type Sources struct {
	Progress *Registry
	Reg      *trace.Registry
}

// Metrics implements Source.
func (s Sources) Metrics() trace.Snapshot { return s.Reg.Snapshot() }

// InFlight implements Source.
func (s Sources) InFlight() []QueryProgress { return s.Progress.InFlight() }

// History implements Source.
func (s Sources) History() []QuerySummary { return s.Progress.History() }

// QueryStats implements Source.
func (s Sources) QueryStats() []ShapeStat { return s.Progress.QueryStats() }

// Handler builds the telemetry HTTP handler:
//
//	/metrics   Prometheus text exposition (counters, gauges, histograms
//	           from the metrics registry, plus queries_in_flight)
//	/queries   JSON: queries currently in flight, stage-by-stage state
//	/history   JSON: completed-query ring + per-shape aggregates
//	/debug/pprof/...  the standard net/http/pprof handlers
//	/          plain-text index of the above
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, src.Metrics(), len(src.InFlight()))
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Queries []QueryProgress `json:"queries"`
		}{src.InFlight()})
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			History []QuerySummary `json:"history"`
			Shapes  []ShapeStat    `json:"shapes"`
		}{src.History(), src.QueryStats()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "tcq telemetry")
		fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
		fmt.Fprintln(w, "  /queries       in-flight query progress (JSON)")
		fmt.Fprintln(w, "  /history       completed queries + per-shape stats (JSON)")
		fmt.Fprintln(w, "  /debug/pprof/  Go runtime profiles")
	})
	return mux
}

// Serve starts the telemetry server on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns the running server plus the bound address.
// Shut it down with srv.Close or srv.Shutdown.
func Serve(src Source, addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(src)}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return srv, ln.Addr().String(), nil
}

// writeJSON writes v as indented JSON (deterministic: struct field
// order is fixed and map-free).
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone, nothing to do
}

// writeProm renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters become tcq_<name>_total,
// gauges tcq_<name>, and the registry's log2-bucket histograms proper
// Prometheus histograms with cumulative le buckets. Families are
// emitted in lexical key order per kind, so output for equal state is
// byte-identical. inflight is the progress registry's live occupancy,
// exported as tcq_telemetry_queries_in_flight (distinct from any
// engine-maintained queries_in_flight gauge in the snapshot).
func writeProm(w io.Writer, snap trace.Snapshot, inflight int) {
	for _, k := range sortedKeys(snap.Counters) {
		name := promName(k) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, snap.Counters[k])
	}
	fmt.Fprintf(w, "# TYPE tcq_telemetry_queries_in_flight gauge\n")
	fmt.Fprintf(w, "tcq_telemetry_queries_in_flight %d\n", inflight)
	for _, k := range sortedKeys(snap.Gauges) {
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %s\n", name, promFloat(snap.Gauges[k]))
	}
	for _, k := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[k]
		name := promName(k)
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		var cum int64
		for _, b := range promBuckets(h.Buckets) {
			cum += b.count
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b.le), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}

// promName maps a registry key to a legal Prometheus metric name under
// the tcq_ namespace.
func promName(key string) string {
	var b strings.Builder
	b.WriteString("tcq_")
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the exposition format accepts.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

type promBucket struct {
	le    float64
	count int64
}

// promBuckets converts the registry's sparse "le_<bound>" bucket map to
// ascending-bound order for cumulative rendering.
func promBuckets(m map[string]int64) []promBucket {
	out := make([]promBucket, 0, len(m))
	for k, n := range m {
		bound, err := strconv.ParseFloat(strings.TrimPrefix(k, "le_"), 64)
		if err != nil {
			continue
		}
		out = append(out, promBucket{le: bound, count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out
}

// sortedKeys returns m's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
