package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"tcq/internal/calib"
	"tcq/internal/trace"
)

// Source is what the telemetry server exports: the aggregate metrics
// registry plus the live progress registry's three views. tcq.DB
// satisfies it, as does the Sources value combining a Registry with a
// trace.Registry (the CLI path).
type Source interface {
	// Metrics snapshots the aggregate metrics registry.
	Metrics() trace.Snapshot
	// InFlight snapshots the queries currently evaluating.
	InFlight() []QueryProgress
	// History lists recently completed queries, most recent first.
	History() []QuerySummary
	// QueryStats lists per-query-shape aggregates.
	QueryStats() []ShapeStat
}

// CalibrationSource is the optional extension a Source may implement
// to light up the /calibration and /debug/flightrecorder endpoints.
// tcq.DB implements it (empty unless opened WithCalibration), as does
// Sources when its Calib field is set.
type CalibrationSource interface {
	// Calibration snapshots the calibration auditor's report.
	Calibration() calib.Report
	// FlightRecords lists the captured anomalous-query traces.
	FlightRecords() []calib.FlightRecord
}

// Sources pairs a progress Registry with a metrics registry (and an
// optional calibration Auditor) to form a Source (for servers not
// fronted by a tcq.DB, e.g. tcqbench).
type Sources struct {
	Progress *Registry
	Reg      *trace.Registry
	Calib    *calib.Auditor
}

// Metrics implements Source.
func (s Sources) Metrics() trace.Snapshot { return s.Reg.Snapshot() }

// InFlight implements Source.
func (s Sources) InFlight() []QueryProgress { return s.Progress.InFlight() }

// History implements Source.
func (s Sources) History() []QuerySummary { return s.Progress.History() }

// QueryStats implements Source.
func (s Sources) QueryStats() []ShapeStat { return s.Progress.QueryStats() }

// Calibration implements CalibrationSource (empty without an auditor).
func (s Sources) Calibration() calib.Report { return s.Calib.Report() }

// FlightRecords implements CalibrationSource.
func (s Sources) FlightRecords() []calib.FlightRecord { return s.Calib.FlightRecords() }

// Handler builds the telemetry HTTP handler:
//
//	/metrics      Prometheus text exposition (counters, gauges,
//	              histograms from the metrics registry, plus
//	              queries_in_flight; every family carries HELP/TYPE)
//	/queries      JSON: queries currently in flight, stage-by-stage state
//	/history      JSON: completed-query ring + per-shape aggregates
//	/calibration  JSON: CI-coverage + cost-model-drift audit report
//	/debug/flightrecorder  JSON: captured anomalous-query traces
//	/debug/pprof/...  the standard net/http/pprof handlers
//	/             plain-text index of the above
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, src.Metrics(), len(src.InFlight()))
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Queries []QueryProgress `json:"queries"`
		}{src.InFlight()})
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			History []QuerySummary `json:"history"`
			Shapes  []ShapeStat    `json:"shapes"`
		}{src.History(), src.QueryStats()})
	})
	// Calibration endpoints answer with empty reports when the source
	// carries no auditor, so scrapers need not probe for support.
	mux.HandleFunc("/calibration", func(w http.ResponseWriter, r *http.Request) {
		var rep calib.Report
		if cs, ok := src.(CalibrationSource); ok {
			rep = cs.Calibration()
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		var recs []calib.FlightRecord
		if cs, ok := src.(CalibrationSource); ok {
			recs = cs.FlightRecords()
		}
		writeJSON(w, struct {
			Records []calib.FlightRecord `json:"records"`
		}{recs})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "tcq telemetry")
		fmt.Fprintln(w, "  /metrics               Prometheus text exposition")
		fmt.Fprintln(w, "  /queries               in-flight query progress (JSON)")
		fmt.Fprintln(w, "  /history               completed queries + per-shape stats (JSON)")
		fmt.Fprintln(w, "  /calibration           CI-coverage + cost-drift audit report (JSON)")
		fmt.Fprintln(w, "  /debug/flightrecorder  captured anomalous-query traces (JSON)")
		fmt.Fprintln(w, "  /debug/pprof/          Go runtime profiles")
	})
	return mux
}

// Serve starts the telemetry server on addr (e.g. ":8080" or
// "127.0.0.1:0") and returns the running server plus the bound address.
// When ctx is cancelled the server shuts down gracefully — the listener
// closes and in-flight scrapes drain (bounded by a 5s grace period) —
// so Ctrl-C teardown never leaks the listener. Pass
// context.Background() (or any context that is never cancelled) to
// manage the lifecycle manually with srv.Close or srv.Shutdown.
func Serve(ctx context.Context, src Source, addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(src)}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	// A never-cancelled context has a nil Done channel; skip the watcher
	// goroutine entirely rather than park one forever.
	if ctx != nil && ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			grace, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(grace) //nolint:errcheck // best-effort drain
		}()
	}
	return srv, ln.Addr().String(), nil
}

// writeJSON writes v as indented JSON (deterministic: struct field
// order is fixed and map-free).
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone, nothing to do
}

// promHelp maps registry keys to the HELP text emitted on /metrics.
// Keys missing here fall back to a generic description, so every
// family always carries a HELP line.
var promHelp = map[string]string{
	"queries":                            "estimate runs completed on this session",
	"stages":                             "adaptive sampling stages executed across all queries",
	"quota_overruns":                     "queries that exceeded their time quota",
	"blocks_read":                        "disk blocks charged to session clocks",
	"pages_written":                      "temp/output pages written",
	"temp_bytes":                         "bytes written to temp or output files",
	"comparisons":                        "sort/merge tuple comparisons",
	"deadline_polls":                     "hard-deadline expiry checks",
	"queries_in_flight":                  "estimate runs currently executing (engine gauge)",
	"coverage_fraction":                  "final sampled fraction d/D per query",
	"stages_per_query":                   "stages completed per query",
	"blocks_per_query":                   "sample blocks drawn per query",
	"utilization":                        "fraction of quota spent productively per query",
	"calibration_queries":                "queries audited by the calibration subsystem",
	"calibration_truth_checks":           "audited queries with known ground truth",
	"calibration_truth_hits":             "ground-truth checks where the CI covered the truth",
	"calibration_truth_misses":           "ground-truth checks where the CI missed the truth",
	"calibration_truth_degenerate":       "ground-truth checks with no usable CI (zero width, wrong estimate)",
	"calibration_anomaly_degenerate_ci":  "flight captures triggered by a degenerate zero-width CI",
	"calibration_drift_ratio":            "actual/predicted stage cost ratio (cost-model drift)",
	"calibration_flight_captures":        "anomalous queries captured by the flight recorder",
	"calibration_anomaly_ci_miss":        "flight captures triggered by a ground-truth CI miss",
	"calibration_anomaly_deadline_abort": "flight captures triggered by a hard-deadline abort",
	"calibration_anomaly_overspend":      "flight captures triggered by overspend past threshold",
	"telemetry_queries_in_flight":        "queries tracked by the progress registry right now",
	"catalog_lookups":                    "queries resolved against the sample catalog",
	"catalog_hits":                       "catalog lookups that reused a materialized sample",
	"catalog_misses":                     "catalog lookups that fell through to live sampling",
	"catalog_stale":                      "catalog misses caused by a stale (resized) relation entry",
	"catalog_blocks_reused":              "sample blocks served from catalog permutations",
	"catalog_bytes_reused":               "bytes of sample data served from catalog permutations",
}

// helpFor returns the HELP text for a registry key.
func helpFor(key string) string {
	if h, ok := promHelp[key]; ok {
		return h
	}
	return "tcq metric " + key
}

// writeProm renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters become tcq_<name>_total,
// gauges tcq_<name>, and the registry's log2-bucket histograms proper
// Prometheus histograms with cumulative le buckets. Every family is
// preceded by its # HELP and # TYPE lines, and families are emitted in
// lexical key order per kind, so output for equal state is
// byte-identical. inflight is the progress registry's live occupancy,
// exported as tcq_telemetry_queries_in_flight (distinct from any
// engine-maintained queries_in_flight gauge in the snapshot).
func writeProm(w io.Writer, snap trace.Snapshot, inflight int) {
	for _, k := range sortedKeys(snap.Counters) {
		name := promName(k) + "_total"
		fmt.Fprintf(w, "# HELP %s %s\n", name, helpFor(k))
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, snap.Counters[k])
	}
	fmt.Fprintf(w, "# HELP tcq_telemetry_queries_in_flight %s\n", helpFor("telemetry_queries_in_flight"))
	fmt.Fprintf(w, "# TYPE tcq_telemetry_queries_in_flight gauge\n")
	fmt.Fprintf(w, "tcq_telemetry_queries_in_flight %d\n", inflight)
	for _, k := range sortedKeys(snap.Gauges) {
		name := promName(k)
		fmt.Fprintf(w, "# HELP %s %s\n", name, helpFor(k))
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %s\n", name, promFloat(snap.Gauges[k]))
	}
	for _, k := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[k]
		name := promName(k)
		fmt.Fprintf(w, "# HELP %s %s\n", name, helpFor(k))
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		var cum int64
		for _, b := range promBuckets(h.Buckets) {
			cum += b.count
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b.le), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
}

// promName maps a registry key to a legal Prometheus metric name under
// the tcq_ namespace.
func promName(key string) string {
	var b strings.Builder
	b.WriteString("tcq_")
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the exposition format accepts.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

type promBucket struct {
	le    float64
	count int64
}

// promBuckets converts the registry's sparse "le_<bound>" bucket map to
// ascending-bound order for cumulative rendering.
func promBuckets(m map[string]int64) []promBucket {
	out := make([]promBucket, 0, len(m))
	for k, n := range m {
		bound, err := strconv.ParseFloat(strings.TrimPrefix(k, "le_"), 64)
		if err != nil {
			continue
		}
		out = append(out, promBucket{le: bound, count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out
}

// sortedKeys returns m's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
