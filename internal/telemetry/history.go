package telemetry

import (
	"sort"
	"time"

	"tcq/internal/stats"
)

// QuerySummary is one completed query's retained outcome — the history
// ring's unit, a compact digest of a trace.QueryEnd plus identity.
type QuerySummary struct {
	ID          int64         `json:"id"`
	Label       string        `json:"label,omitempty"`
	Query       string        `json:"query"`
	Quota       time.Duration `json:"quota_ns"`
	Stages      int           `json:"stages"`
	Blocks      int           `json:"blocks"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	Utilization float64       `json:"utilization"`
	Estimate    float64       `json:"estimate"`
	StdErr      float64       `json:"stderr"`
	Interval    float64       `json:"interval"`
	// Catalog is "hit" for a warm sample-catalog run (empty when the
	// run drew live samples).
	Catalog    string        `json:"catalog,omitempty"`
	StopReason string        `json:"stop_reason"`
	Overspent  bool          `json:"overspent,omitempty"`
	Overrun    time.Duration `json:"overrun_ns,omitempty"`
}

// ShapeStat aggregates every completed run of one query shape (keyed by
// its RA text) — the pg_stat_statements view: how often the shape runs,
// how many stages it takes, how far the cost predictor misses, and how
// tight the CI is when it stops.
type ShapeStat struct {
	Query string `json:"query"`
	// Calls counts completed runs; TotalStages their stage sum.
	Calls       int64 `json:"calls"`
	TotalStages int64 `json:"total_stages"`
	TotalBlocks int64 `json:"total_blocks"`
	// MeanStages is TotalStages/Calls.
	MeanStages float64 `json:"mean_stages"`
	// MeanOvershoot averages the per-stage risk margin
	// actual/predicted − 1 across every predicted stage of every call.
	MeanOvershoot float64 `json:"mean_overshoot"`
	// MeanCIWidth averages the CI half-width at stop.
	MeanCIWidth float64 `json:"mean_ci_width"`
	// Overspends counts calls that exceeded their quota.
	Overspends int64 `json:"overspends"`
	// WorstOvershoot is the largest single-stage cost-prediction
	// overshoot (actual/predicted − 1) seen across every call — the
	// shape's drift high-water mark.
	WorstOvershoot float64 `json:"worst_overshoot,omitempty"`
	// TruthN/TruthHits count calls audited against a declared ground
	// truth (Handle.SetTruth / EstimateOptions.GroundTruth) and those
	// whose final interval covered it. Coverage is the realized rate;
	// [CoverageLo, CoverageHi] its Wilson 95% score interval — the
	// empirical check on the nominal confidence level.
	TruthN     int64   `json:"truth_n,omitempty"`
	TruthHits  int64   `json:"truth_hits,omitempty"`
	Coverage   float64 `json:"coverage,omitempty"`
	CoverageLo float64 `json:"coverage_lo,omitempty"`
	CoverageHi float64 `json:"coverage_hi,omitempty"`
}

// shapeAgg is the mutable accumulator behind a ShapeStat.
type shapeAgg struct {
	calls          int64
	stages         int64
	blocks         int64
	overshootSum   float64
	overshootN     int64
	worstOvershoot float64
	truthN         int64
	truthHits      int64
	ciWidthSum     float64
	overspends     int64
}

// ring is a fixed-capacity overwrite-oldest buffer of query summaries.
type ring struct {
	buf   []QuerySummary
	next  int // insertion cursor
	count int // valid entries (≤ len(buf))
}

func newRing(n int) ring { return ring{buf: make([]QuerySummary, n)} }

func (r *ring) push(s QuerySummary) {
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// list returns the retained summaries, most recent first.
func (r *ring) list() []QuerySummary {
	out := make([]QuerySummary, 0, r.count)
	for i := 1; i <= r.count; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// History returns the retained completed-query summaries, most recent
// first (bounded by the registry's history size).
func (r *Registry) History() []QuerySummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.history.list()
}

// QueryStats returns the per-query-shape aggregates, sorted by calls
// descending then query text (a stable, diff-friendly order).
func (r *Registry) QueryStats() []ShapeStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]ShapeStat, 0, len(r.shapes))
	for q, a := range r.shapes {
		s := ShapeStat{
			Query:          q,
			Calls:          a.calls,
			TotalStages:    a.stages,
			TotalBlocks:    a.blocks,
			Overspends:     a.overspends,
			WorstOvershoot: a.worstOvershoot,
			TruthN:         a.truthN,
			TruthHits:      a.truthHits,
		}
		if a.calls > 0 {
			s.MeanStages = float64(a.stages) / float64(a.calls)
			s.MeanCIWidth = a.ciWidthSum / float64(a.calls)
		}
		if a.overshootN > 0 {
			s.MeanOvershoot = a.overshootSum / float64(a.overshootN)
		}
		if a.truthN > 0 {
			s.Coverage = float64(a.truthHits) / float64(a.truthN)
			s.CoverageLo, s.CoverageHi = stats.Wilson(a.truthHits, a.truthN, 0.95)
		}
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Calls != out[j].Calls {
			return out[i].Calls > out[j].Calls
		}
		return out[i].Query < out[j].Query
	})
	return out
}
