package telemetry

import (
	"log/slog"
	"time"
)

// Logger emits structured engine events through log/slog. Every method
// is safe on a nil receiver and costs one nil check when logging is
// disabled — the engine threads a *Logger unconditionally and pays
// nothing unless one is attached.
//
// Events: query start/stage/finish (the admission-to-completion life
// cycle of one estimate), transaction admission decisions, and deadline
// misses.
type Logger struct {
	s *slog.Logger
}

// NewLogger wraps a slog logger; nil yields a disabled Logger.
func NewLogger(s *slog.Logger) *Logger {
	if s == nil {
		return nil
	}
	return &Logger{s: s}
}

// Enabled reports whether events will actually be emitted.
func (l *Logger) Enabled() bool { return l != nil && l.s != nil }

// QueryStarted logs a query entering evaluation.
func (l *Logger) QueryStarted(id int64, label, query string, quota time.Duration) {
	if !l.Enabled() {
		return
	}
	l.s.Info("query started", "id", id, "label", label, "query", query, "quota", quota)
}

// StageDone logs one completed stage of a running query.
func (l *Logger) StageDone(id int64, stage int, estimate, interval float64, remaining time.Duration) {
	if !l.Enabled() {
		return
	}
	l.s.Debug("stage done", "id", id, "stage", stage,
		"estimate", estimate, "interval", interval, "remaining", remaining)
}

// QueryFinished logs a query's final outcome; quota overruns log at
// Warn so deadline trouble stands out of an Info-level stream.
func (l *Logger) QueryFinished(id int64, stopReason string, estimate, interval float64,
	stages int, elapsed time.Duration, overspent bool, overrun time.Duration) {
	if !l.Enabled() {
		return
	}
	if overspent {
		l.s.Warn("query overspent", "id", id, "stop", stopReason,
			"estimate", estimate, "interval", interval,
			"stages", stages, "elapsed", elapsed, "overrun", overrun)
		return
	}
	l.s.Info("query finished", "id", id, "stop", stopReason,
		"estimate", estimate, "interval", interval,
		"stages", stages, "elapsed", elapsed)
}

// TxnAdmitted logs a transaction passing admission control.
func (l *Logger) TxnAdmitted(txn int, wcet, deadline time.Duration) {
	if !l.Enabled() {
		return
	}
	l.s.Info("txn admitted", "txn", txn, "wcet", wcet, "deadline", deadline)
}

// TxnRejected logs an admission-control rejection.
func (l *Logger) TxnRejected(txn int, wcet, deadline time.Duration) {
	if !l.Enabled() {
		return
	}
	l.s.Warn("txn rejected", "txn", txn, "wcet", wcet, "deadline", deadline)
}

// TxnFinished logs a transaction's completion; deadline misses log at
// Warn.
func (l *Logger) TxnFinished(txn int, met bool, started, finished, deadline time.Duration) {
	if !l.Enabled() {
		return
	}
	if !met {
		l.s.Warn("txn missed deadline", "txn", txn,
			"started", started, "finished", finished, "deadline", deadline)
		return
	}
	l.s.Info("txn finished", "txn", txn,
		"started", started, "finished", finished, "deadline", deadline)
}
