package telemetry

import (
	"bytes"
	"io"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"tcq/internal/trace"
)

// feedQuery drives a handle through a canned two-stage query.
func feedQuery(h *Handle, query string, estimate float64, overspent bool) {
	h.BeginQuery(trace.QueryInfo{
		Query: query, Quota: 10 * time.Second, Strategy: "one-at-a-time",
		Mode: "overrun", Plan: "full", Sampling: "cluster", Seed: 7,
	})
	h.StageDone(trace.StageRecord{
		Stage: 1, Fraction: 0.05, Blocks: 10, Predicted: time.Second,
		Actual: 1200 * time.Millisecond, Overshoot: 0.2,
		Remaining: 8 * time.Second,
		Relations: []trace.RelationDraw{{Relation: "r", Blocks: 10, Tuples: 50, CumBlocks: 10, CumFraction: 0.05}},
		Estimate:  estimate * 0.9, StdErr: 30, Interval: 60,
		Completed: true, InTime: true,
	})
	h.StageDone(trace.StageRecord{
		Stage: 2, Fraction: 0.2, Blocks: 40, Predicted: 4 * time.Second,
		Actual: 5 * time.Second, Overshoot: 0.25,
		Remaining: 3 * time.Second,
		Relations: []trace.RelationDraw{{Relation: "r", Blocks: 40, Tuples: 200, CumBlocks: 50, CumFraction: 0.25}},
		Estimate:  estimate, StdErr: 20, Interval: 40,
		Completed: true, InTime: true,
	})
	h.EndQuery(trace.QueryEnd{
		Stages: 2, Blocks: 50, Elapsed: 7 * time.Second,
		Successful: 7 * time.Second, Utilization: 0.7,
		Overspent: overspent, StopReason: "quota exhausted",
		Estimate: estimate, StdErr: 20, Interval: 40,
	})
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(4)
	h := r.Track("trial 0")
	if got := r.InFlight(); len(got) != 0 {
		t.Fatalf("handle visible before BeginQuery: %+v", got)
	}
	h.BeginQuery(trace.QueryInfo{Query: "select(r, a < 10)", Quota: 10 * time.Second})
	h.StageDone(trace.StageRecord{
		Stage: 1, Fraction: 0.1, Blocks: 12, Remaining: 6 * time.Second,
		Relations: []trace.RelationDraw{{Relation: "r", Blocks: 12, Tuples: 60, CumBlocks: 12, CumFraction: 0.1}},
		Estimate:  950, StdErr: 40, Interval: 80, Completed: true, InTime: true,
	})

	inflight := r.InFlight()
	if len(inflight) != 1 {
		t.Fatalf("want 1 in-flight query, got %d", len(inflight))
	}
	p := inflight[0]
	if p.ID != 1 || p.Label != "trial 0" || p.Query != "select(r, a < 10)" {
		t.Errorf("identity wrong: %+v", p)
	}
	if p.Stages != 1 || p.Blocks != 12 || p.Done {
		t.Errorf("stage state wrong: %+v", p)
	}
	if p.Elapsed != 4*time.Second || p.SpentFrac != 0.4 {
		t.Errorf("quota accounting wrong: elapsed=%v spent=%v", p.Elapsed, p.SpentFrac)
	}
	if len(p.Relations) != 1 || p.Relations[0].Coverage != 0.1 {
		t.Errorf("relations wrong: %+v", p.Relations)
	}
	if p.Estimate != 950 || p.Interval != 80 {
		t.Errorf("estimate wrong: %+v", p)
	}

	h.EndQuery(trace.QueryEnd{
		Stages: 1, Blocks: 12, Elapsed: 4 * time.Second,
		Utilization: 0.4, StopReason: "quota exhausted", Estimate: 950, StdErr: 40, Interval: 80,
	})
	if got := r.InFlight(); len(got) != 0 {
		t.Fatalf("finished query still in flight: %+v", got)
	}
	hist := r.History()
	if len(hist) != 1 || hist[0].StopReason != "quota exhausted" || hist[0].Stages != 1 {
		t.Fatalf("history wrong: %+v", hist)
	}
}

func TestHistoryRingEviction(t *testing.T) {
	r := NewRegistry(3)
	for i := 0; i < 5; i++ {
		feedQuery(r.Track(""), "q", float64(100+i), false)
	}
	hist := r.History()
	if len(hist) != 3 {
		t.Fatalf("ring should keep 3, got %d", len(hist))
	}
	// Most recent first: estimates 104, 103, 102.
	for i, want := range []float64{104, 103, 102} {
		if hist[i].Estimate != want {
			t.Errorf("hist[%d].Estimate = %g, want %g", i, hist[i].Estimate, want)
		}
	}
}

func TestShapeStats(t *testing.T) {
	r := NewRegistry(8)
	feedQuery(r.Track(""), "select(r, a < 10)", 100, false)
	feedQuery(r.Track(""), "select(r, a < 10)", 110, true)
	feedQuery(r.Track(""), "join(r, s, a = a)", 500, false)

	stats := r.QueryStats()
	if len(stats) != 2 {
		t.Fatalf("want 2 shapes, got %d: %+v", len(stats), stats)
	}
	// Sorted by calls descending.
	s := stats[0]
	if s.Query != "select(r, a < 10)" || s.Calls != 2 || s.TotalStages != 4 {
		t.Fatalf("shape 0 wrong: %+v", s)
	}
	if s.MeanStages != 2 || s.Overspends != 1 || s.MeanCIWidth != 40 {
		t.Errorf("shape aggregates wrong: %+v", s)
	}
	// Each call contributes stage overshoots 0.2 and 0.25.
	if diff := s.MeanOvershoot - 0.225; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("MeanOvershoot = %g, want 0.225", s.MeanOvershoot)
	}
}

func TestDiscardDropsFailedQuery(t *testing.T) {
	r := NewRegistry(4)
	h := r.Track("doomed")
	h.BeginQuery(trace.QueryInfo{Query: "select(r, a < 1)", Quota: time.Second})
	h.Discard()
	if got := r.InFlight(); len(got) != 0 {
		t.Fatalf("discarded query still in flight: %+v", got)
	}
	if got := r.History(); len(got) != 0 {
		t.Fatalf("discarded query entered history: %+v", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	h := r.Track("x")
	if h != nil {
		t.Fatal("nil registry should hand out nil handles")
	}
	// Every operation on nil registry/handle/logger must be a no-op.
	h.BeginQuery(trace.QueryInfo{})
	h.StageDone(trace.StageRecord{})
	h.EndQuery(trace.QueryEnd{})
	h.Discard()
	if h.Enabled() {
		t.Error("nil handle should be disabled")
	}
	if p := h.Progress(); p.ID != 0 {
		t.Errorf("nil handle progress: %+v", p)
	}
	if r.InFlight() != nil || r.History() != nil || r.QueryStats() != nil {
		t.Error("nil registry snapshots should be nil")
	}
	r.SetLogger(nil)

	var l *Logger
	if l.Enabled() {
		t.Error("nil logger should be disabled")
	}
	l.QueryStarted(1, "", "q", time.Second)
	l.StageDone(1, 1, 0, 0, 0)
	l.QueryFinished(1, "done", 0, 0, 1, time.Second, false, 0)
	l.TxnAdmitted(1, time.Second, time.Second)
	l.TxnRejected(1, time.Second, time.Second)
	l.TxnFinished(1, true, 0, time.Second, 2*time.Second)
	if NewLogger(nil) != nil {
		t.Error("NewLogger(nil) should collapse to nil")
	}
}

func TestLoggerEvents(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	r := NewRegistry(4)
	r.SetLogger(l)
	feedQuery(r.Track("t"), "select(r, a < 10)", 100, true)
	l.TxnRejected(9, 5*time.Second, 3*time.Second)
	l.TxnFinished(4, false, 0, 9*time.Second, 8*time.Second)

	out := buf.String()
	for _, want := range []string{
		"query started", "stage done", "query overspent",
		"txn rejected", "txn missed deadline",
		"level=WARN",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log missing %q:\n%s", want, out)
		}
	}
}

// TestInFlightConcurrentWithCallbacks pits registry snapshots (which
// lock r.mu then each h.mu) against tracer callbacks with a logger
// attached. The logger used to be fetched under r.mu from inside the
// callbacks — the reverse lock order — so a /queries scrape racing a
// stage boundary could deadlock; this hangs (and times out) if that
// ordering ever comes back.
func TestInFlightConcurrentWithCallbacks(t *testing.T) {
	r := NewRegistry(8)
	r.SetLogger(NewLogger(slog.New(slog.NewTextHandler(io.Discard, nil))))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				feedQuery(r.Track("c"), "q", 100, false)
			}
		}()
	}
	done := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-done:
				return
			default:
				r.InFlight()
				r.History()
				r.QueryStats()
			}
		}
	}()
	wg.Wait()
	close(done)
	scrapes.Wait()
	if got := r.InFlight(); len(got) != 0 {
		t.Fatalf("queries left in flight: %+v", got)
	}
}

func TestHandleProgressSnapshotIsolated(t *testing.T) {
	r := NewRegistry(4)
	h := r.Track("")
	h.BeginQuery(trace.QueryInfo{Query: "q", Quota: 10 * time.Second})
	h.StageDone(trace.StageRecord{
		Stage: 1, Blocks: 5, Remaining: 9 * time.Second,
		Relations: []trace.RelationDraw{{Relation: "r", CumBlocks: 5, CumFraction: 0.02}},
		Completed: true, InTime: true,
	})
	snap := h.Progress()
	h.StageDone(trace.StageRecord{
		Stage: 2, Blocks: 10, Remaining: 7 * time.Second,
		Relations: []trace.RelationDraw{{Relation: "r", CumBlocks: 15, CumFraction: 0.06}},
		Completed: true, InTime: true,
	})
	if snap.Relations[0].Blocks != 5 {
		t.Errorf("snapshot mutated by later stage: %+v", snap.Relations)
	}
}

// Direct unit coverage of the overwrite-oldest ring: ordering before
// the first wrap, exactly at capacity, and after multiple wraps.
func TestRingWraparoundOrdering(t *testing.T) {
	mk := func(id int) QuerySummary { return QuerySummary{ID: int64(id)} }
	ids := func(ss []QuerySummary) []int64 {
		out := make([]int64, len(ss))
		for i, s := range ss {
			out[i] = s.ID
		}
		return out
	}
	r := newRing(4)
	if got := r.list(); len(got) != 0 {
		t.Fatalf("empty ring should list nothing, got %v", got)
	}
	r.push(mk(1))
	r.push(mk(2))
	if got := ids(r.list()); got[0] != 2 || got[1] != 1 || len(got) != 2 {
		t.Fatalf("partial fill order wrong: %v", got)
	}
	r.push(mk(3))
	r.push(mk(4)) // exactly full, cursor wrapped to 0
	if got := ids(r.list()); len(got) != 4 || got[0] != 4 || got[3] != 1 {
		t.Fatalf("full ring order wrong: %v", got)
	}
	for i := 5; i <= 11; i++ { // wrap the buffer almost twice more
		r.push(mk(i))
	}
	got := ids(r.list())
	want := []int64{11, 10, 9, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-wrap order wrong: got %v, want %v", got, want)
		}
	}
}

// Shape aggregates must stay exact when queries finish and are
// discarded concurrently (run under -race): discarded handles
// contribute nothing, finished ones exactly once.
func TestQueryStatsConcurrentTrackDiscard(t *testing.T) {
	r := NewRegistry(16)
	const workers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h := r.Track("")
				if i%4 == 3 { // simulate a failed trial
					h.BeginQuery(trace.QueryInfo{Query: "q", Quota: time.Second})
					h.Discard()
					continue
				}
				feedQuery(h, "q", 100, i%2 == 0)
				r.QueryStats() // concurrent readers
				r.History()
			}
		}(w)
	}
	wg.Wait()
	stats := r.QueryStats()
	if len(stats) != 1 {
		t.Fatalf("want 1 shape, got %+v", stats)
	}
	s := stats[0]
	finished := int64(workers * per * 3 / 4)
	if s.Calls != finished {
		t.Fatalf("Calls = %d, want %d (discards must not count)", s.Calls, finished)
	}
	// Overspent runs are the even i (never discarded): 20 per worker.
	if s.TotalStages != 2*finished || s.Overspends != int64(workers*per/2) {
		t.Fatalf("aggregates wrong: %+v", s)
	}
	if s.MeanCIWidth != 40 || s.MeanStages != 2 {
		t.Fatalf("means wrong: %+v", s)
	}
	if got := int64(len(r.InFlight())); got != 0 {
		t.Fatalf("%d handles left in flight", got)
	}
}
