package telemetry

import (
	"sort"
	"sync"

	"tcq/internal/trace"
)

// SLO tracks per-tenant deadline outcomes for time-constrained
// queries. A query is a hit when it finished inside its quota
// wire-to-wire and the engine did not overspend; a miss otherwise.
// Infeasible rejections (WCET exceeds the quota or the tenant window —
// the gate's 422s) are tallied separately: they consume no service
// time so they burn no error budget, but operators still want them
// visible per tenant.
//
// Every mutation is double-written to the attached metrics Registry as
// tcq_slo_* labeled families so the /slo JSON report and the /metrics
// scrape always reconcile.
type SLO struct {
	mu      sync.Mutex
	target  float64
	reg     *trace.Registry
	tenants map[string]*tenantSLO
}

type tenantSLO struct {
	hits       int64
	misses     int64
	infeasible int64
	missBySpan map[string]int64
}

// TenantSLO is one tenant's deadline accounting in an SLOReport.
type TenantSLO struct {
	Tenant string `json:"tenant"`
	// Hits and Misses partition completed time-constrained queries.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Infeasible counts admission rejections where no quota could ever
	// be met; excluded from the hit/miss denominator.
	Infeasible int64 `json:"infeasible,omitempty"`
	// HitRate is hits/(hits+misses); 1 when nothing completed yet.
	HitRate float64 `json:"hit_rate"`
	// BudgetBurn is the error-budget burn rate:
	// (misses/(hits+misses)) / (1 - target). 1.0 means the tenant is
	// missing exactly as often as the objective allows; above 1 the
	// budget is burning faster than it accrues.
	BudgetBurn float64 `json:"budget_burn"`
	// MissBySpan attributes each miss to the span that dominated its
	// timeline ("admission_wait", "eval", ...).
	MissBySpan map[string]int64 `json:"miss_by_span,omitempty"`
}

// SLOReport is the /slo endpoint payload.
type SLOReport struct {
	// Target is the deadline-hit objective (e.g. 0.99).
	Target  float64     `json:"target"`
	Tenants []TenantSLO `json:"tenants"`
}

// NewSLO returns an SLO with the given hit-rate objective, clamped to
// (0, 1). reg may be nil to skip the metrics double-write.
func NewSLO(target float64, reg *trace.Registry) *SLO {
	if target <= 0 || target >= 1 {
		target = 0.99
	}
	return &SLO{target: target, reg: reg, tenants: make(map[string]*tenantSLO)}
}

func (s *SLO) tenant(name string) *tenantSLO {
	t := s.tenants[name]
	if t == nil {
		t = &tenantSLO{missBySpan: make(map[string]int64)}
		s.tenants[name] = t
	}
	return t
}

// Hit records a query that met its deadline.
func (s *SLO) Hit(tenant string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	t := s.tenant(tenant)
	t.hits++
	burn := t.burn(s.target)
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.Update(func(tx trace.Tx) {
			tx.Add(Labeled("slo_hits", "tenant", tenant), 1)
			tx.SetGauge(Labeled("slo_budget_burn", "tenant", tenant), burn)
		})
	}
}

// Miss records a deadline miss attributed to the dominant span.
func (s *SLO) Miss(tenant, dominant string) {
	if s == nil {
		return
	}
	if dominant == "" {
		dominant = "unknown"
	}
	s.mu.Lock()
	t := s.tenant(tenant)
	t.misses++
	t.missBySpan[dominant]++
	burn := t.burn(s.target)
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.Update(func(tx trace.Tx) {
			tx.Add(Labeled("slo_misses", "tenant", tenant), 1)
			tx.Add(Labeled("slo_miss_span", "span", dominant), 1)
			tx.SetGauge(Labeled("slo_budget_burn", "tenant", tenant), burn)
		})
	}
}

// Infeasible records an admission rejection that no schedule could
// satisfy (the 422 path).
func (s *SLO) Infeasible(tenant string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tenant(tenant).infeasible++
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.Add(Labeled("slo_infeasible", "tenant", tenant), 1)
	}
}

func (t *tenantSLO) burn(target float64) float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return (float64(t.misses) / float64(total)) / (1 - target)
}

// Report snapshots the per-tenant accounting, tenants sorted by name.
func (s *SLO) Report() SLOReport {
	if s == nil {
		return SLOReport{}
	}
	s.mu.Lock()
	rep := SLOReport{Target: s.target, Tenants: make([]TenantSLO, 0, len(s.tenants))}
	for name, t := range s.tenants {
		ten := TenantSLO{
			Tenant:     name,
			Hits:       t.hits,
			Misses:     t.misses,
			Infeasible: t.infeasible,
			HitRate:    1,
			BudgetBurn: t.burn(s.target),
		}
		if total := t.hits + t.misses; total > 0 {
			ten.HitRate = float64(t.hits) / float64(total)
		}
		if len(t.missBySpan) > 0 {
			ten.MissBySpan = make(map[string]int64, len(t.missBySpan))
			for k, v := range t.missBySpan {
				ten.MissBySpan[k] = v
			}
		}
		rep.Tenants = append(rep.Tenants, ten)
	}
	s.mu.Unlock()
	sort.Slice(rep.Tenants, func(i, j int) bool { return rep.Tenants[i].Tenant < rep.Tenants[j].Tenant })
	return rep
}
