package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry is a lightweight metrics registry aggregating observability
// counters across queries of one session: monotonic counters, gauges
// (last value wins) and log2-bucketed histograms. It is safe for
// concurrent use; the engine only touches it once per query (at query
// end), off the per-tuple hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histData
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histData),
	}
}

// Add increments a counter by v.
func (r *Registry) Add(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += v
	r.mu.Unlock()
}

// SetGauge records a gauge's current value.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// AddGauge moves a gauge by delta (useful for live occupancy gauges
// such as queries_in_flight, incremented on entry and decremented on
// exit).
func (r *Registry) AddGauge(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] += delta
	r.mu.Unlock()
}

// Observe adds one observation to a histogram.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.observeLocked(name, v)
	r.mu.Unlock()
}

func (r *Registry) observeLocked(name string, v float64) {
	h := r.hists[name]
	if h == nil {
		h = &histData{min: math.Inf(1), max: math.Inf(-1)}
		r.hists[name] = h
	}
	h.observe(v)
}

// Tx mutates a registry inside one Update call. All writes issued
// through a Tx land under a single lock acquisition, so a concurrent
// Snapshot sees either none or all of them.
type Tx struct {
	r *Registry
}

// Add increments a counter by v.
func (t Tx) Add(name string, v int64) { t.r.counters[name] += v }

// SetGauge records a gauge's current value.
func (t Tx) SetGauge(name string, v float64) { t.r.gauges[name] = v }

// AddGauge moves a gauge by delta.
func (t Tx) AddGauge(name string, delta float64) { t.r.gauges[name] += delta }

// Observe adds one observation to a histogram.
func (t Tx) Observe(name string, v float64) { t.r.observeLocked(name, v) }

// Update applies fn's writes as one atomic batch. Individual Add/
// SetGauge/Observe calls are safe concurrently but each is its own
// critical section; related metrics written at a query boundary (e.g. a
// counter and its histogram) must go through Update, or a concurrent
// Snapshot can observe a torn pair — one updated, the other not. fn
// must not call back into the registry's locking methods.
func (r *Registry) Update(fn func(Tx)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(Tx{r})
}

// histData accumulates one histogram: moments plus log2 buckets
// (bucket k counts observations v with 2^(k-1) < v <= 2^k; k=0 counts
// v <= 1, including zero and negatives).
type histData struct {
	count    int64
	sum      float64
	min, max float64
	buckets  map[int]int64
}

func (h *histData) observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	k := 0
	if v > 1 {
		k = int(math.Ceil(math.Log2(v)))
	}
	if h.buckets == nil {
		h.buckets = make(map[int]int64)
	}
	h.buckets[k]++
}

// HistogramStat is a histogram's snapshot.
type HistogramStat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// Buckets maps an upper bound (rendered "le_<2^k>") to the number
	// of observations at or below it and above the previous bound.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a Registry, serialisable as a
// struct or JSON. Map keys serialise sorted (encoding/json's map
// behaviour), so snapshots of equal state are byte-identical.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramStat `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramStat),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		hs := HistogramStat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
		}
		if len(h.buckets) > 0 {
			hs.Buckets = make(map[string]int64, len(h.buckets))
			for k2, n := range h.buckets {
				hs.Buckets[fmt.Sprintf("le_%g", math.Exp2(float64(k2)))] = n
			}
		}
		s.Histograms[k] = hs
	}
	return s
}

// Reset clears all metrics.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters = make(map[string]int64)
	r.gauges = make(map[string]float64)
	r.hists = make(map[string]*histData)
	r.mu.Unlock()
}

// JSON renders the snapshot as indented, deterministic JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// String renders the snapshot as sorted text lines.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter   %-28s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge     %-28s %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "histogram %-28s count=%d mean=%.3g min=%.3g max=%.3g\n",
			k, h.Count, h.Mean, h.Min, h.Max)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
