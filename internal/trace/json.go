package trace

import (
	"encoding/json"
	"io"
)

// Record is one line of a JSON-lines trace stream: exactly one of
// Query, Stage or End is set, discriminated by Type ("query", "stage",
// "end"). Scope fields identify the originating run when several
// queries share one stream (the bench harness sets experiment, variant
// label and trial number).
type Record struct {
	Type  string `json:"type"`
	Exp   string `json:"exp,omitempty"`
	Label string `json:"label,omitempty"`
	Trial int    `json:"trial"`

	Query *QueryInfo   `json:"query,omitempty"`
	Stage *StageRecord `json:"stage,omitempty"`
	End   *QueryEnd    `json:"end,omitempty"`
}

// JSONLines is a Tracer emitting one JSON object per line. Encoding is
// deterministic: struct field order is fixed, durations serialise as
// int64 nanoseconds of the (virtual) clock, and float formatting is
// stable for identical bit patterns — so an identically-seeded run
// produces a byte-identical stream.
type JSONLines struct {
	w io.Writer
	// Scope is stamped into every record (zero values are omitted).
	Exp   string
	Label string
	Trial int

	err error
}

// NewJSONLines creates a JSON-lines tracer writing to w.
func NewJSONLines(w io.Writer) *JSONLines { return &JSONLines{w: w} }

// Err returns the first write or marshal error encountered (the Tracer
// interface has no error returns; check after the run).
func (j *JSONLines) Err() error { return j.err }

// Enabled implements Tracer.
func (j *JSONLines) Enabled() bool { return j.w != nil }

// BeginQuery implements Tracer.
func (j *JSONLines) BeginQuery(q QueryInfo) {
	j.emit(Record{Type: "query", Query: &q})
}

// StageDone implements Tracer.
func (j *JSONLines) StageDone(s StageRecord) {
	j.emit(Record{Type: "stage", Stage: &s})
}

// EndQuery implements Tracer.
func (j *JSONLines) EndQuery(e QueryEnd) {
	j.emit(Record{Type: "end", End: &e})
}

func (j *JSONLines) emit(r Record) {
	if j.err != nil {
		return
	}
	r.Exp, r.Label, r.Trial = j.Exp, j.Label, j.Trial
	b, err := json.Marshal(r)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
	}
}
