package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleTrace() *QueryTrace {
	return &QueryTrace{
		Info: QueryInfo{
			Query: "intersect(r1, r2)", Quota: 10 * time.Second,
			Strategy: "one-at-a-time(dβ=12)", Mode: "overrun",
			Plan: "full", Sampling: "cluster", Seed: 7,
		},
		Stages: []StageRecord{
			{
				Stage: 1, Fraction: 0.1, SearchIters: 9, DBeta: 12,
				Predicted: 4 * time.Second, Actual: 5 * time.Second,
				Overshoot: 0.25, Remaining: 5 * time.Second, Blocks: 40,
				Relations: []RelationDraw{{Relation: "r1", Blocks: 20, Tuples: 100, CumBlocks: 20, CumFraction: 0.1}},
				Operators: []OpStat{{Node: 2, Op: "intersect", Sel: 0.001, SelPlus: 0.002, StageOut: 9, CumOut: 9, CumPoints: 10000}},
				Charges:   Charges{BlocksRead: 40, Comparisons: 1234},
				Estimate:  9000, StdErr: 400, Interval: 784,
				Completed: true, InTime: true,
			},
			{Stage: 2, Fraction: 0.05, Blocks: 20, Completed: false},
		},
		End: QueryEnd{
			Stages: 1, Blocks: 40, Elapsed: 11 * time.Second,
			Utilization: 0.5, StopReason: "quota exhausted",
			Estimate: 9000, Interval: 784,
		},
	}
}

func TestCollectorReplay(t *testing.T) {
	src := sampleTrace()
	c := NewCollector()
	if !c.Enabled() {
		t.Fatal("collector must be enabled")
	}
	src.Replay(c)
	got := c.Trace()
	if got.Info != src.Info {
		t.Errorf("info mismatch: %+v vs %+v", got.Info, src.Info)
	}
	if len(got.Stages) != 2 || got.Stages[0].Blocks != 40 || got.Stages[1].Completed {
		t.Errorf("stages mismatch: %+v", got.Stages)
	}
	if got.End != src.End {
		t.Errorf("end mismatch: %+v", got.End)
	}
}

func TestNop(t *testing.T) {
	if Nop.Enabled() {
		t.Fatal("Nop must be disabled")
	}
	// Must not panic.
	sampleTrace().Replay(Nop)
}

func TestCombine(t *testing.T) {
	if got := Combine(nil, Nop); got != Nop {
		t.Errorf("Combine(nil, Nop) = %v, want Nop", got)
	}
	c := NewCollector()
	if got := Combine(nil, c, Nop); got != Tracer(c) {
		t.Errorf("Combine should unwrap a single tracer, got %T", got)
	}
	c2 := NewCollector()
	m := Combine(c, c2)
	if !m.Enabled() {
		t.Fatal("combined tracer must be enabled")
	}
	sampleTrace().Replay(m)
	if len(c.Trace().Stages) != 2 || len(c2.Trace().Stages) != 2 {
		t.Error("fan-out did not reach every target")
	}
}

func TestTextTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewText(&buf)
	if !tr.Enabled() {
		t.Fatal("text tracer must be enabled")
	}
	sampleTrace().Replay(tr)
	out := buf.String()
	for _, want := range []string{"stage 1:", "f=0.1000", "predicted=4s", "actual=5s", "aborted=false",
		"node 2 intersect: sel=0.001000", "stage 2:", "aborted=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("text trace missing %q:\n%s", want, out)
		}
	}
}

func TestJSONLinesDeterministicAndParsable(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		j := NewJSONLines(&buf)
		j.Exp, j.Label, j.Trial = "fig5.2", "dβ=12", 3
		sampleTrace().Replay(j)
		if err := j.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatal("JSON-lines output is not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 4 { // query + 2 stages + end
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), a)
	}
	var types []string
	for _, ln := range lines {
		var r Record
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("unparsable line %q: %v", ln, err)
		}
		if r.Exp != "fig5.2" || r.Label != "dβ=12" || r.Trial != 3 {
			t.Errorf("scope not stamped: %+v", r)
		}
		types = append(types, r.Type)
	}
	if got := strings.Join(types, ","); got != "query,stage,stage,end" {
		t.Errorf("record types = %s", got)
	}
	var first Record
	if err := json.Unmarshal([]byte(lines[1]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Stage == nil || first.Stage.Predicted != 4*time.Second || first.Stage.Charges.Comparisons != 1234 {
		t.Errorf("stage payload mismatch: %+v", first.Stage)
	}
}

func TestChargesSub(t *testing.T) {
	a := Charges{BlocksRead: 10, TuplesRead: 50, Comparisons: 7, TempBytes: 2048, DeadlinePolls: 3}
	b := Charges{BlocksRead: 4, TuplesRead: 20, Comparisons: 2, TempBytes: 1024, DeadlinePolls: 1}
	d := a.Sub(b)
	want := Charges{BlocksRead: 6, TuplesRead: 30, Comparisons: 5, TempBytes: 1024, DeadlinePolls: 2}
	if d != want {
		t.Errorf("Sub = %+v, want %+v", d, want)
	}
}

func TestRenderStages(t *testing.T) {
	out := RenderStages(sampleTrace().Stages)
	for _, want := range []string{"stage", "0.1000", "(aborted)", "9000.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("stage table missing %q:\n%s", want, out)
		}
	}
}
