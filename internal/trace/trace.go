// Package trace is the observability layer of the time-constrained
// estimation loop: a zero-dependency Tracer interface the engine
// (internal/core) invokes once per query and once per stage, plus the
// record types describing what the adaptive algorithm of Section 3
// actually did — the estimated operator selectivities behind each
// Sample-Size-Determine decision, the binary-search-chosen fraction
// f_i, predicted QCOST versus realised charged cost, blocks drawn per
// relation, tuples flowing through each RA operator, the physical
// charge counters, and the estimator trajectory.
//
// All timestamps and durations come from the session's vclock.Clock, so
// under a simulated clock a trace is fully deterministic: the same seed
// produces a byte-identical trace, which is what the golden test in
// scripts/check.sh enforces.
//
// The default tracer is Nop, whose Enabled() gate lets the engine skip
// all record construction — the hot path pays nothing when tracing is
// off (guarded by the trace-overhead benchmark and the tcqbench -perf
// gate).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// QueryInfo opens a query's trace: the static facts of the evaluation.
type QueryInfo struct {
	// Query is the relational algebra expression being counted.
	Query string `json:"query"`
	// Quota is the time constraint T.
	Quota time.Duration `json:"quota_ns"`
	// Strategy names the time-control strategy sizing the stages.
	Strategy string `json:"strategy"`
	// Mode is "hard" (abort at expiry) or "overrun" (ERAM mode).
	Mode string `json:"mode"`
	// Plan is "full" or "partial" fulfillment.
	Plan string `json:"plan"`
	// Sampling is "cluster" or "srs".
	Sampling string `json:"sampling"`
	// Catalog tags sample-catalog reuse: "hit" when the run replays a
	// materialized catalog sample, empty on a miss or when no catalog
	// is configured — so miss-path traces stay byte-identical to
	// catalog-disabled ones, and calibration can audit warm coverage
	// separately from cold.
	Catalog string `json:"catalog,omitempty"`
	// Seed drove the block sampler.
	Seed int64 `json:"seed"`
	// Start is the session clock reading when evaluation began.
	Start time.Duration `json:"start_ns"`
}

// RelationDraw is one relation's share of a stage's sample.
type RelationDraw struct {
	Relation string `json:"relation"`
	// Blocks and Tuples are this stage's draw (sample units: disk
	// blocks under cluster sampling, single tuples under SRS).
	Blocks int `json:"blocks"`
	Tuples int `json:"tuples"`
	// CumBlocks and CumFraction are the cumulative sample after the
	// stage; CumFraction is the coverage d/D of Figure 3.1.
	CumBlocks   int     `json:"cum_blocks"`
	CumFraction float64 `json:"cum_fraction"`
}

// OpStat is one RA operator's state after a stage: the run-time
// selectivity estimate of Fig. 3.3, the inflated sel⁺ the stage was
// planned with (Fig. 3.5), and the tuple flow through the operator.
type OpStat struct {
	Node int    `json:"node"`
	Op   string `json:"op"`
	// Expr is the subexpression the node evaluates.
	Expr string `json:"expr,omitempty"`
	// Children lists operand node ids (base relations included), so a
	// consumer can rebuild the plan tree.
	Children []int `json:"children,omitempty"`
	// Sel is the sample selectivity estimate after the stage.
	Sel float64 `json:"sel"`
	// SelPlus is the inflated selectivity the stage was planned with
	// (0 when the operator did not participate in planning).
	SelPlus float64 `json:"sel_plus,omitempty"`
	// StageOut is the stage's new output tuples; CumOut and CumPoints
	// are the cumulative output and covered point space.
	StageOut  int64   `json:"stage_out"`
	CumOut    int64   `json:"cum_out"`
	CumPoints float64 `json:"cum_points"`
}

// Charges is the stage's physical work delta: what the executors
// charged to the session clock while the stage ran.
type Charges struct {
	BlocksRead    int64 `json:"blocks_read"`
	PagesWritten  int64 `json:"pages_written"`
	TuplesRead    int64 `json:"tuples_read"`
	TuplesWritten int64 `json:"tuples_written"`
	// TempBytes is the bytes written to temp/output files.
	TempBytes int64 `json:"temp_bytes"`
	// Comparisons counts sort/merge tuple comparisons.
	Comparisons int64 `json:"comparisons"`
	// DeadlinePolls counts hard-deadline checks.
	DeadlinePolls int64 `json:"deadline_polls"`
}

// Sub returns the delta c − prev (both snapshots of the same session).
func (c Charges) Sub(prev Charges) Charges {
	return Charges{
		BlocksRead:    c.BlocksRead - prev.BlocksRead,
		PagesWritten:  c.PagesWritten - prev.PagesWritten,
		TuplesRead:    c.TuplesRead - prev.TuplesRead,
		TuplesWritten: c.TuplesWritten - prev.TuplesWritten,
		TempBytes:     c.TempBytes - prev.TempBytes,
		Comparisons:   c.Comparisons - prev.Comparisons,
		DeadlinePolls: c.DeadlinePolls - prev.DeadlinePolls,
	}
}

// StageRecord documents one stage of the adaptive loop.
type StageRecord struct {
	// Stage is the 1-based stage number.
	Stage int `json:"stage"`
	// Fraction is the binary-search-chosen sample fraction f_i
	// (Fig. 3.4); SearchIters is how many bisection iterations the
	// search took, and DBeta the risk knob the sel⁺ inflation used.
	Fraction    float64 `json:"fraction"`
	SearchIters int     `json:"search_iters"`
	DBeta       float64 `json:"d_beta,omitempty"`
	// Predicted is QCOST(f_i, SEL⁺); Actual the realised stage
	// duration; Overshoot the risk margin Actual/Predicted − 1
	// (0 when no prediction was made).
	Predicted time.Duration `json:"predicted_ns"`
	Actual    time.Duration `json:"actual_ns"`
	Overshoot float64       `json:"overshoot"`
	// Remaining is the quota left after the stage (negative when the
	// stage overran).
	Remaining time.Duration `json:"remaining_ns"`
	// Blocks is the stage's total sample units across relations.
	Blocks    int            `json:"blocks"`
	Relations []RelationDraw `json:"relations,omitempty"`
	Operators []OpStat       `json:"operators,omitempty"`
	Charges   Charges        `json:"charges"`
	// Estimate, StdErr and Interval are the estimator state after the
	// stage (zero for an aborted stage, which produces no estimate).
	Estimate float64 `json:"estimate"`
	StdErr   float64 `json:"stderr"`
	Interval float64 `json:"interval"`
	// Completed is false when the hard deadline aborted the stage;
	// InTime reports whether it finished within the quota.
	Completed bool `json:"completed"`
	InTime    bool `json:"in_time"`
}

// QueryEnd closes a query's trace with the final outcome.
type QueryEnd struct {
	Stages  int           `json:"stages"`
	Blocks  int           `json:"blocks"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// Successful is the time through the last within-quota stage.
	Successful  time.Duration `json:"successful_ns"`
	Utilization float64       `json:"utilization"`
	Overspent   bool          `json:"overspent"`
	Overspend   time.Duration `json:"overspend_ns"`
	// StopReason is which stopping criterion fired (§3.2).
	StopReason string  `json:"stop_reason"`
	Estimate   float64 `json:"estimate"`
	StdErr     float64 `json:"stderr"`
	Interval   float64 `json:"interval"`
}

// Tracer observes one query evaluation. Implementations must not
// charge the session clock or consume engine randomness: tracing is
// read-only with respect to the simulation, so the determinism goldens
// hold whether tracing is on or off.
type Tracer interface {
	// Enabled gates record construction: the engine skips building
	// stage detail entirely when it returns false.
	Enabled() bool
	// BeginQuery opens a query's trace.
	BeginQuery(QueryInfo)
	// StageDone reports a completed (or aborted) stage.
	StageDone(StageRecord)
	// EndQuery closes the trace with the final outcome.
	EndQuery(QueryEnd)
}

// Nop is the no-op tracer: Enabled() is false and every callback does
// nothing. It is the engine default.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) Enabled() bool         { return false }
func (nopTracer) BeginQuery(QueryInfo)  {}
func (nopTracer) StageDone(StageRecord) {}
func (nopTracer) EndQuery(QueryEnd)     {}

// QueryTrace is one query's complete trace, as captured by a Collector.
type QueryTrace struct {
	Info   QueryInfo     `json:"info"`
	Stages []StageRecord `json:"stages"`
	End    QueryEnd      `json:"end"`
}

// Replay plays the trace back into another tracer (used to emit
// deterministic JSON from parallel bench trials: collect per trial,
// replay in trial order).
func (t *QueryTrace) Replay(dst Tracer) {
	dst.BeginQuery(t.Info)
	for _, s := range t.Stages {
		dst.StageDone(s)
	}
	dst.EndQuery(t.End)
}

// Collector accumulates a QueryTrace in memory.
type Collector struct {
	t QueryTrace
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Enabled implements Tracer.
func (c *Collector) Enabled() bool { return true }

// BeginQuery implements Tracer.
func (c *Collector) BeginQuery(q QueryInfo) { c.t.Info = q }

// StageDone implements Tracer.
func (c *Collector) StageDone(s StageRecord) { c.t.Stages = append(c.t.Stages, s) }

// EndQuery implements Tracer.
func (c *Collector) EndQuery(e QueryEnd) { c.t.End = e }

// Trace returns the collected trace (the collector's own storage; take
// it after the query finishes).
func (c *Collector) Trace() *QueryTrace { return &c.t }

// Multi fans records out to several tracers; it is enabled when any
// target is.
type Multi []Tracer

// Enabled implements Tracer.
func (m Multi) Enabled() bool {
	for _, t := range m {
		if t.Enabled() {
			return true
		}
	}
	return false
}

// BeginQuery implements Tracer.
func (m Multi) BeginQuery(q QueryInfo) {
	for _, t := range m {
		t.BeginQuery(q)
	}
}

// StageDone implements Tracer.
func (m Multi) StageDone(s StageRecord) {
	for _, t := range m {
		t.StageDone(s)
	}
}

// EndQuery implements Tracer.
func (m Multi) EndQuery(e QueryEnd) {
	for _, t := range m {
		t.EndQuery(e)
	}
}

// Combine merges tracers, dropping nils and Nops; it returns Nop when
// nothing remains.
func Combine(ts ...Tracer) Tracer {
	var out Multi
	for _, t := range ts {
		if t == nil || t == Nop {
			continue
		}
		out = append(out, t)
	}
	switch len(out) {
	case 0:
		return Nop
	case 1:
		return out[0]
	}
	return out
}

// Text is a human-readable tracer: one block of lines per stage (the
// debugging view of the time-control algorithm, formerly the engine's
// Trace io.Writer output).
type Text struct {
	W io.Writer
}

// NewText creates a text tracer writing to w.
func NewText(w io.Writer) *Text { return &Text{W: w} }

// Enabled implements Tracer.
func (t *Text) Enabled() bool { return t.W != nil }

// BeginQuery implements Tracer.
func (t *Text) BeginQuery(q QueryInfo) {}

// StageDone implements Tracer.
func (t *Text) StageDone(s StageRecord) {
	fmt.Fprintf(t.W,
		"stage %d: f=%.4f blocks=%d predicted=%v actual=%v remaining=%v aborted=%v\n",
		s.Stage, s.Fraction, s.Blocks,
		s.Predicted.Round(time.Millisecond), s.Actual.Round(time.Millisecond),
		s.Remaining.Round(time.Millisecond), !s.Completed)
	for _, op := range s.Operators {
		fmt.Fprintf(t.W, "  node %d %s: sel=%.6f (out=%d points=%.0f)\n",
			op.Node, op.Op, op.Sel, op.CumOut, op.CumPoints)
	}
}

// EndQuery implements Tracer.
func (t *Text) EndQuery(e QueryEnd) {}

// RenderStages formats a trace's stage table (used by ExplainAnalyze
// and available to any consumer of a collected trace).
func RenderStages(stages []StageRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %8s %7s %10s %10s %7s %12s %10s\n",
		"stage", "f", "blocks", "predicted", "actual", "over%", "estimate", "±")
	for _, s := range stages {
		note := ""
		if !s.Completed {
			note = "  (aborted)"
		} else if !s.InTime {
			note = "  (overran)"
		}
		fmt.Fprintf(&b, "%5d %8.4f %7d %10v %10v %7.1f %12.1f %10.1f%s\n",
			s.Stage, s.Fraction, s.Blocks,
			s.Predicted.Round(time.Millisecond), s.Actual.Round(time.Millisecond),
			100*s.Overshoot, s.Estimate, s.Interval, note)
	}
	return b.String()
}

// SortOps orders operator stats by node id (traversal order is
// child-first and stable, but sorting makes consumers independent of
// it).
func SortOps(ops []OpStat) {
	sort.Slice(ops, func(i, j int) bool { return ops[i].Node < ops[j].Node })
}
