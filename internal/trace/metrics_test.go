package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Add("queries", 1)
	r.Add("queries", 2)
	r.SetGauge("coverage", 0.25)
	r.SetGauge("coverage", 0.5)
	for _, v := range []float64{0.5, 1, 3, 100} {
		r.Observe("stage_blocks", v)
	}
	s := r.Snapshot()
	if s.Counters["queries"] != 3 {
		t.Errorf("counter = %d, want 3", s.Counters["queries"])
	}
	if s.Gauges["coverage"] != 0.5 {
		t.Errorf("gauge = %g, want 0.5 (last wins)", s.Gauges["coverage"])
	}
	h := s.Histograms["stage_blocks"]
	if h.Count != 4 || h.Min != 0.5 || h.Max != 100 || h.Sum != 104.5 {
		t.Errorf("histogram = %+v", h)
	}
	if h.Buckets["le_1"] != 2 || h.Buckets["le_4"] != 1 || h.Buckets["le_128"] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Add("x", 1)
	r.SetGauge("y", 1)
	r.Observe("z", 1)
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestSnapshotDeterministicJSONAndText(t *testing.T) {
	r := NewRegistry()
	r.Add("b_counter", 2)
	r.Add("a_counter", 1)
	r.SetGauge("g", 1.5)
	r.Observe("h", 10)
	a, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("snapshot JSON not deterministic")
	}
	text := r.Snapshot().String()
	ai := strings.Index(text, "a_counter")
	bi := strings.Index(text, "b_counter")
	if ai < 0 || bi < 0 || ai > bi {
		t.Errorf("text rendering not sorted:\n%s", text)
	}
	if !strings.Contains(text, "histogram h") || !strings.Contains(text, "count=1") {
		t.Errorf("text rendering missing histogram line:\n%s", text)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Add("n", 1)
				r.Observe("v", float64(j))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 8000 || s.Histograms["v"].Count != 8000 {
		t.Errorf("lost updates: %+v", s.Counters)
	}
}

// TestUpdateAtomicBatch is the torn-snapshot regression test: every
// Update writes a counter, a gauge and a histogram observation that must
// stay in lockstep. A snapshot taken between the individual writes of a
// batch (the pre-Update behaviour: one lock acquisition per call) would
// observe queries counted whose stages or histogram entry are missing.
func TestUpdateAtomicBatch(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				r.Update(func(tx Tx) {
					tx.Add("queries", 1)
					tx.Add("stages", 3)
					tx.Observe("stages_per_query", 3)
					tx.SetGauge("last_stages", 3)
				})
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	snaps := 0
	for {
		select {
		case <-done:
			if snaps == 0 {
				t.Fatal("reader never snapshotted")
			}
			s := r.Snapshot()
			if s.Counters["queries"] != 8000 || s.Counters["stages"] != 24000 {
				t.Errorf("lost batched updates: %+v", s.Counters)
			}
			return
		default:
			s := r.Snapshot()
			snaps++
			q, st := s.Counters["queries"], s.Counters["stages"]
			if st != 3*q {
				t.Fatalf("torn snapshot: queries=%d stages=%d (want stages = 3*queries)", q, st)
			}
			if h := s.Histograms["stages_per_query"]; h.Count != q {
				t.Fatalf("torn snapshot: queries=%d histogram count=%d", q, h.Count)
			}
		}
	}
}

func TestUpdateNilSafe(t *testing.T) {
	var r *Registry
	r.Update(func(tx Tx) { tx.Add("x", 1) })
	NewRegistry().Update(nil)
}

func TestResetClears(t *testing.T) {
	r := NewRegistry()
	r.Add("n", 5)
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("reset did not clear counters")
	}
}
