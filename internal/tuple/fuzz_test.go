package tuple

import (
	"bytes"
	"testing"
)

// FuzzDecode checks that Decode never panics on arbitrary bytes and
// that successful decodes re-encode to the same bytes (canonical
// encoding), modulo string truncation at NUL.
func FuzzDecode(f *testing.F) {
	s := MustSchema(
		Column{Name: "a", Type: Int},
		Column{Name: "b", Type: Float},
		Column{Name: "c", Type: String, Size: 6},
	)
	f.Add((Tuple{int64(1), 2.5, "hey"}).Encode(s, nil))
	f.Add(make([]byte, s.TupleSize()))
	f.Add([]byte("short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, rest, err := Decode(s, data)
		if err != nil {
			if len(data) >= s.TupleSize() {
				t.Fatalf("decode failed on %d bytes: %v", len(data), err)
			}
			return
		}
		if len(rest) != len(data)-s.TupleSize() {
			t.Fatalf("rest length %d", len(rest))
		}
		if err := tp.Validate(s); err != nil {
			t.Fatalf("decoded tuple invalid: %v", err)
		}
		// Re-encode: must round-trip except for string bytes after an
		// embedded NUL (decode truncates there by design).
		re := tp.Encode(s, nil)
		if !bytes.Equal(re[:16], data[:16]) {
			t.Fatalf("numeric fields not canonical")
		}
	})
}
