package tuple

import (
	"encoding/binary"
	"strings"
)

// Normalized sort keys: a one-pass, memcmp-able byte encoding of a
// tuple's join/sort/dedup columns. For column sets where normalization
// is supported (see CanNormalizeKeys), bytes.Compare over two tuples'
// normalized keys returns exactly Compare(a, b, cols, cols), and equal
// keys identify equal column value lists (the encoding is injective).
// The executors cache one key per tuple per stage so that sorting,
// merge-joining and deduplication compare cached bytes instead of
// re-walking []Value columns through interface dispatch on every
// comparison.
//
// Encoding, per column:
//
//   - Int: 8 bytes big-endian with the sign bit flipped, so unsigned
//     byte order equals signed integer order.
//   - String: the raw bytes with every 0x00 escaped as 0x00 0xFF,
//     terminated by 0x00 0x00. The terminator sorts below any escaped
//     or plain content byte, which preserves lexicographic order across
//     column boundaries even for values that are prefixes of each other
//     or contain embedded NULs.
//
// Float columns are excluded: CompareValues orders NaN as equal to
// everything (a non-transitive relation no total byte order can
// reproduce), and mixed int/float comparisons promote through float64.
// Callers must fall back to Compare for such column sets.

// CanNormalizeKeys reports whether the given columns of the schema
// (all columns when cols is nil) support normalized key encoding.
func CanNormalizeKeys(s *Schema, cols []int) bool {
	if cols == nil {
		for _, c := range s.cols {
			if c.Type != Int && c.Type != String {
				return false
			}
		}
		return true
	}
	for _, i := range cols {
		if i < 0 || i >= len(s.cols) {
			return false
		}
		if t := s.cols[i].Type; t != Int && t != String {
			return false
		}
	}
	return true
}

// KeysComparable reports whether normalized keys built from colsA of
// schema a compare consistently with keys built from colsB of schema b:
// both column lists must be normalizable and pairwise of equal type.
func KeysComparable(a *Schema, colsA []int, b *Schema, colsB []int) bool {
	if len(colsA) != len(colsB) {
		return false
	}
	if !CanNormalizeKeys(a, colsA) || !CanNormalizeKeys(b, colsB) {
		return false
	}
	for i := range colsA {
		if a.cols[colsA[i]].Type != b.cols[colsB[i]].Type {
			return false
		}
	}
	return true
}

// AppendNormKey appends the normalized key of t's values on the given
// columns (all columns when cols is nil) to dst and returns the
// extended slice. The caller must have checked CanNormalizeKeys; the
// encoder panics on unsupported value types.
func AppendNormKey(dst []byte, t Tuple, cols []int) []byte {
	if cols == nil {
		for i := range t {
			dst = appendNormValue(dst, t[i])
		}
		return dst
	}
	for _, i := range cols {
		dst = appendNormValue(dst, t[i])
	}
	return dst
}

func appendNormValue(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case int64:
		return binary.BigEndian.AppendUint64(dst, uint64(x)^(1<<63))
	case string:
		return appendNormString(dst, x)
	default:
		panic("tuple: AppendNormKey on unsupported value type")
	}
}

func appendNormString(dst []byte, x string) []byte {
	for {
		j := strings.IndexByte(x, 0)
		if j < 0 {
			dst = append(dst, x...)
			break
		}
		dst = append(dst, x[:j]...)
		dst = append(dst, 0x00, 0xFF)
		x = x[j+1:]
	}
	return append(dst, 0x00, 0x00)
}

// NormKeySizeHint returns a per-tuple capacity estimate for normalized
// keys over the given columns of the schema (all columns when nil),
// used to pre-size key arenas.
func NormKeySizeHint(s *Schema, cols []int) int {
	size := 0
	add := func(c Column) {
		switch c.Type {
		case Int:
			size += 8
		case String:
			size += c.Size + 2
		default:
			size += 8
		}
	}
	if cols == nil {
		for _, c := range s.cols {
			add(c)
		}
		return size
	}
	for _, i := range cols {
		if i >= 0 && i < len(s.cols) {
			add(s.cols[i])
		}
	}
	return size
}
