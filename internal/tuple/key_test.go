package tuple

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanNormalizeKeys(t *testing.T) {
	s := MustSchema(
		Column{Name: "i", Type: Int},
		Column{Name: "f", Type: Float},
		Column{Name: "s", Type: String, Size: 8},
	)
	if !CanNormalizeKeys(s, []int{0, 2}) {
		t.Error("int+string columns must normalize")
	}
	if CanNormalizeKeys(s, []int{0, 1}) {
		t.Error("float column must not normalize")
	}
	if CanNormalizeKeys(s, nil) {
		t.Error("nil cols over a schema with a float column must not normalize")
	}
	allInt := MustSchema(Column{Name: "a", Type: Int}, Column{Name: "b", Type: Int})
	if !CanNormalizeKeys(allInt, nil) {
		t.Error("all-int schema must normalize on nil cols")
	}
	if CanNormalizeKeys(s, []int{99}) {
		t.Error("out-of-range column must not normalize")
	}
}

func TestKeysComparable(t *testing.T) {
	a := MustSchema(Column{Name: "x", Type: Int}, Column{Name: "y", Type: String, Size: 4})
	b := MustSchema(Column{Name: "p", Type: String, Size: 9}, Column{Name: "q", Type: Int})
	if !KeysComparable(a, []int{0}, b, []int{1}) {
		t.Error("int vs int keys must be comparable")
	}
	if KeysComparable(a, []int{0}, b, []int{0}) {
		t.Error("int vs string keys must not be comparable")
	}
	if KeysComparable(a, []int{0, 1}, b, []int{1}) {
		t.Error("length mismatch must not be comparable")
	}
	// String widths may differ: the encoding is width-independent.
	if !KeysComparable(a, []int{1}, b, []int{0}) {
		t.Error("string keys of different widths must be comparable")
	}
}

// TestNormKeyMatchesCompare is the load-bearing property: byte order of
// normalized keys equals Compare on the key columns, including strings
// with embedded NULs, shared prefixes and empty values.
func TestNormKeyMatchesCompare(t *testing.T) {
	f := func(ai int64, as string, bi int64, bs string) bool {
		ta := Tuple{ai, as}
		tb := Tuple{bi, bs}
		cols := []int{1, 0} // string-major to stress cross-column boundaries
		ka := AppendNormKey(nil, ta, cols)
		kb := AppendNormKey(nil, tb, cols)
		want := Compare(ta, tb, cols, cols)
		return sign(bytes.Compare(ka, kb)) == sign(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestNormKeyEmbeddedNulBoundary pins the classic multi-column
// ambiguity: a string that is a NUL-extended prefix of another must not
// let the next column's bytes flip the order.
func TestNormKeyEmbeddedNulBoundary(t *testing.T) {
	// ("a", high) vs ("a\x00", low): column-wise "a" < "a\x00".
	ta := Tuple{"a", int64(1 << 40)}
	tb := Tuple{"a\x00", int64(-5)}
	ka := AppendNormKey(nil, ta, nil)
	kb := AppendNormKey(nil, tb, nil)
	if bytes.Compare(ka, kb) >= 0 {
		t.Errorf("embedded-NUL boundary broken: %q vs %q", ka, kb)
	}
	if c := Compare(ta, tb, nil, nil); c >= 0 {
		t.Fatalf("reference Compare = %d, want < 0", c)
	}
}

func TestNormKeyInjective(t *testing.T) {
	// Distinct value lists must get distinct keys (dedup correctness).
	vals := []Tuple{
		{int64(0), ""},
		{int64(0), "\x00"},
		{int64(0), "\x00\x00"},
		{int64(0), "\xff"},
		{int64(-1), ""},
		{int64(1), ""},
	}
	seen := map[string]int{}
	for i, v := range vals {
		k := string(AppendNormKey(nil, v, nil))
		if j, dup := seen[k]; dup {
			t.Errorf("tuples %d and %d collide on key %q", i, j, k)
		}
		seen[k] = i
	}
}

func TestNormKeySortMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{"", "a", "ab", "a\x00", "a\x00b", "b", "\x00", "zz"}
	n := 200
	ts := make([]Tuple, n)
	keys := make([][]byte, n)
	for i := range ts {
		ts[i] = Tuple{rng.Int63n(8) - 4, alphabet[rng.Intn(len(alphabet))]}
		keys[i] = AppendNormKey(nil, ts[i], nil)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := sign(Compare(ts[i], ts[j], nil, nil))
			got := sign(bytes.Compare(keys[i], keys[j]))
			if want != got {
				t.Fatalf("order mismatch %v vs %v: key %d, ref %d", ts[i], ts[j], got, want)
			}
		}
	}
}

func TestNormKeySizeHint(t *testing.T) {
	s := MustSchema(
		Column{Name: "i", Type: Int},
		Column{Name: "s", Type: String, Size: 10},
	)
	if h := NormKeySizeHint(s, nil); h != 8+12 {
		t.Errorf("hint = %d, want 20", h)
	}
	if h := NormKeySizeHint(s, []int{0}); h != 8 {
		t.Errorf("hint = %d, want 8", h)
	}
	// A NUL-free string of exactly Size bytes must fit the hint.
	k := AppendNormKey(nil, Tuple{int64(1), "0123456789"}, nil)
	if len(k) > 8+12 {
		t.Errorf("key len %d exceeds hint", len(k))
	}
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}
