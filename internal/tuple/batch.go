package tuple

import (
	"encoding/binary"
	"fmt"
)

// Batch is a column-oriented block of tuples: one typed slice per
// schema column instead of a []Value per row. It is the unit the
// batch-at-a-time executor moves around — relations store their data as
// one big Batch, block reads hand out zero-copy Slice views, selection
// evaluates predicates directly over the typed columns, and rows are
// materialized to []Value form only where an operator genuinely needs
// row access (join emission, aggregation output).
//
// A Batch obtained from Slice or Project is a view sharing the parent's
// column storage; views must be treated as read-only. Appending to the
// owning Batch never clobbers earlier views (column slices are
// capacity-clamped), it only reallocates.
type Batch struct {
	schema *Schema
	n      int
	cols   []colData
}

// colData holds one column's values; exactly one slice is non-nil,
// matching the column type.
type colData struct {
	ints    []int64
	floats  []float64
	strings []string
}

// NewBatch returns an empty batch for the schema.
func NewBatch(s *Schema) *Batch {
	return &Batch{schema: s, cols: make([]colData, len(s.cols))}
}

// MakeBatch wraps pre-built column slices into a batch without copying.
// Each of cols must be a []int64, []float64 or []string matching the
// schema's column type at that position, all of length n. The caller
// must not modify the slices afterwards. String values are width-checked
// against the schema.
func MakeBatch(s *Schema, n int, cols ...any) (*Batch, error) {
	if len(cols) != len(s.cols) {
		return nil, fmt.Errorf("tuple: MakeBatch got %d columns, schema wants %d", len(cols), len(s.cols))
	}
	b := &Batch{schema: s, n: n, cols: make([]colData, len(s.cols))}
	for i, c := range s.cols {
		switch v := cols[i].(type) {
		case []int64:
			if c.Type != Int || len(v) != n {
				return nil, fmt.Errorf("tuple: MakeBatch column %q: got []int64 len %d, want %s len %d", c.Name, len(v), c.Type, n)
			}
			b.cols[i].ints = v[:n:n]
		case []float64:
			if c.Type != Float || len(v) != n {
				return nil, fmt.Errorf("tuple: MakeBatch column %q: got []float64 len %d, want %s len %d", c.Name, len(v), c.Type, n)
			}
			b.cols[i].floats = v[:n:n]
		case []string:
			if c.Type != String || len(v) != n {
				return nil, fmt.Errorf("tuple: MakeBatch column %q: got []string len %d, want %s len %d", c.Name, len(v), c.Type, n)
			}
			for _, s := range v {
				if len(s) > c.Size {
					return nil, fmt.Errorf("tuple: MakeBatch column %q: value %d bytes exceeds width %d", c.Name, len(s), c.Size)
				}
			}
			b.cols[i].strings = v[:n:n]
		default:
			return nil, fmt.Errorf("tuple: MakeBatch column %q: unsupported slice type %T", c.Name, cols[i])
		}
	}
	return b, nil
}

// Len returns the number of rows.
func (b *Batch) Len() int { return b.n }

// Schema returns the batch's schema.
func (b *Batch) Schema() *Schema { return b.schema }

// Ints returns the typed storage of an Int column.
func (b *Batch) Ints(col int) []int64 { return b.cols[col].ints }

// Floats returns the typed storage of a Float column.
func (b *Batch) Floats(col int) []float64 { return b.cols[col].floats }

// Strings returns the typed storage of a String column.
func (b *Batch) Strings(col int) []string { return b.cols[col].strings }

// AppendRow validates t against the schema and appends it.
func (b *Batch) AppendRow(t Tuple) error {
	if err := t.Validate(b.schema); err != nil {
		return err
	}
	for i, c := range b.schema.cols {
		switch c.Type {
		case Int:
			b.cols[i].ints = append(b.cols[i].ints, t[i].(int64))
		case Float:
			b.cols[i].floats = append(b.cols[i].floats, t[i].(float64))
		case String:
			b.cols[i].strings = append(b.cols[i].strings, t[i].(string))
		}
	}
	b.n++
	return nil
}

// AppendBatch appends all rows of o (same schema) by bulk column copy.
func (b *Batch) AppendBatch(o *Batch) error {
	if !b.schema.Equal(o.schema) {
		return fmt.Errorf("tuple: AppendBatch schema mismatch")
	}
	for i, c := range b.schema.cols {
		switch c.Type {
		case Int:
			b.cols[i].ints = append(b.cols[i].ints, o.cols[i].ints...)
		case Float:
			b.cols[i].floats = append(b.cols[i].floats, o.cols[i].floats...)
		case String:
			b.cols[i].strings = append(b.cols[i].strings, o.cols[i].strings...)
		}
	}
	b.n += o.n
	return nil
}

// Slice returns a zero-copy view of rows [lo, hi). The view is
// read-only; it stays valid across later appends to b.
func (b *Batch) Slice(lo, hi int) *Batch {
	out := &Batch{schema: b.schema, n: hi - lo, cols: make([]colData, len(b.cols))}
	for i := range b.cols {
		switch {
		case b.cols[i].ints != nil:
			out.cols[i].ints = b.cols[i].ints[lo:hi:hi]
		case b.cols[i].floats != nil:
			out.cols[i].floats = b.cols[i].floats[lo:hi:hi]
		case b.cols[i].strings != nil:
			out.cols[i].strings = b.cols[i].strings[lo:hi:hi]
		}
	}
	return out
}

// Project returns a zero-copy view holding only the columns at idx, in
// that order; s must be the projected schema (as from Schema.Project).
func (b *Batch) Project(s *Schema, idx []int) *Batch {
	out := &Batch{schema: s, n: b.n, cols: make([]colData, len(idx))}
	for i, j := range idx {
		out.cols[i] = b.cols[j]
	}
	return out
}

// Value returns the single value at (col, row) as a boxed Value.
func (b *Batch) Value(col, row int) Value {
	switch {
	case b.cols[col].ints != nil:
		return b.cols[col].ints[row]
	case b.cols[col].floats != nil:
		return b.cols[col].floats[row]
	default:
		return b.cols[col].strings[row]
	}
}

// Row materializes row i as a Tuple.
func (b *Batch) Row(i int) Tuple {
	t := make(Tuple, len(b.cols))
	b.fillRow(t, i)
	return t
}

func (b *Batch) fillRow(t Tuple, i int) {
	for c := range b.cols {
		switch {
		case b.cols[c].ints != nil:
			t[c] = b.cols[c].ints[i]
		case b.cols[c].floats != nil:
			t[c] = b.cols[c].floats[i]
		default:
			t[c] = b.cols[c].strings[i]
		}
	}
}

// Rows materializes every row, sharing one backing []Value arena.
func (b *Batch) Rows() []Tuple {
	return b.RowsAt(nil)
}

// RowsAt materializes the rows at the given indices (all rows when sel
// is nil), sharing one backing []Value arena across the tuples.
func (b *Batch) RowsAt(sel []int32) []Tuple {
	n := b.n
	if sel != nil {
		n = len(sel)
	}
	if n == 0 {
		return nil
	}
	w := len(b.cols)
	arena := make([]Value, n*w)
	out := make([]Tuple, n)
	for i := 0; i < n; i++ {
		row := i
		if sel != nil {
			row = int(sel[i])
		}
		t := arena[i*w : (i+1)*w : (i+1)*w]
		b.fillRow(Tuple(t), row)
		out[i] = Tuple(t)
	}
	return out
}

// AppendNormKey appends the normalized sort key of row i over the given
// columns (all columns when cols is nil) to dst — the typed-column
// equivalent of Tuple.AppendNormKey, with identical encoding. The
// caller must have checked CanNormalizeKeys.
func (b *Batch) AppendNormKey(dst []byte, row int, cols []int) []byte {
	if cols == nil {
		for c := range b.cols {
			dst = b.appendNormCol(dst, row, c)
		}
		return dst
	}
	for _, c := range cols {
		dst = b.appendNormCol(dst, row, c)
	}
	return dst
}

func (b *Batch) appendNormCol(dst []byte, row, c int) []byte {
	switch {
	case b.cols[c].ints != nil:
		return binary.BigEndian.AppendUint64(dst, uint64(b.cols[c].ints[row])^(1<<63))
	case b.cols[c].strings != nil:
		return appendNormString(dst, b.cols[c].strings[row])
	default:
		panic("tuple: Batch.AppendNormKey on unsupported column type")
	}
}
