package tuple

import (
	"bytes"
	"testing"
)

func batchSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Column{Name: "id", Type: Int},
		Column{Name: "x", Type: Float},
		Column{Name: "s", Type: String, Size: 8},
	)
}

func TestBatchRoundTrip(t *testing.T) {
	s := batchSchema(t)
	rows := []Tuple{
		{int64(1), 1.5, "a"},
		{int64(-7), 0.0, ""},
		{int64(42), -2.25, "zz\x00z"},
	}
	b := NewBatch(s)
	if b.Len() != 0 {
		t.Fatalf("empty batch Len = %d", b.Len())
	}
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	got := b.Rows()
	if len(got) != len(rows) {
		t.Fatalf("Rows len = %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		if Compare(got[i], rows[i], nil, nil) != 0 {
			t.Errorf("row %d = %v, want %v", i, got[i], rows[i])
		}
		if Compare(b.Row(i), rows[i], nil, nil) != 0 {
			t.Errorf("Row(%d) = %v, want %v", i, b.Row(i), rows[i])
		}
	}
	if err := b.AppendRow(Tuple{int64(1), 1.0, "way-too-long"}); err == nil {
		t.Error("AppendRow accepted oversized string")
	}
	if err := b.AppendRow(Tuple{1.0, 1.0, ""}); err == nil {
		t.Error("AppendRow accepted wrong-typed value")
	}
}

func TestBatchSliceViewsSurviveAppend(t *testing.T) {
	s := batchSchema(t)
	b := NewBatch(s)
	for i := 0; i < 10; i++ {
		if err := b.AppendRow(Tuple{int64(i), float64(i), "v"}); err != nil {
			t.Fatal(err)
		}
	}
	view := b.Slice(2, 5)
	if view.Len() != 3 {
		t.Fatalf("view Len = %d, want 3", view.Len())
	}
	// Appending to the owner must not clobber the view (cap-clamped).
	for i := 10; i < 200; i++ {
		if err := b.AppendRow(Tuple{int64(i), 0.0, ""}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if got := view.Ints(0)[i]; got != int64(i+2) {
			t.Errorf("view row %d id = %d, want %d", i, got, i+2)
		}
	}
	empty := b.Slice(4, 4)
	if empty.Len() != 0 || len(empty.Rows()) != 0 {
		t.Errorf("empty slice view not empty: len=%d", empty.Len())
	}
}

func TestBatchAppendBatchAndMake(t *testing.T) {
	s := batchSchema(t)
	ids := []int64{5, 6}
	xs := []float64{0.5, 0.25}
	ss := []string{"p", "q"}
	m, err := MakeBatch(s, 2, ids, xs, ss)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(s)
	if err := b.AppendBatch(m); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendBatch(m.Slice(1, 2)); err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 6, 6}
	for i, w := range want {
		if got := b.Ints(0)[i]; got != w {
			t.Errorf("ids[%d] = %d, want %d", i, got, w)
		}
	}
	if _, err := MakeBatch(s, 2, ids, xs); err == nil {
		t.Error("MakeBatch accepted missing column")
	}
	if _, err := MakeBatch(s, 2, xs, ids, ss); err == nil {
		t.Error("MakeBatch accepted type mismatch")
	}
	if _, err := MakeBatch(s, 3, ids, xs, ss); err == nil {
		t.Error("MakeBatch accepted length mismatch")
	}
}

// TestBatchNormKeyMatchesTuple pins that the typed-column key encoder
// produces byte-identical keys to the row encoder in key.go.
func TestBatchNormKeyMatchesTuple(t *testing.T) {
	s := MustSchema(
		Column{Name: "id", Type: Int},
		Column{Name: "s", Type: String, Size: 10},
	)
	rows := []Tuple{
		{int64(0), ""},
		{int64(-1), "a\x00b"},
		{int64(1 << 40), "plain"},
	}
	b := NewBatch(s)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, cols := range [][]int{nil, {0}, {1, 0}} {
		for i, r := range rows {
			want := AppendNormKey(nil, r, cols)
			got := b.AppendNormKey(nil, i, cols)
			if !bytes.Equal(got, want) {
				t.Errorf("cols %v row %d: batch key %x != tuple key %x", cols, i, got, want)
			}
		}
	}
}

func TestBatchProjectAndRowsAt(t *testing.T) {
	s := batchSchema(t)
	b := NewBatch(s)
	for i := 0; i < 4; i++ {
		if err := b.AppendRow(Tuple{int64(i), float64(i) / 2, "r"}); err != nil {
			t.Fatal(err)
		}
	}
	ps, idx, err := s.Project([]string{"s", "id"})
	if err != nil {
		t.Fatal(err)
	}
	pv := b.Project(ps, idx)
	if pv.Len() != 4 {
		t.Fatalf("projected Len = %d", pv.Len())
	}
	if got := pv.Row(2); Compare(got, Tuple{"r", int64(2)}, nil, nil) != 0 {
		t.Errorf("projected row = %v", got)
	}
	sel := b.RowsAt([]int32{3, 0})
	if len(sel) != 2 || sel[0][0].(int64) != 3 || sel[1][0].(int64) != 0 {
		t.Errorf("RowsAt = %v", sel)
	}
	if b.RowsAt([]int32{}) != nil {
		t.Error("RowsAt(empty) should be nil")
	}
}
