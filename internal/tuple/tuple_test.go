package tuple

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Type: Int},
		Column{Name: "score", Type: Float},
		Column{Name: "name", Type: String, Size: 16},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name string
		cols []Column
	}{
		{"empty name", []Column{{Name: "", Type: Int}}},
		{"duplicate", []Column{{Name: "a", Type: Int}, {Name: "a", Type: Float}}},
		{"bad string size", []Column{{Name: "s", Type: String, Size: 0}}},
		{"unknown type", []Column{{Name: "x", Type: ColType(99)}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.cols...); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.NumCols() != 3 {
		t.Fatalf("NumCols = %d", s.NumCols())
	}
	if s.TupleSize() != 8+8+16 {
		t.Errorf("TupleSize = %d, want 32", s.TupleSize())
	}
	if i, ok := s.ColIndex("score"); !ok || i != 1 {
		t.Errorf("ColIndex(score) = %d,%v", i, ok)
	}
	if _, ok := s.ColIndex("nope"); ok {
		t.Error("ColIndex of missing column should be false")
	}
	if s.Col(2).Name != "name" {
		t.Errorf("Col(2) = %+v", s.Col(2))
	}
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Col(0).Name != "id" {
		t.Error("Columns() must return a copy")
	}
	if ColType(99).String() == "" || Int.String() != "int" || Float.String() != "float" || String.String() != "string" {
		t.Error("ColType.String misbehaves")
	}
}

func TestSchemaEqual(t *testing.T) {
	a := testSchema(t)
	b := testSchema(t)
	if !a.Equal(a) || !a.Equal(b) {
		t.Error("identical schemas should be equal")
	}
	c := MustSchema(Column{Name: "id", Type: Int})
	if a.Equal(c) || a.Equal(nil) {
		t.Error("different schemas should not be equal")
	}
}

func TestSchemaProject(t *testing.T) {
	s := testSchema(t)
	p, idx, err := s.Project([]string{"name", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.Col(0).Name != "name" || p.Col(1).Name != "id" {
		t.Errorf("projected schema wrong: %+v", p.Columns())
	}
	if len(idx) != 2 || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("projection indices = %v", idx)
	}
	if _, _, err := s.Project([]string{"missing"}); err == nil {
		t.Error("projecting a missing column should error")
	}
}

func TestSchemaConcat(t *testing.T) {
	left := MustSchema(Column{Name: "id", Type: Int}, Column{Name: "a", Type: Int})
	right := MustSchema(Column{Name: "id", Type: Int}, Column{Name: "b", Type: Float})
	j, err := left.Concat(right, "l", "r")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, j.NumCols())
	for i := range names {
		names[i] = j.Col(i).Name
	}
	want := []string{"l.id", "a", "r.id", "b"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("concat names = %v, want %v", names, want)
		}
	}
}

func TestSchemaWithPadding(t *testing.T) {
	s := testSchema(t) // 32 bytes
	p, err := s.WithPadding(200)
	if err != nil {
		t.Fatal(err)
	}
	if p.TupleSize() != 200 {
		t.Errorf("padded size = %d, want 200", p.TupleSize())
	}
	same, err := s.WithPadding(10)
	if err != nil {
		t.Fatal(err)
	}
	if same != s {
		t.Error("padding below current size should return the schema unchanged")
	}
}

func TestValidate(t *testing.T) {
	s := testSchema(t)
	good := Tuple{int64(1), 2.5, "bob"}
	if err := good.Validate(s); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	bad := []Tuple{
		{int64(1), 2.5},                          // arity
		{1, 2.5, "x"},                            // int not int64
		{int64(1), "x", "y"},                     // float type
		{int64(1), 2.5, 42},                      // string type
		{int64(1), 2.5, strings.Repeat("x", 17)}, // overflow width
	}
	for i, tp := range bad {
		if err := tp.Validate(s); err == nil {
			t.Errorf("bad tuple %d accepted", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		name := strings.Repeat("a", rng.Intn(17))
		in := Tuple{rng.Int63() - rng.Int63(), rng.NormFloat64() * 1e6, name}
		buf := in.Encode(s, nil)
		if len(buf) != s.TupleSize() {
			t.Fatalf("encoded %d bytes, want %d", len(buf), s.TupleSize())
		}
		out, rest, err := Decode(s, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("leftover %d bytes", len(rest))
		}
		if Compare(in, out, nil, nil) != 0 {
			t.Fatalf("round trip mismatch: %v vs %v", in, out)
		}
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	s := testSchema(t)
	if _, _, err := Decode(s, make([]byte, s.TupleSize()-1)); err == nil {
		t.Error("short buffer should error")
	}
}

func TestDecodeMultipleFromStream(t *testing.T) {
	s := MustSchema(Column{Name: "v", Type: Int})
	var buf []byte
	for i := int64(0); i < 5; i++ {
		buf = (Tuple{i}).Encode(s, buf)
	}
	for i := int64(0); i < 5; i++ {
		var tp Tuple
		var err error
		tp, buf, err = Decode(s, buf)
		if err != nil {
			t.Fatal(err)
		}
		if tp[0].(int64) != i {
			t.Fatalf("stream decode got %v at %d", tp[0], i)
		}
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{int64(3), int64(2), 1},
		{1.5, 2.5, -1},
		{2.5, 2.5, 0},
		{int64(2), 1.5, 1},
		{1.5, int64(2), -1},
		{int64(2), 2.0, 0},
		{"a", "b", -1},
		{"b", "b", 0},
		{"c", "b", 1},
	}
	for _, c := range cases {
		if got := CompareValues(c.a, c.b); got != c.want {
			t.Errorf("CompareValues(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareValuesPanicsOnMixedTypes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("comparing string to int should panic")
		}
	}()
	CompareValues("a", int64(1))
}

func TestCompareTuples(t *testing.T) {
	a := Tuple{int64(1), "x"}
	b := Tuple{int64(1), "y"}
	if Compare(a, b, nil, nil) != -1 {
		t.Error("lexicographic compare failed")
	}
	// Column-directed comparison across different schemas.
	c := Tuple{"x", int64(1)}
	if Compare(a, c, []int{0}, []int{1}) != 0 {
		t.Error("cross-column compare failed")
	}
	// Prefix ordering: shorter tuple sorts first.
	if Compare(Tuple{int64(1)}, a, nil, nil) != -1 {
		t.Error("prefix compare failed")
	}
	if Compare(a, Tuple{int64(1)}, nil, nil) != 1 {
		t.Error("prefix compare failed (long side)")
	}
}

func TestKeyDistinguishesValues(t *testing.T) {
	s := testSchema(t)
	a := Tuple{int64(1), 2.0, "ab"}
	b := Tuple{int64(1), 2.0, "ab"}
	c := Tuple{int64(1), 2.0, "ac"}
	if a.Key(s, nil) != b.Key(s, nil) {
		t.Error("equal tuples must share keys")
	}
	if a.Key(s, nil) == c.Key(s, nil) {
		t.Error("distinct tuples must have distinct keys")
	}
	// Projected key only looks at chosen columns.
	if a.Key(s, []int{0, 1}) != c.Key(s, []int{0, 1}) {
		t.Error("projected keys should match when projected values match")
	}
}

func TestKeyOrderPreservingForInts(t *testing.T) {
	// The int encoding inside Key is order-preserving (sign-flipped
	// big-endian); verify with random pairs.
	f := func(a, b int64) bool {
		s := MustSchema(Column{Name: "v", Type: Int})
		ka := (Tuple{a}).Key(s, nil)
		kb := (Tuple{b}).Key(s, nil)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKeyNoCollisionAcrossTypesOrBoundaries(t *testing.T) {
	s2 := MustSchema(
		Column{Name: "a", Type: String, Size: 8},
		Column{Name: "b", Type: String, Size: 8},
	)
	// ("ab","c") vs ("a","bc") must not collide thanks to terminators.
	x := Tuple{"ab", "c"}
	y := Tuple{"a", "bc"}
	if x.Key(s2, nil) == y.Key(s2, nil) {
		t.Error("string boundary collision in Key")
	}
}

func TestProjectConcatClone(t *testing.T) {
	tp := Tuple{int64(1), 2.5, "z"}
	p := tp.Project([]int{2, 0})
	if len(p) != 2 || p[0] != "z" || p[1] != int64(1) {
		t.Errorf("Project = %v", p)
	}
	q := tp.Concat(Tuple{int64(9)})
	if len(q) != 4 || q[3] != int64(9) {
		t.Errorf("Concat = %v", q)
	}
	c := tp.Clone()
	c[0] = int64(99)
	if tp[0] != int64(1) {
		t.Error("Clone must not alias")
	}
}

func TestTupleString(t *testing.T) {
	got := Tuple{int64(1), "x"}.String()
	if got != "(1, x)" {
		t.Errorf("String = %q", got)
	}
}

func TestEncodeDecodePropertyRandomSchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		ncols := 1 + rng.Intn(6)
		cols := make([]Column, ncols)
		for i := range cols {
			switch rng.Intn(3) {
			case 0:
				cols[i] = Column{Name: colName(i), Type: Int}
			case 1:
				cols[i] = Column{Name: colName(i), Type: Float}
			default:
				cols[i] = Column{Name: colName(i), Type: String, Size: 1 + rng.Intn(12)}
			}
		}
		s, err := NewSchema(cols...)
		if err != nil {
			t.Fatal(err)
		}
		tp := make(Tuple, ncols)
		for i, c := range cols {
			switch c.Type {
			case Int:
				tp[i] = rng.Int63n(1e9) - 5e8
			case Float:
				tp[i] = math.Round(rng.NormFloat64()*1000) / 4
			case String:
				tp[i] = strings.Repeat("q", rng.Intn(c.Size+1))
			}
		}
		buf := tp.Encode(s, nil)
		got, _, err := Decode(s, buf)
		if err != nil {
			t.Fatal(err)
		}
		if Compare(tp, got, nil, nil) != 0 {
			t.Fatalf("round trip mismatch: %v vs %v (schema %v)", tp, got, cols)
		}
	}
}

func colName(i int) string { return string(rune('a' + i)) }
