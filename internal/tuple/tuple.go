// Package tuple defines schemas and tuples for the tcq mini-DBMS.
//
// Tuples are fixed-size records, matching the paper's experimental setup
// (200-byte tuples, 5 per 1 KB disk block). A schema declares typed,
// named columns; string columns carry a fixed byte width so that every
// tuple of a relation encodes to exactly Schema.TupleSize bytes.
package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// ColType enumerates the supported column types.
type ColType int

const (
	// Int is a 64-bit signed integer column (8 bytes).
	Int ColType = iota
	// Float is a 64-bit IEEE-754 column (8 bytes).
	Float
	// String is a fixed-width byte string column (Size bytes,
	// zero-padded; embedded NUL bytes terminate the logical value).
	String
)

// String returns the type name.
func (t ColType) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type ColType
	Size int // byte width; meaningful for String columns only
}

// width returns the encoded byte width of the column.
func (c Column) width() int {
	switch c.Type {
	case Int, Float:
		return 8
	case String:
		return c.Size
	default:
		return 0
	}
}

// Schema is an ordered list of columns. Schemas are immutable once built;
// share them freely.
type Schema struct {
	cols  []Column
	index map[string]int
	size  int
}

// NewSchema builds a schema from columns. It returns an error on
// duplicate or empty column names, or on a String column with a
// non-positive size.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("tuple: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("tuple: duplicate column %q", c.Name)
		}
		if c.Type == String && c.Size <= 0 {
			return nil, fmt.Errorf("tuple: string column %q needs positive size", c.Name)
		}
		if c.Type != Int && c.Type != Float && c.Type != String {
			return nil, fmt.Errorf("tuple: column %q has unknown type %d", c.Name, int(c.Type))
		}
		s.index[c.Name] = i
		s.cols = append(s.cols, c)
		s.size += c.width()
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// ColIndex returns the index of the named column and whether it exists.
func (s *Schema) ColIndex(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// TupleSize returns the fixed encoded size of a tuple in bytes.
func (s *Schema) TupleSize() int { return s.size }

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// Project returns a new schema with only the named columns, in the given
// order, along with the source indices of those columns.
func (s *Schema) Project(names []string) (*Schema, []int, error) {
	cols := make([]Column, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, nil, fmt.Errorf("tuple: unknown column %q", n)
		}
		cols = append(cols, s.cols[i])
		idx = append(idx, i)
	}
	out, err := NewSchema(cols...)
	if err != nil {
		return nil, nil, err
	}
	return out, idx, nil
}

// Concat returns the schema of a joined tuple: s's columns followed by
// o's. Name clashes are disambiguated with the given prefixes (applied
// as "prefix.name") only where a clash occurs.
func (s *Schema) Concat(o *Schema, leftPrefix, rightPrefix string) (*Schema, error) {
	cols := make([]Column, 0, len(s.cols)+len(o.cols))
	seen := make(map[string]bool, len(s.cols))
	for _, c := range s.cols {
		seen[c.Name] = true
		cols = append(cols, c)
	}
	for _, c := range o.cols {
		if seen[c.Name] {
			lc := c
			lc.Name = rightPrefix + "." + c.Name
			// Also rename the left occurrence if not already prefixed.
			for i := range cols {
				if cols[i].Name == c.Name {
					cols[i].Name = leftPrefix + "." + c.Name
				}
			}
			cols = append(cols, lc)
			continue
		}
		cols = append(cols, c)
	}
	return NewSchema(cols...)
}

// WithPadding returns a copy of the schema extended with an unnamed
// padding string column so that TupleSize reaches total bytes. If the
// schema is already at least total bytes wide it is returned unchanged.
func (s *Schema) WithPadding(total int) (*Schema, error) {
	if s.size >= total {
		return s, nil
	}
	cols := s.Columns()
	cols = append(cols, Column{Name: "_pad", Type: String, Size: total - s.size})
	return NewSchema(cols...)
}

// Value is one field of a tuple: int64, float64 or string depending on
// the column type.
type Value interface{}

// Tuple is an ordered list of values conforming to some schema.
type Tuple []Value

// Validate checks that the tuple conforms to the schema.
func (t Tuple) Validate(s *Schema) error {
	if len(t) != len(s.cols) {
		return fmt.Errorf("tuple: arity %d, schema wants %d", len(t), len(s.cols))
	}
	for i, c := range s.cols {
		switch c.Type {
		case Int:
			if _, ok := t[i].(int64); !ok {
				return fmt.Errorf("tuple: column %q wants int64, got %T", c.Name, t[i])
			}
		case Float:
			if _, ok := t[i].(float64); !ok {
				return fmt.Errorf("tuple: column %q wants float64, got %T", c.Name, t[i])
			}
		case String:
			v, ok := t[i].(string)
			if !ok {
				return fmt.Errorf("tuple: column %q wants string, got %T", c.Name, t[i])
			}
			if len(v) > c.Size {
				return fmt.Errorf("tuple: column %q value %d bytes exceeds width %d", c.Name, len(v), c.Size)
			}
		}
	}
	return nil
}

// Encode appends the fixed-size binary encoding of the tuple to dst and
// returns the extended slice. The tuple must be valid for the schema.
func (t Tuple) Encode(s *Schema, dst []byte) []byte {
	for i, c := range s.cols {
		switch c.Type {
		case Int:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(t[i].(int64)))
		case Float:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t[i].(float64)))
		case String:
			v := t[i].(string)
			dst = append(dst, v...)
			for p := len(v); p < c.Size; p++ {
				dst = append(dst, 0)
			}
		}
	}
	return dst
}

// Decode parses one tuple from src, which must hold at least
// s.TupleSize() bytes. It returns the tuple and the remaining bytes.
func Decode(s *Schema, src []byte) (Tuple, []byte, error) {
	if len(src) < s.size {
		return nil, src, fmt.Errorf("tuple: short buffer: %d < %d", len(src), s.size)
	}
	t := make(Tuple, len(s.cols))
	for i, c := range s.cols {
		switch c.Type {
		case Int:
			t[i] = int64(binary.LittleEndian.Uint64(src))
			src = src[8:]
		case Float:
			t[i] = math.Float64frombits(binary.LittleEndian.Uint64(src))
			src = src[8:]
		case String:
			raw := src[:c.Size]
			src = src[c.Size:]
			if j := indexByte(raw, 0); j >= 0 {
				raw = raw[:j]
			}
			t[i] = string(raw)
		}
	}
	return t, src, nil
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// CompareValues orders two values of the same column type. It returns
// -1, 0 or +1. Mixed int/float comparisons promote to float64.
func CompareValues(a, b Value) int {
	switch av := a.(type) {
	case int64:
		switch bv := b.(type) {
		case int64:
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			}
			return 0
		case float64:
			return compareFloat(float64(av), bv)
		}
	case float64:
		switch bv := b.(type) {
		case float64:
			return compareFloat(av, bv)
		case int64:
			return compareFloat(av, float64(bv))
		}
	case string:
		if bv, ok := b.(string); ok {
			return strings.Compare(av, bv)
		}
	}
	panic(fmt.Sprintf("tuple: incomparable values %T and %T", a, b))
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Compare orders two tuples lexicographically over the given column
// indices of each side (colsA on a, colsB on b; the slices must have the
// same length). Nil column slices compare all columns positionally.
func Compare(a, b Tuple, colsA, colsB []int) int {
	if colsA == nil {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		for i := 0; i < n; i++ {
			if c := CompareValues(a[i], b[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(a) < len(b):
			return -1
		case len(a) > len(b):
			return 1
		}
		return 0
	}
	for i := range colsA {
		if c := CompareValues(a[colsA[i]], b[colsB[i]]); c != 0 {
			return c
		}
	}
	return 0
}

// Key returns a compact string key identifying the tuple's values on the
// given columns (all columns when cols is nil). Keys are suitable for
// map-based deduplication: distinct value lists yield distinct keys.
func (t Tuple) Key(s *Schema, cols []int) string {
	var sb strings.Builder
	emit := func(i int) {
		switch v := t[i].(type) {
		case int64:
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(v)^(1<<63))
			sb.WriteByte('i')
			sb.Write(buf[:])
		case float64:
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
			sb.WriteByte('f')
			sb.Write(buf[:])
		case string:
			sb.WriteByte('s')
			sb.WriteString(v)
			sb.WriteByte(0)
		}
	}
	if cols == nil {
		for i := range t {
			emit(i)
		}
	} else {
		for _, i := range cols {
			emit(i)
		}
	}
	return sb.String()
}

// Project returns a new tuple holding the values at the given indices.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// Concat returns the concatenation of two tuples (for join outputs).
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Clone returns a shallow copy of the tuple (values are immutable).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprintf("%v", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
