// Package histogram implements equi-depth histograms for selectivity
// estimation — the "prestored statistics" alternative of the paper's
// §3.1 ([PsCo 84], [MuDe 88]): selectivities of selection predicates
// are estimated from maintained per-column statistics instead of
// run-time samples. The paper rejects this approach for general use
// (maintenance cost, one entry per operator/operand/formula
// combination) but it is the right tool when the query workload is
// fixed; tcq offers it as a selectivity source for exactly that case.
//
// An equi-depth histogram splits a column's sorted values into buckets
// of (nearly) equal tuple counts, remembering each bucket's bounds.
// Selectivity of "col op constant" follows from bucket interpolation;
// distinct-value counts per bucket support equality predicates.
package histogram

import (
	"fmt"
	"sort"

	"tcq/internal/ra"
	"tcq/internal/tuple"
)

// Histogram is an equi-depth histogram over one numeric column.
type Histogram struct {
	col     string
	buckets []bucket
	total   int64
}

// bucket covers values in [lo, hi] (inclusive bounds as observed).
type bucket struct {
	lo, hi   float64
	count    int64
	distinct int64
}

// Build constructs an equi-depth histogram with the given bucket count
// over a numeric column of the supplied tuples. It fails for unknown or
// non-numeric columns, and for a non-positive bucket count.
func Build(schema *tuple.Schema, ts []tuple.Tuple, col string, bucketCount int) (*Histogram, error) {
	if bucketCount < 1 {
		return nil, fmt.Errorf("histogram: need at least one bucket")
	}
	i, ok := schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("histogram: unknown column %q", col)
	}
	switch schema.Col(i).Type {
	case tuple.Int, tuple.Float:
	default:
		return nil, fmt.Errorf("histogram: column %q is not numeric", col)
	}
	vals := make([]float64, 0, len(ts))
	for _, t := range ts {
		switch v := t[i].(type) {
		case int64:
			vals = append(vals, float64(v))
		case float64:
			vals = append(vals, v)
		}
	}
	h := &Histogram{col: col, total: int64(len(vals))}
	if len(vals) == 0 {
		return h, nil
	}
	sort.Float64s(vals)
	if bucketCount > len(vals) {
		bucketCount = len(vals)
	}
	per := len(vals) / bucketCount
	rem := len(vals) % bucketCount
	pos := 0
	for b := 0; b < bucketCount; b++ {
		n := per
		if b < rem {
			n++
		}
		if n == 0 {
			continue
		}
		seg := vals[pos : pos+n]
		bk := bucket{lo: seg[0], hi: seg[n-1], count: int64(n), distinct: 1}
		for j := 1; j < n; j++ {
			if seg[j] != seg[j-1] {
				bk.distinct++
			}
		}
		h.buckets = append(h.buckets, bk)
		pos += n
	}
	return h, nil
}

// Column returns the histogrammed column name.
func (h *Histogram) Column() string { return h.col }

// Total returns the number of tuples summarised.
func (h *Histogram) Total() int64 { return h.total }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Distinct returns the (approximate) number of distinct values: the sum
// of per-bucket distinct counts, which double-counts values that span
// bucket boundaries by at most Buckets()−1.
func (h *Histogram) Distinct() int64 {
	var d int64
	for _, b := range h.buckets {
		d += b.distinct
	}
	return d
}

// LessEq estimates the number of tuples with value <= x by bucket
// interpolation (the standard equi-depth estimate: full buckets below
// x, a linear fraction of the straddling bucket).
func (h *Histogram) LessEq(x float64) float64 {
	var n float64
	for _, b := range h.buckets {
		switch {
		case b.hi <= x:
			n += float64(b.count)
		case b.lo > x:
			return n
		default:
			width := b.hi - b.lo
			if width <= 0 {
				// Single-valued bucket straddling x can only mean
				// b.lo == x (b.lo > x handled above).
				n += float64(b.count)
				return n
			}
			frac := (x - b.lo) / width
			n += frac * float64(b.count)
			return n
		}
	}
	return n
}

// EqCount estimates the number of tuples equal to x: for every bucket
// whose range contains x, the bucket's count divided by its distinct
// values (uniform-within-bucket assumption). Heavy values span several
// equi-depth buckets, so contributions are summed.
func (h *Histogram) EqCount(x float64) float64 {
	var n float64
	for _, b := range h.buckets {
		if x < b.lo || x > b.hi || b.distinct == 0 {
			continue
		}
		n += float64(b.count) / float64(b.distinct)
	}
	return n
}

// Selectivity estimates the fraction of tuples satisfying "col op x"
// (0 when the histogram is empty).
func (h *Histogram) Selectivity(op ra.CmpOp, x float64) float64 {
	if h.total == 0 {
		return 0
	}
	t := float64(h.total)
	var n float64
	switch op {
	case ra.Le:
		n = h.LessEq(x)
	case ra.Lt:
		n = h.LessEq(x) - h.EqCount(x)
	case ra.Ge:
		n = t - h.LessEq(x) + h.EqCount(x)
	case ra.Gt:
		n = t - h.LessEq(x)
	case ra.Eq:
		n = h.EqCount(x)
	case ra.Ne:
		n = t - h.EqCount(x)
	default:
		return 0
	}
	return clamp01(n / t)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Catalog holds histograms per (relation, column) and estimates
// selectivities for selection predicates over base relations.
type Catalog struct {
	hists map[string]*Histogram // key: relation + "\x00" + column
}

// NewCatalog returns an empty histogram catalog.
func NewCatalog() *Catalog {
	return &Catalog{hists: map[string]*Histogram{}}
}

// Add builds and registers a histogram for one relation column.
func (c *Catalog) Add(relation string, schema *tuple.Schema, ts []tuple.Tuple, col string, buckets int) error {
	h, err := Build(schema, ts, col, buckets)
	if err != nil {
		return err
	}
	c.hists[relation+"\x00"+col] = h
	return nil
}

// Get returns the histogram for a relation column, if present.
func (c *Catalog) Get(relation, col string) (*Histogram, bool) {
	h, ok := c.hists[relation+"\x00"+col]
	return h, ok
}

// PredSelectivity estimates the selectivity of a selection predicate
// over the named base relation from the registered histograms. It
// handles comparisons of a histogrammed column against a numeric
// constant, combined with and/or/not under an independence assumption.
// The boolean result reports whether every leaf of the predicate could
// be estimated; when false the estimate is unusable and the caller
// should fall back to run-time estimation.
func (c *Catalog) PredSelectivity(relation string, p ra.Pred) (float64, bool) {
	switch q := p.(type) {
	case ra.True, *ra.True:
		return 1, true
	case *ra.Cmp:
		return c.cmpSelectivity(relation, q)
	case *ra.And:
		l, okL := c.PredSelectivity(relation, q.L)
		r, okR := c.PredSelectivity(relation, q.R)
		return l * r, okL && okR
	case *ra.Or:
		l, okL := c.PredSelectivity(relation, q.L)
		r, okR := c.PredSelectivity(relation, q.R)
		return clamp01(l + r - l*r), okL && okR
	case *ra.Not:
		s, ok := c.PredSelectivity(relation, q.P)
		return clamp01(1 - s), ok
	default:
		return 0, false
	}
}

func (c *Catalog) cmpSelectivity(relation string, q *ra.Cmp) (float64, bool) {
	colRef, constant, op, ok := normalizeCmp(q)
	if !ok {
		return 0, false
	}
	h, found := c.Get(relation, colRef)
	if !found {
		return 0, false
	}
	return h.Selectivity(op, constant), true
}

// normalizeCmp extracts (column, constant, op) from a comparison,
// flipping the operator when the constant is on the left.
func normalizeCmp(q *ra.Cmp) (col string, x float64, op ra.CmpOp, ok bool) {
	num := func(o ra.Operand) (float64, bool) {
		cst, isConst := o.(ra.Const)
		if !isConst {
			return 0, false
		}
		switch v := cst.Value.(type) {
		case int64:
			return float64(v), true
		case float64:
			return v, true
		case int:
			return float64(v), true
		default:
			return 0, false
		}
	}
	if cr, isCol := q.Left.(ra.Col); isCol {
		if v, isNum := num(q.Right); isNum {
			return cr.Name, v, q.Op, true
		}
		return "", 0, 0, false
	}
	if cr, isCol := q.Right.(ra.Col); isCol {
		if v, isNum := num(q.Left); isNum {
			return cr.Name, v, flip(q.Op), true
		}
	}
	return "", 0, 0, false
}

func flip(op ra.CmpOp) ra.CmpOp {
	switch op {
	case ra.Lt:
		return ra.Gt
	case ra.Le:
		return ra.Ge
	case ra.Gt:
		return ra.Lt
	case ra.Ge:
		return ra.Le
	default:
		return op // Eq, Ne are symmetric
	}
}
