package histogram

import (
	"math"
	"math/rand"
	"testing"

	"tcq/internal/ra"
	"tcq/internal/tuple"
)

func numSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Column{Name: "a", Type: tuple.Int},
		tuple.Column{Name: "f", Type: tuple.Float},
		tuple.Column{Name: "s", Type: tuple.String, Size: 4},
	)
}

func intTuples(vals ...int64) []tuple.Tuple {
	out := make([]tuple.Tuple, len(vals))
	for i, v := range vals {
		out[i] = tuple.Tuple{v, float64(v), "x"}
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	s := numSchema()
	if _, err := Build(s, nil, "a", 0); err == nil {
		t.Error("zero buckets should fail")
	}
	if _, err := Build(s, nil, "zz", 4); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := Build(s, nil, "s", 4); err == nil {
		t.Error("string column should fail")
	}
	h, err := Build(s, nil, "a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 0 || h.Buckets() != 0 {
		t.Errorf("empty histogram: %d/%d", h.Total(), h.Buckets())
	}
	if h.Selectivity(ra.Lt, 5) != 0 {
		t.Error("empty histogram selectivity should be 0")
	}
}

func TestEquiDepthBucketsBalanced(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	h, err := Build(numSchema(), intTuples(vals...), "a", 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 10 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
	for _, b := range h.buckets {
		if b.count != 100 {
			t.Errorf("bucket count = %d, want 100 (equi-depth)", b.count)
		}
	}
	if h.Total() != 1000 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestBucketCountClampedToValues(t *testing.T) {
	h, err := Build(numSchema(), intTuples(1, 2, 3), "a", 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 3 {
		t.Errorf("buckets = %d, want 3", h.Buckets())
	}
}

func TestSelectivityUniformColumn(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	h, _ := Build(numSchema(), intTuples(vals...), "a", 20)
	cases := []struct {
		op   ra.CmpOp
		x    float64
		want float64
		tol  float64
	}{
		{ra.Lt, 250, 0.25, 0.02},
		{ra.Le, 499, 0.50, 0.02},
		{ra.Gt, 900, 0.10, 0.02},
		{ra.Ge, 0, 1.00, 0.01},
		{ra.Eq, 123, 0.001, 0.001},
		{ra.Ne, 123, 0.999, 0.001},
		{ra.Lt, -5, 0, 0.001},
		{ra.Gt, 5000, 0, 0.001},
	}
	for _, c := range cases {
		got := h.Selectivity(c.op, c.x)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("sel(a %v %g) = %.4f, want %.4f ± %.3f", c.op, c.x, got, c.want, c.tol)
		}
	}
}

func TestSelectivitySkewedColumn(t *testing.T) {
	// 900 zeros + values 1..100: equi-depth handles the skew where
	// equi-width would not.
	vals := make([]int64, 0, 1000)
	for i := 0; i < 900; i++ {
		vals = append(vals, 0)
	}
	for i := 1; i <= 100; i++ {
		vals = append(vals, int64(i))
	}
	h, _ := Build(numSchema(), intTuples(vals...), "a", 10)
	if got := h.Selectivity(ra.Eq, 0); math.Abs(got-0.9) > 0.03 {
		t.Errorf("sel(a = 0) = %.3f, want ~0.9", got)
	}
	if got := h.Selectivity(ra.Gt, 0); math.Abs(got-0.1) > 0.03 {
		t.Errorf("sel(a > 0) = %.3f, want ~0.1", got)
	}
}

func TestSelectivityMatchesTruthOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(rng.NormFloat64()*100) + 500
	}
	h, _ := Build(numSchema(), intTuples(vals...), "a", 50)
	for _, x := range []float64{300, 450, 500, 550, 700} {
		truth := 0
		for _, v := range vals {
			if float64(v) < x {
				truth++
			}
		}
		got := h.Selectivity(ra.Lt, x)
		want := float64(truth) / float64(len(vals))
		if math.Abs(got-want) > 0.02 {
			t.Errorf("sel(a < %g) = %.4f, truth %.4f", x, got, want)
		}
	}
}

func TestFloatColumn(t *testing.T) {
	ts := []tuple.Tuple{
		{int64(0), 0.5, "x"}, {int64(0), 1.5, "x"},
		{int64(0), 2.5, "x"}, {int64(0), 3.5, "x"},
	}
	h, err := Build(numSchema(), ts, "f", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Selectivity(ra.Lt, 2.0); math.Abs(got-0.5) > 0.15 {
		t.Errorf("float sel = %.3f, want ~0.5", got)
	}
}

func TestDistinct(t *testing.T) {
	h, _ := Build(numSchema(), intTuples(1, 1, 2, 2, 3, 3, 4, 4), "a", 2)
	// 4 distinct values; bucket-boundary double counting allowed up to
	// buckets-1.
	if d := h.Distinct(); d < 4 || d > 5 {
		t.Errorf("distinct = %d, want 4..5", d)
	}
}

func TestCatalogPredSelectivity(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	c := NewCatalog()
	if err := c.Add("r", numSchema(), intTuples(vals...), "a", 20); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("r", "a"); !ok {
		t.Fatal("histogram not registered")
	}
	if _, ok := c.Get("r", "zz"); ok {
		t.Fatal("phantom histogram")
	}

	cases := []struct {
		pred ra.Pred
		want float64
		ok   bool
	}{
		{&ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(100)}}, 0.1, true},
		{&ra.Cmp{Left: ra.Const{Value: int64(100)}, Op: ra.Gt, Right: ra.Col{Name: "a"}}, 0.1, true}, // flipped
		{&ra.Cmp{Left: ra.Const{Value: 900.0}, Op: ra.Le, Right: ra.Col{Name: "a"}}, 0.1, true},      // flipped Ge
		{ra.True{}, 1, true},
		{&ra.And{
			L: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(500)}},
			R: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Ge, Right: ra.Const{Value: int64(250)}},
		}, 0.5 * 0.75, true}, // independence assumption
		{&ra.Or{
			L: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(100)}},
			R: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Ge, Right: ra.Const{Value: int64(900)}},
		}, 0.1 + 0.1 - 0.01, true},
		{&ra.Not{P: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(100)}}}, 0.9, true},
		// Unestimable leaves: unknown column, col-vs-col, string const.
		{&ra.Cmp{Left: ra.Col{Name: "zz"}, Op: ra.Lt, Right: ra.Const{Value: int64(1)}}, 0, false},
		{&ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Eq, Right: ra.Col{Name: "a"}}, 0, false},
		{&ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Eq, Right: ra.Const{Value: "x"}}, 0, false},
	}
	for i, cse := range cases {
		got, ok := c.PredSelectivity("r", cse.pred)
		if ok != cse.ok {
			t.Errorf("case %d (%s): ok = %v, want %v", i, cse.pred, ok, cse.ok)
			continue
		}
		if ok && math.Abs(got-cse.want) > 0.03 {
			t.Errorf("case %d (%s): sel = %.4f, want %.4f", i, cse.pred, got, cse.want)
		}
	}
	// Missing relation.
	if _, ok := c.PredSelectivity("missing",
		&ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(1)}}); ok {
		t.Error("missing relation should not estimate")
	}
}
