package sched

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"tcq/internal/core"
	"tcq/internal/storage"
	"tcq/internal/trace"
	"tcq/internal/vclock"
)

// ControllerOptions configures a concurrent admission Controller.
type ControllerOptions struct {
	Options
	// MaxConcurrent bounds the number of transactions executing at
	// once; default GOMAXPROCS.
	MaxConcurrent int
	// Jitter is the multiplicative noise of the per-transaction
	// simulated clocks (used when the root store runs on a simulated
	// clock); default 0.02.
	Jitter float64
}

// RejectReason classifies an admission-control rejection, so callers
// (and network front ends mapping rejections to HTTP statuses) can
// distinguish "retrying is pointless" from "retry once capacity
// frees".
type RejectReason int

const (
	// RejectNone means the work was admitted.
	RejectNone RejectReason = iota
	// RejectInfeasible means the worst case alone exceeds the budget:
	// no amount of waiting makes the request admissible (HTTP 422).
	RejectInfeasible
	// RejectAtCapacity means the worst-case work already committed to
	// in-flight transactions leaves no room: a retry after some
	// committed work drains can succeed (HTTP 429 + Retry-After).
	RejectAtCapacity
	// RejectClosed means the controller has stopped accepting work
	// (Wait returned, or the service is draining; HTTP 503).
	RejectClosed
)

// String names the reason in the stable slug form used for the split
// txns_rejected_* counters and wire payloads.
func (r RejectReason) String() string {
	switch r {
	case RejectInfeasible:
		return "infeasible"
	case RejectAtCapacity:
		return "at-capacity"
	case RejectClosed:
		return "closed"
	default:
		return "none"
	}
}

// RejectionError is the typed admission-control rejection: why the
// work was refused and the state that refused it.
type RejectionError struct {
	Reason RejectReason
	// WCET is the worst-case execution time admission was asked for;
	// Budget the deadline/time-window it had to fit in; Committed the
	// in-flight worst-case work at decision time.
	WCET      time.Duration
	Budget    time.Duration
	Committed time.Duration
	// RetryAfter, for RejectAtCapacity, is how much committed work
	// must drain before an identical request fits (a lower bound on
	// the useful retry delay; zero for other reasons).
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectionError) Error() string {
	switch e.Reason {
	case RejectInfeasible:
		return fmt.Sprintf("sched: rejected (infeasible): worst case %v exceeds budget %v", e.WCET, e.Budget)
	case RejectAtCapacity:
		return fmt.Sprintf("sched: rejected (at capacity): committed %v + worst case %v exceeds budget %v, retry after %v",
			e.Committed, e.WCET, e.Budget, e.RetryAfter)
	case RejectClosed:
		return "sched: rejected (closed): controller no longer accepting work"
	default:
		return "sched: admitted"
	}
}

// Controller is the concurrent counterpart of Scheduler.Run: an
// admission controller that accepts transactions as they arrive and
// runs each admitted transaction on its own goroutine against a
// private session of the store. Where Run simulates an EDF dispatch
// loop on one shared clock, the Controller really is concurrent — it
// is exercised under the race detector — so each transaction measures
// time on its own session clock, with Deadline interpreted as a
// per-transaction budget from dispatch.
//
// Admission uses the classic uniprocessor test, which is conservative
// under concurrency: a transaction is admitted only if the worst-case
// work already committed to in-flight transactions plus its own
// worst case fits inside its budget. An admitted quota-policy
// transaction therefore has wcet ≤ Deadline and can only miss by
// overrunning its slack allowance.
//
// Beyond whole transactions, Admit reserves capacity for externally
// executed work (the tcqd network service admits each HTTP query this
// way and runs it on the engine itself), so one Controller per tenant
// is the per-tenant admission gate.
//
// Submit, Admit and Wait are safe for concurrent use; Submit or Admit
// after Wait has returned (or Drain began) reports RejectClosed.
type Controller struct {
	store *storage.Store
	opts  ControllerOptions

	slots chan struct{} // bounds concurrently executing transactions

	mu        sync.Mutex
	committed time.Duration // worst-case work of admitted, unfinished txns
	results   []TxnResult
	err       error // first execution error
	closed    bool
	waitCh    chan struct{} // closed+replaced to broadcast capacity release
	wg        sync.WaitGroup
}

// NewController creates a concurrent admission controller over a store.
func NewController(store *storage.Store, opts ControllerOptions) *Controller {
	if opts.Slack <= 0 {
		opts.Slack = 0.05
	}
	if opts.MaxConcurrent < 1 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if opts.Jitter <= 0 {
		opts.Jitter = 0.02
	}
	return &Controller{
		store:  store,
		opts:   opts,
		slots:  make(chan struct{}, opts.MaxConcurrent),
		waitCh: make(chan struct{}),
	}
}

// Submit offers one transaction. It returns immediately: true means
// the transaction was admitted and is (or will be) running on its own
// goroutine; false means admission control rejected it and it consumed
// no resources. Exact-policy controllers admit everything, mirroring
// Scheduler.Run. SubmitTxn is the variant reporting why.
func (c *Controller) Submit(tx Txn) bool { return c.SubmitTxn(tx) == nil }

// SubmitTxn offers one transaction like Submit, but a rejection is
// reported as a typed *RejectionError (nil means admitted).
func (c *Controller) SubmitTxn(tx Txn) error {
	wcet := tx.wcet(c.opts.Slack)
	rej := c.reserve(wcet, tx.Deadline, c.opts.Policy == QuotaQueries)
	if rej != nil {
		c.mu.Lock()
		c.results = append(c.results, TxnResult{ID: tx.ID})
		c.mu.Unlock()
		c.countReject(rej.Reason)
		c.opts.Log.TxnRejected(tx.ID, wcet, tx.Deadline)
		return rej
	}
	c.opts.Metrics.Add("txns_admitted", 1)
	c.opts.Log.TxnAdmitted(tx.ID, wcet, tx.Deadline)
	go c.run(tx, wcet)
	return nil
}

// Admit reserves admission-controlled capacity for work executed by
// the caller (rather than by the controller itself): the uniprocessor
// test admits worst case wcet against the budget window iff the
// committed in-flight worst-case work leaves room. On admission it
// returns a release function — call it exactly once, when the work
// finishes, to free the capacity — and counts txns_admitted; on
// rejection it returns a typed *RejectionError and bumps the
// reason-split rejection counters. id labels admission-log events.
func (c *Controller) Admit(id int, wcet, budget time.Duration) (release func(), err error) {
	release, _, err = c.AdmitWait(id, wcet, budget, 0)
	return release, err
}

// AdmitWait is Admit with a bounded wait: instead of failing an
// at-capacity request immediately, it blocks until committed in-flight
// work drains (at most maxWait, re-running the admission test each
// time capacity is released) before giving up. retries counts the
// extra reservation attempts — zero means first-try admission (or a
// first-try rejection). maxWait <= 0 degenerates to Admit; infeasible
// and closed rejections never wait, since no drain can cure them.
func (c *Controller) AdmitWait(id int, wcet, budget, maxWait time.Duration) (release func(), retries int, err error) {
	deadline := time.Now().Add(maxWait)
	for {
		// Grab the broadcast channel before the reservation attempt: a
		// release between a failed attempt and the wait closes this
		// channel, so the wakeup cannot be lost.
		c.mu.Lock()
		ch := c.waitCh
		rej := c.reserveLocked(wcet, budget, true)
		c.mu.Unlock()
		if rej == nil {
			c.opts.Metrics.Add("txns_admitted", 1)
			c.opts.Log.TxnAdmitted(id, wcet, budget)
			var once sync.Once
			return func() {
				once.Do(func() {
					c.mu.Lock()
					c.committed -= wcet
					c.notifyLocked()
					c.mu.Unlock()
					c.wg.Done()
				})
			}, retries, nil
		}
		if rej.Reason != RejectAtCapacity || maxWait <= 0 || !time.Now().Before(deadline) {
			c.countReject(rej.Reason)
			c.opts.Log.TxnRejected(id, wcet, budget)
			return nil, retries, rej
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
		}
		retries++
	}
}

// notifyLocked wakes every AdmitWait blocked on capacity by closing
// the broadcast channel and installing a fresh one. Callers hold c.mu.
func (c *Controller) notifyLocked() {
	close(c.waitCh)
	c.waitCh = make(chan struct{})
}

// reserve runs the admission test and, on success, commits wcet of
// capacity and registers the work with the wait group. gated applies
// the capacity test (false for exact-policy transactions, which are
// always admitted but still tracked).
func (c *Controller) reserve(wcet, budget time.Duration, gated bool) *RejectionError {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reserveLocked(wcet, budget, gated)
}

// reserveLocked is reserve for callers already holding c.mu.
func (c *Controller) reserveLocked(wcet, budget time.Duration, gated bool) *RejectionError {
	if c.closed {
		return &RejectionError{Reason: RejectClosed, WCET: wcet, Budget: budget, Committed: c.committed}
	}
	if gated {
		if wcet > budget {
			return &RejectionError{Reason: RejectInfeasible, WCET: wcet, Budget: budget, Committed: c.committed}
		}
		if c.committed+wcet > budget {
			return &RejectionError{
				Reason: RejectAtCapacity, WCET: wcet, Budget: budget, Committed: c.committed,
				RetryAfter: c.committed + wcet - budget,
			}
		}
	}
	c.committed += wcet
	c.wg.Add(1)
	return nil
}

// countReject bumps the aggregate and reason-split rejection counters.
func (c *Controller) countReject(reason RejectReason) {
	c.opts.Metrics.Update(func(m trace.Tx) {
		m.Add("txns_rejected", 1)
		m.Add("txns_rejected_"+counterSlug(reason), 1)
	})
}

// counterSlug maps a reason to its metric-key suffix.
func counterSlug(r RejectReason) string {
	switch r {
	case RejectInfeasible:
		return "infeasible"
	case RejectAtCapacity:
		return "capacity"
	case RejectClosed:
		return "closed"
	default:
		return "none"
	}
}

// Committed reports the worst-case work currently reserved for
// admitted, unfinished transactions (the admission test's load term).
func (c *Controller) Committed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.committed
}

// Wait blocks until every admitted transaction has finished and
// returns all results sorted by transaction ID (completion order is
// nondeterministic), plus the first execution error if any. After
// Wait returns, further Submits are rejected.
func (c *Controller) Wait() ([]TxnResult, error) {
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.notifyLocked()
	out := append([]TxnResult{}, c.results...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, c.err
}

// Drain stops admission immediately (further Submit/Admit report
// RejectClosed) and blocks until every already-admitted piece of work
// has finished — the graceful-shutdown half of Wait, usable while
// other goroutines still hold live reservations.
func (c *Controller) Drain() {
	c.mu.Lock()
	c.closed = true
	// Wake blocked AdmitWaits so they observe the close immediately
	// instead of burning their remaining wait budget.
	c.notifyLocked()
	c.mu.Unlock()
	c.wg.Wait()
}

// run executes one admitted transaction on a private session and
// releases its committed capacity when done.
func (c *Controller) run(tx Txn, wcet time.Duration) {
	defer c.wg.Done()
	c.slots <- struct{}{}
	defer func() { <-c.slots }()

	// The live occupancy gauge pairs with queries_in_flight on the
	// telemetry server's /metrics: admitted vs actually-executing.
	c.opts.Metrics.AddGauge("txns_running", 1)
	defer c.opts.Metrics.AddGauge("txns_running", -1)

	sess := c.store.Session(c.sessionClock(tx))
	eng := core.NewEngine(sess)
	res := TxnResult{ID: tx.ID, Admitted: true, Started: sess.Clock().Now()}
	err := executeTxn(sess, eng, c.opts.Options, tx, &res)
	res.Finished = sess.Clock().Now()
	res.Met = err == nil && res.Finished-res.Started <= tx.Deadline
	sess.MergeCounters()

	c.opts.Metrics.Update(func(m trace.Tx) {
		m.Add("txns_completed", 1)
		if !res.Met {
			m.Add("txns_missed", 1)
		}
		m.Observe("txn_seconds", (res.Finished - res.Started).Seconds())
	})
	c.opts.Log.TxnFinished(tx.ID, res.Met, res.Started, res.Finished, tx.Deadline)

	c.mu.Lock()
	c.committed -= wcet
	c.notifyLocked()
	c.results = append(c.results, res)
	if err != nil && c.err == nil {
		c.err = fmt.Errorf("sched: txn %d: %w", tx.ID, err)
	}
	c.mu.Unlock()
}

// sessionClock derives the private clock for one transaction: a
// deterministically seeded simulated clock when the root store is
// simulated (so results are reproducible regardless of goroutine
// interleaving), the shared root clock otherwise.
func (c *Controller) sessionClock(tx Txn) vclock.Clock {
	if _, sim := c.store.Clock().(*vclock.Sim); !sim {
		return nil
	}
	return vclock.NewSim(c.opts.Seed*1_000_003+int64(tx.ID), c.opts.Jitter)
}
