package sched

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"tcq/internal/core"
	"tcq/internal/storage"
	"tcq/internal/trace"
	"tcq/internal/vclock"
)

// ControllerOptions configures a concurrent admission Controller.
type ControllerOptions struct {
	Options
	// MaxConcurrent bounds the number of transactions executing at
	// once; default GOMAXPROCS.
	MaxConcurrent int
	// Jitter is the multiplicative noise of the per-transaction
	// simulated clocks (used when the root store runs on a simulated
	// clock); default 0.02.
	Jitter float64
}

// Controller is the concurrent counterpart of Scheduler.Run: an
// admission controller that accepts transactions as they arrive and
// runs each admitted transaction on its own goroutine against a
// private session of the store. Where Run simulates an EDF dispatch
// loop on one shared clock, the Controller really is concurrent — it
// is exercised under the race detector — so each transaction measures
// time on its own session clock, with Deadline interpreted as a
// per-transaction budget from dispatch.
//
// Admission uses the classic uniprocessor test, which is conservative
// under concurrency: a transaction is admitted only if the worst-case
// work already committed to in-flight transactions plus its own
// worst case fits inside its budget. An admitted quota-policy
// transaction therefore has wcet ≤ Deadline and can only miss by
// overrunning its slack allowance.
//
// Submit and Wait are safe for concurrent use; Submit after Wait has
// returned reports the transaction as rejected.
type Controller struct {
	store *storage.Store
	opts  ControllerOptions

	slots chan struct{} // bounds concurrently executing transactions

	mu        sync.Mutex
	committed time.Duration // worst-case work of admitted, unfinished txns
	results   []TxnResult
	err       error // first execution error
	closed    bool
	wg        sync.WaitGroup
}

// NewController creates a concurrent admission controller over a store.
func NewController(store *storage.Store, opts ControllerOptions) *Controller {
	if opts.Slack <= 0 {
		opts.Slack = 0.05
	}
	if opts.MaxConcurrent < 1 {
		opts.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if opts.Jitter <= 0 {
		opts.Jitter = 0.02
	}
	return &Controller{
		store: store,
		opts:  opts,
		slots: make(chan struct{}, opts.MaxConcurrent),
	}
}

// Submit offers one transaction. It returns immediately: true means
// the transaction was admitted and is (or will be) running on its own
// goroutine; false means admission control rejected it and it consumed
// no resources. Exact-policy controllers admit everything, mirroring
// Scheduler.Run.
func (c *Controller) Submit(tx Txn) bool {
	wcet := tx.wcet(c.opts.Slack)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	if c.opts.Policy == QuotaQueries && c.committed+wcet > tx.Deadline {
		c.results = append(c.results, TxnResult{ID: tx.ID})
		c.mu.Unlock()
		c.opts.Metrics.Add("txns_rejected", 1)
		c.opts.Log.TxnRejected(tx.ID, wcet, tx.Deadline)
		return false
	}
	c.committed += wcet
	c.wg.Add(1)
	c.mu.Unlock()
	c.opts.Metrics.Add("txns_admitted", 1)
	c.opts.Log.TxnAdmitted(tx.ID, wcet, tx.Deadline)
	go c.run(tx, wcet)
	return true
}

// Wait blocks until every admitted transaction has finished and
// returns all results sorted by transaction ID (completion order is
// nondeterministic), plus the first execution error if any. After
// Wait returns, further Submits are rejected.
func (c *Controller) Wait() ([]TxnResult, error) {
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	out := append([]TxnResult{}, c.results...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, c.err
}

// run executes one admitted transaction on a private session and
// releases its committed capacity when done.
func (c *Controller) run(tx Txn, wcet time.Duration) {
	defer c.wg.Done()
	c.slots <- struct{}{}
	defer func() { <-c.slots }()

	// The live occupancy gauge pairs with queries_in_flight on the
	// telemetry server's /metrics: admitted vs actually-executing.
	c.opts.Metrics.AddGauge("txns_running", 1)
	defer c.opts.Metrics.AddGauge("txns_running", -1)

	sess := c.store.Session(c.sessionClock(tx))
	eng := core.NewEngine(sess)
	res := TxnResult{ID: tx.ID, Admitted: true, Started: sess.Clock().Now()}
	err := executeTxn(sess, eng, c.opts.Options, tx, &res)
	res.Finished = sess.Clock().Now()
	res.Met = err == nil && res.Finished-res.Started <= tx.Deadline
	sess.MergeCounters()

	c.opts.Metrics.Update(func(m trace.Tx) {
		m.Add("txns_completed", 1)
		if !res.Met {
			m.Add("txns_missed", 1)
		}
		m.Observe("txn_seconds", (res.Finished - res.Started).Seconds())
	})
	c.opts.Log.TxnFinished(tx.ID, res.Met, res.Started, res.Finished, tx.Deadline)

	c.mu.Lock()
	c.committed -= wcet
	c.results = append(c.results, res)
	if err != nil && c.err == nil {
		c.err = fmt.Errorf("sched: txn %d: %w", tx.ID, err)
	}
	c.mu.Unlock()
}

// sessionClock derives the private clock for one transaction: a
// deterministically seeded simulated clock when the root store is
// simulated (so results are reproducible regardless of goroutine
// interleaving), the shared root clock otherwise.
func (c *Controller) sessionClock(tx Txn) vclock.Clock {
	if _, sim := c.store.Clock().(*vclock.Sim); !sim {
		return nil
	}
	return vclock.NewSim(c.opts.Seed*1_000_003+int64(tx.ID), c.opts.Jitter)
}
