package sched

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"tcq/internal/core"
	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/timectrl"
	"tcq/internal/trace"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

// batchFixture builds a store with two relations and a standard
// transaction batch whose deadlines are feasible under quotas but not
// under full scans.
func batchFixture(t *testing.T, seed int64) (*storage.Store, []Txn) {
	t.Helper()
	clk := vclock.NewSim(seed, 0.02)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	rng := rand.New(rand.NewSource(seed))
	if _, err := workload.SelectRelation(st, "inv", 2000, 500, rng); err != nil {
		t.Fatal(err)
	}
	if _, _, err := workload.JoinPair(st, "ord", "itm", 2000, 14000, rng); err != nil {
		t.Fatal(err)
	}
	selQ := QueryStep{
		Expr: &ra.Select{Input: &ra.Base{Name: "inv"},
			Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(500)}}},
		Quota: 2 * time.Second,
	}
	joinQ := QueryStep{
		Expr: &ra.Join{Left: &ra.Base{Name: "ord"}, Right: &ra.Base{Name: "itm"},
			On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}},
		Quota:   2 * time.Second,
		Options: core.Options{Initial: timectrl.Initials{Select: 1, Join: 0.1, Project: 1}},
	}
	txns := []Txn{
		{ID: 1, Deadline: 5 * time.Second, Queries: []QueryStep{selQ}, AppWork: time.Second},
		{ID: 2, Deadline: 12 * time.Second, Queries: []QueryStep{joinQ}, AppWork: time.Second},
		{ID: 3, Deadline: 18 * time.Second, Queries: []QueryStep{selQ, selQ}, AppWork: time.Second},
	}
	return st, txns
}

func TestQuotaPolicyMeetsDeadlines(t *testing.T) {
	st, txns := batchFixture(t, 1)
	s := New(st, Options{Policy: QuotaQueries, Seed: 1})
	results, err := s.Run(txns)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if MissCount(results) != 0 {
		t.Errorf("quota policy missed deadlines: %+v", results)
	}
	for _, r := range results {
		if !r.Admitted {
			t.Errorf("txn %d rejected despite feasible deadline", r.ID)
		}
		for _, q := range r.Queries {
			if q.Exact {
				t.Error("quota policy ran an exact query")
			}
			if q.Estimate <= 0 {
				t.Errorf("txn %d produced empty estimate", r.ID)
			}
		}
	}
}

func TestExactPolicyMissesDeadlines(t *testing.T) {
	st, txns := batchFixture(t, 1)
	s := New(st, Options{Policy: ExactQueries, Seed: 1})
	results, err := s.Run(txns)
	if err != nil {
		t.Fatal(err)
	}
	// Full scans of 400-block relations take far longer than the
	// deadlines allow.
	if MissCount(results) == 0 {
		t.Error("exact policy unexpectedly met every deadline")
	}
	for _, r := range results {
		if !r.Admitted {
			t.Error("exact policy has no admission control")
		}
		for _, q := range r.Queries {
			if !q.Exact {
				t.Error("exact policy should mark outcomes exact")
			}
		}
	}
}

func TestAdmissionControlRejectsInfeasible(t *testing.T) {
	st, txns := batchFixture(t, 2)
	// Make the second transaction's deadline impossible: its own worst
	// case exceeds the remaining time after txn 1.
	txns[1].Deadline = 3 * time.Second
	s := New(st, Options{Policy: QuotaQueries, Seed: 2})
	results, err := s.Run(txns)
	if err != nil {
		t.Fatal(err)
	}
	if RejectCount(results) == 0 {
		t.Fatal("expected at least one rejection")
	}
	// EDF order: deadlines ascending in the result list.
	for i := 1; i < len(results); i++ {
		// Results are in EDF order; rejected transactions consume no time.
		if results[i].Started < results[i-1].Started {
			t.Error("results not in dispatch order")
		}
	}
	// A rejected transaction consumes no clock time and keeps later
	// transactions feasible.
	if MissCount(results) != 0 {
		t.Errorf("admitted transactions missed deadlines: %+v", results)
	}
}

func TestRunValidation(t *testing.T) {
	st, _ := batchFixture(t, 3)
	s := New(st, Options{})
	if _, err := s.Run(nil); err == nil {
		t.Error("empty batch should error")
	}
	// Unknown relation inside a transaction surfaces as an error.
	bad := []Txn{{ID: 1, Deadline: time.Minute, Queries: []QueryStep{{
		Expr: &ra.Base{Name: "missing"}, Quota: time.Second,
	}}}}
	if _, err := s.Run(bad); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestEDFOrdering(t *testing.T) {
	st, txns := batchFixture(t, 4)
	// Shuffle deadlines so EDF must reorder.
	txns[0].Deadline = 30 * time.Second
	txns[2].Deadline = 6 * time.Second
	s := New(st, Options{Policy: QuotaQueries, Seed: 4})
	results, err := s.Run(txns)
	if err != nil {
		t.Fatal(err)
	}
	// First dispatched must be the earliest deadline (txn 3 at 6s).
	if results[0].ID != 3 {
		t.Errorf("EDF should dispatch txn 3 first, got %d", results[0].ID)
	}
	if MissCount(results) != 0 {
		t.Errorf("feasible EDF batch missed deadlines")
	}
}

func TestPolicyString(t *testing.T) {
	if QuotaQueries.String() != "quota" || ExactQueries.String() != "exact" {
		t.Error("policy names wrong")
	}
}

func TestControllerAdmitsAndMeetsDeadlines(t *testing.T) {
	st, txns := batchFixture(t, 5)
	// Concurrent Submits arrive in scheduler order, so admission must be
	// feasible for every arrival permutation: each deadline has to cover
	// the other txns' worst-case work (3s + 3s + 5s here) plus its own.
	// The fixture's 5s deadline on txn 1 only admits when txn 1 happens
	// to arrive first or the others already finished — a host-speed
	// lottery that made this test flake under -race.
	txns[0].Deadline = 15 * time.Second
	reg := trace.NewRegistry()
	c := NewController(st, ControllerOptions{
		Options:       Options{Policy: QuotaQueries, Seed: 5, Metrics: reg},
		MaxConcurrent: 4,
	})
	// Submit from concurrent producers, as a real workload would.
	var wg sync.WaitGroup
	for _, tx := range txns {
		wg.Add(1)
		go func(tx Txn) { defer wg.Done(); c.Submit(tx) }(tx)
	}
	wg.Wait()
	results, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for i, r := range results {
		if r.ID != i+1 {
			t.Errorf("results not sorted by ID: %+v", results)
		}
		if !r.Admitted {
			t.Errorf("txn %d rejected despite feasible budget", r.ID)
		}
		if !r.Met {
			t.Errorf("txn %d missed its budget: ran %v of %v",
				r.ID, r.Finished-r.Started, txns[i].Deadline)
		}
		for _, q := range r.Queries {
			if q.Estimate <= 0 {
				t.Errorf("txn %d produced empty estimate", r.ID)
			}
		}
	}
	s := reg.Snapshot()
	if s.Counters["txns_admitted"] != 3 || s.Counters["txns_completed"] != 3 {
		t.Errorf("metrics: %+v", s.Counters)
	}
	if s.Counters["txns_missed"] != 0 || s.Counters["txns_rejected"] != 0 {
		t.Errorf("metrics: %+v", s.Counters)
	}
	if h := s.Histograms["txn_seconds"]; h.Count != 3 {
		t.Errorf("txn_seconds histogram count = %d, want 3", h.Count)
	}
	if c.Submit(txns[0]) {
		t.Error("Submit after Wait must be rejected")
	}
}

// TestControllerDeterministicAcrossConcurrency: per-transaction session
// clocks are seeded from the transaction ID, so outcomes do not depend
// on goroutine interleaving or the concurrency bound.
func TestControllerDeterministicAcrossConcurrency(t *testing.T) {
	run := func(maxConc int) []TxnResult {
		st, txns := batchFixture(t, 6)
		c := NewController(st, ControllerOptions{
			Options:       Options{Policy: QuotaQueries, Seed: 6},
			MaxConcurrent: maxConc,
		})
		for _, tx := range txns {
			if !c.Submit(tx) {
				t.Fatalf("txn %d rejected", tx.ID)
			}
		}
		results, err := c.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	serial, parallel := run(1), run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.ID != b.ID || a.Finished != b.Finished || len(a.Queries) != len(b.Queries) {
			t.Fatalf("txn results diverge:\n%+v\n%+v", a, b)
		}
		for qi := range a.Queries {
			if a.Queries[qi] != b.Queries[qi] {
				t.Errorf("txn %d query %d diverges: %+v vs %+v",
					a.ID, qi, a.Queries[qi], b.Queries[qi])
			}
		}
	}
}

func TestControllerRejectsInfeasible(t *testing.T) {
	st, txns := batchFixture(t, 7)
	reg := trace.NewRegistry()
	c := NewController(st, ControllerOptions{
		Options: Options{Policy: QuotaQueries, Seed: 7, Metrics: reg},
	})
	// A budget below the transaction's own worst case must be refused.
	tight := txns[0]
	tight.ID = 9
	tight.Deadline = time.Second
	if c.Submit(tight) {
		t.Fatal("infeasible transaction admitted")
	}
	for _, tx := range txns {
		c.Submit(tx)
	}
	results, err := c.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if RejectCount(results) != 1 {
		t.Errorf("rejections = %d, want 1", RejectCount(results))
	}
	if got := reg.Snapshot().Counters["txns_rejected"]; got != 1 {
		t.Errorf("txns_rejected = %d, want 1", got)
	}
}

func TestControllerSurfacesErrors(t *testing.T) {
	st, _ := batchFixture(t, 8)
	c := NewController(st, ControllerOptions{Options: Options{Policy: QuotaQueries, Seed: 8}})
	c.Submit(Txn{ID: 1, Deadline: time.Minute, Queries: []QueryStep{{
		Expr: &ra.Base{Name: "missing"}, Quota: time.Second,
	}}})
	if _, err := c.Wait(); err == nil {
		t.Error("unknown relation should surface from Wait")
	}
}
