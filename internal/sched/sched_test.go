package sched

import (
	"math/rand"
	"testing"
	"time"

	"tcq/internal/core"
	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/timectrl"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

// batchFixture builds a store with two relations and a standard
// transaction batch whose deadlines are feasible under quotas but not
// under full scans.
func batchFixture(t *testing.T, seed int64) (*storage.Store, []Txn) {
	t.Helper()
	clk := vclock.NewSim(seed, 0.02)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	rng := rand.New(rand.NewSource(seed))
	if _, err := workload.SelectRelation(st, "inv", 2000, 500, rng); err != nil {
		t.Fatal(err)
	}
	if _, _, err := workload.JoinPair(st, "ord", "itm", 2000, 14000, rng); err != nil {
		t.Fatal(err)
	}
	selQ := QueryStep{
		Expr: &ra.Select{Input: &ra.Base{Name: "inv"},
			Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(500)}}},
		Quota: 2 * time.Second,
	}
	joinQ := QueryStep{
		Expr: &ra.Join{Left: &ra.Base{Name: "ord"}, Right: &ra.Base{Name: "itm"},
			On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}},
		Quota:   2 * time.Second,
		Options: core.Options{Initial: timectrl.Initials{Select: 1, Join: 0.1, Project: 1}},
	}
	txns := []Txn{
		{ID: 1, Deadline: 5 * time.Second, Queries: []QueryStep{selQ}, AppWork: time.Second},
		{ID: 2, Deadline: 12 * time.Second, Queries: []QueryStep{joinQ}, AppWork: time.Second},
		{ID: 3, Deadline: 18 * time.Second, Queries: []QueryStep{selQ, selQ}, AppWork: time.Second},
	}
	return st, txns
}

func TestQuotaPolicyMeetsDeadlines(t *testing.T) {
	st, txns := batchFixture(t, 1)
	s := New(st, Options{Policy: QuotaQueries, Seed: 1})
	results, err := s.Run(txns)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if MissCount(results) != 0 {
		t.Errorf("quota policy missed deadlines: %+v", results)
	}
	for _, r := range results {
		if !r.Admitted {
			t.Errorf("txn %d rejected despite feasible deadline", r.ID)
		}
		for _, q := range r.Queries {
			if q.Exact {
				t.Error("quota policy ran an exact query")
			}
			if q.Estimate <= 0 {
				t.Errorf("txn %d produced empty estimate", r.ID)
			}
		}
	}
}

func TestExactPolicyMissesDeadlines(t *testing.T) {
	st, txns := batchFixture(t, 1)
	s := New(st, Options{Policy: ExactQueries, Seed: 1})
	results, err := s.Run(txns)
	if err != nil {
		t.Fatal(err)
	}
	// Full scans of 400-block relations take far longer than the
	// deadlines allow.
	if MissCount(results) == 0 {
		t.Error("exact policy unexpectedly met every deadline")
	}
	for _, r := range results {
		if !r.Admitted {
			t.Error("exact policy has no admission control")
		}
		for _, q := range r.Queries {
			if !q.Exact {
				t.Error("exact policy should mark outcomes exact")
			}
		}
	}
}

func TestAdmissionControlRejectsInfeasible(t *testing.T) {
	st, txns := batchFixture(t, 2)
	// Make the second transaction's deadline impossible: its own worst
	// case exceeds the remaining time after txn 1.
	txns[1].Deadline = 3 * time.Second
	s := New(st, Options{Policy: QuotaQueries, Seed: 2})
	results, err := s.Run(txns)
	if err != nil {
		t.Fatal(err)
	}
	if RejectCount(results) == 0 {
		t.Fatal("expected at least one rejection")
	}
	// EDF order: deadlines ascending in the result list.
	for i := 1; i < len(results); i++ {
		// Results are in EDF order; rejected transactions consume no time.
		if results[i].Started < results[i-1].Started {
			t.Error("results not in dispatch order")
		}
	}
	// A rejected transaction consumes no clock time and keeps later
	// transactions feasible.
	if MissCount(results) != 0 {
		t.Errorf("admitted transactions missed deadlines: %+v", results)
	}
}

func TestRunValidation(t *testing.T) {
	st, _ := batchFixture(t, 3)
	s := New(st, Options{})
	if _, err := s.Run(nil); err == nil {
		t.Error("empty batch should error")
	}
	// Unknown relation inside a transaction surfaces as an error.
	bad := []Txn{{ID: 1, Deadline: time.Minute, Queries: []QueryStep{{
		Expr: &ra.Base{Name: "missing"}, Quota: time.Second,
	}}}}
	if _, err := s.Run(bad); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestEDFOrdering(t *testing.T) {
	st, txns := batchFixture(t, 4)
	// Shuffle deadlines so EDF must reorder.
	txns[0].Deadline = 30 * time.Second
	txns[2].Deadline = 6 * time.Second
	s := New(st, Options{Policy: QuotaQueries, Seed: 4})
	results, err := s.Run(txns)
	if err != nil {
		t.Fatal(err)
	}
	// First dispatched must be the earliest deadline (txn 3 at 6s).
	if results[0].ID != 3 {
		t.Errorf("EDF should dispatch txn 3 first, got %d", results[0].ID)
	}
	if MissCount(results) != 0 {
		t.Errorf("feasible EDF batch missed deadlines")
	}
}

func TestPolicyString(t *testing.T) {
	if QuotaQueries.String() != "quota" || ExactQueries.String() != "exact" {
		t.Error("policy names wrong")
	}
}
