// AdmitWait: the blocking variant of the admission gate. A request
// that would be rejected at-capacity may instead wait (bounded) for a
// release to free its reservation; drain wakes every waiter promptly
// with RejectClosed instead of letting it ride out its wait budget.
package sched

import (
	"errors"
	"testing"
	"time"

	"tcq/internal/trace"
)

// TestAdmitWaitBlocksUntilRelease fills the window, then lets a second
// request wait: it must block until the first reservation releases,
// admit successfully, and report at least one retry.
func TestAdmitWaitBlocksUntilRelease(t *testing.T) {
	c := gateController(trace.NewRegistry())

	release, err := c.Admit(1, 3*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hold := 100 * time.Millisecond
	go func() {
		time.Sleep(hold)
		release()
	}()

	start := time.Now()
	rel2, retries, err := c.AdmitWait(2, 3*time.Second, 4*time.Second, 5*time.Second)
	waited := time.Since(start)
	if err != nil {
		t.Fatalf("AdmitWait = %v, want admission after release", err)
	}
	defer rel2()
	if waited < hold/2 {
		t.Errorf("AdmitWait returned after %v, want >= %v (blocked on the held window)", waited, hold/2)
	}
	if retries < 1 {
		t.Errorf("retries = %d, want >= 1 (at least one at-capacity pass before release)", retries)
	}
	if got := c.Committed(); got != 3*time.Second {
		t.Errorf("Committed = %v, want 3s (the waiter's reservation)", got)
	}
}

// TestAdmitWaitTimesOut holds the window past the wait budget: the
// waiter must give up with RejectAtCapacity, not block forever.
func TestAdmitWaitTimesOut(t *testing.T) {
	c := gateController(trace.NewRegistry())

	release, err := c.Admit(1, 3*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	_, _, err = c.AdmitWait(2, 3*time.Second, 4*time.Second, 50*time.Millisecond)
	waited := time.Since(start)
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != RejectAtCapacity {
		t.Fatalf("AdmitWait past budget = %v, want RejectAtCapacity", err)
	}
	if waited < 50*time.Millisecond {
		t.Errorf("gave up after %v, want >= the 50ms wait budget", waited)
	}
	if waited > 5*time.Second {
		t.Errorf("gave up after %v — waiter overstayed its budget", waited)
	}
}

// TestAdmitWaitZeroBudgetRejectsImmediately confirms AdmitWait(…, 0)
// is exactly Admit: at-capacity rejects without blocking, and the
// infeasible reason never waits regardless of budget (no release can
// cure wcet > budget).
func TestAdmitWaitZeroBudgetRejectsImmediately(t *testing.T) {
	c := gateController(trace.NewRegistry())

	release, err := c.Admit(1, 3*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	_, retries, err := c.AdmitWait(2, 3*time.Second, 4*time.Second, 0)
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != RejectAtCapacity {
		t.Fatalf("AdmitWait(0) at capacity = %v, want RejectAtCapacity", err)
	}
	if retries != 0 {
		t.Errorf("retries = %d, want 0 with no wait budget", retries)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("AdmitWait(0) took %v, want immediate rejection", waited)
	}

	_, _, err = c.AdmitWait(3, 2*time.Second, time.Second, time.Minute)
	if !errors.As(err, &rej) || rej.Reason != RejectInfeasible {
		t.Fatalf("AdmitWait(wcet>budget) = %v, want immediate RejectInfeasible", err)
	}
}

// TestDrainWakesWaiter drains the controller while a request is
// blocked in AdmitWait: the waiter must wake promptly with
// RejectClosed rather than sleeping out its full wait budget.
func TestDrainWakesWaiter(t *testing.T) {
	c := gateController(trace.NewRegistry())

	release, err := c.Admit(1, 3*time.Second, 4*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	type out struct {
		err    error
		waited time.Duration
	}
	done := make(chan out, 1)
	go func() {
		start := time.Now()
		_, _, err := c.AdmitWait(2, 3*time.Second, 4*time.Second, time.Minute)
		done <- out{err, time.Since(start)}
	}()

	// Give the waiter time to park, then drain. The held reservation
	// releases afterwards so Drain's wg.Wait can return.
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(20 * time.Millisecond)
		release()
	}()
	c.Drain()

	select {
	case o := <-done:
		var rej *RejectionError
		if !errors.As(o.err, &rej) || rej.Reason != RejectClosed {
			t.Fatalf("AdmitWait across drain = %v, want RejectClosed", o.err)
		}
		if o.waited > 30*time.Second {
			t.Errorf("waiter woke after %v — drain did not interrupt the wait", o.waited)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waiter never woke after drain")
	}
}
