package sched

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tcq/internal/storage"
	"tcq/internal/trace"
	"tcq/internal/vclock"
)

// gateController builds a Controller over an empty store — Admit never
// executes queries, so no relations are needed.
func gateController(reg *trace.Registry) *Controller {
	st := storage.NewStore(vclock.NewSim(1, 0.02), storage.SunProfile(), storage.DefaultBlockSize)
	return NewController(st, ControllerOptions{
		Options: Options{Policy: QuotaQueries, Seed: 1, Metrics: reg},
	})
}

// Admission rejections must be typed by reason and split the
// txns_rejected counter accordingly: infeasible budgets (retry is
// pointless) vs at-capacity (retry after committed work drains) vs
// closed controllers.
func TestAdmitRejectReasons(t *testing.T) {
	reg := trace.NewRegistry()
	c := gateController(reg)

	// Infeasible: the worst case alone exceeds the budget.
	_, err := c.Admit(1, 2*time.Second, time.Second)
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != RejectInfeasible {
		t.Fatalf("Admit(wcet>budget) = %v, want RejectInfeasible", err)
	}
	if rej.RetryAfter != 0 {
		t.Errorf("infeasible RetryAfter = %v, want 0 (no retry can help)", rej.RetryAfter)
	}

	// Feasible work fills the window...
	release, err := c.Admit(2, 3*time.Second, 4*time.Second)
	if err != nil {
		t.Fatalf("feasible Admit rejected: %v", err)
	}
	if got := c.Committed(); got != 3*time.Second {
		t.Errorf("Committed = %v, want 3s", got)
	}
	// ...so an identical request is refused for capacity, with a
	// retry hint of exactly the excess committed work.
	_, err = c.Admit(3, 3*time.Second, 4*time.Second)
	if !errors.As(err, &rej) || rej.Reason != RejectAtCapacity {
		t.Fatalf("Admit at capacity = %v, want RejectAtCapacity", err)
	}
	if want := 2 * time.Second; rej.RetryAfter != want {
		t.Errorf("RetryAfter = %v, want %v (committed 3s + wcet 3s − budget 4s)", rej.RetryAfter, want)
	}

	// Releasing frees the capacity again.
	release()
	release() // idempotent: double release must not corrupt accounting
	if got := c.Committed(); got != 0 {
		t.Errorf("Committed after release = %v, want 0", got)
	}
	if rel2, err := c.Admit(4, 3*time.Second, 4*time.Second); err != nil {
		t.Fatalf("Admit after release rejected: %v", err)
	} else {
		rel2()
	}

	// Drain closes the gate: further admissions are RejectClosed.
	c.Drain()
	_, err = c.Admit(5, time.Millisecond, time.Second)
	if !errors.As(err, &rej) || rej.Reason != RejectClosed {
		t.Fatalf("Admit after Drain = %v, want RejectClosed", err)
	}

	snap := reg.Snapshot()
	for counter, want := range map[string]int64{
		"txns_rejected":            3,
		"txns_rejected_infeasible": 1,
		"txns_rejected_capacity":   1,
		"txns_rejected_closed":     1,
		"txns_admitted":            2,
	} {
		if got := snap.Counters[counter]; got != want {
			t.Errorf("%s = %d, want %d", counter, got, want)
		}
	}
}

// SubmitTxn mirrors Submit but reports the typed reason; the legacy
// bool Submit must agree with it.
func TestSubmitTxnTypedRejection(t *testing.T) {
	st, txns := batchFixture(t, 11)
	reg := trace.NewRegistry()
	c := NewController(st, ControllerOptions{
		Options: Options{Policy: QuotaQueries, Seed: 11, Metrics: reg},
	})
	tight := txns[0]
	tight.ID = 42
	tight.Deadline = time.Millisecond // below its own worst case
	err := c.SubmitTxn(tight)
	var rej *RejectionError
	if !errors.As(err, &rej) || rej.Reason != RejectInfeasible {
		t.Fatalf("SubmitTxn(tight) = %v, want RejectInfeasible", err)
	}
	if err := c.SubmitTxn(txns[0]); err != nil {
		t.Fatalf("feasible SubmitTxn rejected: %v", err)
	}
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["txns_rejected_infeasible"]; got != 1 {
		t.Errorf("txns_rejected_infeasible = %d, want 1", got)
	}
	if got := snap.Counters["txns_rejected"]; got != 1 {
		t.Errorf("txns_rejected = %d, want 1", got)
	}
}

// Drain must block until every live reservation is released, and the
// gate is safe for concurrent Admit/release/Drain (exercised under
// -race by check.sh).
func TestDrainWaitsForReservations(t *testing.T) {
	c := gateController(nil)
	const n = 16
	releases := make(chan func(), n)
	var admitted sync.WaitGroup
	for i := 0; i < n; i++ {
		admitted.Add(1)
		go func(id int) {
			defer admitted.Done()
			rel, err := c.Admit(id, time.Millisecond, time.Hour)
			if err != nil {
				t.Errorf("Admit(%d): %v", id, err)
				return
			}
			releases <- rel
		}(i)
	}
	admitted.Wait()
	close(releases)

	drained := make(chan struct{})
	go func() {
		c.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned with live reservations")
	case <-time.After(20 * time.Millisecond):
	}
	for rel := range releases {
		rel()
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after all releases")
	}
}
