// Package sched implements a real-time transaction scheduler on top of
// the time-constrained query engine — the application the paper's
// introduction motivates: "By precisely fixing the execution times of
// database queries in a transaction, accurate estimates for transaction
// execution times becomes possible. This in turn plays an important
// role in minimizing the number of transactions that miss their
// deadlines [AbMo 88]."
//
// The scheduler executes transactions serially (the prototype is a
// single-user DBMS) in earliest-deadline-first order, with admission
// control: a transaction is dispatched only if its worst-case duration
// — the sum of its query quotas (bounded by the engine's hard
// deadlines) plus its fixed application work — fits before its
// deadline. With time-constrained queries the worst case is known a
// priori; with exact queries it is not, and the same scheduler degrades
// to best-effort (the ExactQueries mode, used as a baseline).
package sched

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"tcq/internal/core"
	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/telemetry"
	"tcq/internal/trace"
	"tcq/internal/vclock"
)

// QueryStep is one aggregate query inside a transaction.
type QueryStep struct {
	// Expr is the COUNT(E) query.
	Expr ra.Expr
	// Quota bounds the query's execution time (ignored in ExactQueries
	// mode).
	Quota time.Duration
	// Options tunes the estimate (DBeta etc.); Quota and Mode are set
	// by the scheduler.
	Options core.Options
}

// Txn is one transaction: queries plus fixed application work, due by
// an absolute deadline on the session clock.
type Txn struct {
	ID       int
	Deadline time.Duration // absolute clock reading
	Queries  []QueryStep
	AppWork  time.Duration // non-query work, charged after the queries
}

// wcet returns the transaction's worst-case execution time under
// quota-bounded queries, with the given per-query overrun slack.
func (t Txn) wcet(slack float64) time.Duration {
	total := t.AppWork
	for _, q := range t.Queries {
		total += time.Duration(float64(q.Quota) * (1 + slack))
	}
	return total
}

// QueryOutcome reports one query's result inside a transaction.
type QueryOutcome struct {
	Estimate float64
	StdErr   float64
	Spent    time.Duration
	Exact    bool // true in ExactQueries mode
}

// TxnResult reports one transaction's fate.
type TxnResult struct {
	ID       int
	Admitted bool // dispatched (admission control passed)
	Met      bool // finished at or before its deadline
	Started  time.Duration
	Finished time.Duration
	Queries  []QueryOutcome
}

// Policy selects how the scheduler runs query steps.
type Policy int

const (
	// QuotaQueries runs every query under its hard time quota — the
	// paper's approach: transaction durations are predictable.
	QuotaQueries Policy = iota
	// ExactQueries runs full evaluations (charged census scans) — the
	// baseline with unpredictable durations; admission control is
	// disabled because no worst case is known.
	ExactQueries
)

// String names the policy.
func (p Policy) String() string {
	if p == ExactQueries {
		return "exact"
	}
	return "quota"
}

// Options configures a Scheduler.
type Options struct {
	// Policy selects quota-bounded or exact query execution.
	Policy Policy
	// Slack is the per-query overrun allowance used in admission
	// control (hard deadlines can overshoot by one poll granule);
	// default 0.05.
	Slack float64
	// Seed seeds the engines' block samplers.
	Seed int64
	// Tracer, when set, observes every query step run by the scheduler
	// (unless a step supplies its own tracer).
	Tracer trace.Tracer
	// Metrics, when set, aggregates engine counters across every query
	// step plus scheduler-level txns_admitted / txns_rejected /
	// txns_missed counters (and, in the concurrent Controller, the live
	// txns_running gauge plus reason-split txns_rejected_infeasible /
	// txns_rejected_capacity / txns_rejected_closed counters).
	Metrics *trace.Registry
	// Progress, when set, registers every query step with the live
	// telemetry registry (labelled "txn ID qN"), so an attached
	// telemetry server shows per-transaction progress while the
	// scheduler runs.
	Progress *telemetry.Registry
	// Log, when set, emits structured admission/completion/deadline
	// events. Nil-safe: a nil Logger costs one pointer check per event.
	Log *telemetry.Logger
}

// Scheduler runs transactions against one store.
type Scheduler struct {
	store *storage.Store
	eng   *core.Engine
	opts  Options
}

// New creates a scheduler over a store.
func New(store *storage.Store, opts Options) *Scheduler {
	if opts.Slack <= 0 {
		opts.Slack = 0.05
	}
	return &Scheduler{store: store, eng: core.NewEngine(store), opts: opts}
}

// Run executes the transactions in earliest-deadline-first order and
// returns one result per transaction (in EDF order). Admission control
// (quota policy only) rejects transactions whose worst case cannot fit
// before their deadline at dispatch time; rejected transactions are
// reported with Admitted=false and never consume clock time.
func (s *Scheduler) Run(txns []Txn) ([]TxnResult, error) {
	if len(txns) == 0 {
		return nil, errors.New("sched: no transactions")
	}
	order := append([]Txn{}, txns...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Deadline < order[j].Deadline })

	clock := s.store.Clock()
	results := make([]TxnResult, 0, len(order))
	for _, tx := range order {
		res := TxnResult{ID: tx.ID, Started: clock.Now()}
		wcet := tx.wcet(s.opts.Slack)
		if s.opts.Policy == QuotaQueries {
			// Admission control: the worst case must fit.
			if clock.Now()+wcet > tx.Deadline {
				res.Admitted = false
				s.opts.Metrics.Add("txns_rejected", 1)
				s.opts.Log.TxnRejected(tx.ID, wcet, tx.Deadline)
				results = append(results, res)
				continue
			}
		}
		res.Admitted = true
		s.opts.Metrics.Add("txns_admitted", 1)
		s.opts.Log.TxnAdmitted(tx.ID, wcet, tx.Deadline)
		if err := s.execute(tx, &res); err != nil {
			return nil, fmt.Errorf("sched: txn %d: %w", tx.ID, err)
		}
		res.Finished = clock.Now()
		res.Met = res.Finished <= tx.Deadline
		if !res.Met {
			s.opts.Metrics.Add("txns_missed", 1)
		}
		s.opts.Log.TxnFinished(tx.ID, res.Met, res.Started, res.Finished, tx.Deadline)
		results = append(results, res)
	}
	return results, nil
}

func (s *Scheduler) execute(tx Txn, res *TxnResult) error {
	return executeTxn(s.store, s.eng, s.opts, tx, res)
}

// executeTxn runs one transaction's query steps against the given store
// view (a root store for the serial Scheduler, a private session for
// the concurrent Controller) and appends their outcomes to res.
func executeTxn(store *storage.Store, eng *core.Engine, sopts Options, tx Txn, res *TxnResult) error {
	clock := store.Clock()
	for qi, step := range tx.Queries {
		t0 := clock.Now()
		switch sopts.Policy {
		case ExactQueries:
			n, err := eng.FullScanCount(step.Expr)
			if err != nil {
				return err
			}
			res.Queries = append(res.Queries, QueryOutcome{
				Estimate: float64(n), Exact: true, Spent: clock.Now() - t0,
			})
		default:
			opts := step.Options
			opts.Quota = step.Quota
			opts.Mode = core.HardDeadline
			if opts.Seed == 0 {
				opts.Seed = sopts.Seed + int64(tx.ID*100+qi)
			}
			if opts.Tracer == nil {
				opts.Tracer = sopts.Tracer
			}
			if opts.Metrics == nil {
				opts.Metrics = sopts.Metrics
			}
			var handle *telemetry.Handle
			if sopts.Progress != nil {
				handle = sopts.Progress.Track(fmt.Sprintf("txn %d q%d", tx.ID, qi))
				opts.Tracer = trace.Combine(opts.Tracer, handle)
			}
			r, err := eng.Count(step.Expr, opts)
			if err != nil {
				handle.Discard()
				return err
			}
			res.Queries = append(res.Queries, QueryOutcome{
				Estimate: r.Estimate.Value,
				StdErr:   r.Estimate.StdErr(),
				Spent:    clock.Now() - t0,
			})
		}
	}
	if tx.AppWork > 0 {
		store.ChargeCPU(tx.AppWork)
	}
	return nil
}

// MissCount counts admitted transactions that missed their deadlines.
func MissCount(results []TxnResult) int {
	n := 0
	for _, r := range results {
		if r.Admitted && !r.Met {
			n++
		}
	}
	return n
}

// RejectCount counts transactions refused by admission control.
func RejectCount(results []TxnResult) int {
	n := 0
	for _, r := range results {
		if !r.Admitted {
			n++
		}
	}
	return n
}

// Clock exposes the scheduler's session clock (for building absolute
// deadlines).
func (s *Scheduler) Clock() vclock.Clock { return s.store.Clock() }
