package sampling

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestBlockSamplerDrawsWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewBlockSampler(100, rng)
	seen := map[int]bool{}
	total := 0
	for _, k := range []int{10, 25, 65} {
		blocks := s.Draw(k)
		if len(blocks) != k {
			t.Fatalf("drew %d, want %d", len(blocks), k)
		}
		for _, b := range blocks {
			if b < 0 || b >= 100 {
				t.Fatalf("block %d out of range", b)
			}
			if seen[b] {
				t.Fatalf("block %d drawn twice", b)
			}
			seen[b] = true
		}
		total += k
		if s.Drawn() != total || s.Remaining() != 100-total {
			t.Fatalf("counters wrong after %d draws", total)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("exhausted sampler saw %d distinct blocks", len(seen))
	}
	if extra := s.Draw(5); extra != nil {
		t.Errorf("draw from exhausted sampler = %v", extra)
	}
}

func TestBlockSamplerPartialLastDraw(t *testing.T) {
	s := NewBlockSampler(7, rand.New(rand.NewSource(2)))
	first := s.Draw(5)
	rest := s.Draw(10)
	if len(first) != 5 || len(rest) != 2 {
		t.Errorf("draw sizes %d, %d", len(first), len(rest))
	}
}

func TestBlockSamplerZeroAndNegative(t *testing.T) {
	s := NewBlockSampler(5, rand.New(rand.NewSource(3)))
	if s.Draw(0) != nil || s.Draw(-2) != nil {
		t.Error("non-positive draws should return nil")
	}
	empty := NewBlockSampler(0, rand.New(rand.NewSource(3)))
	if empty.Draw(3) != nil {
		t.Error("empty sampler should return nil")
	}
}

func TestBlockSamplerUniformity(t *testing.T) {
	// Draw 1 of 10 many times; each block should appear ~10% of the time.
	counts := make([]int, 10)
	const trials = 20000
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < trials; i++ {
		s := NewBlockSampler(10, rng)
		counts[s.Draw(1)[0]]++
	}
	for b, c := range counts {
		p := float64(c) / trials
		if math.Abs(p-0.1) > 0.01 {
			t.Errorf("block %d drawn with frequency %.3f, want ~0.1", b, p)
		}
	}
}

func TestBlockSamplerAllSubsetsEquallyLikely(t *testing.T) {
	// For D=4 draw 2: all C(4,2)=6 unordered pairs should be uniform.
	counts := map[[2]int]int{}
	const trials = 30000
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < trials; i++ {
		s := NewBlockSampler(4, rng)
		d := s.Draw(2)
		sort.Ints(d)
		counts[[2]int{d[0], d[1]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct pairs, want 6", len(counts))
	}
	for pair, c := range counts {
		p := float64(c) / trials
		if math.Abs(p-1.0/6) > 0.01 {
			t.Errorf("pair %v frequency %.3f, want ~1/6", pair, p)
		}
	}
}

func TestRelationSampleBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rs := NewRelationSample("r", 2000, 10000, rng)
	b1 := rs.Draw(40)
	b2 := rs.Draw(60)
	if len(b1) != 40 || len(b2) != 60 {
		t.Fatalf("draw sizes %d, %d", len(b1), len(b2))
	}
	if err := rs.SetStageTuples(0, 200); err != nil {
		t.Fatal(err)
	}
	if err := rs.SetStageTuples(1, 300); err != nil {
		t.Fatal(err)
	}
	if err := rs.SetStageTuples(5, 1); err == nil {
		t.Error("out-of-range stage should error")
	}
	if rs.CumBlocks(0) != 40 || rs.CumBlocks(1) != 100 || rs.CumBlocks(99) != 100 {
		t.Errorf("CumBlocks: %d, %d", rs.CumBlocks(0), rs.CumBlocks(1))
	}
	if rs.CumTuples(0) != 200 || rs.CumTuples(1) != 500 {
		t.Errorf("CumTuples: %d, %d", rs.CumTuples(0), rs.CumTuples(1))
	}
	if rs.Remaining() != 1900 {
		t.Errorf("Remaining = %d", rs.Remaining())
	}
	if math.Abs(rs.Fraction()-0.05) > 1e-12 {
		t.Errorf("Fraction = %g, want 0.05", rs.Fraction())
	}
}

func TestRelationSampleFractionEmptyRelation(t *testing.T) {
	rs := NewRelationSample("r", 0, 0, rand.New(rand.NewSource(1)))
	if rs.Fraction() != 0 {
		t.Error("empty relation fraction should be 0")
	}
}

func TestPointSpaceArithmetic(t *testing.T) {
	// The paper's setup: two relations of 10,000 tuples / 2,000 blocks.
	ps := PointSpace{TupleCounts: []int64{10000, 10000}, BlockCounts: []int{2000, 2000}}
	if ps.TotalPoints() != 1e8 {
		t.Errorf("TotalPoints = %g", ps.TotalPoints())
	}
	if ps.TotalSpaceBlocks() != 4e6 {
		t.Errorf("TotalSpaceBlocks = %g", ps.TotalSpaceBlocks())
	}
}

func TestFullFulfillmentPoints(t *testing.T) {
	if got := FullFulfillmentPoints([]int64{200, 300}); got != 60000 {
		t.Errorf("FullFulfillmentPoints = %g", got)
	}
	if got := FullFulfillmentPoints([]int64{5}); got != 5 {
		t.Errorf("single relation = %g", got)
	}
	if got := FullFulfillmentPoints(nil); got != 1 {
		t.Errorf("empty = %g (degenerate product)", got)
	}
}

func TestPartialFulfillmentPoints(t *testing.T) {
	// Two relations, two stages: stage products summed.
	stage := [][]int64{{10, 20}, {30, 40}}
	if got := PartialFulfillmentPoints(stage); got != 10*30+20*40 {
		t.Errorf("partial = %g", got)
	}
	if got := PartialFulfillmentPoints(nil); got != 0 {
		t.Errorf("empty = %g", got)
	}
	// Partial never exceeds full.
	full := FullFulfillmentPoints([]int64{30, 70})
	if PartialFulfillmentPoints(stage) > full {
		t.Error("partial fulfillment covered more points than full")
	}
}

func TestNewStagePointsMatchesPaperFormula(t *testing.T) {
	// Two relations: formula n1s·n2s + N1·n2s + n1s·N2 from Section 4.
	prev := []int64{200, 150}
	cur := []int64{50, 60}
	want := float64(50*60 + 200*60 + 50*150)
	if got := NewStagePoints(prev, cur); got != want {
		t.Errorf("NewStagePoints = %g, want %g", got, want)
	}
	// First stage: prev all zero => Π cur.
	if got := NewStagePoints([]int64{0, 0}, []int64{10, 20}); got != 200 {
		t.Errorf("first stage = %g", got)
	}
}

func TestNewStagePointsTelescopes(t *testing.T) {
	// Summing NewStagePoints over stages must equal FullFulfillmentPoints.
	stages := [][]int64{{10, 5}, {20, 15}, {7, 0}, {3, 9}}
	prev := []int64{0, 0}
	var total float64
	for _, st := range stages {
		total += NewStagePoints(prev, st)
		for i := range prev {
			prev[i] += st[i]
		}
	}
	if want := FullFulfillmentPoints(prev); math.Abs(total-want) > 1e-9 {
		t.Errorf("telescoped %g, want %g", total, want)
	}
}

func TestSampleInts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	got := SampleInts(rng, 10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", got)
		}
		seen[v] = true
	}
	if len(SampleInts(rng, 3, 10)) != 3 {
		t.Error("oversample should clamp to n")
	}
	if SampleInts(rng, 5, 0) != nil {
		t.Error("zero sample should be nil")
	}
}
