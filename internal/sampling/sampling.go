// Package sampling implements the sampling plans of the paper: cluster
// sampling with disk blocks as sample units (the implemented default)
// and simple random sampling of points (used by the variance
// approximation and the estimator tests).
//
// A BlockSampler draws blocks without replacement from one relation,
// stage by stage; a SampleSet tracks, per relation, what every stage
// drew, which is exactly the SAMPLE-SET / NEW-SAMPLE-SET bookkeeping of
// the paper's Figure 3.1. Point-space arithmetic for the cluster plan
// (space blocks, evaluated points under full or partial fulfillment)
// lives here too.
package sampling

import (
	"fmt"
	"math/rand"
)

// BlockSampler draws disk-block indices without replacement from a
// relation of D blocks. The draw order is a seeded random permutation,
// materialised lazily with a partial Fisher–Yates shuffle so that huge
// relations do not cost O(D) memory until sampled.
type BlockSampler struct {
	d     int
	rng   *rand.Rand
	perm  map[int]int // sparse Fisher–Yates state
	next  int         // number of indices already drawn
	fixed []int       // prebuilt permutation (catalog warm path); nil when live
}

// NewBlockSampler creates a sampler over block indices [0, d).
func NewBlockSampler(d int, rng *rand.Rand) *BlockSampler {
	return &BlockSampler{d: d, rng: rng, perm: make(map[int]int)}
}

// NewBlockSamplerFromPerm creates a sampler that replays a prebuilt
// permutation of block indices instead of drawing live: Draw(k) returns
// successive slices of perm, consuming no RNG. This is the sample-
// catalog warm path — the permutation was drawn (seeded) at build time,
// so a warm query's "random" sample is the materialized one.
func NewBlockSamplerFromPerm(perm []int) *BlockSampler {
	return &BlockSampler{d: len(perm), fixed: perm}
}

// Remaining returns how many blocks have not been drawn yet.
func (b *BlockSampler) Remaining() int { return b.d - b.next }

// Drawn returns how many blocks have been drawn so far.
func (b *BlockSampler) Drawn() int { return b.next }

// Draw returns the next k undrawn block indices, uniformly at random
// without replacement. It returns fewer than k (possibly zero) when the
// relation is exhausted.
func (b *BlockSampler) Draw(k int) []int {
	if k > b.Remaining() {
		k = b.Remaining()
	}
	if k <= 0 {
		return nil
	}
	if b.fixed != nil {
		out := append([]int(nil), b.fixed[b.next:b.next+k]...)
		b.next += k
		return out
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		j := b.next + b.rng.Intn(b.d-b.next)
		vj, ok := b.perm[j]
		if !ok {
			vj = j
		}
		vn, ok := b.perm[b.next]
		if !ok {
			vn = b.next
		}
		b.perm[j] = vn
		b.perm[b.next] = vj
		out = append(out, vj)
		b.next++
	}
	return out
}

// StageDraw records one stage's sample from one relation.
type StageDraw struct {
	Blocks []int // block indices drawn this stage
	Tuples int   // tuples contained in those blocks (filled by the executor)
}

// RelationSample tracks the cumulative sample of one relation across
// stages.
type RelationSample struct {
	Name    string
	DTotal  int   // total disk blocks in the relation
	NTotal  int64 // total tuples in the relation
	Stages  []StageDraw
	sampler *BlockSampler
}

// NewRelationSample builds the bookkeeping for one relation.
func NewRelationSample(name string, dTotal int, nTotal int64, rng *rand.Rand) *RelationSample {
	return &RelationSample{
		Name:    name,
		DTotal:  dTotal,
		NTotal:  nTotal,
		sampler: NewBlockSampler(dTotal, rng),
	}
}

// NewRelationSampleFromPerm builds the bookkeeping for one relation
// whose draw order replays a prebuilt permutation (catalog warm path).
func NewRelationSampleFromPerm(name string, perm []int, nTotal int64) *RelationSample {
	return &RelationSample{
		Name:    name,
		DTotal:  len(perm),
		NTotal:  nTotal,
		sampler: NewBlockSamplerFromPerm(perm),
	}
}

// Draw samples k more blocks for a new stage and records them. The
// returned slice is the NEW-SAMPLE-SET of Figure 3.1 for this relation.
func (r *RelationSample) Draw(k int) []int {
	blocks := r.sampler.Draw(k)
	r.Stages = append(r.Stages, StageDraw{Blocks: blocks})
	return blocks
}

// SetStageTuples records how many tuples stage i's blocks contained.
func (r *RelationSample) SetStageTuples(stage, tuples int) error {
	if stage < 0 || stage >= len(r.Stages) {
		return fmt.Errorf("sampling: stage %d out of range", stage)
	}
	r.Stages[stage].Tuples = tuples
	return nil
}

// CumBlocks returns the number of blocks drawn in stages [0, upto].
// Pass upto = len(Stages)-1 (or simply a large number) for the total.
func (r *RelationSample) CumBlocks(upto int) int {
	total := 0
	for i, s := range r.Stages {
		if i > upto {
			break
		}
		total += len(s.Blocks)
	}
	return total
}

// CumTuples returns the number of tuples drawn in stages [0, upto].
func (r *RelationSample) CumTuples(upto int) int64 {
	var total int64
	for i, s := range r.Stages {
		if i > upto {
			break
		}
		total += int64(s.Tuples)
	}
	return total
}

// Remaining returns how many blocks are still undrawn.
func (r *RelationSample) Remaining() int { return r.sampler.Remaining() }

// Fraction returns the cumulative sample fraction f = d/D.
func (r *RelationSample) Fraction() float64 {
	if r.DTotal == 0 {
		return 0
	}
	return float64(r.CumBlocks(len(r.Stages))) / float64(r.DTotal)
}

// PointSpace describes the point space of a Select-Join-Intersect
// expression over n operand relations (Section 2 of the paper): each
// relation is one dimension; the space has Π|r_i| points and Π D_i
// space blocks.
type PointSpace struct {
	TupleCounts []int64 // |r_i| per dimension
	BlockCounts []int   // D_i per dimension
}

// TotalPoints returns Π |r_i| as float64 (counts overflow int64 for
// multi-way joins of large relations).
func (p PointSpace) TotalPoints() float64 {
	total := 1.0
	for _, n := range p.TupleCounts {
		total *= float64(n)
	}
	return total
}

// TotalSpaceBlocks returns Π D_i as float64.
func (p PointSpace) TotalSpaceBlocks() float64 {
	total := 1.0
	for _, d := range p.BlockCounts {
		total *= float64(d)
	}
	return total
}

// FullFulfillmentPoints returns the number of points covered after each
// relation has contributed cumTuples[i] sample tuples under the full
// fulfillment plan (every cross combination of sampled tuples).
func FullFulfillmentPoints(cumTuples []int64) float64 {
	total := 1.0
	for _, n := range cumTuples {
		total *= float64(n)
	}
	return total
}

// PartialFulfillmentPoints returns the points covered under the partial
// fulfillment plan, where only same-stage samples are combined:
// Σ_stages Π_i tuples[i][stage].
func PartialFulfillmentPoints(stageTuples [][]int64) float64 {
	if len(stageTuples) == 0 {
		return 0
	}
	nStages := len(stageTuples[0])
	total := 0.0
	for s := 0; s < nStages; s++ {
		prod := 1.0
		for _, rel := range stageTuples {
			if s >= len(rel) {
				return total
			}
			prod *= float64(rel[s])
		}
		total += prod
	}
	return total
}

// NewStagePoints returns how many new points stage s (0-based) covers
// under full fulfillment, given per-relation cumulative tuple counts
// before the stage (prev) and the stage's new tuples (cur):
//
//	Π(prev_i + cur_i) − Π prev_i
//
// which for two relations reduces to the paper's
// n1s·n2s + N1,s-1·n2s + n1s·N2,s-1 (Section 4).
func NewStagePoints(prev, cur []int64) float64 {
	after := 1.0
	before := 1.0
	for i := range prev {
		after *= float64(prev[i] + cur[i])
		before *= float64(prev[i])
	}
	return after - before
}

// SampleInts draws m distinct integers uniformly from [0, n) using a
// sparse Fisher–Yates shuffle; order is the draw order.
func SampleInts(rng *rand.Rand, n, m int) []int {
	if m > n {
		m = n
	}
	if m <= 0 {
		return nil
	}
	s := NewBlockSampler(n, rng)
	return s.Draw(m)
}
