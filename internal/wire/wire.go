// Package wire defines the tcqd HTTP/JSON protocol: the query request
// body, the NDJSON/SSE event stream of progressive estimates, and the
// typed rejection payload. Both the server (internal/server) and the
// thin client (internal/client) marshal exactly these structs, so the
// protocol lives in one place.
//
// Durations cross the wire in nanoseconds (suffix _ns), matching the
// JSON shape of the telemetry endpoints; all fields derive from the
// session's virtual clock, so responses under a simulated clock are
// deterministic.
package wire

import "time"

// QueryRequest is the body of POST /v1/query. Exactly one of SQL or RA
// must be set: SQL is an aggregate SELECT (COUNT/SUM/AVG, optional
// GROUP BY), RA the relational-algebra form accepted by tcq.Parse
// (always COUNT).
type QueryRequest struct {
	// Tenant names the per-tenant admission gate the query is charged
	// to; empty means the shared "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	SQL    string `json:"sql,omitempty"`
	RA     string `json:"ra,omitempty"`
	// Exact requests full evaluation (no time constraint) instead of a
	// time-constrained estimate. Admission charges it the server's
	// worst-case quota, since its duration is unknown a priori.
	Exact bool `json:"exact,omitempty"`
	// Quota is the time constraint T in nanoseconds (server default
	// applies when zero; values above the server's max are rejected as
	// infeasible).
	Quota time.Duration `json:"quota_ns,omitempty"`
	// HardDeadline aborts the running stage at quota expiry instead of
	// letting the final stage finish.
	HardDeadline bool `json:"hard_deadline,omitempty"`
	// TargetRelError, when positive, adds the error-constrained stop:
	// finish early once the CI half-width falls below this fraction of
	// the estimate.
	TargetRelError float64 `json:"target_rel_error,omitempty"`
	// Confidence is the CI level (default 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// Strategy picks the time-control strategy: "one-at-a-time"
	// (default), "single-interval" or "heuristic".
	Strategy string `json:"strategy,omitempty"`
	// DBeta is the One-at-a-Time risk knob (default 12).
	DBeta float64 `json:"dbeta,omitempty"`
	// Seed drives block sampling (default 1); under a simulated-clock
	// server, equal requests with equal seeds return byte-identical
	// streams.
	Seed int64 `json:"seed,omitempty"`
	// Stream requests progressive per-stage events (NDJSON, or SSE when
	// the request's Accept header is text/event-stream). Off, the
	// response is the result event followed by the terminal spans event.
	Stream bool `json:"stream,omitempty"`
	// Parallel sets the engine's worker count for sample evaluation
	// (0 = serial). Any value returns the same answer as serial; it only
	// changes wall time.
	Parallel int `json:"parallel,omitempty"`
}

// RequestIDHeader carries the server-assigned request id on every
// response, including rejections, so any outcome is traceable to the
// server's per-request label ("req-N").
const RequestIDHeader = "X-Tcq-Request-Id"

// Event is one line of the response stream. The Event discriminator is
// "progress" (a completed stage's running estimate), "result" (the
// terminal answer), "spans" (the request's wire-to-wire latency
// anatomy, emitted once after the result) or "error" (terminal
// failure). One flat struct serves all four so clients decode every
// line identically. Unknown event kinds must be skipped, not rejected,
// so older clients survive new terminal events.
type Event struct {
	Event string `json:"event"`
	// RequestID is the server-assigned request id ("req-N"), present on
	// terminal events and duplicated in the RequestIDHeader.
	RequestID string `json:"request_id,omitempty"`

	// Progress + result fields.
	Stage    int           `json:"stage,omitempty"`
	Estimate float64       `json:"estimate,omitempty"`
	StdErr   float64       `json:"stderr,omitempty"`
	Interval float64       `json:"interval,omitempty"`
	Blocks   int           `json:"blocks,omitempty"`
	Elapsed  time.Duration `json:"elapsed_ns,omitempty"`
	// SpentFrac is the fraction of quota consumed so far.
	SpentFrac float64 `json:"spent_frac,omitempty"`

	// Result-only fields.
	Kind        string        `json:"kind,omitempty"` // "count", "sum", "avg", ...
	Value       float64       `json:"value,omitempty"`
	Confidence  float64       `json:"confidence,omitempty"`
	Stages      int           `json:"stages,omitempty"`
	Utilization float64       `json:"utilization,omitempty"`
	Overspent   bool          `json:"overspent,omitempty"`
	Overrun     time.Duration `json:"overrun_ns,omitempty"`
	StopReason  string        `json:"stop_reason,omitempty"`
	Exact       bool          `json:"exact,omitempty"`
	Groups      []Group       `json:"groups,omitempty"`

	// Error-only fields (mirroring ErrorResponse).
	Error      string        `json:"error,omitempty"`
	Reason     string        `json:"reason,omitempty"`
	RetryAfter time.Duration `json:"retry_after_ns,omitempty"`

	// Spans-only fields: the request's latency anatomy. Wall is the
	// wire-to-wire wall time the spans partition; nanosecond values are
	// real (not virtual) time, so they are the one nondeterministic part
	// of an otherwise deterministic stream.
	Wall  time.Duration `json:"wall_ns,omitempty"`
	Spans []Span        `json:"spans,omitempty"`
}

// Span is one attributed slice of a request's wall time on the
// terminal spans event. Names and semantics mirror
// telemetry.SpanTimeline: consecutive spans partition [0, wall].
type Span struct {
	// Name: decode, admission_wait, plan, eval, finalize, stream_write
	// or flush.
	Name string `json:"name"`
	// Stage is the 1-based sampling stage for eval spans, 0 otherwise.
	Stage int `json:"stage,omitempty"`
	// Start is the span's offset from request receipt.
	Start time.Duration `json:"start_ns"`
	// Dur is the wall time attributed to the span.
	Dur time.Duration `json:"duration_ns"`
	// Retries counts admission re-reservation attempts (admission_wait
	// only).
	Retries int `json:"retries,omitempty"`
}

// Group is one GROUP BY bucket of a result event.
type Group struct {
	Key      interface{} `json:"key"`
	Value    float64     `json:"value"`
	StdErr   float64     `json:"stderr,omitempty"`
	Interval float64     `json:"interval,omitempty"`
}

// ErrorResponse is the JSON body of a non-2xx response (bad request,
// admission rejection, draining server).
type ErrorResponse struct {
	Error string `json:"error"`
	// RequestID is the server-assigned request id, also sent in the
	// RequestIDHeader, so rejected requests are traceable too.
	RequestID string `json:"request_id,omitempty"`
	// Reason is the admission RejectReason slug ("infeasible",
	// "at-capacity", "closed") or "bad-request".
	Reason string `json:"reason,omitempty"`
	// RetryAfter, for at-capacity rejections, is how long to wait
	// before an identical request can fit (also sent as the HTTP
	// Retry-After header, in whole seconds).
	RetryAfter time.Duration `json:"retry_after_ns,omitempty"`
}

// RelationInfo describes one relation on GET /v1/relations.
type RelationInfo struct {
	Name   string `json:"name"`
	Tuples int64  `json:"tuples"`
	Blocks int    `json:"blocks"`
}

// RelationsResponse is the body of GET /v1/relations.
type RelationsResponse struct {
	Relations []RelationInfo `json:"relations"`
}

// Health is the body of GET /healthz.
type Health struct {
	// Status is "ok" while serving, "draining" once shutdown began.
	Status string `json:"status"`
	// Tenants counts tenants with live admission gates.
	Tenants int `json:"tenants"`
}
