package catalog

import (
	"testing"

	"tcq/internal/raparse"
)

func mustParse(t *testing.T, src string) string {
	t.Helper()
	e, err := raparse.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Fingerprint(e)
}

// TestFingerprintEquivalences checks that semantically identical shapes
// collapse to one cache key: commuted comparisons, reordered and/or
// chains, double negation, commutative set operations, and reordered
// join conditions.
func TestFingerprintEquivalences(t *testing.T) {
	pairs := [][2]string{
		{`select(r, a < 10)`, `select(r, 10 > a)`},
		{`select(r, a <= 10)`, `select(r, 10 >= a)`},
		{`select(r, a = 1 and b = 2)`, `select(r, b = 2 and a = 1)`},
		{`select(r, (a = 1 and b = 2) and c = 3)`, `select(r, a = 1 and (c = 3 and b = 2))`},
		{`select(r, a = 1 or b = 2)`, `select(r, b = 2 or a = 1)`},
		{`select(r, not not a = 1)`, `select(r, a = 1)`},
		{`union(r, s)`, `union(s, r)`},
		{`intersect(r, s, u)`, `intersect(u, s, r)`},
		{`join(r, s, id = rid and a = b)`, `join(r, s, a = b and id = rid)`},
		{`select(select(r, 5 > b), a = 1)`, `select(select(r, b < 5), a = 1)`},
	}
	for _, p := range pairs {
		if f0, f1 := mustParse(t, p[0]), mustParse(t, p[1]); f0 != f1 {
			t.Errorf("equivalent shapes got distinct fingerprints:\n %q -> %q\n %q -> %q",
				p[0], f0, p[1], f1)
		}
	}
}

// TestFingerprintDistinctions checks that shapes with different
// semantics never collide: operand order where it matters (join operand
// sides, difference), projection column order, operator strength, and
// plain different constants.
func TestFingerprintDistinctions(t *testing.T) {
	pairs := [][2]string{
		{`select(r, a < 10)`, `select(r, a <= 10)`},
		{`select(r, a < 10)`, `select(r, a < 11)`},
		{`select(r, a < 10)`, `select(s, a < 10)`},
		{`select(r, a = 1 and b = 2)`, `select(r, a = 1 or b = 2)`},
		{`select(r, not a = 1)`, `select(r, a = 1)`},
		{`diff(r, s)`, `diff(s, r)`},
		{`join(r, s, a = b)`, `join(s, r, a = b)`},
		{`join(r, s, a = b)`, `join(r, s, b = a)`},
		{`project(r, [a, b])`, `project(r, [b, a])`},
		{`union(r, s)`, `intersect(r, s)`},
	}
	for _, p := range pairs {
		if f0, f1 := mustParse(t, p[0]), mustParse(t, p[1]); f0 == f1 {
			t.Errorf("distinct shapes collided on fingerprint %q:\n %q\n %q", f0, p[0], p[1])
		}
	}
}

// TestFingerprintFixpoint checks canonicalization is idempotent and its
// output stays inside the parser's grammar — the fingerprint of a
// canonical form is itself.
func TestFingerprintFixpoint(t *testing.T) {
	for _, src := range []string{
		`select(r, 10 > a and not not (b = 2 or a = 1))`,
		`intersect(union(s, r), select(r, 3 >= c))`,
		`join(r, s, id = rid and a = b)`,
	} {
		e, err := raparse.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		fp := Fingerprint(e)
		e2, err := raparse.Parse(fp)
		if err != nil {
			t.Fatalf("fingerprint %q does not re-parse: %v", fp, err)
		}
		if fp2 := Fingerprint(e2); fp2 != fp {
			t.Errorf("fingerprint not a fixed point:\n first: %q\nsecond: %q", fp, fp2)
		}
	}
}

// TestFingerprintPred covers the standalone predicate entry point.
func TestFingerprintPred(t *testing.T) {
	p1, err := raparse.ParsePred(`b = 2 and 10 > a`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := raparse.ParsePred(`a < 10 and b = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if f1, f2 := FingerprintPred(p1), FingerprintPred(p2); f1 != f2 {
		t.Fatalf("equivalent predicates got distinct fingerprints: %q vs %q", f1, f2)
	}
}
