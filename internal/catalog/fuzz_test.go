package catalog

import (
	"testing"

	"tcq/internal/ra"
	"tcq/internal/raparse"
	"tcq/internal/tuple"
)

// fuzzRels is a tiny fixed database every fuzzed expression is
// evaluated against: enough relations and columns to give most parsed
// shapes a meaning, so the semantics check below actually runs.
func fuzzRels() *ra.MapRelations {
	m := ra.NewMapRelations()
	schema := tuple.MustSchema(
		tuple.Column{Name: "a", Type: tuple.Int},
		tuple.Column{Name: "b", Type: tuple.Int},
		tuple.Column{Name: "id", Type: tuple.Int},
	)
	rows := func(off int64) []tuple.Tuple {
		var ts []tuple.Tuple
		for i := int64(0); i < 16; i++ {
			ts = append(ts, tuple.Tuple{(i*7 + off) % 13, (i*3 + off) % 5, i})
		}
		return ts
	}
	m.Add("r", schema, rows(0))
	m.Add("s", schema, rows(2))
	m.Add("u", schema, rows(5))
	return m
}

// FuzzFingerprint fuzzes the shape canonicalizer with three invariants:
// the canonical form must re-parse, must be a fixed point (so one shape
// cannot produce two cache keys), and must preserve semantics (exact
// evaluation of the canonical form equals the original — so two shapes
// with different answers can never collide into one cache entry via a
// canonicalization bug).
func FuzzFingerprint(f *testing.F) {
	seeds := []string{
		// Shapes whose canonical forms must coincide.
		`select(r, a < 10)`,
		`select(r, 10 > a)`,
		`select(r, a = 1 and b = 2)`,
		`select(r, b = 2 and a = 1)`,
		`select(r, not not a = 1)`,
		`union(s, r)`,
		`intersect(u, s, r)`,
		`join(r, s, id = id and a = b)`,
		// Collision candidates: near-identical shapes whose semantics
		// differ and whose fingerprints therefore must not merge.
		`select(r, a <= 10)`,
		`select(r, not a = 1)`,
		`diff(r, s)`,
		`diff(s, r)`,
		`join(s, r, a = b)`,
		`join(r, s, b = a)`,
		`project(r, [a, b])`,
		`project(r, [b, a])`,
		// Deeper nesting.
		`union(select(r, a < 5), join(project(s, [id, a]), u, id = id))`,
		`select(select(r, 5 > b), a = 1 or not b = 0)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	rels := fuzzRels()
	f.Fuzz(func(t *testing.T, input string) {
		e, err := raparse.Parse(input)
		if err != nil {
			return // rejection is the parser's fuzz target's business
		}
		fp := Fingerprint(e)
		ce, err := raparse.Parse(fp)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q: %v", fp, err)
		}
		if fp2 := Fingerprint(ce); fp2 != fp {
			t.Fatalf("canonicalization not a fixed point:\n first: %q\nsecond: %q", fp, fp2)
		}
		want, err := ra.CountExact(e, rels)
		if err != nil {
			return // shape has no meaning on the fuzz database
		}
		got, err := ra.CountExact(ce, rels)
		if err != nil {
			t.Fatalf("canonical form of %q stopped evaluating: %q: %v", input, fp, err)
		}
		if got != want {
			t.Fatalf("canonicalization changed semantics: %q (count %d) vs %q (count %d)",
				input, want, fp, got)
		}
	})
}
