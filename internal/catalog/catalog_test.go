package catalog

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"tcq/internal/tuple"
)

// TestBuildRelationPermutation checks the materialized sample set is a
// true permutation of the relation's block numbers and deterministic in
// (seed, name).
func TestBuildRelationPermutation(t *testing.T) {
	c := New(7)
	c.BuildRelation("r", 100, 500)
	rs := c.RelationEntries()
	if len(rs) != 1 || rs[0].Relation != "r" || rs[0].NumBlocks != 100 || rs[0].NumTuples != 500 {
		t.Fatalf("unexpected entries: %+v", rs)
	}

	perm := func(c *Catalog) []int {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return append([]int(nil), c.rels["r"].Perm...)
	}
	p := perm(c)
	if !isPermutation(p, 100) {
		t.Fatalf("not a permutation of [0,100): %v", p)
	}

	c2 := New(7)
	c2.BuildRelation("r", 100, 500)
	if !reflect.DeepEqual(p, perm(c2)) {
		t.Fatal("same (seed, name) produced different permutations")
	}
	c3 := New(8)
	c3.BuildRelation("r", 100, 500)
	if reflect.DeepEqual(p, perm(c3)) {
		t.Fatal("different seeds produced identical permutations")
	}
}

// TestBuildStratifiedProportional checks a stratified permutation is
// still a permutation and that every prefix carries approximately
// proportional representation of each stratum (the property that makes
// prefix-sampling unbiased stratified sampling).
func TestBuildStratifiedProportional(t *testing.T) {
	const nb = 120
	strata := make([]int, nb)
	for b := range strata {
		strata[b] = b % 3 // three equal strata, interleaved on disk
	}
	c := New(1)
	c.BuildStratified("r", nb, 1200, "a", strata)
	rs := c.RelationEntries()
	if rs[0].StratifyCol != "a" || rs[0].Strata != 3 {
		t.Fatalf("unexpected stratified entry: %+v", rs[0])
	}
	c.mu.RLock()
	perm := append([]int(nil), c.rels["r"].Perm...)
	c.mu.RUnlock()
	if !isPermutation(perm, nb) {
		t.Fatalf("stratified output not a permutation: %v", perm)
	}
	// Every prefix must stay within one block of perfect proportional
	// allocation per stratum (largest-remainder rounding).
	counts := [3]int{}
	for i, b := range perm {
		counts[strata[b]]++
		n := i + 1
		for s, got := range counts {
			want := float64(n) / 3
			if d := float64(got) - want; d > 1.0+1e-9 || d < -1.0-1e-9 {
				t.Fatalf("prefix %d: stratum %d has %d of %d (want %.1f±1)", n, s, got, n, want)
			}
		}
	}
}

// TestStratifyQuantiles checks the standalone bucketing helper.
func TestStratifyQuantiles(t *testing.T) {
	keys := []tuple.Value{"d", "a", "c", "b"}
	got := Stratify(keys, 4)
	if want := []int{3, 0, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Stratify = %v, want %v", got, want)
	}
}

// TestLookupLifecycle walks the full hint lifecycle: miss with no hint,
// miss with a hint but no sample set, hit when both exist, stale when
// the live relation's shape has drifted, and hit again after a rebuild.
func TestLookupLifecycle(t *testing.T) {
	c := New(1)
	view := []RelView{{Name: "r", NumBlocks: 100, NumTuples: 500}}

	if hit, stale := c.Lookup("fp", view); hit != nil || stale {
		t.Fatalf("lookup with no hint: hit=%v stale=%v", hit, stale)
	}
	c.RecordShape("fp", []string{"r"}, 0.05, 12.5)
	if hit, _ := c.Lookup("fp", view); hit != nil {
		t.Fatal("lookup hit without a built sample set")
	}
	c.BuildRelation("r", 100, 500)
	hit, stale := c.Lookup("fp", view)
	if hit == nil || stale {
		t.Fatalf("expected hit: hit=%v stale=%v", hit, stale)
	}
	if hit.HintFrac != 0.05 {
		t.Fatalf("HintFrac = %v, want 0.05", hit.HintFrac)
	}
	if p := hit.Perm("r"); !isPermutation(p, 100) {
		t.Fatalf("hit permutation invalid: %v", p)
	}

	// The relation grew: the entry is stale and the lookup misses.
	grown := []RelView{{Name: "r", NumBlocks: 120, NumTuples: 600}}
	if hit, stale := c.Lookup("fp", grown); hit != nil || !stale {
		t.Fatalf("stale lookup: hit=%v stale=%v", hit, stale)
	}
	c.BuildRelation("r", 120, 600)
	if hit, stale := c.Lookup("fp", grown); hit == nil || stale {
		t.Fatalf("post-rebuild lookup: hit=%v stale=%v", hit, stale)
	}

	st := c.Stats()
	want := Stats{Relations: 1, Shapes: 1, Lookups: 5, Hits: 2, Misses: 3, Stale: 1}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

// TestRecordShapeAveraging checks hint accumulation across runs.
func TestRecordShapeAveraging(t *testing.T) {
	c := New(1)
	c.RecordShape("fp", []string{"r"}, 0.02, 10)
	c.RecordShape("fp", []string{"r"}, 0.04, 20)
	sh := c.ShapeEntries()
	if len(sh) != 1 {
		t.Fatalf("want 1 shape, got %d", len(sh))
	}
	if h := sh[0]; h.Calls != 2 || h.HintFrac() != 0.03 || h.MeanCIWidth() != 15 {
		t.Fatalf("unexpected hint: %+v (frac=%v ci=%v)", h, h.HintFrac(), h.MeanCIWidth())
	}
	// Degenerate records are dropped, not averaged in.
	c.RecordShape("fp", []string{"r"}, 0, 5)
	c.RecordShape("", []string{"r"}, 0.5, 5)
	if h := c.ShapeEntries()[0]; h.Calls != 2 {
		t.Fatalf("degenerate record was folded in: %+v", h)
	}
}

// TestInvalidate checks targeted invalidation drops the relation and
// every dependent shape but leaves independent shapes alone.
func TestInvalidate(t *testing.T) {
	c := New(1)
	c.BuildRelation("r", 10, 50)
	c.BuildRelation("s", 10, 50)
	c.RecordShape("uses-r", []string{"r"}, 0.1, 1)
	c.RecordShape("uses-rs", []string{"r", "s"}, 0.1, 1)
	c.RecordShape("uses-s", []string{"s"}, 0.1, 1)

	c.Invalidate("r")
	st := c.Stats()
	if st.Relations != 1 || st.Shapes != 1 {
		t.Fatalf("after Invalidate(r): %+v", st)
	}
	if sh := c.ShapeEntries(); sh[0].Fingerprint != "uses-s" {
		t.Fatalf("surviving shape = %q, want uses-s", sh[0].Fingerprint)
	}

	c.Invalidate()
	if st := c.Stats(); st.Relations != 0 || st.Shapes != 0 {
		t.Fatalf("after Invalidate(): %+v", st)
	}
}

// TestSaveLoadRoundTrip checks persistence is lossless and
// deterministic, and that ReplaceFrom adopts loaded state in place.
func TestSaveLoadRoundTrip(t *testing.T) {
	c := New(42, 0.1, 0.5)
	c.BuildRelation("r", 30, 150)
	c.BuildStratified("s", 20, 100, "a", []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	c.RecordShape("fp1", []string{"r"}, 0.1, 4)
	c.SeedShape("fp2", []string{"r", "s"}, 0.2, 8, 3)

	var buf1 bytes.Buffer
	if err := c.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.RelationEntries(), loaded.RelationEntries()) {
		t.Fatal("relation entries did not round-trip")
	}
	if !reflect.DeepEqual(c.ShapeEntries(), loaded.ShapeEntries()) {
		t.Fatal("shape entries did not round-trip")
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("serialization not deterministic across a round-trip")
	}

	// ReplaceFrom keeps receiver identity but swaps contents.
	dst := New(1)
	dst.BuildRelation("old", 5, 25)
	dst.ReplaceFrom(loaded)
	if !reflect.DeepEqual(dst.RelationEntries(), c.RelationEntries()) {
		t.Fatal("ReplaceFrom did not adopt loaded contents")
	}

	// Unsupported versions are rejected.
	if _, err := Load(bytes.NewReader([]byte(`{"version": 99}`))); err == nil {
		t.Fatal("Load accepted an unsupported version")
	}
}

// TestResolutionsSortedAndCopied checks ladder normalization.
func TestResolutionsSortedAndCopied(t *testing.T) {
	c := New(1, 0.5, 0.1, 0.25)
	rs := c.Resolutions()
	if !sort.Float64sAreSorted(rs) {
		t.Fatalf("resolutions not sorted: %v", rs)
	}
	rs[0] = 99
	if c.Resolutions()[0] == 99 {
		t.Fatal("Resolutions returned internal slice")
	}
	if d := New(1).Resolutions(); !reflect.DeepEqual(d, DefaultResolutions) {
		t.Fatalf("default ladder = %v", d)
	}
}

func isPermutation(p []int, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, b := range p {
		if b < 0 || b >= n || seen[b] {
			return false
		}
		seen[b] = true
	}
	return true
}
