package catalog

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"sync"

	"tcq/internal/storage"
	"tcq/internal/tuple"
)

// DefaultResolutions is the nested resolution ladder: prefixes of one
// seeded block permutation, so every resolution is a strict superset of
// the one below it and a warm query can land on any rung without a
// rebuild. The fine rungs matter — figure workloads stop at 1–5% block
// coverage, so that is where the picker usually lands.
var DefaultResolutions = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0}

// RelationSamples is one relation's materialized sample set: a full
// seeded permutation of its block numbers (drawing the first ⌈f·D⌉
// entries yields the resolution-f sample; nested prefixes give every
// resolution at once) plus the relation's shape at build time, which is
// the staleness check — if the live relation has grown or shrunk, the
// entry no longer covers it and the lookup misses.
type RelationSamples struct {
	Relation  string `json:"relation"`
	NumBlocks int    `json:"num_blocks"`
	NumTuples int64  `json:"num_tuples"`
	// StratifyCol names the column the permutation is stratified on
	// (empty for a uniform permutation). Stratified entries bucket
	// blocks by the column's block-level value and interleave the
	// strata round-robin, so every prefix carries proportional
	// representation of each stratum — proportional-allocation
	// stratified sampling, unbiased under the engine's estimator with
	// variance at or below simple random block sampling.
	StratifyCol string `json:"stratify_col,omitempty"`
	Strata      int    `json:"strata,omitempty"`
	Perm        []int  `json:"perm"`
}

// ShapeHint is the reuse cache's value: what the history of one query
// shape says a warm run needs. HintFrac (mean block coverage at stop
// across recorded runs) is the resolution target the timectrl picker
// aims for; Relations lists the base relations the shape reads, each of
// which must have a fresh catalog entry for the shape to hit.
type ShapeHint struct {
	Fingerprint string   `json:"fingerprint"`
	Relations   []string `json:"relations"`
	Calls       int64    `json:"calls"`
	FracSum     float64  `json:"frac_sum"`
	WidthSum    float64  `json:"width_sum"`
}

// HintFrac is the mean covered block fraction at stop.
func (h ShapeHint) HintFrac() float64 {
	if h.Calls == 0 {
		return 0
	}
	return h.FracSum / float64(h.Calls)
}

// MeanCIWidth is the mean confidence-interval half-width at stop.
func (h ShapeHint) MeanCIWidth() float64 {
	if h.Calls == 0 {
		return 0
	}
	return h.WidthSum / float64(h.Calls)
}

// Stats is a point-in-time snapshot of the catalog's counters and
// contents.
type Stats struct {
	Relations    int   `json:"relations"`
	Shapes       int   `json:"shapes"`
	Lookups      int64 `json:"lookups"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Stale        int64 `json:"stale"`
	BlocksReused int64 `json:"blocks_reused"`
	BytesReused  int64 `json:"bytes_reused"`
}

// RelView is what the engine knows about one feed relation at lookup
// time; the catalog compares it against the build-time shape for
// staleness.
type RelView struct {
	Name      string
	NumBlocks int
	NumTuples int64
}

// Hit is a successful lookup: the shape's hint plus an immutable
// permutation per feed relation. The slices are shared read-only with
// the catalog; Build/Invalidate replace whole entries rather than
// mutating them, so a query holding a Hit across a concurrent refresh
// keeps a consistent pre-refresh view (no torn reads).
type Hit struct {
	Fingerprint string
	HintFrac    float64
	Resolutions []float64
	perms       map[string][]int
}

// Perm returns the prebuilt block permutation for one relation.
func (h *Hit) Perm(name string) []int { return h.perms[name] }

// Catalog is the persistent sample-catalog state: per-relation sample
// sets plus the shape-reuse cache. All methods are safe for concurrent
// use; queries, builds and invalidations may interleave freely.
type Catalog struct {
	mu          sync.RWMutex
	seed        int64
	resolutions []float64
	rels        map[string]*RelationSamples
	shapes      map[string]*ShapeHint

	lookups, hits, misses, stale int64
	blocksReused, bytesReused    int64
}

// New returns an empty catalog. Permutations are a deterministic
// function of (seed, relation name), so two catalogs built with the
// same seed over the same store are identical. An empty resolutions
// list means DefaultResolutions.
func New(seed int64, resolutions ...float64) *Catalog {
	rs := resolutions
	if len(rs) == 0 {
		rs = append([]float64(nil), DefaultResolutions...)
	} else {
		rs = append([]float64(nil), rs...)
	}
	sort.Float64s(rs)
	return &Catalog{
		seed:        seed,
		resolutions: rs,
		rels:        map[string]*RelationSamples{},
		shapes:      map[string]*ShapeHint{},
	}
}

// Resolutions returns the catalog's resolution ladder (ascending).
func (c *Catalog) Resolutions() []float64 {
	return append([]float64(nil), c.resolutions...)
}

func (c *Catalog) relRNG(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(c.seed*1_000_003 + int64(h.Sum64()%(1<<31))))
}

// BuildRelation materializes (or refreshes) the uniform sample set for
// a relation of the given shape: one seeded permutation of its block
// numbers.
func (c *Catalog) BuildRelation(name string, numBlocks int, numTuples int64) {
	perm := c.relRNG(name).Perm(numBlocks)
	c.install(&RelationSamples{
		Relation: name, NumBlocks: numBlocks, NumTuples: numTuples, Perm: perm,
	})
}

// BuildStratified materializes a stratified sample set: strata[i] is
// the stratum id of block i. Within each stratum the block order is a
// seeded shuffle; the strata are then interleaved round-robin in
// proportion to their sizes, so every permutation prefix is an
// (approximately) proportionally allocated stratified sample.
func (c *Catalog) BuildStratified(name string, numBlocks int, numTuples int64, col string, strata []int) {
	rng := c.relRNG(name)
	groups := map[int][]int{}
	var ids []int
	for b := 0; b < numBlocks; b++ {
		s := 0
		if b < len(strata) {
			s = strata[b]
		}
		if _, ok := groups[s]; !ok {
			ids = append(ids, s)
		}
		groups[s] = append(groups[s], b)
	}
	sort.Ints(ids)
	for _, id := range ids {
		g := groups[id]
		rng.Shuffle(len(g), func(i, j int) { g[i], g[j] = g[j], g[i] })
	}
	// Largest-remainder round-robin: at each step emit the next block
	// of the stratum whose emitted share lags its size share most.
	perm := make([]int, 0, numBlocks)
	taken := make([]int, len(ids))
	for len(perm) < numBlocks {
		best, bestLag := -1, 0.0
		for i, id := range ids {
			g := groups[id]
			if taken[i] >= len(g) {
				continue
			}
			lag := float64(len(g))*float64(len(perm)+1)/float64(numBlocks) - float64(taken[i])
			if best == -1 || lag > bestLag {
				best, bestLag = i, lag
			}
		}
		perm = append(perm, groups[ids[best]][taken[best]])
		taken[best]++
	}
	c.install(&RelationSamples{
		Relation: name, NumBlocks: numBlocks, NumTuples: numTuples,
		StratifyCol: col, Strata: len(ids), Perm: perm,
	})
}

func (c *Catalog) install(rs *RelationSamples) {
	c.mu.Lock()
	c.rels[rs.Relation] = rs
	c.mu.Unlock()
}

// BuildFromStore materializes uniform sample sets for the named
// relations (all relations in the store when names is empty). Reading
// the relation shape does not charge the simulated clock — catalog
// builds are offline maintenance, not query work.
func (c *Catalog) BuildFromStore(st *storage.Store, names ...string) error {
	if len(names) == 0 {
		names = st.RelationNames()
	}
	for _, name := range names {
		rel, err := st.Relation(name)
		if err != nil {
			return err
		}
		c.BuildRelation(name, rel.NumBlocks(), rel.NumTuples())
	}
	return nil
}

// BuildStratifiedFromStore materializes a stratified sample set for one
// relation, keyed on col: each block's stratum is the quantile bucket
// (among all blocks, up to 8 strata) of the block's first value of col.
// The scan uses Relation.AllTuples, which bypasses the simulated clock.
func (c *Catalog) BuildStratifiedFromStore(st *storage.Store, name, col string) error {
	rel, err := st.Relation(name)
	if err != nil {
		return err
	}
	ci, ok := rel.Schema().ColIndex(col)
	if !ok {
		return fmt.Errorf("catalog: relation %s has no column %s", name, col)
	}
	ts := rel.AllTuples()
	bf := rel.BlockingFactor()
	nb := rel.NumBlocks()
	keys := make([]string, nb)
	for b := 0; b < nb; b++ {
		i := b * bf
		if i < len(ts) {
			keys[b] = fmt.Sprintf("%v", ts[i][ci])
		}
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	strata := make([]int, nb)
	nStrata := 8
	if nb < nStrata {
		nStrata = nb
	}
	for b, k := range keys {
		rank := sort.SearchStrings(sorted, k)
		strata[b] = rank * nStrata / len(sorted)
	}
	c.BuildStratified(name, nb, rel.NumTuples(), col, strata)
	return nil
}

// RecordShape folds one completed run into the shape-reuse cache: the
// covered block fraction and CI half-width at stop. The engine calls
// this at the end of every catalog-enabled run, so the first (cold) run
// of a shape plants the hint the next run hits on.
func (c *Catalog) RecordShape(fp string, rels []string, coveredFrac, ciWidth float64) {
	if fp == "" || coveredFrac <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.shapes[fp]
	if h == nil {
		h = &ShapeHint{Fingerprint: fp, Relations: append([]string(nil), rels...)}
		sort.Strings(h.Relations)
		c.shapes[fp] = h
	}
	h.Calls++
	h.FracSum += coveredFrac
	h.WidthSum += ciWidth
}

// SeedShape plants a shape hint directly (used when pre-building from
// telemetry ShapeStat history rather than from an observed run).
func (c *Catalog) SeedShape(fp string, rels []string, hintFrac, ciWidth float64, calls int64) {
	if fp == "" || hintFrac <= 0 || calls <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := &ShapeHint{Fingerprint: fp, Relations: append([]string(nil), rels...)}
	sort.Strings(h.Relations)
	h.Calls = calls
	h.FracSum = hintFrac * float64(calls)
	h.WidthSum = ciWidth * float64(calls)
	c.shapes[fp] = h
}

// Lookup resolves one query against the catalog. A hit requires a
// recorded hint for the fingerprint and a fresh sample set (matching
// block and tuple counts) for every feed relation; a size mismatch is
// counted — and reported — as stale, and misses. Lookup never touches
// the simulated clock or any RNG — on the miss path a catalog-enabled
// run stays byte-identical to a catalog-disabled one.
func (c *Catalog) Lookup(fp string, rels []RelView) (hit *Hit, stale bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	h := c.shapes[fp]
	if h == nil || h.Calls == 0 {
		c.misses++
		return nil, false
	}
	perms := make(map[string][]int, len(rels))
	for _, rv := range rels {
		rs := c.rels[rv.Name]
		if rs == nil {
			c.misses++
			return nil, false
		}
		if rs.NumBlocks != rv.NumBlocks || rs.NumTuples != rv.NumTuples {
			c.stale++
			c.misses++
			return nil, true
		}
		perms[rv.Name] = rs.Perm
	}
	c.hits++
	return &Hit{
		Fingerprint: fp,
		HintFrac:    h.HintFrac(),
		Resolutions: c.resolutions,
		perms:       perms,
	}, false
}

// ChargeReuse records the sample volume a hit actually consumed.
func (c *Catalog) ChargeReuse(blocks int, bytes int64) {
	c.mu.Lock()
	c.blocksReused += int64(blocks)
	c.bytesReused += bytes
	c.mu.Unlock()
}

// Invalidate drops the named relations' sample sets and every shape
// hint that reads them (all state when no names are given). In-flight
// queries holding a Hit keep their immutable pre-invalidation slices.
func (c *Catalog) Invalidate(names ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(names) == 0 {
		c.rels = map[string]*RelationSamples{}
		c.shapes = map[string]*ShapeHint{}
		return
	}
	drop := map[string]bool{}
	for _, n := range names {
		drop[n] = true
		delete(c.rels, n)
	}
	for fp, h := range c.shapes {
		for _, r := range h.Relations {
			if drop[r] {
				delete(c.shapes, fp)
				break
			}
		}
	}
}

// Stats returns a snapshot of counters and contents.
func (c *Catalog) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{
		Relations:    len(c.rels),
		Shapes:       len(c.shapes),
		Lookups:      c.lookups,
		Hits:         c.hits,
		Misses:       c.misses,
		Stale:        c.stale,
		BlocksReused: c.blocksReused,
		BytesReused:  c.bytesReused,
	}
}

// RelationEntries returns the per-relation sample sets sorted by name
// (permutations omitted — this is the display surface).
func (c *Catalog) RelationEntries() []RelationSamples {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]RelationSamples, 0, len(c.rels))
	for _, rs := range c.rels {
		e := *rs
		e.Perm = nil
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Relation < out[j].Relation })
	return out
}

// ShapeEntries returns the shape-reuse cache sorted by fingerprint.
func (c *Catalog) ShapeEntries() []ShapeHint {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ShapeHint, 0, len(c.shapes))
	for _, h := range c.shapes {
		e := *h
		e.Relations = append([]string(nil), h.Relations...)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// fileFormat is the versioned persistence envelope. Slices are sorted,
// so the serialization is deterministic.
type fileFormat struct {
	Version     int               `json:"version"`
	Seed        int64             `json:"seed"`
	Resolutions []float64         `json:"resolutions"`
	Relations   []RelationSamples `json:"relations"`
	Shapes      []ShapeHint       `json:"shapes"`
}

const fileVersion = 1

// Save writes the catalog (sample sets, shape hints, resolution
// ladder) as deterministic JSON. Counters are runtime state and are
// not persisted.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	ff := fileFormat{Version: fileVersion, Seed: c.seed, Resolutions: c.resolutions}
	for _, rs := range c.rels {
		ff.Relations = append(ff.Relations, *rs)
	}
	for _, h := range c.shapes {
		ff.Shapes = append(ff.Shapes, *h)
	}
	c.mu.RUnlock()
	sort.Slice(ff.Relations, func(i, j int) bool { return ff.Relations[i].Relation < ff.Relations[j].Relation })
	sort.Slice(ff.Shapes, func(i, j int) bool { return ff.Shapes[i].Fingerprint < ff.Shapes[j].Fingerprint })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(ff)
}

// Load replaces the catalog's contents from a Save stream.
func Load(r io.Reader) (*Catalog, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, err
	}
	if ff.Version != fileVersion {
		return nil, fmt.Errorf("catalog: unsupported file version %d", ff.Version)
	}
	c := New(ff.Seed, ff.Resolutions...)
	for i := range ff.Relations {
		rs := ff.Relations[i]
		c.rels[rs.Relation] = &rs
	}
	for i := range ff.Shapes {
		h := ff.Shapes[i]
		c.shapes[h.Fingerprint] = &h
	}
	return c, nil
}

// ReplaceFrom swaps this catalog's contents (sample sets, shape hints,
// seed, resolution ladder) for o's, keeping the receiver identity so
// engines already configured with it observe the new state on their
// next lookup. Runtime counters are preserved. o is typically a
// freshly Loaded catalog; its maps are adopted, not copied, so o must
// not be used afterwards.
func (c *Catalog) ReplaceFrom(o *Catalog) {
	o.mu.RLock()
	rels, shapes, seed, res := o.rels, o.shapes, o.seed, o.resolutions
	o.mu.RUnlock()
	c.mu.Lock()
	c.rels = rels
	c.shapes = shapes
	c.seed = seed
	c.resolutions = res
	c.mu.Unlock()
}

// Stratify is a helper for callers that already hold per-block keys:
// it buckets them into at most n quantile strata.
func Stratify(keys []tuple.Value, n int) []int {
	ss := make([]string, len(keys))
	for i, k := range keys {
		ss[i] = fmt.Sprintf("%v", k)
	}
	sorted := append([]string(nil), ss...)
	sort.Strings(sorted)
	if n > len(ss) {
		n = len(ss)
	}
	out := make([]int, len(ss))
	for i, s := range ss {
		out[i] = sort.SearchStrings(sorted, s) * n / len(sorted)
	}
	return out
}
