// Package catalog maintains pre-built multi-resolution (optionally
// stratified) block-sample sets per relation plus a cross-query
// sample-reuse cache keyed on canonical query-shape fingerprints — the
// BlinkDB-style warm path for the engine: repeated query shapes reuse a
// materialized seeded block permutation and jump straight to the
// coverage their history says they need, instead of re-discovering it
// through the cold stage loop.
package catalog

import (
	"sort"

	"tcq/internal/ra"
)

// Fingerprint returns the cache key for a query shape: the RA text of
// the canonicalized expression. Two queries share a catalog entry iff
// their canonical forms render identically; the canonicalization below
// applies only semantics-preserving rewrites (commutative-operand
// sorting, conjunct/disjunct flattening, constant-side normalization),
// so distinct shapes can never collide into one entry.
func Fingerprint(e ra.Expr) string { return Canonical(e).String() }

// FingerprintPred is Fingerprint for a bare predicate (used by fuzzing
// to exercise the predicate canonicalizer directly).
func FingerprintPred(p ra.Pred) string { return CanonicalPred(p).String() }

// Canonical returns a semantics-equivalent normal form of e. The input
// is not mutated; shared subtrees are rebuilt. Rewrites:
//
//   - Intersect inputs sorted by canonical rendering (set intersection
//     is commutative and schema-stable: all inputs share a schema).
//   - Union operands sorted likewise.
//   - Join conditions (a conjunction of column equalities) sorted.
//   - Predicates canonicalized per CanonicalPred.
//
// Join and Difference operand order, and Project column order, are
// schema- or semantics-significant and are left alone.
func Canonical(e ra.Expr) ra.Expr {
	switch n := e.(type) {
	case *ra.Base:
		return &ra.Base{Name: n.Name}
	case *ra.Select:
		return &ra.Select{Input: Canonical(n.Input), Pred: CanonicalPred(n.Pred)}
	case *ra.Project:
		cols := append([]string(nil), n.Cols...)
		return &ra.Project{Input: Canonical(n.Input), Cols: cols}
	case *ra.Join:
		on := append([]ra.JoinCond(nil), n.On...)
		sort.Slice(on, func(i, j int) bool {
			if on[i].LeftCol != on[j].LeftCol {
				return on[i].LeftCol < on[j].LeftCol
			}
			return on[i].RightCol < on[j].RightCol
		})
		return &ra.Join{Left: Canonical(n.Left), Right: Canonical(n.Right), On: on}
	case *ra.Union:
		l, r := Canonical(n.Left), Canonical(n.Right)
		if r.String() < l.String() {
			l, r = r, l
		}
		return &ra.Union{Left: l, Right: r}
	case *ra.Difference:
		return &ra.Difference{Left: Canonical(n.Left), Right: Canonical(n.Right)}
	case *ra.Intersect:
		ins := make([]ra.Expr, len(n.Inputs))
		for i, in := range n.Inputs {
			ins[i] = Canonical(in)
		}
		sort.Slice(ins, func(i, j int) bool { return ins[i].String() < ins[j].String() })
		return &ra.Intersect{Inputs: ins}
	default:
		return e
	}
}

// CanonicalPred returns a semantics-equivalent normal form of p:
// same-operator and/or chains are flattened and their operands sorted
// by rendering, double negation is eliminated, and comparisons with the
// constant on the left are flipped (mirroring the operator) so
// "5 > x" and "x < 5" share one form.
func CanonicalPred(p ra.Pred) ra.Pred {
	switch n := p.(type) {
	case *ra.Cmp:
		c := &ra.Cmp{Left: n.Left, Op: n.Op, Right: n.Right}
		_, lConst := c.Left.(ra.Const)
		_, rCol := c.Right.(ra.Col)
		if lConst && rCol {
			c.Left, c.Right = c.Right, c.Left
			c.Op = mirror(c.Op)
		}
		return c
	case *ra.And:
		return rebuildChain(flattenAnd(n), func(l, r ra.Pred) ra.Pred { return &ra.And{L: l, R: r} })
	case *ra.Or:
		return rebuildChain(flattenOr(n), func(l, r ra.Pred) ra.Pred { return &ra.Or{L: l, R: r} })
	case *ra.Not:
		inner := CanonicalPred(n.P)
		if nn, ok := inner.(*ra.Not); ok {
			return nn.P
		}
		return &ra.Not{P: inner}
	default:
		return p
	}
}

// mirror returns the operator that keeps "const op col" true when the
// operands are swapped to "col op' const".
func mirror(op ra.CmpOp) ra.CmpOp {
	switch op {
	case ra.Lt:
		return ra.Gt
	case ra.Le:
		return ra.Ge
	case ra.Gt:
		return ra.Lt
	case ra.Ge:
		return ra.Le
	default: // Eq, Ne are symmetric
		return op
	}
}

func flattenAnd(p ra.Pred) []ra.Pred {
	if a, ok := p.(*ra.And); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []ra.Pred{CanonicalPred(p)}
}

func flattenOr(p ra.Pred) []ra.Pred {
	if o, ok := p.(*ra.Or); ok {
		return append(flattenOr(o.L), flattenOr(o.R)...)
	}
	return []ra.Pred{CanonicalPred(p)}
}

// rebuildChain sorts the flattened operands by rendering and rebuilds a
// left-associated chain, matching the parser's association so the
// canonical text re-parses to the canonical tree.
func rebuildChain(ops []ra.Pred, join func(l, r ra.Pred) ra.Pred) ra.Pred {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].String() < ops[j].String() })
	out := ops[0]
	for _, p := range ops[1:] {
		out = join(out, p)
	}
	return out
}
