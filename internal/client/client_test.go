// Client-side protocol behavior against scripted httptest servers:
// the two-line NDJSON result+spans shape, request-id propagation into
// ServerError, Retry-After-honoring retries on 429, and the /queries
// label filter pass-through.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tcq/internal/wire"
)

// TestQueryAttachesSpans feeds the client a result line followed by a
// terminal spans line: the returned event must carry the request id
// (from the event), the wall time, and the span slice.
func TestQueryAttachesSpans(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wire.RequestIDHeader, "req-7")
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"event":"result","request_id":"req-7","kind":"count","value":42}`)
		fmt.Fprintln(w, `{"event":"spans","request_id":"req-7","wall_ns":300,`+
			`"spans":[{"name":"decode","start_ns":0,"duration_ns":100},{"name":"eval","stage":1,"start_ns":100,"duration_ns":200}]}`)
	}))
	defer ts.Close()

	cl := New(ts.URL, "alice")
	ev, err := cl.Query(context.Background(), wire.QueryRequest{SQL: "SELECT 1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.RequestID != "req-7" {
		t.Errorf("RequestID = %q, want req-7", ev.RequestID)
	}
	if ev.Wall != 300 {
		t.Errorf("Wall = %d, want 300", ev.Wall)
	}
	if len(ev.Spans) != 2 || ev.Spans[1].Name != "eval" || ev.Spans[1].Stage != 1 {
		t.Errorf("Spans = %+v, want [decode eval[1]]", ev.Spans)
	}
}

// TestQueryRequestIDFromHeader covers a result event without an
// embedded id (and no spans line — a pre-spans server): the header id
// must be stamped on, and EOF without spans still returns the result.
func TestQueryRequestIDFromHeader(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wire.RequestIDHeader, "req-3")
		fmt.Fprintln(w, `{"event":"result","kind":"count","value":1}`)
	}))
	defer ts.Close()

	ev, err := New(ts.URL, "").Query(context.Background(), wire.QueryRequest{SQL: "SELECT 1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.RequestID != "req-3" {
		t.Errorf("RequestID = %q, want req-3 (from header)", ev.RequestID)
	}
	if len(ev.Spans) != 0 {
		t.Errorf("Spans = %+v, want none from a spans-less stream", ev.Spans)
	}
}

// TestQuerySkipsUnknownEvents: a future server may interleave event
// kinds this client predates; they must be skipped, not fatal.
func TestQuerySkipsUnknownEvents(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"event":"heartbeat"}`)
		fmt.Fprintln(w, `{"event":"result","request_id":"req-1","kind":"count","value":5}`)
		fmt.Fprintln(w, `{"event":"spans","request_id":"req-1","wall_ns":10,"spans":[{"name":"eval","start_ns":0,"duration_ns":10}]}`)
	}))
	defer ts.Close()

	ev, err := New(ts.URL, "").Query(context.Background(), wire.QueryRequest{SQL: "SELECT 1"}, nil)
	if err != nil {
		t.Fatalf("unknown event broke the stream: %v", err)
	}
	if ev.Value != 5 || len(ev.Spans) != 1 {
		t.Errorf("result = %+v, want value 5 with 1 span", ev)
	}
}

// TestServerErrorCarriesRequestID: rejections are traceable — the id
// arrives via the body when present, else via the response header.
func TestServerErrorCarriesRequestID(t *testing.T) {
	for _, tc := range []struct {
		name   string
		body   string
		header string
		want   string
	}{
		{"from-body", `{"error":"no","reason":"infeasible","request_id":"req-9"}`, "req-8", "req-9"},
		{"from-header", `{"error":"no","reason":"infeasible"}`, "req-8", "req-8"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set(wire.RequestIDHeader, tc.header)
				w.WriteHeader(http.StatusUnprocessableEntity)
				fmt.Fprintln(w, tc.body)
			}))
			defer ts.Close()

			_, err := New(ts.URL, "").Query(context.Background(), wire.QueryRequest{SQL: "SELECT 1"}, nil)
			se, ok := err.(*ServerError)
			if !ok {
				t.Fatalf("err = %v, want *ServerError", err)
			}
			if se.RequestID != tc.want {
				t.Errorf("RequestID = %q, want %q", se.RequestID, tc.want)
			}
		})
	}
}

// TestDoWithRetryHonorsRetryAfter: two 429s with a Retry-After hint,
// then success. The client must wait at least the hinted delays and
// succeed on the third attempt.
func TestDoWithRetryHonorsRetryAfter(t *testing.T) {
	attempts := 0
	hint := 30 * time.Millisecond
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(wire.ErrorResponse{
				Error: "window full", Reason: "at-capacity", RetryAfter: hint,
			})
			return
		}
		fmt.Fprintln(w, `{"event":"result","kind":"count","value":1}`)
	}))
	defer ts.Close()

	start := time.Now()
	ev, err := New(ts.URL, "").DoWithRetry(context.Background(), wire.QueryRequest{SQL: "SELECT 1"}, nil, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Value != 1 || attempts != 3 {
		t.Fatalf("value=%v attempts=%d, want success on attempt 3", ev.Value, attempts)
	}
	if waited := time.Since(start); waited < 2*hint {
		t.Errorf("retried in %v, want >= %v (two Retry-After sleeps)", waited, 2*hint)
	}
}

// TestDoWithRetryCapsDelay: an hour-long Retry-After hint must be
// clamped to maxWait, so exhaustion takes ~maxAttempts·maxWait.
func TestDoWithRetryCapsDelay(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(wire.ErrorResponse{
			Error: "window full", Reason: "at-capacity", RetryAfter: time.Hour,
		})
	}))
	defer ts.Close()

	start := time.Now()
	_, err := New(ts.URL, "").DoWithRetry(context.Background(), wire.QueryRequest{SQL: "SELECT 1"}, nil, 3, 20*time.Millisecond)
	waited := time.Since(start)
	se, ok := err.(*ServerError)
	if !ok || se.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the final 429", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if waited > 5*time.Second {
		t.Errorf("run took %v — the hour-long hint was not capped at maxWait", waited)
	}
}

// TestDoWithRetryNoRetryOnInfeasible: 422 cannot be cured by waiting;
// exactly one attempt.
func TestDoWithRetryNoRetryOnInfeasible(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(wire.ErrorResponse{Error: "too big", Reason: "infeasible"})
	}))
	defer ts.Close()

	_, err := New(ts.URL, "").DoWithRetry(context.Background(), wire.QueryRequest{SQL: "SELECT 1"}, nil, 5, time.Second)
	se, ok := err.(*ServerError)
	if !ok || se.Reason != "infeasible" {
		t.Fatalf("err = %v, want infeasible ServerError", err)
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on 422)", attempts)
	}
}

// TestQueriesLabelFilter: the label prefix must reach the server
// URL-escaped, and the {queries:[...]} envelope must decode.
func TestQueriesLabelFilter(t *testing.T) {
	var gotLabel string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/queries" {
			http.NotFound(w, r)
			return
		}
		gotLabel = r.URL.Query().Get("label")
		fmt.Fprintln(w, `{"queries":[{"label":"alice/req-2","stages_done":3,"stages":10}]}`)
	}))
	defer ts.Close()

	qs, err := New(ts.URL, "alice").Queries(context.Background(), "alice/")
	if err != nil {
		t.Fatal(err)
	}
	if gotLabel != "alice/" {
		t.Errorf("server saw label=%q, want alice/", gotLabel)
	}
	if len(qs) != 1 || qs[0].Label != "alice/req-2" {
		t.Errorf("queries = %+v, want the one alice row", qs)
	}
}
