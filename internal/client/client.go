// Package client is the thin HTTP client for tcqd: it speaks the
// internal/wire protocol — submit a query, watch the progressive
// estimate±CI stream, and map typed admission rejections (422 / 429 +
// Retry-After / 503) onto a ServerError the caller can branch on.
// tcqsh's \connect mode and the tcqload harness both drive it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"tcq/internal/telemetry"
	"tcq/internal/wire"
)

// Client talks to one tcqd instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7483".
	BaseURL string
	// Tenant is stamped on requests that carry none.
	Tenant string
	// HTTP overrides the transport (connection caps for load tests);
	// http.DefaultClient when nil.
	HTTP *http.Client
}

// New builds a client for baseURL ("host:port" is promoted to
// "http://host:port").
func New(baseURL, tenant string) *Client {
	if baseURL != "" && baseURL[0] != 'h' {
		baseURL = "http://" + baseURL
	}
	return &Client{BaseURL: baseURL, Tenant: tenant}
}

// ServerError is a non-2xx response with its typed rejection payload.
type ServerError struct {
	// Status is the HTTP status code.
	Status int
	// Reason is the wire rejection slug ("infeasible", "at-capacity",
	// "closed", "bad-request").
	Reason string
	// Message is the server's error text.
	Message string
	// RetryAfter is the server's retry hint (429 only; zero otherwise).
	RetryAfter time.Duration
	// RequestID is the server-assigned request id ("req-N"), so even
	// rejected requests are traceable in the server's logs and metrics.
	RequestID string
}

// Error implements error.
func (e *ServerError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("tcqd: %d %s: %s (retry after %v)", e.Status, e.Reason, e.Message, e.RetryAfter)
	}
	return fmt.Sprintf("tcqd: %d %s: %s", e.Status, e.Reason, e.Message)
}

// Temporary reports whether retrying the identical request can
// succeed: true for at-capacity (429) and draining (503), false for
// infeasible (422) and malformed (400) requests.
func (e *ServerError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Query submits one query. With req.Stream set, onProgress (when
// non-nil) receives each per-stage progress event as the server emits
// it; the returned event is the terminal "result". Admission
// rejections and validation failures return *ServerError; a mid-stream
// server failure returns an error carrying the server's message.
func (c *Client) Query(ctx context.Context, req wire.QueryRequest, onProgress func(wire.Event)) (*wire.Event, error) {
	if req.Tenant == "" {
		req.Tenant = c.Tenant
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeServerError(resp)
	}

	// Both response shapes are JSON-object lines; the non-streaming
	// response is a two-line stream (result + spans). The result is held
	// until the terminal spans event (or EOF, for servers predating it)
	// so the caller gets the latency anatomy attached; unknown event
	// kinds are skipped for forward compatibility.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var result *wire.Event
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev wire.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("tcqd: malformed event %q: %w", line, err)
		}
		switch ev.Event {
		case "progress":
			if onProgress != nil {
				onProgress(ev)
			}
		case "result":
			if ev.RequestID == "" {
				ev.RequestID = resp.Header.Get(wire.RequestIDHeader)
			}
			result = &ev
		case "spans":
			if result != nil {
				result.Wall = ev.Wall
				result.Spans = ev.Spans
				return result, nil
			}
		case "error":
			return nil, fmt.Errorf("tcqd: query failed: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if result != nil {
		return result, nil
	}
	return nil, fmt.Errorf("tcqd: stream ended without a result event")
}

// DoWithRetry submits a query like Query but honors the server's
// Retry-After hint on 429 at-capacity rejections: up to maxAttempts
// total attempts, sleeping the hinted delay (capped at maxWait;
// defaults 50ms hint, 2s cap) between them. Every other failure —
// including infeasible (422) and draining (503) rejections — returns
// immediately, since waiting cannot cure it.
func (c *Client) DoWithRetry(ctx context.Context, req wire.QueryRequest, onProgress func(wire.Event), maxAttempts int, maxWait time.Duration) (*wire.Event, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Second
	}
	var last error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		ev, err := c.Query(ctx, req, onProgress)
		if err == nil {
			return ev, nil
		}
		last = err
		var se *ServerError
		if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests || attempt == maxAttempts-1 {
			return nil, err
		}
		delay := se.RetryAfter
		if delay <= 0 {
			delay = 50 * time.Millisecond
		}
		if delay > maxWait {
			delay = maxWait
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	return nil, last
}

// Queries lists the server's in-flight queries (GET /queries) — the
// same registry the telemetry server scrapes — optionally filtered to
// labels with the given prefix (tenant-scoped labels are
// "tenant/req-N", so "alice/" selects one tenant's queries).
func (c *Client) Queries(ctx context.Context, labelPrefix string) ([]telemetry.QueryProgress, error) {
	path := "/queries"
	if labelPrefix != "" {
		path += "?label=" + url.QueryEscape(labelPrefix)
	}
	var resp struct {
		Queries []telemetry.QueryProgress `json:"queries"`
	}
	if err := c.getJSON(ctx, path, &resp); err != nil {
		return nil, err
	}
	return resp.Queries, nil
}

// Relations lists the server's relation catalog.
func (c *Client) Relations(ctx context.Context) ([]wire.RelationInfo, error) {
	var resp wire.RelationsResponse
	if err := c.getJSON(ctx, "/v1/relations", &resp); err != nil {
		return nil, err
	}
	return resp.Relations, nil
}

// Health probes /healthz (a draining server answers with its status
// and a nil error: the probe succeeded, the answer is "draining").
func (c *Client) Health(ctx context.Context) (wire.Health, error) {
	var h wire.Health
	err := c.getJSON(ctx, "/healthz", &h)
	return h, err
}

func (c *Client) getJSON(ctx context.Context, path string, v interface{}) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// /healthz answers 503 with a valid body while draining; decode
	// any JSON answer, error only on non-JSON failures.
	if resp.StatusCode/100 != 2 && resp.Header.Get("Content-Type") != "application/json" {
		return &ServerError{Status: resp.StatusCode, Message: resp.Status}
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// decodeServerError maps a non-2xx response to *ServerError.
func decodeServerError(resp *http.Response) error {
	reqID := resp.Header.Get(wire.RequestIDHeader)
	var body wire.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return &ServerError{Status: resp.StatusCode, Message: resp.Status, RequestID: reqID}
	}
	if body.RequestID != "" {
		reqID = body.RequestID
	}
	return &ServerError{
		Status:     resp.StatusCode,
		Reason:     body.Reason,
		Message:    body.Error,
		RetryAfter: body.RetryAfter,
		RequestID:  reqID,
	}
}
