package calib

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"tcq/internal/stats"
)

// Bucket is one log2 drift-ratio bucket: Count observations with
// actual/predicted ratio in (Le/2, Le].
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// ShapeReport is one query shape's calibration summary.
type ShapeReport struct {
	Query   string `json:"query"`
	Queries int64  `json:"queries"`
	// Nominal is the mean nominal CI level of the truth-checked runs
	// (0 when no run carried ground truth).
	Nominal float64 `json:"nominal,omitempty"`
	// TruthN/TruthHits count ground-truth checks and interval hits;
	// Coverage is the realized rate and [CoverageLo, CoverageHi] its
	// Wilson 95% score interval. Verdict is "ok" when the nominal level
	// lies inside the Wilson interval, "low"/"high" when realized
	// coverage is significantly below/above nominal, "n/a" without
	// ground truth.
	TruthN     int64   `json:"truth_n"`
	TruthHits  int64   `json:"truth_hits"`
	Coverage   float64 `json:"coverage"`
	CoverageLo float64 `json:"coverage_lo"`
	CoverageHi float64 `json:"coverage_hi"`
	Verdict    string  `json:"verdict"`
	// TruthDegenerate counts truth-checked runs whose interval was
	// zero-width around a wrong estimate (no usable CI was produced, so
	// they are excluded from the coverage rate above and tallied here).
	TruthDegenerate int64 `json:"truth_degenerate,omitempty"`
	// DriftN counts predicted stages; DriftMean the mean
	// actual/predicted ratio; WorstOvershoot the largest single-stage
	// overshoot and WorstStage which stage produced it.
	DriftN         int64    `json:"drift_n"`
	DriftMean      float64  `json:"drift_mean"`
	WorstOvershoot float64  `json:"worst_overshoot"`
	WorstStage     int      `json:"worst_stage,omitempty"`
	Overspends     int64    `json:"overspends"`
	Aborts         int64    `json:"aborts"`
	DriftBuckets   []Bucket `json:"drift_buckets,omitempty"`
}

// OperatorReport is one operator kind's drift attribution: the stages
// it dominated (largest stage output) and the prediction error charged
// to it.
type OperatorReport struct {
	Op string `json:"op"`
	// Stages counts predicted stages attributed to the operator.
	Stages    int64   `json:"stages"`
	DriftMean float64 `json:"drift_mean"`
	// OvershootSum is the summed positive overshoot attributed to the
	// operator; Worst the largest single-stage overshoot.
	OvershootSum float64  `json:"overshoot_sum"`
	Worst        float64  `json:"worst"`
	DriftBuckets []Bucket `json:"drift_buckets,omitempty"`
}

// ReasonCount is one flight-capture reason's tally.
type ReasonCount struct {
	Reason string `json:"reason"`
	Count  int64  `json:"count"`
}

// FlightEntry is a flight record's compact digest (the report view; the
// full traces are available from FlightRecords and the
// /debug/flightrecorder endpoint).
type FlightEntry struct {
	Seq       int64         `json:"seq"`
	Label     string        `json:"label,omitempty"`
	Reasons   []string      `json:"reasons"`
	Query     string        `json:"query"`
	Stages    int           `json:"stages"`
	Estimate  float64       `json:"estimate"`
	Interval  float64       `json:"interval"`
	Truth     *float64      `json:"truth,omitempty"`
	Overspend time.Duration `json:"overspend_ns,omitempty"`
}

// FlightStats summarises the flight recorder.
type FlightStats struct {
	Capacity int           `json:"capacity"`
	Captured int64         `json:"captured"`
	Held     int           `json:"held"`
	ByReason []ReasonCount `json:"by_reason,omitempty"`
	Records  []FlightEntry `json:"records,omitempty"`
}

// Report is a deterministic snapshot of the auditor: equal audit state
// yields an identical Report (and identical rendered text), which is
// what the tcqbench -calib golden relies on.
type Report struct {
	Queries   int64 `json:"queries"`
	TruthN    int64 `json:"truth_n"`
	TruthHits int64 `json:"truth_hits"`
	// TruthDegenerate counts runs excluded from coverage because they
	// produced no usable interval (zero width, estimate off truth).
	TruthDegenerate int64 `json:"truth_degenerate,omitempty"`
	// Coverage is the overall realized coverage with its Wilson 95%
	// interval (meaningful only when TruthN > 0).
	Coverage   float64          `json:"coverage"`
	CoverageLo float64          `json:"coverage_lo"`
	CoverageHi float64          `json:"coverage_hi"`
	Shapes     []ShapeReport    `json:"shapes,omitempty"`
	Operators  []OperatorReport `json:"operators,omitempty"`
	Flight     FlightStats      `json:"flight"`
}

// sortedBuckets converts a drift bucket map to ascending-bound order.
func sortedBuckets(m map[int]int64) []Bucket {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	out := make([]Bucket, 0, len(ks))
	for _, k := range ks {
		out = append(out, Bucket{Le: math.Exp2(float64(k)), Count: m[k]})
	}
	return out
}

// verdict classifies realized coverage against the nominal level using
// the Wilson interval: nominal inside → "ok"; otherwise the realized
// rate is significantly off.
func verdict(nominal, lo, hi float64, n int64) string {
	switch {
	case n <= 0:
		return "n/a"
	case hi < nominal:
		return "low"
	case lo > nominal:
		return "high"
	default:
		return "ok"
	}
}

// Report snapshots the auditor's aggregates. Safe on a nil auditor
// (returns the zero report).
func (a *Auditor) Report() Report {
	if a == nil {
		return Report{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	rep := Report{Queries: a.queries, TruthN: a.truthN, TruthHits: a.truthHits, TruthDegenerate: a.truthDegen}
	rep.CoverageLo, rep.CoverageHi = 0, 0
	if a.truthN > 0 {
		rep.Coverage = float64(a.truthHits) / float64(a.truthN)
		rep.CoverageLo, rep.CoverageHi = stats.Wilson(a.truthHits, a.truthN, 0.95)
	}

	for q, sc := range a.shapes {
		sr := ShapeReport{
			Query:           q,
			Queries:         sc.queries,
			TruthN:          sc.truthN,
			TruthHits:       sc.truthHits,
			TruthDegenerate: sc.truthDegen,
			WorstOvershoot:  sc.worst,
			WorstStage:      sc.worstStage,
			Overspends:      sc.overspends,
			Aborts:          sc.aborts,
			DriftN:          sc.driftN,
			DriftBuckets:    sortedBuckets(sc.buckets),
		}
		if sc.truthN > 0 {
			sr.Nominal = sc.levelSum / float64(sc.truthN)
			sr.Coverage = float64(sc.truthHits) / float64(sc.truthN)
			sr.CoverageLo, sr.CoverageHi = stats.Wilson(sc.truthHits, sc.truthN, 0.95)
		}
		sr.Verdict = verdict(sr.Nominal, sr.CoverageLo, sr.CoverageHi, sr.TruthN)
		if sc.driftN > 0 {
			sr.DriftMean = sc.driftSum / float64(sc.driftN)
		}
		rep.Shapes = append(rep.Shapes, sr)
	}
	sort.Slice(rep.Shapes, func(i, j int) bool {
		if rep.Shapes[i].Queries != rep.Shapes[j].Queries {
			return rep.Shapes[i].Queries > rep.Shapes[j].Queries
		}
		return rep.Shapes[i].Query < rep.Shapes[j].Query
	})

	for op, oc := range a.ops {
		or := OperatorReport{
			Op:           op,
			Stages:       oc.stages,
			OvershootSum: oc.overshootSum,
			Worst:        oc.worst,
			DriftBuckets: sortedBuckets(oc.buckets),
		}
		if oc.stages > 0 {
			or.DriftMean = oc.driftSum / float64(oc.stages)
		}
		rep.Operators = append(rep.Operators, or)
	}
	sort.Slice(rep.Operators, func(i, j int) bool {
		if rep.Operators[i].Stages != rep.Operators[j].Stages {
			return rep.Operators[i].Stages > rep.Operators[j].Stages
		}
		return rep.Operators[i].Op < rep.Operators[j].Op
	})

	rep.Flight = FlightStats{Capacity: len(a.flight), Captured: a.captured, Held: a.held}
	for _, r := range sortedStrKeys(a.reasons) {
		rep.Flight.ByReason = append(rep.Flight.ByReason, ReasonCount{Reason: r, Count: a.reasons[r]})
	}
	for i := a.held; i >= 1; i-- {
		fr := a.flight[(a.next-i+len(a.flight))%len(a.flight)]
		e := FlightEntry{
			Seq:       fr.Seq,
			Label:     fr.Label,
			Reasons:   fr.Reasons,
			Query:     fr.Trace.Info.Query,
			Stages:    fr.Trace.End.Stages,
			Estimate:  fr.Trace.End.Estimate,
			Interval:  fr.Trace.End.Interval,
			Overspend: fr.Trace.End.Overspend,
		}
		if fr.Truth != nil {
			v := fr.Truth.Value
			e.Truth = &v
		}
		rep.Flight.Records = append(rep.Flight.Records, e)
	}
	return rep
}

func sortedStrKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RenderReport formats a report as the human-readable calibration view
// (the tcqbench -calib output and the \calib shell command). Equal
// reports render byte-identically.
func RenderReport(r Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "calibration: %d queries audited, %d with ground truth\n",
		r.Queries, r.TruthN+r.TruthDegenerate)
	if r.TruthN > 0 {
		fmt.Fprintf(&b, "overall coverage: %.1f%% (%d/%d), wilson95 [%.1f%%, %.1f%%]",
			100*r.Coverage, r.TruthHits, r.TruthN, 100*r.CoverageLo, 100*r.CoverageHi)
		if r.TruthDegenerate > 0 {
			fmt.Fprintf(&b, ", %d degenerate (zero-width CI) excluded", r.TruthDegenerate)
		}
		fmt.Fprintln(&b)
	}
	for _, s := range r.Shapes {
		fmt.Fprintf(&b, "\nshape: %s\n", s.Query)
		switch {
		case s.TruthN > 0:
			fmt.Fprintf(&b, "  coverage: %.1f%% (%d/%d) nominal %.0f%% wilson95 [%.1f%%, %.1f%%] -> %s",
				100*s.Coverage, s.TruthHits, s.TruthN, 100*s.Nominal,
				100*s.CoverageLo, 100*s.CoverageHi, s.Verdict)
			if s.TruthDegenerate > 0 {
				fmt.Fprintf(&b, " (+%d degenerate)", s.TruthDegenerate)
			}
			fmt.Fprintln(&b)
		case s.TruthDegenerate > 0:
			fmt.Fprintf(&b, "  coverage: no usable intervals (%d degenerate zero-width CIs)\n", s.TruthDegenerate)
		default:
			fmt.Fprintf(&b, "  coverage: no ground truth\n")
		}
		fmt.Fprintf(&b, "  drift: %d predicted stages, ratio mean %.3f, worst overshoot %+.1f%% @ stage %d\n",
			s.DriftN, s.DriftMean, 100*s.WorstOvershoot, s.WorstStage)
		fmt.Fprintf(&b, "  outcomes: %d runs, %d overspends, %d aborts\n", s.Queries, s.Overspends, s.Aborts)
		if len(s.DriftBuckets) > 0 {
			fmt.Fprintf(&b, "  ratio buckets:")
			for _, bk := range s.DriftBuckets {
				fmt.Fprintf(&b, " le_%g:%d", bk.Le, bk.Count)
			}
			fmt.Fprintln(&b)
		}
	}
	if len(r.Operators) > 0 {
		fmt.Fprintf(&b, "\noperator drift (dominant operator per predicted stage):\n")
		for _, o := range r.Operators {
			fmt.Fprintf(&b, "  %-10s %5d stages, ratio mean %.3f, attributed overshoot %+.2f, worst %+.1f%%\n",
				o.Op, o.Stages, o.DriftMean, o.OvershootSum, 100*o.Worst)
		}
	}
	fmt.Fprintf(&b, "\nflight recorder: %d captured, %d held (cap %d)\n",
		r.Flight.Captured, r.Flight.Held, r.Flight.Capacity)
	for _, rc := range r.Flight.ByReason {
		fmt.Fprintf(&b, "  reason %-14s %d\n", rc.Reason, rc.Count)
	}
	for _, f := range r.Flight.Records {
		truth := ""
		if f.Truth != nil {
			truth = fmt.Sprintf(" truth=%.0f", *f.Truth)
		}
		over := ""
		if f.Overspend > 0 {
			over = fmt.Sprintf(" overspend=%v", f.Overspend.Round(time.Millisecond))
		}
		fmt.Fprintf(&b, "  #%d %s [%s] stages=%d est=%.1f±%.1f%s%s\n",
			f.Seq, f.Label, strings.Join(f.Reasons, ","), f.Stages, f.Estimate, f.Interval, truth, over)
	}
	return b.String()
}
