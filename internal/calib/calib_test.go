package calib

import (
	"strings"
	"sync"
	"testing"
	"time"

	"tcq/internal/trace"
)

// feed replays a synthetic trace into a fresh probe of a.
func feed(a *Auditor, label string, gt *Truth, t trace.QueryTrace) {
	p := a.Track(label, gt)
	t.Replay(p)
}

// mkTrace builds a one-stage trace with the given prediction ratio and
// final estimate ± interval.
func mkTrace(query string, predicted, actual time.Duration, est, half float64) trace.QueryTrace {
	return trace.QueryTrace{
		Info: trace.QueryInfo{Query: query, Quota: 10 * time.Second},
		Stages: []trace.StageRecord{{
			Stage:     1,
			Predicted: predicted,
			Actual:    actual,
			Overshoot: float64(actual)/float64(predicted) - 1,
			Operators: []trace.OpStat{
				{Node: 2, Op: "select", StageOut: 100},
				{Node: 4, Op: "join", StageOut: 900},
			},
			Completed: true,
			InTime:    true,
		}},
		End: trace.QueryEnd{Stages: 1, Estimate: est, Interval: half},
	}
}

func TestCoverageAccounting(t *testing.T) {
	a := NewAuditor(Config{})
	// 3 hits, 1 miss against truth 1000.
	for i := 0; i < 3; i++ {
		feed(a, "q", &Truth{Value: 1000}, mkTrace("sel(r)", time.Second, time.Second, 990, 50))
	}
	feed(a, "q", &Truth{Value: 1000}, mkTrace("sel(r)", time.Second, time.Second, 900, 50))
	// One run without ground truth: audited, not coverage-checked.
	feed(a, "q", nil, mkTrace("sel(r)", time.Second, time.Second, 123, 1))

	rep := a.Report()
	if rep.Queries != 5 || rep.TruthN != 4 || rep.TruthHits != 3 {
		t.Fatalf("got queries=%d truthN=%d hits=%d, want 5/4/3", rep.Queries, rep.TruthN, rep.TruthHits)
	}
	if rep.Coverage != 0.75 {
		t.Fatalf("coverage = %v, want 0.75", rep.Coverage)
	}
	if !(rep.CoverageLo < 0.75 && 0.75 < rep.CoverageHi) {
		t.Fatalf("wilson interval [%v, %v] must bracket 0.75", rep.CoverageLo, rep.CoverageHi)
	}
	if len(rep.Shapes) != 1 {
		t.Fatalf("want 1 shape, got %d", len(rep.Shapes))
	}
	s := rep.Shapes[0]
	if s.Nominal != 0.95 {
		t.Fatalf("nominal defaulted to %v, want 0.95", s.Nominal)
	}
	if s.Verdict != "ok" && s.Verdict != "low" {
		t.Fatalf("unexpected verdict %q", s.Verdict)
	}
	// With only 4 observations the Wilson interval is wide enough that
	// 75% realized is still consistent with 95% nominal.
	if s.Verdict != "ok" {
		t.Fatalf("verdict = %q; wilson at n=4 should not reject 0.95 (interval [%v,%v])",
			s.Verdict, s.CoverageLo, s.CoverageHi)
	}
}

func TestDriftAttribution(t *testing.T) {
	a := NewAuditor(Config{})
	// ratio 1.5 → bucket le_2; dominant operator is the join (StageOut 900).
	feed(a, "q", nil, mkTrace("j(r,s)", 2*time.Second, 3*time.Second, 10, 1))
	rep := a.Report()
	if len(rep.Operators) != 1 || rep.Operators[0].Op != "join" {
		t.Fatalf("dominant-op attribution wrong: %+v", rep.Operators)
	}
	o := rep.Operators[0]
	if o.Stages != 1 || o.DriftMean != 1.5 || o.Worst != 0.5 {
		t.Fatalf("op drift wrong: %+v", o)
	}
	if len(o.DriftBuckets) != 1 || o.DriftBuckets[0].Le != 2 || o.DriftBuckets[0].Count != 1 {
		t.Fatalf("bucket wrong: %+v", o.DriftBuckets)
	}
	s := rep.Shapes[0]
	if s.DriftN != 1 || s.DriftMean != 1.5 || s.WorstOvershoot != 0.5 || s.WorstStage != 1 {
		t.Fatalf("shape drift wrong: %+v", s)
	}
}

func TestDriftBucketEdges(t *testing.T) {
	cases := []struct {
		r float64
		k int
	}{
		{0.9, 0}, {1.0, 0}, {1.1, 1}, {2.0, 1}, {2.1, 2},
		{0.5, -1}, {0.4, -1}, {1e-9, -6}, {1e9, 6}, {0, -6}, {-1, -6},
	}
	for _, c := range cases {
		if got := driftBucket(c.r); got != c.k {
			t.Errorf("driftBucket(%v) = %d, want %d", c.r, got, c.k)
		}
	}
}

func TestFlightCapturePolicy(t *testing.T) {
	a := NewAuditor(Config{FlightSize: 2, OverspendFrac: 0.05})

	// Healthy run: no capture.
	feed(a, "ok", &Truth{Value: 100}, mkTrace("sel(r)", time.Second, time.Second, 100, 5))

	// CI miss.
	feed(a, "miss", &Truth{Value: 100}, mkTrace("sel(r)", time.Second, time.Second, 500, 5))

	// Deadline abort.
	ab := mkTrace("sel(r)", time.Second, time.Second, 0, 0)
	ab.Stages[0].Completed = false
	feed(a, "abort", nil, ab)

	// Overspend past 5% of the 10s quota.
	ov := mkTrace("sel(r)", time.Second, time.Second, 100, 5)
	ov.End.Overspent = true
	ov.End.Overspend = time.Second
	feed(a, "over", nil, ov)

	// Overspend below threshold: no capture.
	small := mkTrace("sel(r)", time.Second, time.Second, 100, 5)
	small.End.Overspent = true
	small.End.Overspend = 100 * time.Millisecond
	feed(a, "small", nil, small)

	recs := a.FlightRecords()
	if len(recs) != 2 {
		t.Fatalf("ring must hold 2, got %d", len(recs))
	}
	// Capacity 2, three captures: the oldest (ci-miss, seq 1) was
	// overwritten; chronological order of the survivors.
	if recs[0].Seq != 2 || recs[1].Seq != 3 {
		t.Fatalf("want seqs 2,3 got %d,%d", recs[0].Seq, recs[1].Seq)
	}
	if recs[0].Label != "abort" || recs[0].Reasons[0] != ReasonDeadlineAbort {
		t.Fatalf("rec 0 wrong: %+v", recs[0])
	}
	if recs[1].Label != "over" || recs[1].Reasons[0] != ReasonOverspend {
		t.Fatalf("rec 1 wrong: %+v", recs[1])
	}

	rep := a.Report()
	if rep.Flight.Captured != 3 || rep.Flight.Held != 2 || rep.Flight.Capacity != 2 {
		t.Fatalf("flight stats wrong: %+v", rep.Flight)
	}
	want := map[string]int64{ReasonCIMiss: 1, ReasonDeadlineAbort: 1, ReasonOverspend: 1}
	for _, rc := range rep.Flight.ByReason {
		if want[rc.Reason] != rc.Count {
			t.Fatalf("reason %s count %d, want %d", rc.Reason, rc.Count, want[rc.Reason])
		}
		delete(want, rc.Reason)
	}
	if len(want) != 0 {
		t.Fatalf("missing reasons: %v", want)
	}
}

func TestNilAuditorAndProbeSafe(t *testing.T) {
	var a *Auditor
	p := a.Track("x", &Truth{Value: 1})
	if p != nil {
		t.Fatal("nil auditor must return nil probe")
	}
	if p.Enabled() {
		t.Fatal("nil probe must report disabled")
	}
	p.BeginQuery(trace.QueryInfo{})
	p.StageDone(trace.StageRecord{})
	p.EndQuery(trace.QueryEnd{})
	p.Discard()
	if got := a.Report(); got.Queries != 0 {
		t.Fatalf("nil auditor report = %+v", got)
	}
	if got := a.FlightRecords(); got != nil {
		t.Fatalf("nil auditor flight records = %v", got)
	}
}

func TestReportDeterministic(t *testing.T) {
	build := func() string {
		a := NewAuditor(Config{FlightSize: 4})
		feed(a, "t0", &Truth{Value: 100}, mkTrace("sel(r)", time.Second, 1200*time.Millisecond, 101, 5))
		feed(a, "t1", &Truth{Value: 100}, mkTrace("sel(r)", time.Second, 900*time.Millisecond, 300, 5))
		feed(a, "t2", nil, mkTrace("j(r,s)", 2*time.Second, 2*time.Second, 50, 2))
		return RenderReport(a.Report())
	}
	r1, r2 := build(), build()
	if r1 != r2 {
		t.Fatalf("report not deterministic:\n%s\nvs\n%s", r1, r2)
	}
	for _, want := range []string{"calibration: 3 queries audited", "wilson95", "operator drift", "flight recorder: 1 captured"} {
		if !strings.Contains(r1, want) {
			t.Fatalf("report missing %q:\n%s", want, r1)
		}
	}
}

func TestAuditorConcurrent(t *testing.T) {
	a := NewAuditor(Config{FlightSize: 8, Metrics: trace.NewRegistry()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				truth := &Truth{Value: 100}
				est := 100.0
				if i%5 == 0 {
					est = 1000 // miss → capture
				}
				feed(a, "c", truth, mkTrace("sel(r)", time.Second, time.Second, est, 5))
				a.Report()
				a.FlightRecords()
			}
		}(g)
	}
	wg.Wait()
	rep := a.Report()
	if rep.Queries != 400 || rep.TruthN != 400 || rep.TruthHits != 320 {
		t.Fatalf("concurrent totals wrong: %+v", rep)
	}
	if rep.Flight.Captured != 80 || rep.Flight.Held != 8 {
		t.Fatalf("concurrent flight stats wrong: %+v", rep.Flight)
	}
	snap := a.cfg.Metrics.Snapshot()
	if snap.Counters["calibration_queries"] != 400 ||
		snap.Counters["calibration_truth_misses"] != 80 ||
		snap.Counters["calibration_flight_captures"] != 80 {
		t.Fatalf("metrics wrong: %+v", snap.Counters)
	}
	if snap.Histograms["calibration_drift_ratio"].Count != 400 {
		t.Fatalf("drift histogram count = %d, want 400", snap.Histograms["calibration_drift_ratio"].Count)
	}
}

// A zero-width interval around a wrong estimate is no usable CI: it
// must be excluded from the coverage rate, tallied as degenerate, and
// flight-captured under its own reason — not counted as an ordinary
// miss that drags realized coverage down.
func TestDegenerateCI(t *testing.T) {
	reg := trace.NewRegistry()
	a := NewAuditor(Config{Metrics: reg})
	truth := &Truth{Value: 500}
	feed(a, "d1", truth, mkTrace("sel(r)", time.Second, time.Second, 0, 0))    // degenerate: 0±0 vs 500
	feed(a, "d2", truth, mkTrace("sel(r)", time.Second, time.Second, 495, 10)) // hit
	feed(a, "d3", truth, mkTrace("sel(r)", time.Second, time.Second, 500, 0))  // exact: 500±0 is a hit
	rep := a.Report()
	if rep.TruthN != 2 || rep.TruthHits != 2 || rep.TruthDegenerate != 1 {
		t.Fatalf("truth accounting: n=%d hits=%d degen=%d, want 2/2/1", rep.TruthN, rep.TruthHits, rep.TruthDegenerate)
	}
	if rep.Coverage != 1 {
		t.Fatalf("coverage = %v, want 1 (degenerate excluded)", rep.Coverage)
	}
	s := rep.Shapes[0]
	if s.TruthDegenerate != 1 || s.TruthN != 2 {
		t.Fatalf("shape accounting: %+v", s)
	}
	recs := a.FlightRecords()
	if len(recs) != 1 || recs[0].Reasons[0] != ReasonDegenerateCI {
		t.Fatalf("degenerate run should be flight-captured as %s: %+v", ReasonDegenerateCI, recs)
	}
	snap := reg.Snapshot()
	if snap.Counters["calibration_truth_degenerate"] != 1 ||
		snap.Counters["calibration_truth_hits"] != 2 ||
		snap.Counters["calibration_anomaly_degenerate_ci"] != 1 {
		t.Fatalf("metrics: %+v", snap.Counters)
	}
	out := RenderReport(rep)
	for _, want := range []string{"degenerate", "(2/2)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
