// Package calib is the calibration observatory of the time-constrained
// query engine: it audits whether the statistical promises the paper
// makes actually hold on the running system.
//
// Three concerns live here, all fed through the trace.Tracer interface
// (a Probe returned by Auditor.Track is combined into the engine's
// tracer chain, inheriting the tracing layer's read-only contract — no
// session-clock charges, no RNG draws, byte-identical estimates and
// goldens with calibration on or off):
//
//   - Empirical CI coverage. For queries whose ground truth is known
//     (full-scan counts on benchmark relations, recorded goldens), the
//     auditor records hit/miss of the nominal confidence interval per
//     query shape and reports realized coverage with a Wilson score
//     interval on the coverage estimate itself, so "95%" is a measured
//     number with its own error bar rather than an assumption.
//
//   - Cost-model drift. Every predicted stage contributes an
//     actual/predicted QCOST ratio to per-shape and per-operator
//     log2-bucketed histograms, with each stage's overshoot attributed
//     to the dominant operator (largest stage output) that drove it.
//
//   - Flight recorder. Anomalous queries — a hard-deadline abort, an
//     overspend past a threshold fraction of the quota, or a CI that
//     missed known ground truth — have their full trace.QueryTrace
//     captured into a bounded overwrite-oldest ring for post-hoc
//     debugging (exposed at /debug/flightrecorder and tcqsh \flightrec).
//
// All aggregates are deterministic functions of the observed traces, so
// replaying a fixed set of traces in a fixed order yields a
// byte-identical rendered report (the tcqbench -calib golden).
package calib

import (
	"math"
	"sync"
	"time"

	"tcq/internal/trace"
)

// Truth carries a query's known ground-truth aggregate value and the
// nominal confidence level of the interval being audited.
type Truth struct {
	// Value is the exact aggregate (e.g. the full-scan COUNT).
	Value float64 `json:"value"`
	// Level is the nominal CI level the query ran with (0.95 when 0).
	Level float64 `json:"level,omitempty"`
}

// Config configures an Auditor.
type Config struct {
	// FlightSize is the flight recorder capacity (64 when <= 0).
	FlightSize int
	// OverspendFrac is the overspend capture threshold as a fraction of
	// the quota (0.05 when 0; negative disables overspend capture).
	OverspendFrac float64
	// Metrics, when non-nil, receives calibration_* counters and
	// histograms (rendered as tcq_calibration_* on /metrics).
	Metrics *trace.Registry
}

// Flight-capture reasons.
const (
	ReasonCIMiss        = "ci-miss"
	ReasonDegenerateCI  = "degenerate-ci"
	ReasonDeadlineAbort = "deadline-abort"
	ReasonOverspend     = "overspend"
	// ReasonSLOMiss marks traces captured externally by the serving
	// layer when a request missed its wire-to-wire deadline (see
	// Auditor.Capture); the record's Note carries the attribution.
	ReasonSLOMiss = "slo-miss"
)

// FlightRecord is one captured anomalous query: the full trace plus why
// it was captured.
type FlightRecord struct {
	// Seq is the auditor-assigned monotonic capture number.
	Seq int64 `json:"seq"`
	// Label is the caller-supplied origin tag (bench trial id, etc.).
	Label string `json:"label,omitempty"`
	// Reasons lists the capture triggers that fired (see Reason*).
	Reasons []string `json:"reasons"`
	// Note carries free-form capture context from external captures,
	// e.g. the dominant span of an SLO miss ("dominant=admission_wait").
	Note string `json:"note,omitempty"`
	// Truth is the known ground truth, when the query had one.
	Truth *Truth `json:"truth,omitempty"`
	// Trace is the query's full stage-by-stage trace.
	Trace trace.QueryTrace `json:"trace"`
}

// shapeCal accumulates one query shape's calibration state.
type shapeCal struct {
	queries    int64
	truthN     int64
	truthHits  int64
	truthDegen int64
	levelSum   float64 // nominal level sum over usable truth-checked runs
	driftN     int64
	driftSum   float64 // sum of actual/predicted ratios
	buckets    map[int]int64
	worst      float64 // worst (max) stage overshoot seen
	worstStage int
	overspends int64
	aborts     int64
}

// opCal accumulates one operator kind's drift attribution.
type opCal struct {
	stages       int64 // predicted stages where this op dominated
	driftSum     float64
	buckets      map[int]int64
	overshootSum float64 // sum of positive attributed overshoots
	worst        float64
}

// Auditor accumulates calibration evidence across queries. It is safe
// for concurrent use; a nil Auditor is a valid disabled instance (Track
// returns a nil Probe, snapshots are empty).
type Auditor struct {
	mu     sync.Mutex
	cfg    Config
	shapes map[string]*shapeCal
	ops    map[string]*opCal

	queries    int64
	truthN     int64
	truthHits  int64
	truthDegen int64
	reasons    map[string]int64

	flight   []FlightRecord
	next     int
	held     int
	captured int64
	seq      int64
}

// NewAuditor creates an auditor with the given configuration.
func NewAuditor(cfg Config) *Auditor {
	if cfg.FlightSize <= 0 {
		cfg.FlightSize = 64
	}
	if cfg.OverspendFrac == 0 {
		cfg.OverspendFrac = 0.05
	}
	return &Auditor{
		cfg:     cfg,
		shapes:  make(map[string]*shapeCal),
		ops:     make(map[string]*opCal),
		reasons: make(map[string]int64),
		flight:  make([]FlightRecord, cfg.FlightSize),
	}
}

// Track opens an audit probe for one query. gt, when non-nil, is the
// query's known ground truth (enables the CI-coverage audit; drift and
// anomaly capture work without it). The probe implements trace.Tracer:
// combine it into the engine's tracer chain and the auditor sees the
// query's full trace at EndQuery. A nil auditor returns a nil probe,
// itself a valid no-op Tracer, so callers thread an optional auditor
// without branching.
func (a *Auditor) Track(label string, gt *Truth) *Probe {
	if a == nil {
		return nil
	}
	return &Probe{a: a, label: label, truth: gt}
}

// Probe follows one query's evaluation for the auditor. It buffers the
// trace locally (no locks until EndQuery) and is confined to the
// query's goroutine until then. A nil probe is a usable no-op.
type Probe struct {
	a     *Auditor
	label string
	truth *Truth
	t     trace.QueryTrace
}

// Enabled implements trace.Tracer.
func (p *Probe) Enabled() bool { return p != nil }

// BeginQuery implements trace.Tracer.
func (p *Probe) BeginQuery(q trace.QueryInfo) {
	if p == nil {
		return
	}
	p.t.Info = q
}

// StageDone implements trace.Tracer.
func (p *Probe) StageDone(s trace.StageRecord) {
	if p == nil {
		return
	}
	p.t.Stages = append(p.t.Stages, s)
}

// EndQuery implements trace.Tracer: the buffered trace is folded into
// the auditor's aggregates (and possibly the flight ring).
func (p *Probe) EndQuery(e trace.QueryEnd) {
	if p == nil {
		return
	}
	p.t.End = e
	p.a.finish(p.label, p.truth, &p.t)
	p.t = trace.QueryTrace{}
}

// Discard drops a probe whose query failed before EndQuery. Probes
// register nothing until the query ends, so this is a no-op; it exists
// so harnesses that Discard failed trials treat probes uniformly.
func (p *Probe) Discard() {}

// driftBucket maps an actual/predicted ratio to a log2 bucket index:
// bucket k counts ratios r with 2^(k-1) < r <= 2^k, clamped to
// [-6, 6] so pathological ratios stay in the end buckets.
func driftBucket(r float64) int {
	if r <= 0 {
		return -6
	}
	k := int(math.Ceil(math.Log2(r)))
	if k < -6 {
		k = -6
	}
	if k > 6 {
		k = 6
	}
	return k
}

// DominantOp picks the operator a predicted stage's overshoot is
// attributed to: the non-base operator with the largest stage output
// (ties go to the lowest node id — the deepest operator in traversal
// order). Returns "" when the stage recorded no operators.
func DominantOp(s *trace.StageRecord) string {
	best := -1
	for i := range s.Operators {
		if best < 0 || s.Operators[i].StageOut > s.Operators[best].StageOut {
			best = i
		}
	}
	if best < 0 {
		return ""
	}
	return s.Operators[best].Op
}

// finish folds one completed query into the auditor.
func (a *Auditor) finish(label string, gt *Truth, t *trace.QueryTrace) {
	shape := t.Info.Query
	// Warm (sample-catalog) runs audit as their own shape: a stale
	// catalog that stops covering the truth must surface as that warm
	// shape's own `low` verdict, never hide inside the cold rate.
	if t.Info.Catalog != "" {
		shape += " [catalog " + t.Info.Catalog + "]"
	}

	// Coverage: does the reported interval contain the known truth? A
	// zero-width interval around a wrong estimate (e.g. a join sample
	// that saw zero matches, so stderr collapsed to 0) is not a usable
	// CI — the normal approximation behind it never held — so it is
	// tallied as degenerate rather than diluting the coverage estimate,
	// and captured by the flight recorder under its own reason.
	level := 0.0
	hit, checked, degen := false, false, false
	if gt != nil {
		checked = true
		level = gt.Level
		if level <= 0 || level >= 1 {
			level = 0.95
		}
		if t.End.Interval <= 0 && t.End.Estimate != gt.Value {
			degen = true
		} else {
			hit = math.Abs(t.End.Estimate-gt.Value) <= t.End.Interval
		}
	}

	// Drift: one ratio per predicted stage, attributed to the dominant
	// operator. Aborted stages still drifted — their prediction was
	// what admitted them into the quota.
	type obs struct {
		ratio     float64
		overshoot float64
		op        string
		stage     int
	}
	var drifts []obs
	aborted := false
	for i := range t.Stages {
		s := &t.Stages[i]
		if !s.Completed {
			aborted = true
		}
		if s.Predicted <= 0 {
			continue
		}
		drifts = append(drifts, obs{
			ratio:     float64(s.Actual) / float64(s.Predicted),
			overshoot: s.Overshoot,
			op:        DominantOp(s),
			stage:     s.Stage,
		})
	}

	// Anomaly policy: capture the full trace when the run aborted on
	// the hard deadline, overspent past the threshold, or missed known
	// ground truth.
	var reasons []string
	if checked && !degen && !hit {
		reasons = append(reasons, ReasonCIMiss)
	}
	if degen {
		reasons = append(reasons, ReasonDegenerateCI)
	}
	if aborted {
		reasons = append(reasons, ReasonDeadlineAbort)
	}
	if a.cfg.OverspendFrac >= 0 && t.End.Overspent && t.Info.Quota > 0 &&
		t.End.Overspend > time.Duration(a.cfg.OverspendFrac*float64(t.Info.Quota)) {
		reasons = append(reasons, ReasonOverspend)
	}

	a.mu.Lock()
	a.queries++
	sc := a.shapes[shape]
	if sc == nil {
		sc = &shapeCal{buckets: make(map[int]int64)}
		a.shapes[shape] = sc
	}
	sc.queries++
	if checked {
		if degen {
			a.truthDegen++
			sc.truthDegen++
		} else {
			a.truthN++
			sc.truthN++
			sc.levelSum += level
			if hit {
				a.truthHits++
				sc.truthHits++
			}
		}
	}
	for _, d := range drifts {
		sc.driftN++
		sc.driftSum += d.ratio
		sc.buckets[driftBucket(d.ratio)]++
		if d.overshoot > sc.worst {
			sc.worst = d.overshoot
			sc.worstStage = d.stage
		}
		if d.op == "" {
			continue
		}
		oc := a.ops[d.op]
		if oc == nil {
			oc = &opCal{buckets: make(map[int]int64)}
			a.ops[d.op] = oc
		}
		oc.stages++
		oc.driftSum += d.ratio
		oc.buckets[driftBucket(d.ratio)]++
		if d.overshoot > 0 {
			oc.overshootSum += d.overshoot
		}
		if d.overshoot > oc.worst {
			oc.worst = d.overshoot
		}
	}
	if t.End.Overspent {
		sc.overspends++
	}
	if aborted {
		sc.aborts++
	}
	if len(reasons) > 0 {
		a.captured++
		a.seq++
		for _, r := range reasons {
			a.reasons[r]++
		}
		var truth *Truth
		if gt != nil {
			cp := *gt
			cp.Level = level
			truth = &cp
		}
		rec := FlightRecord{Seq: a.seq, Label: label, Reasons: reasons, Truth: truth, Trace: *t}
		a.flight[a.next] = rec
		a.next = (a.next + 1) % len(a.flight)
		if a.held < len(a.flight) {
			a.held++
		}
	}
	a.mu.Unlock()

	// Metrics ride the shared registry outside a.mu (the registry has
	// its own lock); one Update batch keeps concurrent scrapes
	// consistent.
	if m := a.cfg.Metrics; m != nil {
		m.Update(func(tx trace.Tx) {
			tx.Add("calibration_queries", 1)
			if checked {
				tx.Add("calibration_truth_checks", 1)
				switch {
				case degen:
					tx.Add("calibration_truth_degenerate", 1)
				case hit:
					tx.Add("calibration_truth_hits", 1)
				default:
					tx.Add("calibration_truth_misses", 1)
				}
			}
			for _, d := range drifts {
				tx.Observe("calibration_drift_ratio", d.ratio)
			}
			if len(reasons) > 0 {
				tx.Add("calibration_flight_captures", 1)
				for _, r := range reasons {
					tx.Add("calibration_anomaly_"+metricName(r), 1)
				}
			}
		})
	}
}

// metricName converts a reason slug to a metric-safe suffix.
func metricName(reason string) string {
	out := make([]byte, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		if c == '-' {
			c = '_'
		}
		out[i] = c
	}
	return string(out)
}

// Capture stores one externally triggered flight record — a trace the
// serving layer (rather than the auditor's own truth/drift checks)
// deemed anomalous, e.g. a wire-to-wire SLO miss. reasons name the
// triggers (typically ReasonSLOMiss); note carries free-form
// attribution. The capture lands in the same overwrite-oldest ring and
// bumps the same calibration_flight_captures / calibration_anomaly_*
// counters as internal captures.
func (a *Auditor) Capture(label, note string, reasons []string, t trace.QueryTrace) {
	if a == nil || len(reasons) == 0 {
		return
	}
	a.mu.Lock()
	a.captured++
	a.seq++
	for _, r := range reasons {
		a.reasons[r]++
	}
	rec := FlightRecord{Seq: a.seq, Label: label, Reasons: reasons, Note: note, Trace: t}
	a.flight[a.next] = rec
	a.next = (a.next + 1) % len(a.flight)
	if a.held < len(a.flight) {
		a.held++
	}
	a.mu.Unlock()

	if m := a.cfg.Metrics; m != nil {
		m.Update(func(tx trace.Tx) {
			tx.Add("calibration_flight_captures", 1)
			for _, r := range reasons {
				tx.Add("calibration_anomaly_"+metricName(r), 1)
			}
		})
	}
}

// FlightRecords returns the retained anomalous-query captures in
// chronological order (oldest first, bounded by FlightSize). The traces
// are deep state shared with the ring; treat them as read-only.
func (a *Auditor) FlightRecords() []FlightRecord {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]FlightRecord, 0, a.held)
	for i := a.held; i >= 1; i-- {
		out = append(out, a.flight[(a.next-i+len(a.flight))%len(a.flight)])
	}
	return out
}
