package raparse

import "testing"

// FuzzParse checks that the RA parser never panics on arbitrary input
// and that every accepted expression round-trips through its canonical
// String rendering: Parse(e.String()) must succeed and re-render to
// the same string (the grammar and the printer agree).
func FuzzParse(f *testing.F) {
	seeds := []string{
		// README and shell examples.
		`select(orders, amount < 100 and region = "north")`,
		`select(orders, amount < 1000)`,
		`select(r, a < 10)`,
		`project(r, [a, b, c])`,
		`join(r, s, id = rid and a = b)`,
		`union(r, s)`,
		`diff(r, s)`,
		`intersect(r, s, u)`,
		`union(select(r, a < 5), join(project(s, [id, a]), u, id = k))`,
		`SELECT(r, a < 1 AND NOT b > 2)`,
		`select(r, true)`,
		// Shape-fingerprint collision candidates: pairs the catalog's
		// canonicalizer must merge (commuted operands, reordered
		// chains) next to pairs it must keep apart (asymmetric set
		// difference, join sides, projection order). Seeding both
		// halves steers the fuzzer toward the boundary.
		`select(r, 10 > a)`,
		`select(r, b = 2 and a = 1)`,
		`select(r, not not a = 1)`,
		`select(r, a <= 10)`,
		`union(s, r)`,
		`intersect(u, s, r)`,
		`diff(s, r)`,
		`join(s, r, a = b)`,
		`join(r, s, b = a and id = rid)`,
		`project(r, [b, a])`,
		// Malformed shapes the parser must reject gracefully.
		`select(r a < 1)`,
		`project(r, [a)`,
		`join(r, s, a = )`,
		`select(r, a @ 1)`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		first := e.String()
		e2, err := Parse(first)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q: %v", first, err)
		}
		if second := e2.String(); second != first {
			t.Fatalf("canonical form not a fixed point:\n first: %q\nsecond: %q", first, second)
		}
	})
}

// FuzzParsePred covers the standalone predicate entry point the same
// way (it shares the lexer but has its own top-level production).
func FuzzParsePred(f *testing.F) {
	for _, s := range []string{
		`a < 10`,
		`amount < 100 and region = "north"`,
		`a < 1 AND NOT b > 2`,
		`not (a = 1 or b = 2)`,
		`true`,
		`a <`,
		``,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParsePred(input)
		if err != nil {
			return
		}
		first := p.String()
		p2, err := ParsePred(first)
		if err != nil {
			t.Fatalf("canonical predicate does not re-parse: %q: %v", first, err)
		}
		if second := p2.String(); second != first {
			t.Fatalf("canonical predicate not a fixed point:\n first: %q\nsecond: %q", first, second)
		}
	})
}
