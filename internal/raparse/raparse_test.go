package raparse

import (
	"math/rand"
	"strings"
	"testing"

	"tcq/internal/ra"
)

func mustParse(t *testing.T, s string) ra.Expr {
	t.Helper()
	e, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return e
}

func TestParseBase(t *testing.T) {
	e := mustParse(t, "employees")
	b, ok := e.(*ra.Base)
	if !ok || b.Name != "employees" {
		t.Fatalf("got %#v", e)
	}
}

func TestParseSelect(t *testing.T) {
	e := mustParse(t, "select(r, a < 10)")
	s, ok := e.(*ra.Select)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if s.String() != "select(r, a < 10)" {
		t.Errorf("round trip: %s", s)
	}
}

func TestParseSelectComplexPred(t *testing.T) {
	e := mustParse(t, `select(r, (a < 10 and not b = "x") or c >= 2.5)`)
	s := e.(*ra.Select)
	or, ok := s.Pred.(*ra.Or)
	if !ok {
		t.Fatalf("top pred is %T, want Or", s.Pred)
	}
	if _, ok := or.L.(*ra.And); !ok {
		t.Errorf("left of or is %T, want And", or.L)
	}
	cmp, ok := or.R.(*ra.Cmp)
	if !ok || cmp.Op != ra.Ge {
		t.Errorf("right of or: %#v", or.R)
	}
	if v, ok := cmp.Right.(ra.Const); !ok || v.Value != 2.5 {
		t.Errorf("float const: %#v", cmp.Right)
	}
}

func TestParsePredPrecedence(t *testing.T) {
	// and binds tighter than or.
	p, err := ParsePred("a < 1 or b < 2 and c < 3")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := p.(*ra.Or)
	if !ok {
		t.Fatalf("top is %T", p)
	}
	if _, ok := or.R.(*ra.And); !ok {
		t.Errorf("right of or should be the and: %T", or.R)
	}
}

func TestParseProject(t *testing.T) {
	e := mustParse(t, "project(r, [a, b, c])")
	pr := e.(*ra.Project)
	if len(pr.Cols) != 3 || pr.Cols[2] != "c" {
		t.Errorf("cols = %v", pr.Cols)
	}
	if e := mustParse(t, "project(r, [a])"); e.(*ra.Project).Cols[0] != "a" {
		t.Error("single column project failed")
	}
}

func TestParseJoin(t *testing.T) {
	e := mustParse(t, "join(r, s, id = rid and a = b)")
	j := e.(*ra.Join)
	if len(j.On) != 2 || j.On[0].LeftCol != "id" || j.On[1].RightCol != "b" {
		t.Errorf("on = %v", j.On)
	}
}

func TestParseSetOps(t *testing.T) {
	if _, ok := mustParse(t, "union(r, s)").(*ra.Union); !ok {
		t.Error("union")
	}
	if _, ok := mustParse(t, "diff(r, s)").(*ra.Difference); !ok {
		t.Error("diff")
	}
	x := mustParse(t, "intersect(r, s, u)").(*ra.Intersect)
	if len(x.Inputs) != 3 {
		t.Errorf("intersect inputs = %d", len(x.Inputs))
	}
}

func TestParseNested(t *testing.T) {
	src := "union(select(r, a < 5), join(project(s, [id, a]), u, id = k))"
	e := mustParse(t, src)
	if e.String() != src {
		t.Errorf("round trip:\n in:  %s\n out: %s", src, e.String())
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	e := mustParse(t, "SELECT(r, a < 1 AND NOT b > 2)")
	if _, ok := e.(*ra.Select); !ok {
		t.Fatalf("got %T", e)
	}
}

func TestParseTrue(t *testing.T) {
	e := mustParse(t, "select(r, true)")
	if _, ok := e.(*ra.Select).Pred.(ra.True); !ok {
		t.Error("true predicate")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	p, err := ParsePred("a >= -42")
	if err != nil {
		t.Fatal(err)
	}
	cmp := p.(*ra.Cmp)
	if cmp.Right.(ra.Const).Value != int64(-42) {
		t.Errorf("const = %#v", cmp.Right)
	}
}

func TestParseStringEscapes(t *testing.T) {
	p, err := ParsePred(`name = "a\"b"`)
	if err != nil {
		t.Fatal(err)
	}
	if p.(*ra.Cmp).Right.(ra.Const).Value != `a"b` {
		t.Errorf("escaped string: %#v", p)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select(r a < 1)",
		"select(r, )",
		"select(r, a < )",
		"project(r, [])",
		"project(r, [a)",
		"join(r, s)",
		"join(r, s, a)",
		"join(r, s, a = )",
		"union(r)",
		"union(r, s, u)",
		"diff(r)",
		"intersect(r)",
		"frobnicate(r, s)",
		"select(r, a < 1) trailing",
		`select(r, a = "unterminated)`,
		"select(r, a ! 1)",
		"r $",
		"select(r, a < 1.2.3.4e)", // bad float is caught by strconv
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParsePredErrors(t *testing.T) {
	bad := []string{"", "a <", "< 1", "a < 1 extra", "(a < 1", "not"}
	for _, s := range bad {
		if _, err := ParsePred(s); err == nil {
			t.Errorf("ParsePred(%q) should fail", s)
		}
	}
}

// randomExpr mirrors the generator in ra's tests to fuzz round-trips.
func randomExpr(rng *rand.Rand, depth int) ra.Expr {
	if depth <= 0 {
		return &ra.Base{Name: []string{"a", "b", "c"}[rng.Intn(3)]}
	}
	switch rng.Intn(6) {
	case 0:
		return &ra.Select{Input: randomExpr(rng, depth-1),
			Pred: &ra.Cmp{Left: ra.Col{Name: "v"}, Op: ra.CmpOp(rng.Intn(6)), Right: ra.Const{Value: int64(rng.Intn(40))}}}
	case 1:
		return &ra.Union{Left: randomExpr(rng, depth-1), Right: randomExpr(rng, depth-1)}
	case 2:
		return &ra.Difference{Left: randomExpr(rng, depth-1), Right: randomExpr(rng, depth-1)}
	case 3:
		return &ra.Intersect{Inputs: []ra.Expr{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	case 4:
		return &ra.Project{Input: randomExpr(rng, depth-1), Cols: []string{"id", "v"}}
	default:
		return &ra.Join{Left: randomExpr(rng, depth-1), Right: randomExpr(rng, depth-1),
			On: []ra.JoinCond{{LeftCol: "id", RightCol: "id"}}}
	}
}

// TestRoundTripProperty: Parse(e.String()).String() == e.String() for
// random expression trees.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		e := randomExpr(rng, 1+rng.Intn(3))
		src := e.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, src, err)
		}
		if parsed.String() != src {
			t.Fatalf("trial %d round trip:\n in:  %s\n out: %s", trial, src, parsed.String())
		}
	}
}

func TestLexerOffsets(t *testing.T) {
	_, err := Parse("select(r, a @ 1)")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("lex error should mention the offset: %v", err)
	}
}
