// Package raparse parses the textual relational algebra syntax of the
// tcq mini-DBMS (the prototype's query language is RA expressions). The
// grammar is exactly what ra.Expr.String() prints, so parsing round-
// trips rendering:
//
//	expr    := ident
//	         | "select"    "(" expr "," pred ")"
//	         | "project"   "(" expr "," "[" ident { "," ident } "]" ")"
//	         | "join"      "(" expr "," expr "," cond { "and" cond } ")"
//	         | "union"     "(" expr "," expr ")"
//	         | "diff"      "(" expr "," expr ")"
//	         | "intersect" "(" expr { "," expr } ")"
//	cond    := ident "=" ident
//	pred    := orp
//	orp     := andp { "or" andp }
//	andp    := unary { "and" unary }
//	unary   := "not" unary | "(" pred ")" | "true" | cmp
//	cmp     := operand op operand        op := < <= = != >= >
//	operand := ident | int | float | string-literal
//
// Keywords are case-insensitive; identifiers may contain letters,
// digits, '_' and '.'.
package raparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"tcq/internal/ra"
)

// Parse parses one RA expression and fails on trailing input.
func Parse(input string) (ra.Expr, error) {
	p := &parser{lex: newLexer(input)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, fmt.Errorf("raparse: unexpected %q after expression", tok.text)
	}
	return e, nil
}

// ParsePred parses a standalone predicate (used by tests and tools).
func ParsePred(input string) (ra.Pred, error) {
	p := &parser{lex: newLexer(input)}
	pred, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, fmt.Errorf("raparse: unexpected %q after predicate", tok.text)
	}
	return pred, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokPunct // ( ) [ ] ,
	tokOp    // < <= = != >= >
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
	err  error
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.run()
	return l
}

func (l *lexer) fail(pos int, format string, args ...interface{}) {
	if l.err == nil {
		l.err = fmt.Errorf("raparse: at offset %d: %s", pos, fmt.Sprintf(format, args...))
	}
}

func (l *lexer) run() {
	s := l.src
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case strings.ContainsRune("()[],", rune(c)):
			l.toks = append(l.toks, token{tokPunct, string(c), i})
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			start := i
			i++
			if i < len(s) && s[i] == '=' {
				i++
			}
			op := s[start:i]
			if op == "!" {
				l.fail(start, "expected '!=' after '!'")
				return
			}
			l.toks = append(l.toks, token{tokOp, op, start})
		case c == '"':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(s) {
				if s[i] == '\\' && i+1 < len(s) {
					sb.WriteByte(s[i+1])
					i += 2
					continue
				}
				if s[i] == '"' {
					closed = true
					i++
					break
				}
				sb.WriteByte(s[i])
				i++
			}
			if !closed {
				l.fail(start, "unterminated string literal")
				return
			}
			l.toks = append(l.toks, token{tokString, sb.String(), start})
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			start := i
			i++
			isFloat := false
			for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
				if s[i] == '.' {
					isFloat = true
				}
				i++
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			l.toks = append(l.toks, token{kind, s[start:i], start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(s) {
				r := rune(s[i])
				if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' {
					i++
					continue
				}
				break
			}
			l.toks = append(l.toks, token{tokIdent, s[start:i], start})
		default:
			l.fail(i, "unexpected character %q", c)
			return
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(s)})
}

type parser struct {
	lex *lexer
	idx int
}

func (p *parser) peek() token {
	if p.lex.err != nil || p.idx >= len(p.lex.toks) {
		return token{tokEOF, "", len(p.lex.src)}
	}
	return p.lex.toks[p.idx]
}

func (p *parser) next() token {
	t := p.peek()
	if t.kind != tokEOF {
		p.idx++
	}
	return t
}

func (p *parser) expectPunct(s string) error {
	if p.lex.err != nil {
		return p.lex.err
	}
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("raparse: expected %q, got %q", s, t.text)
	}
	return nil
}

func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseExpr() (ra.Expr, error) {
	if p.lex.err != nil {
		return nil, p.lex.err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("raparse: expected relation or operator, got %q", t.text)
	}
	kw := strings.ToLower(t.text)
	if p.peek().text != "(" || p.peek().kind != tokPunct {
		// Bare identifier: a base relation.
		return &ra.Base{Name: t.text}, nil
	}
	switch kw {
	case "select":
		return p.parseSelect()
	case "project":
		return p.parseProject()
	case "join":
		return p.parseJoin()
	case "union", "diff", "intersect":
		return p.parseSetOp(kw)
	default:
		return nil, fmt.Errorf("raparse: unknown operator %q", t.text)
	}
}

func (p *parser) parseSelect() (ra.Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	in, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	pred, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &ra.Select{Input: in, Pred: pred}, nil
}

func (p *parser) parseProject() (ra.Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	in, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	var cols []string
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("raparse: expected column name, got %q", t.text)
		}
		cols = append(cols, t.text)
		sep := p.next()
		if sep.kind == tokPunct && sep.text == "," {
			continue
		}
		if sep.kind == tokPunct && sep.text == "]" {
			break
		}
		return nil, fmt.Errorf("raparse: expected ',' or ']', got %q", sep.text)
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &ra.Project{Input: in, Cols: cols}, nil
}

func (p *parser) parseJoin() (ra.Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	right, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	var on []ra.JoinCond
	for {
		lc := p.next()
		if lc.kind != tokIdent {
			return nil, fmt.Errorf("raparse: expected join column, got %q", lc.text)
		}
		eq := p.next()
		if eq.kind != tokOp || eq.text != "=" {
			return nil, fmt.Errorf("raparse: expected '=', got %q", eq.text)
		}
		rc := p.next()
		if rc.kind != tokIdent {
			return nil, fmt.Errorf("raparse: expected join column, got %q", rc.text)
		}
		on = append(on, ra.JoinCond{LeftCol: lc.text, RightCol: rc.text})
		if isKeyword(p.peek(), "and") {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &ra.Join{Left: left, Right: right, On: on}, nil
}

func (p *parser) parseSetOp(kw string) (ra.Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var parts []ra.Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
		t := p.next()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == ")" {
			break
		}
		return nil, fmt.Errorf("raparse: expected ',' or ')', got %q", t.text)
	}
	switch kw {
	case "union", "diff":
		if len(parts) != 2 {
			return nil, fmt.Errorf("raparse: %s takes exactly 2 inputs, got %d", kw, len(parts))
		}
		if kw == "union" {
			return &ra.Union{Left: parts[0], Right: parts[1]}, nil
		}
		return &ra.Difference{Left: parts[0], Right: parts[1]}, nil
	default: // intersect
		if len(parts) < 2 {
			return nil, fmt.Errorf("raparse: intersect needs at least 2 inputs")
		}
		return &ra.Intersect{Inputs: parts}, nil
	}
}

func (p *parser) parsePred() (ra.Pred, error) {
	return p.parseOr()
}

func (p *parser) parseOr() (ra.Pred, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for isKeyword(p.peek(), "or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ra.Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (ra.Pred, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for isKeyword(p.peek(), "and") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &ra.And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (ra.Pred, error) {
	if p.lex.err != nil {
		return nil, p.lex.err
	}
	t := p.peek()
	if isKeyword(t, "not") {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ra.Not{P: inner}, nil
	}
	if isKeyword(t, "true") {
		p.next()
		return ra.True{}, nil
	}
	if t.kind == tokPunct && t.text == "(" {
		p.next()
		inner, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (ra.Pred, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	if opTok.kind != tokOp {
		return nil, fmt.Errorf("raparse: expected comparison operator, got %q", opTok.text)
	}
	var op ra.CmpOp
	switch opTok.text {
	case "<":
		op = ra.Lt
	case "<=":
		op = ra.Le
	case "=", "==":
		op = ra.Eq
	case "!=":
		op = ra.Ne
	case ">=":
		op = ra.Ge
	case ">":
		op = ra.Gt
	default:
		return nil, fmt.Errorf("raparse: bad operator %q", opTok.text)
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &ra.Cmp{Left: left, Op: op, Right: right}, nil
}

func (p *parser) parseOperand() (ra.Operand, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		return ra.Col{Name: t.text}, nil
	case tokInt:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("raparse: bad integer %q: %v", t.text, err)
		}
		return ra.Const{Value: v}, nil
	case tokFloat:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("raparse: bad float %q: %v", t.text, err)
		}
		return ra.Const{Value: v}, nil
	case tokString:
		return ra.Const{Value: t.text}, nil
	default:
		return nil, fmt.Errorf("raparse: expected operand, got %q", t.text)
	}
}
