package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"tcq/internal/catalog"
	"tcq/internal/core"
	"tcq/internal/stats"
	"tcq/internal/storage"
	"tcq/internal/timectrl"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

// CatalogRow aggregates one variant's cold-run/warm-rerun trials: every
// trial builds a fresh machine and sample catalog, runs the query cold
// (a catalog miss that plants the shape's reuse hint) and reruns the
// identical shape warm (a catalog hit replaying the materialized
// permutations, first stage sized from the resolution ladder).
type CatalogRow struct {
	Label  string
	Trials int
	// Hits/Misses/Stale sum the per-trial catalog counters (each trial
	// performs exactly one miss then one hit when reuse works).
	Hits, Misses, Stale int64
	// ColdStages/WarmStages are mean stage counts; SkippedStages is the
	// mean per-trial stage saving max(0, cold−warm) — the discovery
	// stages the catalog-sized warm first stage replaced.
	ColdStages, WarmStages, SkippedStages float64
	// ColdBlocks/WarmBlocks are mean sample blocks evaluated within the
	// quota; BlocksReused sums the warm runs' catalog-served blocks.
	ColdBlocks, WarmBlocks float64
	BlocksReused           int64
	// ColdRelErr/WarmRelErr are mean |estimate−truth|/truth (%).
	ColdRelErr, WarmRelErr float64
	// ColdCoverPct/WarmCoverPct are the shares of trials whose final CI
	// covered the exact answer. The warm number is the warm-path
	// honesty check (nominal 95%); the cold number is its baseline —
	// warm must not be systematically below cold.
	ColdCoverPct, WarmCoverPct float64
}

// RunCatalog executes the cold/warm reuse protocol for every variant.
// Each trial is seeded exactly like Run's, builds its own catalog (so
// trials stay independent and the report is deterministic for any
// -parallel worker count), and reuses the trial's store across both
// runs — the warm rerun sees identical data, which is what makes the
// hit legal.
func (e Experiment) RunCatalog(opts RunOptions) ([]CatalogRow, error) {
	opts = opts.withDefaults()
	rows := make([]CatalogRow, 0, len(e.Variants))
	for vi, v := range e.Variants {
		type trialOut struct {
			cold, warm *core.Result
			truth      int64
			cstats     catalog.Stats
			err        error
		}
		outs := make([]trialOut, opts.Trials)
		sem := make(chan struct{}, opts.Parallel)
		var wg sync.WaitGroup
		for trial := 0; trial < opts.Trials; trial++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(trial int) {
				defer func() {
					<-sem
					wg.Done()
				}()
				cold, warm, truth, cs, err := e.catalogTrial(vi, trial, opts, nil)
				outs[trial] = trialOut{cold: cold, warm: warm, truth: truth, cstats: cs, err: err}
			}(trial)
		}
		wg.Wait()

		var coldStages, warmStages, skipped stats.Accumulator
		var coldBlocks, warmBlocks stats.Accumulator
		var coldErr, warmErr stats.Accumulator
		row := CatalogRow{Label: v.Label, Trials: opts.Trials}
		coldCovered, warmCovered := 0, 0
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			coldStages.Add(float64(o.cold.Stages))
			warmStages.Add(float64(o.warm.Stages))
			skipped.Add(float64(skippedStages(o.cold, o.warm)))
			coldBlocks.Add(float64(o.cold.Blocks))
			warmBlocks.Add(float64(o.warm.Blocks))
			coldErr.Add(relErrPct(o.cold, o.truth))
			warmErr.Add(relErrPct(o.warm, o.truth))
			if covers(o.cold, o.truth) {
				coldCovered++
			}
			if covers(o.warm, o.truth) {
				warmCovered++
			}
			row.Hits += o.cstats.Hits
			row.Misses += o.cstats.Misses
			row.Stale += o.cstats.Stale
			row.BlocksReused += o.cstats.BlocksReused
		}
		row.ColdStages = coldStages.Mean()
		row.WarmStages = warmStages.Mean()
		row.SkippedStages = skipped.Mean()
		row.ColdBlocks = coldBlocks.Mean()
		row.WarmBlocks = warmBlocks.Mean()
		row.ColdRelErr = coldErr.Mean()
		row.WarmRelErr = warmErr.Mean()
		row.ColdCoverPct = 100 * float64(coldCovered) / float64(opts.Trials)
		row.WarmCoverPct = 100 * float64(warmCovered) / float64(opts.Trials)
		rows = append(rows, row)
	}
	return rows, nil
}

// catalogTrial runs one seeded cold/warm pair: fresh machine, fresh
// per-trial catalog with uniform sample sets for every relation, one
// cold run (miss; records the shape hint) and one warm rerun (hit) on
// the same store. An optional stop criterion applies to both runs (the
// perf profiler passes an error target so both runs chase the same
// precision).
func (e Experiment) catalogTrial(vi, trial int, opts RunOptions, stop timectrl.Criterion) (cold, warm *core.Result, truth int64, cs catalog.Stats, err error) {
	return e.catalogTimedTrial(vi, trial, opts, stop, nil, nil)
}

// skippedStages counts the discovery stages the warm run saved: the
// cold run needs N stages to grow its sample to the stopping coverage,
// the warm run's catalog-sized first stage jumps most of the way there
// immediately, so it finishes the same quota in fewer stages. Clamped
// at zero — sampling noise can make an individual warm trial take an
// extra stage.
func skippedStages(cold, warm *core.Result) int {
	if n := cold.Stages - warm.Stages; n > 0 {
		return n
	}
	return 0
}

// covers reports whether the run's final CI contains the exact answer.
func covers(res *core.Result, truth int64) bool {
	return abs(res.Estimate.Value-float64(truth)) <= res.Interval.Half
}

func relErrPct(res *core.Result, truth int64) float64 {
	if truth <= 0 || res.Estimate.Value <= 0 {
		return 0
	}
	return 100 * abs(res.Estimate.Value-float64(truth)) / float64(truth)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// RenderCatalog formats catalog rows as a text table (same layout
// conventions as Render).
func RenderCatalog(title string, rows []CatalogRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s %6s %5s %5s %5s %8s %8s %6s %8s %8s %9s %9s %9s %9s\n",
		"variant", "trials", "hit", "miss", "stale", "cold-stg", "warm-stg", "skip",
		"cold-blk", "warm-blk", "cold-err%", "warm-err%", "cold-cov%", "warm-cov%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %6d %5d %5d %5d %8.2f %8.2f %6.2f %8.1f %8.1f %9.1f %9.1f %9.1f %9.1f\n",
			r.Label, r.Trials, r.Hits, r.Misses, r.Stale, r.ColdStages, r.WarmStages,
			r.SkippedStages, r.ColdBlocks, r.WarmBlocks, r.ColdRelErr, r.WarmRelErr,
			r.ColdCoverPct, r.WarmCoverPct)
	}
	return b.String()
}

// perfCatalogTarget is the precision both perf runs chase: the catalog
// speedup metric is time-to-target (how interactive AQP is actually
// used), so cold and warm runs stop at the same ±10% relative CI
// half-width and the warm run's advantage is reaching it in fewer
// stages.
const perfCatalogTarget = 0.10

// CatalogEvalWall times one seeded cold/warm pair of variant vi and
// returns the wall time of each engine evaluation alone — machine,
// relations, query and catalog are built outside the measured region
// (the cold run is measured first and, as a side effect, plants the
// hint the measured warm run hits on). Both runs stop at
// perfCatalogTarget relative CI half-width.
func (e Experiment) CatalogEvalWall(vi, trial int, opts RunOptions, workers int) (cold, warm time.Duration, err error) {
	opts = opts.withDefaults()
	opts.EngineParallel = workers
	stop := timectrl.ErrorTarget{RelHalfWidth: perfCatalogTarget, Level: 0.95}
	_, _, _, _, err = e.catalogTimedTrial(vi, trial, opts, stop, &cold, &warm)
	return cold, warm, err
}

// catalogTimedTrial is catalogTrial with per-run wall timing.
func (e Experiment) catalogTimedTrial(vi, trial int, opts RunOptions, stop timectrl.Criterion, coldWall, warmWall *time.Duration) (cold, warm *core.Result, truth int64, cs catalog.Stats, err error) {
	v := e.Variants[vi]
	seed := opts.BaseSeed + int64(vi*1_000_003+trial)
	clk := vclock.NewSim(seed, opts.Jitter)
	if opts.LoadSigma > 0 {
		clk.SetLoadSigma(opts.LoadSigma)
	}
	st := storage.NewStore(clk, opts.Profile, storage.DefaultBlockSize)
	rng := rand.New(rand.NewSource(seed))
	expr, initial, truth, err := e.Setup(st, rng)
	if err != nil {
		return nil, nil, 0, cs, fmt.Errorf("bench %s/%s trial %d: %w", e.ID, v.Label, trial, err)
	}
	cat := catalog.New(seed)
	if err := cat.BuildFromStore(st); err != nil {
		return nil, nil, 0, cs, fmt.Errorf("bench %s/%s trial %d: %w", e.ID, v.Label, trial, err)
	}
	run := func() (*core.Result, error) {
		engOpts := core.Options{
			Quota:                  e.Quota,
			Mode:                   core.Overrun,
			Plan:                   v.Plan,
			Sampling:               v.Sampling,
			Initial:                initial,
			Strategy:               v.Strategy(),
			Stop:                   stop,
			Seed:                   seed,
			PrestoredSelectivities: v.Prestored,
			Parallelism:            opts.EngineParallel,
			Catalog:                cat,
			Metrics:                opts.Metrics,
		}
		if v.Model != nil {
			bf := storage.DefaultBlockSize / workload.PaperTupleSize
			engOpts.Model = v.Model(opts.Profile, bf)
		}
		return core.NewEngine(st).Count(expr, engOpts)
	}
	t0 := time.Now()
	if cold, err = run(); err != nil {
		return nil, nil, 0, cs, fmt.Errorf("bench %s/%s trial %d (cold): %w", e.ID, v.Label, trial, err)
	}
	t1 := time.Now()
	if warm, err = run(); err != nil {
		return nil, nil, 0, cs, fmt.Errorf("bench %s/%s trial %d (warm): %w", e.ID, v.Label, trial, err)
	}
	t2 := time.Now()
	if coldWall != nil {
		*coldWall = t1.Sub(t0)
	}
	if warmWall != nil {
		*warmWall = t2.Sub(t1)
	}
	return cold, warm, truth, cat.Stats(), nil
}

// PerfCatalogRows profiles the sample-catalog warm path: for each
// experiment's d_β=12 variant it times cold (catalog-miss) and warm
// (catalog-hit) evaluations to the same target precision and reports
// one ns/trial row for each, best of perfRepeats sweeps — the
// stage-skip speedup as a committed number. metrics track the trace
// registry convention of PerfProfile (trial count in Trials).
func PerfCatalogRows(exps []Experiment, opts RunOptions) ([]PerfRow, error) {
	opts = opts.withDefaults()
	var rows []PerfRow
	for _, e := range exps {
		vi := catalogPerfVariant(e)
		if vi < 0 {
			continue
		}
		best := [2]time.Duration{}
		for attempt := 0; attempt < perfRepeats; attempt++ {
			var coldTotal, warmTotal time.Duration
			for trial := 0; trial < opts.Trials; trial++ {
				c, w, err := e.CatalogEvalWall(vi, trial, opts, 1)
				if err != nil {
					return nil, err
				}
				coldTotal += c
				warmTotal += w
			}
			if attempt == 0 || coldTotal < best[0] {
				best[0] = coldTotal
			}
			if attempt == 0 || warmTotal < best[1] {
				best[1] = warmTotal
			}
		}
		label := e.Variants[vi].Label
		rows = append(rows,
			PerfRow{Exp: e.ID, Label: label + " cold-eval", Trials: opts.Trials,
				NsPerTrial: best[0].Nanoseconds() / int64(opts.Trials)},
			PerfRow{Exp: e.ID, Label: label + " warm-eval", Trials: opts.Trials,
				NsPerTrial: best[1].Nanoseconds() / int64(opts.Trials)},
		)
	}
	return rows, nil
}

// catalogPerfVariant picks the variant the warm-path perf rows profile:
// the paper's operating point d_β=12 when present.
func catalogPerfVariant(e Experiment) int {
	for i, v := range e.Variants {
		if v.Label == "dβ=12" {
			return i
		}
	}
	return -1
}
