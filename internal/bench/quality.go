package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"tcq/internal/exec"
	"tcq/internal/ra"
	"tcq/internal/sampling"
	"tcq/internal/stats"
	"tcq/internal/storage"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

// QualityRow reports estimator quality at one sample fraction for one
// operator: mean relative error and the empirical coverage of the 95%
// confidence interval. The paper defers estimator quality to [HoOT 88]/
// [HouO 88]; this sweep stands in for that reference ("est.quality" in
// DESIGN.md).
type QualityRow struct {
	Op          string
	FracPct     float64
	MeanRelErr  float64 // percent
	CoveragePct float64 // how often the 95% CI contained the truth
}

// qualityCase is one operator workload for the sweep.
type qualityCase struct {
	name  string
	setup func(st *storage.Store, rng *rand.Rand) (ra.Expr, int64, error)
}

func qualityCases() []qualityCase {
	return []qualityCase{
		{"select", func(st *storage.Store, rng *rand.Rand) (ra.Expr, int64, error) {
			if _, err := workload.SelectRelation(st, "r", 2000, 200, rng); err != nil {
				return nil, 0, err
			}
			return &ra.Select{Input: &ra.Base{Name: "r"},
				Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(200)}}}, 200, nil
		}},
		{"join", func(st *storage.Store, rng *rand.Rand) (ra.Expr, int64, error) {
			if _, _, err := workload.JoinPair(st, "r", "s", 2000, 14000, rng); err != nil {
				return nil, 0, err
			}
			return &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"},
				On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}, 14000, nil
		}},
		{"intersect", func(st *storage.Store, rng *rand.Rand) (ra.Expr, int64, error) {
			if _, _, err := workload.IntersectPair(st, "r", "s", 2000, 800, rng); err != nil {
				return nil, 0, err
			}
			return &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r"}, &ra.Base{Name: "s"}}}, 800, nil
		}},
		{"project", func(st *storage.Store, rng *rand.Rand) (ra.Expr, int64, error) {
			if _, err := workload.ProjectRelation(st, "r", 2000, 150, rng); err != nil {
				return nil, 0, err
			}
			return &ra.Project{Input: &ra.Base{Name: "r"}, Cols: []string{"a"}}, 150, nil
		}},
		{"join-skewed", func(st *storage.Store, rng *rand.Rand) (ra.Expr, int64, error) {
			// Zipfian join attribute: a few heavy values dominate the
			// output. The point estimate stays reasonable, but the SRS
			// variance approximation (§3.3) grossly understates the true
			// cluster variance here, so CI coverage collapses — the
			// "some inaccuracy in the risk control is expected"
			// phenomenon the paper acknowledges, made visible.
			truth, err := workload.SkewedJoinPair(st, "r", "s", 2000, 400, 1.3, rng)
			if err != nil {
				return nil, 0, err
			}
			return &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"},
				On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}, truth, nil
		}},
	}
}

// EstimatorQuality runs the quality sweep over the given sample
// fractions (default {0.05, 0.1, 0.2, 0.4} when nil).
func EstimatorQuality(opts RunOptions, fractions []float64) ([]QualityRow, error) {
	opts = opts.withDefaults()
	if fractions == nil {
		fractions = []float64{0.05, 0.1, 0.2, 0.4}
	}
	var rows []QualityRow
	for _, c := range qualityCases() {
		for _, frac := range fractions {
			var relErr stats.Accumulator
			covered := 0
			for trial := 0; trial < opts.Trials; trial++ {
				seed := opts.BaseSeed + int64(trial)
				clk := vclock.NewSim(seed, 0)
				st := storage.NewStore(clk, opts.Profile, storage.DefaultBlockSize)
				rng := rand.New(rand.NewSource(seed))
				expr, truth, err := c.setup(st, rng)
				if err != nil {
					return nil, fmt.Errorf("quality %s: %w", c.name, err)
				}
				env := exec.NewEnv(st)
				q, err := exec.NewQuery(expr, env, exec.StoreCatalog{Store: st}, exec.FullFulfillment)
				if err != nil {
					return nil, err
				}
				for _, name := range q.FeedNames() {
					f := q.Feeds[name]
					k := int(math.Round(frac * float64(f.Rel.NumBlocks())))
					if k < 1 {
						k = 1
					}
					smp := sampling.NewBlockSampler(f.Rel.NumBlocks(), rng)
					if err := f.LoadStage(smp.Draw(k)); err != nil {
						return nil, err
					}
				}
				if err := q.AdvanceStage(0); err != nil {
					return nil, err
				}
				est := q.Estimate()
				if truth > 0 {
					re := math.Abs(est.Value-float64(truth)) / float64(truth)
					relErr.Add(re * 100)
				}
				if est.Interval(0.95).Contains(float64(truth)) {
					covered++
				}
			}
			rows = append(rows, QualityRow{
				Op:          c.name,
				FracPct:     frac * 100,
				MeanRelErr:  relErr.Mean(),
				CoveragePct: 100 * float64(covered) / float64(opts.Trials),
			})
		}
	}
	return rows, nil
}

// RenderQuality formats the quality sweep as a text table.
func RenderQuality(rows []QualityRow) string {
	var b strings.Builder
	b.WriteString("Estimator quality (cluster sampling, single stage)\n")
	fmt.Fprintf(&b, "%-10s %8s %10s %10s\n", "operator", "frac%", "relerr%", "cover95%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.1f %10.2f %10.1f\n", r.Op, r.FracPct, r.MeanRelErr, r.CoveragePct)
	}
	return b.String()
}
