// Package bench is the experiment harness that regenerates the paper's
// evaluation (Section 5): the time-control performance tables for the
// selection (Fig. 5.1), intersection (Fig. 5.2) and join (Fig. 5.3)
// operations, plus ablations for the design choices DESIGN.md calls out
// (strategy choice, fulfillment plan, adaptive vs fixed cost formulas)
// and an estimator-quality sweep.
//
// Protocol, as in the paper: every table cell aggregates N independent
// trials (200 by default); each trial uses a fresh simulated machine
// (seeded clock jitter), freshly generated relations, and the engine in
// "ERAM mode" (Overrun) so the overspend of the final stage can be
// measured rather than truncated.
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"tcq/internal/core"
	"tcq/internal/cost"
	"tcq/internal/exec"
	"tcq/internal/ra"
	"tcq/internal/stats"
	"tcq/internal/storage"
	"tcq/internal/timectrl"
	"tcq/internal/trace"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

// Setup builds one trial's relations in st and returns the query, the
// first-stage selectivity assumptions, and the exact answer.
type Setup func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error)

// Variant is one row of an experiment table: a label, a strategy
// factory and optional engine overrides.
type Variant struct {
	Label    string
	Strategy func() timectrl.Strategy
	Plan     exec.Plan
	Model    func(profile storage.CostProfile, blockingFactor int) *cost.Model
	// Prestored switches the engine to exact prestored selectivities
	// (the §3.1 alternative to run-time estimation).
	Prestored bool
	// Sampling selects cluster (default) or simple random sampling.
	Sampling core.SamplingPlan
}

// Experiment describes one table to regenerate.
type Experiment struct {
	ID       string
	Title    string
	Quota    time.Duration
	Variants []Variant
	Setup    Setup
	// SingleTerm marks experiments whose query is one RA term (a pure
	// join or intersection): before sub-term parallelism these gained
	// nothing from Options.Parallelism, so the perf profiler reports a
	// parallel-speedup column for them.
	SingleTerm bool
	// PaperNote documents what the paper reports for this table (used
	// by the CLI's -compare flag and EXPERIMENTS.md).
	PaperNote string
}

// RunOptions controls a harness run.
type RunOptions struct {
	Trials   int     // trials per row (default 200, the paper's count)
	BaseSeed int64   // trial i uses BaseSeed + i
	Jitter   float64 // simulated clock jitter (default 0.03)
	// Parallel bounds the worker goroutines per row (default
	// GOMAXPROCS). Results are deterministic regardless: every trial is
	// seeded independently and reduced in trial order.
	Parallel int
	// EngineParallel bounds the per-query term-evaluation worker pool
	// (core.Options.Parallelism; ≤ 1 = serial, the default). Engine
	// results are byte-identical for any value — the determinism goldens
	// are re-checked under EngineParallel=4 in CI.
	EngineParallel int
	// LoadSigma is the lognormal sigma of the per-stage system-load
	// factor (default 0.12), modelling the timeshared prototype's
	// between-stage variability — the reason the paper's d_β sweep
	// shows a gradual risk decline rather than a cliff.
	LoadSigma float64
	Profile   storage.CostProfile
	// TraceSink, when non-nil, supplies a tracer for each trial (keyed
	// by experiment ID, variant label and trial index). Trials run
	// concurrently, so each call must return a distinct tracer; the
	// caller replays or merges them in its own deterministic order. If
	// the returned tracer implements Discard() and the trial errors
	// before EndQuery, the harness calls it so live-progress sinks can
	// retire the abandoned query.
	TraceSink func(exp, label string, trial int) trace.Tracer
	// TruthSink, when non-nil, receives each trial's ground-truth
	// aggregate right after Setup (same trial keying as TraceSink, same
	// concurrency caveat: the callback must be safe to invoke from
	// concurrent trial goroutines). The calibration harness pairs it
	// with TraceSink to audit every trial's CI against the exact count.
	TruthSink func(exp, label string, trial int, truth int64)
	// Metrics, when set, aggregates engine counters across every trial
	// (the registry is concurrency-safe); with it a live telemetry
	// server can expose harness throughput while experiments run.
	Metrics *trace.Registry
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Trials <= 0 {
		o.Trials = 200
	}
	if o.Jitter == 0 {
		o.Jitter = 0.03
	}
	if o.LoadSigma == 0 {
		o.LoadSigma = 0.12
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Profile == (storage.CostProfile{}) {
		o.Profile = storage.SunProfile()
	}
	return o
}

// Row aggregates one variant's trials in the paper's table format.
type Row struct {
	Label       string
	Trials      int
	Stages      float64 // mean stages completed within the quota
	RiskPct     float64 // % of trials that overspent
	Ovsp        float64 // mean overspend (s) among overspending trials
	Utilization float64 // mean utilization (%)
	Blocks      float64 // mean disk blocks evaluated within the quota
	RelErrPct   float64 // mean |estimate − truth| / truth (%), extra column
}

// Run executes the experiment and returns one row per variant.
func (e Experiment) Run(opts RunOptions) ([]Row, error) {
	opts = opts.withDefaults()
	rows := make([]Row, 0, len(e.Variants))
	for vi, v := range e.Variants {
		type trialOut struct {
			res   *core.Result
			truth int64
			err   error
		}
		outs := make([]trialOut, opts.Trials)
		sem := make(chan struct{}, opts.Parallel)
		var wg sync.WaitGroup
		for trial := 0; trial < opts.Trials; trial++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(trial int) {
				defer func() {
					<-sem
					wg.Done()
				}()
				seed := opts.BaseSeed + int64(vi*1_000_003+trial)
				clk := vclock.NewSim(seed, opts.Jitter)
				if opts.LoadSigma > 0 {
					clk.SetLoadSigma(opts.LoadSigma)
				}
				st := storage.NewStore(clk, opts.Profile, storage.DefaultBlockSize)
				rng := rand.New(rand.NewSource(seed))
				expr, initial, truth, err := e.Setup(st, rng)
				if err != nil {
					outs[trial] = trialOut{err: fmt.Errorf("bench %s/%s trial %d: %w", e.ID, v.Label, trial, err)}
					return
				}
				if opts.TruthSink != nil {
					opts.TruthSink(e.ID, v.Label, trial, truth)
				}
				engOpts := core.Options{
					Quota:                  e.Quota,
					Mode:                   core.Overrun,
					Plan:                   v.Plan,
					Sampling:               v.Sampling,
					Initial:                initial,
					Strategy:               v.Strategy(),
					Seed:                   seed,
					PrestoredSelectivities: v.Prestored,
					Parallelism:            opts.EngineParallel,
				}
				if v.Model != nil {
					bf := storage.DefaultBlockSize / workload.PaperTupleSize
					engOpts.Model = v.Model(opts.Profile, bf)
				}
				if opts.TraceSink != nil {
					engOpts.Tracer = opts.TraceSink(e.ID, v.Label, trial)
				}
				engOpts.Metrics = opts.Metrics
				res, err := core.NewEngine(st).Count(expr, engOpts)
				if err != nil {
					// A failed trial never reaches EndQuery, so give sinks
					// tracking live progress (telemetry handles) the chance
					// to drop it from their in-flight set.
					if d, ok := engOpts.Tracer.(interface{ Discard() }); ok {
						d.Discard()
					}
					outs[trial] = trialOut{err: fmt.Errorf("bench %s/%s trial %d: %w", e.ID, v.Label, trial, err)}
					return
				}
				outs[trial] = trialOut{res: res, truth: truth}
			}(trial)
		}
		wg.Wait()

		var stages, util, blocks, relErr stats.Accumulator
		var ovsp stats.Accumulator
		overspends := 0
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
			res := o.res
			stages.Add(float64(res.Stages))
			util.Add(res.Utilization * 100)
			blocks.Add(float64(res.Blocks))
			if res.Overspent {
				overspends++
				ovsp.Add(res.Overspend.Seconds())
			}
			if o.truth > 0 && res.Estimate.Value > 0 {
				re := (res.Estimate.Value - float64(o.truth)) / float64(o.truth)
				if re < 0 {
					re = -re
				}
				relErr.Add(re * 100)
			}
		}
		rows = append(rows, Row{
			Label:       v.Label,
			Trials:      opts.Trials,
			Stages:      stages.Mean(),
			RiskPct:     100 * float64(overspends) / float64(opts.Trials),
			Ovsp:        ovsp.Mean(),
			Utilization: util.Mean(),
			Blocks:      blocks.Mean(),
			RelErrPct:   relErr.Mean(),
		})
	}
	return rows, nil
}

// EvalWall runs one seeded trial of variant vi and returns the wall
// time of the engine evaluation alone — the simulated machine, the
// relations and the query are built outside the measured region. The
// perf profiler uses it to report the sub-term parallel speedup of
// single-term queries, where workload generation would otherwise
// drown the in-query effect.
func (e Experiment) EvalWall(vi, trial int, opts RunOptions, workers int) (time.Duration, error) {
	opts = opts.withDefaults()
	v := e.Variants[vi]
	seed := opts.BaseSeed + int64(vi*1_000_003+trial)
	clk := vclock.NewSim(seed, opts.Jitter)
	if opts.LoadSigma > 0 {
		clk.SetLoadSigma(opts.LoadSigma)
	}
	st := storage.NewStore(clk, opts.Profile, storage.DefaultBlockSize)
	rng := rand.New(rand.NewSource(seed))
	expr, initial, _, err := e.Setup(st, rng)
	if err != nil {
		return 0, fmt.Errorf("bench %s/%s trial %d: %w", e.ID, v.Label, trial, err)
	}
	engOpts := core.Options{
		Quota:                  e.Quota,
		Mode:                   core.Overrun,
		Plan:                   v.Plan,
		Sampling:               v.Sampling,
		Initial:                initial,
		Strategy:               v.Strategy(),
		Seed:                   seed,
		PrestoredSelectivities: v.Prestored,
		Parallelism:            workers,
	}
	if v.Model != nil {
		bf := storage.DefaultBlockSize / workload.PaperTupleSize
		engOpts.Model = v.Model(opts.Profile, bf)
	}
	start := time.Now()
	if _, err := core.NewEngine(st).Count(expr, engOpts); err != nil {
		return 0, fmt.Errorf("bench %s/%s trial %d: %w", e.ID, v.Label, trial, err)
	}
	return time.Since(start), nil
}

// Render formats rows as a paper-style text table.
func Render(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-22s %7s %7s %7s %7s %7s %7s %8s\n",
		"variant", "trials", "stages", "risk%", "ovsp(s)", "util%", "blocks", "relerr%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %7d %7.2f %7.1f %7.2f %7.1f %7.1f %8.1f\n",
			r.Label, r.Trials, r.Stages, r.RiskPct, r.Ovsp, r.Utilization, r.Blocks, r.RelErrPct)
	}
	return b.String()
}

// RenderMarkdown formats rows as a GitHub-flavoured markdown table
// (used to regenerate EXPERIMENTS.md sections).
func RenderMarkdown(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", title)
	b.WriteString("| variant | trials | stages | risk % | ovsp s | util % | blocks | relerr % |\n")
	b.WriteString("|---------|-------:|-------:|-------:|-------:|-------:|-------:|---------:|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %.2f | %.1f | %.2f | %.1f | %.1f | %.1f |\n",
			r.Label, r.Trials, r.Stages, r.RiskPct, r.Ovsp, r.Utilization, r.Blocks, r.RelErrPct)
	}
	return b.String()
}

// dBetaVariants builds the paper's d_β sweep rows for the
// One-at-a-Time-Interval strategy.
func dBetaVariants(dBetas []float64) []Variant {
	out := make([]Variant, 0, len(dBetas))
	for _, d := range dBetas {
		d := d
		out = append(out, Variant{
			Label:    fmt.Sprintf("dβ=%g", d),
			Strategy: func() timectrl.Strategy { return &timectrl.OneAtATime{DBeta: d} },
		})
	}
	return out
}

// PaperDBetas is the d_β sweep of Figures 5.1 and 5.2.
var PaperDBetas = []float64{0, 12, 24, 48, 72}

// Fig51Selection builds the Fig. 5.1 experiment: COUNT of a
// one-comparison selection over a 10,000-tuple relation, 10-second
// quota, with outputTuples ∈ {1000, 5000} matching the paper's two
// sub-tables.
func Fig51Selection(outputTuples int) Experiment {
	return Experiment{
		ID:    fmt.Sprintf("fig5.1-%d", outputTuples),
		Title: fmt.Sprintf("Fig 5.1 — selection, %d output tuples, quota 10s", outputTuples),
		Quota: 10 * time.Second,
		Setup: func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error) {
			if _, err := workload.SelectRelation(st, "r", workload.PaperTuples, outputTuples, rng); err != nil {
				return nil, timectrl.Initials{}, 0, err
			}
			e := &ra.Select{Input: &ra.Base{Name: "r"},
				Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(outputTuples)}}}
			// Fig. 3.3 / Section 5: maximum selectivity (1) at stage 1,
			// selection formula with one integer comparison.
			return e, timectrl.DefaultInitials(), int64(outputTuples), nil
		},
		Variants: dBetaVariants(PaperDBetas),
		PaperNote: "Paper (1,000 out): stages 1.56→4.12, risk 56→2%, ovsp 0.11→0.02s, util 63→98%, " +
			"blocks 54,61,81,84,83 across dβ=0,12,24,48,72. Shape: risk↓, stages↑, util↑, blocks peak then dip.",
	}
}

// Fig52Intersection builds the Fig. 5.2 experiment: COUNT(r1 ∩ r2) with
// 10,000 output tuples (identical relations), 10-second quota.
func Fig52Intersection() Experiment {
	return Experiment{
		ID:         "fig5.2",
		Title:      "Fig 5.2 — intersection, 10,000 output tuples, quota 10s",
		Quota:      10 * time.Second,
		SingleTerm: true,
		Setup: func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error) {
			if _, _, err := workload.IntersectPair(st, "r1", "r2", workload.PaperTuples, workload.PaperTuples, rng); err != nil {
				return nil, timectrl.Initials{}, 0, err
			}
			e := &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r1"}, &ra.Base{Name: "r2"}}}
			// Section 5.B: initial selectivity 1/max(|r1|,|r2|) — the
			// Initials zero value requests exactly that.
			return e, timectrl.DefaultInitials(), int64(workload.PaperTuples), nil
		},
		Variants: dBetaVariants(PaperDBetas),
		PaperNote: "Paper: risk 44→0%, ovsp 0.18→0.00s across dβ=0..72; blocks rise 41.8→54.1 then dip to 51.9 " +
			"between dβ=48 and 72 (overhead + merge complexity dominate). At dβ=72 the leftover time could not " +
			"fund another full-fulfillment stage.",
	}
}

// Fig53Join builds the Fig. 5.3 experiment: COUNT(r1 ⋈ r2) with 70,000
// output tuples (true selectivity 7e-4), one join attribute, 2.5-second
// quota, initial join selectivity 0.1 (the paper's choice — assuming 1
// made the first stage too small to measure).
func Fig53Join() Experiment {
	return Experiment{
		ID:         "fig5.3",
		Title:      "Fig 5.3 — join, 70,000 output tuples, quota 2.5s",
		Quota:      2500 * time.Millisecond,
		SingleTerm: true,
		Setup: func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error) {
			if _, _, err := workload.JoinPair(st, "r1", "r2", workload.PaperTuples, 70000, rng); err != nil {
				return nil, timectrl.Initials{}, 0, err
			}
			e := &ra.Join{Left: &ra.Base{Name: "r1"}, Right: &ra.Base{Name: "r2"},
				On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
			init := timectrl.DefaultInitials()
			init.Join = 0.1
			return e, init, 70000, nil
		},
		Variants: dBetaVariants(PaperDBetas),
		PaperNote: "Paper: dβ=0: stages 1.59, risk 41%, ovsp 0.19s, util 71%; dβ=12: stages 1.94, risk 5.3%, " +
			"ovsp 0.18s, util 91%. For dβ=24,48,72 the time left was not enough for a further full-fulfillment " +
			"stage, so evaluation terminated (risk 0, ovsp 0).",
	}
}

// PerfJoinScale builds the sub-term parallelism scaling benchmark: the
// Fig. 5.3 pure join scaled to 50,000-tuple relations, a 200-second
// quota and a calibrated initial selectivity, so every stage sorts and
// bucket-merges thousands of tuples per side instead of a few hundred.
// At that size the two per-side sorts and the two cumulative bucket
// joins clear the runPar fan-out floor and a single-term query can show
// a real multi-core speedup — the effect the paper-scale figures are
// too small to exhibit. (On a single-CPU host the ratio degenerates to
// ~1.0x: the size gate keeps the fan-out from costing wall time, but
// there is no second core to win any back; the report records the host
// CPU count next to the ratio.) Perf-only: not a paper table, so not
// part of AllExperiments.
func PerfJoinScale() Experiment {
	return Experiment{
		ID:         "perf-join-scale",
		Title:      "Perf — pure join, 50,000-tuple relations, quota 200s (sub-term parallelism scale)",
		Quota:      200 * time.Second,
		SingleTerm: true,
		Setup: func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error) {
			if _, _, err := workload.JoinPair(st, "r1", "r2", 50000, 350000, rng); err != nil {
				return nil, timectrl.Initials{}, 0, err
			}
			e := &ra.Join{Left: &ra.Base{Name: "r1"}, Right: &ra.Base{Name: "r2"},
				On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
			init := timectrl.DefaultInitials()
			init.Join = 0.001
			return e, init, 350000, nil
		},
		Variants: dBetaVariants([]float64{12}),
		PaperNote: "No paper table; scaling probe for the sub-term parallel evaluator " +
			"(single-term queries gained nothing from Options.Parallelism before it).",
	}
}

// AblationStrategies compares the three time-control strategies of §3.3
// on the selection workload (no table in the paper; §3.3 argues the
// tradeoffs qualitatively).
func AblationStrategies() Experiment {
	return Experiment{
		ID:    "ablation-strategy",
		Title: "Ablation — time-control strategies (selection, 1,000 out, quota 10s)",
		Quota: 10 * time.Second,
		Setup: func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error) {
			if _, err := workload.SelectRelation(st, "r", workload.PaperTuples, 1000, rng); err != nil {
				return nil, timectrl.Initials{}, 0, err
			}
			e := &ra.Select{Input: &ra.Base{Name: "r"},
				Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(1000)}}}
			return e, timectrl.DefaultInitials(), 1000, nil
		},
		Variants: []Variant{
			{Label: "one-at-a-time dβ=12", Strategy: func() timectrl.Strategy { return &timectrl.OneAtATime{DBeta: 12} }},
			{Label: "one-at-a-time dβ=48", Strategy: func() timectrl.Strategy { return &timectrl.OneAtATime{DBeta: 48} }},
			{Label: "single-interval dα=1", Strategy: func() timectrl.Strategy { return &timectrl.SingleInterval{DAlpha: 1} }},
			{Label: "single-interval dα=3", Strategy: func() timectrl.Strategy { return &timectrl.SingleInterval{DAlpha: 3} }},
			{Label: "heuristic γ=0.5", Strategy: func() timectrl.Strategy { return &timectrl.Heuristic{Gamma: 0.5, CommitBelow: time.Second} }},
		},
		PaperNote: "No paper table; §3.3 predicts One-at-a-Time is simpler/cheaper while Single-Interval " +
			"controls whole-query risk more directly.",
	}
}

// AblationFulfillment compares the full and partial fulfillment plans
// on the intersection workload (§4 discusses the tradeoff; the partial
// plan is in the tech report).
func AblationFulfillment() Experiment {
	// A fixed-share heuristic forces several stages per run; one-stage
	// runs make the plans identical by construction.
	base := func(plan exec.Plan, label string) Variant {
		return Variant{
			Label:    label,
			Plan:     plan,
			Strategy: func() timectrl.Strategy { return &timectrl.Heuristic{Gamma: 0.3, CommitBelow: time.Second} },
		}
	}
	return Experiment{
		ID:    "ablation-fulfillment",
		Title: "Ablation — full vs partial fulfillment (intersection, quota 10s)",
		Quota: 10 * time.Second,
		Setup: func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error) {
			if _, _, err := workload.IntersectPair(st, "r1", "r2", workload.PaperTuples, workload.PaperTuples, rng); err != nil {
				return nil, timectrl.Initials{}, 0, err
			}
			e := &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r1"}, &ra.Base{Name: "r2"}}}
			return e, timectrl.DefaultInitials(), int64(workload.PaperTuples), nil
		},
		Variants: []Variant{
			base(exec.FullFulfillment, "full fulfillment"),
			base(exec.PartialFulfillment, "partial fulfillment"),
		},
		PaperNote: "Paper §4: full fulfillment makes the most use of sampled data (time-efficient) at the cost " +
			"of keeping all intermediate results; partial is cheaper per stage but covers fewer points.",
	}
}

// AblationAdaptiveCost compares adaptive and fixed-form cost formulas
// (§4's motivating claim) with designer defaults 3x off the true
// machine.
func AblationAdaptiveCost() Experiment {
	// Defaults 2x too EXPENSIVE (the safe miscalibration direction a
	// designer would pick): a fixed-form model keeps halving its stage
	// sizes and refuses affordable final stages, paying the per-stage
	// overhead many times over; the adaptive model calibrates after the
	// first stage and spends the quota on actual sampling.
	mkModel := func(adaptive bool) func(p storage.CostProfile, bf int) *cost.Model {
		return func(p storage.CostProfile, bf int) *cost.Model {
			return cost.NewModel(cost.TrueCoefficients(p, bf).Scale(2), adaptive)
		}
	}
	strat := func() timectrl.Strategy { return &timectrl.OneAtATime{DBeta: 12} }
	return Experiment{
		ID:    "ablation-adaptive",
		Title: "Ablation — adaptive vs fixed-form cost formulas (selection, defaults 2x too expensive)",
		Quota: 10 * time.Second,
		Setup: func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error) {
			if _, err := workload.SelectRelation(st, "r", workload.PaperTuples, 1000, rng); err != nil {
				return nil, timectrl.Initials{}, 0, err
			}
			e := &ra.Select{Input: &ra.Base{Name: "r"},
				Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(1000)}}}
			return e, timectrl.DefaultInitials(), 1000, nil
		},
		Variants: []Variant{
			{Label: "adaptive", Strategy: strat, Model: mkModel(true)},
			{Label: "fixed-form", Strategy: strat, Model: mkModel(false)},
		},
		PaperNote: "Paper §4: fixed-form coefficients 'are not flexible enough'; adaptive formulas fit the " +
			"query at run time. With conservative (2x) defaults the fixed model persistently halves its stage " +
			"sizes, paying the per-stage overhead many more times for the same quota (more stages, no more blocks).",
	}
}

// AblationSelectivity compares the paper's run-time selectivity
// estimation with the §3.1 alternative it discusses and rejects for
// general use: prestored (exact, maintained) per-operator
// selectivities.
func AblationSelectivity() Experiment {
	strat := func() timectrl.Strategy { return &timectrl.OneAtATime{DBeta: 12} }
	e := Experiment{
		ID:    "ablation-selectivity",
		Title: "Ablation — run-time vs prestored selectivities (join, quota 2.5s)",
		Quota: 2500 * time.Millisecond,
		Setup: func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error) {
			if _, _, err := workload.JoinPair(st, "r1", "r2", workload.PaperTuples, 70000, rng); err != nil {
				return nil, timectrl.Initials{}, 0, err
			}
			expr := &ra.Join{Left: &ra.Base{Name: "r1"}, Right: &ra.Base{Name: "r2"},
				On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
			init := timectrl.DefaultInitials()
			init.Join = 0.1
			return expr, init, 70000, nil
		},
		Variants: []Variant{
			{Label: "run-time estimation", Strategy: strat},
			{Label: "prestored (oracle)", Strategy: strat, Prestored: true},
		},
		PaperNote: "Paper §3.1: prestored selectivities are 'simple and may have a very good performance' but " +
			"need maintenance and a stored entry per (operator, operand, formula) combination; run-time " +
			"estimation 'has the greatest flexibility'. Expect the oracle to size its first stage correctly " +
			"(no conservative sel=0.1 guess) and waste less of the quota.",
	}
	return e
}

// AblationSampling compares the paper's cluster sampling plan with
// tuple-level simple random sampling (the Fig. 3.2 decision): under SRS
// every sampled tuple costs a full block read.
func AblationSampling() Experiment {
	strat := func() timectrl.Strategy { return &timectrl.OneAtATime{DBeta: 12} }
	return Experiment{
		ID:    "ablation-sampling",
		Title: "Ablation — cluster vs simple random sampling (selection, quota 10s)",
		Quota: 10 * time.Second,
		Setup: func(st *storage.Store, rng *rand.Rand) (ra.Expr, timectrl.Initials, int64, error) {
			if _, err := workload.SelectRelation(st, "r", workload.PaperTuples, 1000, rng); err != nil {
				return nil, timectrl.Initials{}, 0, err
			}
			e := &ra.Select{Input: &ra.Base{Name: "r"},
				Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(1000)}}}
			return e, timectrl.DefaultInitials(), 1000, nil
		},
		Variants: []Variant{
			{Label: "cluster (blocks)", Strategy: strat, Sampling: core.ClusterSampling},
			{Label: "simple random (tuples)", Strategy: strat, Sampling: core.SimpleRandomSampling},
		},
		PaperNote: "Paper §2/Fig 3.2: the cluster sampling plan 'has the advantages of efficiency in sampling " +
			"and in evaluation' — under SRS each random tuple costs a whole block read, so for the same quota " +
			"far fewer tuples are evaluated and the estimate is worse. (Note: the 'blocks' column counts sample " +
			"units — 5-tuple blocks for cluster, single tuples for SRS.)",
	}
}

// AllExperiments returns every table the harness can regenerate, in
// DESIGN.md order.
func AllExperiments() []Experiment {
	return []Experiment{
		Fig51Selection(1000),
		Fig51Selection(5000),
		Fig52Intersection(),
		Fig53Join(),
		AblationStrategies(),
		AblationFulfillment(),
		AblationAdaptiveCost(),
		AblationSelectivity(),
		AblationSampling(),
	}
}

// PerfOnlyExperiments returns experiments that exist for host-side
// profiling rather than paper-table regeneration; they are addressable
// by id (-exp) but excluded from 'all'.
func PerfOnlyExperiments() []Experiment {
	return []Experiment{PerfJoinScale()}
}

// ByID finds an experiment (including perf-only ones) by identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range append(AllExperiments(), PerfOnlyExperiments()...) {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
