package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// PerfRow is the host-side cost of regenerating one experiment row
// (one variant of one table): wall-clock nanoseconds, heap bytes and
// allocations per trial. The simulated results themselves are
// deterministic and covered by the golden tables; these numbers track
// how much real CPU the executor burns to produce them, which is what
// the incremental-merge work optimises.
type PerfRow struct {
	Exp            string `json:"exp"`
	Label          string `json:"label"`
	Trials         int    `json:"trials"`
	NsPerTrial     int64  `json:"ns_per_trial"`
	BytesPerTrial  int64  `json:"bytes_per_trial"`
	AllocsPerTrial int64  `json:"allocs_per_trial"`
}

// PerfReport is the serialized form of a perf run (BENCH_exec.json).
type PerfReport struct {
	Note string    `json:"note"`
	Rows []PerfRow `json:"rows"`
}

// perfRepeats is how many times each row is measured; the fastest
// repeat is reported, which suppresses scheduler and GC noise the same
// way benchstat's min does.
const perfRepeats = 3

// PerfProfile times every variant of the given experiments. Trials run
// on a single worker so wall time is not confounded by scheduling, each
// variant is measured in isolation (its own Experiment.Run call), and
// each measurement is the best of perfRepeats repeats.
func PerfProfile(exps []Experiment, opts RunOptions) (PerfReport, error) {
	opts = opts.withDefaults()
	opts.Parallel = 1
	rep := PerfReport{
		Note: "host-side cost per simulated trial, best of repeated runs; compare with ComparePerf (machine-dependent, same-machine diffs only)",
	}
	for _, e := range exps {
		for _, v := range e.Variants {
			one := e
			one.Variants = []Variant{v}
			row := PerfRow{Exp: e.ID, Label: v.Label, Trials: opts.Trials}
			n := int64(opts.Trials)
			for attempt := 0; attempt < perfRepeats; attempt++ {
				var msBefore, msAfter runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&msBefore)
				start := time.Now()
				if _, err := one.Run(opts); err != nil {
					return PerfReport{}, err
				}
				wall := time.Since(start)
				runtime.ReadMemStats(&msAfter)
				ns := wall.Nanoseconds() / n
				if attempt == 0 || ns < row.NsPerTrial {
					row.NsPerTrial = ns
					row.BytesPerTrial = int64(msAfter.TotalAlloc-msBefore.TotalAlloc) / n
					row.AllocsPerTrial = int64(msAfter.Mallocs-msBefore.Mallocs) / n
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// WritePerf writes the report as indented JSON.
func WritePerf(path string, rep PerfReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadPerf loads a report written by WritePerf.
func ReadPerf(path string) (PerfReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return PerfReport{}, err
	}
	var rep PerfReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return PerfReport{}, fmt.Errorf("perf baseline %s: %w", path, err)
	}
	return rep, nil
}

// ComparePerf flags rows of cur whose ns-per-trial regressed more than
// tolPct percent against the matching row of base (matched by
// experiment id and variant label; rows missing from base are skipped).
// It returns one human-readable line per regression.
func ComparePerf(base, cur PerfReport, tolPct float64) []string {
	baseline := map[string]PerfRow{}
	for _, r := range base.Rows {
		baseline[r.Exp+"/"+r.Label] = r
	}
	var regressions []string
	for _, r := range cur.Rows {
		b, ok := baseline[r.Exp+"/"+r.Label]
		if !ok || b.NsPerTrial <= 0 {
			continue
		}
		deltaPct := 100 * (float64(r.NsPerTrial) - float64(b.NsPerTrial)) / float64(b.NsPerTrial)
		if deltaPct > tolPct {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: %.2fms -> %.2fms per trial (+%.1f%%, tolerance %.0f%%)",
				r.Exp, r.Label,
				float64(b.NsPerTrial)/1e6, float64(r.NsPerTrial)/1e6,
				deltaPct, tolPct))
		}
	}
	return regressions
}

// RenderPerf formats a report as a text table.
func RenderPerf(rep PerfReport) string {
	out := fmt.Sprintf("%-22s %-16s %8s %12s %12s %12s\n",
		"experiment", "variant", "trials", "ms/trial", "MB/trial", "allocs/trial")
	for _, r := range rep.Rows {
		out += fmt.Sprintf("%-22s %-16s %8d %12.2f %12.2f %12d\n",
			r.Exp, r.Label, r.Trials,
			float64(r.NsPerTrial)/1e6, float64(r.BytesPerTrial)/(1<<20), r.AllocsPerTrial)
	}
	return out
}
