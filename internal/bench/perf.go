package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"
)

// PerfRow is the host-side cost of regenerating one experiment row
// (one variant of one table): wall-clock nanoseconds, heap bytes and
// allocations per trial. The simulated results themselves are
// deterministic and covered by the golden tables; these numbers track
// how much real CPU the executor burns to produce them, which is what
// the incremental-merge work optimises.
type PerfRow struct {
	Exp            string `json:"exp"`
	Label          string `json:"label"`
	Trials         int    `json:"trials"`
	NsPerTrial     int64  `json:"ns_per_trial"`
	BytesPerTrial  int64  `json:"bytes_per_trial"`
	AllocsPerTrial int64  `json:"allocs_per_trial"`
	// ParSpeedup is serial-engine wall time over 4-worker-engine wall
	// time for the same row, measured only on single-term experiments
	// (Experiment.SingleTerm) — the queries that were pinned at exactly
	// 1.0x before sub-term parallelism, because one term gave the
	// term-level worker pool nothing to fan out.
	ParSpeedup float64 `json:"par_speedup,omitempty"`
}

// PerfReport is the serialized form of a perf run (BENCH_exec.json).
// Cpus records the measuring host's CPU count: par_speedup is a wall
// ratio, so on a single-CPU host it can never exceed ~1.0 no matter
// how much of the evaluation fans out.
type PerfReport struct {
	Note string    `json:"note"`
	Cpus int       `json:"cpus,omitempty"`
	Rows []PerfRow `json:"rows"`
}

// perfRepeats is how many times each row is measured; the fastest
// repeat is reported, which suppresses scheduler and GC noise the same
// way benchstat's min does.
const perfRepeats = 3

// PerfProfile times every variant of the given experiments. Trials run
// on a single worker with a serial engine so wall time is not
// confounded by scheduling, each variant is measured in isolation (its
// own Experiment.Run call), and each measurement is the best of
// perfRepeats repeats. Single-term experiments are timed a second time
// with a 4-worker engine to report the sub-term parallel speedup.
func PerfProfile(exps []Experiment, opts RunOptions) (PerfReport, error) {
	opts = opts.withDefaults()
	opts.Parallel = 1
	opts.EngineParallel = 1
	rep := PerfReport{
		Note: "host-side cost per simulated trial, best of repeated runs; compare with ComparePerf (machine-dependent, same-machine diffs only)",
		Cpus: runtime.NumCPU(),
	}
	for _, e := range exps {
		for vi, v := range e.Variants {
			one := e
			one.Variants = []Variant{v}
			row := PerfRow{Exp: e.ID, Label: v.Label, Trials: opts.Trials}
			n := int64(opts.Trials)
			for attempt := 0; attempt < perfRepeats; attempt++ {
				var msBefore, msAfter runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&msBefore)
				start := time.Now()
				if _, err := one.Run(opts); err != nil {
					return PerfReport{}, err
				}
				wall := time.Since(start)
				runtime.ReadMemStats(&msAfter)
				ns := wall.Nanoseconds() / n
				if attempt == 0 || ns < row.NsPerTrial {
					row.NsPerTrial = ns
					row.BytesPerTrial = int64(msAfter.TotalAlloc-msBefore.TotalAlloc) / n
					row.AllocsPerTrial = int64(msAfter.Mallocs-msBefore.Mallocs) / n
				}
			}
			if e.SingleTerm {
				sp, err := parSpeedup(e, vi, opts)
				if err != nil {
					return PerfReport{}, err
				}
				row.ParSpeedup = sp
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// parSpeedup measures the sub-term parallel speedup of one single-term
// row: evaluation-only wall time (Experiment.EvalWall — workload
// generation excluded) summed over the row's trials, serial engine vs
// 4-worker engine, each the best of perfRepeats sweeps. Both engines
// produce byte-identical results — the lane replay guarantees it — so
// the ratio is purely host-side.
func parSpeedup(e Experiment, vi int, opts RunOptions) (float64, error) {
	wall := func(workers int) (time.Duration, error) {
		var best time.Duration
		for attempt := 0; attempt < perfRepeats; attempt++ {
			var total time.Duration
			for trial := 0; trial < opts.Trials; trial++ {
				d, err := e.EvalWall(vi, trial, opts, workers)
				if err != nil {
					return 0, err
				}
				total += d
			}
			if attempt == 0 || total < best {
				best = total
			}
		}
		return best, nil
	}
	serial, err := wall(1)
	if err != nil {
		return 0, err
	}
	par, err := wall(4)
	if err != nil {
		return 0, err
	}
	if par <= 0 {
		return 0, nil
	}
	return math.Round(100*float64(serial)/float64(par)) / 100, nil
}

// WritePerf writes the report as indented JSON.
func WritePerf(path string, rep PerfReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadPerf loads a report written by WritePerf.
func ReadPerf(path string) (PerfReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return PerfReport{}, err
	}
	var rep PerfReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return PerfReport{}, fmt.Errorf("perf baseline %s: %w", path, err)
	}
	return rep, nil
}

// ComparePerf flags rows of cur whose ns-per-trial regressed more than
// tolPct percent against the matching row of base (matched by
// experiment id and variant label; rows missing from base are skipped).
// It returns one human-readable line per regression.
func ComparePerf(base, cur PerfReport, tolPct float64) []string {
	baseline := map[string]PerfRow{}
	for _, r := range base.Rows {
		baseline[r.Exp+"/"+r.Label] = r
	}
	var regressions []string
	for _, r := range cur.Rows {
		b, ok := baseline[r.Exp+"/"+r.Label]
		if !ok || b.NsPerTrial <= 0 {
			continue
		}
		deltaPct := 100 * (float64(r.NsPerTrial) - float64(b.NsPerTrial)) / float64(b.NsPerTrial)
		if deltaPct > tolPct {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: %.2fms -> %.2fms per trial (+%.1f%%, tolerance %.0f%%)",
				r.Exp, r.Label,
				float64(b.NsPerTrial)/1e6, float64(r.NsPerTrial)/1e6,
				deltaPct, tolPct))
		}
	}
	return regressions
}

// RenderPerf formats a report as a text table. The par-4x column is
// the single-term sub-term-parallel speedup ("-" for multi-term rows,
// whose parallelism is already covered by term-level fan-out).
func RenderPerf(rep PerfReport) string {
	out := fmt.Sprintf("%-22s %-16s %8s %12s %12s %12s %8s\n",
		"experiment", "variant", "trials", "ms/trial", "MB/trial", "allocs/trial", "par-4x")
	for _, r := range rep.Rows {
		speedup := "-"
		if r.ParSpeedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.ParSpeedup)
		}
		out += fmt.Sprintf("%-22s %-16s %8d %12.2f %12.2f %12d %8s\n",
			r.Exp, r.Label, r.Trials,
			float64(r.NsPerTrial)/1e6, float64(r.BytesPerTrial)/(1<<20), r.AllocsPerTrial, speedup)
	}
	return out
}
