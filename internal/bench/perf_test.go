package bench

import (
	"path/filepath"
	"testing"
)

func TestComparePerf(t *testing.T) {
	base := PerfReport{Rows: []PerfRow{
		{Exp: "fig5.2", Label: "dβ=0", NsPerTrial: 1000},
		{Exp: "fig5.2", Label: "dβ=12", NsPerTrial: 1000},
		{Exp: "fig5.3", Label: "x", NsPerTrial: 500},
	}}
	cur := PerfReport{Rows: []PerfRow{
		{Exp: "fig5.2", Label: "dβ=0", NsPerTrial: 1099},  // +9.9%: within tolerance
		{Exp: "fig5.2", Label: "dβ=12", NsPerTrial: 1200}, // +20%: regression
		{Exp: "fig5.3", Label: "x", NsPerTrial: 400},      // improvement
		{Exp: "fig5.1", Label: "new", NsPerTrial: 9999},   // no baseline: skipped
	}}
	regs := ComparePerf(base, cur, 10)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions (%v), want 1", len(regs), regs)
	}
}

func TestPerfReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perf.json")
	rep := PerfReport{Note: "n", Rows: []PerfRow{
		{Exp: "fig5.1", Label: "v", Trials: 3, NsPerTrial: 7, BytesPerTrial: 8, AllocsPerTrial: 9},
	}}
	if err := WritePerf(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPerf(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0] != rep.Rows[0] || got.Note != rep.Note {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}
