package bench

import (
	"strings"
	"testing"
	"time"
)

// fastOpts keeps unit tests quick; the real tables use 200 trials via
// cmd/tcqbench or the root bench targets.
func fastOpts() RunOptions {
	return RunOptions{Trials: 12, BaseSeed: 1}
}

func TestAllExperimentsDefined(t *testing.T) {
	exps := AllExperiments()
	if len(exps) != 9 {
		t.Fatalf("expected 9 experiments, got %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Quota <= 0 || e.Setup == nil || len(e.Variants) == 0 {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if e.PaperNote == "" {
			t.Errorf("experiment %q missing its paper reference note", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig5.3"); !ok {
		t.Error("fig5.3 should exist")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestFig51ShapeSmallScale(t *testing.T) {
	// Scaled-down run of Fig 5.1 (selection): check the paper's shape —
	// risk falls and stages grow from dβ=0 to dβ=48.
	e := Fig51Selection(1000)
	e.Variants = dBetaVariants([]float64{0, 48})
	rows, err := e.Run(RunOptions{Trials: 16, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	r0, r48 := rows[0], rows[1]
	if !(r48.RiskPct < r0.RiskPct) {
		t.Errorf("risk did not fall: %.1f -> %.1f", r0.RiskPct, r48.RiskPct)
	}
	if !(r48.Stages > r0.Stages) {
		t.Errorf("stages did not grow: %.2f -> %.2f", r0.Stages, r48.Stages)
	}
	for _, r := range rows {
		if r.Utilization <= 0 || r.Utilization > 100 {
			t.Errorf("%s: utilization %.1f out of range", r.Label, r.Utilization)
		}
		if r.Blocks <= 0 {
			t.Errorf("%s: no blocks sampled", r.Label)
		}
	}
}

func TestFig53JoinRuns(t *testing.T) {
	e := Fig53Join()
	e.Variants = dBetaVariants([]float64{0})
	rows, err := e.Run(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Stages < 1 {
		t.Errorf("join rows = %+v", rows[0])
	}
}

func TestAblationFulfillmentRuns(t *testing.T) {
	rows, err := AblationFulfillment().Run(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestAblationAdaptiveBeatsFixed(t *testing.T) {
	rows, err := AblationAdaptiveCost().Run(RunOptions{Trials: 30, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, fixed := rows[0], rows[1]
	// With conservative 2x defaults the fixed model persistently halves
	// its stage sizes, paying the per-stage overhead many more times for
	// the same quota — the paper's "not flexible enough" complaint.
	if !(fixed.Stages > adaptive.Stages*1.15) {
		t.Errorf("fixed-form stages %.2f not clearly above adaptive %.2f", fixed.Stages, adaptive.Stages)
	}
}

func TestRender(t *testing.T) {
	out := Render("title", []Row{{Label: "x", Trials: 5, Stages: 1.5}})
	if !strings.Contains(out, "title") || !strings.Contains(out, "x") {
		t.Errorf("render output: %s", out)
	}
}

func TestEstimatorQualitySweep(t *testing.T) {
	rows, err := EstimatorQuality(RunOptions{Trials: 10, BaseSeed: 2}, []float64{0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 operators × 2 fractions
		t.Fatalf("rows = %d", len(rows))
	}
	// Error should shrink with the fraction for each operator.
	byOp := map[string][]QualityRow{}
	for _, r := range rows {
		byOp[r.Op] = append(byOp[r.Op], r)
	}
	for op, rs := range byOp {
		if len(rs) != 2 {
			t.Fatalf("%s: %d rows", op, len(rs))
		}
		if !(rs[1].MeanRelErr < rs[0].MeanRelErr+5) {
			t.Errorf("%s: error grew with the sample: %.1f -> %.1f", op, rs[0].MeanRelErr, rs[1].MeanRelErr)
		}
	}
	out := RenderQuality(rows)
	if !strings.Contains(out, "select") {
		t.Error("quality render missing operators")
	}
}

func TestRunOptionsDefaults(t *testing.T) {
	o := RunOptions{}.withDefaults()
	if o.Trials != 200 || o.Jitter != 0.03 {
		t.Errorf("defaults = %+v", o)
	}
	if o.Profile.BlockRead <= 0 {
		t.Error("default profile missing")
	}
}

func TestExperimentQuotasMatchPaper(t *testing.T) {
	if Fig51Selection(1000).Quota != 10*time.Second {
		t.Error("Fig 5.1 quota should be 10s")
	}
	if Fig52Intersection().Quota != 10*time.Second {
		t.Error("Fig 5.2 quota should be 10s")
	}
	if Fig53Join().Quota != 2500*time.Millisecond {
		t.Error("Fig 5.3 quota should be 2.5s")
	}
}

func TestAblationSelectivityOracleHelps(t *testing.T) {
	rows, err := AblationSelectivity().Run(RunOptions{Trials: 16, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	runtimeRow, oracleRow := rows[0], rows[1]
	// With exact selectivities the planner sizes its first stage
	// correctly instead of starting from a conservative guess, so the
	// oracle run should sample at least as many blocks on average.
	if oracleRow.Blocks < runtimeRow.Blocks*0.9 {
		t.Errorf("oracle blocks %.1f well below run-time %.1f", oracleRow.Blocks, runtimeRow.Blocks)
	}
	if oracleRow.Stages <= 0 {
		t.Error("oracle variant ran no stages")
	}
}

func TestRenderMarkdown(t *testing.T) {
	out := RenderMarkdown("Some table", []Row{{Label: "dβ=12", Trials: 200, Stages: 2.1, RiskPct: 40}})
	for _, want := range []string{"## Some table", "| variant |", "| dβ=12 | 200 | 2.10 | 40.0 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestAblationSamplingClusterWins(t *testing.T) {
	rows, err := AblationSampling().Run(RunOptions{Trials: 10, BaseSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cluster, srs := rows[0], rows[1]
	// Cluster evaluates ~5 tuples per sample unit; SRS evaluates 1 per
	// unit at the same block-read price. Tuples evaluated:
	clusterTuples := cluster.Blocks * 5
	srsTuples := srs.Blocks
	if !(clusterTuples > 1.8*srsTuples) {
		t.Errorf("cluster tuples %.0f vs srs %.0f — expected clear advantage", clusterTuples, srsTuples)
	}
	if !(srs.RelErrPct > cluster.RelErrPct) {
		t.Errorf("SRS error %.1f%% should exceed cluster %.1f%% (smaller samples)", srs.RelErrPct, cluster.RelErrPct)
	}
}

func TestSkewedJoinBreaksVarianceApproximation(t *testing.T) {
	// Under a zipfian join attribute the SRS variance approximation
	// (§3.3, Fig. 3.5) grossly understates the true cluster variance,
	// so the 95% CI's empirical coverage collapses — the paper's "some
	// inaccuracy in the risk control is expected" made measurable. The
	// uniform join's coverage stays near nominal.
	rows, err := EstimatorQuality(RunOptions{Trials: 20, BaseSeed: 3}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	var uniformCover, skewedCover float64
	for _, r := range rows {
		switch r.Op {
		case "join":
			uniformCover = r.CoveragePct
		case "join-skewed":
			skewedCover = r.CoveragePct
		}
	}
	if uniformCover < 80 {
		t.Errorf("uniform join coverage %.0f%% below nominal range", uniformCover)
	}
	if skewedCover > uniformCover-30 {
		t.Errorf("skewed coverage %.0f%% should collapse well below uniform %.0f%%",
			skewedCover, uniformCover)
	}
}
