package bench

import "testing"

func benchEval(b *testing.B, workers int) {
	e := Fig53Join()
	opts := RunOptions{Trials: 1, BaseSeed: 1}.withDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EvalWall(0, i%40, opts, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalFig53Serial(b *testing.B) { benchEval(b, 1) }
func BenchmarkEvalFig53Par4(b *testing.B)   { benchEval(b, 4) }
