package timectrl

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tcq/internal/cost"
	"tcq/internal/estimator"
	"tcq/internal/exec"
	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// planFixture builds a select query over a 10-block relation, runs one
// stage, and returns the plan input pieces.
func planFixture(t *testing.T, runStage1 bool) PlanInput {
	t.Helper()
	clk := vclock.NewSim(1, 0)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	sch := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	r, _ := st.CreateRelation("r", sch)
	for i := int64(0); i < 640; i++ {
		r.Append(tuple.Tuple{i, i % 10})
	}
	e := &ra.Select{Input: &ra.Base{Name: "r"},
		Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(3)}}}
	env := exec.NewEnv(st)
	q, err := exec.NewQuery(e, env, exec.StoreCatalog{Store: st}, exec.FullFulfillment)
	if err != nil {
		t.Fatal(err)
	}
	model := cost.NewModel(cost.DefaultCoefficients(st.Costs(), 64), true)
	covered := 0.0
	if runStage1 {
		for _, f := range q.Feeds {
			if err := f.LoadStage([]int{0, 1, 2}); err != nil {
				t.Fatal(err)
			}
		}
		if err := q.AdvanceStage(0); err != nil {
			t.Fatal(err)
		}
		model.Observe(env.TakeTimings())
		covered = 0.3
	}
	var roots []*exec.NodeInfo
	for _, te := range q.Terms {
		roots = append(roots, exec.Snapshot(te.Root))
	}
	return PlanInput{
		Roots:       roots,
		Model:       model,
		Remaining:   10 * time.Second,
		Stage:       1,
		CoveredFrac: covered,
		MaxFraction: 1 - covered,
		Initial:     DefaultInitials(),
	}
}

func infoOf(op exec.OpKind, points, out float64) *exec.NodeInfo {
	return &exec.NodeInfo{Op: op, CumPoints: points, CumOut: int64(out)}
}

func TestSelectivityFirstStageDefaults(t *testing.T) {
	init := DefaultInitials()
	if s := Selectivity(infoOf(exec.OpSelect, 0, 0), init); s != 1 {
		t.Errorf("select initial = %g, want 1", s)
	}
	if s := Selectivity(infoOf(exec.OpJoin, 0, 0), init); s != 1 {
		t.Errorf("join initial = %g, want 1", s)
	}
	// Join experiment override (Fig. 5.3 assumes 0.1).
	init.Join = 0.1
	if s := Selectivity(infoOf(exec.OpJoin, 0, 0), init); s != 0.1 {
		t.Errorf("join override = %g, want 0.1", s)
	}
}

func TestSelectivityIntersectInitialUsesMaxOperand(t *testing.T) {
	// intersect of bases with 100 and 400 tuples: initial = 1/400.
	n := &exec.NodeInfo{
		Op: exec.OpIntersect,
		Children: []*exec.NodeInfo{
			{Op: exec.OpBase, BaseTuples: 100},
			{Op: exec.OpBase, BaseTuples: 400},
		},
	}
	if s := Selectivity(n, DefaultInitials()); math.Abs(s-1.0/400) > 1e-12 {
		t.Errorf("intersect initial = %g, want 1/400", s)
	}
	// Explicit override wins.
	init := DefaultInitials()
	init.Intersect = 0.5
	if s := Selectivity(n, init); s != 0.5 {
		t.Errorf("intersect override = %g", s)
	}
}

func TestSelectivityFromSamples(t *testing.T) {
	if s := Selectivity(infoOf(exec.OpSelect, 200, 50), DefaultInitials()); s != 0.25 {
		t.Errorf("sampled selectivity = %g, want 0.25", s)
	}
}

func TestSelectivityZeroFix(t *testing.T) {
	s := Selectivity(infoOf(exec.OpJoin, 10000, 0), DefaultInitials())
	if s <= 0 {
		t.Fatal("zero-output selectivity must be positive (§3.4)")
	}
	want := 1 - math.Exp2(-1.0/10000)
	if math.Abs(s-want) > 1e-15 {
		t.Errorf("zero fix = %g, want %g", s, want)
	}
}

func TestZeroSelectivityFixShrinksWithSample(t *testing.T) {
	prev := 1.0
	for _, m := range []float64{1, 10, 100, 1000, 1e6} {
		v := ZeroSelectivityFix(m)
		if v <= 0 || v >= prev {
			t.Fatalf("zero fix not positive/decreasing at m=%g: %g (prev %g)", m, v, prev)
		}
		prev = v
	}
	// Degenerate m.
	if ZeroSelectivityFix(0) != ZeroSelectivityFix(1) {
		t.Error("m<1 should clamp to 1")
	}
}

func TestComputeSelPlus(t *testing.T) {
	// dβ = 0: sel unchanged.
	if s := ComputeSelPlus(0.2, 0, 1000, 0.1); s != 0.2 {
		t.Errorf("dβ=0 changed sel: %g", s)
	}
	// Inflation grows with dβ.
	s12 := ComputeSelPlus(0.2, 12, 1000, 0.1)
	s48 := ComputeSelPlus(0.2, 48, 1000, 0.1)
	if !(s12 > 0.2 && s48 > s12) {
		t.Errorf("inflation not monotone: %g, %g", s12, s48)
	}
	// Clamped at 1.
	if s := ComputeSelPlus(0.9, 1000, 10, 0); s != 1 {
		t.Errorf("clamp failed: %g", s)
	}
	// Larger samples inflate less.
	big := ComputeSelPlus(0.2, 12, 1e6, 0.1)
	if big >= s12 {
		t.Errorf("more points should shrink inflation: %g vs %g", big, s12)
	}
	// Full coverage: no variance left.
	if s := ComputeSelPlus(0.2, 12, 1000, 1); s != 0.2 {
		t.Errorf("covered=1 should not inflate: %g", s)
	}
	// Degenerate sel values.
	if s := ComputeSelPlus(-0.5, 12, 1000, 0); s < 0 {
		t.Errorf("negative sel should clamp: %g", s)
	}
}

func TestSampleSizeDetermineFitsTarget(t *testing.T) {
	in := planFixture(t, true)
	// 2.5s cannot buy the whole remaining sample (~4.7s), so the binary
	// search must land on an interior fraction near the target.
	plan := SampleSizeDetermine(in, 2500*time.Millisecond, 0, 0.001)
	if plan.Fraction <= 0 || plan.Fraction >= in.MaxFraction {
		t.Fatalf("fraction = %g", plan.Fraction)
	}
	diff := plan.Predicted - 2500*time.Millisecond
	if diff < 0 {
		diff = -diff
	}
	if diff > 100*time.Millisecond {
		t.Errorf("predicted %v misses 2.5s target by %v", plan.Predicted, diff)
	}
}

func TestSampleSizeDetermineTakesEverythingWhenCheap(t *testing.T) {
	in := planFixture(t, true)
	plan := SampleSizeDetermine(in, time.Hour, 0, 0.001)
	if plan.Fraction != in.MaxFraction {
		t.Errorf("huge budget should take MaxFraction, got %g", plan.Fraction)
	}
}

func TestSampleSizeDetermineRefusesUnaffordableStage(t *testing.T) {
	in := planFixture(t, true)
	plan := SampleSizeDetermine(in, 10*time.Millisecond, 0, 0.1)
	if plan.Fraction != 0 {
		t.Errorf("unaffordable stage should return 0, got %g", plan.Fraction)
	}
	if plan.Predicted == 0 {
		t.Error("refusal should report the minimum stage's cost")
	}
}

func TestSampleSizeDetermineDegenerateInputs(t *testing.T) {
	in := planFixture(t, true)
	if p := SampleSizeDetermine(in, 0, 0, 0.01); p.Fraction != 0 {
		t.Error("zero target should refuse")
	}
	in.MaxFraction = 0
	if p := SampleSizeDetermine(in, time.Second, 0, 0.01); p.Fraction != 0 {
		t.Error("exhausted sample should refuse")
	}
}

func TestDBetaShrinksPlannedFraction(t *testing.T) {
	// Larger dβ assumes larger selectivities, so the same budget buys a
	// smaller stage.
	in := planFixture(t, true)
	f0 := SampleSizeDetermine(in, 2500*time.Millisecond, 0, 0.001).Fraction
	f48 := SampleSizeDetermine(in, 2500*time.Millisecond, 48, 0.001).Fraction
	if !(f48 < f0) {
		t.Errorf("dβ=48 fraction %g not below dβ=0 fraction %g", f48, f0)
	}
}

func TestOneAtATimeStrategy(t *testing.T) {
	in := planFixture(t, true)
	in.Remaining = 3 * time.Second
	s := &OneAtATime{DBeta: 12, MinFraction: 0.001}
	plan := s.PlanStage(in)
	if plan.Fraction <= 0 {
		t.Fatal("strategy refused an affordable stage")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
	s.ObserveStage(time.Second, time.Second) // must not panic
}

func TestSingleIntervalReservesTime(t *testing.T) {
	in := planFixture(t, true)
	// Make the remaining quota binding (the whole sample costs ~4.7s).
	in.Remaining = 3 * time.Second
	plain := &SingleInterval{DAlpha: 0, MinFraction: 0.001}
	cautious := &SingleInterval{DAlpha: 3, MinFraction: 0.001}
	f0 := plain.PlanStage(in).Fraction
	f3 := cautious.PlanStage(in).Fraction
	if !(f3 < f0) {
		t.Errorf("dα=3 fraction %g not below dα=0 fraction %g", f3, f0)
	}
	// After observing consistent ratios, the reserve shrinks.
	for i := 0; i < 5; i++ {
		cautious.ObserveStage(time.Second, time.Second) // perfect predictions
	}
	f3after := cautious.PlanStage(in).Fraction
	if !(f3after > f3) {
		t.Errorf("consistent history should shrink the reserve: %g -> %g", f3, f3after)
	}
	if cautious.Name() == "" {
		t.Error("empty name")
	}
}

func TestHeuristicSplitsRemaining(t *testing.T) {
	in := planFixture(t, true)
	in.Remaining = 3 * time.Second
	half := &Heuristic{Gamma: 0.5, MinFraction: 0.001}
	full := &Heuristic{Gamma: 1.0, MinFraction: 0.001}
	fh := half.PlanStage(in).Fraction
	ff := full.PlanStage(in).Fraction
	if !(fh < ff) {
		t.Errorf("γ=0.5 fraction %g not below γ=1 fraction %g", fh, ff)
	}
	// Below the commit threshold the whole remainder is spent.
	commit := &Heuristic{Gamma: 0.25, CommitBelow: time.Hour, MinFraction: 0.001}
	fc := commit.PlanStage(in).Fraction
	if !(fc > fh) {
		t.Errorf("commit threshold should spend everything: %g vs %g", fc, fh)
	}
	// Invalid gamma falls back to 0.5.
	bad := &Heuristic{Gamma: -1, MinFraction: 0.001}
	if f := bad.PlanStage(in).Fraction; math.Abs(f-fh) > 0.02 {
		t.Errorf("gamma fallback fraction %g, want about %g", f, fh)
	}
	if half.Name() == "" {
		t.Error("empty name")
	}
	half.ObserveStage(time.Second, time.Second)
}

func TestErrorTargetCriterion(t *testing.T) {
	c := ErrorTarget{RelHalfWidth: 0.1, Level: 0.95}
	tight := StopState{Stage: 2, Estimate: estimator.Estimate{Value: 1000, Variance: 1}}
	if done, why := c.Done(tight); !done || why == "" {
		t.Error("tight estimate should stop")
	}
	loose := StopState{Stage: 2, Estimate: estimator.Estimate{Value: 1000, Variance: 1e6}}
	if done, _ := c.Done(loose); done {
		t.Error("loose estimate should continue")
	}
	early := StopState{Stage: 0, Estimate: estimator.Estimate{Value: 1000, Variance: 0}}
	if done, _ := c.Done(early); done {
		t.Error("must not stop before any stage completed")
	}
}

func TestNoImprovementCriterion(t *testing.T) {
	c := NoImprovement{K: 3, Tol: 0.01}
	flat := StopState{History: []float64{100, 100.1, 100.2, 100.1}}
	if done, _ := c.Done(flat); !done {
		t.Error("flat history should stop")
	}
	moving := StopState{History: []float64{100, 150, 200}}
	if done, _ := c.Done(moving); done {
		t.Error("moving history should continue")
	}
	short := StopState{History: []float64{100}}
	if done, _ := c.Done(short); done {
		t.Error("short history should continue")
	}
	zero := StopState{History: []float64{0, 0, 0}}
	if done, _ := c.Done(zero); !done {
		t.Error("all-zero history is stable")
	}
}

func TestMaxStagesAndAny(t *testing.T) {
	c := Any{MaxStages{N: 3}, ErrorTarget{RelHalfWidth: 0.01, Level: 0.95}}
	if done, _ := c.Done(StopState{Stage: 2, Estimate: estimator.Estimate{Value: 1, Variance: 100}}); done {
		t.Error("neither criterion should fire")
	}
	if done, why := c.Done(StopState{Stage: 3, Estimate: estimator.Estimate{Value: 1, Variance: 100}}); !done || why == "" {
		t.Error("MaxStages should fire")
	}
	if done, _ := (MaxStages{N: 0}).Done(StopState{Stage: 100}); done {
		t.Error("disabled MaxStages should not fire")
	}
}

func TestValueFunctionCriterion(t *testing.T) {
	c := &ValueFunction{Decay: 10 * time.Second}
	// Improving precision faster than decay: keep going.
	s1 := StopState{Stage: 1, Elapsed: time.Second,
		Estimate: estimator.Estimate{Value: 100, Variance: 900}} // wide
	if done, _ := c.Done(s1); done {
		t.Fatal("first stage should never stop")
	}
	s2 := StopState{Stage: 2, Elapsed: 2 * time.Second,
		Estimate: estimator.Estimate{Value: 100, Variance: 25}} // tighter
	if done, _ := c.Done(s2); done {
		t.Fatal("improving value should continue")
	}
	// Barely-improving precision at great time cost: value declines.
	s3 := StopState{Stage: 3, Elapsed: 30 * time.Second,
		Estimate: estimator.Estimate{Value: 100, Variance: 24}}
	if done, why := c.Done(s3); !done || why == "" {
		t.Fatal("declining value should stop")
	}
}

func TestValueFunctionDisabledWithoutDecay(t *testing.T) {
	c := &ValueFunction{}
	s := StopState{Stage: 5, Elapsed: time.Hour}
	if done, _ := c.Done(s); done {
		t.Error("zero decay should disable the criterion")
	}
}

func TestValueFunctionZeroEstimate(t *testing.T) {
	// Zero estimate with variance has infinite relative width: precision
	// clamps to 0 and the criterion must not panic or stop prematurely
	// on the first stage.
	c := &ValueFunction{Decay: time.Second}
	s := StopState{Stage: 1, Elapsed: time.Second,
		Estimate: estimator.Estimate{Value: 0, Variance: 10}}
	if done, _ := c.Done(s); done {
		t.Error("first observation should not stop")
	}
}

// TestSampleSizeDetermineNeverOvercommits is a property check: across
// random targets, an interior solution's predicted cost never exceeds
// the target by more than the binary-search tolerance.
func TestSampleSizeDetermineNeverOvercommits(t *testing.T) {
	in := planFixture(t, true)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		target := time.Duration(50+rng.Intn(6000)) * time.Millisecond
		dBeta := float64(rng.Intn(80))
		plan := SampleSizeDetermine(in, target, dBeta, 0.001)
		if plan.Fraction == 0 {
			continue // refused: leftover too small for the minimum stage
		}
		eps := target / 256
		if eps < time.Millisecond {
			eps = time.Millisecond
		}
		if plan.Fraction < in.MaxFraction && plan.Predicted > target+2*eps {
			t.Fatalf("trial %d: predicted %v exceeds target %v (dβ=%g, f=%g)",
				trial, plan.Predicted, target, dBeta, plan.Fraction)
		}
	}
}

// TestOracleBypassesInflation verifies prestored selectivities are used
// as-is regardless of d_β.
func TestOracleBypassesInflation(t *testing.T) {
	in := planFixture(t, true)
	nodeID := -1
	exec.WalkInfo(in.Roots[0], func(n *exec.NodeInfo) {
		if n.Op == exec.OpSelect {
			nodeID = n.ID
		}
	})
	if nodeID < 0 {
		t.Fatal("no select node in fixture")
	}
	in.Oracle = map[int]float64{nodeID: 0.3}
	f := selPlusFunc(in, 72) // huge dβ must be ignored for oracle nodes
	exec.WalkInfo(in.Roots[0], func(n *exec.NodeInfo) {
		if n.ID == nodeID {
			if got := f(n, 100); got != 0.3 {
				t.Errorf("oracle sel = %g, want 0.3", got)
			}
		}
	})
}
