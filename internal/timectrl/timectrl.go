// Package timectrl implements the time-control machinery of the paper's
// Section 3: run-time sample-selectivity estimation and improvement
// (Revise-Selectivities, Fig. 3.3), the inflated per-operator
// selectivity sel⁺ (ComputeSel⁺, Fig. 3.5, using the simple-random-
// sampling variance approximation), the zero-selectivity combinatorial
// fix (§3.4), the Sample-Size-Determine binary search (Fig. 3.4), the
// statistical time-control strategies (Single-Interval and
// One-at-a-Time-Interval, §3.3.1–3.3.2) and a heuristic strategy, plus
// the stopping criteria of §3.2.
package timectrl

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tcq/internal/cost"
	"tcq/internal/estimator"
	"tcq/internal/exec"
	"tcq/internal/stats"
)

// Initials holds the first-stage selectivity assumptions (Fig. 3.3
// assigns the maximum selectivity before any sample exists). The
// paper's experiments use Select/Project/Join = 1 (except the join
// experiment, which assumes 0.1 to get a measurable first stage) and
// Intersect = 1/max(|r1|, |r2|).
type Initials struct {
	Select    float64
	Join      float64
	Project   float64
	Intersect float64 // <= 0 means "use 1/max(|r1|,|r2|)" per the paper
}

// DefaultInitials returns the paper's Figure 3.3 defaults.
func DefaultInitials() Initials {
	return Initials{Select: 1, Join: 1, Project: 1, Intersect: 0}
}

// Selectivity returns the operator's current sample selectivity
// estimate sel^{i-1} (Fig. 3.3): the ratio of cumulative output tuples
// to cumulative covered points, the first-stage assumption before any
// points were covered, and the §3.4 combinatorial zero fix when the
// sample produced no output tuples.
func Selectivity(n *exec.NodeInfo, init Initials) float64 {
	if n.CumPoints <= 0 {
		switch n.Op {
		case exec.OpSelect:
			return clamp01(init.Select)
		case exec.OpJoin:
			return clamp01(init.Join)
		case exec.OpProject:
			return clamp01(init.Project)
		case exec.OpIntersect:
			if init.Intersect > 0 {
				return clamp01(init.Intersect)
			}
			return intersectInitial(n)
		default:
			return 1
		}
	}
	if n.CumOut == 0 {
		return ZeroSelectivityFix(n.CumPoints)
	}
	return clamp01(float64(n.CumOut) / n.CumPoints)
}

// intersectInitial implements the paper's 1/max(|r1|, |r2|) first-stage
// assumption, generalised to subexpressions by taking each operand's
// base point-space size.
func intersectInitial(n *exec.NodeInfo) float64 {
	maxOperand := 1.0
	for _, c := range n.Children {
		if s := basePoints(c); s > maxOperand {
			maxOperand = s
		}
	}
	return clamp01(1 / maxOperand)
}

// basePoints returns the product of base relation sizes under a node.
func basePoints(n *exec.NodeInfo) float64 {
	if n.Op == exec.OpBase {
		return float64(n.BaseTuples)
	}
	p := 1.0
	for _, c := range n.Children {
		p *= basePoints(c)
	}
	return p
}

// ZeroSelectivityFix returns a plausible positive selectivity after m
// covered points produced zero output tuples (§3.4). The paper's
// closed-form combinatorial formula lives in an unavailable tech
// report; we use the hypergeometric plausibility bound — the selectivity
// S at which an all-zero sample of m points has probability ½:
//
//	(1−S)^m = ½  ⇒  S = 1 − 2^(−1/m)
//
// which is closed, easy to compute, positive, and shrinks as the sample
// grows — the behaviour §3.4 requires.
func ZeroSelectivityFix(m float64) float64 {
	if m < 1 {
		m = 1
	}
	return 1 - math.Exp2(-1/m)
}

// ComputeSelPlus implements Fig. 3.5: the inflated selectivity
//
//	sel⁺ = sel^{i-1} + d_β·√Var(sel_i)
//
// with the SRS variance approximation Var = sel(1−sel)·fpc/m_i, where
// m_i is the number of new points the candidate stage would cover and
// fpc ≈ (1 − coveredFrac) approximates (N_i − m_i)/(N_i − 1) for the
// not-yet-covered point space. The result is clamped to [sel, 1].
func ComputeSelPlus(sel, dBeta, newPoints, coveredFrac float64) float64 {
	sel = clamp01(sel)
	if dBeta <= 0 || newPoints < 1 {
		return sel
	}
	fpc := 1 - coveredFrac
	if fpc < 0 {
		fpc = 0
	}
	v := sel * (1 - sel) * fpc / newPoints
	plus := sel + dBeta*math.Sqrt(v)
	return stats.Clamp(plus, sel, 1)
}

func clamp01(x float64) float64 { return stats.Clamp(x, 0, 1) }

// PlanInput is everything a strategy needs to size the next stage.
type PlanInput struct {
	// Roots are snapshots of each term's executor tree.
	Roots []*exec.NodeInfo
	// Model is the (adaptive) cost model evaluating QCOST.
	Model *cost.Model
	// Remaining is T_i, the quota left for this and later stages.
	Remaining time.Duration
	// Stage is the upcoming stage number (1-based).
	Stage int
	// CoveredFrac is the fraction of the point space covered so far
	// (the cumulative sample fraction drives the fpc approximation).
	CoveredFrac float64
	// MaxFraction is the largest admissible stage fraction (bounded by
	// the blocks still undrawn in the most-depleted relation).
	MaxFraction float64
	// Initial holds first-stage selectivity assumptions.
	Initial Initials
	// Oracle, when non-nil, supplies prestored exact selectivities per
	// node id (the §3.1 alternative to run-time estimation). Oracle
	// values are used as-is — a known selectivity needs no d_β
	// inflation.
	Oracle map[int]float64
}

// Plan is a strategy's decision for the next stage.
type Plan struct {
	// Fraction is the stage sample fraction f_i (0 means: no further
	// stage is affordable or possible).
	Fraction float64
	// Predicted is QCOST(f_i, SEL⁺), the stage's planned duration.
	Predicted time.Duration
	// Iterations is how many bisection steps Sample-Size-Determine
	// took to settle on Fraction (0 when an endpoint was accepted
	// outright); DBeta is the sel⁺ risk knob the search planned with.
	// Both are observability outputs consumed by the tracing layer.
	Iterations int
	DBeta      float64
}

// Strategy decides each stage's sample fraction and learns from the
// realised stage durations.
type Strategy interface {
	// Name identifies the strategy in results and benches.
	Name() string
	// PlanStage sizes the next stage.
	PlanStage(in PlanInput) Plan
	// ObserveStage reports a finished stage's predicted and actual
	// durations (for strategies that track prediction error).
	ObserveStage(predicted, actual time.Duration)
}

// selPlusFunc builds the cost.SelPlusFunc for a given d_β.
func selPlusFunc(in PlanInput, dBeta float64) cost.SelPlusFunc {
	return func(n *exec.NodeInfo, newPoints float64) float64 {
		if n.Op == exec.OpBase {
			return 1
		}
		if in.Oracle != nil {
			if sel, ok := in.Oracle[n.ID]; ok {
				return clamp01(sel) // prestored: exact, no inflation
			}
		}
		sel := Selectivity(n, in.Initial)
		return ComputeSelPlus(sel, dBeta, newPoints, in.CoveredFrac)
	}
}

// SampleSizeDetermine is the Fig. 3.4 binary search: the largest
// fraction f ∈ (0, maxF] whose predicted stage cost fits target. It
// returns (0, cost(minF)) when even the smallest admissible stage
// (minF) does not fit.
func SampleSizeDetermine(in PlanInput, target time.Duration, dBeta, minF float64) Plan {
	if target <= 0 || in.MaxFraction <= 0 {
		return Plan{DBeta: dBeta}
	}
	sel := selPlusFunc(in, dBeta)
	predict := func(f float64) time.Duration {
		return in.Model.PredictStage(in.Roots, f, sel).Duration
	}
	if minF > in.MaxFraction {
		minF = in.MaxFraction
	}
	if minF > 0 {
		if c := predict(minF); c > target {
			return Plan{Fraction: 0, Predicted: c, DBeta: dBeta}
		}
	}
	hi := in.MaxFraction
	if c := predict(hi); c <= target {
		return Plan{Fraction: hi, Predicted: c, DBeta: dBeta}
	}
	lo := minF
	eps := target / 256
	if eps < time.Millisecond {
		eps = time.Millisecond
	}
	var cMid time.Duration
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		cMid = predict(mid)
		diff := cMid - target
		if diff < 0 {
			diff = -diff
		}
		if diff <= eps {
			return Plan{Fraction: mid, Predicted: cMid, Iterations: iter + 1, DBeta: dBeta}
		}
		if cMid < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Plan{Fraction: lo, Predicted: predict(lo), Iterations: 60, DBeta: dBeta}
}

// PickCatalogStage sizes a warm first stage from a sample catalog's
// resolution ladder. Two certificates make a rung affordable:
//
//   - Model certificate: the d_β-inflated QCOST prediction fits the
//     remaining quota — the same discipline a cold plan obeys. The
//     smallest such rung at or above hintFrac is the ideal pick ("the
//     smallest catalog sample satisfying the quota").
//   - History certificate: any rung at or below hintFrac ×
//     catalogHistorySafety. The hint is the coverage this exact shape
//     reached within its quota last time, so history has already proven
//     such a rung affordable even when the stage-1 prediction — built
//     from prior selectivities, before any data has been seen — is too
//     pessimistic to certify it. The safety factor keeps a quota
//     reserve: a rung at the full hint would plan a first stage costing
//     the entire historical quota, which under load jitter overruns
//     about half the time and banks nothing — strictly worse than the
//     cold run it replaces.
//
// The picker prefers the model-certified rung covering the hint; when
// prediction pessimism rules those out it jumps to the largest rung the
// history certifies, which is what lets a warm run replace several
// cold discovery stages with one. With no affordable rung — or an
// empty hint — it returns a zero plan and the caller falls through to
// live Sample-Size-Determine planning. Predicted is always the QCOST
// the paper's model charges for evaluating the reused sample, inflated
// by the caller's d_β exactly as a cold plan would be.
func PickCatalogStage(in PlanInput, resolutions []float64, hintFrac, dBeta float64) Plan {
	if in.Remaining <= 0 || in.MaxFraction <= 0 || hintFrac <= 0 {
		return Plan{}
	}
	sel := selPlusFunc(in, dBeta)
	predict := func(f float64) time.Duration {
		return in.Model.PredictStage(in.Roots, f, sel).Duration
	}
	var fallback Plan
	for _, r := range resolutions { // ascending
		if r <= 0 || r > in.MaxFraction {
			continue
		}
		c := predict(r)
		if r <= hintFrac*catalogHistorySafety {
			// History-certified; keep the largest such rung.
			fallback = Plan{Fraction: r, Predicted: c, DBeta: dBeta}
			continue
		}
		if r >= hintFrac && c <= in.Remaining {
			// Model-certified rung covering the hint in full.
			return Plan{Fraction: r, Predicted: c, DBeta: dBeta}
		}
	}
	return fallback
}

// catalogHistorySafety scales the history-certified warm jump below the
// hint, reserving quota headroom for load jitter and a live mop-up
// stage after the jump.
const catalogHistorySafety = 0.8

// OpSelectivity reports one operator's planning inputs for a candidate
// stage: the current sample selectivity estimate (Fig. 3.3), the
// inflated sel⁺ the stage cost was predicted with (Fig. 3.5), and the
// new points the stage would cover for that operator.
type OpSelectivity struct {
	Node      int
	Op        exec.OpKind
	Sel       float64
	SelPlus   float64
	NewPoints float64
}

// PlanSelectivities re-derives the per-operator selectivities a stage
// at the given fraction was planned with, by re-running the (pure)
// QCOST prediction with a recording sel⁺ wrapper. It consumes no
// randomness and charges nothing, so the tracing layer can call it
// after the fact without perturbing the simulation. Results are sorted
// by node id.
func PlanSelectivities(in PlanInput, dBeta, fraction float64) []OpSelectivity {
	if in.Model == nil || fraction <= 0 {
		return nil
	}
	base := selPlusFunc(in, dBeta)
	var out []OpSelectivity
	rec := func(n *exec.NodeInfo, newPoints float64) float64 {
		sp := base(n, newPoints)
		if n.Op == exec.OpBase {
			return sp
		}
		sel := Selectivity(n, in.Initial)
		if in.Oracle != nil {
			if s, ok := in.Oracle[n.ID]; ok {
				sel = clamp01(s)
			}
		}
		out = append(out, OpSelectivity{Node: n.ID, Op: n.Op, Sel: sel, SelPlus: sp, NewPoints: newPoints})
		return sp
	}
	in.Model.PredictStage(in.Roots, fraction, rec)
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// OneAtATime is the One-at-a-Time-Interval strategy (§3.3.2, the
// implemented default of the paper's prototype): each operator's
// selectivity is individually inflated to sel⁺ with risk knob d_β, and
// the stage is sized to spend the whole remaining quota under SEL⁺.
type OneAtATime struct {
	// DBeta is d_β of eq. 3.3; 0 plans at the estimated selectivities
	// (≈50% overspend risk), larger values are more conservative. The
	// paper's experiments sweep {0, 12, 24, 48, 72}.
	DBeta float64
	// MinFraction is the smallest admissible stage fraction (one block
	// of the largest relation, set by the engine).
	MinFraction float64
}

// Name implements Strategy.
func (s *OneAtATime) Name() string { return fmt.Sprintf("one-at-a-time(dβ=%g)", s.DBeta) }

// PlanStage implements Strategy.
func (s *OneAtATime) PlanStage(in PlanInput) Plan {
	return SampleSizeDetermine(in, in.Remaining, s.DBeta, s.MinFraction)
}

// ObserveStage implements Strategy (stateless).
func (s *OneAtATime) ObserveStage(predicted, actual time.Duration) {}

// SingleInterval is the Single-Interval strategy (§3.3.1): instead of
// inflating each operator's selectivity, it reserves time for the
// whole-query cost uncertainty: solve μ_t + d_α·σ_t = T_i. The paper
// notes the exact Var(QCOST) (with covariances of all sel terms) is
// "very expensive"; like the paper we plug in previous-stage values —
// here, the observed distribution of actual/predicted stage-cost
// ratios.
type SingleInterval struct {
	// DAlpha is d_α: the number of cost standard deviations reserved.
	DAlpha float64
	// MinFraction is the smallest admissible stage fraction.
	MinFraction float64
	// PriorRelSD seeds σ_t/μ_t before two stages have been observed.
	PriorRelSD float64

	ratios stats.Accumulator
}

// Name implements Strategy.
func (s *SingleInterval) Name() string { return fmt.Sprintf("single-interval(dα=%g)", s.DAlpha) }

// PlanStage implements Strategy.
func (s *SingleInterval) PlanStage(in PlanInput) Plan {
	relSD := s.PriorRelSD
	if relSD <= 0 {
		relSD = 0.25
	}
	if s.ratios.N() >= 2 {
		relSD = s.ratios.StdDev()
	}
	// μ_t(1 + d_α·relSD) = T_i  ⇒  μ_t = T_i / (1 + d_α·relSD).
	denom := 1 + s.DAlpha*relSD
	if denom < 1 {
		denom = 1
	}
	target := time.Duration(float64(in.Remaining) / denom)
	return SampleSizeDetermine(in, target, 0, s.MinFraction)
}

// ObserveStage implements Strategy: records actual/predicted ratios.
func (s *SingleInterval) ObserveStage(predicted, actual time.Duration) {
	if predicted > 0 {
		s.ratios.Add(actual.Seconds() / predicted.Seconds())
	}
}

// Heuristic is a reconstruction of the paper's (unspecified) heuristic
// strategy: spend a fixed share γ of the remaining quota each stage,
// committing the whole remainder once it drops below the commit
// threshold. It needs no variance machinery at all.
type Heuristic struct {
	// Gamma is the share of the remaining quota spent per stage.
	Gamma float64
	// CommitBelow spends everything once remaining < CommitBelow.
	CommitBelow time.Duration
	// MinFraction is the smallest admissible stage fraction.
	MinFraction float64
}

// Name implements Strategy.
func (s *Heuristic) Name() string { return fmt.Sprintf("heuristic(γ=%g)", s.Gamma) }

// PlanStage implements Strategy.
func (s *Heuristic) PlanStage(in PlanInput) Plan {
	gamma := s.Gamma
	if gamma <= 0 || gamma > 1 {
		gamma = 0.5
	}
	target := time.Duration(float64(in.Remaining) * gamma)
	if s.CommitBelow > 0 && in.Remaining < s.CommitBelow {
		target = in.Remaining
	}
	return SampleSizeDetermine(in, target, 0, s.MinFraction)
}

// ObserveStage implements Strategy (stateless).
func (s *Heuristic) ObserveStage(predicted, actual time.Duration) {}

// StopState is the engine state a stopping criterion examines after
// each completed stage.
type StopState struct {
	Stage     int           // completed stages
	Elapsed   time.Duration // time spent so far
	Quota     time.Duration
	Estimate  estimator.Estimate
	History   []float64 // per-stage estimates, oldest first
	Exhausted bool      // no blocks left to draw
}

// Criterion is a stopping criterion (§3.2). The engine always stops on
// quota exhaustion and sample exhaustion; criteria add precision-based
// or custom conditions.
type Criterion interface {
	// Done reports whether processing should stop, with a reason.
	Done(s StopState) (bool, string)
}

// ErrorTarget stops once the estimate's relative confidence-interval
// half-width reaches the target — the second criterion type of §3.2
// (error-constrained evaluation).
type ErrorTarget struct {
	RelHalfWidth float64 // e.g. 0.05 for ±5%
	Level        float64 // confidence level, e.g. 0.95
	MinStages    int     // require at least this many stages (default 1)
}

// Done implements Criterion.
func (c ErrorTarget) Done(s StopState) (bool, string) {
	min := c.MinStages
	if min < 1 {
		min = 1
	}
	if s.Stage < min {
		return false, ""
	}
	rhw := s.Estimate.RelHalfWidth(c.Level)
	if rhw <= c.RelHalfWidth {
		return true, fmt.Sprintf("error target reached (±%.1f%% at %.0f%%)", rhw*100, c.Level*100)
	}
	return false, ""
}

// NoImprovement stops when the estimate has not moved by more than Tol
// (relative) over the last K stages — "the estimation does not improve
// much over the last few stages" (§3.2).
type NoImprovement struct {
	K   int     // window size (stages)
	Tol float64 // relative movement threshold
}

// Done implements Criterion.
func (c NoImprovement) Done(s StopState) (bool, string) {
	k := c.K
	if k < 2 {
		k = 2
	}
	if len(s.History) < k {
		return false, ""
	}
	win := s.History[len(s.History)-k:]
	lo, hi := win[0], win[0]
	for _, v := range win {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := math.Abs(hi)
	if scale == 0 {
		scale = 1
	}
	if (hi-lo)/scale <= c.Tol {
		return true, fmt.Sprintf("estimate stable over last %d stages", k)
	}
	return false, ""
}

// MaxStages stops after N completed stages.
type MaxStages struct{ N int }

// Done implements Criterion.
func (c MaxStages) Done(s StopState) (bool, string) {
	if c.N > 0 && s.Stage >= c.N {
		return true, fmt.Sprintf("max stages (%d) reached", c.N)
	}
	return false, ""
}

// Any combines criteria: stop when any fires.
type Any []Criterion

// Done implements Criterion.
func (cs Any) Done(s StopState) (bool, string) {
	for _, c := range cs {
		if done, why := c.Done(s); done {
			return true, why
		}
	}
	return false, ""
}

// ValueFunction implements §3.2's soft-time-constraint variation: "by
// defining a value function for the completion time of a query, the
// system decides when to stop processing the query to get a higher
// value". Value combines precision and timeliness:
//
//	value(t) = (1 − relHalfWidth) · decay(t)
//
// with exponential time decay of scale Decay. After each stage the
// criterion compares the realised value against the previous stage's;
// it stops at the first decline (a greedy peak detector): past that
// point, additional precision is no longer worth the time it costs.
type ValueFunction struct {
	// Decay is the time scale of the value decay (required; larger
	// means a more patient user).
	Decay time.Duration
	// Level is the confidence level of the precision term (default 0.95).
	Level float64

	prev    float64
	started bool
}

// Done implements Criterion.
func (c *ValueFunction) Done(s StopState) (bool, string) {
	if c.Decay <= 0 {
		return false, ""
	}
	level := c.Level
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	rhw := s.Estimate.RelHalfWidth(level)
	precision := 1 - rhw
	if precision < 0 {
		precision = 0
	}
	value := precision * math.Exp(-s.Elapsed.Seconds()/c.Decay.Seconds())
	if c.started && value < c.prev {
		return true, fmt.Sprintf("value function peaked (%.3f after %.3f)", value, c.prev)
	}
	c.started = true
	c.prev = value
	return false, ""
}
