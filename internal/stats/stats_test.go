package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.N() != 0 {
		t.Fatalf("zero accumulator not zero: %+v", a)
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", a.Mean())
	}
	// Population variance of this classic sequence is 4.
	if !almostEqual(a.PopVar(), 4, 1e-12) {
		t.Errorf("PopVar = %g, want 4", a.PopVar())
	}
	if !almostEqual(a.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %g, want %g", a.Var(), 32.0/7.0)
	}
	if !almostEqual(a.StdDev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g", a.StdDev())
	}
}

func TestAccumulatorSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(42)
	if a.Mean() != 42 {
		t.Errorf("Mean = %g, want 42", a.Mean())
	}
	if a.Var() != 0 {
		t.Errorf("Var of single observation = %g, want 0", a.Var())
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n1, n2 := rng.Intn(20), rng.Intn(20)
		var whole, left, right Accumulator
		for i := 0; i < n1; i++ {
			x := rng.NormFloat64() * 10
			whole.Add(x)
			left.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.NormFloat64()*3 + 5
			whole.Add(x)
			right.Add(x)
		}
		left.Merge(&right)
		if left.N() != whole.N() {
			t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
		}
		if !almostEqual(left.Mean(), whole.Mean(), 1e-9) {
			t.Fatalf("merged mean %g != %g", left.Mean(), whole.Mean())
		}
		if !almostEqual(left.Var(), whole.Var(), 1e-9) {
			t.Fatalf("merged var %g != %g", left.Var(), whole.Var())
		}
	}
}

func TestCoAccumulator(t *testing.T) {
	var c CoAccumulator
	// Perfectly correlated data: y = 2x + 1.
	for _, x := range []float64{1, 2, 3, 4, 5} {
		c.Add(x, 2*x+1)
	}
	if !almostEqual(c.Corr(), 1, 1e-12) {
		t.Errorf("Corr = %g, want 1", c.Corr())
	}
	// Cov(x, 2x+1) = 2 Var(x); Var{1..5} (sample) = 2.5.
	if !almostEqual(c.Cov(), 5, 1e-12) {
		t.Errorf("Cov = %g, want 5", c.Cov())
	}
}

func TestCoAccumulatorIndependent(t *testing.T) {
	var c CoAccumulator
	c.Add(1, 5)
	if c.Cov() != 0 {
		t.Errorf("Cov of single pair = %g, want 0", c.Cov())
	}
	if c.Corr() != 0 {
		t.Errorf("Corr of single pair = %g, want 0", c.Corr())
	}
}

func TestMeanVarianceSlices(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton != 0")
	}
	xs := []float64{1, 2, 3, 4}
	if !almostEqual(Mean(xs), 2.5, 1e-12) {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if !almostEqual(Variance(xs), 5.0/3.0, 1e-12) {
		t.Errorf("Variance = %g", Variance(xs))
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Covariance with mismatched lengths should error")
	}
	cv, err := Covariance([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cv, 2, 1e-12) {
		t.Errorf("Cov = %g, want 2", cv)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.841344746068543, 1}, // Phi(1)
		{0.999, 3.090232306167813},
		{0.001, -3.090232306167813},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if !almostEqual(got, c.want, 1e-8) {
			t.Errorf("NormalQuantile(%g) = %.12f, want %.12f", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be -Inf/+Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("quantile outside [0,1] should be NaN")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-6 || p > 1-1e-6 {
			return true
		}
		x := NormalQuantile(p)
		return almostEqual(NormalCDF(x), p, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 30 {
			return true
		}
		return almostEqual(NormalCDF(x)+NormalCDF(-x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogFactorial(t *testing.T) {
	fact := 1.0
	for n := int64(0); n <= 20; n++ {
		if n > 0 {
			fact *= float64(n)
		}
		if !almostEqual(LogFactorial(n), math.Log(fact), 1e-9) {
			t.Errorf("LogFactorial(%d) = %g, want %g", n, LogFactorial(n), math.Log(fact))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("LogFactorial(-1) should panic")
		}
	}()
	LogFactorial(-1)
}

func TestLogBinomial(t *testing.T) {
	if !math.IsInf(LogBinomial(5, -1), -1) || !math.IsInf(LogBinomial(5, 6), -1) {
		t.Error("out-of-range binomial should be -Inf")
	}
	// C(10, 3) = 120.
	if !almostEqual(math.Exp(LogBinomial(10, 3)), 120, 1e-9) {
		t.Errorf("C(10,3) = %g", math.Exp(LogBinomial(10, 3)))
	}
	// Symmetry C(n,k) = C(n,n-k).
	f := func(n, k uint8) bool {
		nn, kk := int64(n%50), int64(k)
		if kk > nn {
			return true
		}
		return almostEqual(LogBinomial(nn, kk), LogBinomial(nn, nn-kk), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHypergeomZeroProb(t *testing.T) {
	// No marked elements: always probability 1.
	p, err := HypergeomZeroProb(100, 0, 10)
	if err != nil || p != 1 {
		t.Errorf("K=0: p=%g err=%v", p, err)
	}
	// Sample bigger than unmarked population: probability 0.
	p, err = HypergeomZeroProb(10, 5, 6)
	if err != nil || p != 0 {
		t.Errorf("m > N-K: p=%g err=%v", p, err)
	}
	// Small exact case: N=5, K=2, m=2: C(3,2)/C(5,2) = 3/10.
	p, err = HypergeomZeroProb(5, 2, 2)
	if err != nil || !almostEqual(p, 0.3, 1e-12) {
		t.Errorf("exact: p=%g err=%v", p, err)
	}
	if _, err := HypergeomZeroProb(5, 6, 1); err == nil {
		t.Error("K > N should error")
	}
	if _, err := HypergeomZeroProb(5, 1, 6); err == nil {
		t.Error("m > N should error")
	}
	if _, err := HypergeomZeroProb(-1, 0, 0); err == nil {
		t.Error("negative N should error")
	}
}

func TestHypergeomZeroProbMatchesEnumeration(t *testing.T) {
	// Brute-force check against enumeration for a small population.
	const N, K, m = 8, 3, 4
	// Count m-subsets of {0..7} avoiding the first K elements.
	choose := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	want := float64(choose(N-K, m)) / float64(choose(N, m))
	got, err := HypergeomZeroProb(N, K, m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("got %g want %g", got, want)
	}
}

func TestSRSProportionVariance(t *testing.T) {
	// Full census: variance must be 0.
	if v := SRSProportionVariance(0.3, 100, 100); v != 0 {
		t.Errorf("census variance = %g, want 0", v)
	}
	// Degenerate proportions: variance 0.
	if v := SRSProportionVariance(0, 100, 10); v != 0 {
		t.Errorf("S=0 variance = %g", v)
	}
	if v := SRSProportionVariance(1, 100, 10); v != 0 {
		t.Errorf("S=1 variance = %g", v)
	}
	// Out-of-range S is clamped rather than producing negative variance.
	if v := SRSProportionVariance(-0.5, 100, 10); v != 0 {
		t.Errorf("clamped S variance = %g", v)
	}
	// Known value: S=0.5, N=101, m=50 -> 0.25*51/(50*100).
	want := 0.25 * 51 / (50 * 100.0)
	if v := SRSProportionVariance(0.5, 101, 50); !almostEqual(v, want, 1e-15) {
		t.Errorf("variance = %g, want %g", v, want)
	}
	if v := SRSProportionVariance(0.5, 1, 0); v != 0 {
		t.Errorf("empty sample variance = %g", v)
	}
}

func TestSRSVarianceMonotoneInSampleSize(t *testing.T) {
	// Larger samples never increase the variance.
	prev := math.Inf(1)
	for m := int64(1); m <= 100; m++ {
		v := SRSProportionVariance(0.2, 100, m)
		if v > prev+1e-15 {
			t.Fatalf("variance increased at m=%d: %g > %g", m, v, prev)
		}
		prev = v
	}
}

func TestFPC(t *testing.T) {
	if FPC(1, 0) != 0 {
		t.Error("FPC with N<=1 should be 0")
	}
	if !almostEqual(FPC(101, 1), 1, 1e-12) {
		t.Errorf("FPC(101,1) = %g", FPC(101, 1))
	}
	if FPC(100, 100) != 0 {
		t.Error("census FPC should be 0")
	}
	if FPC(100, 200) != 0 {
		t.Error("oversample FPC should clamp to 0")
	}
}

func TestNormalInterval(t *testing.T) {
	iv := NormalInterval(10, 4, 0.95)
	if !almostEqual(iv.Half, 2*1.959963984540054, 1e-6) {
		t.Errorf("half-width = %g", iv.Half)
	}
	if !iv.Contains(10) || !iv.Contains(iv.Lo()) || !iv.Contains(iv.Hi()) {
		t.Error("interval should contain its center and bounds")
	}
	if iv.Contains(iv.Hi() + 1) {
		t.Error("interval should not contain points beyond Hi")
	}
	zero := NormalInterval(5, 0, 0.95)
	if zero.Half != 0 {
		t.Errorf("zero-variance interval half = %g", zero.Half)
	}
	neg := NormalInterval(5, -1, 0.95)
	if neg.Half != 0 {
		t.Errorf("negative-variance interval half = %g", neg.Half)
	}
}

func TestIntervalCoverageSimulation(t *testing.T) {
	// Empirical check that a 95% normal interval on a sample mean covers
	// the true mean about 95% of the time.
	rng := rand.New(rand.NewSource(42))
	const trials, n = 2000, 50
	covered := 0
	for i := 0; i < trials; i++ {
		var a Accumulator
		for j := 0; j < n; j++ {
			a.Add(rng.NormFloat64()*2 + 7)
		}
		iv := NormalInterval(a.Mean(), a.Var()/float64(n), 0.95)
		if iv.Contains(7) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Errorf("coverage = %.3f, want ~0.95", rate)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestWilson(t *testing.T) {
	// Known value: 8/10 at 95% → approximately [0.490, 0.943].
	lo, hi := Wilson(8, 10, 0.95)
	if math.Abs(lo-0.4902) > 0.002 || math.Abs(hi-0.9433) > 0.002 {
		t.Errorf("Wilson(8,10,0.95) = [%.4f, %.4f], want ~[0.490, 0.943]", lo, hi)
	}
	// Stays inside [0,1] at the extremes, unlike Wald.
	if lo, hi := Wilson(0, 20, 0.95); lo != 0 || hi <= 0 || hi >= 0.3 {
		t.Errorf("Wilson(0,20) = [%v, %v]", lo, hi)
	}
	if lo, hi := Wilson(20, 20, 0.95); hi != 1 || lo <= 0.7 {
		t.Errorf("Wilson(20,20) = [%v, %v]", lo, hi)
	}
	// The interval must bracket the observed proportion.
	for _, c := range []struct{ h, n int64 }{{1, 3}, {5, 7}, {37, 40}, {190, 200}} {
		lo, hi := Wilson(c.h, c.n, 0.95)
		p := float64(c.h) / float64(c.n)
		if !(lo <= p && p <= hi) {
			t.Errorf("Wilson(%d,%d) = [%v, %v] excludes p=%v", c.h, c.n, lo, hi, p)
		}
	}
	// Degenerate inputs: vacuous interval and clamped arguments.
	if lo, hi := Wilson(0, 0, 0.95); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = [%v, %v], want [0, 1]", lo, hi)
	}
	if lo, hi := Wilson(-3, 10, 0); lo != 0 || hi >= 0.35 {
		t.Errorf("Wilson(-3,10,0) = [%v, %v]", lo, hi)
	}
	// Wider confidence demands a wider interval.
	lo90, hi90 := Wilson(15, 20, 0.90)
	lo99, hi99 := Wilson(15, 20, 0.99)
	if !(lo99 < lo90 && hi99 > hi90) {
		t.Errorf("99%% interval [%v,%v] not wider than 90%% [%v,%v]", lo99, hi99, lo90, hi90)
	}
}
