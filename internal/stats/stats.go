// Package stats provides the statistics kernel used throughout tcq:
// streaming moment accumulators, normal quantiles, hypergeometric and
// binomial helpers, and the sampling-variance formulas from the paper
// ("Processing Aggregate Relational Queries with Hard Time Constraints",
// SIGMOD 1989) and its companion estimator paper [HoOT 88].
//
// Everything here is pure computation over float64 and is safe for
// concurrent use as long as each Accumulator is confined to one goroutine.
package stats

import (
	"errors"
	"math"
)

// ErrBadArgument reports an out-of-domain argument to a stats function.
var ErrBadArgument = errors.New("stats: bad argument")

// Accumulator accumulates streaming first and second moments using
// Welford's algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations added.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean, or 0 if no observations were added.
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (divisor n-1), or 0 when
// fewer than two observations were added.
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// PopVar returns the population variance (divisor n), or 0 when empty.
func (a *Accumulator) PopVar() float64 {
	if a.n < 1 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Var()) }

// Merge folds another accumulator into a (parallel Welford merge).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.n = n
}

// CoAccumulator accumulates streaming covariance of paired observations.
// The zero value is ready to use.
type CoAccumulator struct {
	n     int64
	meanX float64
	meanY float64
	coMom float64
	m2x   float64
	m2y   float64
}

// Add incorporates one (x, y) pair.
func (c *CoAccumulator) Add(x, y float64) {
	c.n++
	dx := x - c.meanX
	c.meanX += dx / float64(c.n)
	dy := y - c.meanY
	c.meanY += dy / float64(c.n)
	c.coMom += dx * (y - c.meanY)
	c.m2x += dx * (x - c.meanX)
	c.m2y += dy * (y - c.meanY)
}

// N returns the number of pairs added.
func (c *CoAccumulator) N() int64 { return c.n }

// Cov returns the unbiased sample covariance, or 0 with fewer than 2 pairs.
func (c *CoAccumulator) Cov() float64 {
	if c.n < 2 {
		return 0
	}
	return c.coMom / float64(c.n-1)
}

// Corr returns the Pearson correlation coefficient, or 0 when undefined.
func (c *CoAccumulator) Corr() float64 {
	if c.n < 2 || c.m2x == 0 || c.m2y == 0 {
		return 0
	}
	return c.coMom / math.Sqrt(c.m2x*c.m2y)
}

// Mean computes the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance computes the unbiased sample variance of xs, or 0 when
// len(xs) < 2.
func Variance(xs []float64) float64 {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Var()
}

// Covariance computes the unbiased sample covariance of equal-length
// slices xs and ys. It returns an error if the lengths differ.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrBadArgument
	}
	var c CoAccumulator
	for i := range xs {
		c.Add(xs[i], ys[i])
	}
	return c.Cov(), nil
}

// NormalCDF returns P(Z <= x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the p-quantile of the standard normal
// distribution using Acklam's rational approximation (relative error
// below 1.15e-9 over the open unit interval). It returns ±Inf for
// p = 0 or 1 and NaN outside [0, 1].
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	// Coefficients for Acklam's algorithm.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step for extra accuracy.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogFactorial returns ln(n!) using the log-gamma function.
// It panics for negative n.
func LogFactorial(n int64) float64 {
	if n < 0 {
		panic("stats: LogFactorial of negative number")
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// LogBinomial returns ln(C(n, k)), or -Inf when the coefficient is zero
// (k < 0 or k > n).
func LogBinomial(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// HypergeomZeroProb returns the probability of drawing zero marked
// elements in a sample of size m drawn without replacement from a
// population of N elements of which K are marked:
//
//	P = C(N-K, m) / C(N, m)
//
// It returns an error for inconsistent arguments.
func HypergeomZeroProb(N, K, m int64) (float64, error) {
	if N < 0 || K < 0 || m < 0 || K > N || m > N {
		return 0, ErrBadArgument
	}
	if K == 0 {
		return 1, nil
	}
	if m > N-K {
		return 0, nil
	}
	return math.Exp(LogBinomial(N-K, m) - LogBinomial(N, m)), nil
}

// SRSProportionVariance returns the variance of a sample proportion under
// simple random sampling without replacement:
//
//	Var(s) = S(1-S)(N-m) / (m(N-1))
//
// where S is the population proportion, N the population size and m the
// sample size. This is the approximation the paper uses in Fig. 3.5 for
// Var(sel_i). It returns 0 when m == 0 or N <= 1.
func SRSProportionVariance(S float64, N, m int64) float64 {
	if m <= 0 || N <= 1 {
		return 0
	}
	if S < 0 {
		S = 0
	}
	if S > 1 {
		S = 1
	}
	return S * (1 - S) * float64(N-m) / (float64(m) * float64(N-1))
}

// FPC returns the finite population correction factor (N-m)/(N-1), or 0
// when N <= 1.
func FPC(N, m int64) float64 {
	if N <= 1 {
		return 0
	}
	if m > N {
		m = N
	}
	return float64(N-m) / float64(N-1)
}

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Center float64
	Half   float64 // half-width; Lo = Center-Half, Hi = Center+Half
	Level  float64 // confidence level in (0,1), e.g. 0.95
}

// Lo returns the lower bound of the interval.
func (iv Interval) Lo() float64 { return iv.Center - iv.Half }

// Hi returns the upper bound of the interval.
func (iv Interval) Hi() float64 { return iv.Center + iv.Half }

// Contains reports whether x lies inside the interval (inclusive).
func (iv Interval) Contains(x float64) bool {
	return x >= iv.Lo() && x <= iv.Hi()
}

// NormalInterval builds a normal-approximation confidence interval for a
// point estimate with the given variance at the given confidence level.
// A non-positive variance yields a zero-width interval.
func NormalInterval(estimate, variance, level float64) Interval {
	iv := Interval{Center: estimate, Level: level}
	if variance > 0 && level > 0 && level < 1 {
		z := NormalQuantile(0.5 + level/2)
		iv.Half = z * math.Sqrt(variance)
	}
	return iv
}

// Wilson returns the Wilson score interval for a binomial proportion:
// hits successes out of n trials, at the given confidence level. Unlike
// the Wald interval it stays inside [0, 1] and behaves at the extremes
// (0 or n hits), which is why the calibration auditor uses it to bound
// realized CI coverage. n <= 0 yields the vacuous interval [0, 1].
func Wilson(hits, n int64, level float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if hits < 0 {
		hits = 0
	}
	if hits > n {
		hits = n
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	z := NormalQuantile(0.5 + level/2)
	nf := float64(n)
	p := float64(hits) / nf
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo = center - half
	hi = center + half
	// Snap the exact-proportion endpoints (p=0 keeps lo at exactly 0,
	// p=1 keeps hi at exactly 1; float residue would otherwise leak in).
	if hits == 0 || lo < 0 {
		lo = 0
	}
	if hits == n || hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
