// Package estimator implements the COUNT(E) estimators of the companion
// paper [HoOT 88] ("Statistical Estimators for Relational Algebra
// Expressions", PODS 1988) that the time-constrained evaluation
// algorithm of the SIGMOD 1989 paper drives:
//
//   - the point-space estimator û(E) = N·(y/m) under simple random
//     sampling of points, with its variance;
//   - the cluster-sampling estimator Ŷ_b(E) = B·(Σy_i/b) with disk
//     blocks (space blocks) as sample units, with its variance;
//   - Goodman's (1949) unbiased estimator for the number of classes,
//     used for expressions containing projection, revised with a
//     stability fallback (the alternating series is numerically
//     explosive at small sampling fractions — a known property);
//   - the signed inclusion–exclusion combination across SJIP terms.
package estimator

import (
	"math"

	"tcq/internal/stats"
)

// Estimate is a point estimate with an estimated variance.
type Estimate struct {
	Value    float64
	Variance float64
}

// Interval returns the normal-approximation confidence interval at the
// given level.
func (e Estimate) Interval(level float64) stats.Interval {
	return stats.NormalInterval(e.Value, e.Variance, level)
}

// StdErr returns the standard error (√variance).
func (e Estimate) StdErr() float64 {
	if e.Variance <= 0 {
		return 0
	}
	return math.Sqrt(e.Variance)
}

// RelHalfWidth returns the CI half-width at the given level relative to
// the estimate's magnitude, or +Inf for a zero estimate with nonzero
// variance (used by the error-constrained stopping criterion).
func (e Estimate) RelHalfWidth(level float64) float64 {
	half := e.Interval(level).Half
	if half == 0 {
		return 0
	}
	if e.Value == 0 {
		return math.Inf(1)
	}
	return half / math.Abs(e.Value)
}

// SRS returns the point-space estimator û(E) = N·(y/m) for a simple
// random sample (without replacement) of m points out of N, of which y
// had the value 1, together with the standard unbiased variance
// estimate
//
//	v(û) = N² · (1 − m/N) · p̂(1−p̂) / (m−1),  p̂ = y/m.
//
// A sample of size m <= 1 yields zero variance.
func SRS(y, m int64, N float64) Estimate {
	if m <= 0 {
		return Estimate{}
	}
	p := float64(y) / float64(m)
	est := N * p
	var v float64
	if m > 1 && N > 0 {
		fpc := 1 - float64(m)/N
		if fpc < 0 {
			fpc = 0
		}
		v = N * N * fpc * p * (1 - p) / float64(m-1)
	}
	return Estimate{Value: est, Variance: v}
}

// SRSPopulationVariance returns the true variance of û(E) given the
// population proportion S (Theorem-style formula, used in tests):
// N²·S(1−S)(N−m)/(m(N−1)).
func SRSPopulationVariance(S float64, m int64, N float64) float64 {
	if m <= 0 || N <= 1 {
		return 0
	}
	return N * N * stats.SRSProportionVariance(S, int64(N), m)
}

// Cluster returns the cluster-sampling estimator Ŷ_b(E) = B·(Σy_i/b)
// given the per-space-block totals y_i of the b sampled space blocks
// out of B, with the standard one-stage cluster variance estimate
//
//	v(Ŷ) = B² · (1 − b/B) · s_y² / b
//
// where s_y² is the sample variance of the block totals.
func Cluster(blockTotals []float64, B float64) Estimate {
	b := len(blockTotals)
	if b == 0 {
		return Estimate{}
	}
	var acc stats.Accumulator
	for _, y := range blockTotals {
		acc.Add(y)
	}
	est := B * acc.Mean()
	var v float64
	if b > 1 && B > 0 {
		fpc := 1 - float64(b)/B
		if fpc < 0 {
			fpc = 0
		}
		v = B * B * fpc * acc.Var() / float64(b)
	}
	return Estimate{Value: est, Variance: v}
}

// PointSpaceCluster returns the COUNT estimate for a cluster-sampled
// Select-Join-Intersect term expressed in point-space units: yTotal
// output tuples were found among pointsEval evaluated points of a point
// space with totalPoints points. The estimate is
//
//	totalPoints · yTotal / pointsEval
//
// and the variance uses the paper's simple-random-sampling
// approximation (Section 3.3: "we have chosen to use the variance
// formula for simple random sampling ... as an approximation"), which
// typically understates the true cluster variance.
func PointSpaceCluster(yTotal, pointsEval, totalPoints float64) Estimate {
	if pointsEval <= 0 {
		return Estimate{}
	}
	p := yTotal / pointsEval
	est := totalPoints * p
	var v float64
	if pointsEval > 1 && totalPoints > 0 {
		fpc := 1 - pointsEval/totalPoints
		if fpc < 0 {
			fpc = 0
		}
		v = totalPoints * totalPoints * fpc * p * (1 - p) / (pointsEval - 1)
	}
	return Estimate{Value: est, Variance: v}
}

// Goodman computes Goodman's (1949) unbiased estimator of the number of
// distinct classes in a population of N elements, from a simple random
// sample (without replacement) of n elements in which freq[i] classes
// appeared exactly i times:
//
//	D̂ = d + Σ_{i≥1} (−1)^{i+1} · C(N−n+i−1, i)/C(n, i) · f_i
//
// where d = Σ f_i is the number of distinct classes observed. The
// estimator is unbiased but numerically explosive for small sampling
// fractions; stable reports whether the alternating series stayed
// within plausible bounds. Callers should fall back to GoodmanRevised
// when stable is false.
func Goodman(N, n int64, freq map[int]int) (estimate float64, stable bool) {
	d := 0
	for _, f := range freq {
		d += f
	}
	if n <= 0 || d == 0 {
		return 0, true
	}
	if n >= N {
		return float64(d), true // census: exact
	}
	est := float64(d)
	stable = true
	for i, f := range freq {
		if f == 0 || i <= 0 {
			continue
		}
		logCoef := stats.LogBinomial(N-n+int64(i)-1, int64(i)) - stats.LogBinomial(n, int64(i))
		// The alternating series is trustworthy only while its
		// coefficients stay O(1) — they grow like ((N−n)/n)^i, so any
		// coefficient clearly above 1 signals the explosive regime
		// (small sampling fractions) where adjacent terms cancel to
		// garbage. Goodman himself notes the estimator's variance can
		// be enormous; this is the "revision" trigger.
		if math.Exp(logCoef) > 8 {
			stable = false
		}
		term := math.Exp(logCoef) * float64(f)
		if i%2 == 0 {
			term = -term
		}
		est += term
	}
	// The unbiased estimator can legitimately fall below d (even to 0 —
	// see the N=3 example in the tests), so only clearly impossible
	// values flag instability.
	if est < 0 || est > float64(N) || math.IsNaN(est) || math.IsInf(est, 0) {
		stable = false
	}
	return est, stable
}

// GoodmanRevised is the stabilised distinct-count estimator used when
// the raw Goodman series misbehaves (the paper notes Goodman's estimator
// is "revised" for projection expressions; the exact revision lives in
// an unavailable tech report, so we use the first-order smoothed
// jackknife common in the distinct-value estimation literature):
//
//	D̂ = d / (1 − (1−q)·f₁/n),  q = n/N
//
// It is d when the sample has no singletons and approaches N when every
// sampled element is a singleton. The result is clamped to [d, N].
func GoodmanRevised(N, n int64, freq map[int]int) float64 {
	d := 0
	for _, f := range freq {
		d += f
	}
	if n <= 0 || d == 0 {
		return 0
	}
	if n >= N {
		return float64(d)
	}
	q := float64(n) / float64(N)
	f1 := float64(freq[1])
	denom := 1 - (1-q)*f1/float64(n)
	est := float64(d)
	if denom > 0 {
		est = float64(d) / denom
	} else {
		est = float64(N)
	}
	return stats.Clamp(est, float64(d), float64(N))
}

// DistinctCount picks Goodman's estimator when stable and the revised
// estimator otherwise, with a rough variance: the squared gap between
// the chosen estimate and the naive scale-up d/q, floored at the
// binomial variance of d. The paper reports estimator quality
// separately ([HouO 88]); this variance only drives stopping decisions.
func DistinctCount(N, n int64, freq map[int]int) Estimate {
	d := 0
	for _, f := range freq {
		d += f
	}
	if n <= 0 || d == 0 {
		return Estimate{}
	}
	var est float64
	if g, ok := Goodman(N, n, freq); ok {
		est = g
	} else {
		est = GoodmanRevised(N, n, freq)
	}
	q := float64(n) / float64(N)
	scaleUp := stats.Clamp(float64(d)/q, float64(d), float64(N))
	gap := est - scaleUp
	v := gap * gap
	if floor := est * (1 - q); v < floor {
		v = floor
	}
	return Estimate{Value: est, Variance: v}
}

// TermEstimate is one signed term's estimate in the inclusion–exclusion
// decomposition of COUNT(E).
type TermEstimate struct {
	Sign     int
	Estimate Estimate
}

// Combine returns the signed sum of term estimates. Terms share samples
// in the implementation, so the summed variance (which ignores
// covariances) is an approximation; the paper makes the corresponding
// approximation when it replaces covariance computations with
// previous-stage plug-ins (Section 3.3.1).
func Combine(terms []TermEstimate) Estimate {
	var out Estimate
	for _, t := range terms {
		out.Value += float64(t.Sign) * t.Estimate.Value
		out.Variance += float64(t.Sign*t.Sign) * t.Estimate.Variance
	}
	return out
}
