package estimator

// Aggregate estimators beyond COUNT. The paper restricts itself to
// COUNT but notes that "most of the following discussions apply to any
// type of relational algebra query (given, of course, an estimator for
// the query)". SUM and AVG are the natural next aggregates: the
// point-space model extends directly by giving each value-1 point the
// numeric value of its output tuple instead of 1.

// SumSample accumulates the sampled statistics a SUM/AVG estimator
// needs: the number of covered points, the output tuple count among
// them, and the first two moments of the aggregated column over the
// output tuples. The zero value is ready to use.
type SumSample struct {
	Points float64 // points of the term's point space covered
	Count  float64 // output tuples among the covered points
	Sum    float64 // Σ value over output tuples
	SumSq  float64 // Σ value² over output tuples
}

// Add incorporates one output tuple's aggregated value.
func (s *SumSample) Add(v float64) {
	s.Count++
	s.Sum += v
	s.SumSq += v * v
}

// Merge folds another sample into s.
func (s *SumSample) Merge(o SumSample) {
	s.Points += o.Points
	s.Count += o.Count
	s.Sum += o.Sum
	s.SumSq += o.SumSq
}

// PointSpaceSum estimates SUM(E.col) for a cluster-sampled term: every
// point of the term's point space carries the output tuple's value (or
// 0 when the point produces no output), so
//
//	ŜUM = totalPoints · (Σv / pointsEval)
//
// with the SRS variance approximation over per-point values:
//
//	v(ŜUM) = totalPoints² · (1 − m/N) · s²_v / m
//
// where s²_v is the sample variance of the per-point values (zeros
// included) — the same approximation structure the paper uses for
// COUNT selectivities.
func PointSpaceSum(s SumSample, totalPoints float64) Estimate {
	m := s.Points
	if m <= 0 {
		return Estimate{}
	}
	mean := s.Sum / m
	est := totalPoints * mean
	var v float64
	if m > 1 && totalPoints > 0 {
		fpc := 1 - m/totalPoints
		if fpc < 0 {
			fpc = 0
		}
		// Sample variance of per-point values: the (m − Count) zero
		// points contribute 0 to both moments.
		sv := (s.SumSq - s.Sum*s.Sum/m) / (m - 1)
		if sv < 0 {
			sv = 0
		}
		v = totalPoints * totalPoints * fpc * sv / m
	}
	return Estimate{Value: est, Variance: v}
}

// Ratio estimates AVG = SUM/COUNT from combined estimates with a
// first-order (delta method) variance that ignores the covariance
// between numerator and denominator — consistent with the paper's other
// covariance omissions:
//
//	Var(A/B) ≈ Var(A)/B² + A²·Var(B)/B⁴
//
// A zero denominator yields a zero estimate.
func Ratio(num, den Estimate) Estimate {
	if den.Value == 0 {
		return Estimate{}
	}
	r := num.Value / den.Value
	b2 := den.Value * den.Value
	v := num.Variance/b2 + num.Value*num.Value*den.Variance/(b2*b2)
	if v < 0 {
		v = 0
	}
	return Estimate{Value: r, Variance: v}
}
