package estimator

import (
	"math"
	"math/rand"
	"testing"

	"tcq/internal/stats"
)

func TestSRSBasics(t *testing.T) {
	// N=100, m=10, y=3 -> estimate 30.
	e := SRS(3, 10, 100)
	if e.Value != 30 {
		t.Errorf("estimate = %g, want 30", e.Value)
	}
	if e.Variance <= 0 {
		t.Error("variance should be positive for 0 < y < m")
	}
	// Degenerate cases.
	if e := SRS(0, 0, 100); e.Value != 0 || e.Variance != 0 {
		t.Errorf("empty sample: %+v", e)
	}
	if e := SRS(5, 1, 100); e.Variance != 0 {
		t.Error("single-point sample variance should be 0")
	}
	// Census: zero variance (fpc = 0).
	if e := SRS(40, 100, 100); e.Variance != 0 || e.Value != 40 {
		t.Errorf("census: %+v", e)
	}
	// All ones / all zeros: zero variance.
	if e := SRS(10, 10, 100); e.Variance != 0 {
		t.Error("p=1 variance should be 0")
	}
	if e := SRS(0, 10, 100); e.Variance != 0 || e.Value != 0 {
		t.Error("p=0 variance should be 0")
	}
}

func TestSRSUnbiasedBySimulation(t *testing.T) {
	// Population of N=500 with K=120 ones; repeated SRS of m=50.
	const N, K, m = 500, 120, 50
	pop := make([]int, N)
	for i := 0; i < K; i++ {
		pop[i] = 1
	}
	rng := rand.New(rand.NewSource(17))
	var est, varEst stats.Accumulator
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		rng.Shuffle(N, func(i, j int) { pop[i], pop[j] = pop[j], pop[i] })
		y := int64(0)
		for i := 0; i < m; i++ {
			y += int64(pop[i])
		}
		e := SRS(y, m, N)
		est.Add(e.Value)
		varEst.Add(e.Variance)
	}
	if math.Abs(est.Mean()-K) > 3 {
		t.Errorf("mean estimate %.2f, want ~%d (unbiasedness)", est.Mean(), K)
	}
	// Mean of the variance estimator should match the empirical variance
	// of the estimates (within sampling slack).
	empirical := est.Var()
	ratio := varEst.Mean() / empirical
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("variance estimator ratio = %.3f (est %.1f, empirical %.1f)",
			ratio, varEst.Mean(), empirical)
	}
	// And it should be close to the population-formula variance.
	popVar := SRSPopulationVariance(float64(K)/N, m, N)
	if r := varEst.Mean() / popVar; r < 0.85 || r > 1.2 {
		t.Errorf("variance vs population formula ratio = %.3f", r)
	}
}

func TestSRSPopulationVarianceEdges(t *testing.T) {
	if SRSPopulationVariance(0.5, 0, 100) != 0 {
		t.Error("m=0 should give 0")
	}
	if SRSPopulationVariance(0.5, 10, 1) != 0 {
		t.Error("N<=1 should give 0")
	}
	if SRSPopulationVariance(0.5, 100, 100) != 0 {
		t.Error("census should give 0")
	}
}

func TestClusterBasics(t *testing.T) {
	// 3 sampled blocks out of 10 with totals 2, 4, 6 -> mean 4, est 40.
	e := Cluster([]float64{2, 4, 6}, 10)
	if e.Value != 40 {
		t.Errorf("estimate = %g, want 40", e.Value)
	}
	if e.Variance <= 0 {
		t.Error("variance should be positive for varying block totals")
	}
	if e := Cluster(nil, 10); e.Value != 0 || e.Variance != 0 {
		t.Errorf("empty cluster sample: %+v", e)
	}
	if e := Cluster([]float64{5}, 10); e.Variance != 0 {
		t.Error("single block variance should be 0")
	}
	// Uniform block totals: zero variance.
	if e := Cluster([]float64{3, 3, 3}, 10); e.Variance != 0 {
		t.Error("constant blocks variance should be 0")
	}
	// Census of blocks: fpc zero.
	if e := Cluster([]float64{1, 2}, 2); e.Variance != 0 {
		t.Error("census of blocks variance should be 0")
	}
}

func TestClusterUnbiasedBySimulation(t *testing.T) {
	// Population: 40 blocks with known totals; sample 8 blocks.
	rng := rand.New(rand.NewSource(23))
	blocks := make([]float64, 40)
	var truth float64
	for i := range blocks {
		blocks[i] = float64(rng.Intn(9))
		truth += blocks[i]
	}
	var est stats.Accumulator
	for trial := 0; trial < 6000; trial++ {
		idx := rng.Perm(40)[:8]
		sample := make([]float64, 8)
		for i, j := range idx {
			sample[i] = blocks[j]
		}
		est.Add(Cluster(sample, 40).Value)
	}
	if math.Abs(est.Mean()-truth) > truth*0.03+1 {
		t.Errorf("cluster mean estimate %.1f, want ~%.1f", est.Mean(), truth)
	}
}

func TestPointSpaceCluster(t *testing.T) {
	e := PointSpaceCluster(30, 1000, 1e8)
	if e.Value != 3e6 {
		t.Errorf("estimate = %g, want 3e6", e.Value)
	}
	if e.Variance <= 0 {
		t.Error("variance should be positive")
	}
	if e := PointSpaceCluster(0, 0, 1e8); e.Value != 0 || e.Variance != 0 {
		t.Errorf("no points evaluated: %+v", e)
	}
	// Full coverage: zero variance.
	if e := PointSpaceCluster(5, 100, 100); e.Variance != 0 {
		t.Error("full point coverage variance should be 0")
	}
}

func TestGoodmanExactOnTinyCase(t *testing.T) {
	// Population N=3 with classes {2,1} (D=2), sample n=2. Enumerating
	// the three equally likely samples must average to exactly 2.
	// Samples: {a1,a2} -> f2=1; {a1,b},{a2,b} -> f1=2.
	e1, ok1 := Goodman(3, 2, map[int]int{2: 1})
	e2, ok2 := Goodman(3, 2, map[int]int{1: 2})
	if !ok1 || !ok2 {
		t.Fatalf("tiny Goodman unstable: %v %v", ok1, ok2)
	}
	mean := (e1 + 2*e2) / 3
	if math.Abs(mean-2) > 1e-9 {
		t.Errorf("E[Goodman] = %g, want 2 (unbiasedness)", mean)
	}
}

func TestGoodmanUnbiasedBySimulation(t *testing.T) {
	// Population of N=60 elements in D=20 classes of size 3; n=30 is a
	// large sampling fraction, where Goodman is stable.
	const N, D, size, n = 60, 20, 3, 30
	pop := make([]int, N)
	for i := range pop {
		pop[i] = i / size
	}
	rng := rand.New(rand.NewSource(31))
	var acc stats.Accumulator
	unstable := 0
	for trial := 0; trial < 4000; trial++ {
		rng.Shuffle(N, func(i, j int) { pop[i], pop[j] = pop[j], pop[i] })
		counts := map[int]int{}
		for i := 0; i < n; i++ {
			counts[pop[i]]++
		}
		freq := map[int]int{}
		for _, c := range counts {
			freq[c]++
		}
		est, ok := Goodman(N, n, freq)
		if !ok {
			unstable++
			continue
		}
		acc.Add(est)
	}
	if unstable > 400 {
		t.Errorf("Goodman unstable in %d/4000 trials at 50%% fraction", unstable)
	}
	if math.Abs(acc.Mean()-D) > 1 {
		t.Errorf("E[Goodman] = %.2f, want ~%d", acc.Mean(), D)
	}
}

func TestGoodmanEdgeCases(t *testing.T) {
	if e, ok := Goodman(100, 0, nil); e != 0 || !ok {
		t.Error("empty sample should be 0, stable")
	}
	if e, ok := Goodman(100, 10, map[int]int{}); e != 0 || !ok {
		t.Error("no classes should be 0, stable")
	}
	// Census returns exactly d.
	if e, ok := Goodman(50, 50, map[int]int{5: 10}); e != 10 || !ok {
		t.Errorf("census Goodman = %g, %v", e, ok)
	}
}

func TestGoodmanDetectsInstability(t *testing.T) {
	// Tiny sampling fraction with multi-occurrence classes: the i=2 term
	// C(N-n+1, 2)/C(n, 2) explodes.
	_, ok := Goodman(1_000_000, 10, map[int]int{1: 5, 2: 2})
	if ok {
		t.Error("expected instability at microscopic sampling fraction")
	}
}

func TestGoodmanRevised(t *testing.T) {
	// No singletons: estimate is d.
	if e := GoodmanRevised(1000, 100, map[int]int{2: 10}); e != 10 {
		t.Errorf("no singletons: %g, want 10", e)
	}
	// All singletons: estimate approaches N.
	if e := GoodmanRevised(1000, 100, map[int]int{1: 100}); math.Abs(e-1000) > 1e-9 {
		t.Errorf("all singletons: %g, want 1000", e)
	}
	// Census: d.
	if e := GoodmanRevised(100, 100, map[int]int{1: 7}); e != 7 {
		t.Errorf("census: %g", e)
	}
	// Empty: 0.
	if e := GoodmanRevised(100, 10, nil); e != 0 {
		t.Errorf("empty: %g", e)
	}
	// Clamped to [d, N].
	e := GoodmanRevised(50, 10, map[int]int{1: 9, 2: 1})
	if e < 10 || e > 50 {
		t.Errorf("estimate %g outside [d, N]", e)
	}
}

func TestGoodmanRevisedConsistency(t *testing.T) {
	// As the sampling fraction grows on a fixed population, the revised
	// estimator's error shrinks.
	const N, D, size = 3000, 300, 10
	pop := make([]int, N)
	for i := range pop {
		pop[i] = i / size
	}
	rng := rand.New(rand.NewSource(5))
	errAt := func(n int) float64 {
		var acc stats.Accumulator
		for trial := 0; trial < 300; trial++ {
			rng.Shuffle(N, func(i, j int) { pop[i], pop[j] = pop[j], pop[i] })
			counts := map[int]int{}
			for i := 0; i < n; i++ {
				counts[pop[i]]++
			}
			freq := map[int]int{}
			for _, c := range counts {
				freq[c]++
			}
			acc.Add(math.Abs(GoodmanRevised(N, int64(n), freq) - D))
		}
		return acc.Mean()
	}
	small, large := errAt(150), errAt(1500)
	if large >= small {
		t.Errorf("revised estimator error did not shrink: %.1f -> %.1f", small, large)
	}
}

func TestDistinctCount(t *testing.T) {
	if e := DistinctCount(100, 0, nil); e.Value != 0 {
		t.Error("empty distinct count should be 0")
	}
	e := DistinctCount(1000, 100, map[int]int{1: 50, 2: 25})
	if e.Value <= 0 || e.Value > 1000 {
		t.Errorf("distinct estimate = %g", e.Value)
	}
	if e.Variance <= 0 {
		t.Error("distinct variance should be positive away from census")
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{Value: 100, Variance: 25}
	if e.StdErr() != 5 {
		t.Errorf("StdErr = %g", e.StdErr())
	}
	iv := e.Interval(0.95)
	if math.Abs(iv.Half-5*1.959963984540054) > 1e-6 {
		t.Errorf("interval half = %g", iv.Half)
	}
	if rhw := e.RelHalfWidth(0.95); math.Abs(rhw-iv.Half/100) > 1e-12 {
		t.Errorf("RelHalfWidth = %g", rhw)
	}
	zero := Estimate{Value: 0, Variance: 25}
	if !math.IsInf(zero.RelHalfWidth(0.95), 1) {
		t.Error("zero estimate with variance should have infinite rel width")
	}
	if (Estimate{}).RelHalfWidth(0.95) != 0 {
		t.Error("zero estimate, zero variance rel width should be 0")
	}
	if (Estimate{Value: 1, Variance: -3}).StdErr() != 0 {
		t.Error("negative variance StdErr should be 0")
	}
}

func TestCombine(t *testing.T) {
	terms := []TermEstimate{
		{Sign: 1, Estimate: Estimate{Value: 100, Variance: 4}},
		{Sign: 1, Estimate: Estimate{Value: 50, Variance: 1}},
		{Sign: -1, Estimate: Estimate{Value: 30, Variance: 2}},
	}
	e := Combine(terms)
	if e.Value != 120 {
		t.Errorf("combined value = %g, want 120", e.Value)
	}
	if e.Variance != 7 {
		t.Errorf("combined variance = %g, want 7", e.Variance)
	}
	if c := Combine(nil); c.Value != 0 || c.Variance != 0 {
		t.Error("empty combine should be zero")
	}
}
