package estimator

import (
	"math"
	"math/rand"
	"testing"

	"tcq/internal/stats"
)

func TestSumSampleAccumulation(t *testing.T) {
	var s SumSample
	s.Add(3)
	s.Add(4)
	if s.Count != 2 || s.Sum != 7 || s.SumSq != 25 {
		t.Errorf("sample = %+v", s)
	}
	var o SumSample
	o.Points = 10
	o.Add(1)
	s.Merge(o)
	if s.Count != 3 || s.Sum != 8 || s.SumSq != 26 || s.Points != 10 {
		t.Errorf("merged = %+v", s)
	}
}

func TestPointSpaceSumCensusIsExact(t *testing.T) {
	// Census: every point covered; the estimate must equal the true sum.
	var s SumSample
	s.Points = 100
	truth := 0.0
	for i := 0; i < 30; i++ {
		v := float64(i * 3)
		s.Add(v)
		truth += v
	}
	e := PointSpaceSum(s, 100)
	if math.Abs(e.Value-truth) > 1e-9 {
		t.Errorf("census sum = %g, want %g", e.Value, truth)
	}
	if e.Variance != 0 {
		t.Errorf("census variance = %g, want 0", e.Variance)
	}
}

func TestPointSpaceSumEmpty(t *testing.T) {
	if e := PointSpaceSum(SumSample{}, 100); e.Value != 0 || e.Variance != 0 {
		t.Errorf("empty sample: %+v", e)
	}
}

func TestPointSpaceSumUnbiasedBySimulation(t *testing.T) {
	// Population: 1,000 points; 200 are "output" points with values;
	// estimate from repeated samples of 100 points.
	const N, K, m = 1000, 200, 100
	vals := make([]float64, N)
	truth := 0.0
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < K; i++ {
		vals[i] = float64(1 + rng.Intn(50))
		truth += vals[i]
	}
	var est, varEst stats.Accumulator
	for trial := 0; trial < 3000; trial++ {
		rng.Shuffle(N, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		var s SumSample
		s.Points = m
		for i := 0; i < m; i++ {
			if vals[i] != 0 {
				s.Add(vals[i])
			}
		}
		e := PointSpaceSum(s, N)
		est.Add(e.Value)
		varEst.Add(e.Variance)
	}
	if math.Abs(est.Mean()-truth)/truth > 0.03 {
		t.Errorf("mean estimate %.1f, want ~%.1f", est.Mean(), truth)
	}
	// The variance estimator should track the empirical variance.
	ratio := varEst.Mean() / est.Var()
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("variance estimator ratio %.3f (est %.0f, empirical %.0f)",
			ratio, varEst.Mean(), est.Var())
	}
}

func TestRatio(t *testing.T) {
	avg := Ratio(Estimate{Value: 1000, Variance: 100}, Estimate{Value: 100, Variance: 4})
	if avg.Value != 10 {
		t.Errorf("ratio = %g, want 10", avg.Value)
	}
	// Var ≈ 100/100² + 1000²·4/100⁴ = 0.01 + 0.04 = 0.05.
	if math.Abs(avg.Variance-0.05) > 1e-12 {
		t.Errorf("ratio variance = %g, want 0.05", avg.Variance)
	}
	if z := Ratio(Estimate{Value: 5}, Estimate{}); z.Value != 0 {
		t.Error("zero denominator should give zero estimate")
	}
}
