// Span-timeline and SLO accounting: every response ends with a
// terminal spans event partitioning wire-to-wire wall time, admission
// wait is attributed (and grows under a saturated tenant window),
// spans survive a mid-stream drain, and /slo reconciles with the
// tcq_slo_* metric families. Run under -race by scripts/check.sh.
package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tcq"
	"tcq/internal/telemetry"
	"tcq/internal/wire"
)

// sumSpans folds a spans slice to its total duration.
func sumSpans(spans []wire.Span) time.Duration {
	var d time.Duration
	for _, sp := range spans {
		d += sp.Dur
	}
	return d
}

// TestSpansPartitionWall runs the same query serial and with four
// workers: both must return a request id and a terminal spans event
// whose spans exactly partition the reported wall time (the marks are
// contiguous by construction), with one eval span per stage.
func TestSpansPartitionWall(t *testing.T) {
	db := testDB(t)
	_, cl, _ := startServer(t, db, Config{})

	for _, parallel := range []int{1, 4} {
		res, err := cl.Query(context.Background(), wire.QueryRequest{
			Tenant: "alice", SQL: testSQL, Quota: 5 * time.Second,
			Seed: 7, Stream: true, Parallel: parallel,
		}, nil)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if res.RequestID == "" {
			t.Fatalf("parallel=%d: result carries no request id", parallel)
		}
		if len(res.Spans) == 0 || res.Wall <= 0 {
			t.Fatalf("parallel=%d: no terminal spans event (spans=%d wall=%v)", parallel, len(res.Spans), res.Wall)
		}
		if got := sumSpans(res.Spans); got != res.Wall {
			t.Fatalf("parallel=%d: spans sum %v != wall %v", parallel, got, res.Wall)
		}
		evals := 0
		for _, sp := range res.Spans {
			if sp.Name == telemetry.SpanEval {
				evals++
			}
		}
		if evals != res.Stages {
			t.Fatalf("parallel=%d: %d eval spans for %d stages", parallel, evals, res.Stages)
		}
		// The anatomy must include the serving-side phases too.
		want := map[string]bool{
			telemetry.SpanDecode: false, telemetry.SpanAdmissionWait: false,
			telemetry.SpanPlan: false, telemetry.SpanFinalize: false,
			telemetry.SpanStreamWrite: false,
		}
		for _, sp := range res.Spans {
			if _, ok := want[sp.Name]; ok {
				want[sp.Name] = true
			}
		}
		for name, seen := range want {
			if !seen {
				t.Fatalf("parallel=%d: span %q missing from %v", parallel, name, res.Spans)
			}
		}
	}
}

// TestNonStreamingSpansEvent checks the two-line NDJSON shape of a
// non-streaming response: a result line then a spans line, both
// stamped with the same request id (also echoed in the header).
func TestNonStreamingSpansEvent(t *testing.T) {
	db := testDB(t)
	_, cl, _ := startServer(t, db, Config{})

	body, _ := json.Marshal(wire.QueryRequest{SQL: testSQL, Quota: time.Second, Seed: 3})
	resp, err := http.Post(cl.BaseURL+"/v1/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	headerID := resp.Header.Get(wire.RequestIDHeader)
	if headerID == "" {
		t.Fatal("response carries no X-Tcq-Request-Id header")
	}
	var events []wire.Event
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var ev wire.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 || events[0].Event != "result" || events[1].Event != "spans" {
		t.Fatalf("want [result spans], got %d events: %+v", len(events), events)
	}
	for _, ev := range events {
		if ev.RequestID != headerID {
			t.Fatalf("event %s request id %q != header %q", ev.Event, ev.RequestID, headerID)
		}
	}
	if sumSpans(events[1].Spans) != events[1].Wall {
		t.Fatalf("spans sum %v != wall %v", sumSpans(events[1].Spans), events[1].Wall)
	}
}

// TestAdmissionWaitSpanGrows saturates a tenant's window, then sends a
// request under an AdmitWait budget: the request must block in the
// gate until the held capacity releases, and the spans event must
// attribute that wait to admission_wait with a retry count.
func TestAdmissionWaitSpanGrows(t *testing.T) {
	db := testDB(t, tcq.WithRealClock(), tcq.WithTelemetry(64))
	srv, cl, _ := startServer(t, db, Config{
		TenantWindow: time.Second,
		AdmitWait:    5 * time.Second,
	})

	// Fill the whole window so the next admission is at-capacity.
	release, err := srv.gate("busy").Admit(999, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hold := 150 * time.Millisecond
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(hold)
		release()
	}()

	res, err := cl.Query(context.Background(), wire.QueryRequest{
		Tenant: "busy", SQL: testSQL, Quota: 500 * time.Millisecond, Seed: 2,
	}, nil)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var wait wire.Span
	for _, sp := range res.Spans {
		if sp.Name == telemetry.SpanAdmissionWait {
			wait = sp
		}
	}
	if wait.Name == "" {
		t.Fatalf("no admission_wait span in %+v", res.Spans)
	}
	if wait.Dur < hold/2 {
		t.Fatalf("admission_wait %v did not grow while the window was saturated (held %v)", wait.Dur, hold)
	}
	if wait.Retries < 1 {
		t.Fatalf("admission_wait records %d retries, want >= 1", wait.Retries)
	}
	// An unsaturated request on another tenant stays near zero.
	res2, err := cl.Query(context.Background(), wire.QueryRequest{
		Tenant: "idle", SQL: testSQL, Quota: 500 * time.Millisecond, Seed: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range res2.Spans {
		if sp.Name == telemetry.SpanAdmissionWait && sp.Dur > wait.Dur/2 {
			t.Fatalf("idle tenant admission_wait %v is not small vs saturated %v", sp.Dur, wait.Dur)
		}
	}
}

// TestDrainStillEmitsSpans drains the server while a stream is
// mid-flight: the stream must still deliver its result AND its
// terminal spans event (the drain closes admission, not running
// responses).
func TestDrainStillEmitsSpans(t *testing.T) {
	db := testDB(t, tcq.WithRealClock(), tcq.WithTelemetry(64))
	srv, cl, _ := startServer(t, db, Config{})

	firstProgress := make(chan struct{})
	var once sync.Once
	type out struct {
		res *wire.Event
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := cl.Query(context.Background(), wire.QueryRequest{
			Tenant: "alice", SQL: testSQL, Quota: 500 * time.Millisecond,
			Seed: 5, Stream: true,
		}, func(wire.Event) { once.Do(func() { close(firstProgress) }) })
		done <- out{res, err}
	}()

	select {
	case <-firstProgress:
	case <-time.After(10 * time.Second):
		t.Fatal("no progress before drain")
	}
	srv.Drain()
	o := <-done
	if o.err != nil {
		t.Fatalf("stream cut by drain: %v", o.err)
	}
	if o.res.RequestID == "" || len(o.res.Spans) == 0 {
		t.Fatalf("drained stream lost its spans event: id=%q spans=%d", o.res.RequestID, len(o.res.Spans))
	}
	if sumSpans(o.res.Spans) != o.res.Wall {
		t.Fatalf("spans sum %v != wall %v", sumSpans(o.res.Spans), o.res.Wall)
	}
}

// TestSLOReconciles drives hits on one tenant and a guaranteed miss on
// another (a 1ns quota on a real clock), then checks that /slo's
// per-tenant accounting matches the tcq_slo_* families on /metrics,
// that the miss carries a dominant-span attribution, and that the
// flight recorder captured the miss under "slo-miss".
func TestSLOReconciles(t *testing.T) {
	db := testDB(t, tcq.WithRealClock(), tcq.WithTelemetry(64), tcq.WithCalibration(8))
	_, cl, _ := startServer(t, db, Config{})

	for i := 0; i < 3; i++ {
		if _, err := cl.Query(context.Background(), wire.QueryRequest{
			Tenant: "good", SQL: testSQL, Quota: 30 * time.Second, Seed: int64(i + 1),
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// 1ns of quota cannot cover even one stage wire-to-wire.
	if _, err := cl.Query(context.Background(), wire.QueryRequest{
		Tenant: "bad", SQL: testSQL, Quota: time.Nanosecond, Seed: 9,
	}, nil); err != nil {
		t.Fatal(err)
	}

	var rep telemetry.SLOReport
	getJSON(t, cl.BaseURL+"/slo", &rep)
	byTenant := map[string]telemetry.TenantSLO{}
	for _, ten := range rep.Tenants {
		byTenant[ten.Tenant] = ten
	}
	if got := byTenant["good"]; got.Hits != 3 || got.Misses != 0 || got.BudgetBurn != 0 {
		t.Fatalf("good tenant SLO wrong: %+v", got)
	}
	bad := byTenant["bad"]
	if bad.Misses != 1 || bad.Hits != 0 {
		t.Fatalf("bad tenant SLO wrong: %+v", bad)
	}
	if bad.BudgetBurn <= 1 {
		t.Fatalf("bad tenant burn %v, want > 1 (missing faster than budget accrues)", bad.BudgetBurn)
	}
	dominant := ""
	for span, n := range bad.MissBySpan {
		if n > 0 {
			dominant = span
		}
	}
	if dominant == "" {
		t.Fatalf("miss carries no span attribution: %+v", bad)
	}

	// The metric families must tell the same story.
	resp, err := http.Get(cl.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		`tcq_slo_hits_total{tenant="good"} 3`,
		`tcq_slo_misses_total{tenant="bad"} 1`,
		`tcq_slo_miss_span_total{span="` + dominant + `"} 1`,
		`tcq_slo_budget_burn{tenant="good"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// The miss also landed in the flight recorder with attribution.
	recs := db.FlightRecords()
	found := false
	for _, rec := range recs {
		for _, r := range rec.Reasons {
			if r == "slo-miss" {
				found = true
				if !strings.HasPrefix(rec.Label, "bad/req-") {
					t.Fatalf("slo-miss capture label %q, want bad/req-*", rec.Label)
				}
				if !strings.HasPrefix(rec.Note, "dominant=") {
					t.Fatalf("slo-miss capture note %q, want dominant=<span>", rec.Note)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no slo-miss flight capture in %d records", len(recs))
	}
}

// getJSON fetches and decodes a JSON endpoint.
func getJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
