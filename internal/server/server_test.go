// Serving-path integration: streaming protocol shape, concurrent
// clients vs serial replay, typed rejection mapping, per-tenant metric
// sums and graceful drain — all exercised through real loopback HTTP
// (run under -race by scripts/check.sh).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tcq"
	"tcq/internal/client"
	"tcq/internal/telemetry"
	"tcq/internal/wire"
)

// testDB builds a deterministic single-relation database.
func testDB(t *testing.T, opts ...tcq.Option) *tcq.DB {
	t.Helper()
	if len(opts) == 0 {
		opts = []tcq.Option{tcq.WithSimulatedClock(1), tcq.WithTelemetry(64)}
	}
	db := tcq.Open(opts...)
	rel, err := db.CreateRelation("orders", []tcq.Column{
		{Name: "id", Type: tcq.Int},
		{Name: "amount", Type: tcq.Int},
	}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := rel.Insert(i, (i*7919+3)%5000); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// startServer runs a tcqd over db on loopback and returns the server,
// a client bound to it, and its lifecycle handle.
func startServer(t *testing.T, db *tcq.DB, cfg Config) (*Server, *client.Client, *telemetry.RunningServer) {
	t.Helper()
	cfg.DB = db
	s := New(cfg)
	rs, addr, err := s.Start(context.Background(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return s, client.New(addr, ""), rs
}

const testSQL = "SELECT COUNT(*) FROM orders WHERE amount < 500"

func TestStreamingQueryEvents(t *testing.T) {
	db := testDB(t)
	_, cl, _ := startServer(t, db, Config{})

	var progress []wire.Event
	res, err := cl.Query(context.Background(), wire.QueryRequest{
		Tenant: "alice", SQL: testSQL,
		Quota: (5 * time.Second), Seed: 7, Stream: true,
	}, func(ev wire.Event) { progress = append(progress, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Event != "result" || res.Kind != "count" {
		t.Fatalf("terminal event wrong: %+v", res)
	}
	if len(progress) < 1 {
		t.Fatal("no progress events streamed")
	}
	for i, ev := range progress {
		if ev.Stage != i+1 {
			t.Errorf("progress %d: stage %d, want %d (monotonic per-stage events)", i, ev.Stage, i+1)
		}
		if ev.Interval <= 0 || ev.Estimate <= 0 {
			t.Errorf("progress %d missing estimate±CI: %+v", i, ev)
		}
	}
	// The last progress event and the result agree with a direct
	// engine run on a twin DB — the server added no execution path.
	twin := testDB(t)
	want, err := twin.EstimateSQL(testSQL, tcq.EstimateOptions{Quota: 5 * time.Second, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want.Value || res.Interval != want.Estimate.Interval || res.Stages != want.Estimate.Stages {
		t.Errorf("server result diverged from direct run:\nserver %+v\ndirect %+v", res, want.Estimate)
	}
	if last := progress[len(progress)-1]; last.Estimate != want.Value {
		t.Errorf("final progress estimate %v, want %v", last.Estimate, want.Value)
	}
}

func TestNonStreamingAndExact(t *testing.T) {
	db := testDB(t)
	_, cl, _ := startServer(t, db, Config{})

	res, err := cl.Query(context.Background(), wire.QueryRequest{SQL: testSQL, Quota: 5 * time.Second, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Event != "result" || res.Value <= 0 || res.Stages < 1 {
		t.Fatalf("non-streaming result wrong: %+v", res)
	}

	exact, err := cl.Query(context.Background(), wire.QueryRequest{SQL: testSQL, Exact: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact || exact.Value != 500 {
		t.Fatalf("exact result wrong: %+v", exact)
	}

	ra, err := cl.Query(context.Background(), wire.QueryRequest{
		RA: "select(orders, amount < 500)", Quota: 5 * time.Second, Seed: 3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Kind != "count" || ra.Estimate <= 0 {
		t.Fatalf("RA result wrong: %+v", ra)
	}
}

// N concurrent streaming clients must each get exactly the stream a
// serial replay of the same (seed, query) produces — per-query
// sessions make concurrency invisible — and per-tenant metric sums
// must account for every request.
func TestConcurrentClientsMatchSerialReplay(t *testing.T) {
	db := testDB(t)
	srv, cl, _ := startServer(t, db, Config{TenantWindow: time.Hour})

	const n = 24
	type outcome struct {
		res      *wire.Event
		progress []wire.Event
		err      error
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var prog []wire.Event
			res, err := cl.Query(context.Background(), wire.QueryRequest{
				Tenant: fmt.Sprintf("tenant%d", i%3),
				SQL:    testSQL,
				Quota:  5 * time.Second,
				Seed:   int64(i + 1),
				Stream: true,
			}, func(ev wire.Event) { prog = append(prog, ev) })
			results[i] = outcome{res, prog, err}
		}(i)
	}
	wg.Wait()

	// Serial replay on a twin DB: estimates must be bit-identical.
	twin := testDB(t)
	for i, got := range results {
		if got.err != nil {
			t.Fatalf("client %d: %v", i, got.err)
		}
		want, err := twin.EstimateSQL(testSQL, tcq.EstimateOptions{Quota: 5 * time.Second, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if got.res.Value != want.Value || got.res.Interval != want.Estimate.Interval ||
			got.res.Stages != want.Estimate.Stages || got.res.Blocks != want.Estimate.Blocks {
			t.Errorf("client %d diverged from serial replay:\nconcurrent %+v\nserial     %+v", i, got.res, want.Estimate)
		}
		if len(got.progress) != want.Estimate.Stages {
			t.Errorf("client %d: %d progress events, want %d (one per stage)", i, len(got.progress), want.Estimate.Stages)
		}
	}

	// Per-tenant sums: the three tenants split 24 requests 8/8/8, on
	// both the server registry and the engine's tenant counters.
	snap := srv.Registry().Snapshot()
	var total int64
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("server_requests|tenant=tenant%d", i)
		if got := snap.Counters[k]; got != 8 {
			t.Errorf("%s = %d, want 8", k, got)
		}
		total += snap.Counters[k]
	}
	if total != n {
		t.Errorf("per-tenant request sum %d, want %d", total, n)
	}
	dbSnap := db.Metrics()
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("tenant_queries|tenant=tenant%d", i)
		if got := dbSnap.Counters[k]; got != 8 {
			t.Errorf("%s = %d, want 8", k, got)
		}
	}
	if got := snap.Counters["txns_admitted"]; got != n {
		t.Errorf("txns_admitted = %d, want %d", got, n)
	}
}

func TestRejectionMapping(t *testing.T) {
	db := testDB(t)
	srv, cl, _ := startServer(t, db, Config{
		MaxQuota: 10 * time.Second, TenantWindow: 8 * time.Second, Slack: 0.05,
	})
	ctx := context.Background()

	// Infeasible: quota beyond the server max → 422, not retryable.
	_, err := cl.Query(ctx, wire.QueryRequest{SQL: testSQL, Quota: time.Minute}, nil)
	se, ok := err.(*client.ServerError)
	if !ok || se.Status != http.StatusUnprocessableEntity || se.Reason != "infeasible" {
		t.Fatalf("over-max quota: %v, want 422 infeasible", err)
	}
	if se.Temporary() {
		t.Error("infeasible rejection reports Temporary")
	}

	// At capacity: fill the tenant window with an in-flight stream,
	// then an identical request must get 429 + Retry-After.
	gate := srv.gate("busy")
	release, err := gate.Admit(999, 6*time.Second, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Query(ctx, wire.QueryRequest{Tenant: "busy", SQL: testSQL, Quota: 6 * time.Second}, nil)
	se, ok = err.(*client.ServerError)
	if !ok || se.Status != http.StatusTooManyRequests || se.Reason != "at-capacity" {
		t.Fatalf("at-capacity: %v, want 429", err)
	}
	if !se.Temporary() || se.RetryAfter <= 0 {
		t.Errorf("429 should be temporary with a retry hint: %+v", se)
	}
	release()
	// Capacity freed: the same request is admitted.
	if _, err := cl.Query(ctx, wire.QueryRequest{Tenant: "busy", SQL: testSQL, Quota: 6 * time.Second, Seed: 2}, nil); err != nil {
		t.Fatalf("after release: %v", err)
	}

	// Draining: every new query gets 503 closed.
	srv.Drain()
	_, err = cl.Query(ctx, wire.QueryRequest{SQL: testSQL, Quota: time.Second}, nil)
	se, ok = err.(*client.ServerError)
	if !ok || se.Status != http.StatusServiceUnavailable || se.Reason != "closed" {
		t.Fatalf("draining: %v, want 503 closed", err)
	}
	if h, err := cl.Health(ctx); err != nil || h.Status != "draining" {
		t.Errorf("healthz while draining = %+v, %v", h, err)
	}

	// Malformed requests are 400 bad-request.
	for _, bad := range []wire.QueryRequest{
		{},                              // neither sql nor ra
		{SQL: testSQL, RA: "select(r)"}, // both
		{SQL: testSQL, Strategy: "wat"}, // unknown strategy
		{SQL: "DELETE FROM orders"},     // unsupported statement
	} {
		_, err := cl.Query(ctx, bad, nil)
		if se, ok := err.(*client.ServerError); !ok ||
			(se.Status != http.StatusBadRequest && se.Status != http.StatusServiceUnavailable) {
			t.Errorf("bad request %+v: %v", bad, err)
		}
	}
}

// A drained server must finish in-flight streams before the listener
// closes: the acceptance criterion "zero dropped in-flight streams on
// drain". Uses a real clock so the query genuinely spans the drain.
func TestDrainFinishesInFlightStreams(t *testing.T) {
	db := testDB(t, tcq.WithRealClock(), tcq.WithTelemetry(16))
	srv, cl, rs := startServer(t, db, Config{})

	started := make(chan struct{})
	type done struct {
		res  *wire.Event
		prog int
		err  error
	}
	finished := make(chan done, 1)
	go func() {
		var prog int
		res, err := cl.Query(context.Background(), wire.QueryRequest{
			SQL: testSQL, Quota: 500 * time.Millisecond, Stream: true,
		}, func(wire.Event) {
			prog++
			select {
			case <-started:
			default:
				close(started)
			}
		})
		finished <- done{res, prog, err}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never started")
	}

	// Drain: admission closes first, then the HTTP server drains its
	// connections. The in-flight stream must complete normally.
	srv.Drain()
	sh, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rs.Shutdown(sh); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	d := <-finished
	if d.err != nil {
		t.Fatalf("in-flight stream dropped on drain: %v", d.err)
	}
	if d.res == nil || d.res.Event != "result" || d.prog < 1 {
		t.Fatalf("drained stream incomplete: %+v after %d progress events", d.res, d.prog)
	}
}

func TestSSEFraming(t *testing.T) {
	db := testDB(t)
	_, cl, _ := startServer(t, db, Config{})

	body, _ := json.Marshal(wire.QueryRequest{SQL: testSQL, Quota: 5 * time.Second, Seed: 5, Stream: true})
	req, err := http.NewRequest(http.MethodPost, cl.BaseURL+"/v1/query", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "data: ") {
			frames++
			var ev wire.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Errorf("bad SSE frame %q: %v", line, err)
			}
		}
	}
	if frames < 2 {
		t.Errorf("want >= 2 SSE frames (progress + result), got %d:\n%s", frames, raw)
	}
	if !strings.Contains(string(raw), `"event":"result"`) {
		t.Errorf("SSE stream missing result frame:\n%s", raw)
	}
}

func TestRelationsHealthAndTelemetryMounted(t *testing.T) {
	db := testDB(t)
	_, cl, _ := startServer(t, db, Config{})
	ctx := context.Background()

	rels, err := cl.Relations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0].Name != "orders" || rels[0].Tuples != 5000 || rels[0].Blocks <= 0 {
		t.Fatalf("relations wrong: %+v", rels)
	}
	h, err := cl.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %+v, %v", h, err)
	}

	// One query, then the telemetry surfaces must show it: per-tenant
	// series on /metrics, labeled history on /history?label=.
	if _, err := cl.Query(ctx, wire.QueryRequest{Tenant: "alice", SQL: testSQL, Quota: 5 * time.Second}, nil); err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get(cl.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		`tcq_server_requests_total{tenant="alice"} 1`,
		`tcq_tenant_queries_total{tenant="alice"} 1`,
		"tcq_txns_admitted_total 1",
		"tcq_queries_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	hist := get("/history?label=alice")
	if !strings.Contains(hist, `"label": "alice/req-`) {
		t.Errorf("/history?label=alice missing the tenant's query:\n%s", hist)
	}
}
