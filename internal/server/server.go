// Package server implements tcqd: the multi-tenant network front door
// of the time-constrained query engine. It accepts SQL/RA aggregate
// queries over HTTP/JSON (internal/wire), routes every request through
// a per-tenant sched.Controller admission gate — per-tenant time
// windows, typed rejections mapped to 422 / 429 + Retry-After / 503 —
// and streams progressive per-stage estimate±CI events as NDJSON or
// SSE by riding a telemetry.Stream on the query's tracer chain.
//
// The server is a composition of existing deterministic pieces
// (per-query sessions, the admission controller, the tracer chain),
// not a new execution path: under a simulated clock, equal requests
// with equal seeds produce byte-identical response streams, which is
// what the check.sh loopback smoke golden diffs.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tcq"
	"tcq/internal/calib"
	"tcq/internal/sched"
	"tcq/internal/telemetry"
	"tcq/internal/trace"
	"tcq/internal/wire"
)

// Config configures a Server.
type Config struct {
	// DB is the database to serve (required).
	DB *tcq.DB
	// DefaultQuota applies to requests that set no quota; default 2s.
	DefaultQuota time.Duration
	// MaxQuota bounds any request's quota and is the worst-case charge
	// for exact queries (whose duration is unknown a priori); default
	// 30s.
	MaxQuota time.Duration
	// TenantWindow is each tenant's admission budget: the worst-case
	// work a tenant may have in flight at once. The classic
	// uniprocessor test admits a request iff the tenant's committed
	// worst-case work plus the request's fits inside the window;
	// default 60s.
	TenantWindow time.Duration
	// Slack is the per-query overrun allowance folded into the
	// worst-case charge (hard deadlines can overshoot by one poll
	// granule); default 0.05.
	Slack float64
	// AdmitWait is how long an at-capacity request may block in the
	// admission gate (re-testing as committed work drains) before the
	// 429 is returned; 0 rejects immediately. The time spent is
	// attributed to the request's admission_wait span either way.
	AdmitWait time.Duration
	// SLOTarget is the per-tenant deadline-hit objective driving the
	// /slo error-budget burn gauge; default 0.99.
	SLOTarget float64
}

// Server is a tcqd instance: per-tenant admission gates over one DB,
// plus the HTTP handlers. Create with New, mount Handler (or Start),
// call Drain before shutdown.
type Server struct {
	cfg Config
	// reg holds server-side metrics (per-tenant request counters and
	// latency histograms, admission counters written by the gates),
	// merged with the DB's engine metrics on /metrics.
	reg *trace.Registry
	// slo tracks per-tenant deadline outcomes (hits, misses with span
	// attribution, infeasible rejections) for /slo and the tcq_slo_*
	// metric families.
	slo *telemetry.SLO

	mu    sync.Mutex
	gates map[string]*sched.Controller

	reqID    atomic.Int64
	draining atomic.Bool
}

// New creates a Server over cfg.DB.
func New(cfg Config) *Server {
	if cfg.DefaultQuota <= 0 {
		cfg.DefaultQuota = 2 * time.Second
	}
	if cfg.MaxQuota <= 0 {
		cfg.MaxQuota = 30 * time.Second
	}
	if cfg.TenantWindow <= 0 {
		cfg.TenantWindow = 60 * time.Second
	}
	if cfg.Slack <= 0 {
		cfg.Slack = 0.05
	}
	if cfg.SLOTarget <= 0 || cfg.SLOTarget >= 1 {
		cfg.SLOTarget = 0.99
	}
	reg := trace.NewRegistry()
	return &Server{
		cfg:   cfg,
		reg:   reg,
		slo:   telemetry.NewSLO(cfg.SLOTarget, reg),
		gates: make(map[string]*sched.Controller),
	}
}

// Registry exposes the server-side metrics registry (the load harness
// commits its latency histograms here so they render on /metrics).
func (s *Server) Registry() *trace.Registry { return s.reg }

// gate returns (creating on first use) the tenant's admission
// controller. One Controller per tenant is the per-tenant time-quota
// gate: Admit charges each request's worst case against the tenant's
// window.
func (s *Server) gate(tenant string) *sched.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gates[tenant]
	if g == nil {
		g = sched.NewController(s.cfg.DB.Store(), sched.ControllerOptions{
			Options: sched.Options{Policy: sched.QuotaQueries, Metrics: s.reg, Seed: 1},
		})
		s.gates[tenant] = g
	}
	return g
}

// Drain stops admission (healthz reports draining, new queries get
// 503) and blocks until every admitted request has released its
// reservation — i.e. every in-flight stream has finished. Pair with
// RunningServer.Shutdown, which drains the HTTP connections
// themselves.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.mu.Lock()
	gates := make([]*sched.Controller, 0, len(s.gates))
	for _, g := range s.gates {
		gates = append(gates, g)
	}
	s.mu.Unlock()
	for _, g := range gates {
		g.Drain()
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler builds the tcqd HTTP handler:
//
//	POST /v1/query     run one aggregate query (wire.QueryRequest);
//	                   stream=true yields NDJSON progress events
//	                   (SSE under Accept: text/event-stream)
//	GET  /v1/relations relation catalog (names + geometry)
//	GET  /healthz      liveness + drain state
//	plus every telemetry endpoint (/metrics, /queries, /history,
//	/calibration, /debug/...) over the merged DB + server registries.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/relations", s.handleRelations)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.Handle("/", telemetry.Handler(serverSource{s}))
	return mux
}

// Start binds addr and serves Handler under the shared telemetry
// lifecycle: cancelling ctx drains gracefully, or manage the returned
// server with Close/Shutdown.
func (s *Server) Start(ctx context.Context, addr string) (*telemetry.RunningServer, string, error) {
	return telemetry.ServeHandler(ctx, s.Handler(), addr)
}

// handleHealth serves /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	tenants := len(s.gates)
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(wire.Health{Status: status, Tenants: tenants}) //nolint:errcheck
}

// handleRelations serves /v1/relations.
func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	names := s.cfg.DB.Relations()
	sort.Strings(names)
	resp := wire.RelationsResponse{Relations: make([]wire.RelationInfo, 0, len(names))}
	for _, n := range names {
		rel, err := s.cfg.DB.Relation(n)
		if err != nil {
			continue
		}
		resp.Relations = append(resp.Relations, wire.RelationInfo{
			Name: n, Tuples: rel.NumTuples(), Blocks: rel.NumBlocks(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// writeError sends a typed rejection/validation payload.
func writeError(w http.ResponseWriter, code int, resp wire.ErrorResponse) {
	if resp.RetryAfter > 0 {
		// Whole seconds, rounded up: a too-early retry is rejected again.
		secs := int64(math.Ceil(resp.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// rejectStatus maps an admission rejection to its HTTP status: 422 for
// infeasible (retry is pointless), 429 + Retry-After for at-capacity,
// 503 for a closed (draining) gate.
func rejectStatus(rej *sched.RejectionError) int {
	switch rej.Reason {
	case sched.RejectInfeasible:
		return http.StatusUnprocessableEntity
	case sched.RejectAtCapacity:
		return http.StatusTooManyRequests
	default:
		return http.StatusServiceUnavailable
	}
}

// parseStrategy maps the wire strategy slug to the engine kind.
func parseStrategy(s string) (tcq.StrategyKind, error) {
	switch s {
	case "", "one-at-a-time":
		return tcq.OneAtATime, nil
	case "single-interval":
		return tcq.SingleInterval, nil
	case "heuristic":
		return tcq.Heuristic, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

// handleQuery serves POST /v1/query. Every request gets a span
// timeline partitioning its wire-to-wire wall time (decode,
// admission_wait, plan, per-stage eval, finalize, stream_write, flush)
// and a server-assigned request id, echoed in the RequestIDHeader and
// on every terminal event; the timeline ships to the client as the
// terminal "spans" event and feeds per-tenant SLO accounting.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tl := telemetry.NewSpanTimeline()
	id := s.reqID.Add(1)
	reqID := fmt.Sprintf("req-%d", id)
	w.Header().Set(wire.RequestIDHeader, reqID)
	fail := func(code int, resp wire.ErrorResponse) {
		resp.RequestID = reqID
		writeError(w, code, resp)
	}
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, wire.ErrorResponse{Error: "POST required", Reason: "bad-request"})
		return
	}
	if s.draining.Load() {
		fail(http.StatusServiceUnavailable, wire.ErrorResponse{Error: "server draining", Reason: sched.RejectClosed.String()})
		return
	}
	var req wire.QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		fail(http.StatusBadRequest, wire.ErrorResponse{Error: "invalid request body: " + err.Error(), Reason: "bad-request"})
		return
	}
	if (req.SQL == "") == (req.RA == "") {
		fail(http.StatusBadRequest, wire.ErrorResponse{Error: "exactly one of sql or ra required", Reason: "bad-request"})
		return
	}
	strategy, err := parseStrategy(req.Strategy)
	if err != nil {
		fail(http.StatusBadRequest, wire.ErrorResponse{Error: err.Error(), Reason: "bad-request"})
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	quota := req.Quota
	if quota <= 0 {
		quota = s.cfg.DefaultQuota
	}
	if quota > s.cfg.MaxQuota {
		s.slo.Infeasible(tenant)
		fail(http.StatusUnprocessableEntity, wire.ErrorResponse{
			Error:  fmt.Sprintf("quota %v exceeds server maximum %v", quota, s.cfg.MaxQuota),
			Reason: sched.RejectInfeasible.String(),
		})
		return
	}
	tl.Mark(telemetry.SpanDecode, 0)

	// Admission: charge the request's worst case against the tenant's
	// window. Exact queries have no a-priori bound, so they are charged
	// the server maximum (the conservative choice the paper motivates:
	// with time-constrained queries the worst case is known, without
	// them it must be assumed).
	charge := quota
	if req.Exact {
		charge = s.cfg.MaxQuota
	}
	wcet := time.Duration(float64(charge) * (1 + s.cfg.Slack))
	release, retries, err := s.gate(tenant).AdmitWait(int(id), wcet, s.cfg.TenantWindow, s.cfg.AdmitWait)
	waited := tl.MarkRetries(telemetry.SpanAdmissionWait, 0, retries)
	s.reg.Observe(telemetry.Labeled("admission_wait_seconds", "tenant", tenant), waited.Seconds())
	if err != nil {
		var rej *sched.RejectionError
		if errors.As(err, &rej) {
			s.reg.Add(telemetry.Labeled("server_rejects", "tenant", tenant), 1)
			if rej.Reason == sched.RejectInfeasible {
				s.slo.Infeasible(tenant)
			}
			fail(rejectStatus(rej), wire.ErrorResponse{
				Error: rej.Error(), Reason: rej.Reason.String(), RetryAfter: rej.RetryAfter,
			})
			return
		}
		fail(http.StatusInternalServerError, wire.ErrorResponse{Error: err.Error()})
		return
	}
	defer release()
	s.reg.Add(telemetry.Labeled("server_requests", "tenant", tenant), 1)
	defer func() {
		s.reg.Observe(telemetry.Labeled("request_seconds", "tenant", tenant), time.Since(start).Seconds())
	}()

	ten := s.cfg.DB.Tenant(tenant)
	opts := tcq.EstimateOptions{
		Quota:          quota,
		HardDeadline:   req.HardDeadline,
		Strategy:       strategy,
		DBeta:          req.DBeta,
		TargetRelError: req.TargetRelError,
		Confidence:     req.Confidence,
		Parallelism:    req.Parallel,
		Seed:           req.Seed,
		Label:          reqID,
		// The span tracer rides the chain first so each stage's eval
		// span closes before any stream write attributes its own time.
		// Both are read-only tracers (§6.2): the response stream is
		// byte-identical with or without them.
		Tracer: tl.Tracer(),
	}
	if !req.Exact && s.cfg.DB.CalibrationEnabled() {
		// Keep the full trace so an SLO miss can feed the flight
		// recorder with the stage-by-stage evidence.
		opts.CollectTrace = true
	}

	// Streaming: ride a telemetry.Stream on the query's tracer chain.
	// Its callback runs synchronously on this handler goroutine at each
	// stage boundary, so writing + flushing here is race-free.
	var st *streamWriter
	if req.Stream && !req.Exact {
		st = newStreamWriter(w, r, tl)
		opts.Tracer = trace.Combine(opts.Tracer, telemetry.NewStream(opts.Label, func(p tcq.QueryProgress, done bool) {
			if done {
				return // the result event carries the terminal state
			}
			st.send(wire.Event{
				Event:     "progress",
				Stage:     p.Stages,
				Estimate:  p.Estimate,
				StdErr:    p.StdErr,
				Interval:  p.Interval,
				Blocks:    p.Blocks,
				Elapsed:   p.Elapsed,
				SpentFrac: p.SpentFrac,
			})
		}))
	}

	// Label the request's goroutine for CPU profiles: /debug/pprof
	// samples segment by tenant and query, the cross-tenant fairness
	// lens the admission windows alone cannot give.
	var (
		ev   wire.Event
		est  *tcq.Estimate
		qerr error
	)
	qtext := req.SQL
	if qtext == "" {
		qtext = req.RA
	}
	pprof.Do(r.Context(), pprof.Labels("tenant", tenant, "query", truncateLabel(qtext, 64)), func(context.Context) {
		ev, est, qerr = s.execute(ten, req, opts)
	})
	if qerr != nil {
		if st != nil && st.started {
			st.send(wire.Event{Event: "error", Error: qerr.Error(), Reason: "query-failed", RequestID: reqID})
			st.send(spansEvent(reqID, tl))
			return
		}
		fail(http.StatusBadRequest, wire.ErrorResponse{Error: qerr.Error(), Reason: "bad-request"})
		return
	}
	if req.Exact {
		// Exact queries bypass the tracer chain; their evaluation is
		// one undifferentiated eval span.
		tl.Mark(telemetry.SpanEval, 0)
	}
	ev.RequestID = reqID

	// SLO accounting (time-constrained queries only): a miss is an
	// engine overspend or a wire-to-wire wall time past the quota; the
	// dominant span attributes it, and with calibration enabled the
	// full trace lands in the flight recorder under "slo-miss".
	if !req.Exact {
		if ev.Overspent || time.Since(start) > quota {
			dominant, _ := tl.Dominant()
			s.slo.Miss(tenant, dominant)
			if est != nil && est.Trace != nil {
				s.cfg.DB.CaptureFlight(tenant+"/"+reqID, "dominant="+dominant, []string{calib.ReasonSLOMiss}, *est.Trace)
			}
		} else {
			s.slo.Hit(tenant)
		}
	}

	if st != nil {
		st.send(ev)
		st.send(spansEvent(reqID, tl))
		return
	}
	// Non-streaming responses are still NDJSON: the result event then
	// the terminal spans event, one object per line.
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.Encode(ev) //nolint:errcheck
	tl.Mark(telemetry.SpanStreamWrite, 0)
	enc.Encode(spansEvent(reqID, tl)) //nolint:errcheck
}

// truncateLabel bounds a pprof label value.
func truncateLabel(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// spansEvent builds the terminal spans event from the request's
// timeline. Marks landing after the snapshot (the write of this very
// event) are not included; the coverage loss is one JSON encode.
func spansEvent(reqID string, tl *telemetry.SpanTimeline) wire.Event {
	spans := tl.Spans()
	out := make([]wire.Span, len(spans))
	for i, sp := range spans {
		out[i] = wire.Span{Name: sp.Name, Stage: sp.Stage, Start: sp.Start, Dur: sp.Dur, Retries: sp.Retries}
	}
	return wire.Event{Event: "spans", RequestID: reqID, Wall: tl.Wall(), Spans: out}
}

// execute runs the decoded query under the tenant view and builds the
// terminal result event; for time-constrained queries it also returns
// the engine estimate so the caller can inspect the collected trace.
func (s *Server) execute(ten *tcq.Tenant, req wire.QueryRequest, opts tcq.EstimateOptions) (wire.Event, *tcq.Estimate, error) {
	if req.Exact {
		if req.RA != "" {
			q, err := tcq.Parse(req.RA)
			if err != nil {
				return wire.Event{}, nil, err
			}
			n, err := ten.DB().Count(q)
			if err != nil {
				return wire.Event{}, nil, err
			}
			return wire.Event{Event: "result", Kind: "count", Value: float64(n), Exact: true}, nil, nil
		}
		res, err := ten.ExecSQL(req.SQL)
		if err != nil {
			return wire.Event{}, nil, err
		}
		ev := wire.Event{Event: "result", Kind: res.Kind, Value: res.Value, Exact: true}
		for _, g := range res.Groups {
			ev.Groups = append(ev.Groups, wire.Group{Key: g.Key, Value: g.Value})
		}
		return ev, nil, nil
	}

	var (
		res *tcq.SQLResult
		err error
	)
	if req.RA != "" {
		var q tcq.Query
		if q, err = tcq.Parse(req.RA); err != nil {
			return wire.Event{}, nil, err
		}
		var est *tcq.Estimate
		if est, err = ten.CountEstimate(q, opts); err != nil {
			return wire.Event{}, nil, err
		}
		res = &tcq.SQLResult{Kind: "count", Value: est.Value, Estimate: est}
	} else if res, err = ten.EstimateSQL(req.SQL, opts); err != nil {
		return wire.Event{}, nil, err
	}

	ev := wire.Event{Event: "result", Kind: res.Kind, Value: res.Value}
	if est := res.Estimate; est != nil {
		ev.Estimate = est.Value
		ev.StdErr = est.StdErr
		ev.Interval = est.Interval
		ev.Confidence = est.Confidence
		ev.Stages = est.Stages
		ev.Blocks = est.Blocks
		ev.Elapsed = est.Elapsed
		ev.Utilization = est.Utilization
		ev.Overspent = est.Overspent
		ev.Overrun = est.Overrun
		ev.StopReason = est.StopReason
	}
	for _, g := range res.Groups {
		ev.Groups = append(ev.Groups, wire.Group{Key: g.Key, Value: g.Value, StdErr: g.StdErr, Interval: g.Interval})
	}
	return ev, res.Estimate, nil
}

// streamWriter frames events as NDJSON (one JSON object per line) or,
// when the client asked via Accept: text/event-stream, as SSE data
// frames; each event is flushed immediately so clients see stages as
// they complete.
type streamWriter struct {
	w       http.ResponseWriter
	flush   http.Flusher
	tl      *telemetry.SpanTimeline
	sse     bool
	started bool
}

func newStreamWriter(w http.ResponseWriter, r *http.Request, tl *telemetry.SpanTimeline) *streamWriter {
	sw := &streamWriter{w: w, tl: tl}
	sw.flush, _ = w.(http.Flusher)
	sw.sse = strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	return sw
}

func (sw *streamWriter) send(ev wire.Event) {
	if !sw.started {
		sw.started = true
		if sw.sse {
			sw.w.Header().Set("Content-Type", "text/event-stream")
			sw.w.Header().Set("Cache-Control", "no-store")
		} else {
			sw.w.Header().Set("Content-Type", "application/x-ndjson")
		}
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	if sw.sse {
		fmt.Fprintf(sw.w, "data: %s\n\n", b)
	} else {
		sw.w.Write(append(b, '\n')) //nolint:errcheck // client gone mid-stream
	}
	sw.tl.Mark(telemetry.SpanStreamWrite, 0)
	if sw.flush != nil {
		sw.flush.Flush()
		sw.tl.Mark(telemetry.SpanFlush, 0)
	}
}

// serverSource merges the DB's telemetry source with the server's own
// metrics registry, so /metrics on tcqd shows engine counters,
// admission counters and per-tenant request series in one scrape.
type serverSource struct{ s *Server }

func (ss serverSource) Metrics() trace.Snapshot {
	return mergeSnapshots(ss.s.cfg.DB.Metrics(), ss.s.reg.Snapshot())
}
func (ss serverSource) InFlight() []telemetry.QueryProgress { return ss.s.cfg.DB.InFlight() }
func (ss serverSource) History() []telemetry.QuerySummary   { return ss.s.cfg.DB.History() }
func (ss serverSource) QueryStats() []telemetry.ShapeStat   { return ss.s.cfg.DB.QueryStats() }
func (ss serverSource) Calibration() tcq.CalibrationReport  { return ss.s.cfg.DB.Calibration() }
func (ss serverSource) FlightRecords() []tcq.FlightRecord   { return ss.s.cfg.DB.FlightRecords() }
func (ss serverSource) SLO() telemetry.SLOReport            { return ss.s.slo.Report() }

// mergeSnapshots overlays b onto a (keys are disjoint in practice: the
// engine registry never emits server_* or tenant-labeled keys).
func mergeSnapshots(a, b trace.Snapshot) trace.Snapshot {
	out := trace.Snapshot{
		Counters:   make(map[string]int64, len(a.Counters)+len(b.Counters)),
		Gauges:     make(map[string]float64, len(a.Gauges)+len(b.Gauges)),
		Histograms: make(map[string]trace.HistogramStat, len(a.Histograms)+len(b.Histograms)),
	}
	for k, v := range a.Counters {
		out.Counters[k] = v
	}
	for k, v := range b.Counters {
		out.Counters[k] += v
	}
	for k, v := range a.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range b.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range a.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range b.Histograms {
		out.Histograms[k] = v
	}
	return out
}
