package sqlparse

import (
	"strings"
	"testing"

	"tcq/internal/ra"
)

func mustParse(t *testing.T, src string) *Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestParseCountStar(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM orders")
	if s.Agg != Count || s.Col != "" || s.GroupBy != "" {
		t.Fatalf("stmt = %+v", s)
	}
	if b, ok := s.Expr.(*ra.Base); !ok || b.Name != "orders" {
		t.Fatalf("expr = %s", s.Expr)
	}
}

func TestParseWhere(t *testing.T) {
	s := mustParse(t, `select count(*) from orders where amount < 100 and region = "north"`)
	sel, ok := s.Expr.(*ra.Select)
	if !ok {
		t.Fatalf("expr = %T", s.Expr)
	}
	if sel.String() != `select(orders, (amount < 100 and region = "north"))` {
		t.Errorf("expr = %s", sel)
	}
}

func TestParseJoin(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM orders JOIN items ON id = oid WHERE qty > 2")
	sel := s.Expr.(*ra.Select)
	j, ok := sel.Input.(*ra.Join)
	if !ok {
		t.Fatalf("input = %T", sel.Input)
	}
	if len(j.On) != 1 || j.On[0].LeftCol != "id" || j.On[0].RightCol != "oid" {
		t.Errorf("on = %v", j.On)
	}
}

func TestParseMultiJoinConditionsAndChains(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM a JOIN b ON x = y AND u = v JOIN c ON p = q")
	outer := s.Expr.(*ra.Join)
	if outer.On[0].LeftCol != "p" {
		t.Errorf("outer join on %v", outer.On)
	}
	inner := outer.Left.(*ra.Join)
	if len(inner.On) != 2 || inner.On[1].LeftCol != "u" {
		t.Errorf("inner join on %v", inner.On)
	}
}

func TestParseJoinThenWhereWithAnd(t *testing.T) {
	// The AND after the join condition belongs to WHERE, not the join.
	s := mustParse(t, "SELECT COUNT(*) FROM a JOIN b ON x = y WHERE u < 1 AND w > 2")
	sel, ok := s.Expr.(*ra.Select)
	if !ok {
		t.Fatalf("expr = %T", s.Expr)
	}
	if _, ok := sel.Pred.(*ra.And); !ok {
		t.Errorf("pred = %T", sel.Pred)
	}
	j := sel.Input.(*ra.Join)
	if len(j.On) != 1 {
		t.Errorf("join swallowed the WHERE: %v", j.On)
	}
}

func TestParseSumAvg(t *testing.T) {
	s := mustParse(t, "SELECT SUM(revenue) FROM sales WHERE region = 3")
	if s.Agg != Sum || s.Col != "revenue" {
		t.Fatalf("stmt = %+v", s)
	}
	a := mustParse(t, "select avg(revenue) from sales")
	if a.Agg != Avg || a.Col != "revenue" {
		t.Fatalf("stmt = %+v", a)
	}
	if Sum.String() != "sum" || Avg.String() != "avg" || Count.String() != "count" ||
		CountDistinct.String() != "count distinct" {
		t.Error("AggKind names wrong")
	}
}

func TestParseCountDistinct(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(DISTINCT region) FROM sales WHERE revenue > 100")
	if s.Agg != CountDistinct || s.Col != "region" {
		t.Fatalf("stmt = %+v", s)
	}
	p, ok := s.Expr.(*ra.Project)
	if !ok || p.Cols[0] != "region" {
		t.Fatalf("expr = %s", s.Expr)
	}
	if _, ok := p.Input.(*ra.Select); !ok {
		t.Error("projection should wrap the filtered input")
	}
}

func TestParseGroupBy(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM sales WHERE revenue > 100 GROUP BY region")
	if s.GroupBy != "region" {
		t.Fatalf("group by = %q", s.GroupBy)
	}
	// The grouped input keeps the filter.
	if !strings.Contains(s.Expr.String(), "revenue > 100") {
		t.Errorf("expr = %s", s.Expr)
	}
	// GROUP BY without WHERE.
	s2 := mustParse(t, "SELECT COUNT(*) FROM sales GROUP BY region")
	if s2.GroupBy != "region" {
		t.Fatalf("group by = %q", s2.GroupBy)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM x",
		"SELECT MAX(a) FROM x",
		"SELECT COUNT(a) FROM x", // bare column: must be * or DISTINCT
		"SELECT COUNT(*)",
		"SELECT COUNT(*) FROM",
		"SELECT COUNT(*) FROM x WHERE",
		"SELECT COUNT(*) FROM x WHERE a <",
		"SELECT COUNT(*) FROM x GROUP region",
		"SELECT COUNT(*) FROM x GROUP BY",
		"SELECT SUM(revenue) FROM x GROUP BY region", // group by only for count(*)
		"SELECT COUNT(*) FROM x JOIN",
		"SELECT COUNT(*) FROM x JOIN y",
		"SELECT COUNT(*) FROM x JOIN y ON a",
		"SELECT COUNT(*) FROM x JOIN y ON a = ",
		"SELECT COUNT(*) FROM x trailing garbage",
		`SELECT COUNT(*) FROM x WHERE a = "unterminated`,
		"SELECT SUM() FROM x",
		"SELECT SUM(a FROM x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	s := mustParse(t, "SeLeCt CoUnT(*) FrOm r WhErE a < 5 GrOuP bY a")
	if s.GroupBy != "a" {
		t.Fatalf("stmt = %+v", s)
	}
}
