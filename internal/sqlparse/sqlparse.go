// Package sqlparse provides a small SQL front-end over the tcq
// relational algebra: single-block aggregate queries of the form
//
//	SELECT COUNT(*) | COUNT(DISTINCT col) | SUM(col) | AVG(col)
//	FROM rel [JOIN rel2 ON a = b [AND c = d ...]]...
//	[WHERE predicate]
//	[GROUP BY col]
//
// Keywords are case-insensitive. The WHERE predicate uses the same
// comparison syntax as the RA language (delegated to raparse), e.g.
// `amount < 100 and region = "north"`. COUNT(DISTINCT col) maps to a
// projection (Goodman-estimated); GROUP BY is supported for COUNT(*).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"

	"tcq/internal/ra"
	"tcq/internal/raparse"
)

// AggKind is the requested aggregate.
type AggKind int

// Aggregates.
const (
	Count AggKind = iota
	CountDistinct
	Sum
	Avg
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case CountDistinct:
		return "count distinct"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	default:
		return "count"
	}
}

// Statement is a parsed aggregate query.
type Statement struct {
	// Agg is the aggregate function.
	Agg AggKind
	// Col is the aggregated column (empty for COUNT(*)).
	Col string
	// Expr is the relational algebra input of the aggregate
	// (select/join tree; for COUNT(DISTINCT col) the projection is
	// already applied).
	Expr ra.Expr
	// GroupBy is the grouping column, or empty.
	GroupBy string
}

// token kinds for the SQL lexer.
type tkind int

const (
	tEOF tkind = iota
	tWord
	tPunct // ( ) , *
	tOther // anything the predicate parser will handle
)

type tok struct {
	kind tkind
	text string
	pos  int
}

// lex splits the input into words, punctuation and opaque runs; it
// keeps byte offsets so the WHERE clause can be sliced out verbatim for
// the predicate parser.
func lex(src string) ([]tok, error) {
	var toks []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '*':
			toks = append(toks, tok{tPunct, string(c), i})
			i++
		case c == '"':
			start := i
			i++
			for i < len(src) && src[i] != '"' {
				if src[i] == '\\' {
					i++
				}
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", start)
			}
			i++
			toks = append(toks, tok{tOther, src[start:i], start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) {
				r := rune(src[i])
				if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.' {
					i++
					continue
				}
				break
			}
			toks = append(toks, tok{tWord, src[start:i], start})
		default:
			// Numbers, comparison operators, etc. — opaque to the SQL
			// layer, meaningful to the predicate parser.
			start := i
			for i < len(src) {
				b := src[i]
				if b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '(' || b == ')' || b == ',' {
					break
				}
				i++
			}
			toks = append(toks, tok{tOther, src[start:i], start})
		}
	}
	toks = append(toks, tok{tEOF, "", len(src)})
	return toks, nil
}

func isKw(t tok, kw string) bool { return t.kind == tWord && strings.EqualFold(t.text, kw) }

type parser struct {
	src  string
	toks []tok
	i    int
}

func (p *parser) peek() tok { return p.toks[p.i] }
func (p *parser) next() tok {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKw(kw string) error {
	t := p.next()
	if !isKw(t, kw) {
		return fmt.Errorf("sqlparse: expected %s, got %q", strings.ToUpper(kw), t.text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tPunct || t.text != s {
		return fmt.Errorf("sqlparse: expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tWord {
		return "", fmt.Errorf("sqlparse: expected identifier, got %q", t.text)
	}
	return t.text, nil
}

// Parse parses one aggregate SQL statement.
func Parse(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	stmt := &Statement{}
	if err := p.parseAgg(stmt); err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	expr, err := p.parseFrom()
	if err != nil {
		return nil, err
	}

	// WHERE clause: slice the raw text between WHERE and GROUP/EOF and
	// delegate to the RA predicate parser.
	if isKw(p.peek(), "where") {
		p.next()
		start := p.peek().pos
		end := len(p.src)
		for j := p.i; j < len(p.toks); j++ {
			if isKw(p.toks[j], "group") {
				end = p.toks[j].pos
				p.i = j
				break
			}
			if p.toks[j].kind == tEOF {
				p.i = j
				break
			}
		}
		predSrc := strings.TrimSpace(p.src[start:end])
		if predSrc == "" {
			return nil, fmt.Errorf("sqlparse: empty WHERE clause")
		}
		pred, err := raparse.ParsePred(predSrc)
		if err != nil {
			return nil, err
		}
		expr = &ra.Select{Input: expr, Pred: pred}
	}

	if isKw(p.peek(), "group") {
		p.next()
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if stmt.Agg != Count {
			return nil, fmt.Errorf("sqlparse: GROUP BY is supported for COUNT(*) only")
		}
		stmt.GroupBy = col
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, fmt.Errorf("sqlparse: unexpected %q after statement", t.text)
	}

	if stmt.Agg == CountDistinct {
		expr = &ra.Project{Input: expr, Cols: []string{stmt.Col}}
	}
	stmt.Expr = expr
	return stmt, nil
}

func (p *parser) parseAgg(stmt *Statement) error {
	t := p.next()
	switch {
	case isKw(t, "count"):
		if err := p.expectPunct("("); err != nil {
			return err
		}
		if p.peek().kind == tPunct && p.peek().text == "*" {
			p.next()
			stmt.Agg = Count
		} else if isKw(p.peek(), "distinct") {
			p.next()
			col, err := p.ident()
			if err != nil {
				return err
			}
			stmt.Agg = CountDistinct
			stmt.Col = col
		} else {
			return fmt.Errorf("sqlparse: expected * or DISTINCT col in COUNT")
		}
		return p.expectPunct(")")
	case isKw(t, "sum"), isKw(t, "avg"):
		if err := p.expectPunct("("); err != nil {
			return err
		}
		col, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		if isKw(t, "sum") {
			stmt.Agg = Sum
		} else {
			stmt.Agg = Avg
		}
		stmt.Col = col
		return nil
	default:
		return fmt.Errorf("sqlparse: expected COUNT/SUM/AVG, got %q", t.text)
	}
}

// parseFrom parses "rel [JOIN rel ON a = b [AND c = d]...]...".
func (p *parser) parseFrom() (ra.Expr, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var expr ra.Expr = &ra.Base{Name: name}
	for isKw(p.peek(), "join") {
		p.next()
		right, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		var on []ra.JoinCond
		for {
			lc, err := p.ident()
			if err != nil {
				return nil, err
			}
			eq := p.next()
			if eq.kind != tOther || (eq.text != "=" && eq.text != "==") {
				return nil, fmt.Errorf("sqlparse: expected '=', got %q", eq.text)
			}
			rc, err := p.ident()
			if err != nil {
				return nil, err
			}
			on = append(on, ra.JoinCond{LeftCol: lc, RightCol: rc})
			if isKw(p.peek(), "and") {
				// Lookahead: "AND x = y" continues the join condition;
				// anything else belongs to a later clause. A join
				// condition is ident '=' ident.
				if p.i+3 < len(p.toks) &&
					p.toks[p.i+1].kind == tWord &&
					p.toks[p.i+2].kind == tOther && (p.toks[p.i+2].text == "=" || p.toks[p.i+2].text == "==") &&
					p.toks[p.i+3].kind == tWord {
					p.next()
					continue
				}
			}
			break
		}
		expr = &ra.Join{Left: expr, Right: &ra.Base{Name: right}, On: on}
	}
	return expr, nil
}
