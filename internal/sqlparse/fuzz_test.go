package sqlparse

import (
	"testing"

	"tcq/internal/raparse"
)

// FuzzParse checks that the SQL parser never panics on arbitrary input
// and that every accepted statement lowers to a relational-algebra
// tree whose canonical rendering re-parses under the RA grammar — the
// two front ends must agree on the shared ra.Expr language.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// README example plus the statement shapes from the unit tests.
		"SELECT COUNT(*) FROM orders JOIN items ON id = oid WHERE price > 10",
		"SELECT COUNT(*) FROM orders",
		"SELECT COUNT(*) FROM orders JOIN items ON id = oid WHERE qty > 2",
		"SELECT COUNT(*) FROM a JOIN b ON x = y AND u = v JOIN c ON p = q",
		"SELECT SUM(revenue) FROM sales WHERE region = 3",
		"SELECT AVG(qty) FROM orders",
		"SELECT COUNT(DISTINCT region) FROM sales WHERE revenue > 100",
		"SELECT COUNT(*) FROM sales WHERE revenue > 100 GROUP BY region",
		// Shape-fingerprint collision candidates: statements that lower
		// to RA trees the catalog canonicalizer must merge (commuted
		// WHERE conjuncts, flipped comparisons) or must keep apart
		// (flipped join sides, strict vs non-strict comparison).
		"SELECT COUNT(*) FROM orders WHERE 10 < price",
		"SELECT COUNT(*) FROM orders WHERE price >= 10",
		"SELECT COUNT(*) FROM orders WHERE qty = 2 AND price > 10",
		"SELECT COUNT(*) FROM orders WHERE price > 10 AND qty = 2",
		"SELECT COUNT(*) FROM items JOIN orders ON oid = id WHERE price > 10",
		// Malformed shapes the parser must reject gracefully.
		"FROM x",
		"SELECT MAX(a) FROM x",
		"SELECT COUNT(*) FROM",
		"SELECT COUNT(*) FROM x WHERE",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if stmt.Expr == nil {
			t.Fatalf("accepted statement has nil expression: %q", input)
		}
		rendered := stmt.Expr.String()
		e2, err := raparse.Parse(rendered)
		if err != nil {
			t.Fatalf("lowered RA tree does not re-parse: %q: %v", rendered, err)
		}
		if again := e2.String(); again != rendered {
			t.Fatalf("lowered RA tree not canonical:\n first: %q\nsecond: %q", rendered, again)
		}
	})
}
