// Package workload generates the synthetic relations of the paper's
// Section 5 experiments: artificial relation instances of 10,000 tuples
// of 200 bytes each — 2,000 disk blocks of 1 KB holding 5 tuples — with
// tuples randomly distributed across blocks, and with attribute values
// constructed so that each experiment's query has a chosen exact output
// cardinality (1,000/5,000 output tuples for selection, 10,000 for
// intersection, 70,000 for the join).
package workload

import (
	"fmt"
	"math/rand"

	"tcq/internal/storage"
	"tcq/internal/tuple"
)

// PaperTuples is the relation cardinality used throughout Section 5.
const PaperTuples = 10000

// PaperTupleSize is the tuple width (bytes) used throughout Section 5,
// giving 5 tuples per 1 KB block and 2,000 blocks per relation.
const PaperTupleSize = 200

// Schema returns the experiment schema: (id int, a int, padded to
// PaperTupleSize bytes).
func Schema() *tuple.Schema {
	s := tuple.MustSchema(
		tuple.Column{Name: "id", Type: tuple.Int},
		tuple.Column{Name: "a", Type: tuple.Int},
	)
	padded, err := s.WithPadding(PaperTupleSize)
	if err != nil {
		panic(err)
	}
	return padded
}

// loadCols bulk-loads parallel (id, a) columns into rel as one
// columnar batch — the generators' fast path. One AppendBatch call
// replaces n per-tuple Append calls (each of which took the relation's
// write lock, validated, and boxed three interface values), which is
// what dominated per-trial cost before batch loading. The resulting
// block layout is identical to sequential Append.
func loadCols(rel *storage.Relation, ids, as []int64) error {
	b, err := tuple.MakeBatch(rel.Schema(), len(ids), ids, as, make([]string, len(ids)))
	if err != nil {
		return err
	}
	return rel.AppendBatch(b)
}

// SelectRelation builds a relation of n tuples in which exactly k
// satisfy the one-comparison predicate a < k: attribute a is a random
// permutation of 0..n-1, so selecting a < k yields exactly k tuples
// while the matching tuples are randomly spread over the blocks.
func SelectRelation(st *storage.Store, name string, n, k int, rng *rand.Rand) (*storage.Relation, error) {
	if k < 0 || k > n {
		return nil, fmt.Errorf("workload: k=%d out of range [0,%d]", k, n)
	}
	rel, err := st.CreateRelation(name, Schema())
	if err != nil {
		return nil, err
	}
	perm := rng.Perm(n)
	ids := make([]int64, n)
	as := make([]int64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		as[i] = int64(perm[i])
	}
	if err := loadCols(rel, ids, as); err != nil {
		return nil, err
	}
	return rel, nil
}

// IntersectPair builds two relations of n tuples sharing exactly common
// identical tuples (ids 0..common-1 appear verbatim in both; the rest
// are disjoint). Both relations are duplicate-free and randomly
// shuffled into blocks. COUNT(r1 ∩ r2) = common.
func IntersectPair(st *storage.Store, name1, name2 string, n, common int, rng *rand.Rand) (*storage.Relation, *storage.Relation, error) {
	if common < 0 || common > n {
		return nil, nil, fmt.Errorf("workload: common=%d out of range [0,%d]", common, n)
	}
	mk := func(name string, offset int) (*storage.Relation, error) {
		rel, err := st.CreateRelation(name, Schema())
		if err != nil {
			return nil, err
		}
		ids := make([]int64, n)
		for i := 0; i < common; i++ {
			ids[i] = int64(i) // shared tuples
		}
		for i := common; i < n; i++ {
			ids[i] = int64(offset + i) // disjoint tail
		}
		rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		as := make([]int64, n)
		for i, id := range ids {
			as[i] = id % 97
		}
		if err := loadCols(rel, ids, as); err != nil {
			return nil, err
		}
		return rel, nil
	}
	r1, err := mk(name1, 1_000_000)
	if err != nil {
		return nil, nil, err
	}
	r2, err := mk(name2, 2_000_000)
	if err != nil {
		return nil, nil, err
	}
	return r1, r2, nil
}

// JoinPair builds two relations of n tuples whose equijoin on attribute
// a has exactly outputTuples matching pairs, mimicking the Section 5
// join workload (70,000 output tuples over 10,000-tuple relations, one
// join attribute). Values 0..values-1 appear perLeft times in r1; in r2
// enough tuples carry matching values so that Σ perLeft·perRight =
// outputTuples; remaining r2 tuples get non-matching values. It returns
// an error when the target is not achievable with the chosen shape.
func JoinPair(st *storage.Store, name1, name2 string, n, outputTuples int, rng *rand.Rand) (*storage.Relation, *storage.Relation, error) {
	// One join value per 10 left tuples, matching the paper's shape
	// (10,000 tuples over 1,000 join values).
	if n%10 != 0 {
		return nil, nil, fmt.Errorf("workload: n=%d must be a multiple of 10", n)
	}
	values := n / 10
	const perLeft = 10 // each value appears this often in r1
	if outputTuples%perLeft != 0 {
		return nil, nil, fmt.Errorf("workload: outputTuples=%d not divisible by %d", outputTuples, perLeft)
	}
	matchRight := outputTuples / perLeft // matching tuples needed in r2
	if matchRight > n {
		return nil, nil, fmt.Errorf("workload: outputTuples=%d needs %d matching right tuples > n=%d",
			outputTuples, matchRight, n)
	}

	r1, err := st.CreateRelation(name1, Schema())
	if err != nil {
		return nil, nil, err
	}
	left := make([]int64, 0, n)
	for v := 0; v < values; v++ {
		for c := 0; c < perLeft; c++ {
			left = append(left, int64(v))
		}
	}
	rng.Shuffle(len(left), func(i, j int) { left[i], left[j] = left[j], left[i] })
	lids := make([]int64, len(left))
	for i := range lids {
		lids[i] = int64(i)
	}
	if err := loadCols(r1, lids, left); err != nil {
		return nil, nil, err
	}

	r2, err := st.CreateRelation(name2, Schema())
	if err != nil {
		return nil, nil, err
	}
	right := make([]int64, 0, n)
	for i := 0; i < matchRight; i++ {
		right = append(right, int64(i%values)) // uniform over join values
	}
	for i := matchRight; i < n; i++ {
		right = append(right, int64(values+i)) // never matches
	}
	rng.Shuffle(len(right), func(i, j int) { right[i], right[j] = right[j], right[i] })
	rids := make([]int64, len(right))
	for i := range rids {
		rids[i] = int64(n + i)
	}
	if err := loadCols(r2, rids, right); err != nil {
		return nil, nil, err
	}
	return r1, r2, nil
}

// ProjectRelation builds a relation of n tuples whose attribute a has
// exactly distinct different values, spread as evenly as possible.
// COUNT(project(r, [a])) = distinct.
func ProjectRelation(st *storage.Store, name string, n, distinct int, rng *rand.Rand) (*storage.Relation, error) {
	if distinct < 1 || distinct > n {
		return nil, fmt.Errorf("workload: distinct=%d out of range [1,%d]", distinct, n)
	}
	rel, err := st.CreateRelation(name, Schema())
	if err != nil {
		return nil, err
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % distinct)
	}
	rng.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	if err := loadCols(rel, ids, vals); err != nil {
		return nil, err
	}
	return rel, nil
}

// UniformRelation builds a relation of n tuples with attribute a drawn
// uniformly from [0, maxA) — a general-purpose relation for examples.
func UniformRelation(st *storage.Store, name string, n int, maxA int64, rng *rand.Rand) (*storage.Relation, error) {
	rel, err := st.CreateRelation(name, Schema())
	if err != nil {
		return nil, err
	}
	ids := make([]int64, n)
	as := make([]int64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		as[i] = rng.Int63n(maxA)
	}
	if err := loadCols(rel, ids, as); err != nil {
		return nil, err
	}
	return rel, nil
}

// ZipfRelation builds a relation whose attribute a follows a zipfian
// distribution over [0, values) with exponent s > 1 — a skewed workload
// for estimator stress tests and examples.
func ZipfRelation(st *storage.Store, name string, n int, values uint64, s float64, rng *rand.Rand) (*storage.Relation, error) {
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent must be > 1, got %g", s)
	}
	if values < 1 {
		return nil, fmt.Errorf("workload: zipf needs at least one value")
	}
	rel, err := st.CreateRelation(name, Schema())
	if err != nil {
		return nil, err
	}
	z := rand.NewZipf(rng, s, 1, values-1)
	ids := make([]int64, n)
	as := make([]int64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		as[i] = int64(z.Uint64())
	}
	if err := loadCols(rel, ids, as); err != nil {
		return nil, err
	}
	return rel, nil
}

// SkewedJoinPair builds two relations of n tuples whose join attribute
// follows a zipfian distribution (exponent s > 1) over values
// [0, values): a heavy-hitter join whose output is dominated by a few
// values — the workload shape that stresses cluster-sampling estimators
// (per-block variance is much higher than under uniform data). The
// exact join cardinality is returned.
func SkewedJoinPair(st *storage.Store, name1, name2 string, n int, values uint64, s float64, rng *rand.Rand) (int64, error) {
	if s <= 1 {
		return 0, fmt.Errorf("workload: zipf exponent must be > 1, got %g", s)
	}
	if values < 1 {
		return 0, fmt.Errorf("workload: need at least one join value")
	}
	mk := func(name string, idBase int) (map[int64]int64, error) {
		rel, err := st.CreateRelation(name, Schema())
		if err != nil {
			return nil, err
		}
		z := rand.NewZipf(rng, s, 1, values-1)
		counts := map[int64]int64{}
		ids := make([]int64, n)
		as := make([]int64, n)
		for i := 0; i < n; i++ {
			v := int64(z.Uint64())
			counts[v]++
			ids[i] = int64(idBase + i)
			as[i] = v
		}
		if err := loadCols(rel, ids, as); err != nil {
			return nil, err
		}
		return counts, nil
	}
	c1, err := mk(name1, 0)
	if err != nil {
		return 0, err
	}
	c2, err := mk(name2, n)
	if err != nil {
		return 0, err
	}
	var out int64
	for v, a := range c1 {
		out += a * c2[v]
	}
	return out, nil
}
