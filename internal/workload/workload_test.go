package workload

import (
	"math/rand"
	"testing"

	"tcq/internal/exec"
	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/vclock"
)

func newStore() *storage.Store {
	return storage.NewStore(vclock.NewSim(1, 0), storage.SunProfile(), storage.DefaultBlockSize)
}

func count(t *testing.T, st *storage.Store, e ra.Expr) int64 {
	t.Helper()
	c, err := ra.CountExact(e, exec.StoreCatalog{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSchemaMatchesPaperGeometry(t *testing.T) {
	s := Schema()
	if s.TupleSize() != PaperTupleSize {
		t.Fatalf("tuple size = %d, want %d", s.TupleSize(), PaperTupleSize)
	}
	st := newStore()
	rel, err := SelectRelation(st, "r", PaperTuples, 1000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumBlocks() != 2000 {
		t.Errorf("blocks = %d, want 2000", rel.NumBlocks())
	}
	if rel.BlockingFactor() != 5 {
		t.Errorf("blocking factor = %d, want 5", rel.BlockingFactor())
	}
}

func TestSelectRelationExactOutput(t *testing.T) {
	st := newStore()
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{0, 1, 1000, 5000, 10000} {
		name := "r" + string(rune('a'+k%26)) + string(rune('a'+k/26%26))
		if _, err := SelectRelation(st, name, PaperTuples, k, rng); err != nil {
			t.Fatal(err)
		}
		e := &ra.Select{Input: &ra.Base{Name: name},
			Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(k)}}}
		if got := count(t, st, e); got != int64(k) {
			t.Errorf("k=%d: exact output = %d", k, got)
		}
	}
	if _, err := SelectRelation(st, "bad", 10, 11, rng); err == nil {
		t.Error("k > n should fail")
	}
}

func TestIntersectPairExactOverlap(t *testing.T) {
	st := newStore()
	rng := rand.New(rand.NewSource(3))
	r1, r2, err := IntersectPair(st, "x", "y", 2000, 700, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NumTuples() != 2000 || r2.NumTuples() != 2000 {
		t.Fatal("wrong cardinalities")
	}
	e := &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "x"}, &ra.Base{Name: "y"}}}
	if got := count(t, st, e); got != 700 {
		t.Errorf("intersection = %d, want 700", got)
	}
	// Full overlap, as in Fig. 5.2 (10,000 output tuples of 10,000).
	_, _, err = IntersectPair(st, "x2", "y2", 500, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	e2 := &ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "x2"}, &ra.Base{Name: "y2"}}}
	if got := count(t, st, e2); got != 500 {
		t.Errorf("full intersection = %d, want 500", got)
	}
	if _, _, err := IntersectPair(st, "b1", "b2", 10, 11, rng); err == nil {
		t.Error("common > n should fail")
	}
}

func TestJoinPairExactOutput(t *testing.T) {
	st := newStore()
	rng := rand.New(rand.NewSource(4))
	// The paper's workload: 10,000-tuple relations, 70,000 output tuples.
	_, _, err := JoinPair(st, "j1", "j2", PaperTuples, 70000, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := &ra.Join{Left: &ra.Base{Name: "j1"}, Right: &ra.Base{Name: "j2"},
		On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	if got := count(t, st, e); got != 70000 {
		t.Errorf("join output = %d, want 70000", got)
	}
}

func TestJoinPairValidation(t *testing.T) {
	st := newStore()
	rng := rand.New(rand.NewSource(5))
	if _, _, err := JoinPair(st, "a1", "a2", 1001, 1000, rng); err == nil {
		t.Error("n not multiple of values should fail")
	}
	if _, _, err := JoinPair(st, "a3", "a4", 2000, 1, rng); err == nil {
		t.Error("indivisible output target should fail")
	}
	if _, _, err := JoinPair(st, "a5", "a6", 1000, 10_000_000, rng); err == nil {
		t.Error("unachievable output target should fail")
	}
}

func TestProjectRelationExactDistinct(t *testing.T) {
	st := newStore()
	rng := rand.New(rand.NewSource(6))
	if _, err := ProjectRelation(st, "p", 5000, 123, rng); err != nil {
		t.Fatal(err)
	}
	e := &ra.Project{Input: &ra.Base{Name: "p"}, Cols: []string{"a"}}
	if got := count(t, st, e); got != 123 {
		t.Errorf("distinct = %d, want 123", got)
	}
	if _, err := ProjectRelation(st, "bad", 10, 0, rng); err == nil {
		t.Error("distinct=0 should fail")
	}
	if _, err := ProjectRelation(st, "bad2", 10, 11, rng); err == nil {
		t.Error("distinct>n should fail")
	}
}

func TestUniformAndZipfRelations(t *testing.T) {
	st := newStore()
	rng := rand.New(rand.NewSource(7))
	u, err := UniformRelation(st, "u", 3000, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumTuples() != 3000 {
		t.Errorf("uniform tuples = %d", u.NumTuples())
	}
	for _, tp := range u.AllTuples()[:100] {
		if a := tp[1].(int64); a < 0 || a >= 50 {
			t.Fatalf("uniform value %d out of range", a)
		}
	}
	z, err := ZipfRelation(st, "z", 3000, 100, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Zipf should be heavily skewed toward value 0.
	zero := 0
	for _, tp := range z.AllTuples() {
		if tp[1].(int64) == 0 {
			zero++
		}
	}
	if zero < 1000 {
		t.Errorf("zipf skew looks wrong: %d zeros of 3000", zero)
	}
	if _, err := ZipfRelation(st, "bad", 10, 100, 0.5, rng); err == nil {
		t.Error("zipf exponent <= 1 should fail")
	}
	if _, err := ZipfRelation(st, "bad2", 10, 0, 1.5, rng); err == nil {
		t.Error("zipf with no values should fail")
	}
}

func TestGeneratorsAreDeterministicPerSeed(t *testing.T) {
	st1, st2 := newStore(), newStore()
	r1, _ := SelectRelation(st1, "r", 1000, 100, rand.New(rand.NewSource(42)))
	r2, _ := SelectRelation(st2, "r", 1000, 100, rand.New(rand.NewSource(42)))
	a, b := r1.AllTuples(), r2.AllTuples()
	for i := range a {
		if a[i][1] != b[i][1] {
			t.Fatal("same seed should generate identical relations")
		}
	}
}

func TestSkewedJoinPair(t *testing.T) {
	st := newStore()
	rng := rand.New(rand.NewSource(8))
	want, err := SkewedJoinPair(st, "z1", "z2", 1000, 200, 1.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := &ra.Join{Left: &ra.Base{Name: "z1"}, Right: &ra.Base{Name: "z2"},
		On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	got := count(t, st, e)
	if got != want {
		t.Errorf("skewed join = %d, generator reported %d", got, want)
	}
	// Skew: the output should be far larger than a uniform join of the
	// same shape (1000²/200 = 5000 pairs).
	if want < 20000 {
		t.Errorf("join output %d suggests no skew", want)
	}
	if _, err := SkewedJoinPair(st, "b1", "b2", 10, 10, 0.9, rng); err == nil {
		t.Error("bad exponent should fail")
	}
	if _, err := SkewedJoinPair(st, "b3", "b4", 10, 0, 1.4, rng); err == nil {
		t.Error("zero values should fail")
	}
}
