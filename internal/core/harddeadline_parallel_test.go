package core

import (
	"strings"
	"testing"
	"time"

	"tcq/internal/ra"
)

// TestHardDeadlineParallelAccounting is the satellite regression for
// the parallelism gate: HardDeadline queries historically forced fully
// serial evaluation; they now keep terms serial (an abort's position
// depends on the global poll interleaving) while the sub-term tier may
// still fan out charge-free work. The abort point, overspend
// accounting, utilization and the full stage trace must be identical
// at 1 and 4 workers — for a multi-term query, a single-term pure
// join, and a single-term intersection, across quotas that abort at
// different points of a stage.
func TestHardDeadlineParallelAccounting(t *testing.T) {
	exprs := []ra.Expr{
		// Multi-term: union decomposes into signed terms.
		&ra.Union{Left: &ra.Base{Name: "r1"}, Right: &ra.Base{Name: "r2"}},
		// Single-term pure join: the case the serial-only gate pinned.
		&ra.Join{Left: &ra.Base{Name: "j1"}, Right: &ra.Base{Name: "j2"},
			On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}},
		// Single-term intersection.
		&ra.Intersect{Inputs: []ra.Expr{&ra.Base{Name: "r1"}, &ra.Base{Name: "r2"}}},
	}
	quotas := []time.Duration{
		120 * time.Millisecond, // expires during the first stage
		800 * time.Millisecond,
		3 * time.Second,
	}
	aborted := false
	for _, e := range exprs {
		for _, quota := range quotas {
			c := exprCase{Expr: e, Seed: 11}
			serial := fingerprintOn(t, buildCaseStore(t), c, 1, HardDeadline, quota)
			if strings.Contains(serial, "stage aborted") {
				aborted = true
			}
			for _, workers := range []int{4, 8} {
				got := fingerprintOn(t, buildCaseStore(t), c, workers, HardDeadline, quota)
				if got != serial {
					t.Errorf("%s quota %v workers %d diverged:\nserial: %s\n   got: %s",
						e, quota, workers, serial, got)
				}
			}
		}
	}
	if !aborted {
		t.Error("no quota aborted a stage; the deadline paths were not exercised — tighten the quotas")
	}
}
