package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"tcq/internal/stats"

	"tcq/internal/exec"
	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/timectrl"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

// smallSelect builds a 1,000-tuple (200 blocks) relation where exactly
// k tuples satisfy a < k, plus an engine with the given clock seed.
func smallSelect(t *testing.T, seed int64, k int) (*Engine, ra.Expr) {
	t.Helper()
	clk := vclock.NewSim(seed, 0.03)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	if _, err := workload.SelectRelation(st, "r", 1000, k, rand.New(rand.NewSource(seed))); err != nil {
		t.Fatal(err)
	}
	e := &ra.Select{Input: &ra.Base{Name: "r"},
		Pred: &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt, Right: ra.Const{Value: int64(k)}}}
	return NewEngine(st), e
}

func smallJoin(t *testing.T, seed int64) (*Engine, ra.Expr) {
	t.Helper()
	clk := vclock.NewSim(seed, 0.03)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	if _, _, err := workload.JoinPair(st, "r", "s", 1000, 7000, rand.New(rand.NewSource(seed))); err != nil {
		t.Fatal(err)
	}
	e := &ra.Join{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"},
		On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	return NewEngine(st), e
}

func TestCountRequiresQuota(t *testing.T) {
	g, e := smallSelect(t, 1, 100)
	if _, err := g.Count(e, Options{}); err == nil {
		t.Error("missing quota should error")
	}
}

func TestCountUnknownRelation(t *testing.T) {
	g, _ := smallSelect(t, 1, 100)
	_, err := g.Count(&ra.Base{Name: "missing"}, Options{Quota: time.Second})
	if err == nil {
		t.Error("unknown relation should error")
	}
}

func TestCountEmptyRelation(t *testing.T) {
	clk := vclock.NewSim(1, 0)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	if _, err := st.CreateRelation("empty", workload.Schema()); err != nil {
		t.Fatal(err)
	}
	g := NewEngine(st)
	if _, err := g.Count(&ra.Base{Name: "empty"}, Options{Quota: time.Second}); err == nil {
		t.Error("empty relation should error")
	}
}

func TestCountBasicResultShape(t *testing.T) {
	g, e := smallSelect(t, 7, 100)
	res, err := g.Count(e, Options{
		Quota:    5 * time.Second,
		Mode:     Overrun,
		Strategy: &timectrl.OneAtATime{DBeta: 12},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages < 1 {
		t.Fatalf("no stages completed: %+v", res)
	}
	if res.Blocks < 1 || res.Blocks > 200 {
		t.Errorf("blocks = %d", res.Blocks)
	}
	if res.Utilization < 0 || res.Utilization > 1 {
		t.Errorf("utilization = %g", res.Utilization)
	}
	if res.Successful > res.Elapsed {
		t.Error("successful time cannot exceed elapsed")
	}
	if res.Estimate.Value <= 0 {
		t.Errorf("estimate = %g", res.Estimate.Value)
	}
	if len(res.StageRecords) < res.Stages {
		t.Error("missing stage records")
	}
	if res.StopReason == "" {
		t.Error("empty stop reason")
	}
	want, _ := g.ExactCount(e)
	if rel := math.Abs(res.Estimate.Value-float64(want)) / float64(want); rel > 0.8 {
		t.Errorf("estimate %g too far from exact %d", res.Estimate.Value, want)
	}
}

func TestCensusWhenQuotaIsHuge(t *testing.T) {
	g, e := smallSelect(t, 3, 250)
	res, err := g.Count(e, Options{Quota: time.Hour, Mode: Overrun, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason != "sample exhausted (census reached)" {
		t.Errorf("stop reason = %q", res.StopReason)
	}
	if res.Blocks != 200 {
		t.Errorf("census should evaluate all 200 blocks, got %d", res.Blocks)
	}
	want, _ := g.ExactCount(e)
	if math.Abs(res.Estimate.Value-float64(want)) > 1e-6 {
		t.Errorf("census estimate %g != exact %d", res.Estimate.Value, want)
	}
	if res.Estimate.Variance != 0 {
		t.Errorf("census variance = %g, want 0", res.Estimate.Variance)
	}
}

func TestHardModeNeverOverruns(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g, e := smallSelect(t, seed, 100)
		quota := 3 * time.Second
		res, err := g.Count(e, Options{
			Quota:    quota,
			Mode:     HardDeadline,
			Strategy: &timectrl.OneAtATime{DBeta: 0}, // maximally risky
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		// A hard deadline may only exceed the quota by one deadline-poll
		// granule (a block read / 64-tuple batch), not by a whole stage.
		slack := 2 * storage.SunProfile().BlockRead
		if res.Elapsed > quota+slack {
			t.Errorf("seed %d: elapsed %v exceeded quota %v by more than %v",
				seed, res.Elapsed, quota, slack)
		}
		if res.Overspent {
			// The final stage either aborted mid-flight or squeaked past
			// the quota by at most the poll granule checked above.
			last := res.StageRecords[len(res.StageRecords)-1]
			if last.Completed && res.Elapsed > quota+slack {
				t.Errorf("seed %d: completed stage overshot the quota", seed)
			}
		}
	}
}

func TestOverrunModeMeasuresOverspend(t *testing.T) {
	overspends := 0
	var totalOvsp time.Duration
	for seed := int64(1); seed <= 30; seed++ {
		g, e := smallSelect(t, seed, 100)
		quota := 3 * time.Second
		res, err := g.Count(e, Options{
			Quota:    quota,
			Mode:     Overrun,
			Strategy: &timectrl.OneAtATime{DBeta: 0},
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Overspent {
			overspends++
			totalOvsp += res.Overspend
			if res.Overspend <= 0 {
				t.Errorf("seed %d: overspent without positive overspend", seed)
			}
			if res.Elapsed <= quota {
				t.Errorf("seed %d: overspent but elapsed %v <= quota", seed, res.Elapsed)
			}
		}
	}
	// d_β = 0 plans to the expected cost: risk should be substantial
	// (the paper reports ~50%) — at least a quarter of runs here.
	if overspends < 8 || overspends > 28 {
		t.Errorf("dβ=0 overspend count = %d/30, expected a substantial share", overspends)
	}
	// Overspends should be small relative to the quota (run-time
	// estimation works): average below half the quota.
	if avg := totalOvsp / time.Duration(max(overspends, 1)); avg > 1500*time.Millisecond {
		t.Errorf("average overspend %v too large", avg)
	}
}

func TestDBetaReducesRiskAndAddsStages(t *testing.T) {
	run := func(dBeta float64) (risk float64, stages float64) {
		overspends, totalStages := 0, 0
		const trials = 30
		for seed := int64(1); seed <= trials; seed++ {
			g, e := smallSelect(t, seed, 100)
			res, err := g.Count(e, Options{
				Quota:    3 * time.Second,
				Mode:     Overrun,
				Strategy: &timectrl.OneAtATime{DBeta: dBeta},
				Seed:     seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Overspent {
				overspends++
			}
			totalStages += res.Stages
		}
		return float64(overspends) / trials, float64(totalStages) / trials
	}
	risk0, stages0 := run(0)
	risk48, stages48 := run(48)
	if !(risk48 < risk0) {
		t.Errorf("risk did not fall with dβ: %.2f -> %.2f", risk0, risk48)
	}
	if !(stages48 > stages0) {
		t.Errorf("stages did not grow with dβ: %.2f -> %.2f", stages0, stages48)
	}
}

func TestJoinQueryUnderQuota(t *testing.T) {
	g, e := smallJoin(t, 5)
	res, err := g.Count(e, Options{
		Quota:    4 * time.Second,
		Mode:     Overrun,
		Strategy: &timectrl.OneAtATime{DBeta: 12},
		Initial:  timectrl.Initials{Select: 1, Join: 0.1, Project: 1},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages < 1 {
		t.Fatal("join query completed no stages")
	}
	want, _ := g.ExactCount(e) // 7000
	if res.Estimate.Value <= 0 || math.Abs(res.Estimate.Value-float64(want))/float64(want) > 1.5 {
		t.Errorf("join estimate %g vs exact %d", res.Estimate.Value, want)
	}
}

func TestErrorTargetStopsEarly(t *testing.T) {
	g, e := smallSelect(t, 9, 500) // high selectivity: tight CIs quickly
	res, err := g.Count(e, Options{
		Quota: time.Hour,
		Mode:  Overrun,
		Stop:  timectrl.ErrorTarget{RelHalfWidth: 0.2, Level: 0.9},
		Seed:  9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopReason == "sample exhausted (census reached)" {
		t.Error("error target should stop before census")
	}
	if res.Estimate.RelHalfWidth(0.9) > 0.2+1e-9 {
		t.Errorf("stopped with rel half-width %g > 0.2", res.Estimate.RelHalfWidth(0.9))
	}
}

func TestMaxStagesCriterion(t *testing.T) {
	g, e := smallSelect(t, 2, 100)
	res, err := g.Count(e, Options{
		Quota:    time.Hour,
		Mode:     Overrun,
		Strategy: &timectrl.Heuristic{Gamma: 0.001},
		Stop:     timectrl.MaxStages{N: 2},
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages != 2 {
		t.Errorf("stages = %d, want 2", res.Stages)
	}
}

func TestOnStageCallback(t *testing.T) {
	g, e := smallSelect(t, 4, 100)
	var seen []StageRecord
	_, err := g.Count(e, Options{
		Quota:    time.Hour,
		Mode:     Overrun,
		Strategy: &timectrl.Heuristic{Gamma: 0.001},
		Stop:     timectrl.MaxStages{N: 3},
		OnStage:  func(r StageRecord) { seen = append(seen, r) },
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("callback saw %d stages, want 3", len(seen))
	}
	for i, r := range seen {
		if r.Index != i+1 {
			t.Errorf("stage %d has index %d", i, r.Index)
		}
		if !r.Completed || r.Blocks < 1 {
			t.Errorf("stage record %d looks wrong: %+v", i, r)
		}
	}
}

func TestUnionQueryThroughEngine(t *testing.T) {
	clk := vclock.NewSim(11, 0.02)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	rng := rand.New(rand.NewSource(11))
	if _, _, err := workload.IntersectPair(st, "r", "s", 1000, 400, rng); err != nil {
		t.Fatal(err)
	}
	g := NewEngine(st)
	e := &ra.Union{Left: &ra.Base{Name: "r"}, Right: &ra.Base{Name: "s"}}
	want, err := g.ExactCount(e) // 1000 + 1000 - 400 = 1600
	if err != nil {
		t.Fatal(err)
	}
	if want != 1600 {
		t.Fatalf("exact union = %d, want 1600", want)
	}
	res, err := g.Count(e, Options{Quota: time.Hour, Mode: Overrun, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Census: must be exact.
	if math.Abs(res.Estimate.Value-1600) > 1e-6 {
		t.Errorf("union census estimate = %g, want 1600", res.Estimate.Value)
	}
}

func TestPartialFulfillmentPlanRuns(t *testing.T) {
	g, e := smallJoin(t, 6)
	res, err := g.Count(e, Options{
		Quota: 3 * time.Second,
		Mode:  Overrun,
		Plan:  exec.PartialFulfillment,
		Seed:  6,
		Initial: timectrl.Initials{
			Select: 1, Join: 0.1, Project: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages < 1 {
		t.Fatal("partial plan completed no stages")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() *Result {
		g, e := smallSelect(t, 21, 100)
		res, err := g.Count(e, Options{Quota: 3 * time.Second, Mode: Overrun, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Estimate.Value != b.Estimate.Value || a.Stages != b.Stages ||
		a.Blocks != b.Blocks || a.Elapsed != b.Elapsed {
		t.Errorf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestModeString(t *testing.T) {
	if HardDeadline.String() != "hard" || Overrun.String() != "overrun" {
		t.Error("mode names wrong")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSumAndAvgAggregates(t *testing.T) {
	g, e := smallSelect(t, 13, 100)
	// Exact references.
	wantSum, err := g.ExactSum(e, "id")
	if err != nil {
		t.Fatal(err)
	}
	wantAvg, err := g.ExactAvg(e, "id")
	if err != nil {
		t.Fatal(err)
	}
	if wantSum <= 0 || wantAvg <= 0 {
		t.Fatalf("bad references: sum=%g avg=%g", wantSum, wantAvg)
	}
	// Census (huge quota) must reproduce both exactly.
	sumRes, err := g.Count(e, Options{
		Quota: time.Hour, Mode: Overrun, Seed: 13,
		Agg: AggSum, AggColumn: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sumRes.Estimate.Value-wantSum) > 1e-6 {
		t.Errorf("census SUM = %g, want %g", sumRes.Estimate.Value, wantSum)
	}
	g2, e2 := smallSelect(t, 13, 100)
	avgRes, err := g2.Count(e2, Options{
		Quota: time.Hour, Mode: Overrun, Seed: 13,
		Agg: AggAvg, AggColumn: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avgRes.Estimate.Value-wantAvg)/wantAvg > 1e-9 {
		t.Errorf("census AVG = %g, want %g", avgRes.Estimate.Value, wantAvg)
	}
	// Constrained SUM lands in the ballpark.
	g3, e3 := smallSelect(t, 13, 100)
	res, err := g3.Count(e3, Options{
		Quota: 3 * time.Second, Mode: Overrun, Seed: 13,
		Agg: AggSum, AggColumn: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Value <= 0 {
		t.Errorf("constrained SUM = %g", res.Estimate.Value)
	}
	if rel := math.Abs(res.Estimate.Value-wantSum) / wantSum; rel > 1.0 {
		t.Errorf("constrained SUM %g too far from %g", res.Estimate.Value, wantSum)
	}
}

func TestAggregateOptionValidation(t *testing.T) {
	g, e := smallSelect(t, 1, 100)
	if _, err := g.Count(e, Options{Quota: time.Second, Agg: AggSum}); err == nil {
		t.Error("AggSum without AggColumn should fail")
	}
	if _, err := g.Count(e, Options{Quota: time.Second, Agg: AggSum, AggColumn: "zz"}); err == nil {
		t.Error("unknown aggregate column should fail")
	}
	if AggCount.String() != "count" || AggSum.String() != "sum" || AggAvg.String() != "avg" {
		t.Error("AggKind names wrong")
	}
}

func TestPrestoredSelectivityOracle(t *testing.T) {
	g, e := smallJoin(t, 17)
	res, err := g.Count(e, Options{
		Quota:                  3 * time.Second,
		Mode:                   Overrun,
		Seed:                   17,
		PrestoredSelectivities: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages < 1 {
		t.Fatal("oracle run completed no stages")
	}
	// With exact selectivities the first stage is sized against the true
	// cost, so the plan should be close: |predicted - actual| within the
	// load-noise envelope for the first stage.
	first := res.StageRecords[0]
	ratio := first.Actual.Seconds() / first.Predicted.Seconds()
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("oracle first-stage prediction ratio %.2f (pred %v, actual %v)",
			ratio, first.Predicted, first.Actual)
	}
}

func TestHistogramSelectivitySource(t *testing.T) {
	g, e := smallSelect(t, 19, 100)
	// smallSelect's engine wraps a store we can reach via the histogram
	// builder path: build stats, then run with them.
	cat, err := BuildHistograms(g.store, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.Get("r", "a"); !ok {
		t.Fatal("histogram for r.a missing")
	}
	res, err := g.Count(e, Options{
		Quota:      3 * time.Second,
		Mode:       Overrun,
		Seed:       19,
		Histograms: cat,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages < 1 {
		t.Fatal("histogram run completed no stages")
	}
	// The histogram knows sel(a < 100) ≈ 0.1 up front, so the first
	// stage should be planned against ~the true cost, not the sel=1
	// maximum: its prediction must be within the noise envelope.
	first := res.StageRecords[0]
	ratio := first.Actual.Seconds() / first.Predicted.Seconds()
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("histogram first-stage ratio %.2f (pred %v, actual %v)",
			ratio, first.Predicted, first.Actual)
	}
}

func TestHistogramFirstStageBeatsMaxAssumption(t *testing.T) {
	// With histograms the first stage is sized against sel≈0.1 instead
	// of sel=1, so it should draw more blocks for the same quota.
	run := func(hist bool) int {
		g, e := smallSelect(t, 23, 100)
		opts := Options{Quota: 4 * time.Second, Mode: Overrun, Seed: 23}
		if hist {
			cat, err := BuildHistograms(g.store, 20)
			if err != nil {
				t.Fatal(err)
			}
			opts.Histograms = cat
		}
		res, err := g.Count(e, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.StageRecords) == 0 {
			t.Fatal("no stages")
		}
		return res.StageRecords[0].Blocks
	}
	withHist, without := run(true), run(false)
	if withHist <= without {
		t.Errorf("histogram first stage drew %d blocks, max-assumption drew %d", withHist, without)
	}
}

func TestAccountingInvariants(t *testing.T) {
	// Across many runs: 0 <= Successful <= Quota; Wasted = Quota −
	// Successful; Elapsed >= Successful; overspend implies Elapsed >
	// Quota (overrun mode).
	for seed := int64(1); seed <= 20; seed++ {
		g, e := smallSelect(t, seed, 100)
		quota := 3 * time.Second
		res, err := g.Count(e, Options{Quota: quota, Mode: Overrun, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Successful < 0 || res.Successful > quota {
			t.Errorf("seed %d: successful %v outside [0, quota]", seed, res.Successful)
		}
		if got := res.Wasted + res.Successful; got != quota {
			t.Errorf("seed %d: wasted+successful = %v, want %v", seed, got, quota)
		}
		if res.Elapsed < res.Successful {
			t.Errorf("seed %d: elapsed %v < successful %v", seed, res.Elapsed, res.Successful)
		}
		if res.Overspent && res.Elapsed <= quota {
			t.Errorf("seed %d: overspent but elapsed %v <= quota", seed, res.Elapsed)
		}
		if !res.Overspent && res.Overspend != 0 {
			t.Errorf("seed %d: overspend %v without flag", seed, res.Overspend)
		}
		// Stage records are contiguous and blocks sum up.
		blocks := 0
		for i, r := range res.StageRecords {
			if r.Index != i+1 {
				t.Errorf("seed %d: stage %d has index %d", seed, i, r.Index)
			}
			if r.InTime && r.Completed {
				blocks += r.Blocks
			}
		}
		if blocks != res.Blocks {
			t.Errorf("seed %d: in-time stage blocks %d != result blocks %d", seed, blocks, res.Blocks)
		}
	}
}

func TestValueFunctionStopsEngine(t *testing.T) {
	g, e := smallSelect(t, 29, 500)
	// A quota that funds several ~3s stages; the 10s value decay makes
	// the second or third stage's marginal precision not worth its time.
	res, err := g.Count(e, Options{
		Quota:    60 * time.Second,
		Mode:     Overrun,
		Strategy: &timectrl.Heuristic{Gamma: 0.05},
		Stop:     &timectrl.ValueFunction{Decay: 10 * time.Second},
		Seed:     29,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.StopReason, "value function peaked") {
		t.Errorf("stop reason = %q, want value-function stop", res.StopReason)
	}
	if res.Stages < 1 {
		t.Error("no stages completed")
	}
	if res.Elapsed >= 60*time.Second {
		t.Error("value function should stop well before the quota")
	}
}

func TestFullScanCountChargesAndIsExact(t *testing.T) {
	g, e := smallSelect(t, 31, 100)
	want, _ := g.ExactCount(e)
	before := g.store.Clock().Now()
	got, err := g.FullScanCount(e)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("full scan count = %d, exact = %d", got, want)
	}
	if g.store.Clock().Now() == before {
		t.Error("full scan must charge the clock")
	}
}

func TestTraceWriter(t *testing.T) {
	g, e := smallSelect(t, 37, 100)
	var buf bytes.Buffer
	_, err := g.Count(e, Options{
		Quota: 3 * time.Second,
		Mode:  Overrun,
		Seed:  37,
		Trace: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stage 1:", "predicted=", "actual=", "sel="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestSimpleRandomSamplingPlan(t *testing.T) {
	g, e := smallSelect(t, 41, 100)
	res, err := g.Count(e, Options{
		Quota:    3 * time.Second,
		Mode:     Overrun,
		Seed:     41,
		Sampling: SimpleRandomSampling,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages < 1 {
		t.Fatal("SRS plan completed no stages")
	}
	if res.Estimate.Value <= 0 {
		t.Errorf("SRS estimate = %g", res.Estimate.Value)
	}
	if ClusterSampling.String() != "cluster" || SimpleRandomSampling.String() != "srs" {
		t.Error("sampling plan names wrong")
	}
}

func TestClusterBeatsSRSOnDisk(t *testing.T) {
	// The paper's Fig 3.2 rationale: for the same quota, cluster
	// sampling evaluates ~blockingFactor times more tuples because SRS
	// pays a whole block read per tuple.
	run := func(plan SamplingPlan) float64 {
		var total float64
		for seed := int64(1); seed <= 8; seed++ {
			g, e := smallSelect(t, seed, 100)
			res, err := g.Count(e, Options{
				Quota: 3 * time.Second, Mode: Overrun, Seed: seed, Sampling: plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			// res.Blocks counts sample units: blocks (5 tuples) under
			// cluster sampling, single tuples under SRS.
			if plan == ClusterSampling {
				total += float64(res.Blocks * 5)
			} else {
				total += float64(res.Blocks)
			}
		}
		return total / 8
	}
	clusterTuples := run(ClusterSampling)
	srsTuples := run(SimpleRandomSampling)
	// The advantage is the ratio of per-tuple total costs: SRS pays a
	// full block read per tuple while cluster amortises it over the
	// blocking factor; CPU costs are paid either way, so the net ratio
	// is ~2.4x on this profile (it approaches the blocking factor only
	// when reads dominate).
	if !(clusterTuples > 1.8*srsTuples) {
		t.Errorf("cluster evaluated %.0f tuples vs SRS %.0f — expected a clear advantage",
			clusterTuples, srsTuples)
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Empirical CI coverage of the final engine estimate across trials.
	// The paper's SRS variance approximation understates cluster
	// variance, so coverage below nominal is expected — but it should
	// remain substantial.
	covered, trials := 0, 40
	for seed := int64(1); seed <= int64(trials); seed++ {
		g, e := smallSelect(t, seed, 100)
		res, err := g.Count(e, Options{
			Quota: 4 * time.Second, Mode: Overrun, Seed: seed,
			Strategy: &timectrl.OneAtATime{DBeta: 24},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Interval.Contains(100) {
			covered++
		}
	}
	rate := float64(covered) / float64(trials)
	if rate < 0.6 {
		t.Errorf("95%% CI covered the truth in only %.0f%% of runs", rate*100)
	}
}

func TestPredictionRatioCentered(t *testing.T) {
	// Post-adaptation stage predictions should be centred: across many
	// stage-2+ records, the mean actual/predicted ratio stays near 1
	// (the load noise is mean-one and the coefficients are fitted).
	var acc stats.Accumulator
	for seed := int64(1); seed <= 30; seed++ {
		g, e := smallSelect(t, seed, 100)
		res, err := g.Count(e, Options{
			Quota: 4 * time.Second, Mode: Overrun, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.StageRecords[1:] { // skip the default-coefficient stage 1
			if r.Predicted > 0 && r.Completed {
				acc.Add(r.Actual.Seconds() / r.Predicted.Seconds())
			}
		}
	}
	if acc.N() < 20 {
		t.Fatalf("too few stage records: %d", acc.N())
	}
	// dβ=12 inflates sel⁺, so predictions skew slightly high (ratio a
	// bit under 1); gross mis-centering would flag a broken fit.
	if m := acc.Mean(); m < 0.6 || m > 1.25 {
		t.Errorf("mean actual/predicted ratio = %.3f, want near 1", m)
	}
}
