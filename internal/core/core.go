// Package core implements the paper's time-constrained aggregate query
// evaluation algorithm (Figure 3.1): given COUNT(E) and a time quota T,
// repetitively draw a cluster sample sized by the time-control strategy,
// evaluate the estimator, and stop when the quota (or another stopping
// criterion) is satisfied.
//
// Two execution modes mirror the paper:
//
//   - HardDeadline: a timer interrupt (deadline on the session clock)
//     aborts the running stage the moment the quota expires; the aborted
//     stage's work is wasted and the previous stage's estimate is
//     returned — the hard time constraint of §3.2.
//   - Overrun ("ERAM mode"): the final stage is allowed to complete past
//     the quota so its overspend can be measured — exactly how Section 5
//     instruments the prototype ("the ERAM does not abort a query
//     (stage) ... when the query overspends").
package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"tcq/internal/catalog"
	"tcq/internal/cost"
	"tcq/internal/estimator"
	"tcq/internal/exec"
	"tcq/internal/histogram"
	"tcq/internal/ra"
	"tcq/internal/sampling"
	"tcq/internal/stats"
	"tcq/internal/storage"
	"tcq/internal/timectrl"
	"tcq/internal/trace"
	"tcq/internal/tuple"
	"tcq/internal/vclock"
)

// Mode selects how the engine treats the quota boundary.
type Mode int

const (
	// HardDeadline aborts the running stage at quota expiry (timer
	// interrupt); the aborted stage's time is wasted.
	HardDeadline Mode = iota
	// Overrun lets the final stage finish past the quota and records
	// the overspent time (the paper's instrumented "ERAM mode").
	Overrun
)

// String names the mode.
func (m Mode) String() string {
	if m == Overrun {
		return "overrun"
	}
	return "hard"
}

// AggKind selects the aggregate function to estimate.
type AggKind int

const (
	// AggCount estimates COUNT(E) (the paper's aggregate).
	AggCount AggKind = iota
	// AggSum estimates SUM(E.column) — the paper's "any aggregate,
	// given an estimator" extension.
	AggSum
	// AggAvg estimates AVG(E.column) as the ratio SUM/COUNT.
	AggAvg
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	default:
		return "count"
	}
}

// SamplingPlan selects the sampling technique (the paper's Fig. 3.2
// decision).
type SamplingPlan int

const (
	// ClusterSampling draws whole disk blocks as sample units — the
	// prototype's choice ("efficiency in sampling and in evaluation").
	ClusterSampling SamplingPlan = iota
	// SimpleRandomSampling draws individual tuples; every tuple costs a
	// full block read, which is why the paper rejects it on disk.
	SimpleRandomSampling
)

// String names the sampling plan.
func (p SamplingPlan) String() string {
	if p == SimpleRandomSampling {
		return "srs"
	}
	return "cluster"
}

// Options configures a time-constrained evaluation.
type Options struct {
	// Quota is the time constraint T. Required.
	Quota time.Duration
	// Agg selects the aggregate (default COUNT). AggColumn names the
	// summed column for AggSum/AggAvg.
	Agg       AggKind
	AggColumn string
	// GroupBy, when non-empty, additionally estimates per-group COUNTs
	// over the named output column (Result.Groups).
	GroupBy string
	// Strategy sizes each stage; defaults to One-at-a-Time with d_β=12.
	Strategy timectrl.Strategy
	// Stop adds precision-based stopping criteria on top of the quota.
	Stop timectrl.Criterion
	// Mode selects hard-deadline or overrun (ERAM) behaviour.
	Mode Mode
	// Plan selects full (default) or partial fulfillment.
	Plan exec.Plan
	// Sampling selects cluster (default) or simple random sampling.
	Sampling SamplingPlan
	// Initial holds first-stage selectivity assumptions (Fig. 3.3
	// defaults when zero-valued fields are kept).
	Initial timectrl.Initials
	// Model is the adaptive cost model; a fresh adaptive model with
	// designer defaults is built when nil.
	Model *cost.Model
	// PrestoredSelectivities switches from the paper's run-time
	// selectivity estimation to the §3.1 alternative the paper
	// discusses and rejects for general use: exact per-operator
	// selectivities computed ahead of time (modelling maintained
	// statistics). Useful for the ablation comparing the approaches.
	PrestoredSelectivities bool
	// Histograms, when non-nil, supplies equi-depth histograms
	// ([PsCo 84]/[MuDe 88], the §3.1 prestored-statistics approach) used
	// to estimate the selectivity of selections over base relations;
	// operators the histograms cannot estimate fall back to run-time
	// estimation. Ignored when PrestoredSelectivities is set.
	Histograms *histogram.Catalog
	// Confidence is the CI level of the result (default 0.95).
	Confidence float64
	// Seed drives the block sampler.
	Seed int64
	// MinStageBlocks is the smallest per-relation stage draw (default 1).
	MinStageBlocks int
	// MaxStages caps the stage count (safety valve; default 1000).
	MaxStages int
	// OnStage, when non-nil, observes each completed stage's record —
	// the online-aggregation-style progressive estimate hook.
	OnStage func(StageRecord)
	// Trace, when non-nil, receives a human-readable line per stage
	// decision (selectivities, planned fraction, predicted vs actual
	// cost) — the debugging view of the time-control algorithm. It is
	// shorthand for a trace.Text tracer combined with Tracer.
	Trace io.Writer
	// Tracer observes the evaluation: one QueryInfo, one StageRecord
	// per stage (selectivities, chosen fraction, predicted vs actual
	// cost, per-relation draws, charge counters, estimator state) and
	// one QueryEnd. Defaults to trace.Nop, whose Enabled() gate lets
	// the engine skip all record construction.
	Tracer trace.Tracer
	// Metrics, when non-nil, aggregates cross-query observability
	// counters (stages run, quota overruns, deadline polls, sort/merge
	// comparisons, temp-file bytes, coverage fractions) plus the live
	// queries_in_flight gauge. It is touched at query entry and exit
	// only — never on the per-tuple hot path.
	Metrics *trace.Registry
	// Catalog, when non-nil, enables the sample-catalog warm path
	// (cluster sampling only): the query shape's canonical fingerprint
	// is resolved against the catalog before any randomness is
	// consumed, and on a hit the samplers replay the materialized
	// per-relation block permutations while stage 1 is sized by
	// timectrl.PickCatalogStage from the catalog's resolution ladder
	// — hot shapes skip the cold run's early discovery stages. On a
	// miss the run is byte-identical to a catalog-disabled run (the
	// lookup touches neither the session clock nor any RNG), and the
	// completed run's coverage is recorded as the shape's hint so the
	// next identical shape hits.
	Catalog *catalog.Catalog
	// Parallelism bounds the worker pool evaluating a stage (≤ 1 =
	// serial). The budget is spent on two tiers: the signed SJIP terms
	// of the query run concurrently on recording lanes replayed in term
	// order (internal/exec/lane.go), and within a term, charge-free
	// sub-tasks — a merge's two run sorts and the cumulative plan's two
	// bucket joins — fan out through a sub-worker semaphore
	// (Env.runPar). Results are byte-identical for any value, including
	// single-term (pure join/intersect) queries. HardDeadline queries
	// keep terms serial — their abort points depend on the global
	// charge interleaving, which deferred lane charges cannot
	// reproduce — but still use the sub-term tier, which performs no
	// charges and so cannot move an abort point.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Confidence <= 0 || o.Confidence >= 1 {
		o.Confidence = 0.95
	}
	if o.MinStageBlocks < 1 {
		o.MinStageBlocks = 1
	}
	if o.MaxStages <= 0 {
		o.MaxStages = 1000
	}
	if init := (timectrl.Initials{}); o.Initial == init {
		o.Initial = timectrl.DefaultInitials()
	}
	return o
}

// StageRecord documents one stage of the evaluation.
type StageRecord struct {
	Index     int           // 1-based stage number
	Fraction  float64       // planned stage sample fraction
	Blocks    int           // blocks drawn this stage (all relations)
	Predicted time.Duration // QCOST(f, SEL⁺) for the stage
	Actual    time.Duration // realised stage duration
	Estimate  float64       // COUNT estimate after the stage
	Variance  float64
	Completed bool // false when the stage was aborted (hard mode)
	InTime    bool // completed within the quota
}

// Result is the outcome of a time-constrained evaluation.
type Result struct {
	// Estimate is the COUNT estimate from the last stage that finished
	// within the quota (zero-valued if none did).
	Estimate estimator.Estimate
	// Interval is the normal-approximation CI at Options.Confidence.
	Interval stats.Interval
	// Stages is the number of stages completed within the quota.
	Stages int
	// Blocks is the number of disk blocks evaluated within the quota
	// (the paper's "blocks" column).
	Blocks int
	// Elapsed is the total time consumed, including any overrun.
	Elapsed time.Duration
	// Successful is the time through the last within-quota stage (the
	// numerator of the paper's "utilization" column).
	Successful time.Duration
	// Overspent reports whether the quota was exceeded, and by how much
	// (the paper's "ovsp": the time past the quota needed to finish the
	// stage that was running at expiry; measured in Overrun mode).
	Overspent bool
	Overspend time.Duration
	// Wasted is quota − Successful: leftover too small for a stage plus
	// any within-quota time spent on an aborted stage.
	Wasted time.Duration
	// Utilization is Successful/Quota in [0, 1].
	Utilization float64
	// StopReason explains why evaluation ended.
	StopReason string
	// StageRecords documents every stage, including an aborted one.
	StageRecords []StageRecord
	// Groups holds per-group COUNT estimates (Options.GroupBy), from
	// the last stage completed within the quota.
	Groups []exec.GroupEstimate
}

// Engine evaluates time-constrained COUNT queries against a store.
type Engine struct {
	store *storage.Store
}

// NewEngine creates an engine over a store.
func NewEngine(store *storage.Store) *Engine { return &Engine{store: store} }

// Count runs the time-constrained evaluation of COUNT(e) (Fig. 3.1).
func (g *Engine) Count(e ra.Expr, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Quota <= 0 {
		return nil, errors.New("core: a positive time quota is required")
	}
	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	// Hard-deadline abort points depend on the exact global charge
	// interleaving, which deferred lane replay cannot reproduce — terms
	// stay serial. The sub-term tier (charge-free sorts and bucket-join
	// walks inside one operator stage) is interleaving-neutral, so the
	// full worker budget still applies below the term level.
	termWorkers := workers
	if opts.Mode == HardDeadline {
		termWorkers = 1
	}
	if opts.Metrics != nil {
		// Live occupancy gauge for the telemetry server: queries enter
		// here and leave on every return path. Registry ops never touch
		// the session clock, so determinism is unaffected.
		opts.Metrics.AddGauge("queries_in_flight", 1)
		defer opts.Metrics.AddGauge("queries_in_flight", -1)
	}
	cat := exec.StoreCatalog{Store: g.store}
	env := exec.NewEnv(g.store)
	q, err := exec.NewTieredParallelQuery(e, env, cat, opts.Plan, termWorkers, workers)
	if err != nil {
		return nil, err
	}
	if len(q.Feeds) == 0 {
		return nil, errors.New("core: query references no relations")
	}
	if opts.Agg != AggCount {
		if opts.AggColumn == "" {
			return nil, errors.New("core: AggSum/AggAvg need AggColumn")
		}
		if err := q.SetAggregate(opts.AggColumn); err != nil {
			return nil, err
		}
	}
	if opts.GroupBy != "" {
		if err := q.SetGroupBy(opts.GroupBy); err != nil {
			return nil, err
		}
	}
	aggregate := func() estimator.Estimate {
		switch opts.Agg {
		case AggSum:
			return q.SumEstimate()
		case AggAvg:
			return estimator.Ratio(q.SumEstimate(), q.Estimate())
		default:
			return q.Estimate()
		}
	}

	// Per-relation samplers (equal sample fractions across relations).
	// Under cluster sampling the units are disk blocks; under SRS they
	// are individual tuples.
	// Feeds are iterated in sorted name order wherever the shared RNG
	// is consumed or the session clock is charged: Go's randomized map
	// order would otherwise make identically-seeded runs diverge.
	feedNames := q.FeedNames()

	// Sample-catalog warm path (cluster sampling only): resolve the
	// canonical query shape before any randomness is consumed. Lookup
	// is pure host work — no clock charge, no RNG draw — so a miss
	// leaves the run byte-identical to a catalog-disabled one.
	var warm *catalog.Hit
	var warmStale bool
	var fingerprint string
	if opts.Catalog != nil && opts.Sampling == ClusterSampling {
		fingerprint = catalog.Fingerprint(e)
		views := make([]catalog.RelView, 0, len(feedNames))
		for _, name := range feedNames {
			f := q.Feeds[name]
			views = append(views, catalog.RelView{
				Name:      name,
				NumBlocks: f.Rel.NumBlocks(),
				NumTuples: f.Rel.NumTuples(),
			})
		}
		warm, warmStale = opts.Catalog.Lookup(fingerprint, views)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	samplers := map[string]*sampling.RelationSample{}
	minBlocks, maxBlocks := math.MaxInt32, 0
	for _, name := range feedNames {
		f := q.Feeds[name]
		units := f.Rel.NumBlocks()
		if opts.Sampling == SimpleRandomSampling {
			units = int(f.Rel.NumTuples())
			f.SetSRS(true)
		}
		if units == 0 {
			return nil, fmt.Errorf("core: relation %q is empty", name)
		}
		if warm != nil {
			// Replay the materialized seeded permutation: the warm
			// sample is the catalog sample, drawn at build time.
			samplers[name] = sampling.NewRelationSampleFromPerm(name, warm.Perm(name), f.Rel.NumTuples())
		} else {
			samplers[name] = sampling.NewRelationSample(name, units, f.Rel.NumTuples(), rng)
		}
		if units < minBlocks {
			minBlocks = units
		}
		if units > maxBlocks {
			maxBlocks = units
		}
	}

	model := opts.Model
	if model == nil {
		bf := q.Feeds[firstKey(q.Feeds)].Rel.BlockingFactor()
		model = cost.NewModel(cost.DefaultCoefficients(g.store.Costs(), bf), true)
	}
	strategy := opts.Strategy
	if strategy == nil {
		strategy = &timectrl.OneAtATime{DBeta: 12}
	}

	var oracle map[int]float64
	switch {
	case opts.PrestoredSelectivities:
		oracle, err = buildOracle(q, cat)
		if err != nil {
			return nil, err
		}
	case opts.Histograms != nil:
		oracle = buildHistogramOracle(q, opts.Histograms)
	}

	clock := g.store.Clock()
	start := clock.Now()
	deadline := vclock.NewDeadline(clock, opts.Quota)
	if opts.Mode == HardDeadline {
		env.SetDeadline(deadline)
	}

	// Tracing is read-only with respect to the simulation: it never
	// charges the clock or consumes sampler randomness, so identically
	// seeded runs produce identical results whether it is on or off.
	tracer := trace.Combine(opts.Tracer, textTracer(opts.Trace))
	tracing := tracer.Enabled()
	startCharges := chargesSnapshot(g.store, env)
	if tracing {
		tracer.BeginQuery(trace.QueryInfo{
			Query:    e.String(),
			Quota:    opts.Quota,
			Strategy: strategy.Name(),
			Mode:     opts.Mode.String(),
			Plan:     opts.Plan.String(),
			Sampling: opts.Sampling.String(),
			Catalog:  catalogTag(warm),
			Seed:     opts.Seed,
			Start:    start,
		})
	}

	res := &Result{StopReason: "quota exhausted"}
	var history []float64
	lastGood := estimator.Estimate{}
	successfulEnd := start

	for stageIdx := 1; stageIdx <= opts.MaxStages; stageIdx++ {
		// Model between-stage system-load variability when the clock
		// supports it (a simulated clock with load noise enabled).
		if lv, ok := clock.(interface{ ResampleLoad() }); ok {
			lv.ResampleLoad()
		}
		elapsed := clock.Now() - start
		remaining := opts.Quota - elapsed
		if remaining <= 0 {
			res.StopReason = "quota exhausted"
			break
		}

		// Determine the stage sample fraction (Fig. 3.4).
		var roots []*exec.NodeInfo
		for _, te := range q.Terms {
			roots = append(roots, exec.Snapshot(te.Root))
		}
		maxFraction, covered := 1.0, 1.0
		for name, s := range samplers {
			remFrac := float64(s.Remaining()) / float64(s.DTotal)
			if remFrac < maxFraction {
				maxFraction = remFrac
			}
			cumFrac := s.Fraction()
			if cumFrac < covered {
				covered = cumFrac
			}
			_ = name
		}
		if maxFraction <= 0 {
			res.StopReason = "sample exhausted (census reached)"
			break
		}
		minFraction := float64(opts.MinStageBlocks) / float64(maxBlocks)
		setMinFraction(strategy, minFraction)
		planIn := timectrl.PlanInput{
			Roots:       roots,
			Model:       model,
			Remaining:   remaining,
			Stage:       stageIdx,
			CoveredFrac: covered,
			MaxFraction: maxFraction,
			Initial:     opts.Initial,
			Oracle:      oracle,
		}
		var plan timectrl.Plan
		if warm != nil && stageIdx == 1 {
			// Warm first stage: jump straight to the smallest catalog
			// resolution covering the shape's historical stopping
			// coverage — the stages a cold run spends discovering that
			// coverage are skipped. Predicted is the model's QCOST for
			// evaluating the reused sample, d_β-inflated like any plan.
			plan = timectrl.PickCatalogStage(planIn, warm.Resolutions, warm.HintFrac, strategyDBeta(strategy))
		}
		if plan.Fraction <= 0 {
			plan = strategy.PlanStage(planIn)
		}
		if plan.Fraction <= 0 && stageIdx > 1 {
			// Even the smallest stage does not fit the leftover quota —
			// the paper terminates here (observed for join at high d_β).
			res.StopReason = "remaining quota too small for another stage"
			break
		}
		if plan.Fraction <= 0 {
			// Stage 1 always runs at the minimum size: some answer beats
			// none, and the paper's first stage is unconditional.
			plan.Fraction = minFraction
		}

		var preCharges trace.Charges
		var preCum map[int]int64
		if tracing {
			preCharges = chargesSnapshot(g.store, env)
			preCum = cumOutByNode(roots)
		}

		// Draw the stage's blocks (equal fractions, ≥ MinStageBlocks).
		stageStart := clock.Now()
		stageBlocks := 0
		aborted := false
		for _, name := range feedNames {
			f := q.Feeds[name]
			s := samplers[name]
			k := int(math.Round(plan.Fraction * float64(s.DTotal)))
			if k < opts.MinStageBlocks {
				k = opts.MinStageBlocks
			}
			blocks := s.Draw(k)
			if len(blocks) == 0 {
				continue
			}
			stageBlocks += len(blocks)
			if err := f.LoadStage(blocks); err != nil {
				if exec.IsAborted(err) {
					aborted = true
					break
				}
				return nil, err
			}
			if err := s.SetStageTuples(len(s.Stages)-1, stageTupleCount(f)); err != nil {
				return nil, err
			}
		}
		if !aborted {
			// Feeds that drew nothing this stage (exhausted relations)
			// still need a stage entry so term stage indices align.
			for _, name := range feedNames {
				f := q.Feeds[name]
				for f.Stages() < stageIdx {
					if err := f.LoadStage(nil); err != nil {
						return nil, err
					}
				}
			}
			if err := q.AdvanceStage(stageIdx - 1); err != nil {
				if exec.IsAborted(err) {
					aborted = true
				} else {
					return nil, err
				}
			}
		}
		stageEnd := clock.Now()
		stageDur := stageEnd - stageStart
		inTime := stageEnd-start <= opts.Quota

		var trec trace.StageRecord
		if tracing {
			trec = trace.StageRecord{
				Stage:       stageIdx,
				Fraction:    plan.Fraction,
				SearchIters: plan.Iterations,
				DBeta:       plan.DBeta,
				Predicted:   plan.Predicted,
				Actual:      stageDur,
				Overshoot:   overshoot(plan.Predicted, stageDur),
				Remaining:   opts.Quota - (stageEnd - start),
				Blocks:      stageBlocks,
				Charges:     chargesSnapshot(g.store, env).Sub(preCharges),
				Completed:   !aborted,
				InTime:      !aborted && inTime,
			}
			for _, name := range feedNames {
				s := samplers[name]
				if len(s.Stages) < stageIdx {
					continue
				}
				d := s.Stages[stageIdx-1]
				trec.Relations = append(trec.Relations, trace.RelationDraw{
					Relation:    name,
					Blocks:      len(d.Blocks),
					Tuples:      d.Tuples,
					CumBlocks:   s.CumBlocks(stageIdx - 1),
					CumFraction: s.Fraction(),
				})
			}
			// Re-derive the sel⁺ values the stage was planned with (a
			// pure re-prediction over the pre-stage snapshots), then
			// pair them with the post-stage operator state.
			planned := map[int]float64{}
			for _, os := range timectrl.PlanSelectivities(planIn, plan.DBeta, plan.Fraction) {
				planned[os.Node] = os.SelPlus
			}
			for _, te := range q.Terms {
				exec.WalkInfo(exec.Snapshot(te.Root), func(n *exec.NodeInfo) {
					if n.Op == exec.OpBase {
						return
					}
					op := trace.OpStat{
						Node:      n.ID,
						Op:        n.Op.String(),
						Sel:       timectrl.Selectivity(n, opts.Initial),
						SelPlus:   planned[n.ID],
						StageOut:  n.CumOut - preCum[n.ID],
						CumOut:    n.CumOut,
						CumPoints: n.CumPoints,
					}
					if n.Src != nil {
						op.Expr = n.Src.String()
					}
					for _, c := range n.Children {
						op.Children = append(op.Children, c.ID)
					}
					trec.Operators = append(trec.Operators, op)
				})
			}
			trace.SortOps(trec.Operators)
		}

		rec := StageRecord{
			Index:     stageIdx,
			Fraction:  plan.Fraction,
			Blocks:    stageBlocks,
			Predicted: plan.Predicted,
			Actual:    stageDur,
			Completed: !aborted,
			InTime:    !aborted && inTime,
		}

		if aborted {
			// Hard mode: the interrupt fired; the stage's time inside the
			// quota is wasted, and the previous estimate stands.
			res.Overspent = true
			res.StageRecords = append(res.StageRecords, rec)
			res.StopReason = "hard deadline: stage aborted"
			if tracing {
				tracer.StageDone(trec)
			}
			break
		}

		model.Observe(env.TakeTimings())
		strategy.ObserveStage(plan.Predicted, stageDur)

		est := aggregate()
		rec.Estimate = est.Value
		rec.Variance = est.Variance
		res.StageRecords = append(res.StageRecords, rec)
		if tracing {
			trec.Estimate = est.Value
			trec.StdErr = est.StdErr()
			trec.Interval = est.Interval(opts.Confidence).Half
			tracer.StageDone(trec)
		}
		if opts.OnStage != nil {
			opts.OnStage(rec)
		}

		if !inTime {
			// Overrun mode: the stage finished past the quota. Record the
			// overspend; the stage does not count toward the result
			// (a hard environment would have lost it).
			res.Overspent = true
			res.Overspend = (stageEnd - start) - opts.Quota
			res.StopReason = "quota exceeded during stage (overrun measured)"
			break
		}

		lastGood = est
		if opts.GroupBy != "" {
			res.Groups = q.GroupEstimates()
		}
		history = append(history, est.Value)
		res.Stages = stageIdx
		res.Blocks += stageBlocks
		successfulEnd = stageEnd

		if opts.Stop != nil {
			state := timectrl.StopState{
				Stage:    stageIdx,
				Elapsed:  stageEnd - start,
				Quota:    opts.Quota,
				Estimate: est,
				History:  history,
			}
			if done, why := opts.Stop.Done(state); done {
				res.StopReason = why
				break
			}
		}
	}

	res.Estimate = lastGood
	res.Interval = lastGood.Interval(opts.Confidence)
	res.Elapsed = clock.Now() - start
	res.Successful = successfulEnd - start
	if res.Successful > opts.Quota {
		res.Successful = opts.Quota
	}
	res.Utilization = float64(res.Successful) / float64(opts.Quota)
	if w := opts.Quota - res.Successful; w > 0 {
		res.Wasted = w
	}
	if res.Overspent && res.Overspend == 0 && opts.Mode == HardDeadline {
		// Hard mode can't measure the counterfactual completion time;
		// the overspend is the wasted in-quota time of the aborted stage.
		res.Overspend = 0
	}
	if tracing {
		tracer.EndQuery(trace.QueryEnd{
			Stages:      res.Stages,
			Blocks:      res.Blocks,
			Elapsed:     res.Elapsed,
			Successful:  res.Successful,
			Utilization: res.Utilization,
			Overspent:   res.Overspent,
			Overspend:   res.Overspend,
			StopReason:  res.StopReason,
			Estimate:    res.Estimate.Value,
			StdErr:      res.Estimate.StdErr(),
			Interval:    res.Interval.Half,
		})
	}
	coverage := 1.0
	for _, s := range samplers {
		if f := s.Fraction(); f < coverage {
			coverage = f
		}
	}
	if opts.Catalog != nil && fingerprint != "" {
		// Record the shape's realized stopping coverage as its reuse
		// hint (the first, cold run of a shape plants the hint the next
		// run hits on), and account a hit's reused sample volume. Both
		// are host-side catalog writes: no clock charge, no RNG draw.
		// The hint only counts successful stages: an overrun final
		// stage's blocks were drawn but bought nothing within the
		// quota, and folding them in would teach the catalog to plan
		// warm first stages that history says do NOT fit.
		if res.Stages > 0 {
			hintCov := 1.0
			for _, s := range samplers {
				var f float64
				if s.DTotal > 0 && len(s.Stages) >= res.Stages {
					f = float64(s.CumBlocks(res.Stages-1)) / float64(s.DTotal)
				}
				if f < hintCov {
					hintCov = f
				}
			}
			opts.Catalog.RecordShape(fingerprint, feedNames, hintCov, res.Interval.Half)
		}
		if warm != nil {
			opts.Catalog.ChargeReuse(res.Blocks, int64(res.Blocks)*int64(g.store.BlockSize()))
		}
	}
	if opts.Metrics != nil {
		d := chargesSnapshot(g.store, env).Sub(startCharges)
		// One atomic batch: a concurrent Snapshot must never see the
		// query counted but its stage/charge totals missing.
		opts.Metrics.Update(func(m trace.Tx) {
			m.Add("queries", 1)
			m.Add("stages", int64(res.Stages))
			if res.Overspent {
				m.Add("quota_overruns", 1)
			}
			m.Add("blocks_read", d.BlocksRead)
			m.Add("pages_written", d.PagesWritten)
			m.Add("temp_bytes", d.TempBytes)
			m.Add("comparisons", d.Comparisons)
			m.Add("deadline_polls", d.DeadlinePolls)
			m.Observe("coverage_fraction", coverage)
			m.Observe("stages_per_query", float64(res.Stages))
			m.Observe("blocks_per_query", float64(res.Blocks))
			m.Observe("utilization", res.Utilization)
			if opts.Catalog != nil {
				m.Add("catalog_lookups", 1)
				if warm != nil {
					m.Add("catalog_hits", 1)
					m.Add("catalog_blocks_reused", int64(res.Blocks))
					m.Add("catalog_bytes_reused", int64(res.Blocks)*int64(g.store.BlockSize()))
				} else {
					m.Add("catalog_misses", 1)
					if warmStale {
						m.Add("catalog_stale", 1)
					}
				}
			}
		})
	}
	return res, nil
}

// catalogTag renders the QueryInfo catalog marker: "hit" for a warm
// run, empty otherwise (so miss traces match catalog-disabled ones).
func catalogTag(warm *catalog.Hit) string {
	if warm != nil {
		return "hit"
	}
	return ""
}

// strategyDBeta extracts the sel⁺ risk knob the configured strategy
// plans with, so a warm catalog stage is inflated identically.
func strategyDBeta(s timectrl.Strategy) float64 {
	if o, ok := s.(*timectrl.OneAtATime); ok {
		return o.DBeta
	}
	return 0
}

// textTracer wraps the legacy Options.Trace writer as a tracer (nil in,
// nil out — Combine drops it).
func textTracer(w io.Writer) trace.Tracer {
	if w == nil {
		return nil
	}
	return trace.NewText(w)
}

// chargesSnapshot copies the session's cumulative physical counters
// into the trace representation; stage and query deltas come from
// subtracting two snapshots.
func chargesSnapshot(st *storage.Store, env *exec.Env) trace.Charges {
	c := st.Counters()
	return trace.Charges{
		BlocksRead:    c.BlocksRead,
		PagesWritten:  c.PagesWritten,
		TuplesRead:    c.TuplesRead,
		TuplesWritten: c.TuplesWritten,
		TempBytes:     c.TempBytes,
		Comparisons:   env.Comparisons,
		DeadlinePolls: env.DeadlinePolls,
	}
}

// cumOutByNode indexes a snapshot forest's cumulative output tuples by
// node id (the baseline for per-stage tuple-flow deltas).
func cumOutByNode(roots []*exec.NodeInfo) map[int]int64 {
	out := map[int]int64{}
	for _, root := range roots {
		exec.WalkInfo(root, func(n *exec.NodeInfo) { out[n.ID] = n.CumOut })
	}
	return out
}

// overshoot is the risk margin Actual/Predicted − 1, 0 when no
// prediction was made (guards the NaN/Inf that JSON cannot encode).
func overshoot(predicted, actual time.Duration) float64 {
	if predicted <= 0 {
		return 0
	}
	return float64(actual)/float64(predicted) - 1
}

// ExactCount evaluates COUNT(e) exactly (no sampling, no time
// constraint) — ground truth for experiments and tests.
func (g *Engine) ExactCount(e ra.Expr) (int64, error) {
	return ra.CountExact(e, exec.StoreCatalog{Store: g.store})
}

// ExactSum evaluates SUM(e.col) exactly.
func (g *Engine) ExactSum(e ra.Expr, col string) (float64, error) {
	return ra.SumExact(e, col, exec.StoreCatalog{Store: g.store})
}

// ExactAvg evaluates AVG(e.col) exactly (0 for an empty result).
func (g *Engine) ExactAvg(e ra.Expr, col string) (float64, error) {
	sum, err := g.ExactSum(e, col)
	if err != nil {
		return 0, err
	}
	n, err := g.ExactCount(e)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// buildOracle computes exact per-operator selectivities for every node
// of the query (the §3.1 "prestored" statistics): sel(op) = exact
// output cardinality / exact operand point count, with the same point
// definitions the executors track at run time. Exact counts are
// memoized per subexpression.
func buildOracle(q *exec.Query, rels ra.Relations) (map[int]float64, error) {
	counts := map[string]float64{}
	countOf := func(e ra.Expr) (float64, error) {
		k := e.String()
		if c, ok := counts[k]; ok {
			return c, nil
		}
		n, err := ra.CountExact(e, rels)
		if err != nil {
			return 0, err
		}
		counts[k] = float64(n)
		return float64(n), nil
	}
	oracle := map[int]float64{}
	var walkErr error
	for _, te := range q.Terms {
		exec.WalkInfo(exec.Snapshot(te.Root), func(n *exec.NodeInfo) {
			if walkErr != nil || n.Op == exec.OpBase || n.Src == nil {
				return
			}
			out, err := countOf(n.Src)
			if err != nil {
				walkErr = err
				return
			}
			points := 1.0
			for _, c := range n.Children {
				if c.Src == nil {
					walkErr = fmt.Errorf("core: oracle: node %d missing source expr", c.ID)
					return
				}
				p, err := countOf(c.Src)
				if err != nil {
					walkErr = err
					return
				}
				points *= p
			}
			if points > 0 {
				oracle[n.ID] = out / points
			}
		})
	}
	if walkErr != nil {
		return nil, walkErr
	}
	return oracle, nil
}

// buildHistogramOracle estimates selectivities for selections over
// base relations from equi-depth histograms. Nodes the histograms
// cannot cover are simply absent from the map (run-time estimation
// applies to them).
func buildHistogramOracle(q *exec.Query, cat *histogram.Catalog) map[int]float64 {
	oracle := map[int]float64{}
	for _, te := range q.Terms {
		exec.WalkInfo(exec.Snapshot(te.Root), func(n *exec.NodeInfo) {
			if n.Op != exec.OpSelect || n.Src == nil || len(n.Children) != 1 {
				return
			}
			sel, ok := n.Src.(*ra.Select)
			if !ok {
				return
			}
			base, ok := sel.Input.(*ra.Base)
			if !ok {
				return
			}
			if s, ok := cat.PredSelectivity(base.Name, sel.Pred); ok {
				oracle[n.ID] = s
			}
		})
	}
	return oracle
}

// BuildHistograms constructs equi-depth histograms (with the given
// bucket count) for every numeric column of every relation in the
// store — the "ANALYZE" step of the prestored-statistics approach.
func BuildHistograms(st *storage.Store, buckets int) (*histogram.Catalog, error) {
	cat := histogram.NewCatalog()
	for _, name := range st.RelationNames() {
		rel, err := st.Relation(name)
		if err != nil {
			return nil, err
		}
		sch := rel.Schema()
		ts := rel.AllTuples()
		for i := 0; i < sch.NumCols(); i++ {
			col := sch.Col(i)
			if col.Type != tuple.Int && col.Type != tuple.Float {
				continue
			}
			if err := cat.Add(name, sch, ts, col.Name, buckets); err != nil {
				return nil, err
			}
		}
	}
	return cat, nil
}

// stageTupleCount returns the tuples loaded in a feed's latest stage.
func stageTupleCount(f *exec.Feed) int {
	return f.StageLen(f.Stages() - 1)
}

// setMinFraction pushes the engine-computed minimum stage fraction into
// strategies that expose one.
func setMinFraction(s timectrl.Strategy, f float64) {
	switch v := s.(type) {
	case *timectrl.OneAtATime:
		v.MinFraction = f
	case *timectrl.SingleInterval:
		v.MinFraction = f
	case *timectrl.Heuristic:
		v.MinFraction = f
	}
}

func firstKey(m map[string]*exec.Feed) string {
	first := ""
	for k := range m {
		if first == "" || k < first {
			first = k
		}
	}
	return first
}

// FullScanCount evaluates COUNT(e) exactly WITH full cost accounting:
// it runs the sample executor over a census (every block of every
// operand relation in one stage), so the session clock is charged for
// all the work an unconstrained evaluation performs. This is the
// honest baseline a time-constrained estimate competes against.
func (g *Engine) FullScanCount(e ra.Expr) (int64, error) {
	cat := exec.StoreCatalog{Store: g.store}
	env := exec.NewEnv(g.store)
	q, err := exec.NewQuery(e, env, cat, exec.FullFulfillment)
	if err != nil {
		return 0, err
	}
	for _, name := range q.FeedNames() {
		f := q.Feeds[name]
		blocks := make([]int, f.Rel.NumBlocks())
		for i := range blocks {
			blocks[i] = i
		}
		if err := f.LoadStage(blocks); err != nil {
			return 0, err
		}
	}
	if err := q.AdvanceStage(0); err != nil {
		return 0, err
	}
	est := q.Estimate()
	return int64(math.Round(est.Value)), nil
}
