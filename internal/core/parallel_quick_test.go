package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"tcq/internal/ra"
	"tcq/internal/storage"
	"tcq/internal/timectrl"
	"tcq/internal/trace"
	"tcq/internal/vclock"
	"tcq/internal/workload"
)

// exprCase is a quick.Generator: one random RA expression over the
// fixture relations plus a sampler seed. Set operations stay within
// the schema-compatible r1/r2 family (so union/diff/intersect are
// well-typed and decompose into multiple signed terms — the case that
// actually exercises parallel term evaluation); joins draw from the
// j1/j2 pair, optionally with selections pushed onto either input.
type exprCase struct {
	Expr ra.Expr
	Seed int64
}

func (exprCase) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(exprCase{Expr: genTopExpr(r), Seed: 1 + r.Int63n(1<<30)})
}

func genTopExpr(r *rand.Rand) ra.Expr {
	switch r.Intn(4) {
	case 0:
		return &ra.Project{Input: genSetExpr(r, 2), Cols: []string{"a"}}
	case 1:
		return &ra.Join{Left: genJoinSide(r, "j1"), Right: genJoinSide(r, "j2"),
			On: []ra.JoinCond{{LeftCol: "a", RightCol: "a"}}}
	default:
		return genSetExpr(r, 2)
	}
}

// genSetExpr produces schema-preserving expressions over r1/r2.
func genSetExpr(r *rand.Rand, depth int) ra.Expr {
	base := func() ra.Expr {
		name := "r1"
		if r.Intn(2) == 0 {
			name = "r2"
		}
		return &ra.Base{Name: name}
	}
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return base()
		}
		return &ra.Select{Input: base(), Pred: genPred(r)}
	}
	l, rr := genSetExpr(r, depth-1), genSetExpr(r, depth-1)
	switch r.Intn(4) {
	case 0:
		return &ra.Union{Left: l, Right: rr}
	case 1:
		return &ra.Difference{Left: l, Right: rr}
	case 2:
		return &ra.Intersect{Inputs: []ra.Expr{l, rr}}
	default:
		return &ra.Select{Input: l, Pred: genPred(r)}
	}
}

func genJoinSide(r *rand.Rand, name string) ra.Expr {
	if r.Intn(2) == 0 {
		return &ra.Base{Name: name}
	}
	return &ra.Select{Input: &ra.Base{Name: name}, Pred: genPred(r)}
}

func genPred(r *rand.Rand) ra.Pred {
	c := &ra.Cmp{Left: ra.Col{Name: "a"}, Op: ra.Lt,
		Right: ra.Const{Value: int64(100 + r.Intn(2400))}}
	if r.Intn(3) == 0 {
		return &ra.And{L: c, R: &ra.Cmp{Left: ra.Col{Name: "id"},
			Op: ra.Ge, Right: ra.Const{Value: int64(r.Intn(500))}}}
	}
	return c
}

// buildCaseStore builds the property tests' fixture store (fixed data
// seed, fixed sim-clock seed): the r1/r2 intersection family and the
// j1/j2 join pair, columnar as the workload generators produce them.
func buildCaseStore(t *testing.T) *storage.Store {
	t.Helper()
	clk := vclock.NewSim(7, 0.02)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	rng := rand.New(rand.NewSource(42))
	if _, _, err := workload.IntersectPair(st, "r1", "r2", 3000, 600, rng); err != nil {
		t.Fatal(err)
	}
	if _, _, err := workload.JoinPair(st, "j1", "j2", 2000, 8000, rng); err != nil {
		t.Fatal(err)
	}
	return st
}

// fingerprintOn evaluates one expression on st with the given worker
// count and mode and returns a full fingerprint of the observable
// outcome: estimate, stage count, overspend accounting, and the
// complete JSON-serialized stage trace.
func fingerprintOn(t *testing.T, st *storage.Store, c exprCase, workers int, mode Mode, quota time.Duration) string {
	t.Helper()
	col := trace.NewCollector()
	res, err := NewEngine(st).Count(c.Expr, Options{
		Quota:       quota,
		Mode:        mode,
		Seed:        c.Seed,
		Initial:     timectrl.Initials{Select: 1, Join: 0.1, Project: 1},
		Tracer:      col,
		Parallelism: workers,
	})
	if err != nil {
		return "error: " + err.Error()
	}
	tr, jerr := json.Marshal(col.Trace())
	if jerr != nil {
		t.Fatal(jerr)
	}
	return fmt.Sprintf("estimate=%v variance=%v stages=%d blocks=%d elapsed=%d overspent=%v overspend=%d util=%v stop=%q trace=%s",
		res.Estimate.Value, res.Estimate.Variance, res.Stages, res.Blocks,
		res.Elapsed, res.Overspent, res.Overspend, res.Utilization, res.StopReason, tr)
}

// runCase is fingerprintOn over a freshly built fixture store in the
// paper's Overrun mode.
func runCase(t *testing.T, c exprCase, workers int) string {
	t.Helper()
	return fingerprintOn(t, buildCaseStore(t), c, workers, Overrun, 8*time.Second)
}

// TestParallelEquivalenceQuick is the determinism property: for random
// RA expressions, serial evaluation and parallel evaluation with 2 and
// 8 workers produce identical estimates, stage counts, and stage
// traces. This pins the lane record/replay contract — parallelism must
// be unobservable in results.
func TestParallelEquivalenceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property test builds a fresh store per run")
	}
	property := func(c exprCase) bool {
		serial := runCase(t, c, 1)
		for _, workers := range []int{2, 8} {
			if got := runCase(t, c, workers); got != serial {
				t.Logf("expr %s seed %d workers %d:\n serial: %s\nworkers: %s",
					c.Expr, c.Seed, workers, serial, got)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 12,
		Rand:     rand.New(rand.NewSource(99)),
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
