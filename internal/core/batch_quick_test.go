package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tcq/internal/storage"
	"tcq/internal/vclock"
)

// rowBackedTwin copies every relation of src into a fresh store as
// row blocks (plain Append never selects columnar storage), so every
// executor takes its scalar tuple-at-a-time path — the batch paths key
// off Relation.Columnar(). Loading charges no clock, so the twin's
// simulated machine starts in exactly the same state.
func rowBackedTwin(t *testing.T, src *storage.Store) *storage.Store {
	t.Helper()
	clk := vclock.NewSim(7, 0.02)
	st := storage.NewStore(clk, storage.SunProfile(), storage.DefaultBlockSize)
	for _, name := range src.RelationNames() {
		rel, err := src.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		twin, err := st.CreateRelation(name, rel.Schema())
		if err != nil {
			t.Fatal(err)
		}
		if err := twin.AppendAll(rel.AllTuples()); err != nil {
			t.Fatal(err)
		}
		if twin.Columnar() {
			t.Fatalf("twin relation %s is columnar; row twin must not be", name)
		}
	}
	return st
}

// TestBatchRowEquivalenceQuick is the batch-transparency property: for
// random RA expressions, evaluation over columnar relations (the
// batch-at-a-time hot path) and over row-backed twins of the same data
// (the scalar reference path) produce identical estimates, stage
// counts, overspend accounting, and stage traces — at 1, 2 and 8
// workers. This pins the tentpole contract that batching is purely a
// host-side representation change: every simulated charge, poll and
// comparison count is reproduced exactly.
func TestBatchRowEquivalenceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property test builds fresh stores per run")
	}
	property := func(c exprCase) bool {
		want := runCase(t, c, 1) // columnar, serial: the batched hot path
		for _, workers := range []int{1, 2, 8} {
			rows := rowBackedTwin(t, buildCaseStore(t))
			if got := fingerprintOn(t, rows, c, workers, Overrun, 8*time.Second); got != want {
				t.Logf("expr %s seed %d workers %d (row-backed):\ncolumnar: %s\n    rows: %s",
					c.Expr, c.Seed, workers, want, got)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 8,
		Rand:     rand.New(rand.NewSource(123)),
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
