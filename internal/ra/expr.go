package ra

import (
	"fmt"
	"sort"
	"strings"

	"tcq/internal/tuple"
)

// Catalog resolves base relation names to schemas.
type Catalog interface {
	RelationSchema(name string) (*tuple.Schema, error)
}

// Expr is a relational algebra expression.
type Expr interface {
	// String renders the expression in the tcq RA syntax.
	String() string
	// Schema infers the output schema against a catalog.
	Schema(cat Catalog) (*tuple.Schema, error)
	isExpr()
}

// Base references a stored relation by name.
type Base struct{ Name string }

func (b *Base) isExpr()        {}
func (b *Base) String() string { return b.Name }

// Schema returns the base relation's schema.
func (b *Base) Schema(cat Catalog) (*tuple.Schema, error) {
	return cat.RelationSchema(b.Name)
}

// Select filters its input by a predicate.
type Select struct {
	Input Expr
	Pred  Pred
}

func (s *Select) isExpr() {}
func (s *Select) String() string {
	return "select(" + s.Input.String() + ", " + s.Pred.String() + ")"
}

// Schema returns the input schema (selection preserves columns).
func (s *Select) Schema(cat Catalog) (*tuple.Schema, error) {
	sch, err := s.Input.Schema(cat)
	if err != nil {
		return nil, err
	}
	// Validate that the predicate compiles against the schema.
	if _, err := Compile(s.Pred, sch); err != nil {
		return nil, err
	}
	return sch, nil
}

// Project keeps only the named columns, with set (distinct) semantics.
type Project struct {
	Input Expr
	Cols  []string
}

func (p *Project) isExpr() {}
func (p *Project) String() string {
	return "project(" + p.Input.String() + ", [" + strings.Join(p.Cols, ", ") + "])"
}

// Schema returns the projected schema.
func (p *Project) Schema(cat Catalog) (*tuple.Schema, error) {
	if len(p.Cols) == 0 {
		return nil, fmt.Errorf("ra: projection with no columns")
	}
	sch, err := p.Input.Schema(cat)
	if err != nil {
		return nil, err
	}
	out, _, err := sch.Project(p.Cols)
	return out, err
}

// JoinCond equates one column of the left input with one of the right.
type JoinCond struct {
	LeftCol  string
	RightCol string
}

// Join is an equijoin of two inputs on one or more column pairs.
type Join struct {
	Left  Expr
	Right Expr
	On    []JoinCond
}

func (j *Join) isExpr() {}
func (j *Join) String() string {
	conds := make([]string, len(j.On))
	for i, c := range j.On {
		conds[i] = c.LeftCol + " = " + c.RightCol
	}
	return "join(" + j.Left.String() + ", " + j.Right.String() + ", " + strings.Join(conds, " and ") + ")"
}

// Schema returns the concatenated schema of both inputs.
func (j *Join) Schema(cat Catalog) (*tuple.Schema, error) {
	if len(j.On) == 0 {
		return nil, fmt.Errorf("ra: join with no conditions")
	}
	ls, err := j.Left.Schema(cat)
	if err != nil {
		return nil, err
	}
	rs, err := j.Right.Schema(cat)
	if err != nil {
		return nil, err
	}
	for _, c := range j.On {
		li, ok := ls.ColIndex(c.LeftCol)
		if !ok {
			return nil, fmt.Errorf("ra: join: unknown left column %q", c.LeftCol)
		}
		ri, ok := rs.ColIndex(c.RightCol)
		if !ok {
			return nil, fmt.Errorf("ra: join: unknown right column %q", c.RightCol)
		}
		lt, rt := ls.Col(li).Type, rs.Col(ri).Type
		if (lt == tuple.String) != (rt == tuple.String) {
			return nil, fmt.Errorf("ra: join: incomparable types %s and %s", lt, rt)
		}
	}
	return ls.Concat(rs, "l", "r")
}

// Union is the set union of two union-compatible inputs.
type Union struct{ Left, Right Expr }

func (u *Union) isExpr()        {}
func (u *Union) String() string { return "union(" + u.Left.String() + ", " + u.Right.String() + ")" }

// Schema checks union compatibility and returns the left schema.
func (u *Union) Schema(cat Catalog) (*tuple.Schema, error) {
	return setOpSchema(cat, u.Left, u.Right, "union")
}

// Difference is the set difference of two union-compatible inputs.
type Difference struct{ Left, Right Expr }

func (d *Difference) isExpr() {}
func (d *Difference) String() string {
	return "diff(" + d.Left.String() + ", " + d.Right.String() + ")"
}

// Schema checks union compatibility and returns the left schema.
func (d *Difference) Schema(cat Catalog) (*tuple.Schema, error) {
	return setOpSchema(cat, d.Left, d.Right, "diff")
}

// Intersect is the n-ary set intersection of union-compatible inputs.
type Intersect struct{ Inputs []Expr }

func (x *Intersect) isExpr() {}
func (x *Intersect) String() string {
	parts := make([]string, len(x.Inputs))
	for i, e := range x.Inputs {
		parts[i] = e.String()
	}
	return "intersect(" + strings.Join(parts, ", ") + ")"
}

// Schema checks pairwise union compatibility and returns the first
// input's schema.
func (x *Intersect) Schema(cat Catalog) (*tuple.Schema, error) {
	if len(x.Inputs) == 0 {
		return nil, fmt.Errorf("ra: intersect with no inputs")
	}
	first, err := x.Inputs[0].Schema(cat)
	if err != nil {
		return nil, err
	}
	for _, e := range x.Inputs[1:] {
		s, err := e.Schema(cat)
		if err != nil {
			return nil, err
		}
		if !compatible(first, s) {
			return nil, fmt.Errorf("ra: intersect of incompatible schemas")
		}
	}
	return first, nil
}

func setOpSchema(cat Catalog, l, r Expr, op string) (*tuple.Schema, error) {
	ls, err := l.Schema(cat)
	if err != nil {
		return nil, err
	}
	rs, err := r.Schema(cat)
	if err != nil {
		return nil, err
	}
	if !compatible(ls, rs) {
		return nil, fmt.Errorf("ra: %s of incompatible schemas", op)
	}
	return ls, nil
}

// compatible reports union compatibility: same column types and widths
// position by position (names may differ, as in classic RA).
func compatible(a, b *tuple.Schema) bool {
	if a.NumCols() != b.NumCols() {
		return false
	}
	for i := 0; i < a.NumCols(); i++ {
		ca, cb := a.Col(i), b.Col(i)
		if ca.Type != cb.Type {
			return false
		}
		if ca.Type == tuple.String && ca.Size != cb.Size {
			return false
		}
	}
	return true
}

// BaseRelations returns the distinct base relation names appearing in e,
// in first-appearance order.
func BaseRelations(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Base:
			if !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		case *Select:
			walk(v.Input)
		case *Project:
			walk(v.Input)
		case *Join:
			walk(v.Left)
			walk(v.Right)
		case *Union:
			walk(v.Left)
			walk(v.Right)
		case *Difference:
			walk(v.Left)
			walk(v.Right)
		case *Intersect:
			for _, in := range v.Inputs {
				walk(in)
			}
		}
	}
	walk(e)
	return out
}

// BaseOccurrences returns every base relation occurrence in e in
// left-to-right order (with repeats), which defines the dimensions of
// the expression's point space.
func BaseOccurrences(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *Base:
			out = append(out, v.Name)
		case *Select:
			walk(v.Input)
		case *Project:
			walk(v.Input)
		case *Join:
			walk(v.Left)
			walk(v.Right)
		case *Union:
			walk(v.Left)
			walk(v.Right)
		case *Difference:
			walk(v.Left)
			walk(v.Right)
		case *Intersect:
			for _, in := range v.Inputs {
				walk(in)
			}
		}
	}
	walk(e)
	return out
}

// HasSetOps reports whether the expression contains union, difference or
// intersection anywhere.
func HasSetOps(e Expr) bool {
	switch v := e.(type) {
	case *Base:
		return false
	case *Select:
		return HasSetOps(v.Input)
	case *Project:
		return HasSetOps(v.Input)
	case *Join:
		return HasSetOps(v.Left) || HasSetOps(v.Right)
	case *Union, *Difference, *Intersect:
		return true
	default:
		return false
	}
}

// SortStrings sorts a string slice in place and returns it (small
// convenience used by the transform and tests).
func SortStrings(s []string) []string {
	sort.Strings(s)
	return s
}
