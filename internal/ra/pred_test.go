package ra

import (
	"testing"

	"tcq/internal/tuple"
)

func predSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Column{Name: "a", Type: tuple.Int},
		tuple.Column{Name: "b", Type: tuple.Float},
		tuple.Column{Name: "c", Type: tuple.String, Size: 8},
	)
}

func TestCmpOpString(t *testing.T) {
	want := map[CmpOp]string{Lt: "<", Le: "<=", Eq: "=", Ne: "!=", Ge: ">=", Gt: ">"}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q, want %q", int(op), op.String(), s)
		}
	}
	if CmpOp(42).String() == "" {
		t.Error("unknown op should still render")
	}
}

func TestCompileComparisons(t *testing.T) {
	sch := predSchema()
	tp := tuple.Tuple{int64(5), 2.5, "hello"}
	cases := []struct {
		pred Pred
		want bool
	}{
		{&Cmp{Col{"a"}, Lt, Const{int64(6)}}, true},
		{&Cmp{Col{"a"}, Lt, Const{int64(5)}}, false},
		{&Cmp{Col{"a"}, Le, Const{int64(5)}}, true},
		{&Cmp{Col{"a"}, Eq, Const{int64(5)}}, true},
		{&Cmp{Col{"a"}, Ne, Const{int64(5)}}, false},
		{&Cmp{Col{"a"}, Ge, Const{int64(5)}}, true},
		{&Cmp{Col{"a"}, Gt, Const{int64(5)}}, false},
		{&Cmp{Col{"b"}, Gt, Const{2.0}}, true},
		{&Cmp{Col{"a"}, Gt, Const{4.5}}, true}, // int col vs float const
		{&Cmp{Col{"c"}, Eq, Const{"hello"}}, true},
		{&Cmp{Col{"c"}, Lt, Const{"world"}}, true},
		{&Cmp{Const{int64(1)}, Lt, Col{"a"}}, true}, // const on the left
		{&Cmp{Col{"a"}, Eq, Col{"a"}}, true},        // col vs col
		{&Cmp{Col{"a"}, Gt, Const{2}}, true},        // plain int const promoted
	}
	for i, c := range cases {
		f, err := Compile(c.pred, sch)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, c.pred, err)
		}
		if got := f(tp); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, c.pred, got, c.want)
		}
	}
}

func TestCompileBoolOps(t *testing.T) {
	sch := predSchema()
	tp := tuple.Tuple{int64(5), 2.5, "x"}
	a := &Cmp{Col{"a"}, Gt, Const{int64(0)}} // true
	b := &Cmp{Col{"b"}, Gt, Const{10.0}}     // false
	cases := []struct {
		pred Pred
		want bool
	}{
		{&And{a, a}, true},
		{&And{a, b}, false},
		{&Or{a, b}, true},
		{&Or{b, b}, false},
		{&Not{b}, true},
		{&Not{a}, false},
		{True{}, true},
		{&True{}, true},
	}
	for i, c := range cases {
		f, err := Compile(c.pred, sch)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := f(tp); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, c.pred, got, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	sch := predSchema()
	bad := []Pred{
		&Cmp{Col{"nope"}, Lt, Const{int64(1)}},
		&Cmp{Col{"a"}, Lt, Col{"nope"}},
		&And{True{}, &Cmp{Col{"zz"}, Eq, Const{int64(0)}}},
		&Or{&Cmp{Col{"zz"}, Eq, Const{int64(0)}}, True{}},
		&Not{&Cmp{Col{"zz"}, Eq, Const{int64(0)}}},
		&Cmp{Col{"a"}, Lt, Const{[]int{1}}},
	}
	for i, p := range bad {
		if _, err := Compile(p, sch); err == nil {
			t.Errorf("case %d (%s): expected error", i, p)
		}
	}
}

func TestPredComparisonsCount(t *testing.T) {
	p := &And{
		&Or{&Cmp{Col{"a"}, Lt, Const{int64(1)}}, &Cmp{Col{"a"}, Gt, Const{int64(5)}}},
		&Not{&Cmp{Col{"b"}, Eq, Const{0.0}}},
	}
	if p.Comparisons() != 3 {
		t.Errorf("Comparisons = %d, want 3", p.Comparisons())
	}
	if (True{}).Comparisons() != 0 {
		t.Error("True has no comparisons")
	}
}

func TestPredString(t *testing.T) {
	p := &And{&Cmp{Col{"a"}, Le, Const{int64(3)}}, &Not{&Cmp{Col{"c"}, Eq, Const{"hi"}}}}
	got := p.String()
	want := `(a <= 3 and not c = "hi")`
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
