package ra

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnsupported marks expressions outside the transformable fragment
// (currently: a projection applied above a difference or intersection,
// which does not distribute and therefore has no Select-Join-Intersect-
// Project decomposition).
var ErrUnsupported = errors.New("ra: expression not transformable to SJIP terms")

// Term is one signed Select-Join-Intersect-Project term of the
// inclusion–exclusion decomposition of COUNT(E):
//
//	COUNT(E) = Σ_t t.Sign · COUNT(∩ t.Atoms)
//
// Every atom is a set-operation-free expression (selects, joins and
// projections over base relations); the term denotes the intersection
// of its atoms' outputs (a single atom denotes just that atom).
type Term struct {
	Sign  int
	Atoms []Expr
}

// Expr returns the RA expression the term denotes: the atom itself for
// one atom, otherwise an n-ary Intersect.
func (t Term) Expr() Expr {
	if len(t.Atoms) == 1 {
		return t.Atoms[0]
	}
	return &Intersect{Inputs: t.Atoms}
}

// String renders the term with its sign.
func (t Term) String() string {
	sign := "+"
	if t.Sign < 0 {
		sign = "-"
	}
	return fmt.Sprintf("%s%d·count(%s)", sign, abs(t.Sign), t.Expr().String())
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Terms rewrites COUNT(e) into signed SJIP terms by the Principle of
// Inclusion and Exclusion (the paper's Section 2 transformation):
//
//	1_{A∪B} = 1_A + 1_B − 1_A·1_B
//	1_{A−B} = 1_A − 1_A·1_B
//	1_{A∩B} = 1_A·1_B
//
// after pushing selections and joins below set operations (both
// distribute over all three) and projections below unions (the only set
// operation projection distributes over). The expression is validated
// against the catalog first. Identical terms are merged by summing
// signs; zero terms are dropped.
func Terms(e Expr, cat Catalog) ([]Term, error) {
	if _, err := e.Schema(cat); err != nil {
		return nil, err
	}
	pushed, err := pushDown(e)
	if err != nil {
		return nil, err
	}
	terms, err := lincomb(pushed)
	if err != nil {
		return nil, err
	}
	return canonicalize(terms), nil
}

// pushDown rewrites e so that set operations appear only above
// set-operation-free subtrees: selections, joins and projections are
// pushed through them. It returns ErrUnsupported for a projection above
// a difference or intersection.
func pushDown(e Expr) (Expr, error) {
	switch v := e.(type) {
	case *Base:
		return v, nil

	case *Select:
		in, err := pushDown(v.Input)
		if err != nil {
			return nil, err
		}
		switch child := in.(type) {
		case *Union:
			return distribute1(child.Left, child.Right, func(a, b Expr) Expr { return &Union{a, b} },
				func(x Expr) Expr { return &Select{Input: x, Pred: v.Pred} })
		case *Difference:
			return distribute1(child.Left, child.Right, func(a, b Expr) Expr { return &Difference{a, b} },
				func(x Expr) Expr { return &Select{Input: x, Pred: v.Pred} })
		case *Intersect:
			outs := make([]Expr, len(child.Inputs))
			for i, ci := range child.Inputs {
				o, err := pushDown(&Select{Input: ci, Pred: v.Pred})
				if err != nil {
					return nil, err
				}
				outs[i] = o
			}
			return &Intersect{Inputs: outs}, nil
		default:
			return &Select{Input: in, Pred: v.Pred}, nil
		}

	case *Project:
		in, err := pushDown(v.Input)
		if err != nil {
			return nil, err
		}
		switch child := in.(type) {
		case *Union:
			return distribute1(child.Left, child.Right, func(a, b Expr) Expr { return &Union{a, b} },
				func(x Expr) Expr { return &Project{Input: x, Cols: v.Cols} })
		case *Difference, *Intersect:
			return nil, fmt.Errorf("%w: project over %T", ErrUnsupported, child)
		default:
			return &Project{Input: in, Cols: v.Cols}, nil
		}

	case *Join:
		l, err := pushDown(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := pushDown(v.Right)
		if err != nil {
			return nil, err
		}
		// Distribute the join over a set operation on the left side
		// first, then the right, recursing until both sides are clean.
		if so, ok := asSetOp(l); ok {
			return so.rebuildThrough(func(x Expr) (Expr, error) {
				return pushDown(&Join{Left: x, Right: r, On: v.On})
			})
		}
		if so, ok := asSetOp(r); ok {
			return so.rebuildThrough(func(x Expr) (Expr, error) {
				return pushDown(&Join{Left: l, Right: x, On: v.On})
			})
		}
		return &Join{Left: l, Right: r, On: v.On}, nil

	case *Union:
		l, err := pushDown(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := pushDown(v.Right)
		if err != nil {
			return nil, err
		}
		return &Union{l, r}, nil

	case *Difference:
		l, err := pushDown(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := pushDown(v.Right)
		if err != nil {
			return nil, err
		}
		return &Difference{l, r}, nil

	case *Intersect:
		outs := make([]Expr, len(v.Inputs))
		for i, in := range v.Inputs {
			o, err := pushDown(in)
			if err != nil {
				return nil, err
			}
			outs[i] = o
		}
		return &Intersect{Inputs: outs}, nil

	default:
		return nil, fmt.Errorf("ra: unknown expression type %T", e)
	}
}

func distribute1(l, r Expr, rebuild func(a, b Expr) Expr, wrap func(Expr) Expr) (Expr, error) {
	a, err := pushDown(wrap(l))
	if err != nil {
		return nil, err
	}
	b, err := pushDown(wrap(r))
	if err != nil {
		return nil, err
	}
	return rebuild(a, b), nil
}

// setOp abstracts the three set operations for join distribution.
type setOp struct {
	kind  string // "union", "diff", "intersect"
	parts []Expr
}

func asSetOp(e Expr) (setOp, bool) {
	switch v := e.(type) {
	case *Union:
		return setOp{kind: "union", parts: []Expr{v.Left, v.Right}}, true
	case *Difference:
		return setOp{kind: "diff", parts: []Expr{v.Left, v.Right}}, true
	case *Intersect:
		return setOp{kind: "intersect", parts: v.Inputs}, true
	}
	return setOp{}, false
}

func (so setOp) rebuildThrough(f func(Expr) (Expr, error)) (Expr, error) {
	outs := make([]Expr, len(so.parts))
	for i, p := range so.parts {
		o, err := f(p)
		if err != nil {
			return nil, err
		}
		outs[i] = o
	}
	switch so.kind {
	case "union":
		return &Union{outs[0], outs[1]}, nil
	case "diff":
		return &Difference{outs[0], outs[1]}, nil
	default:
		return &Intersect{Inputs: outs}, nil
	}
}

// lincomb expresses e's indicator function as a signed combination of
// products of atom indicators. e must already be pushed down.
func lincomb(e Expr) ([]Term, error) {
	switch v := e.(type) {
	case *Union:
		l, err := lincomb(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := lincomb(v.Right)
		if err != nil {
			return nil, err
		}
		return append(append(append([]Term{}, l...), r...), negate(product(l, r))...), nil
	case *Difference:
		l, err := lincomb(v.Left)
		if err != nil {
			return nil, err
		}
		r, err := lincomb(v.Right)
		if err != nil {
			return nil, err
		}
		return append(append([]Term{}, l...), negate(product(l, r))...), nil
	case *Intersect:
		acc := []Term{{Sign: 1}} // multiplicative identity (empty product)
		for _, in := range v.Inputs {
			t, err := lincomb(in)
			if err != nil {
				return nil, err
			}
			acc = product(acc, t)
		}
		return acc, nil
	default:
		if HasSetOps(e) {
			return nil, fmt.Errorf("ra: internal: set op survived push-down in %s", e)
		}
		return []Term{{Sign: 1, Atoms: []Expr{e}}}, nil
	}
}

func negate(ts []Term) []Term {
	out := make([]Term, len(ts))
	for i, t := range ts {
		out[i] = Term{Sign: -t.Sign, Atoms: t.Atoms}
	}
	return out
}

// product multiplies two signed combinations: signs multiply, atom
// lists concatenate (indicator functions are idempotent under product,
// so duplicate atoms within a term collapse).
func product(a, b []Term) []Term {
	out := make([]Term, 0, len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			atoms := make([]Expr, 0, len(x.Atoms)+len(y.Atoms))
			atoms = append(atoms, x.Atoms...)
			atoms = append(atoms, y.Atoms...)
			out = append(out, Term{Sign: x.Sign * y.Sign, Atoms: dedupAtoms(atoms)})
		}
	}
	return out
}

func dedupAtoms(atoms []Expr) []Expr {
	seen := map[string]bool{}
	out := atoms[:0]
	for _, a := range atoms {
		k := a.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

// canonicalize sorts atoms within each term, merges identical terms by
// summing signs, drops zero terms, and orders terms deterministically.
func canonicalize(ts []Term) []Term {
	type bucket struct {
		term Term
		sign int
	}
	buckets := map[string]*bucket{}
	var order []string
	for _, t := range ts {
		atoms := append([]Expr{}, t.Atoms...)
		sort.Slice(atoms, func(i, j int) bool { return atoms[i].String() < atoms[j].String() })
		key := Term{Sign: 1, Atoms: atoms}.Expr().String()
		if b, ok := buckets[key]; ok {
			b.sign += t.Sign
		} else {
			buckets[key] = &bucket{term: Term{Atoms: atoms}, sign: t.Sign}
			order = append(order, key)
		}
	}
	sort.Strings(order)
	out := make([]Term, 0, len(order))
	for _, k := range order {
		b := buckets[k]
		if b.sign == 0 {
			continue
		}
		out = append(out, Term{Sign: b.sign, Atoms: b.term.Atoms})
	}
	return out
}
