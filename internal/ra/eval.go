package ra

import (
	"fmt"

	"tcq/internal/tuple"
)

// Relations supplies the tuples of base relations for exact evaluation.
// Relations are assumed duplicate-free (set semantics), as in the
// paper's point-space model.
type Relations interface {
	Catalog
	RelationTuples(name string) ([]tuple.Tuple, error)
}

// MapRelations is an in-memory Relations implementation for tests,
// examples and exact ground-truth evaluation.
type MapRelations struct {
	Schemas map[string]*tuple.Schema
	Tuples  map[string][]tuple.Tuple
}

// NewMapRelations returns an empty MapRelations.
func NewMapRelations() *MapRelations {
	return &MapRelations{
		Schemas: map[string]*tuple.Schema{},
		Tuples:  map[string][]tuple.Tuple{},
	}
}

// Add registers a relation.
func (m *MapRelations) Add(name string, schema *tuple.Schema, ts []tuple.Tuple) {
	m.Schemas[name] = schema
	m.Tuples[name] = ts
}

// RelationSchema implements Catalog.
func (m *MapRelations) RelationSchema(name string) (*tuple.Schema, error) {
	s, ok := m.Schemas[name]
	if !ok {
		return nil, fmt.Errorf("ra: unknown relation %q", name)
	}
	return s, nil
}

// RelationTuples implements Relations.
func (m *MapRelations) RelationTuples(name string) ([]tuple.Tuple, error) {
	ts, ok := m.Tuples[name]
	if !ok {
		return nil, fmt.Errorf("ra: unknown relation %q", name)
	}
	return ts, nil
}

// EvalExact evaluates e completely (no sampling) with set semantics and
// returns the output tuples. It is the reference implementation the
// sampled executors and estimators are tested against, and supplies
// ground truth for the experiment harness.
func EvalExact(e Expr, rels Relations) ([]tuple.Tuple, error) {
	if _, err := e.Schema(rels); err != nil {
		return nil, err
	}
	return evalExact(e, rels)
}

// CountExact returns len(EvalExact(e)).
func CountExact(e Expr, rels Relations) (int64, error) {
	ts, err := EvalExact(e, rels)
	if err != nil {
		return 0, err
	}
	return int64(len(ts)), nil
}

func evalExact(e Expr, rels Relations) ([]tuple.Tuple, error) {
	switch v := e.(type) {
	case *Base:
		return rels.RelationTuples(v.Name)

	case *Select:
		in, err := evalExact(v.Input, rels)
		if err != nil {
			return nil, err
		}
		sch, err := v.Input.Schema(rels)
		if err != nil {
			return nil, err
		}
		pred, err := Compile(v.Pred, sch)
		if err != nil {
			return nil, err
		}
		var out []tuple.Tuple
		for _, t := range in {
			if pred(t) {
				out = append(out, t)
			}
		}
		return out, nil

	case *Project:
		in, err := evalExact(v.Input, rels)
		if err != nil {
			return nil, err
		}
		sch, err := v.Input.Schema(rels)
		if err != nil {
			return nil, err
		}
		_, idx, err := sch.Project(v.Cols)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out []tuple.Tuple
		for _, t := range in {
			p := t.Project(idx)
			k := p.Key(sch, nil)
			if !seen[k] {
				seen[k] = true
				out = append(out, p)
			}
		}
		return out, nil

	case *Join:
		l, err := evalExact(v.Left, rels)
		if err != nil {
			return nil, err
		}
		r, err := evalExact(v.Right, rels)
		if err != nil {
			return nil, err
		}
		ls, err := v.Left.Schema(rels)
		if err != nil {
			return nil, err
		}
		rs, err := v.Right.Schema(rels)
		if err != nil {
			return nil, err
		}
		lcols, rcols, err := JoinCols(v.On, ls, rs)
		if err != nil {
			return nil, err
		}
		// Hash join on the left side for the exact evaluator.
		index := map[string][]tuple.Tuple{}
		for _, lt := range l {
			k := lt.Project(lcols).Key(ls, nil)
			index[k] = append(index[k], lt)
		}
		var out []tuple.Tuple
		for _, rt := range r {
			k := rt.Project(rcols).Key(rs, nil)
			for _, lt := range index[k] {
				out = append(out, lt.Concat(rt))
			}
		}
		return out, nil

	case *Union:
		l, err := evalExact(v.Left, rels)
		if err != nil {
			return nil, err
		}
		r, err := evalExact(v.Right, rels)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		var out []tuple.Tuple
		for _, t := range append(append([]tuple.Tuple{}, l...), r...) {
			k := t.Key(nil, nil)
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
		return out, nil

	case *Difference:
		l, err := evalExact(v.Left, rels)
		if err != nil {
			return nil, err
		}
		r, err := evalExact(v.Right, rels)
		if err != nil {
			return nil, err
		}
		drop := map[string]bool{}
		for _, t := range r {
			drop[t.Key(nil, nil)] = true
		}
		var out []tuple.Tuple
		for _, t := range l {
			if !drop[t.Key(nil, nil)] {
				out = append(out, t)
			}
		}
		return out, nil

	case *Intersect:
		if len(v.Inputs) == 0 {
			return nil, fmt.Errorf("ra: intersect with no inputs")
		}
		cur, err := evalExact(v.Inputs[0], rels)
		if err != nil {
			return nil, err
		}
		for _, in := range v.Inputs[1:] {
			next, err := evalExact(in, rels)
			if err != nil {
				return nil, err
			}
			keep := map[string]bool{}
			for _, t := range next {
				keep[t.Key(nil, nil)] = true
			}
			var out []tuple.Tuple
			for _, t := range cur {
				if keep[t.Key(nil, nil)] {
					out = append(out, t)
				}
			}
			cur = out
		}
		return cur, nil

	default:
		return nil, fmt.Errorf("ra: unknown expression type %T", e)
	}
}

// JoinCols resolves join conditions to column index lists on each side.
func JoinCols(on []JoinCond, ls, rs *tuple.Schema) (lcols, rcols []int, err error) {
	for _, c := range on {
		li, ok := ls.ColIndex(c.LeftCol)
		if !ok {
			return nil, nil, fmt.Errorf("ra: join: unknown left column %q", c.LeftCol)
		}
		ri, ok := rs.ColIndex(c.RightCol)
		if !ok {
			return nil, nil, fmt.Errorf("ra: join: unknown right column %q", c.RightCol)
		}
		lcols = append(lcols, li)
		rcols = append(rcols, ri)
	}
	return lcols, rcols, nil
}

// SumExact evaluates SUM(e.col) exactly: the sum of the named numeric
// column over e's (set-semantics) output tuples.
func SumExact(e Expr, col string, rels Relations) (float64, error) {
	sch, err := e.Schema(rels)
	if err != nil {
		return 0, err
	}
	i, ok := sch.ColIndex(col)
	if !ok {
		return 0, fmt.Errorf("ra: unknown column %q", col)
	}
	out, err := evalExact(e, rels)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, t := range out {
		switch v := t[i].(type) {
		case int64:
			total += float64(v)
		case float64:
			total += v
		default:
			return 0, fmt.Errorf("ra: column %q is not numeric", col)
		}
	}
	return total, nil
}

// GroupCountExact evaluates the per-group COUNT of e's output over the
// named column, exactly.
func GroupCountExact(e Expr, col string, rels Relations) (map[tuple.Value]int64, error) {
	sch, err := e.Schema(rels)
	if err != nil {
		return nil, err
	}
	i, ok := sch.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("ra: unknown column %q", col)
	}
	out, err := evalExact(e, rels)
	if err != nil {
		return nil, err
	}
	groups := map[tuple.Value]int64{}
	for _, t := range out {
		groups[t[i]]++
	}
	return groups, nil
}

// CountTermsExact evaluates the signed SJIP decomposition of COUNT(e)
// exactly and returns the signed sum — used to verify the transform.
func CountTermsExact(terms []Term, rels Relations) (int64, error) {
	var total int64
	for _, t := range terms {
		c, err := CountExact(t.Expr(), rels)
		if err != nil {
			return 0, err
		}
		total += int64(t.Sign) * c
	}
	return total, nil
}
