package ra

import (
	"fmt"

	"tcq/internal/tuple"
)

// BatchPred is a predicate bound to a schema and vectorized over
// column slices: it fills out[i] with the predicate's value on row i of
// the batch (len(out) must equal b.Len()). For every schema and
// predicate accepted by Compile, CompileBatch accepts too and the two
// agree row-for-row — the batch executor leans on that equivalence to
// keep the vectorized scan observationally identical to the scalar one.
type BatchPred func(b *tuple.Batch, out []bool)

// CompileBatch binds p to schema as a vectorized predicate. Comparisons
// between Int columns and integer constants (the workload's hot shape)
// compile to tight typed loops; every other comparison falls back to a
// per-row kernel with exactly Compile's CompareValues semantics
// (including NaN-equals-everything and int/float promotion).
func CompileBatch(p Pred, schema *tuple.Schema) (BatchPred, error) {
	switch q := p.(type) {
	case True, *True:
		return func(_ *tuple.Batch, out []bool) {
			for i := range out {
				out[i] = true
			}
		}, nil
	case *Cmp:
		return compileBatchCmp(q, schema)
	case *And:
		l, err := CompileBatch(q.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := CompileBatch(q.R, schema)
		if err != nil {
			return nil, err
		}
		var scratch []bool
		return func(b *tuple.Batch, out []bool) {
			l(b, out)
			if cap(scratch) < len(out) {
				scratch = make([]bool, len(out))
			}
			s := scratch[:len(out)]
			r(b, s)
			for i := range out {
				out[i] = out[i] && s[i]
			}
		}, nil
	case *Or:
		l, err := CompileBatch(q.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := CompileBatch(q.R, schema)
		if err != nil {
			return nil, err
		}
		var scratch []bool
		return func(b *tuple.Batch, out []bool) {
			l(b, out)
			if cap(scratch) < len(out) {
				scratch = make([]bool, len(out))
			}
			s := scratch[:len(out)]
			r(b, s)
			for i := range out {
				out[i] = out[i] || s[i]
			}
		}, nil
	case *Not:
		inner, err := CompileBatch(q.P, schema)
		if err != nil {
			return nil, err
		}
		return func(b *tuple.Batch, out []bool) {
			inner(b, out)
			for i := range out {
				out[i] = !out[i]
			}
		}, nil
	default:
		return nil, fmt.Errorf("ra: unknown predicate type %T", p)
	}
}

// batchSide is one compiled operand: a column index, or a constant.
type batchSide struct {
	col int // -1 for constants
	val tuple.Value
}

func compileBatchSide(o Operand, schema *tuple.Schema) (batchSide, error) {
	switch v := o.(type) {
	case Col:
		i, ok := schema.ColIndex(v.Name)
		if !ok {
			return batchSide{}, fmt.Errorf("ra: unknown column %q (schema has %s)", v.Name, schemaCols(schema))
		}
		return batchSide{col: i}, nil
	case Const:
		switch val := v.Value.(type) {
		case int64, float64, string:
			return batchSide{col: -1, val: val}, nil
		case int:
			return batchSide{col: -1, val: int64(val)}, nil
		default:
			return batchSide{}, fmt.Errorf("ra: unsupported constant type %T", val)
		}
	default:
		return batchSide{}, fmt.Errorf("ra: unknown operand type %T", o)
	}
}

func compileBatchCmp(q *Cmp, schema *tuple.Schema) (BatchPred, error) {
	l, err := compileBatchSide(q.Left, schema)
	if err != nil {
		return nil, err
	}
	r, err := compileBatchSide(q.Right, schema)
	if err != nil {
		return nil, err
	}
	// Any CmpOp is fully described by its value on the three comparison
	// outcomes, which lets one kernel serve all six operators.
	mLt, mEq, mGt := q.Op.matches(-1), q.Op.matches(0), q.Op.matches(1)
	pick := func(c int) bool {
		switch {
		case c < 0:
			return mLt
		case c > 0:
			return mGt
		default:
			return mEq
		}
	}
	isInt := func(s batchSide) bool {
		if s.col >= 0 {
			return schema.Col(s.col).Type == tuple.Int
		}
		_, ok := s.val.(int64)
		return ok
	}
	if isInt(l) && isInt(r) {
		switch {
		case l.col >= 0 && r.col < 0:
			c := r.val.(int64)
			return func(b *tuple.Batch, out []bool) {
				for i, x := range b.Ints(l.col) {
					switch {
					case x < c:
						out[i] = mLt
					case x > c:
						out[i] = mGt
					default:
						out[i] = mEq
					}
				}
			}, nil
		case l.col < 0 && r.col >= 0:
			c := l.val.(int64)
			return func(b *tuple.Batch, out []bool) {
				for i, y := range b.Ints(r.col) {
					switch {
					case c < y:
						out[i] = mLt
					case c > y:
						out[i] = mGt
					default:
						out[i] = mEq
					}
				}
			}, nil
		case l.col >= 0 && r.col >= 0:
			return func(b *tuple.Batch, out []bool) {
				xs, ys := b.Ints(l.col), b.Ints(r.col)
				for i := range out {
					switch {
					case xs[i] < ys[i]:
						out[i] = mLt
					case xs[i] > ys[i]:
						out[i] = mGt
					default:
						out[i] = mEq
					}
				}
			}, nil
		}
		// const-vs-const falls through to the generic kernel.
	}
	valueAt := func(s batchSide, b *tuple.Batch, i int) tuple.Value {
		if s.col >= 0 {
			return b.Value(s.col, i)
		}
		return s.val
	}
	return func(b *tuple.Batch, out []bool) {
		for i := range out {
			out[i] = pick(tuple.CompareValues(valueAt(l, b, i), valueAt(r, b, i)))
		}
	}, nil
}
